(** E7 — substrate micro-benchmarks (bechamel).

    Nanosecond-scale costs of the building blocks: CRC32, codecs, the RNG,
    execution-trace insertion and traversal, and single-fence log appends
    (with a zero-cost emulated fence, so the number is the software
    overhead a real persistent fence would be added to). *)

open Bechamel
open Toolkit

let make_tests () =
  let data_4k = String.init 4096 (fun i -> Char.chr (i land 0xff)) in
  let crc =
    Test.make ~name:"crc32 4KiB"
      (Staged.stage (fun () -> ignore (Onll_util.Crc32.string data_4k)))
  in
  let codec =
    let c = Onll_util.Codec.(list (triple int int string)) in
    let v = List.init 8 (fun i -> (i, i * i, "payload")) in
    Test.make ~name:"codec encode+decode (8 envelopes)"
      (Staged.stage (fun () ->
           ignore Onll_util.Codec.(decode c (encode c v))))
  in
  let rng =
    let t = Onll_util.Splitmix.create 1 in
    Test.make ~name:"splitmix next_int64"
      (Staged.stage (fun () -> ignore (Onll_util.Splitmix.next_int64 t)))
  in
  (* Native machine for the shared structures: fences are counted but cost
     zero, so these isolate software overhead. *)
  let native = Onll_machine.Native.create ~max_processes:1 ~fence_ns:0 () in
  let module M = (val Onll_machine.Native.machine native) in
  ignore (Onll_machine.Native.register native);
  let module T = Onll_core.Trace.Make (M) in
  let trace_insert =
    let t = T.create ~base_idx:0 ~base_state:() () in
    Test.make ~name:"trace insert (uncontended)"
      (Staged.stage (fun () ->
           let n = T.insert t 0 in
           M.Tvar.set n.T.available true))
  in
  let latest_available =
    let t = T.create ~base_idx:0 ~base_state:() () in
    (* a realistic fuzzy suffix: 7 unavailable nodes over an available one *)
    let n0 = T.insert t 0 in
    M.Tvar.set n0.T.available true;
    for k = 1 to 7 do
      ignore (T.insert t k)
    done;
    Test.make ~name:"latestAvailable (window 7)"
      (Staged.stage (fun () -> ignore (T.latest_available t)))
  in
  let module P = Onll_plog.Plog.Make (M) in
  let plog_append =
    let counter = ref 0 in
    let fresh () =
      incr counter;
      P.create ~name:(Printf.sprintf "bench.plog.%d" !counter)
        ~capacity:(1 lsl 24) ()
    in
    let log = ref (fresh ()) in
    let payload = "12345678payload!" in
    Test.make ~name:"plog append (16B, zero-cost fence)"
      (Staged.stage (fun () ->
           try P.append !log payload
           with Onll_plog.Plog.Full ->
             log := fresh ();
             P.append !log payload))
  in
  Test.make_grouped ~name:"micro" ~fmt:"%s %s"
    [ crc; codec; rng; trace_insert; latest_available; plog_append ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let clock = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ clock ] (make_tests ()) in
  let results = Analyze.all ols clock raw in
  let rows = ref [] in
  let summary = Onll_obs.Metrics.create () in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) ->
            Onll_obs.Metrics.set
              (Onll_obs.Metrics.gauge summary
                 ("ns_per_op."
                 ^ String.map (fun c -> if c = ' ' then '_' else c) name))
              x;
            Onll_util.Table.fmt_float x
        | Some [] | None -> "-"
      in
      rows := [ name; ns ] :: !rows)
    results;
  Onll_util.Table.print
    ~title:"E7 — substrate micro-benchmarks (bechamel, monotonic clock)"
    ~header:[ "operation"; "ns/op" ]
    (List.sort compare !rows);
  let path = Harness.write_snapshot ~experiment:"e7" summary in
  Printf.printf "snapshot: %s\n" path
