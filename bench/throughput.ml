(** E3 — throughput vs core count, and E5 — throughput vs fence latency.

    The same functorised implementations measured on the native machine:
    real domains, [Atomic] shared variables, persistent fences emulated by a
    calibrated spin of configurable duration. Expected shapes: the
    non-durable object is the ceiling; ONLL tracks it at one emulated fence
    per update; shadow paging runs at roughly half ONLL's rate (two fences
    and a global lock); flat combining serialises everything through one
    combiner; gaps widen as the fence gets more expensive (E5). *)

open Onll_machine
module Cs = Onll_specs.Counter

let available_domains = max 2 (Domain.recommended_domain_count () - 1)

(* Build (name, run) pairs: [run ~domains ~fence_ns ~total_ops] returns
   ops/second for the counter object. *)
let counter_impls : (string * (domains:int -> fence_ns:int -> total_ops:int -> float)) list
    =
  let measure native work =
    let t0 = Unix.gettimeofday () in
    ignore (Native.run_workers native work);
    Unix.gettimeofday () -. t0
  in
  let onll ~views ~domains ~fence_ns ~total_ops =
    let native = Native.create ~max_processes:domains ~fence_ns () in
    let module M = (val Native.machine native) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with local_views = views; log_capacity = (1 lsl 24) } in
    let per = total_ops / domains in
    let elapsed =
      measure native
        (List.init domains (fun _ ->
             fun _ ->
               for _ = 1 to per do
                 ignore (C.update obj Cs.Increment)
               done))
    in
    Harness.ops_per_sec (per * domains) elapsed
  in
  let volatile ~domains ~fence_ns ~total_ops =
    let native = Native.create ~max_processes:domains ~fence_ns () in
    let module M = (val Native.machine native) in
    let module V = Onll_baselines.Volatile.Make (M) (Cs) in
    let obj = V.create () in
    let per = total_ops / domains in
    let elapsed =
      measure native
        (List.init domains (fun _ ->
             fun _ ->
               for _ = 1 to per do
                 ignore (V.update obj Cs.Increment)
               done))
    in
    Harness.ops_per_sec (per * domains) elapsed
  in
  let shadow ~domains ~fence_ns ~total_ops =
    let native = Native.create ~max_processes:domains ~fence_ns () in
    let module M = (val Native.machine native) in
    let module H = Onll_baselines.Shadow.Make (M) (Cs) in
    let obj = H.create () in
    let per = total_ops / domains in
    let elapsed =
      measure native
        (List.init domains (fun _ ->
             fun _ ->
               for _ = 1 to per do
                 ignore (H.update obj Cs.Increment)
               done))
    in
    Harness.ops_per_sec (per * domains) elapsed
  in
  let fc ~domains ~fence_ns ~total_ops =
    let native = Native.create ~max_processes:domains ~fence_ns () in
    let module M = (val Native.machine native) in
    let module F = Onll_baselines.Flat_combining.Make (M) (Cs) in
    let obj = F.create ~log_capacity:(1 lsl 24) () in
    let per = total_ops / domains in
    let elapsed =
      measure native
        (List.init domains (fun _ ->
             fun _ ->
               for _ = 1 to per do
                 ignore (F.update obj Cs.Increment)
               done))
    in
    Harness.ops_per_sec (per * domains) elapsed
  in
  [
    ("volatile", fun ~domains ~fence_ns ~total_ops -> volatile ~domains ~fence_ns ~total_ops);
    ("onll+views", fun ~domains ~fence_ns ~total_ops -> onll ~views:true ~domains ~fence_ns ~total_ops);
    ("shadow", fun ~domains ~fence_ns ~total_ops -> shadow ~domains ~fence_ns ~total_ops);
    ("flat-combining", fun ~domains ~fence_ns ~total_ops -> fc ~domains ~fence_ns ~total_ops);
  ]

let queue_impl ~views ~domains ~fence_ns ~total_ops =
  let native = Native.create ~max_processes:domains ~fence_ns () in
  let module M = (val Native.machine native) in
  let module C = Onll_core.Onll.Make (M) (Onll_specs.Queue_spec) in
  let obj = C.make { Onll_core.Onll.Config.default with local_views = views; log_capacity = (1 lsl 24) } in
  let per = total_ops / domains in
  let t0 = Unix.gettimeofday () in
  ignore
    (Native.run_workers native
       (List.init domains (fun d ->
            fun _ ->
              let rng = Onll_util.Splitmix.create (100 + d) in
              for _ = 1 to per do
                ignore (C.update obj (Test_support.Gen.Queue.update rng))
              done)));
  Harness.ops_per_sec (per * domains) (Unix.gettimeofday () -. t0)

(* Record a (name, [(x, mops)]) curve family as [<prefix>.<name>.<x_tag><x>]
   gauges in [summary]. *)
let record_curves summary ~prefix ~x_tag curves =
  List.iter
    (fun (name, points) ->
      List.iter
        (fun (x, mops) ->
          Onll_obs.Metrics.set
            (Onll_obs.Metrics.gauge summary
               (Printf.sprintf "%s.%s.%s%d" prefix name x_tag
                  (int_of_float x)))
            mops)
        points)
    curves

let run_e3 () =
  let total_ops = 40_000 in
  let fence_ns = 500 in
  let domain_counts =
    List.filter (fun d -> d <= available_domains) [ 1; 2; 4; 8 ]
  in
  let curves =
    List.map
      (fun (name, run) ->
        ( name,
          List.map
            (fun d ->
              ( float_of_int d,
                Harness.best_of 3 (fun () ->
                    run ~domains:d ~fence_ns ~total_ops)
                /. 1e6 ))
            domain_counts ))
      counter_impls
  in
  Onll_util.Table.series
    ~title:
      (Printf.sprintf
         "E3a — counter throughput vs domains (Mops/s, fence = %dns, %d ops)"
         fence_ns total_ops)
    ~x_label:"domains" curves;
  (* queue: same shape on a structurally richer object *)
  let qcurves =
    [
      ( "onll+views",
        List.map
          (fun d ->
            ( float_of_int d,
              queue_impl ~views:true ~domains:d ~fence_ns
                ~total_ops:20_000
              /. 1e6 ))
          domain_counts );
    ]
  in
  Onll_util.Table.series
    ~title:"E3b — queue throughput vs domains (Mops/s, ONLL, fence = 500ns)"
    ~x_label:"domains" qcurves;
  let summary = Onll_obs.Metrics.create () in
  record_curves summary ~prefix:"mops.counter" ~x_tag:"d" curves;
  record_curves summary ~prefix:"mops.queue" ~x_tag:"d" qcurves;
  let path =
    Harness.write_snapshot ~experiment:"e3"
      ~meta:[ ("fence_ns", string_of_int fence_ns) ]
      summary
  in
  Printf.printf "snapshot: %s\n" path

let run_e5 () =
  let total_ops = 20_000 in
  let domains = min 2 available_domains in
  let latencies = [ 0; 250; 500; 1000; 2000; 5000 ] in
  let curves =
    List.map
      (fun (name, run) ->
        ( name,
          List.map
            (fun ns ->
              ( float_of_int ns,
                Harness.best_of 3 (fun () ->
                    run ~domains ~fence_ns:ns ~total_ops)
                /. 1e6 ))
            latencies ))
      counter_impls
  in
  Onll_util.Table.series
    ~title:
      (Printf.sprintf
         "E5 — counter throughput vs emulated fence latency (Mops/s, %d \
          domains)"
         domains)
    ~x_label:"fence_ns" curves;
  let summary = Onll_obs.Metrics.create () in
  record_curves summary ~prefix:"mops.counter" ~x_tag:"ns" curves;
  let path =
    Harness.write_snapshot ~experiment:"e5"
      ~meta:[ ("domains", string_of_int domains) ]
      summary
  in
  Printf.printf "snapshot: %s\n" path
