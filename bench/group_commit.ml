(** E16 — fence batching / group commit ({!Onll_batched}).

    Thm 5.1/6.3 bound the {e per-process} fence cost of detectable
    objects at 1 pf/update — but concurrent waiters can share one fence.
    The group-commit construction orders concurrent updates into a shared
    batch made durable under a single persistent fence; this experiment
    measures what that buys and pins what it cannot beat. Three
    deterministic, gated parts plus a native grid:

    - {b amortisation accounting (sim, deterministic)}: the
      ["onll-batched"] registry entry under a round-robin schedule with 6
      concurrent submitters — every process announces before the first
      wins the combiner lock, so batches fill. Asserted: amortised fences
      per update strictly below 1/2 (the acceptance bar at >= 4
      submitters), and reads still cost zero fences.
    - {b the Thm 6.3 degeneration (sim, deterministic)}: the adversarial
      schedule is simply {e solo} — a single process has nobody to share
      the fence with, every batch is a singleton, and the cost is pinned
      at {e exactly} 1 pf/update. Batching amortises the bound; it never
      beats it.
    - {b batched chaos slices (sim, deterministic)}: the E12 fault grid
      against the group-commit object, where the crash lands {e
      mid-batch} — before the shared fence (the whole unfenced tail-batch
      must vanish with nothing acknowledged in it) or after it (every
      batched update recovers exactly once). Zero violations required;
      the E13 no-excuse arm composed with batching (mirrored shared log,
      primary-scoped faults) must additionally lose nothing at all.
    - {b native throughput grid}: disjoint-key kv updates, domains x
      fence latency (0/500/2000 ns plus a 50 us fsync-class point),
      aggregate Mops/s and per-domain goodput. The E14 grid showed the
      unbatched construction {e collapsing} when a second domain arrives
      (s1.d2 well below half of s1.d1); group commit must turn that
      second domain into throughput. Asserted: d2 no longer collapses at
      the 500 ns point, and d2 >= 1.5x d1 at the fsync-class point —
      group commit's home regime, where the per-batch persistence cost
      dominates and sharing it is the whole game. *)

open Onll_machine
module Kv = Onll_specs.Kv

let fence_ns_grid = [ 0; 500; 2000; 50_000 ]
let fence_ns_default = 500

(* Group commit earns its keep where persistence latency dominates the
   per-operation CPU work — the regime the technique was invented for
   (databases amortising fsync). 50 us models fsync-class persistence
   (an SSD-class sync); the sub-us points model CPU-adjacent NVM, where
   on few cores the second domain can at best break even. *)
let fence_ns_fsync = 50_000
let checkpoint_every = 256
let available_domains = max 2 (Domain.recommended_domain_count () - 1)

(* {2 Part 1 — amortisation accounting (deterministic, gated)} *)

let amort_procs = 6
let amort_ops = 25 (* per process *)

let build_batched ~sink ~max_processes ~rng =
  let module R = Onll_baselines.Registry.Make (Kv) in
  match
    R.build ~sink
      ~options:
        {
          Onll_baselines.Registry.default_options with
          log_capacity = 1 lsl 18;
        }
      ~max_processes
      ~gen_update:(fun () -> Test_support.Gen.Kv.update rng)
      ~gen_read:(fun () -> Test_support.Gen.Kv.read rng)
      "onll-batched"
  with
  | Some h -> h
  | None -> assert false

let amortization summary =
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let rng = Onll_util.Splitmix.create 7 in
  let h = build_batched ~sink ~max_processes:amort_procs ~rng in
  let open Onll_baselines.Registry in
  let outcome =
    Sim.run h.sim Onll_sched.Sched.Strategy.round_robin
      (Array.init amort_procs (fun _ _ ->
           for k = 1 to amort_ops do
             if k mod 5 = 0 then h.read () else h.update ()
           done))
  in
  assert (outcome = Onll_sched.Sched.World.Completed);
  let c name = Onll_obs.Metrics.counter_value registry name in
  (* The acceptance bar: strictly below 1/2 pf/update with >= 4
     concurrent submitters — the shared fence is really shared. *)
  assert (c "ops.update" > 0);
  assert (2 * c "fences.update" < c "ops.update");
  assert (c "fences.read" = 0 && c "ops.read" > 0);
  (* Every fence the construction paid is a batch fence. *)
  assert (c "fences.batched" > 0);
  let add name v =
    Onll_obs.Metrics.add (Onll_obs.Metrics.counter summary name) v
  in
  add "e16.amort.ops.update" (c "ops.update");
  add "e16.amort.fences.update" (c "fences.update");
  add "e16.amort.ops.read" (c "ops.read");
  add "e16.amort.fences.read" (c "fences.read");
  add "e16.amort.fences.batched" (c "fences.batched");
  Printf.printf
    "amortisation (sim, %d submitters, round-robin): %d updates over %d \
     batch fences = %.2f pf/update (< 0.5 asserted); %d reads = 0 fences\n"
    amort_procs (c "ops.update") (c "fences.update")
    (float_of_int (c "fences.update") /. float_of_int (c "ops.update"))
    (c "ops.read")

(* {2 Part 2 — the Thm 6.3 degeneration (deterministic, gated)} *)

let adversary_ops = 30

let adversarial summary =
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let rng = Onll_util.Splitmix.create 11 in
  let h = build_batched ~sink ~max_processes:1 ~rng in
  let open Onll_baselines.Registry in
  let outcome =
    Sim.run h.sim Onll_sched.Sched.Strategy.round_robin
      [|
        (fun _ ->
          for _ = 1 to adversary_ops do
            h.update ()
          done);
      |]
  in
  assert (outcome = Onll_sched.Sched.World.Completed);
  let c name = Onll_obs.Metrics.counter_value registry name in
  (* Pinned at exactly 1 pf/update: solo, every batch is a singleton —
     the adversary that never offers concurrency recovers Thm 6.3's
     bound verbatim. *)
  assert (c "ops.update" = adversary_ops);
  assert (c "fences.update" = adversary_ops);
  assert (c "fences.batched" = adversary_ops);
  let add name v =
    Onll_obs.Metrics.add (Onll_obs.Metrics.counter summary name) v
  in
  add "e16.adversary.ops.update" (c "ops.update");
  add "e16.adversary.fences.update" (c "fences.update");
  add "e16.adversary.fences.batched" (c "fences.batched");
  Printf.printf
    "adversarial degeneration (sim, solo): %d updates = %d fences — \
     exactly 1 pf/update, asserted\n"
    (c "ops.update") (c "fences.update")

(* {2 Part 3 — batched chaos slices (deterministic, gated)} *)

let record_row summary prefix (r : Test_support.Chaos_harness.row) =
  let add name v =
    Onll_obs.Metrics.add (Onll_obs.Metrics.counter summary name) v
  in
  let open Test_support.Chaos_harness in
  let p k = Printf.sprintf "%s.%s" prefix k in
  add (p "runs") r.runs;
  add (p "crashed") r.crashed;
  add (p "media_faults") r.media_faults;
  add (p "reported_lost") r.lost_reported;
  add (p "tail_ambiguous") r.tail_ambiguous;
  add (p "violations") r.violations

let chaos_slices summary =
  let open Test_support in
  let messages = ref [] in
  let module D = Chaos_harness.Drive (Kv) in
  let plain =
    D.campaign ~plan_of:Chaos_harness.batched_plan_of_seed ~name:"kv/batched"
      ~gen_update:Gen.Kv.update ~gen_read:Gen.Kv.read ~seeds:40 ~messages ()
  in
  let mirrored =
    D.campaign ~plan_of:Chaos_harness.batched_mirrored_plan_of_seed
      ~name:"kv/batched+mirrored" ~gen_update:Gen.Kv.update
      ~gen_read:Gen.Kv.read ~seeds:40 ~messages ()
  in
  List.iter (fun m -> Printf.printf "  VIOLATION %s\n" m) (List.rev !messages);
  let open Chaos_harness in
  Onll_util.Table.print
    ~title:
      "E16 chaos slices — crash mid-batch, before or after the shared \
       fence (violations must be 0; the mirrored arm additionally loses \
       nothing)"
    ~header:
      [ "arm"; "runs"; "crashed"; "media"; "reported-lost"; "tail-ambig";
        "violations" ]
    (List.map
       (fun r ->
         [
           r.obj_name;
           string_of_int r.runs;
           string_of_int r.crashed;
           string_of_int r.media_faults;
           string_of_int r.lost_reported;
           string_of_int r.tail_ambiguous;
           string_of_int r.violations;
         ])
       [ plain; mirrored ]);
  assert (plain.violations = 0);
  assert (mirrored.violations = 0);
  print_endline
    "(asserted: zero durable-linearizability violations — and zero \
     duplicate acks, which the chaos audit folds into violations — \
     across both batched chaos arms)";
  assert (mirrored.lost_reported = 0 && mirrored.tail_ambiguous = 0);
  print_endline
    "(asserted: batched + mirrored + primary-scoped faults cost nothing \
     — the mirror copy of the batch drained under the same single fence)";
  record_row summary "e16.chaos.batched" plain;
  record_row summary "e16.chaos.batched_mirrored" mirrored

(* {2 Part 4 — native throughput grid} *)

(* Disjoint-key kv updates, exactly the E14 workload shape (64 private
   keys per domain, a checkpoint every [checkpoint_every] ops) so the
   batched grid reads against the sharded/unbatched one. *)
let run_native ~domains ~fence_ns ~total_ops =
  let native = Native.create ~max_processes:domains ~fence_ns () in
  let module M = (val Native.machine native) in
  let module C = Onll_batched.Make (M) (Kv) in
  let obj =
    C.make { Onll_core.Onll.Config.default with log_capacity = 1 lsl 20 }
  in
  let per = total_ops / domains in
  let t0 = Unix.gettimeofday () in
  ignore
    (Native.run_workers native
       (List.init domains (fun d ->
            fun _ ->
             for j = 1 to per do
               ignore
                 (C.update obj
                    (Kv.Put (Printf.sprintf "d%d.k%d" d (j land 63), "v")));
               if j mod checkpoint_every = 0 then ignore (C.checkpoint obj)
             done)));
  Harness.ops_per_sec (per * domains) (Unix.gettimeofday () -. t0)

let throughput_grid summary =
  let total_ops = 20_000 in
  let domain_counts =
    List.filter (fun d -> d <= available_domains) [ 1; 2; 4; 8 ]
  in
  let rate ~domains ~fence_ns =
    Harness.best_of 2 (fun () -> run_native ~domains ~fence_ns ~total_ops)
  in
  let curves =
    List.map
      (fun ns ->
        ( Printf.sprintf "ns%d" ns,
          List.map
            (fun d -> (float_of_int d, rate ~domains:d ~fence_ns:ns /. 1e6))
            domain_counts ))
      fence_ns_grid
  in
  Onll_util.Table.series
    ~title:
      (Printf.sprintf
         "E16 — batched disjoint-key kv throughput vs domains, by fence \
          latency (Mops/s aggregate, checkpoint every %d ops)"
         checkpoint_every)
    ~x_label:"domains" curves;
  (* Aggregate Mops and per-domain goodput, both as gauges: goodput is
     what each submitter actually gets, the number the E14 d2-vs-d1
     collapse hid inside the aggregate. *)
  List.iter
    (fun (name, points) ->
      List.iter
        (fun (x, mops) ->
          let d = int_of_float x in
          Onll_obs.Metrics.set
            (Onll_obs.Metrics.gauge summary
               (Printf.sprintf "mops.kv.batched.%s.d%d" name d))
            mops;
          Onll_obs.Metrics.set
            (Onll_obs.Metrics.gauge summary
               (Printf.sprintf "goodput.kv.batched.%s.d%d" name d))
            (mops /. float_of_int d))
        points)
    curves;
  (* The acceptance points: where E14's unbatched grid showed a second
     domain destroying throughput (s1.d2 = 0.4x s1.d1), the group commit
     must (a) stop the collapse on CPU-adjacent NVM and (b) turn the
     second domain into real speedup where the fence dominates.

     Each ratio comes from back-to-back d1/d2 pairs (median of three):
     the absolute rates on a shared host drift with CPU contention, but
     a pair measured in the same window shares the drift, so the ratio
     is stable where individual grid cells are not. *)
  let ratio ns =
    let pair () =
      let d1 = run_native ~domains:1 ~fence_ns:ns ~total_ops in
      let d2 = run_native ~domains:2 ~fence_ns:ns ~total_ops in
      d2 /. d1
    in
    let rs = List.sort compare [ pair (); pair (); pair () ] in
    List.nth rs 1
  in
  let held = ratio fence_ns_default in
  Printf.printf
    "batched d2 vs d1 at %dns fence: %.2fx (>= 0.7x asserted; the \
     unbatched E14 grid collapsed to ~0.4x here)\n"
    fence_ns_default held;
  assert (held >= 0.7);
  let speedup = ratio fence_ns_fsync in
  Printf.printf
    "batched d2 vs d1 at the fsync-class point (%dns): %.2fx (threshold \
     1.5x)\n"
    fence_ns_fsync speedup;
  assert (speedup >= 1.5);
  print_endline
    "(asserted: a second domain adds >= 1.5x throughput under group \
     commit where the shared fence dominates, and no longer destroys \
     throughput anywhere on the grid)";
  Onll_obs.Metrics.set
    (Onll_obs.Metrics.gauge summary "speedup.batched.d2_over_d1")
    speedup;
  Onll_obs.Metrics.set
    (Onll_obs.Metrics.gauge summary "speedup.batched.d2_over_d1.ns500")
    held

let run () =
  let summary = Onll_obs.Metrics.create () in
  amortization summary;
  adversarial summary;
  chaos_slices summary;
  throughput_grid summary;
  let path =
    Harness.write_snapshot ~experiment:"e16"
      ~meta:
        [
          ("fence_ns", string_of_int fence_ns_default);
          ("checkpoint_every", string_of_int checkpoint_every);
          ("max_domains", string_of_int available_domains);
        ]
      summary
  in
  Printf.printf "snapshot: %s\n" path
