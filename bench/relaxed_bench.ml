(** E20 — bounded staleness: risk-budgeted lazy fences vs the strict
    Theorem 5.1 price, plus the quantified-crash-loss campaign.

    Three parts, the first two exactly reproducible and gated by
    [onll gate]:

    - {b fence accounting (sim, deterministic)}: the same update
      workload through {!Onll_relaxed} in relaxed mode (budget k = 8)
      and in strict mode. Strict must cost {e exactly} one persistent
      fence per update (the wrapper adds nothing to Theorem 5.1);
      relaxed must land strictly below 1 — and a {e solo-after-quiesce}
      run pins the floor: from an empty tail, k solo updates cost
      exactly one fence, 1/k per update, the best any k-budgeted
      schedule can do.
    - {b staleness chaos slice (sim, deterministic)}: a small
      {!Test_support.Relaxed_chaos} campaign (plain + mirrored arms,
      swept crash depths, accounting/budget/suffix/prefix/convergence
      audits, zero violations required) plus its unhardened
      calibration, which must be caught.
    - {b seeded campaign + native throughput}: the full campaign at
      [ONLL_E20_SEEDS] seeds per arm (default 200), and a native
      wall-clock comparison of relaxed vs strict update throughput at a
      storage-class 20 us fence — the deferred fence is the story, and
      the speedup approaches the k:1 fence ratio as fence latency
      dominates. Measurements are recorded as ungated gauges; the
      violation and accounting counters are what CI pins. *)

open Onll_machine
module Cs = Onll_specs.Counter

let n_procs = 3
let updates_per_proc = 40
let budget = 8

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

(* {2 Part 1 — fence accounting (deterministic, gated)} *)

let fence_accounting summary =
  let total = n_procs * updates_per_proc in
  let arm ~strict =
    let registry = Onll_obs.Metrics.create () in
    let sink = Onll_obs.Sink.make ~registry () in
    let sim = Sim.create ~sink ~max_processes:n_procs () in
    let module M = (val Sim.machine sim) in
    let module R = Onll_relaxed.Make (M) (Cs) in
    let obj =
      R.make ~max_unfenced_ops:budget
        { Onll_core.Onll.Config.default with sink; log_capacity = 1 lsl 18 }
    in
    let outcome =
      Sim.run sim
        (Onll_sched.Sched.Strategy.random ~seed:42)
        (Array.init n_procs (fun _ _ ->
             for _ = 1 to updates_per_proc do
               ignore
                 (if strict then R.update_strict obj Cs.Increment
                  else R.update obj Cs.Increment)
             done))
    in
    assert (outcome = Onll_sched.Sched.World.Completed);
    assert (R.read obj Cs.Get = total);
    ( Onll_obs.Metrics.counter_value registry "fences.update",
      Onll_obs.Metrics.counter_value registry "ops.update" )
  in
  let relaxed_fences, relaxed_ops = arm ~strict:false in
  let strict_fences, strict_ops = arm ~strict:true in
  assert (relaxed_ops = total && strict_ops = total);
  (* The wrapper adds nothing to the strict price: exactly 1 pf/update. *)
  assert (strict_fences = total);
  (* Relaxed is strictly below 1 — and strictly above 0: durability is
     deferred, never skipped. *)
  assert (relaxed_fences > 0 && relaxed_fences < total);
  (* Solo-after-quiesce pins the budgeted floor: from an empty tail, k
     solo updates cost exactly one fence — 1/k per update. *)
  let solo_fences, solo_ops =
    let registry = Onll_obs.Metrics.create () in
    let sink = Onll_obs.Sink.make ~registry () in
    let sim = Sim.create ~sink ~max_processes:1 () in
    let module M = (val Sim.machine sim) in
    let module R = Onll_relaxed.Make (M) (Cs) in
    let obj =
      R.make ~max_unfenced_ops:budget
        { Onll_core.Onll.Config.default with sink; log_capacity = 1 lsl 18 }
    in
    let outcome =
      Sim.run sim Onll_sched.Sched.Strategy.round_robin
        [|
          (fun _ ->
            for _ = 1 to budget do
              ignore (R.update obj Cs.Increment)
            done);
        |]
    in
    assert (outcome = Onll_sched.Sched.World.Completed);
    assert (R.pending_ops obj = 0);
    ( Onll_obs.Metrics.counter_value registry "fences.update",
      Onll_obs.Metrics.counter_value registry "ops.update" )
  in
  assert (solo_ops = budget && solo_fences = 1);
  let add name v =
    Onll_obs.Metrics.add (Onll_obs.Metrics.counter summary name) v
  in
  add "e20.acct.ops" total;
  add "e20.acct.fences.relaxed" relaxed_fences;
  add "e20.acct.fences.strict" strict_fences;
  add "e20.acct.budget" budget;
  add "e20.acct.solo.ops" solo_ops;
  add "e20.acct.solo.fences" solo_fences;
  Printf.printf
    "fence accounting (sim, %d updates, budget k=%d): relaxed %.3f \
     pf/update vs strict %.2f; solo-after-quiesce floor %d fence / %d \
     updates = %.3f (= 1/k)\n"
    total budget
    (float_of_int relaxed_fences /. float_of_int total)
    (float_of_int strict_fences /. float_of_int total)
    solo_fences solo_ops
    (float_of_int solo_fences /. float_of_int solo_ops)

(* {2 Part 2 — staleness chaos slices (deterministic, gated)} *)

let chaos_slices summary =
  let open Test_support in
  let s = Relaxed_chaos.run_campaign ~seeds:12 ~calibration_seeds:8 in
  Relaxed_chaos.print s;
  assert (Relaxed_chaos.total_violations s = 0);
  assert (s.Relaxed_chaos.cal_caught > 0);
  print_endline
    "(asserted: zero staleness violations across both relaxed chaos arms; \
     the ledger-free calibration was caught)";
  ignore (Relaxed_chaos.to_metrics ~reg:summary s)

let gate_slices summary =
  fence_accounting summary;
  chaos_slices summary

(* {2 Part 3 — seeded campaign + native throughput} *)

let native_throughput summary =
  (* Storage-class fence (~20 us, an SSD-ish flush): the regime where
     the per-update fence is the bill. The relaxed arm pays it once per
     k updates and approaches a k:1 speedup; at cache-line-flush
     latencies per-update CPU dominates and the arms converge. *)
  let fence_ns = 20_000 in
  let total = 20_000 in
  let run_arm strict =
    let native = Native.create ~max_processes:1 ~fence_ns () in
    let module M = (val Native.machine native) in
    let module R = Onll_relaxed.Make (M) (Cs) in
    let obj =
      R.make ~max_unfenced_ops:budget
        (* local views, as in E3/E5: without them every update replays
           the whole history and O(n^2) CPU swamps the fence bill this
           experiment is about *)
        {
          Onll_core.Onll.Config.default with
          log_capacity = 1 lsl 24;
          local_views = true;
        }
    in
    let t0 = Unix.gettimeofday () in
    ignore
      (Native.run_workers native
         [
           (fun _ ->
             for k = 1 to total do
               ignore
                 (if strict then R.update_strict obj Cs.Increment
                  else R.update obj Cs.Increment);
               if k mod 512 = 0 then ignore (R.checkpoint obj)
             done;
             (* read from a registered domain: every update landed *)
             assert (R.read obj Cs.Get = total));
         ]);
    let dt = Unix.gettimeofday () -. t0 in
    Harness.ops_per_sec total dt
  in
  let relaxed = Harness.best_of 2 (fun () -> run_arm false) in
  let strict = Harness.best_of 2 (fun () -> run_arm true) in
  Printf.printf
    "native throughput (%dns fence, budget k=%d): relaxed %.2f kops/s vs \
     strict %.2f kops/s (%.2fx)\n"
    fence_ns budget (relaxed /. 1e3) (strict /. 1e3) (relaxed /. strict);
  Onll_obs.Metrics.set
    (Onll_obs.Metrics.gauge summary "kops.relaxed")
    (relaxed /. 1e3);
  Onll_obs.Metrics.set
    (Onll_obs.Metrics.gauge summary "kops.strict")
    (strict /. 1e3)

(* {2 Part 4 — per-session durability tiers over a real socket} *)

(* The E18 front-end serves all three tiers from one store; the question
   this arm answers is what the budget buys a client population: the
   strict tier pays one fence per confirmed op, staleness-k pays ~1/k.
   One `onll serve` worker, one open-loop pass per tier over disjoint
   client ranges, gauges keyed [e20t.<tier>.*] (wall-clock, never
   gated). The exactly-once pass keeps its cross-pass audit; the relaxed
   tiers waive server-side dedup, so they run audit-free. *)

let find_cli () =
  match Sys.getenv_opt "ONLL_CLI" with
  | Some p when Sys.file_exists p -> Some p
  | _ ->
      let candidate = "_build/default/bin/onll_cli.exe" in
      if Sys.file_exists candidate then Some candidate else None

let tier_slo_pass summary ~worker =
  let module Loadgen = Onll_serve.Loadgen in
  let module Protocol = Onll_serve.Protocol in
  let clients = env_int "ONLL_E20_CLIENTS" 1200 in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "onll-e20-slo-%d.sock" (Unix.getpid ()))
  in
  let pid, ic =
    let r, w = Unix.pipe () in
    let pid =
      Unix.create_process worker
        [|
          worker;
          "serve";
          "--socket=" ^ socket;
          "--construction=plain";
          "--max-conns=" ^ string_of_int (clients + 64);
          (* storage-class fence: the regime where the tiers differ —
             strict pays it per op, staleness-k pays ~1/k *)
          "--fence-ns=20000";
        |]
        Unix.stdin w Unix.stderr
    in
    Unix.close w;
    (pid, Unix.in_channel_of_descr r)
  in
  Fun.protect ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()))
  @@ fun () ->
  (match input_line ic with
  | exception End_of_file -> failwith "e20 tier slo: server died before READY"
  | _ready ->
      let tiers =
        [
          ("exactly-once", Protocol.T_exactly_once, 0);
          ("strict", Protocol.T_strict, clients);
          ( Printf.sprintf "stale%d" budget,
            Protocol.T_staleness budget,
            2 * clients );
        ]
      in
      List.iter
        (fun (label, tier, first_client) ->
          let audit =
            (* relaxed tiers waive server dedup — the exactly-once audit
               does not apply to them *)
            if tier = Protocol.T_exactly_once then
              Some (Loadgen.Audit.create ())
            else None
          in
          let cfg =
            {
              (Loadgen.default_config ~socket_path:socket) with
              Loadgen.clients;
              first_client;
              rate_hz = 2.;
              duration_ms = 2_000;
              seed = 42;
              deadline_ms = 1_000;
              connect_timeout_ms = 10_000;
              tier;
            }
          in
          let rep = Loadgen.run ?audit cfg in
          let g name v =
            Onll_obs.Metrics.set
              (Onll_obs.Metrics.gauge summary
                 (Printf.sprintf "e20t.%s.%s" label name))
              v
          in
          g "clients" (float_of_int clients);
          g "confirmed" (float_of_int rep.Loadgen.r_confirmed);
          g "p50_us" (float_of_int rep.Loadgen.r_p50_us);
          g "p99_us" (float_of_int rep.Loadgen.r_p99_us);
          g "p999_us" (float_of_int rep.Loadgen.r_p999_us);
          g "goodput_ops_s" rep.Loadgen.r_goodput;
          g "shed_rate" rep.Loadgen.r_shed_rate;
          Format.printf "e20 tier slo (%s, %d clients): %a@." label clients
            Loadgen.pp_report rep;
          assert (rep.Loadgen.r_confirmed > 0);
          match audit with
          | Some audit when rep.Loadgen.r_unresolved > 0 ->
              let rep2 =
                Loadgen.run ~audit { cfg with Loadgen.duration_ms = 0 }
              in
              Format.printf "e20 tier slo resolve (%s): %a@." label
                Loadgen.pp_report rep2;
              assert (rep2.Loadgen.r_unresolved = 0)
          | _ -> ())
        tiers);
  Unix.kill pid Sys.sigterm;
  let _, st = Unix.waitpid [] pid in
  close_in ic;
  (try Sys.remove socket with Sys_error _ -> ());
  match st with
  | Unix.WEXITED 0 -> ()
  | _ -> failwith "e20 tier slo: server did not drain cleanly"

let tier_slo summary =
  match find_cli () with
  | None ->
      print_endline
        "e20 tier slo: onll CLI binary not found (set $ONLL_CLI); skipping \
         the socket arm"
  | Some worker -> tier_slo_pass summary ~worker

let run () =
  let summary = Onll_obs.Metrics.create () in
  fence_accounting summary;
  (* The full seeded campaign: plain + mirrored arms, both spotless, the
     measured ops-at-risk histogram bounded by the budget, and a
     calibration arm that must be caught. *)
  let seeds = env_int "ONLL_E20_SEEDS" 200 in
  let s =
    Test_support.Relaxed_chaos.run_campaign ~seeds
      ~calibration_seeds:(max 10 (seeds / 10))
  in
  Test_support.Relaxed_chaos.print s;
  assert (Test_support.Relaxed_chaos.total_violations s = 0);
  assert (s.Test_support.Relaxed_chaos.cal_caught > 0);
  (* every crash landed within the budget: no histogram bucket beyond
     the deepest configured risk budget *)
  List.iter
    (fun (d, _) -> assert (d <= budget))
    s.Test_support.Relaxed_chaos.hist;
  ignore (Test_support.Relaxed_chaos.to_metrics ~reg:summary s);
  native_throughput summary;
  print_endline "== per-session durability tiers over a real socket ==";
  tier_slo summary;
  let path =
    Harness.write_snapshot ~experiment:"e20"
      ~meta:
        [
          ("budget", string_of_int budget); ("seeds", string_of_int seeds);
        ]
      summary
  in
  Printf.printf "snapshot: %s\n" path
