(** The CI bench-regression gate.

    Re-runs the cheap {e asserted} invariants in-process — E1 fence bounds
    (every onll-family row exactly 1 pf/update, 0 pf/read, ["onll-sharded"]
    and ["onll-session"] included), the F2 fuzzy-window bound, the
    deterministic E14 slices (sharded fence accounting + sharded chaos,
    zero violations), a deterministic E13 mirrored slice (primary-only
    faults must cost nothing), a deterministic E15 session slice
    (exactly-once under crash-fuzz; the naive arm must duplicate) and the
    deterministic E16 slices (group-commit amortisation below 1/2
    pf/update, the solo adversary pinned at exactly 1 pf/update, batched
    chaos incl. crash-mid-batch over mirrored logs, zero violations) —
    then diffs the freshly produced snapshots against the committed
    goldens in [bench/snapshots/]:

    - [BENCH_e1.json]: every [pf_update.*] / [pf_read.*] key must match
      the golden {e exactly} (the sim is deterministic, so any drift in a
      fence count is a real change in the construction's cost, in either
      direction — cheaper is a claim to re-review, not a free pass);
    - [BENCH_e14.json]: every [e14.*] key (fence accounting, routing,
      chaos violation counters) must match exactly. Native [mops.*]
      gauges are measurements, not invariants — never gated;
    - [BENCH_e13.json] / [BENCH_e15.json] / [BENCH_e16.json] /
      [BENCH_e17.json] / [BENCH_e18.json] / [BENCH_e19.json] /
      [BENCH_e20.json]: every [e13.*] / [e15.*] / [e16.*] / [e17.*] /
      [e18.*] / [e19.*] / [e20.*] key (loss, duplicate, lost-ack,
      violation, fence-amortisation, fault, file-store, service,
      transaction and staleness crash-slice counters of the
      deterministic slices — for e19 that includes the fences-per-txn
      accounting against the 2PC baseline, for e20 the sub-1 relaxed
      fence accounting with its solo-after-quiesce 1/k floor and the
      ops-at-risk histogram) must match exactly — the [e17t.*] /
      [e18t.*] timing and [e17c.*] / [e18c.*] subprocess campaign keys
      live outside the gated prefix on purpose;
    - every committed golden: any key ending in [.violations] must be 0.

    Exit status 0 = gate passes; 1 = regression (each one named on
    stdout). [--self-test] proves the gate can fail: it re-compares
    against a golden with one fence counter bumped and requires the
    comparison to flag it.

    Usage: [bench_gate.exe [--snapshots DIR] [--self-test] [--regen]]
    (default DIR: [bench/snapshots], resolved from the repo root or
    [$ONLL_GATE_DIR]). [--regen] overwrites the gated goldens (see
    {!gated_experiments}) with the fresh run instead of diffing — review
    the diff before committing it. [--list-gated] prints the gated
    experiment ids and exits; CI's gate-freshness step diffs it against
    [ls bench/snapshots/] so no snapshot can sit there ungated. *)

(* Every experiment with a gated golden in bench/snapshots/. CI's
   gate-freshness step diffs [--list-gated] against the directory listing,
   so a snapshot that exists without being gated here fails the build —
   adding a BENCH_*.json means adding it to this list (and a compare
   block below). *)
let gated_experiments =
  [ "e1"; "e13"; "e14"; "e15"; "e16"; "e17"; "e18"; "e19"; "e20" ]

let failures = ref []

let faili fmt =
  Printf.ksprintf (fun s -> failures := s :: !failures) fmt

(* {2 Snapshot comparison} *)

let load path =
  try Some (Onll_obs.Export.read_scalars ~path) with
  | Sys_error e ->
      faili "cannot read snapshot %s: %s" path e;
      None
  | Failure e ->
      faili "cannot parse snapshot %s: %s" path e;
      None

(* Compare [fresh] to [golden] on every key matching [gated]: exact float
   equality (both sides are deterministic sim runs serialised by the same
   exporter), missing and extra gated keys both count. Returns the number
   of gated keys checked. *)
let compare_gated ~label ~gated ~golden ~fresh =
  let g = List.filter (fun (k, _) -> gated k) golden in
  let f = List.filter (fun (k, _) -> gated k) fresh in
  List.iter
    (fun (k, gv) ->
      match List.assoc_opt k f with
      | None -> faili "%s: gated key %s vanished from the fresh run" label k
      | Some fv ->
          if fv <> gv then
            faili "%s: %s changed: golden %.17g, fresh %.17g" label k gv fv)
    g;
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k g) then
        faili
          "%s: new gated key %s is absent from the golden (regenerate \
           bench/snapshots and review the diff)"
          label k)
    f;
  List.length g

let zero_violations ~path metrics =
  List.iter
    (fun (k, v) ->
      let n = String.length k in
      let suffix = ".violations" in
      let sn = String.length suffix in
      if n >= sn && String.sub k (n - sn) sn = suffix && v <> 0. then
        faili "%s: %s = %g (must be 0)" (Filename.basename path) k v)
    metrics

(* {2 Main} *)

let () =
  let snapshots_dir = ref "" in
  let self_test = ref false in
  let regen = ref false in
  let rec parse = function
    | [] -> ()
    | "--snapshots" :: d :: rest ->
        snapshots_dir := d;
        parse rest
    | "--self-test" :: rest ->
        self_test := true;
        parse rest
    | "--regen" :: rest ->
        regen := true;
        parse rest
    | "--list-gated" :: _ ->
        List.iter print_endline gated_experiments;
        exit 0
    | a :: _ ->
        prerr_endline ("bench_gate: unknown argument " ^ a);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let snapshots_dir =
    if !snapshots_dir <> "" then !snapshots_dir
    else
      match Sys.getenv_opt "ONLL_GATE_DIR" with
      | Some d when d <> "" -> d
      | _ ->
          (* dune exec runs from the project root; fall back to the
             source-relative location when run from bench/. *)
          if Sys.file_exists "bench/snapshots" then "bench/snapshots"
          else "snapshots"
  in
  let golden exp =
    Filename.concat snapshots_dir (Printf.sprintf "BENCH_%s.json" exp)
  in
  (* 1. Fresh runs of the asserted invariants, snapshots to a temp dir.
     Any assert inside these is itself a gate failure (uncaught here on
     purpose: the backtrace names the violated invariant). *)
  let tmp = Filename.temp_file "onll-gate" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o755;
  Unix.putenv "ONLL_BENCH_DIR" tmp;
  print_endline "bench gate: re-running asserted invariants (sim only)";
  Printf.printf "== E1 fence bounds ==\n%!";
  Fence_audit.run ();
  Printf.printf "== F2 fuzzy-window bound ==\n%!";
  Fuzzy_window.run ();
  Printf.printf "== E14 deterministic slices ==\n%!";
  let e14 = Onll_obs.Metrics.create () in
  Shard_scaling.fence_accounting e14;
  Shard_scaling.chaos_slices e14;
  ignore (Harness.write_snapshot ~experiment:"e14" e14);
  Printf.printf "== E13 deterministic mirrored slice ==\n%!";
  let e13 =
    Test_support.Chaos_harness.run_e13 ~seeds_per_object:4 ~dual_seeds:3
      ~unmirrored_seeds:3
  in
  assert (Test_support.Chaos_harness.e13_violations e13 = 0);
  assert (Test_support.Chaos_harness.e13_mirrored_lost e13 = 0);
  ignore
    (Harness.write_snapshot ~experiment:"e13"
       (Test_support.Chaos_harness.e13_to_metrics e13));
  Printf.printf "== E15 deterministic session slice ==\n%!";
  let e15 = Test_support.Session_chaos.run_e15 ~seeds_per_arm:6 in
  assert (Test_support.Session_chaos.e15_violations e15 = 0);
  assert (Test_support.Session_chaos.e15_session_duplicates e15 = 0);
  assert (Test_support.Session_chaos.e15_session_lost_acks e15 = 0);
  assert (Test_support.Session_chaos.e15_naive_duplicates e15 > 0);
  ignore
    (Harness.write_snapshot ~experiment:"e15"
       (Test_support.Session_chaos.to_metrics e15));
  Printf.printf "== E16 deterministic slices ==\n%!";
  let e16 = Onll_obs.Metrics.create () in
  Group_commit.amortization e16;
  Group_commit.adversarial e16;
  Group_commit.chaos_slices e16;
  ignore (Harness.write_snapshot ~experiment:"e16" e16);
  Printf.printf "== E17 deterministic file-store crash slices ==\n%!";
  let e17 = Onll_obs.Metrics.create () in
  File_store.gate_slices e17;
  assert (Onll_obs.Metrics.counter_value e17 "e17.restart.plain.violations" = 0);
  assert (
    Onll_obs.Metrics.counter_value e17 "e17.restart.mirrored.violations" = 0);
  assert (Onll_obs.Metrics.counter_value e17 "e17.eio.sticky.degraded" > 0);
  ignore (Harness.write_snapshot ~experiment:"e17" e17);
  Printf.printf "== E18 deterministic service crash slices ==\n%!";
  let e18 = Onll_obs.Metrics.create () in
  Service_bench.gate_slices e18;
  assert (
    Onll_obs.Metrics.counter_value e18 "e18.restart.plain.violations" = 0);
  assert (
    Onll_obs.Metrics.counter_value e18 "e18.restart.mirrored.violations" = 0);
  assert (Onll_obs.Metrics.counter_value e18 "e18.restart.plain.kills" > 0);
  assert (Onll_obs.Metrics.counter_value e18 "e18.oseq.reused" = 0);
  ignore (Harness.write_snapshot ~experiment:"e18" e18);
  Printf.printf "== E19 deterministic transaction slices ==\n%!";
  let e19 = Onll_obs.Metrics.create () in
  Txn_bench.gate_slices e19;
  (* one coordinator fence per txn, <= (S+1)/2 of the 2PC baseline *)
  assert (
    Onll_obs.Metrics.counter_value e19 "e19.acct.fences.txn"
    = Onll_obs.Metrics.counter_value e19 "e19.acct.ops.txn");
  assert (
    2 * Onll_obs.Metrics.counter_value e19 "e19.acct.fences.txn"
    <= Onll_obs.Metrics.counter_value e19 "e19.acct.fences.2pc");
  assert (Onll_obs.Metrics.counter_value e19 "e19.txn.violations" = 0);
  assert (
    Onll_obs.Metrics.counter_value e19 "e19.txn/mirrored.violations" = 0);
  assert (Onll_obs.Metrics.counter_value e19 "e19.calibration.caught" > 0);
  ignore (Harness.write_snapshot ~experiment:"e19" e19);
  Printf.printf "== E20 deterministic bounded-staleness slices ==\n%!";
  let e20 = Onll_obs.Metrics.create () in
  Relaxed_bench.gate_slices e20;
  (* strictly below 1 pf/update relaxed, exactly 1 strict, and the
     solo-after-quiesce floor pinned at one fence per full budget *)
  assert (
    Onll_obs.Metrics.counter_value e20 "e20.acct.fences.relaxed"
    < Onll_obs.Metrics.counter_value e20 "e20.acct.ops");
  assert (Onll_obs.Metrics.counter_value e20 "e20.acct.fences.relaxed" > 0);
  assert (
    Onll_obs.Metrics.counter_value e20 "e20.acct.fences.strict"
    = Onll_obs.Metrics.counter_value e20 "e20.acct.ops");
  assert (Onll_obs.Metrics.counter_value e20 "e20.acct.solo.fences" = 1);
  assert (Onll_obs.Metrics.counter_value e20 "e20.relaxed.violations" = 0);
  assert (
    Onll_obs.Metrics.counter_value e20 "e20.relaxed/mirrored.violations" = 0);
  assert (Onll_obs.Metrics.counter_value e20 "e20.calibration.caught" > 0);
  ignore (Harness.write_snapshot ~experiment:"e20" e20);
  (* [--regen]: adopt the fresh snapshots as the new goldens and stop. *)
  if !regen then begin
    List.iter
      (fun exp ->
        let src = Filename.concat tmp (Printf.sprintf "BENCH_%s.json" exp) in
        let dst = golden exp in
        let ic = open_in_bin src in
        let len = in_channel_length ic in
        let body = really_input_string ic len in
        close_in ic;
        let oc = open_out_bin dst in
        output_string oc body;
        close_out oc;
        Printf.printf "regenerated %s\n" dst)
      gated_experiments;
    print_endline "bench gate: goldens regenerated (review the diff)";
    exit 0
  end;
  (* 2. Diff fresh vs golden on the gated keys. *)
  let prefixed p k =
    String.length k >= String.length p && String.sub k 0 (String.length p) = p
  in
  (match (load (golden "e1"), load (Filename.concat tmp "BENCH_e1.json"))
   with
  | Some g, Some f ->
      let gated k = prefixed "pf_update." k || prefixed "pf_read." k in
      let n = compare_gated ~label:"e1" ~gated ~golden:g ~fresh:f in
      Printf.printf "e1: %d gated fence-count keys compared\n" n
  | _ -> ());
  (match (load (golden "e14"), load (Filename.concat tmp "BENCH_e14.json"))
   with
  | Some g, Some f ->
      let n =
        compare_gated ~label:"e14" ~gated:(prefixed "e14.") ~golden:g
          ~fresh:f
      in
      Printf.printf "e14: %d gated accounting/chaos keys compared\n" n
  | _ -> ());
  (match (load (golden "e13"), load (Filename.concat tmp "BENCH_e13.json"))
   with
  | Some g, Some f ->
      let n =
        compare_gated ~label:"e13" ~gated:(prefixed "e13.") ~golden:g
          ~fresh:f
      in
      Printf.printf "e13: %d gated mirrored-slice keys compared\n" n
  | _ -> ());
  (match (load (golden "e15"), load (Filename.concat tmp "BENCH_e15.json"))
   with
  | Some g, Some f ->
      let n =
        compare_gated ~label:"e15" ~gated:(prefixed "e15.") ~golden:g
          ~fresh:f
      in
      Printf.printf "e15: %d gated session-slice keys compared\n" n
  | _ -> ());
  (match (load (golden "e16"), load (Filename.concat tmp "BENCH_e16.json"))
   with
  | Some g, Some f ->
      let n =
        compare_gated ~label:"e16" ~gated:(prefixed "e16.") ~golden:g
          ~fresh:f
      in
      Printf.printf "e16: %d gated group-commit keys compared\n" n
  | _ -> ());
  (match (load (golden "e17"), load (Filename.concat tmp "BENCH_e17.json"))
   with
  | Some g, Some f ->
      let n =
        compare_gated ~label:"e17" ~gated:(prefixed "e17.") ~golden:g
          ~fresh:f
      in
      Printf.printf "e17: %d gated file-store crash-slice keys compared\n" n
  | _ -> ());
  (match (load (golden "e18"), load (Filename.concat tmp "BENCH_e18.json"))
   with
  | Some g, Some f ->
      let n =
        compare_gated ~label:"e18" ~gated:(prefixed "e18.") ~golden:g
          ~fresh:f
      in
      Printf.printf "e18: %d gated service crash-slice keys compared\n" n
  | _ -> ());
  (match (load (golden "e19"), load (Filename.concat tmp "BENCH_e19.json"))
   with
  | Some g, Some f ->
      let n =
        compare_gated ~label:"e19" ~gated:(prefixed "e19.") ~golden:g
          ~fresh:f
      in
      Printf.printf "e19: %d gated transaction-slice keys compared\n" n
  | _ -> ());
  (match (load (golden "e20"), load (Filename.concat tmp "BENCH_e20.json"))
   with
  | Some g, Some f ->
      let n =
        compare_gated ~label:"e20" ~gated:(prefixed "e20.") ~golden:g
          ~fresh:f
      in
      Printf.printf "e20: %d gated staleness-slice keys compared\n" n
  | _ -> ());
  (* 3. Every committed golden must carry zero violation counters. *)
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".json" then
        let path = Filename.concat snapshots_dir name in
        match load path with
        | Some m -> zero_violations ~path m
        | None -> ())
    (try Sys.readdir snapshots_dir with Sys_error _ -> [||]);
  (* 4. Self-test: the gate must be able to fail. Bump one golden fence
     counter in memory and require the comparison to flag it. *)
  if !self_test then begin
    match load (golden "e1") with
    | None -> faili "self-test: no e1 golden to perturb"
    | Some g ->
        let bumped =
          List.map
            (fun (k, v) ->
              if k = "pf_update.kv.onll-sharded" then (k, v +. 1.) else (k, v))
            g
        in
        let before = List.length !failures in
        ignore
          (compare_gated ~label:"self-test" ~gated:(prefixed "pf_")
             ~golden:bumped
             ~fresh:(Option.get (load (golden "e1"))));
        if List.length !failures > before then begin
          (* expected: drop the synthetic failure, record the proof *)
          failures :=
            List.filteri
              (fun i _ -> i >= List.length !failures - before)
              !failures;
          print_endline
            "self-test: synthetic +1 on pf_update.kv.onll-sharded was \
             caught (the gate can fail)"
        end
        else faili "self-test: a bumped fence counter was NOT caught"
  end;
  match List.rev !failures with
  | [] ->
      print_endline "bench gate: PASS";
      exit 0
  | fs ->
      List.iter (fun f -> Printf.printf "bench gate: FAIL: %s\n" f) fs;
      Printf.printf "bench gate: %d regression(s)\n" (List.length fs);
      exit 1
