(** Shared helpers for the experiment harness. *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let ops_per_sec total elapsed =
  if elapsed <= 0. then Float.infinity else float_of_int total /. elapsed

(** Best observed rate over [n] repetitions — throughput measurements on a
    shared machine are noisy downwards (interference), so the max is the
    most stable estimator. *)
let best_of n f =
  let best = ref neg_infinity in
  for _ = 1 to n do
    let v = f () in
    if v > !best then best := v
  done;
  !best

(** Write a metrics snapshot for [experiment] (e.g. ["e1"]) as
    [BENCH_<experiment>.json] in [$ONLL_BENCH_DIR] (default: the current
    directory), through the shared {!Onll_obs.Export} JSON exporter.
    [meta] rows are prepended to the snapshot metadata; returns the path
    written. *)
let write_snapshot ~experiment ?(meta = []) registry =
  let dir =
    match Sys.getenv_opt "ONLL_BENCH_DIR" with
    | Some d when d <> "" -> d
    | _ -> "."
  in
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" experiment) in
  let json =
    Onll_obs.Export.json ~meta:(("experiment", experiment) :: meta) registry
  in
  Onll_obs.Export.write_file ~path json;
  path

(** A sim-driven workload: [procs] processes, each performing
    [updates_per_proc] updates (and optionally reads) against closures that
    hide the concrete object. Returns persistent fences consumed. *)
let run_sim_workload sim ~procs ~per_proc ~seed ~(update : int -> unit)
    ~(read : int -> unit) ~read_every =
  let open Onll_machine in
  Sim.reset_stats sim;
  let body p _ =
    for k = 1 to per_proc do
      update p;
      if read_every > 0 && k mod read_every = 0 then read p
    done
  in
  let outcome =
    Sim.run sim
      (Onll_sched.Sched.Strategy.random ~seed)
      (Array.init procs (fun p -> body p))
  in
  assert (outcome = Onll_sched.Sched.World.Completed);
  (Sim.stats sim).Onll_nvm.Memory.Stats.persistent_fences
