(** The benchmark harness: regenerates every empirical artifact of the
    paper (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
    paper-vs-measured). Run all experiments with [dune exec
    bench/main.exe], or a subset by id, e.g. [dune exec bench/main.exe e1
    f2]. *)

let experiments =
  [
    ("e1", "fences per operation, all objects x implementations (Thm 5.1)",
     Fence_audit.run);
    ("e2", "lower-bound adversary schedules (Thm 6.3)", Lower_bound_bench.run);
    ("e3", "throughput vs domains, native machine", Throughput.run_e3);
    ("e4", "read cost vs history: local views (§8)", Read_cost.run);
    ("e5", "throughput vs fence latency, native machine", Throughput.run_e5);
    ("e6", "recovery cost and reclamation (§8)", Recovery_bench.run);
    ("e7", "substrate micro-benchmarks (bechamel)", Micro.run);
    ("e8", "durable-linearizability crash-fuzz campaign", Fuzz_campaign.run);
    ("e9", "systematic schedule + crash-point exploration", Explore_bench.run);
    ("e10", "helping overhead vs process count (ablation)", Helping_bench.run);
    ("e11", "checkpoint-interval tuning curve (ablation)",
     Checkpoint_sweep.run);
    ("e12", "media-fault chaos campaign (hardened recovery + calibration)",
     Chaos_campaign.run);
    ("e13", "mirrored logs + scrubbing: repair-aware chaos campaign",
     Mirror_campaign.run);
    ("e14", "shard scaling: partitioned construction, throughput + invariants",
     Shard_scaling.run);
    ("e15", "durable client sessions: exactly-once chaos campaign",
     Session_campaign.run);
    ("e16", "fence batching / group commit: amortisation + degeneration",
     Group_commit.run);
    ("e17", "file-backed store: kill -9 crash harness + fsync fence cost",
     File_store.run);
    ("e18", "crash-tolerant network front-end: fault-storm SLOs",
     Service_bench.run);
    ("e19", "cross-shard transactions: 1 coordinator fence vs 2PC + atomicity chaos",
     Txn_bench.run);
    ("e20", "bounded staleness: risk-budgeted lazy fences + quantified crash loss",
     Relaxed_bench.run);
    ("f1", "Figure 1: the four counter executions, replayed",
     Onll_scenarios.Figure1.print_all);
    ("f2", "Figure 2 / Prop 5.2: fuzzy-window bound", Fuzzy_window.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> ids
    | _ -> List.map (fun (id, _, _) -> id) experiments
  in
  List.iter
    (fun id ->
      match List.find_opt (fun (id', _, _) -> id = id') experiments with
      | Some (_, descr, run) ->
          Printf.printf "\n################ %s — %s ################\n%!" id
            descr;
          let (), dt = Harness.time_it run in
          Printf.printf "[%s done in %.2fs]\n%!" id dt;
          (* return the big native-bench buffers to the OS so later
             experiments do not pay major-GC costs over a bloated heap *)
          Gc.compact ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" id
            (String.concat ", " (List.map (fun (i, _, _) -> i) experiments));
          exit 1)
    requested
