(** E15 — exactly-once durable client sessions.

    The {!Test_support.Session_chaos} campaign: per-client
    {!Onll_session} sessions over the plain, mirrored and sharded
    constructions, crash-fuzzed (transient flush/fence storms, crash
    policies, nested recovery crashes; primary-scoped media faults on the
    mirrored arm) and audited at the identity level on
    duplicate-sensitive objects (counter, ledger). The session arms must
    show {e zero} duplicates and {e zero} lost acks; the naive
    at-least-once arm — volatile sequence numbers, blind re-invocation —
    is the calibration and must duplicate, or the zeros prove nothing. *)

open Test_support

let run () =
  (* 2 workloads x 4 arms x 40 seeds = 320 runs. *)
  let s = Session_chaos.run_e15 ~seeds_per_arm:40 in
  Session_chaos.print s;
  assert (Session_chaos.e15_violations s = 0);
  print_endline "(asserted: zero violations across every arm)";
  assert (Session_chaos.e15_session_duplicates s = 0);
  assert (Session_chaos.e15_session_lost_acks s = 0);
  print_endline
    "(asserted: exactly-once — zero duplicates and zero lost acks on \
     every session arm, plain, mirrored and sharded)";
  assert (Session_chaos.e15_naive_duplicates s > 0);
  print_endline
    "(asserted: the naive at-least-once arm duplicates — the detector \
     fires)";
  let path =
    Harness.write_snapshot ~experiment:"e15" (Session_chaos.to_metrics s)
  in
  Printf.printf "snapshot: %s\n" path
