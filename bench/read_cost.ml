(** E4 — read cost vs history length: the §8 local-views extension.

    A plain ONLL reader replays the whole execution trace (O(history));
    with per-process local views the replay covers only the delta since the
    reader's previous observation (O(1) in steady state). Expected shape:
    the no-views curve grows linearly with history length, the views curve
    stays flat. *)

open Onll_machine
module Cs = Onll_specs.Counter

let read_ns ~views ~history =
  let native = Native.create ~max_processes:1 ~fence_ns:0 () in
  let module M = (val Native.machine native) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  ignore (Native.register native);
  let obj = C.make { Onll_core.Onll.Config.default with local_views = views; log_capacity = (1 lsl 25) } in
  for _ = 1 to history do
    ignore (C.update obj Cs.Increment)
  done;
  let reads = 2_000 in
  (* Warm the view so the first delta replay is excluded. *)
  ignore (C.read obj Cs.Get);
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reads do
    ignore (C.read obj Cs.Get)
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reads

let run () =
  let histories = [ 100; 500; 1_000; 2_000; 4_000 ] in
  let curve views =
    List.map
      (fun h -> (float_of_int h, read_ns ~views ~history:h))
      histories
  in
  let curves =
    [ ("onll (full replay)", curve false); ("onll+views", curve true) ]
  in
  Onll_util.Table.series
    ~title:"E4 — read latency vs history length (ns/read, counter, 1 domain)"
    ~x_label:"history" curves;
  let summary = Onll_obs.Metrics.create () in
  List.iter
    (fun (name, points) ->
      let tag = if name = "onll+views" then "views" else "replay" in
      List.iter
        (fun (h, ns) ->
          Onll_obs.Metrics.set
            (Onll_obs.Metrics.gauge summary
               (Printf.sprintf "read_ns.%s.h%d" tag (int_of_float h)))
            ns)
        points)
    curves;
  let path = Harness.write_snapshot ~experiment:"e4" summary in
  Printf.printf "snapshot: %s\n" path
