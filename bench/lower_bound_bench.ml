(** E2 — the lower bound (Theorem 6.3), measured.

    For each implementation and each process count, run the two adversary
    schedules and report what every process had to pay. The paper's claim:
    any {e lock-free} durably linearizable implementation shows at least one
    persistent fence per process (ONLL and persist-on-read hit exactly one;
    shadow paging pays two); a non-durable object shows zero (it simply is
    not durable); blocking implementations starve instead of fencing. *)

module Lb = Onll_lowerbound.Lowerbound
module Cs = Onll_specs.Counter
module R = Onll_baselines.Registry.Make (Cs)

(* "onll+views" is excluded: local views only change the read path, which
   the adversary never exercises. *)
let impls =
  List.filter (fun i -> i <> "onll+views") Onll_baselines.Registry.names

let setup impl n =
  match
    R.build ~max_processes:n
      ~gen_update:(fun () -> Cs.Increment)
      ~gen_read:(fun () -> Cs.Get)
      impl
  with
  | Some h -> h
  | None -> invalid_arg ("lower_bound_bench: unknown implementation " ^ impl)

let fence_stats r =
  let a = r.Lb.per_proc_fences in
  (Array.fold_left min max_int a, Array.fold_left max 0 a)

let fence_summary r =
  let mn, mx = fence_stats r in
  if mn = mx then string_of_int mn else Printf.sprintf "%d..%d" mn mx

let outcome_str r =
  match r.Lb.outcome with
  | Lb.Measured -> "measured"
  | Lb.Livelock p -> Printf.sprintf "LIVELOCK (p%d starved)" p
  | Lb.Completed_early -> "completed early"

let run () =
  let summary = Onll_obs.Metrics.create () in
  let record name r =
    let mn, mx = fence_stats r in
    let g suffix v =
      Onll_obs.Metrics.set
        (Onll_obs.Metrics.gauge summary (name ^ suffix))
        (float_of_int v)
    in
    g ".pf_min" mn;
    g ".pf_max" mx
  in
  let rows =
    List.concat_map
      (fun impl ->
        List.map
          (fun n ->
            let open Onll_baselines.Registry in
            let adversary h = Array.init n (fun _ _ -> h.update ()) in
            let h = setup impl n in
            let solo =
              Lb.solo_chain ~max_steps:100_000 h.sim ~procs:(adversary h)
            in
            let h = setup impl n in
            let chain =
              Lb.fence_chain ~max_steps:100_000 h.sim ~procs:(adversary h)
            in
            record (Printf.sprintf "solo.%s.n%d" impl n) solo;
            record (Printf.sprintf "chain.%s.n%d" impl n) chain;
            [
              impl;
              string_of_int n;
              fence_summary solo;
              outcome_str solo;
              fence_summary chain;
              outcome_str chain;
              (if Lb.all_at_least_one chain then "yes"
               else
                 match chain.Lb.outcome with
                 | Lb.Livelock _ -> "n/a (blocks)"
                 | _ -> "NO");
            ])
          [ 2; 4; 8 ])
      impls
  in
  Onll_util.Table.print
    ~title:
      "E2 — Theorem 6.3 adversary: persistent fences per process (min..max)"
    ~header:
      [
        "implementation";
        "n";
        "solo-chain pf";
        "solo outcome";
        "fence-chain pf";
        "fence-chain outcome";
        ">=1 fence each";
      ]
    rows;
  (* The theorem's unit is fences per update INVOKED: repeat the Case 1
     schedule for k operations per process. *)
  let round_rows =
    List.map
      (fun rounds ->
        let n = 4 in
        let open Onll_baselines.Registry in
        let h = setup "onll" n in
        let procs =
          Array.init n (fun _ _ ->
              for _ = 1 to rounds do
                h.update ()
              done)
        in
        let r = Lb.solo_chain_rounds ~rounds h.sim ~procs in
        record (Printf.sprintf "rounds.onll.k%d" rounds) r;
        [
          string_of_int rounds;
          fence_summary r;
          outcome_str r;
          (if Lb.all_at_least rounds r then "yes" else "NO");
        ])
      [ 1; 2; 4; 8 ]
  in
  Onll_util.Table.print
    ~title:
      "E2b — k updates per process under the repeated Case 1 schedule        (onll, n = 4): k fences each"
    ~header:[ "k"; "pf per process"; "outcome"; ">=k fences each" ]
    round_rows;
  let path = Harness.write_snapshot ~experiment:"e2" summary in
  Printf.printf "snapshot: %s\n" path
