(** E11 — checkpoint-interval tuning curve (§8 reclamation ablation).

    E6 compares "no checkpoints" against one interval; this sweep holds the
    history fixed and varies the interval, exposing the §8 trade-off
    directly: frequent checkpoints bound recovery work and log space but
    each costs two extra persistent fences, so total fences rise as the
    interval shrinks. The sweet spot depends on how much post-crash
    downtime an application tolerates. *)

open Onll_machine
module Cs = Onll_specs.Counter

let run_one ~history ~interval =
  let sink = Onll_obs.Sink.make () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj =
    C.make { Onll_core.Onll.Config.default with log_capacity = 1 lsl 22; sink }
  in
  for k = 1 to history do
    ignore (C.update obj Cs.Increment);
    if interval > 0 && k mod interval = 0 then begin
      ignore (C.checkpoint obj);
      C.prune obj ~below:((C.snapshot obj).Onll_core.Onll.Snapshot.latest_available_idx)
    end
  done;
  let fences = M.persistent_fences () in
  (* The attributed split must account for every machine fence: H update
     fences plus what the checkpoints paid. *)
  let reg = Onll_obs.Sink.registry sink in
  let ckpt_fences = Onll_obs.Metrics.counter_value reg "fences.checkpoint" in
  assert (
    Onll_obs.Metrics.counter_value reg "fences.update" + ckpt_fences = fences);
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  let live =
    List.fold_left (fun a (_, l, _) -> a + l) 0 ((List.map (fun l -> Onll_core.Onll.Snapshot.(l.log_name, l.live_bytes, l.used_bytes)) (C.snapshot obj).Onll_core.Onll.Snapshot.logs))
  in
  let (), dt = Harness.time_it (fun () -> C.recover obj) in
  assert (C.read obj Cs.Get = history);
  (fences, ckpt_fences, live, dt *. 1e6)

let run () =
  let history = 2_000 in
  let summary = Onll_obs.Metrics.create () in
  let rows =
    List.map
      (fun interval ->
        let fences, ckpt_fences, live, rec_us = run_one ~history ~interval in
        let g name v =
          Onll_obs.Metrics.set
            (Onll_obs.Metrics.gauge summary
               (Printf.sprintf "sweep.%s.i%d" name interval))
            v
        in
        g "pfences" (float_of_int fences);
        g "ckpt_fences" (float_of_int ckpt_fences);
        g "live_bytes" (float_of_int live);
        g "recovery_us" rec_us;
        [
          (if interval = 0 then "none" else string_of_int interval);
          string_of_int fences;
          string_of_int ckpt_fences;
          Onll_util.Table.fmt_float
            (float_of_int fences /. float_of_int history);
          string_of_int live;
          Onll_util.Table.fmt_float rec_us;
        ])
      [ 0; 1000; 500; 200; 100; 50; 20 ]
  in
  Onll_util.Table.print
    ~title:
      (Printf.sprintf
         "E11 — checkpoint interval sweep (counter, %d updates, crash, \
          recover; recovered value asserted)"
         history)
    ~header:
      [
        "interval";
        "total pfences";
        "ckpt pfences";
        "pfences/update";
        "live log bytes";
        "recovery µs";
      ]
    rows;
  let path =
    Harness.write_snapshot ~experiment:"e11"
      ~meta:[ ("history", string_of_int history) ]
      summary
  in
  Printf.printf "snapshot: %s\n" path
