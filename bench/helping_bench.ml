(** E10 — the cost of helping (ablation on MAX-PROCESSES).

    ONLL's persist step appends the whole fuzzy window, so one operation's
    log entry can carry up to MAX-PROCESSES envelopes (Prop 5.2). This
    ablation measures how much helping actually inflates the durable
    footprint as concurrency grows: average envelopes per log entry, bytes
    per update, and the redundancy factor (envelopes written / operations
    executed) under a contended random schedule. Expected shape: all three
    grow with the process count but stay well under the MAX-PROCESSES
    worst case, because helping only triggers when an updater is parked
    inside its persist step. *)

open Onll_machine
module Cs = Onll_specs.Counter

type sample = {
  avg_ops_per_entry : float;
  bytes_per_update : float;
  redundancy : float;  (* envelopes persisted / updates executed *)
  max_window : int;
}

let measure ~n ~seeds ~ops =
  let total_entries = ref 0 in
  let total_envs = ref 0 in
  let total_bytes = ref 0 in
  let total_updates = ref 0 in
  let worst = ref 0 in
  for seed = 1 to seeds do
    let sim = Sim.create ~max_processes:n () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 20) } in
    let procs =
      Array.init n (fun _ ->
          fun _ ->
            for _ = 1 to ops do
              ignore (C.update obj Cs.Increment)
            done)
    in
    let outcome =
      Sim.run sim (Onll_sched.Sched.Strategy.random ~seed) procs
    in
    assert (outcome = Onll_sched.Sched.World.Completed);
    total_updates := !total_updates + (n * ops);
    (* One structured snapshot replaces the three legacy introspection
       calls (max_fuzzy_window / log_ops_per_entry / log_stats). *)
    let snap = C.snapshot obj in
    let open Onll_core.Onll.Snapshot in
    worst := max !worst snap.max_fuzzy_window;
    List.iter
      (fun l ->
        total_entries := !total_entries + l.entry_count;
        total_envs := !total_envs + List.fold_left ( + ) 0 l.ops_per_entry;
        total_bytes := !total_bytes + l.used_bytes)
      snap.logs
  done;
  {
    avg_ops_per_entry = float_of_int !total_envs /. float_of_int !total_entries;
    bytes_per_update = float_of_int !total_bytes /. float_of_int !total_updates;
    redundancy = float_of_int !total_envs /. float_of_int !total_updates;
    max_window = !worst;
  }

let run () =
  let open Onll_util in
  let summary = Onll_obs.Metrics.create () in
  let rows =
    List.map
      (fun n ->
        let s = measure ~n ~seeds:20 ~ops:10 in
        let g name v =
          Onll_obs.Metrics.set
            (Onll_obs.Metrics.gauge summary
               (Printf.sprintf "helping.%s.n%d" name n))
            v
        in
        g "envs_per_entry" s.avg_ops_per_entry;
        g "redundancy" s.redundancy;
        g "bytes_per_update" s.bytes_per_update;
        g "max_window" (float_of_int s.max_window);
        [
          string_of_int n;
          Table.fmt_float s.avg_ops_per_entry;
          Table.fmt_float s.redundancy;
          Table.fmt_float s.bytes_per_update;
          string_of_int s.max_window;
          string_of_int n;
        ])
      [ 1; 2; 3; 4; 6; 8 ]
  in
  Table.print
    ~title:
      "E10 — helping overhead vs process count (counter, contended random \
       schedules)"
    ~header:
      [
        "processes";
        "envs/entry";
        "redundancy";
        "bytes/update";
        "max window";
        "bound";
      ]
    rows;
  print_endline
    "(redundancy = envelopes persisted / updates executed: 1.0 means no \
     helping occurred; the worst case is MAX-PROCESSES)";
  let path = Harness.write_snapshot ~experiment:"e10" summary in
  Printf.printf "snapshot: %s\n" path
