(** E9 — systematic concurrency testing coverage.

    Not a paper artifact but the strongest correctness evidence this
    reproduction offers: exhaustive enumeration of all preemption-bounded
    schedules — and, with crash branching, a full-system crash at every
    decision point of every such schedule — for small ONLL programs, with
    durability assertions on every execution. The table reports how many
    executions each space contains; a row printing "ok" means {e every}
    execution in that space passed. *)

open Onll_machine
module E = Onll_explore.Explore
module Cs = Onll_specs.Counter

let explore ~procs ~ops ~max_preemptions ~with_crashes =
  let mk () =
    let sim = Sim.create ~max_processes:procs () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with log_capacity = 8192 } in
    let completed = ref 0 in
    let work =
      Array.init procs (fun p ->
          fun _ ->
            for k = 0 to ops - 1 do
              ignore (C.update_detectable obj ~seq:k Cs.Increment);
              ignore p;
              incr completed
            done)
    in
    ( sim,
      work,
      fun outcome ->
        match outcome with
        | Onll_sched.Sched.World.Completed ->
            assert (C.read obj Cs.Get = procs * ops)
        | Onll_sched.Sched.World.Crashed ->
            C.recover obj;
            let v = C.read obj Cs.Get in
            assert (v >= !completed && v <= procs * ops);
            let lin = ref 0 in
            for p = 0 to procs - 1 do
              for k = 0 to ops - 1 do
                if
                  C.was_linearized obj
                    { Onll_core.Onll.id_proc = p; id_seq = k }
                then incr lin
              done
            done;
            assert (v = !lin)
        | Onll_sched.Sched.World.Stopped _ -> assert false )
  in
  E.run ~max_preemptions ~with_crashes ~max_runs:150_000 ~mk ()

let run () =
  let summary = Onll_obs.Metrics.create () in
  let rows =
    List.map
      (fun (procs, ops, k, crashes) ->
        let s = explore ~procs ~ops ~max_preemptions:k ~with_crashes:crashes in
        let c name v =
          Onll_obs.Metrics.add
            (Onll_obs.Metrics.counter summary
               (Printf.sprintf "explore.p%d.o%d.k%d.crash%d.%s" procs ops k
                  (if crashes then 1 else 0)
                  name))
            v
        in
        c "executions" s.E.runs;
        c "crash_points" s.E.crashed_runs;
        [
          Printf.sprintf "%d x %d" procs ops;
          string_of_int k;
          (if crashes then "yes" else "no");
          string_of_int s.E.runs;
          string_of_int s.E.crashed_runs;
          (if s.E.truncated then "TRUNCATED" else "ok");
        ])
      [
        (2, 1, 1, false);
        (2, 1, 2, false);
        (2, 1, 1, true);
        (2, 2, 1, false);
        (3, 1, 1, false);
        (2, 2, 1, true);
      ]
  in
  Onll_util.Table.print
    ~title:
      "E9 — systematic exploration (every schedule w/ <= k preemptions; \
       optional crash at every decision point; all assertions passed \
       unless TRUNCATED)"
    ~header:
      [ "procs x ops"; "k"; "crashes"; "executions"; "crash points"; "result" ]
    rows;
  let path = Harness.write_snapshot ~experiment:"e9" summary in
  Printf.printf "snapshot: %s\n" path
