(** E13 — durable redundancy and online self-healing.

    The E12 fault grid against two-way mirrored logs. Three arms:

    - {b mirrored} (4 objects × 110 seeds): faults confined to primaries,
      online rot healed by periodic scrubs. The bar is strictly above
      E12's: zero violations AND zero reported loss AND zero torn-tail
      ambiguity — every primary-only fault has an intact mirror copy, so
      hardened recovery must repair, not report.
    - {b dual-fault}: the same grid with faults allowed into every
      replica. Losses reappear (both copies of a span can die) and must
      be named exactly — zero violations, nonzero reported-lost allowed.
    - {b unmirrored calibration}: the E12 plans re-run hardened and
      unmirrored, reproducing the reported-loss scale that mirroring
      removed (if this arm shows no losses the grid stopped biting and
      the mirrored zeros prove nothing). *)

open Test_support

let run () =
  (* 4 objects x 110 seeds = 440 mirrored runs, + 40 dual + 40 unmirrored. *)
  let s =
    Chaos_harness.run_e13 ~seeds_per_object:110 ~dual_seeds:40
      ~unmirrored_seeds:40
  in
  Chaos_harness.print_e13 s;
  assert (Chaos_harness.e13_violations s = 0);
  print_endline "(asserted: zero violations, mirrored and dual arms)";
  assert (Chaos_harness.e13_mirrored_lost s = 0);
  print_endline
    "(asserted: primary-only faults cost nothing — zero reported-lost and \
     zero tail-ambiguous across every mirrored run)";
  assert (Chaos_harness.e13_unmirrored_lost s > 0);
  print_endline
    "(asserted: the unmirrored calibration arm reproduces E12-scale losses)";
  let path =
    Harness.write_snapshot ~experiment:"e13" (Chaos_harness.e13_to_metrics s)
  in
  Printf.printf "snapshot: %s\n" path
