(** E12 — media-fault chaos campaign.

    The robustness companion to E8: crash-fuzz escalated with media faults
    (bit flips and torn spans in durable bytes), transient flush/fence
    failures, and nested crashes armed to fire mid-recovery. Every hardened
    row must show zero violations; the unhardened calibration pass must be
    caught losing data (otherwise the detector proves nothing). *)

open Test_support

let run () =
  (* 4 objects x 130 seeds = 520 hardened runs, + 30 calibration runs. *)
  let s = Chaos_harness.run ~seeds_per_object:130 ~calibration_seeds:30 in
  Chaos_harness.print s;
  assert (Chaos_harness.total_violations s = 0);
  print_endline "(asserted: zero violations in every hardened campaign)";
  assert (s.Chaos_harness.calibration.Chaos_harness.cal_caught > 0);
  print_endline
    "(asserted: the unhardened calibration baseline was caught losing data)";
  let path =
    Harness.write_snapshot ~experiment:"e12" (Chaos_harness.to_metrics s)
  in
  Printf.printf "snapshot: %s\n" path
