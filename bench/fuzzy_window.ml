(** F2 — the fuzzy window (Figure 2 / Proposition 5.2).

    Across many random schedules, record the fuzzy windows the persist
    steps observed. Proposition 5.2 bounds them by MAX-PROCESSES; the
    table shows the bound is both respected and approached (contention
    genuinely produces windows larger than 1).

    Measured through the observability layer: each object is built with an
    active {!Onll_obs.Sink.t} shared across all schedules for a process
    count, so the sink's ["fuzzy.window"] histogram accumulates every
    persist-step window; its max is cross-checked against the legacy
    {!Onll_core.Onll.CONSTRUCTION.max_fuzzy_window} accessor. *)

open Onll_machine
module Cs = Onll_specs.Counter

(* Worst window across [seeds] schedules, measured both ways: the sink
   histogram and the legacy per-object accessor. *)
let max_window ~n ~seeds ~ops =
  let sink = Onll_obs.Sink.make () in
  let worst_legacy = ref 0 in
  for seed = 1 to seeds do
    let sim = Sim.create ~sink ~max_processes:n () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj =
      C.make
        { Onll_core.Onll.Config.default with log_capacity = 1 lsl 20; sink }
    in
    let procs =
      Array.init n (fun _ ->
          fun _ ->
            for _ = 1 to ops do
              ignore (C.update obj Cs.Increment)
            done)
    in
    let outcome = Sim.run sim (Onll_sched.Sched.Strategy.random ~seed) procs in
    assert (outcome = Onll_sched.Sched.World.Completed);
    worst_legacy := max !worst_legacy ((C.snapshot obj).Onll_core.Onll.Snapshot.max_fuzzy_window)
  done;
  let h =
    Onll_obs.Metrics.(
      summary (histogram (Onll_obs.Sink.registry sink) "fuzzy.window"))
  in
  (* The histogram and the legacy accessor must agree on the worst case. *)
  assert (h.Onll_obs.Metrics.hs_max = !worst_legacy);
  h

let run () =
  let summary = Onll_obs.Metrics.create () in
  let rows =
    List.map
      (fun n ->
        let h = max_window ~n ~seeds:40 ~ops:8 in
        let w = h.Onll_obs.Metrics.hs_max in
        assert (w <= n);
        let g name v =
          Onll_obs.Metrics.set
            (Onll_obs.Metrics.gauge summary
               (Printf.sprintf "window.%s.n%d" name n))
            v
        in
        g "max" (float_of_int w);
        g "mean" h.Onll_obs.Metrics.hs_mean;
        [
          string_of_int n;
          string_of_int w;
          Onll_util.Table.fmt_float h.Onll_obs.Metrics.hs_mean;
          string_of_int n;
          (if w <= n then "holds" else "VIOLATED");
        ])
      [ 2; 3; 4; 6; 8 ]
  in
  Onll_util.Table.print
    ~title:
      "F2 — fuzzy windows over 40 random schedules (Prop 5.2 bound: \
       MAX-PROCESSES)"
    ~header:
      [ "processes"; "max window seen"; "mean window"; "bound"; "Prop 5.2" ]
    rows;
  let path = Harness.write_snapshot ~experiment:"f2" summary in
  Printf.printf "snapshot: %s\n" path
