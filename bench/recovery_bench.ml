(** E6 — recovery cost and memory reclamation (§8 checkpoints and pruning).

    Crash an object after H updates and measure what recovery must do, with
    and without periodic checkpoints: wall time, live log bytes scanned, and
    the size of the rebuilt execution trace. Expected shape: without
    checkpoints everything is O(H); with a checkpoint every k updates, all
    three collapse to O(k).

    Each run observes its own crash/recovery through an {!Onll_obs.Sink.t}:
    the machine emits the crash event, [recover] emits a recovery event
    carrying the number of replayed operations, and the replay count is
    cross-checked against the rebuilt trace size. *)

open Onll_machine
module Cs = Onll_specs.Counter

type sample = {
  recovery_ms : float;
  live_log_bytes : int;
  trace_nodes : int;
  replayed_ops : int;  (** from the sink's ["recovery.ops"] counter *)
  value : int;
}

let run_one ~history ~checkpoint_every =
  let sink = Onll_obs.Sink.make () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj =
    C.make { Onll_core.Onll.Config.default with log_capacity = 1 lsl 22; sink }
  in
  for k = 1 to history do
    ignore (C.update obj Cs.Increment);
    if checkpoint_every > 0 && k mod checkpoint_every = 0 then begin
      ignore (C.checkpoint obj);
      C.prune obj ~below:((C.snapshot obj).Onll_core.Onll.Snapshot.latest_available_idx)
    end
  done;
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  let live_log_bytes =
    let snap = C.snapshot obj in
    List.fold_left
      (fun a l -> a + l.Onll_core.Onll.Snapshot.live_bytes)
      0 snap.Onll_core.Onll.Snapshot.logs
  in
  let (), dt = Harness.time_it (fun () -> C.recover obj) in
  let reg = Onll_obs.Sink.registry sink in
  assert (Onll_obs.Metrics.counter_value reg "crashes" = 1);
  assert (Onll_obs.Metrics.counter_value reg "recoveries" = 1);
  {
    recovery_ms = dt *. 1e3;
    live_log_bytes;
    trace_nodes = List.length (C.trace_nodes obj);
    replayed_ops = Onll_obs.Metrics.counter_value reg "recovery.ops";
    value = C.read obj Cs.Get;
  }

let run () =
  let histories = [ 200; 500; 1_000; 2_000; 4_000 ] in
  let summary = Onll_obs.Metrics.create () in
  let rows =
    List.concat_map
      (fun h ->
        List.map
          (fun (label, every) ->
            let s = run_one ~history:h ~checkpoint_every:every in
            assert (s.value = h);
            let g name v =
              Onll_obs.Metrics.set
                (Onll_obs.Metrics.gauge summary
                   (Printf.sprintf "recovery.%s.h%d.ckpt%d" name h every))
                v
            in
            g "ms" s.recovery_ms;
            g "live_bytes" (float_of_int s.live_log_bytes);
            g "replayed_ops" (float_of_int s.replayed_ops);
            [
              string_of_int h;
              label;
              Onll_util.Table.fmt_float s.recovery_ms;
              string_of_int s.live_log_bytes;
              string_of_int s.trace_nodes;
              string_of_int s.replayed_ops;
            ])
          [ ("none", 0); ("every 200", 200) ])
      histories
  in
  Onll_util.Table.print
    ~title:
      "E6 — recovery cost vs history length (counter; crash after H \
       updates; recovered value asserted = H)"
    ~header:
      [ "history"; "checkpoints"; "recovery ms"; "live log bytes";
        "trace nodes"; "replayed ops" ]
    rows;
  let path = Harness.write_snapshot ~experiment:"e6" summary in
  Printf.printf "snapshot: %s\n" path
