(* E18: the crash-tolerant network front-end.

   Three arms, mirroring the E17 layout:

   1. The deterministic service crash slices ({!gate_slices}, shared with
      the bench gate): in-process restart scenarios driving the protocol
      state machine ([Service.Make.handle]) over file-backed stores with
      Raise-mode kills, plus the policy-surface and allocator-restart
      slices — all counters golden-able under the [e18.] prefix.

   2. The fault-storm SLO measurement: spawn a real `onll serve` (socket,
      in-memory machine with emulated fences), drive it with the
      open-loop generator at a four-digit client population — beyond
      select(2)'s FD_SETSIZE, which is why the front-end polls — and
      report p50/p99/p999 arrival-to-confirm latency, shed rate and
      goodput, keyed [e18t.*] (never gated: wall-clock).

   3. The out-of-process campaign: seeded SIGKILL storms, reattach floods
      with SIGTERM landing mid-load, and the degraded-media drill, under
      one cross-pass exactly-once audit, keyed [e18c.*]. *)

module Schaos = Test_support.Service_chaos
module Loadgen = Onll_serve.Loadgen
module Metrics = Onll_obs.Metrics

let gate_slices = Schaos.gate_slices

(* {1 Arm 2: fault-storm SLOs at a 4-digit client population} *)

let find_cli () =
  match Sys.getenv_opt "ONLL_CLI" with
  | Some p when Sys.file_exists p -> Some p
  | _ ->
      let candidate = "_build/default/bin/onll_cli.exe" in
      if Sys.file_exists candidate then Some candidate else None

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let slo_pass reg ~worker ~construction =
  let clients = env_int "ONLL_E18_CLIENTS" 1200 in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "onll-e18-slo-%d.sock" (Unix.getpid ()))
  in
  let pid, ic =
    let r, w = Unix.pipe () in
    let pid =
      Unix.create_process worker
        [|
          worker;
          "serve";
          "--socket=" ^ socket;
          "--construction=" ^ construction;
          "--max-conns=" ^ string_of_int (clients + 64);
        |]
        Unix.stdin w Unix.stderr
    in
    Unix.close w;
    (pid, Unix.in_channel_of_descr r)
  in
  (* if an assertion below fires, still reap the worker: an orphaned server
     keeps the pipe (and any CI log tail) open forever *)
  Fun.protect ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()))
  @@ fun () ->
  (match input_line ic with
  | exception End_of_file -> failwith "e18 slo: server died before READY"
  | _ready ->
      let audit = Loadgen.Audit.create () in
      let cfg =
        {
          (Loadgen.default_config ~socket_path:socket) with
          Loadgen.clients;
          rate_hz = 2.;
          duration_ms = 2_000;
          seed = 42;
          deadline_ms = 1_000;
          connect_timeout_ms = 10_000;
        }
      in
      let rep = Loadgen.run ~audit cfg in
      let g name v =
        Metrics.set
          (Metrics.gauge reg (Printf.sprintf "e18t.%s.%s" construction name))
          v
      in
      g "clients" (float_of_int clients);
      g "confirmed" (float_of_int rep.Loadgen.r_confirmed);
      g "p50_us" (float_of_int rep.Loadgen.r_p50_us);
      g "p99_us" (float_of_int rep.Loadgen.r_p99_us);
      g "p999_us" (float_of_int rep.Loadgen.r_p999_us);
      g "goodput_ops_s" rep.Loadgen.r_goodput;
      g "shed_rate" rep.Loadgen.r_shed_rate;
      Format.printf "e18 slo (%s, %d clients): %a@." construction clients
        Loadgen.pp_report rep;
      assert (rep.Loadgen.r_confirmed > 0);
      (* deadline-exhausted clients legitimately end the pass with an op in
         doubt; a quiet re-attach pass must resolve every one of them *)
      if rep.Loadgen.r_unresolved > 0 then begin
        let rep2 = Loadgen.run ~audit { cfg with Loadgen.duration_ms = 0 } in
        Format.printf "e18 slo resolve (%s): %a@." construction
          Loadgen.pp_report rep2;
        assert (rep2.Loadgen.r_unresolved = 0)
      end);
  Unix.kill pid Sys.sigterm;
  let _, st = Unix.waitpid [] pid in
  close_in ic;
  (try Sys.remove socket with Sys_error _ -> ());
  match st with
  | Unix.WEXITED 0 -> ()
  | _ -> failwith "e18 slo: server did not drain cleanly"

let slo reg = function
  | None ->
      print_endline
        "e18 slo: onll CLI binary not found (set $ONLL_CLI); skipping the \
         socket arm"
  | Some worker ->
      List.iter
        (fun construction -> slo_pass reg ~worker ~construction)
        [ "plain"; "batched" ]

(* {1 Arm 3: the fault-storm campaign} *)

let campaign reg = function
  | None ->
      print_endline
        "e18 campaign: onll CLI binary not found (set $ONLL_CLI); skipping \
         the subprocess arm"
  | Some worker ->
      let seeds = env_int "ONLL_E18_SEEDS" 8 in
      let dir = Schaos.fresh_dir () in
      let cam = Schaos.run_campaign ~worker ~dir ~seeds in
      Format.printf "e18 campaign: %a@." Schaos.pp_campaign cam;
      List.iter
        (Printf.eprintf "e18 campaign violation: %s\n")
        (Schaos.campaign_violations cam);
      Schaos.campaign_to_metrics reg cam;
      Schaos.rm_rf dir;
      assert (Schaos.campaign_violations cam = [])

let run () =
  let reg = Metrics.create () in
  print_endline "== deterministic service crash slices (gate material) ==";
  gate_slices reg;
  assert (Metrics.counter_value reg "e18.restart.plain.violations" = 0);
  assert (Metrics.counter_value reg "e18.restart.mirrored.violations" = 0);
  assert (Metrics.counter_value reg "e18.restart.plain.kills" > 0);
  assert (Metrics.counter_value reg "e18.oseq.reused" = 0);
  let cli = find_cli () in
  print_endline "== fault-storm SLOs over a real socket ==";
  slo reg cli;
  print_endline "== SIGKILL / flood / degraded campaign ==";
  campaign reg cli;
  let path = Harness.write_snapshot ~experiment:"e18" reg in
  Printf.printf "snapshot: %s\n" path
