(** E1 — persistent fences per operation (Theorem 5.1).

    For every object specification and every implementation, run (a) an
    update-only phase and (b) a mixed update/read phase under a random
    schedule, and report persistent fences per update and per read. The
    paper's claim: ONLL costs exactly 1 per update and 0 per read; the
    linearize-early variant charges reads; shadow paging charges 2 per
    update; flat combining amortises below 1 by blocking; volatile pays
    nothing (and persists nothing).

    Attribution is direct: every implementation is built over an active
    {!Onll_obs.Sink.t} and records the invoking process's persistent-fence
    delta around each operation into ["fences.update"]/["fences.read"]
    (see {!Onll_obs.Opstats}), so reads are charged exactly what they
    executed — no subtraction heuristics against the update-only phase. *)

open Onll_machine

let n_procs = 3
let updates_phase = 20  (* per process *)
let mixed_updates = 10
let mixed_reads = 10

module Audit (S : Onll_core.Spec.S) = struct
  module R = Onll_baselines.Registry.Make (S)

  let build ~gen_update ~gen_read ~seed impl =
    let sink = Onll_obs.Sink.make () in
    let rng = Onll_util.Splitmix.create seed in
    match
      R.build ~sink
        ~options:
          {
            Onll_baselines.Registry.default_options with
            log_capacity = 1 lsl 18;
            state_capacity = 1 lsl 14;
          }
        ~max_processes:n_procs
        ~gen_update:(fun () -> gen_update rng)
        ~gen_read:(fun () -> gen_read rng)
        impl
    with
    | Some h -> h
    | None -> invalid_arg ("fence_audit: unknown implementation " ^ impl)

  let per_op registry ~fences ~ops =
    let f = Onll_obs.Metrics.counter_value registry fences in
    let n = Onll_obs.Metrics.counter_value registry ops in
    if n = 0 then 0. else float_of_int f /. float_of_int n

  (* Measure one implementation: (pf/update, pf/read). *)
  let measure ~gen_update ~gen_read impl =
    (* Phase U: updates only. *)
    let h = build ~gen_update ~gen_read ~seed:1 impl in
    let open Onll_baselines.Registry in
    let outcome =
      Sim.run h.sim
        (Onll_sched.Sched.Strategy.random ~seed:11)
        (Array.init n_procs (fun _ _ ->
             for _ = 1 to updates_phase do
               h.update ()
             done))
    in
    assert (outcome = Onll_sched.Sched.World.Completed);
    let per_update =
      per_op
        (Onll_obs.Sink.registry h.sink)
        ~fences:"fences.update" ~ops:"ops.update"
    in
    (* The session layer's own durable cost: its client-record append,
       attributed to fences.session/ops.session — zero for every other
       implementation (they never touch those counters). *)
    let per_session =
      per_op
        (Onll_obs.Sink.registry h.sink)
        ~fences:"fences.session" ~ops:"ops.session"
    in
    (* Phase M: mixed, on a fresh object (so histories are comparable). *)
    let h = build ~gen_update ~gen_read ~seed:2 impl in
    let outcome =
      Sim.run h.sim
        (Onll_sched.Sched.Strategy.random ~seed:23)
        (Array.init n_procs (fun _ _ ->
             for k = 1 to mixed_updates + mixed_reads do
               if k mod 2 = 0 then h.read () else h.update ()
             done))
    in
    assert (outcome = Onll_sched.Sched.World.Completed);
    let per_read =
      per_op
        (Onll_obs.Sink.registry h.sink)
        ~fences:"fences.read" ~ops:"ops.read"
    in
    (per_update, per_read, per_session)

  let rows ~summary ~gen_update ~gen_read =
    List.map
      (fun impl ->
        let per_update, per_read, per_session =
          measure ~gen_update ~gen_read impl
        in
        Onll_obs.Metrics.set
          (Onll_obs.Metrics.gauge summary
             (Printf.sprintf "pf_update.%s.%s" S.name impl))
          per_update;
        Onll_obs.Metrics.set
          (Onll_obs.Metrics.gauge summary
             (Printf.sprintf "pf_read.%s.%s" S.name impl))
          per_read;
        if impl = "onll-session" then
          Onll_obs.Metrics.set
            (Onll_obs.Metrics.gauge summary
               (Printf.sprintf "pf_session.%s.%s" S.name impl))
            per_session;
        [
          S.name;
          impl;
          Onll_util.Table.fmt_float per_update;
          Onll_util.Table.fmt_float per_read;
          Onll_util.Table.fmt_float per_session;
        ])
      Onll_baselines.Registry.names
end

let run () =
  let module A_counter = Audit (Onll_specs.Counter) in
  let module A_register = Audit (Onll_specs.Register) in
  let module A_queue = Audit (Onll_specs.Queue_spec) in
  let module A_stack = Audit (Onll_specs.Stack_spec) in
  let module A_kv = Audit (Onll_specs.Kv) in
  let module A_set = Audit (Onll_specs.Set_spec) in
  let module A_ledger = Audit (Onll_specs.Ledger) in
  let open Test_support in
  let summary = Onll_obs.Metrics.create () in
  let rows =
    A_counter.rows ~summary ~gen_update:Gen.Counter.update
      ~gen_read:Gen.Counter.read
    @ A_register.rows ~summary ~gen_update:Gen.Register.update
        ~gen_read:Gen.Register.read
    @ A_queue.rows ~summary ~gen_update:Gen.Queue.update
        ~gen_read:Gen.Queue.read
    @ A_stack.rows ~summary ~gen_update:Gen.Stack.update
        ~gen_read:Gen.Stack.read
    @ A_kv.rows ~summary ~gen_update:Gen.Kv.update ~gen_read:Gen.Kv.read
    @ A_set.rows ~summary ~gen_update:Gen.Set_g.update
        ~gen_read:Gen.Set_g.read
    @ A_ledger.rows ~summary ~gen_update:Gen.Ledger.update
        ~gen_read:Gen.Ledger.read
  in
  Onll_util.Table.print
    ~title:
      "E1 — persistent fences per operation (Theorem 5.1: ONLL = 1 per \
       update, 0 per read)"
    ~header:
      [ "object"; "implementation"; "pf/update"; "pf/read"; "pf/session" ]
    rows;
  (* Hard assertions for the headline claim. *)
  List.iter
    (fun row ->
      match row with
      | [ _; impl; pu; pr; ps ]
        when impl = "onll" || impl = "onll+views" || impl = "onll-wait-free"
             || impl = "onll-mirrored" || impl = "onll-sharded"
             || impl = "onll-txn" ->
          (* onll-txn included: single updates take the fast path — a
             plain sharded update, so the transaction layer adds nothing
             to Theorem 5.1's per-operation cost. *)
          assert (pu = "1" && pr = "0" && ps = "0")
      | [ _; "onll-session"; pu; pr; ps ] ->
          (* Theorem 5.1 per layer: the object still pays exactly 1
             pf/update and 0 pf/read; the session adds exactly 1 pf for
             its client-record append and nothing else. *)
          assert (pu = "1" && pr = "0" && ps = "1")
      | [ _; "onll-relaxed"; pu; pr; ps ] ->
          (* Risk-budgeted lazy fences (E20): one fence drains a full
             k-deep tail, so strictly below 1 pf/update in steady state —
             and strictly positive (durability is deferred, never
             skipped); reads stay free. *)
          let pu = float_of_string pu in
          assert (pu < 1.0 && pu > 0. && pr = "0" && ps = "0")
      | [ _; "onll-batched"; pu; pr; ps ] ->
          (* Group commit amortises the fence across concurrent
             submitters: at most 1 pf/update (Thm 6.3 — never beaten
             without concurrency to share it), strictly positive (the
             fence is real), still 0 per read. *)
          let pu = float_of_string pu in
          assert (pu <= 1.0 && pu > 0. && pr = "0" && ps = "0")
      | _ -> ())
    rows;
  print_endline
    "(asserted: every onll row reads exactly 1 pf/update, 0 pf/read — \
     mirroring included: both replica flushes drain under one fence; \
     sharding included: an update runs on exactly one shard, and global \
     reads fan out fence-free; sessions included: exactly-once submission \
     adds exactly 1 pf for the durable client record and 0 to the \
     object\'s update path; batching included: the shared batch fence \
     amortises to at most 1 pf/update and reads stay free; relaxed mode \
     included: the risk-budgeted lazy fence lands strictly below 1 \
     pf/update by deferring — not skipping — durability)";
  let path =
    Harness.write_snapshot ~experiment:"e1"
      ~meta:
        [
          ("processes", string_of_int n_procs);
          ("updates_per_proc", string_of_int updates_phase);
        ]
      summary
  in
  Printf.printf "snapshot: %s\n" path
