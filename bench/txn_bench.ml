(** E19 — cross-shard transactions: one coordinator fence vs two-phase
    commit, plus the atomicity crash campaign.

    Three parts, the first two exactly reproducible and gated by
    [onll gate]:

    - {b fence accounting (sim, deterministic)}: a workload of
      4-participant transactions (one kv put per shard) through
      {!Onll_txn} must cost {e exactly} one persistent fence per
      transaction — the coordinator commit append — against a naive
      two-phase-commit baseline built over the very same sharded object,
      which pays one force-write per participant ("prepare by doing")
      plus a durable decision record: [S + 1 = 5] fences. The gated
      headline: ONLL's fences/txn is at most [(S + 1) / 2] — at least 2x
      fewer — and in fact exactly 1.
    - {b atomicity chaos slice (sim, deterministic)}: a small
      {!Test_support.Txn_chaos} campaign (plain + mirrored arms, crash
      sweep, all-or-nothing + balanced-books audits, zero violations
      required) plus its unhardened calibration, which must be caught.
    - {b seeded crash campaign + native throughput}: the full campaign at
      [ONLL_E19_SEEDS] seeds per arm (default 200), and a native
      wall-clock comparison of transaction throughput against the 2PC
      baseline at a storage-class 20 us fence — the fence gap is the
      story, and the speedup approaches the 5:1 fence ratio as the fence
      latency dominates per-transaction CPU. Measurements are recorded
      as ungated gauges; the violation counters are what CI pins. *)

open Onll_machine
module Kv = Onll_specs.Kv

let n_shards = 4
let n_procs = 2
let txns_per_proc = 12

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

(* {2 The naive 2PC baseline}

   Over the SAME sharded construction, so the comparison isolates the
   commit protocol: prepare = force every sub-operation through its shard
   (each a complete one-fence durable update — "prepare by doing", the
   cheapest prepare a force-write-per-participant protocol can hope for),
   decide = one durable decision record in the coordinator's own log.
   S participants cost S + 1 fences; atomicity across a crash would
   additionally need the decision sweep ONLL gets from its oracle, which
   the baseline does not implement — it exists to price the fences. *)
module Two_pc (M : Onll_machine.Machine_sig.S) = struct
  module Sh = Onll_sharded.Make (M) (Kv)
  module L = Onll_plog.Plog.Make (M)

  type t = { sh : Sh.t; dec : L.t array; seqs : int array }

  let make ~shards cfg =
    {
      sh = Sh.make ~shards cfg;
      dec =
        Array.init M.max_processes (fun p ->
            L.create ~sink:cfg.Onll_core.Onll.Config.sink ~replicas:1
              ~name:(Printf.sprintf "kv.2pc.dec.%d" p)
              ~capacity:cfg.Onll_core.Onll.Config.log_capacity ());
      seqs = Array.make M.max_processes 0;
    }

  let txn t ops =
    (* prepare: one fenced durable update per participant *)
    let vs = List.map (Sh.update t.sh) ops in
    (* decide: one more fenced append *)
    let p = M.self () in
    let seq = t.seqs.(p) in
    t.seqs.(p) <- seq + 1;
    (match
       L.try_append t.dec.(p)
         Onll_util.Codec.(encode (pair int int) (p, seq))
     with
    | Ok () -> ()
    | Error `Full -> failwith "2pc decision log full");
    vs
end

(* One put per shard, per-process keys: probe the router for the p-th key
   it sends to each shard. *)
let shard_keys route p =
  Array.init n_shards (fun s ->
      let rec go i left =
        let k = Printf.sprintf "k%d" i in
        if route (Kv.Put (k, "")) = s then
          if left = 0 then k else go (i + 1) (left - 1)
        else go (i + 1) left
      in
      go 0 p)

(* {2 Part 1 — fence accounting (deterministic, gated)} *)

let fence_accounting summary =
  let total_txns = n_procs * txns_per_proc in
  (* ONLL arm *)
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim = Sim.create ~sink ~max_processes:n_procs () in
  let module M = (val Sim.machine sim) in
  let module Tx = Onll_txn.Make (M) (Kv) in
  let obj =
    Tx.make ~shards:n_shards
      { Onll_core.Onll.Config.default with sink; log_capacity = 1 lsl 18 }
  in
  let route op = Tx.Sh.shard_of_update (Tx.sharded obj) op in
  let outcome =
    Sim.run sim
      (Onll_sched.Sched.Strategy.random ~seed:42)
      (Array.init n_procs (fun p _ ->
           let keys = shard_keys route p in
           for k = 1 to txns_per_proc do
             ignore
               (Tx.txn obj
                  (List.init n_shards (fun s ->
                       Kv.Put (keys.(s), string_of_int k))))
           done))
  in
  assert (outcome = Onll_sched.Sched.World.Completed);
  let c name = Onll_obs.Metrics.counter_value registry name in
  (* Theorem 5.1 lifted to transactions: ONE fence per multi-shard
     transaction, however many participants — and nothing else fenced. *)
  assert (c "ops.txn" = total_txns);
  assert (c "fences.txn" = total_txns);
  assert (M.persistent_fences () = total_txns);
  let onll_per_txn = float_of_int (c "fences.txn") /. float_of_int total_txns in
  (* 2PC arm: the same workload, the same shards, the same schedule. *)
  let sim2 = Sim.create ~max_processes:n_procs () in
  let module M2 = (val Sim.machine sim2) in
  let module P = Two_pc (M2) in
  let obj2 =
    P.make ~shards:n_shards
      { Onll_core.Onll.Config.default with log_capacity = 1 lsl 18 }
  in
  let route2 op = P.Sh.shard_of_update obj2.P.sh op in
  let outcome =
    Sim.run sim2
      (Onll_sched.Sched.Strategy.random ~seed:42)
      (Array.init n_procs (fun p _ ->
           let keys = shard_keys route2 p in
           for k = 1 to txns_per_proc do
             ignore
               (P.txn obj2
                  (List.init n_shards (fun s ->
                       Kv.Put (keys.(s), string_of_int k))))
           done))
  in
  assert (outcome = Onll_sched.Sched.World.Completed);
  let twopc_fences = M2.persistent_fences () in
  assert (twopc_fences = (n_shards + 1) * total_txns);
  let twopc_per_txn = float_of_int twopc_fences /. float_of_int total_txns in
  (* The acceptance bound: at least 2x fewer fences per transaction than
     2PC at S = 4 — i.e. <= (S + 1) / 2 = 2.5. Actually exactly 1. *)
  assert (onll_per_txn <= twopc_per_txn /. 2.);
  let add name v =
    Onll_obs.Metrics.add (Onll_obs.Metrics.counter summary name) v
  in
  add "e19.acct.ops.txn" total_txns;
  add "e19.acct.fences.txn" (c "fences.txn");
  add "e19.acct.fences.2pc" twopc_fences;
  add "e19.acct.participants" n_shards;
  Printf.printf
    "fence accounting (sim, %d txns x %d participants): onll-txn %.2f \
     fences/txn vs 2PC %.2f (one prepare force-write per shard + a \
     decision) — %.1fx fewer\n"
    total_txns n_shards onll_per_txn twopc_per_txn
    (twopc_per_txn /. onll_per_txn)

(* {2 Part 2 — atomicity chaos slices (deterministic, gated)} *)

let chaos_slices summary =
  let open Test_support in
  let s = Txn_chaos.run_campaign ~seeds:12 ~calibration_seeds:8 in
  Txn_chaos.print s;
  assert (Txn_chaos.total_violations s = 0);
  assert (s.Txn_chaos.cal_caught > 0);
  print_endline
    "(asserted: zero atomicity violations across both transaction chaos \
     arms; the sweep-free calibration was caught)";
  ignore (Txn_chaos.to_metrics ~reg:summary s)

let gate_slices summary =
  fence_accounting summary;
  chaos_slices summary

(* {2 Part 3 — seeded campaign + native throughput} *)

let native_throughput summary =
  (* Storage-class fence (~20 us, an SSD-ish flush): the regime where a
     commit protocol's fence count is the bill. At cache-line-flush
     latencies per-transaction CPU dominates and the two arms converge. *)
  let fence_ns = 20_000 in
  let total_txns = 4_000 in
  let run_arm which =
    let native = Native.create ~max_processes:1 ~fence_ns () in
    let module M = (val Native.machine native) in
    let cfg =
      { Onll_core.Onll.Config.default with log_capacity = 1 lsl 20 }
    in
    let dt =
      match which with
      | `Onll ->
          let module Tx = Onll_txn.Make (M) (Kv) in
          let obj = Tx.make ~shards:n_shards cfg in
          let route op = Tx.Sh.shard_of_update (Tx.sharded obj) op in
          let keys = shard_keys route 0 in
          let t0 = Unix.gettimeofday () in
          ignore
            (Native.run_workers native
               [
                 (fun _ ->
                   for k = 1 to total_txns do
                     ignore
                       (Tx.txn obj
                          (List.init n_shards (fun s ->
                               Kv.Put (keys.(s), string_of_int (k land 63)))));
                     if k mod 256 = 0 then Tx.compact obj
                   done);
               ]);
          Unix.gettimeofday () -. t0
      | `Two_pc ->
          let module P = Two_pc (M) in
          let obj = P.make ~shards:n_shards cfg in
          let route op = P.Sh.shard_of_update obj.P.sh op in
          let keys = shard_keys route 0 in
          let t0 = Unix.gettimeofday () in
          ignore
            (Native.run_workers native
               [
                 (fun _ ->
                   for k = 1 to total_txns do
                     ignore
                       (P.txn obj
                          (List.init n_shards (fun s ->
                               Kv.Put (keys.(s), string_of_int (k land 63)))));
                     if k mod 256 = 0 then begin
                       P.Sh.compact obj.P.sh;
                       Array.iter
                         (fun l ->
                           P.L.set_head l (P.L.entry_count l);
                           P.L.relocate l)
                         obj.P.dec
                     end
                   done);
               ]);
          Unix.gettimeofday () -. t0
    in
    Harness.ops_per_sec total_txns dt
  in
  let tx = Harness.best_of 2 (fun () -> run_arm `Onll) in
  let twopc = Harness.best_of 2 (fun () -> run_arm `Two_pc) in
  Printf.printf
    "native throughput (%d-participant txns, %dns fence): onll-txn %.2f \
     ktxn/s vs 2PC %.2f ktxn/s (%.2fx)\n"
    n_shards fence_ns (tx /. 1e3) (twopc /. 1e3) (tx /. twopc);
  Onll_obs.Metrics.set
    (Onll_obs.Metrics.gauge summary "ktxn.onll")
    (tx /. 1e3);
  Onll_obs.Metrics.set
    (Onll_obs.Metrics.gauge summary "ktxn.2pc")
    (twopc /. 1e3)

let run () =
  let summary = Onll_obs.Metrics.create () in
  fence_accounting summary;
  (* The full seeded campaign: plain + mirrored arms, both spotless, and
     a calibration arm that must be caught. *)
  let seeds = env_int "ONLL_E19_SEEDS" 200 in
  let s =
    Test_support.Txn_chaos.run_campaign ~seeds
      ~calibration_seeds:(max 10 (seeds / 10))
  in
  Test_support.Txn_chaos.print s;
  assert (Test_support.Txn_chaos.total_violations s = 0);
  assert (s.Test_support.Txn_chaos.cal_caught > 0);
  ignore (Test_support.Txn_chaos.to_metrics ~reg:summary s);
  native_throughput summary;
  let path =
    Harness.write_snapshot ~experiment:"e19"
      ~meta:
        [
          ("participants", string_of_int n_shards);
          ("seeds", string_of_int seeds);
        ]
      summary
  in
  Printf.printf "snapshot: %s\n" path
