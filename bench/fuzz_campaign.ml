(** E8 — durable-linearizability crash-fuzz campaign.

    The statistical companion to Definition 5.6: many random schedules ×
    random crash points × crash policies, each audited (completed-operation
    durability, precedence of the recovered order) and — when small enough —
    validated by the exhaustive checker. Every row must show zero failures. *)

open Test_support

module Campaign (S : Onll_core.Spec.S) = struct
  module F = Fuzz.Make (S)

  let run ~gen_update ~gen_read ~seeds =
    let crashes = ref 0 in
    let checked = ref 0 in
    let failures = ref 0 in
    for seed = 1 to seeds do
      let plan =
        {
          Fuzz.default_plan with
          seed;
          n_procs = 3;
          ops_per_proc = 3;
          crash_at = Some (8 + (seed * 13 mod 150));
          policy =
            (match seed mod 3 with
            | 0 -> Onll_nvm.Crash_policy.Persist_all
            | 1 -> Onll_nvm.Crash_policy.Drop_all
            | _ -> Onll_nvm.Crash_policy.Random seed);
          local_views = seed mod 2 = 0;
          wait_free = seed mod 5 = 0;
        }
      in
      let r = F.run ~plan ~gen_update ~gen_read () in
      if r.Fuzz.crashed then incr crashes;
      if r.Fuzz.verdict <> None then incr checked;
      if r.Fuzz.failures <> [] || not r.Fuzz.verdict_ok then incr failures
    done;
    (seeds, !crashes, !checked, !failures)
end

let run () =
  let module C_counter = Campaign (Onll_specs.Counter) in
  let module C_queue = Campaign (Onll_specs.Queue_spec) in
  let module C_kv = Campaign (Onll_specs.Kv) in
  let module C_stack = Campaign (Onll_specs.Stack_spec) in
  let module C_set = Campaign (Onll_specs.Set_spec) in
  let module C_ledger = Campaign (Onll_specs.Ledger) in
  let seeds = 80 in
  let rows =
    [
      ("counter",
       C_counter.run ~gen_update:Gen.Counter.update ~gen_read:Gen.Counter.read
         ~seeds);
      ("queue",
       C_queue.run ~gen_update:Gen.Queue.update ~gen_read:Gen.Queue.read
         ~seeds);
      ("kv", C_kv.run ~gen_update:Gen.Kv.update ~gen_read:Gen.Kv.read ~seeds);
      ("stack",
       C_stack.run ~gen_update:Gen.Stack.update ~gen_read:Gen.Stack.read
         ~seeds);
      ("set",
       C_set.run ~gen_update:Gen.Set_g.update ~gen_read:Gen.Set_g.read ~seeds);
      ("ledger",
       C_ledger.run ~gen_update:Gen.Ledger.update ~gen_read:Gen.Ledger.read
         ~seeds);
    ]
    |> List.map (fun (name, (runs, crashes, checked, failures)) ->
           [
             name;
             string_of_int runs;
             string_of_int crashes;
             string_of_int checked;
             string_of_int failures;
           ])
  in
  Onll_util.Table.print
    ~title:
      "E8 — crash-fuzz campaign (random schedules, crash points and \
       policies; failures must be 0)"
    ~header:[ "object"; "runs"; "crashed"; "checker-validated"; "failures" ]
    rows;
  List.iter
    (fun row -> assert (List.nth row 4 = "0"))
    rows;
  print_endline "(asserted: zero failures in every campaign)";
  let summary = Onll_obs.Metrics.create () in
  List.iter
    (fun row ->
      match row with
      | [ name; runs; crashes; checked; failures ] ->
          List.iter
            (fun (k, v) ->
              Onll_obs.Metrics.add
                (Onll_obs.Metrics.counter summary
                   (Printf.sprintf "fuzz.%s.%s" name k))
                (int_of_string v))
            [
              ("runs", runs);
              ("crashed", crashes);
              ("checked", checked);
              ("failures", failures);
            ]
      | _ -> assert false)
    rows;
  let path = Harness.write_snapshot ~experiment:"e8" summary in
  Printf.printf "snapshot: %s\n" path
