(* E17: the real file-backed store.

   Three arms:

   1. The deterministic crash/fault slices ({!gate_slices}, shared with
      the bench gate): in-process restart scenarios over plain and
      mirrored file stores with seeded kills ([Raise] mode) at, inside
      and around the persistent fence, plus the fsync-EIO
      (retry-then-sticky-degraded), short-write and disk-full arms — all
      counters golden-able.

   2. The fence-cost measurement: the median cost of a real fsync fence
      (store + flush + fence on one region, then the full counter
      update path, plain and mirrored), placed against the simulated
      fence grid E5/E16 sweep (0 / 500 / 2000 ns) — real durability is
      the far end of that axis, which is what makes group commit and
      sharding earn their keep on real media.

   3. The out-of-process kill -9 campaign, driven through `onll store
      worker` subprocesses when the CLI binary is reachable (skipped
      with a note otherwise — e.g. when the bench runs from an
      installed tree).

   Arms 2 and 3 are measurements/campaigns, keyed [e17t.*] / [e17c.*] —
   outside the gate's [e17.] prefix, so wall-clock noise and subprocess
   scheduling never break CI determinism. *)

module Fchaos = Test_support.File_chaos
module Metrics = Onll_obs.Metrics
module Fmem = Onll_nvm.File_memory
module Fm = Onll_machine.File_machine
module Cs = Onll_specs.Counter

let gate_slices = Fchaos.gate_slices

(* {1 Arm 2: measured fence cost on real media} *)

let fence_grid_ns = [ 0; 500; 2000 ]

let median a =
  Array.sort compare a;
  a.(Array.length a / 2)

let raw_fence_ns () =
  let dir = Fchaos.fresh_dir () in
  let fm = Fmem.create ~dir ~max_processes:1 () in
  let r = Fmem.region fm ~name:"probe" ~size:4096 in
  let samples = 64 in
  let ns = Array.make samples 0 in
  let payload = String.make 64 'x' in
  for i = 0 to samples - 1 do
    Fmem.Region.store r ~proc:0 ~off:(i * 64 mod 4096) payload;
    Fmem.Region.flush r ~proc:0 ~off:(i * 64 mod 4096) ~len:64;
    let t0 = Onll_machine.Native.monotonic_ns () in
    Fmem.fence fm ~proc:0;
    let t1 = Onll_machine.Native.monotonic_ns () in
    ns.(i) <- Int64.to_int (Int64.sub t1 t0)
  done;
  Fmem.close fm;
  Fchaos.rm_rf dir;
  median ns

let update_ns ~replicas =
  let dir = Fchaos.fresh_dir () in
  let fmach = Fm.create ~dir ~max_processes:1 () in
  ignore (Fm.register fmach);
  let module M = (val Fm.machine fmach) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj =
    C.make { Onll_core.Onll.Config.default with log_capacity = 1 lsl 16; replicas }
  in
  let updates = 128 in
  let t0 = Onll_machine.Native.monotonic_ns () in
  for _ = 1 to updates do
    ignore (C.update obj Cs.Increment)
  done;
  let t1 = Onll_machine.Native.monotonic_ns () in
  let pf = M.persistent_fences () in
  Fm.close fmach;
  Fchaos.rm_rf dir;
  (Int64.to_int (Int64.sub t1 t0) / updates, pf, updates)

let fence_timing reg =
  let g name v = Metrics.set (Metrics.gauge reg name) (float_of_int v) in
  let fsync_ns = raw_fence_ns () in
  g "e17t.fence.fsync_ns.p50" fsync_ns;
  List.iter
    (fun grid -> g (Printf.sprintf "e17t.fence.grid_ns.%d" grid) grid)
    fence_grid_ns;
  Printf.printf
    "measured fsync fence: %d ns median — vs the simulated grid {%s} ns \
     (real durability sits %s the far end)\n"
    fsync_ns
    (String.concat ", " (List.map string_of_int fence_grid_ns))
    (if fsync_ns >= List.nth fence_grid_ns (List.length fence_grid_ns - 1)
     then "at or beyond"
     else "inside");
  let plain_ns, pf_plain, updates = update_ns ~replicas:1 in
  let mirr_ns, pf_mirr, _ = update_ns ~replicas:2 in
  g "e17t.update.plain.ns" plain_ns;
  g "e17t.update.mirrored.ns" mirr_ns;
  (* Thm 5.1 on real media: still one persistent fence per update, and
     mirroring still rides the same fence (two files fsynced under it) *)
  Metrics.set
    (Metrics.gauge reg "e17t.update.plain.pf_per_update")
    (float_of_int pf_plain /. float_of_int updates);
  Metrics.set
    (Metrics.gauge reg "e17t.update.mirrored.pf_per_update")
    (float_of_int pf_mirr /. float_of_int updates);
  assert (pf_plain <= updates + 2);
  assert (pf_mirr <= updates + 2);
  Printf.printf
    "counter update on files: plain %d ns/op, mirrored (2 files/fence) %d \
     ns/op; %.2f / %.2f persistent fences per update\n"
    plain_ns mirr_ns
    (float_of_int pf_plain /. float_of_int updates)
    (float_of_int pf_mirr /. float_of_int updates)

(* {1 Arm 3: the subprocess kill -9 campaign} *)

let find_cli () =
  match Sys.getenv_opt "ONLL_CLI" with
  | Some p when Sys.file_exists p -> Some p
  | _ ->
      let candidate = "_build/default/bin/onll_cli.exe" in
      if Sys.file_exists candidate then Some candidate else None

let campaign reg =
  match find_cli () with
  | None ->
      print_endline
        "e17 campaign: onll CLI binary not found (set $ONLL_CLI); \
         skipping the subprocess arm"
  | Some worker ->
      let seeds =
        match Sys.getenv_opt "ONLL_E17_SEEDS" with
        | Some s -> int_of_string s
        | None -> 25
      in
      let dir = Fchaos.fresh_dir () in
      let cam = Fchaos.run_campaign ~worker ~dir ~seeds ~target:8 in
      Format.printf "e17 campaign: %a@." Fchaos.pp_campaign cam;
      List.iter
        (Printf.eprintf "e17 campaign violation: %s\n")
        (Fchaos.campaign_violations cam);
      Fchaos.campaign_to_metrics reg cam;
      Fchaos.rm_rf dir;
      assert (Fchaos.campaign_violations cam = [])

let run () =
  let reg = Metrics.create () in
  print_endline "== deterministic crash/fault slices (gate material) ==";
  gate_slices reg;
  assert (Metrics.counter_value reg "e17.restart.plain.violations" = 0);
  assert (Metrics.counter_value reg "e17.restart.mirrored.violations" = 0);
  assert (Metrics.counter_value reg "e17.eio.retry.violations" = 0);
  assert (Metrics.counter_value reg "e17.eio.sticky.violations" = 0);
  assert (Metrics.counter_value reg "e17.eio.sticky.degraded" > 0);
  assert (Metrics.counter_value reg "e17.shortw.violations" = 0);
  assert (Metrics.counter_value reg "e17.enospc.violations" = 0);
  print_endline "== fence cost on real media ==";
  fence_timing reg;
  print_endline "== kill -9 subprocess campaign ==";
  campaign reg;
  let path = Harness.write_snapshot ~experiment:"e17" reg in
  Printf.printf "snapshot: %s\n" path
