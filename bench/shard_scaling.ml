(** E14 — shard scaling: throughput and invariants of the partitioned
    construction ({!Onll_sharded}).

    Three parts, two of them exactly reproducible and gated by [onll gate]:

    - {b fence accounting (sim, deterministic)}: the ["onll-sharded"]
      registry entry run under a seeded random schedule must show {e
      exactly} one persistent fence per update and zero per read — an
      update runs on exactly one shard, so Theorem 5.1's bound survives
      partitioning verbatim; global reads fan out fence-free. Routing
      balance across the 4 shards is recorded alongside.
    - {b sharded chaos slices (sim, deterministic)}: the E12 fault grid
      against 4 shards (crash lands mid-update on one shard while the
      others proceed; zero violations required), and the E13 no-excuse arm
      composed with sharding (mirrored logs, primary-scoped faults: zero
      violations, zero reported loss, zero tail ambiguity).
    - {b native throughput grid}: disjoint-key kv updates, shards ×
      domains at a 500 ns fence plus a fence-latency sweep, with periodic
      {!Onll_sharded.Make.compact} (checkpoint + trace prune) every 256
      ops. Sharding buys {e locality} as well as contention: between
      compactions each shard's trace holds [1/S] of the history, so a
      view-less compute replays [1/S] of the delta — which is why the
      speedup shows up even on a single core. Asserted: 4 shards beat 1
      shard by at least 1.5x at the 500 ns fence point with the most
      domains measured. *)

open Onll_machine
module Kv = Onll_specs.Kv

let shard_counts = [ 1; 2; 4; 8 ]
let fence_ns_default = 500
let compact_every = 256
let available_domains = max 2 (Domain.recommended_domain_count () - 1)

(* {2 Part 1 — fence accounting (deterministic, gated)} *)

let n_procs = 4
let acct_shards = 4

let fence_accounting summary =
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let rng = Onll_util.Splitmix.create 7 in
  let module R = Onll_baselines.Registry.Make (Kv) in
  let h =
    match
      R.build ~sink
        ~options:
          {
            Onll_baselines.Registry.default_options with
            log_capacity = 1 lsl 18;
            shards = acct_shards;
          }
        ~max_processes:n_procs
        ~gen_update:(fun () -> Test_support.Gen.Kv.update rng)
        ~gen_read:(fun () -> Test_support.Gen.Kv.read rng)
        "onll-sharded"
    with
    | Some h -> h
    | None -> assert false
  in
  let open Onll_baselines.Registry in
  let outcome =
    Sim.run h.sim
      (Onll_sched.Sched.Strategy.random ~seed:42)
      (Array.init n_procs (fun _ _ ->
           for k = 1 to 25 do
             if k mod 5 = 0 then h.read () else h.update ()
           done))
  in
  assert (outcome = Onll_sched.Sched.World.Completed);
  let c name = Onll_obs.Metrics.counter_value registry name in
  (* Theorem 5.1 under partitioning: exactly one pf per update, zero per
     read — including the fanned-out global Size reads. *)
  assert (c "fences.update" = c "ops.update");
  assert (c "ops.update" > 0);
  assert (c "fences.read" = 0);
  assert (c "ops.read" > 0);
  assert (c "routes" > 0);
  let add name v =
    Onll_obs.Metrics.add (Onll_obs.Metrics.counter summary name) v
  in
  add "e14.acct.ops.update" (c "ops.update");
  add "e14.acct.fences.update" (c "fences.update");
  add "e14.acct.ops.read" (c "ops.read");
  add "e14.acct.fences.read" (c "fences.read");
  add "e14.acct.routes" (c "routes");
  add "e14.acct.routes.global" (c "routes.global");
  for s = 0 to acct_shards - 1 do
    add
      (Printf.sprintf "e14.acct.shard.%d.ops" s)
      (c (Printf.sprintf "shard.%d.ops" s))
  done;
  Printf.printf
    "fence accounting (sim, 4 shards, %d procs): %d updates = %d persistent \
     fences; %d reads = 0 fences; %d routed (%d global fan-outs)\n"
    n_procs (c "ops.update") (c "fences.update") (c "ops.read") (c "routes")
    (c "routes.global")

(* {2 Part 2 — sharded chaos slices (deterministic, gated)} *)

let record_row summary prefix (r : Test_support.Chaos_harness.row) =
  let add name v =
    Onll_obs.Metrics.add (Onll_obs.Metrics.counter summary name) v
  in
  let open Test_support.Chaos_harness in
  let p k = Printf.sprintf "%s.%s" prefix k in
  add (p "runs") r.runs;
  add (p "crashed") r.crashed;
  add (p "media_faults") r.media_faults;
  add (p "reported_lost") r.lost_reported;
  add (p "tail_ambiguous") r.tail_ambiguous;
  add (p "violations") r.violations

let chaos_slices summary =
  let open Test_support in
  let messages = ref [] in
  let module D = Chaos_harness.Drive (Kv) in
  let plain =
    D.campaign ~plan_of:Chaos_harness.sharded_plan_of_seed ~name:"kv/sharded"
      ~gen_update:Gen.Kv.update ~gen_read:Gen.Kv.read ~seeds:40 ~messages ()
  in
  let mirrored =
    D.campaign ~plan_of:Chaos_harness.sharded_mirrored_plan_of_seed
      ~name:"kv/sharded+mirrored" ~gen_update:Gen.Kv.update
      ~gen_read:Gen.Kv.read ~seeds:40 ~messages ()
  in
  List.iter (fun m -> Printf.printf "  VIOLATION %s\n" m) (List.rev !messages);
  let open Chaos_harness in
  Onll_util.Table.print
    ~title:
      "E14 chaos slices — crash mid-update on one shard while others \
       proceed (violations must be 0; the mirrored arm additionally loses \
       nothing)"
    ~header:
      [ "arm"; "runs"; "crashed"; "media"; "reported-lost"; "tail-ambig";
        "violations" ]
    (List.map
       (fun r ->
         [
           r.obj_name;
           string_of_int r.runs;
           string_of_int r.crashed;
           string_of_int r.media_faults;
           string_of_int r.lost_reported;
           string_of_int r.tail_ambiguous;
           string_of_int r.violations;
         ])
       [ plain; mirrored ]);
  assert (plain.violations = 0);
  assert (mirrored.violations = 0);
  print_endline
    "(asserted: zero durable-linearizability violations across both \
     sharded chaos arms)";
  assert (mirrored.lost_reported = 0 && mirrored.tail_ambiguous = 0);
  print_endline
    "(asserted: sharded + mirrored + primary-scoped faults cost nothing — \
     per-shard repair composes)";
  record_row summary "e14.chaos.sharded" plain;
  record_row summary "e14.chaos.sharded_mirrored" mirrored

(* {2 Part 3 — native throughput grid} *)

(* Disjoint-key kv updates: domain [d] cycles over 64 keys of its own,
   with a compact (checkpoint + per-shard trace prune) every
   [compact_every] ops. No local views — the point is the replay path the
   partitioning shortens. *)
let run_native ~shards ~domains ~fence_ns ~total_ops =
  let native = Native.create ~max_processes:domains ~fence_ns () in
  let module M = (val Native.machine native) in
  let module C = Onll_sharded.Make (M) (Kv) in
  let obj =
    C.make ~shards
      { Onll_core.Onll.Config.default with log_capacity = 1 lsl 20 }
  in
  let per = total_ops / domains in
  let t0 = Unix.gettimeofday () in
  ignore
    (Native.run_workers native
       (List.init domains (fun d ->
            fun _ ->
             for j = 1 to per do
               ignore
                 (C.update obj
                    (Kv.Put (Printf.sprintf "d%d.k%d" d (j land 63), "v")));
               if j mod compact_every = 0 then C.compact obj
             done)));
  Harness.ops_per_sec (per * domains) (Unix.gettimeofday () -. t0)

let throughput_grid summary =
  let total_ops = 20_000 in
  let domain_counts =
    List.filter (fun d -> d <= available_domains) [ 1; 2; 4; 8 ]
  in
  let max_domains = List.fold_left max 1 domain_counts in
  let rate ~shards ~domains ~fence_ns =
    Harness.best_of 2 (fun () ->
        run_native ~shards ~domains ~fence_ns ~total_ops)
  in
  (* headline grid: shards x domains at the default fence *)
  let curves =
    List.map
      (fun shards ->
        ( Printf.sprintf "s%d" shards,
          List.map
            (fun d ->
              ( float_of_int d,
                rate ~shards ~domains:d ~fence_ns:fence_ns_default /. 1e6 ))
            domain_counts ))
      shard_counts
  in
  Onll_util.Table.series
    ~title:
      (Printf.sprintf
         "E14a — disjoint-key kv throughput vs domains, by shard count \
          (Mops/s, fence = %dns, compact every %d ops)"
         fence_ns_default compact_every)
    ~x_label:"domains" curves;
  (* fence-latency sweep at 1 vs 4 shards *)
  let latencies = [ 0; 500; 2000 ] in
  let sweep_domains = min 2 available_domains in
  let sweep =
    List.map
      (fun shards ->
        ( Printf.sprintf "s%d" shards,
          List.map
            (fun ns ->
              ( float_of_int ns,
                rate ~shards ~domains:sweep_domains ~fence_ns:ns /. 1e6 ))
            latencies ))
      [ 1; 4 ]
  in
  Onll_util.Table.series
    ~title:
      (Printf.sprintf
         "E14b — disjoint-key kv throughput vs fence latency (Mops/s, %d \
          domains)"
         sweep_domains)
    ~x_label:"fence_ns" sweep;
  (* Aggregate Mops and per-domain goodput, both as gauges: the d2-vs-d1
     collapse (and its E16 fix) hides inside the aggregate — goodput is
     what each submitting domain actually gets. *)
  List.iter
    (fun (name, points) ->
      List.iter
        (fun (x, mops) ->
          let d = int_of_float x in
          Onll_obs.Metrics.set
            (Onll_obs.Metrics.gauge summary
               (Printf.sprintf "mops.kv.%s.d%d" name d))
            mops;
          Onll_obs.Metrics.set
            (Onll_obs.Metrics.gauge summary
               (Printf.sprintf "goodput.kv.%s.d%d" name d))
            (mops /. float_of_int d))
        points)
    curves;
  List.iter
    (fun (name, points) ->
      List.iter
        (fun (x, mops) ->
          Onll_obs.Metrics.set
            (Onll_obs.Metrics.gauge summary
               (Printf.sprintf "mops.kv.%s.ns%d" name (int_of_float x)))
            mops)
        points)
    sweep;
  (* The acceptance point: 4 shards vs 1 at the default fence, most
     domains. The locality argument makes this core-count independent —
     each update replays 1/4 of the inter-compaction history. *)
  let at curves name d =
    List.assoc (float_of_int d) (List.assoc name curves)
  in
  let s1 = at curves "s1" max_domains and s4 = at curves "s4" max_domains in
  let speedup = s4 /. s1 in
  Printf.printf
    "4 shards vs 1 at %d domains, %dns fence: %.2fx (threshold 1.5x)\n"
    max_domains fence_ns_default speedup;
  assert (speedup >= 1.5);
  print_endline
    "(asserted: sharding beats the single instance by >= 1.5x on \
     disjoint-key kv)";
  Onll_obs.Metrics.set
    (Onll_obs.Metrics.gauge summary "speedup.s4_over_s1")
    speedup

let run () =
  let summary = Onll_obs.Metrics.create () in
  fence_accounting summary;
  chaos_slices summary;
  throughput_grid summary;
  let path =
    Harness.write_snapshot ~experiment:"e14"
      ~meta:
        [
          ("fence_ns", string_of_int fence_ns_default);
          ("compact_every", string_of_int compact_every);
          ("max_domains", string_of_int available_domains);
        ]
      summary
  in
  Printf.printf "snapshot: %s\n" path
