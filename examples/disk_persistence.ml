(* True durability across OS processes.

   The simulator's NVM normally lives and dies with the process. This demo
   snapshots the durable bytes — and only the durable bytes, never the
   volatile cache — to a file, so a second process can restore them and run
   ONLL recovery, exactly as a machine rebooting from real NVM would.

     dune exec examples/disk_persistence.exe -- write /tmp/onll.img
     dune exec examples/disk_persistence.exe -- recover /tmp/onll.img

   The writer performs some updates, simulates a power cut (dropping the
   cache), and saves the image; the recoverer rebuilds the object from the
   image in a completely fresh process. Running `recover` repeatedly keeps
   incrementing and re-saving: a tiny persistent database in a file. *)

open Onll_machine
module Kv = Onll_specs.Kv

(* Both processes must build identical region layouts (same names, same
   sizes) before loading an image — just like mapping the same NVM DIMMs.
   The object is exposed through closures to keep the functor types
   local. *)
type store = {
  put : string -> string -> unit;
  get : string -> string option;
  size : unit -> int;
  recover : unit -> unit;
  sim : Sim.t;
}

let build () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module Store = Onll_core.Onll.Make (M) (Kv) in
  let store = Store.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 16) } in
  {
    put = (fun k v -> ignore (Store.update store (Kv.Put (k, v))));
    get =
      (fun k ->
        match Store.read store (Kv.Get k) with
        | Kv.Found v -> v
        | _ -> assert false);
    size =
      (fun () ->
        match Store.read store Kv.Size with
        | Kv.Count n -> n
        | _ -> assert false);
    recover = (fun () -> Store.recover store);
    sim;
  }

let write path =
  let s = build () in
  s.put "motd" "remember consistently";
  s.put "fences" "one per update";
  s.put "reads" "zero";
  (* Power cut: volatile state gone; only fenced data remains... *)
  Onll_nvm.Memory.crash (Sim.memory s.sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  (* ...and that is what the image captures. *)
  Onll_nvm.Memory.save_image (Sim.memory s.sim) ~path;
  Printf.printf "wrote 3 keys, crashed, saved durable image to %s\n" path

let recover path =
  let s = build () in
  Onll_nvm.Memory.load_image (Sim.memory s.sim) ~path;
  s.recover ();
  Printf.printf "recovered %d keys in a fresh process:\n" (s.size ());
  List.iter
    (fun k ->
      match s.get k with
      | Some v -> Printf.printf "  %-6s = %s\n" k v
      | None -> Printf.printf "  %-6s = <absent>\n" k)
    [ "motd"; "fences"; "reads"; "visits" ];
  (* Mutate and re-save: each `recover` run bumps a visit counter. *)
  let visits =
    match s.get "visits" with Some v -> int_of_string v | None -> 0
  in
  s.put "visits" (string_of_int (visits + 1));
  Onll_nvm.Memory.crash (Sim.memory s.sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  Onll_nvm.Memory.save_image (Sim.memory s.sim) ~path;
  Printf.printf "bumped visits to %d and re-saved\n" (visits + 1)

let () =
  match Sys.argv with
  | [| _; "write"; path |] -> write path
  | [| _; "recover"; path |] -> recover path
  | _ ->
      prerr_endline "usage: disk_persistence (write|recover) <image-file>";
      exit 2
