(* Quickstart: a durable counter in ~40 effective lines.

   Build a simulated NVM machine, derive a durably linearizable counter from
   its sequential specification with the ONLL universal construction, run
   three concurrent processes against it, crash the whole system mid-flight,
   recover, and keep going — while watching the persistent-fence meter.

   Run with: dune exec examples/quickstart.exe *)

open Onll_machine
open Onll_sched
module Counter = Onll_specs.Counter

let () =
  (* A machine with 3 simulated processes and simulated NVM. *)
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  (* The universal construction: sequential spec in, durable object out. *)
  let module C = Onll_core.Onll.Make (M) (Counter) in
  let counter = C.make Onll_core.Onll.Config.default in

  (* Era 1: three processes, five increments each, random interleaving. *)
  let workload _ =
    for _ = 1 to 5 do
      ignore (C.update counter Counter.Increment)
    done
  in
  let outcome =
    Sim.run sim (Sched.Strategy.random ~seed:42) (Array.make 3 workload)
  in
  assert (outcome = Sched.World.Completed);
  Printf.printf "era 1 done: counter = %d (expected 15)\n"
    (C.read counter Counter.Get);
  Printf.printf "persistent fences so far: %d (one per update — Theorem 5.1)\n"
    (M.persistent_fences ());

  (* Era 2: same workload, but the power goes out at step 40. Whatever was
     fenced survives; everything else vanishes with the caches. *)
  let outcome =
    Sim.run sim
      (Sched.Strategy.random_with_crash ~seed:7 ~crash_at_step:40)
      (Array.make 3 workload)
  in
  assert (outcome = Sched.World.Crashed);
  Printf.printf "\n*** CRASH at step 40 ***\n";

  (* Recovery rebuilds the execution trace from the per-process logs. *)
  C.recover counter;
  let v = C.read counter Counter.Get in
  Printf.printf "recovered: counter = %d (>= 15: completed ops survive; \
                 <= 30: nothing invented)\n" v;
  assert (v >= 15 && v <= 30);

  (* Detectable execution: did process 0's first era-2 increment (sequence
     number 5, after 5 era-1 ops) make it in? *)
  let id = { Onll_core.Onll.id_proc = 0; id_seq = 5 } in
  Printf.printf "process 0's 6th increment linearized before the crash: %b\n"
    (C.was_linearized counter id);

  (* Era 3: business as usual on the recovered object. *)
  let outcome =
    Sim.run sim (Sched.Strategy.random ~seed:99) (Array.make 3 workload)
  in
  assert (outcome = Sched.World.Completed);
  Printf.printf "\nera 3 done: counter = %d\n" (C.read counter Counter.Get);
  let stats = Sim.stats sim in
  Format.printf "machine totals: %a@." Onll_nvm.Memory.Stats.pp stats;
  Printf.printf "updates executed: %d — persistent fences: %d\n"
    (C.read counter Counter.Get)
    stats.Onll_nvm.Memory.Stats.persistent_fences
