(* A crash-tolerant priority task scheduler.

   Jobs arrive with priorities (lower = more urgent) from several submitter
   processes; worker processes repeatedly take the most urgent job. The
   whole scheduler is one ONLL priority queue: submissions and takes are
   durably linearizable updates, so after a power failure no accepted job
   is lost, no job is handed to two workers, and urgency order still holds.

   The run: submitters and workers race, the machine crashes mid-flight,
   recovery restores the queue, a fresh worker drains the rest — and the
   audit checks global conservation plus that every drained job comes out
   in priority order.

   Run with: dune exec examples/task_scheduler.exe *)

open Onll_machine
open Onll_sched
open Onll_util
module Pq = Onll_specs.Pqueue

let () =
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module Sched_q = Onll_core.Onll.Make (M) (Pq) in
  let q = Sched_q.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 18) } in

  let submitted = ref [] and started = ref [] in
  let submitter id _ =
    let rng = Splitmix.create (900 + id) in
    for k = 0 to 5 do
      let prio = Splitmix.int rng 10 in
      let job = (id * 100) + k in
      (* record the intent before invoking: a crash may linearize the
         submission without the submitter learning of it *)
      submitted := (prio, job) :: !submitted;
      ignore (Sched_q.update q (Pq.Insert (prio, job)))
    done
  in
  let worker _ =
    for _ = 1 to 7 do
      match Sched_q.update q Pq.Extract_min with
      | Pq.Min (Some (prio, job)) -> started := (prio, job) :: !started
      | Pq.Min None -> ()
      | Pq.Nothing | Pq.Count _ -> assert false
    done
  in

  let outcome =
    Sim.run sim
      (Sched.Strategy.random_with_crash ~seed:4242 ~crash_at_step:420)
      [| submitter 1; submitter 2; worker; worker |]
  in
  Printf.printf "crashed mid-flight: %b\n" (outcome = Sched.World.Crashed);
  Printf.printf "accepted submissions: %d; jobs started before crash: %d\n"
    (List.length !submitted) (List.length !started);

  if outcome = Sched.World.Crashed then Sched_q.recover q;

  (* Post-crash: one fresh worker drains everything that survived. *)
  let drained = ref [] in
  let drain _ =
    let continue_ = ref true in
    while !continue_ do
      match Sched_q.update q Pq.Extract_min with
      | Pq.Min (Some (prio, job)) -> drained := (prio, job) :: !drained
      | Pq.Min None -> continue_ := false
      | Pq.Nothing | Pq.Count _ -> assert false
    done
  in
  ignore (Sim.run sim Sched.Strategy.round_robin [| drain |]);
  let drained = List.rev !drained in
  Printf.printf "jobs drained after recovery: %d\n" (List.length drained);

  (* Audit 1: priority order of the post-crash drain. *)
  let prios = List.map fst drained in
  assert (prios = List.sort compare prios);
  Printf.printf "drain order respects priorities ✓\n";

  (* Audit 2: conservation — every drained job was accepted, and no job
     both started before the crash and drained after it (no double
     execution). *)
  let accepted = List.map snd !submitted in
  List.iter (fun (_, j) -> assert (List.mem j accepted)) drained;
  List.iter
    (fun (_, j) -> assert (not (List.exists (fun (_, j') -> j' = j) !started)))
    drained;
  Printf.printf "no job lost to thin air, none executed twice ✓\n";
  Printf.printf "persistent fences: %d\n" (M.persistent_fences ())
