(* Crash-consistent money transfers.

   Why durable linearizability matters: a transfer debits one account and
   credits another. If a crash could expose "half" a transfer — or erase a
   transfer whose confirmation was already shown to the customer — the books
   stop balancing. Here tellers hammer a ledger with concurrent transfers
   under repeated crashes, and an auditor checks after every recovery that

     - no money was created or destroyed (conservation),
     - every transfer confirmed before a crash is still in the books,
     - rejected transfers (insufficient funds) stayed rejected.

   Run with: dune exec examples/bank_ledger.exe *)

open Onll_machine
open Onll_sched
open Onll_util
module Ledger = Onll_specs.Ledger

let n_tellers = 3
let initial_deposit = 1_000

let () =
  let sim = Sim.create ~max_processes:n_tellers () in
  let module M = (val Sim.machine sim) in
  let module Bank = Onll_core.Onll.Make (M) (Ledger) in
  let bank = Bank.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 18) } in

  (* Open the books: three accounts, 1000 each. *)
  let accounts = [ "alice"; "bob"; "carol" ] in
  let setup _ =
    List.iter
      (fun a ->
        assert (Bank.update bank (Ledger.Open a) = Ledger.Ok_v);
        assert (Bank.update bank (Ledger.Deposit (a, initial_deposit)) = Ledger.Ok_v))
      accounts
  in
  ignore (Sim.run sim Sched.Strategy.round_robin [| setup |]);
  let expected_total = initial_deposit * List.length accounts in
  Printf.printf "books opened: %d accounts, total %d\n" (List.length accounts)
    expected_total;

  let confirmed = ref 0 and rejected = ref 0 in
  let teller t _ =
    let rng = Splitmix.create (5000 + t) in
    for _ = 1 to 8 do
      let from_a = Splitmix.pick rng accounts in
      let to_a = Splitmix.pick rng accounts in
      let amount = 1 + Splitmix.int rng 300 in
      match Bank.update bank (Ledger.Transfer (from_a, to_a, amount)) with
      | Ledger.Ok_v -> incr confirmed
      | Ledger.Rejected _ -> incr rejected
      | Ledger.Amount _ | Ledger.Names _ -> assert false
    done
  in

  let audit label =
    match Bank.read bank Ledger.Total with
    | Ledger.Amount (Some total) ->
        Printf.printf "%s: total = %d — %s\n" label total
          (if total = expected_total then "balanced ✓"
           else "MONEY LEAKED ✗");
        assert (total = expected_total)
    | _ -> assert false
  in

  (* Five rounds of concurrent transfers; each round ends in a crash at a
     pseudo-random step, followed by recovery and a full audit. *)
  for round = 1 to 5 do
    let crash_at = 40 + (round * 37 mod 150) in
    let outcome =
      Sim.run sim
        (Sched.Strategy.random_with_crash ~seed:(round * 13) ~crash_at_step:crash_at)
        (Array.init n_tellers teller)
    in
    (match outcome with
    | Sched.World.Crashed ->
        Printf.printf "\nround %d: crash at step %d — recovering...\n" round
          crash_at;
        Bank.recover bank
    | Sched.World.Completed ->
        Printf.printf "\nround %d: finished before the crash point\n" round
    | Sched.World.Stopped _ -> assert false);
    audit (Printf.sprintf "round %d audit" round)
  done;

  Printf.printf
    "\n%d transfers confirmed, %d rejected (insufficient funds), books \
     balanced through 5 crashes\n"
    !confirmed !rejected;
  Printf.printf "persistent fences: %d\n" (M.persistent_fences ())
