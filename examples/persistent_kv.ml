(* A persistent key-value store with detectable client retries.

   The classic NVM client problem: a client issues a PUT, the system
   crashes, the client reconnects. Did the PUT happen? Blindly retrying a
   non-idempotent operation can double-apply it. ONLL's detectable execution
   solves this: the client attaches a (process, sequence) id to each update
   and asks [was_linearized] after recovery, retrying only the operations
   that were genuinely lost.

   This example drives three client processes, crashes the store at a
   deliberately awkward moment, and shows the retry protocol converging on
   exactly-once semantics.

   Run with: dune exec examples/persistent_kv.exe *)

open Onll_machine
open Onll_sched
module Kv = Onll_specs.Kv

let () =
  let n_clients = 3 in
  let sim = Sim.create ~max_processes:n_clients () in
  let module M = (val Sim.machine sim) in
  let module Store = Onll_core.Onll.Make (M) (Kv) in
  let store = Store.make Onll_core.Onll.Config.default in

  (* Each client plans a batch of writes; it tracks which sequence numbers
     it used so it can interrogate the store after a crash. *)
  let plans =
    Array.init n_clients (fun c ->
        List.init 4 (fun k ->
            Kv.Put (Printf.sprintf "client%d-key%d" c k,
                    Printf.sprintf "value-%d-%d" c k)))
  in
  let progress = Array.make n_clients 0 in
  let client c _ =
    List.iteri
      (fun seq op ->
        ignore (Store.update_detectable store ~seq op);
        progress.(c) <- seq + 1)
      plans.(c)
  in

  let outcome =
    Sim.run sim
      (Sched.Strategy.random_with_crash ~seed:2024 ~crash_at_step:150)
      (Array.init n_clients client)
  in
  assert (outcome = Sched.World.Crashed);
  Printf.printf "*** CRASH *** clients had confirmed: %s\n"
    (String.concat ", "
       (Array.to_list
          (Array.mapi (fun c k -> Printf.sprintf "client%d=%d/4" c k) progress)));

  Store.recover store;

  (* The retry protocol: each client checks every sequence number it might
     have issued; lost ones are retried (with fresh sequence numbers). *)
  let retried = ref 0 and kept = ref 0 in
  let retry_client c _ =
    let next_seq = ref 16 in  (* past any sequence number used before *)
    List.iteri
      (fun seq op ->
        let id = { Onll_core.Onll.id_proc = c; id_seq = seq } in
        if Store.was_linearized store id then incr kept
        else begin
          incr retried;
          ignore (Store.update_detectable store ~seq:!next_seq op);
          incr next_seq
        end)
      plans.(c)
  in
  let outcome =
    Sim.run sim (Sched.Strategy.random ~seed:7)
      (Array.init n_clients retry_client)
  in
  assert (outcome = Sched.World.Completed);
  Printf.printf "after recovery: %d writes survived, %d retried\n" !kept
    !retried;

  (* Exactly-once achieved: every planned key has its planned value, and
     the store holds nothing else. *)
  let total = ref 0 in
  Array.iteri
    (fun c plan ->
      List.iter
        (fun op ->
          match op with
          | Kv.Put (k, v) ->
              incr total;
              (match Store.read store (Kv.Get k) with
              | Kv.Found (Some v') when v' = v -> ()
              | _ -> failwith (Printf.sprintf "key %s missing or wrong!" k))
          | Kv.Delete _ -> ())
        plan;
      ignore c)
    plans;
  (match Store.read store Kv.Size with
  | Kv.Count n ->
      Printf.printf "store holds %d keys (expected %d) — exactly-once ✓\n" n
        !total;
      assert (n = !total)
  | _ -> assert false);
  Printf.printf "persistent fences: %d (= %d persisted pre-crash + %d retries)\n"
    (M.persistent_fences ()) !kept !retried
