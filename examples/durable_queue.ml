(* A durable work queue: producers and consumers across a crash.

   The scenario Friedman et al. [15] motivate (and build by hand) falls out
   of the universal construction: a FIFO queue whose contents survive
   power failure. Producers enqueue jobs, consumers dequeue and "execute"
   them; the system crashes; after recovery no acknowledged job is lost and
   no job is executed twice — consumers use detectable execution to learn
   whether their in-flight dequeue committed.

   This example also shows the §8 extensions earning their keep on a
   long-lived object: periodic checkpoints compact the logs and prune the
   trace, so the queue does not remember every operation ever applied.

   Run with: dune exec examples/durable_queue.exe *)

open Onll_machine
open Onll_sched
module Q = Onll_specs.Queue_spec

let () =
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module Queue_ = Onll_core.Onll.Make (M) (Q) in
  let q = Queue_.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 18) } in

  (* Era 1: two producers enqueue 10 jobs each; two consumers drain. Jobs
     are numbered producer*100+k. *)
  let executed = ref [] in
  let seqs = Array.make 4 0 in
  let producer p _ =
    for k = 0 to 9 do
      ignore (Queue_.update_detectable q ~seq:seqs.(p) (Q.Enqueue ((p * 100) + k)));
      seqs.(p) <- seqs.(p) + 1
    done
  in
  let consumer c _ =
    for _ = 1 to 8 do
      let seq = seqs.(c) in
      seqs.(c) <- seq + 1;
      match Queue_.update_detectable q ~seq Q.Dequeue with
      | Q.Taken (Some job) -> executed := job :: !executed
      | Q.Taken None -> ()  (* empty: try again later *)
      | Q.Nothing | Q.Len _ -> assert false
    done
  in
  let procs = [| producer 0; producer 1; consumer 2; consumer 3 |] in
  let outcome =
    Sim.run sim
      (Sched.Strategy.random_with_crash ~seed:11 ~crash_at_step:260)
      procs
  in
  Printf.printf "era 1 ended with a crash: %b\n"
    (outcome = Sched.World.Crashed);
  Printf.printf "jobs acknowledged as executed before the crash: %d\n"
    (List.length !executed);

  if outcome = Sched.World.Crashed then Queue_.recover q;

  (* Consumers resolve their in-flight dequeues: for each sequence number
     they issued, detectability says whether the dequeue committed. A
     committed dequeue whose job was not acknowledged is exactly the crash
     window — in a real system the consumer would re-run the job from its
     own journal; here we count them. *)
  let in_doubt = ref 0 in
  for c = 2 to 3 do
    for seq = 0 to seqs.(c) - 1 do
      let id = { Onll_core.Onll.id_proc = c; id_seq = seq } in
      if Queue_.was_linearized q id then () else incr in_doubt
    done
  done;
  Printf.printf "dequeues that never committed (safe to reissue): %d\n"
    !in_doubt;

  (* Conservation: enqueued = executed + still-queued + committed-but-
     unacknowledged. We can bound it: everything recovered in the queue plus
     acknowledged jobs never exceeds what producers committed. *)
  (match Queue_.read q Q.Length with
  | Q.Len remaining ->
      Printf.printf "jobs still queued after recovery: %d\n" remaining;
      assert (List.length !executed + remaining <= 20)
  | _ -> assert false);

  (* Era 2: drain the queue dry on the recovered object, with a checkpoint
     to compact the logs first. *)
  let live_before =
    List.fold_left (fun a (_, l, _) -> a + l) 0 ((List.map (fun l -> Onll_core.Onll.Snapshot.(l.log_name, l.live_bytes, l.used_bytes)) (Queue_.snapshot q).Onll_core.Onll.Snapshot.logs))
  in
  ignore (Queue_.checkpoint q);
  Queue_.prune q ~below:((Queue_.snapshot q).Onll_core.Onll.Snapshot.latest_available_idx);
  let live_after =
    List.fold_left (fun a (_, l, _) -> a + l) 0 ((List.map (fun l -> Onll_core.Onll.Snapshot.(l.log_name, l.live_bytes, l.used_bytes)) (Queue_.snapshot q).Onll_core.Onll.Snapshot.logs))
  in
  Printf.printf "checkpoint compacted logs: %d -> %d live bytes\n" live_before
    live_after;

  let drained = ref 0 in
  let drain _ =
    let continue_ = ref true in
    while !continue_ do
      match Queue_.update q Q.Dequeue with
      | Q.Taken (Some _) -> incr drained
      | Q.Taken None -> continue_ := false
      | Q.Nothing | Q.Len _ -> assert false
    done
  in
  ignore (Sim.run sim Sched.Strategy.round_robin [| drain |]);
  Printf.printf "era 2 drained %d remaining jobs; queue empty: %b\n" !drained
    (Queue_.read q Q.Length = Q.Len 0);
  Printf.printf "persistent fences: %d\n" (M.persistent_fences ())
