# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check gate chaos-smoke bench examples fuzz explore soak doc clean outputs

all: build test

build:
	dune build @all

test:
	dune runtest

# The pre-merge gate: everything compiles (including docs, where odoc is
# available), every test passes, a quick chaos campaign stays clean, and
# the bench-regression gate matches the committed snapshots.
check:
	dune build @all
	dune runtest
	$(MAKE) chaos-smoke
	$(MAKE) gate
	@command -v odoc >/dev/null 2>&1 && dune build @doc \
	  || echo "odoc not installed; skipping doc build"

# The bench-regression gate: re-run the asserted sim invariants (E1 fence
# bounds, F2, the deterministic E14 slices) and diff the fresh snapshots
# against the committed goldens in bench/snapshots/. --self-test first
# proves the gate is still capable of failing.
gate:
	dune build bench/bench_gate.exe
	./_build/default/bench/bench_gate.exe --self-test

# A fast slice of the E12/E13/E14/E16/E17 chaos campaigns: media faults
# + nested recovery crashes on two objects, the unhardened calibration
# baseline (which must be caught losing data), a mirrored slice where
# primary-only faults must cost nothing (zero losses, zero ambiguity),
# the same pair against the 4-shard partitioned construction, the
# group-commit object where the crash lands mid-batch (alone and
# composed with --mirrored), a kill -9 slice of the E17 file-backend
# campaign (real files, real fsync, SIGKILLed subprocess workers), and
# a slice of the E18 service campaign (`onll serve` subprocesses over
# real sockets: SIGKILL mid-fence, reattach floods, SIGTERM mid-load,
# sticky degradation — audited for exactly-once). Built once up front:
# the runs reuse one set of artifacts instead of per-run dune exec
# rebuild checks. Full campaigns: dune exec bench/main.exe
# e12 e13 e14 e16 e17 e18
ONLL_CLI := ./_build/default/bin/onll_cli.exe
chaos-smoke:
	dune build bin/onll_cli.exe
	$(ONLL_CLI) chaos -s kv --seeds 15
	$(ONLL_CLI) chaos -s counter --seeds 15
	$(ONLL_CLI) chaos -s kv --seeds 15 --unhardened
	$(ONLL_CLI) chaos -s kv --seeds 10 --mirrored
	$(ONLL_CLI) chaos -s kv --seeds 10 --sharded
	$(ONLL_CLI) chaos -s kv --seeds 10 --sharded --mirrored
	$(ONLL_CLI) chaos -s kv --seeds 10 --batched
	$(ONLL_CLI) chaos -s kv --seeds 10 --batched --mirrored
	$(ONLL_CLI) chaos --session --seeds 10
	$(ONLL_CLI) store campaign --seeds 4
	$(ONLL_CLI) service campaign --seeds 2
	$(ONLL_CLI) scrub
	$(ONLL_CLI) session

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/persistent_kv.exe
	dune exec examples/bank_ledger.exe
	dune exec examples/durable_queue.exe
	dune exec examples/task_scheduler.exe
	dune exec examples/disk_persistence.exe -- write /tmp/onll-demo.img
	dune exec examples/disk_persistence.exe -- recover /tmp/onll-demo.img

fuzz:
	dune exec bin/onll_cli.exe -- fuzz -s counter --seeds 200
	dune exec bin/onll_cli.exe -- fuzz -s ledger --seeds 200

explore:
	dune exec bench/main.exe e9

soak:
	dune exec test/soak/soak.exe

doc:
	dune build @doc 2>/dev/null || true

# The repository's final evidence files.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
