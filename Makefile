# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check chaos-smoke bench examples fuzz explore soak doc clean outputs

all: build test

build:
	dune build @all

test:
	dune runtest

# The pre-merge gate: everything compiles (including docs, where odoc is
# available), every test passes, and a quick chaos campaign stays clean.
check:
	dune build @all
	dune runtest
	$(MAKE) chaos-smoke
	@command -v odoc >/dev/null 2>&1 && dune build @doc \
	  || echo "odoc not installed; skipping doc build"

# A fast slice of the E12/E13 chaos campaigns: media faults + nested
# recovery crashes on two objects, the unhardened calibration baseline
# (which must be caught losing data), and a mirrored slice where
# primary-only faults must cost nothing (zero losses, zero ambiguity).
# Full campaigns: dune exec bench/main.exe e12 e13
chaos-smoke:
	dune exec bin/onll_cli.exe -- chaos -s kv --seeds 15
	dune exec bin/onll_cli.exe -- chaos -s counter --seeds 15
	dune exec bin/onll_cli.exe -- chaos -s kv --seeds 15 --unhardened
	dune exec bin/onll_cli.exe -- chaos -s kv --seeds 10 --mirrored
	dune exec bin/onll_cli.exe -- scrub

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/persistent_kv.exe
	dune exec examples/bank_ledger.exe
	dune exec examples/durable_queue.exe
	dune exec examples/task_scheduler.exe
	dune exec examples/disk_persistence.exe -- write /tmp/onll-demo.img
	dune exec examples/disk_persistence.exe -- recover /tmp/onll-demo.img

fuzz:
	dune exec bin/onll_cli.exe -- fuzz -s counter --seeds 200
	dune exec bin/onll_cli.exe -- fuzz -s ledger --seeds 200

explore:
	dune exec bench/main.exe e9

soak:
	dune exec test/soak/soak.exe

doc:
	dune build @doc 2>/dev/null || true

# The repository's final evidence files.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
