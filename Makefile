# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check gate chaos-smoke bench examples fuzz explore soak doc clean outputs

all: build test

build:
	dune build @all

test:
	dune runtest

# The pre-merge gate: everything compiles (including docs, where odoc is
# available), every test passes, a quick chaos campaign stays clean, and
# the bench-regression gate matches the committed snapshots.
check:
	dune build @all
	dune runtest
	$(MAKE) chaos-smoke
	$(MAKE) gate
	@command -v odoc >/dev/null 2>&1 && dune build @doc \
	  || echo "odoc not installed; skipping doc build"

# The bench-regression gate: re-run the asserted sim invariants (E1 fence
# bounds, F2, the deterministic E14 slices) and diff the fresh snapshots
# against the committed goldens in bench/snapshots/. --self-test first
# proves the gate is still capable of failing.
gate:
	dune build bench/bench_gate.exe
	./_build/default/bench/bench_gate.exe --self-test

# A fast slice of every chaos campaign, E12 through E20: media faults +
# nested recovery crashes on two objects, the unhardened calibration
# baseline (which must be caught losing data), a mirrored slice where
# primary-only faults must cost nothing, the same pair against the
# 4-shard partitioned construction, the group-commit object with the
# crash landing mid-batch (alone and composed with --mirrored), durable
# client sessions (E15), cross-shard transactions (E19: all-or-nothing
# across a crash sweep, plain and mirrored), a kill -9 slice of the E17
# file-backend campaign (real files, real fsync, SIGKILLed subprocess
# workers), a slice of the E18 service campaign (`onll serve`
# subprocesses over real sockets, audited for exactly-once), and the E20
# bounded-staleness campaign (risk-budgeted lazy fences; crash loss must
# be the budgeted suffix, exactly reported — plain and mirrored).
#
# CHAOS_SMOKE_SLICES below is the single source of truth for the slice
# list — ci.yml's smoke step runs this target and documents nothing of
# its own. One slice per line, each a full `onll` CLI invocation.
# Full campaigns: dune exec bench/main.exe e12 e13 e14 e15 e16 e17 e18 e19
define CHAOS_SMOKE_SLICES
chaos -s kv --seeds 15
chaos -s counter --seeds 15
chaos -s kv --seeds 15 --unhardened
chaos -s kv --seeds 10 --mirrored
chaos -s kv --seeds 10 --sharded
chaos -s kv --seeds 10 --sharded --mirrored
chaos -s kv --seeds 10 --batched
chaos -s kv --seeds 10 --batched --mirrored
chaos --session --seeds 10
chaos -s kv --txn --seeds 10
chaos -s kv --txn --mirrored --seeds 10
chaos -s kv --relaxed --seeds 10
chaos -s kv --relaxed --mirrored --seeds 10
store campaign --seeds 4
service campaign --seeds 2
scrub
session
endef
export CHAOS_SMOKE_SLICES

# Built once up front: the slices reuse one set of artifacts instead of
# per-run dune exec rebuild checks. Each slice is timed and the target
# ends with a per-slice wall-clock summary, so a slice that quietly got
# slow shows up in the CI log without artifact spelunking.
ONLL_CLI := ./_build/default/bin/onll_cli.exe
chaos-smoke:
	dune build bin/onll_cli.exe
	@echo "$$CHAOS_SMOKE_SLICES" | { total0=$$(date +%s); summary=""; \
	  while IFS= read -r slice; do \
	    [ -n "$$slice" ] || continue; \
	    t0=$$(date +%s); \
	    $(ONLL_CLI) $$slice || exit 1; \
	    summary="$$summary  $$(( $$(date +%s) - t0 ))s	onll $$slice\n"; \
	  done; \
	  printf 'chaos-smoke wall clock per slice (total %ds):\n' \
	    $$(( $$(date +%s) - total0 )); \
	  printf "$$summary"; }
	@# A campaign that records violations must exit with the distinct
	@# code 4 even under --quiet: the E20 unhardened calibration is the
	@# deliberately violating campaign, so assert on its exit code alone.
	@st=0; $(ONLL_CLI) chaos -s kv --relaxed --unhardened --quiet --seeds 6 || st=$$?; \
	  if [ "$$st" -ne 4 ]; then \
	    echo "chaos-smoke: expected exit 4 from the quiet violating campaign, got $$st"; \
	    exit 1; \
	  fi; \
	  echo "quiet violating campaign exited with code 4 (asserted)"

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/persistent_kv.exe
	dune exec examples/bank_ledger.exe
	dune exec examples/durable_queue.exe
	dune exec examples/task_scheduler.exe
	dune exec examples/disk_persistence.exe -- write /tmp/onll-demo.img
	dune exec examples/disk_persistence.exe -- recover /tmp/onll-demo.img

fuzz:
	dune exec bin/onll_cli.exe -- fuzz -s counter --seeds 200
	dune exec bin/onll_cli.exe -- fuzz -s ledger --seeds 200

explore:
	dune exec bench/main.exe e9

soak:
	dune exec test/soak/soak.exe

doc:
	dune build @doc 2>/dev/null || true

# The repository's final evidence files.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
