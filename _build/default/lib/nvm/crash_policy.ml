type t = Drop_all | Persist_all | Random of int

let to_string = function
  | Drop_all -> "drop-all"
  | Persist_all -> "persist-all"
  | Random seed -> Printf.sprintf "random(seed=%d)" seed

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all_deterministic = [ Drop_all; Persist_all ]
