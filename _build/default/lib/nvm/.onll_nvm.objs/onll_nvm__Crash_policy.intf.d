lib/nvm/crash_policy.mli: Format
