lib/nvm/memory.ml: Array Bytes Crash_policy Format Fun Hashtbl List Onll_util Printf String
