lib/nvm/crash_policy.ml: Format Printf
