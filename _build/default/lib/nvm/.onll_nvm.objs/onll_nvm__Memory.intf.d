lib/nvm/memory.mli: Crash_policy Format
