lib/histcheck/histcheck.ml: Array Format Hashtbl List Mutex Onll_core Onll_util Printf String
