lib/histcheck/histcheck.mli: Format Onll_core
