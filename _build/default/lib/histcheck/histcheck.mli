(** Durable-linearizability checker (paper §5.2.1, Definitions 5.4–5.6).

    Records concurrent histories — invocations, responses and full-system
    crashes — and decides by exhaustive search whether a history is durably
    linearizable with respect to a sequential specification: does there
    exist a legal sequential order of the operations that
    {ul
    {- extends the real-time precedence order (L2),}
    {- assigns every {e completed} operation its recorded return value,}
    {- linearizes every completed operation within its own era (between two
       crashes), and}
    {- optionally includes or excludes operations left pending by a crash
       (the consistent-cut freedom of Definition 5.6)?}}

    The search is exponential in the worst case; it is meant as a test
    oracle for small windows (≤ ~60 operations, a few processes). *)

module Make (S : Onll_core.Spec.S) : sig
  type op_kind = Update of S.update_op | Read of S.read_op

  type event =
    | Invoke of { uid : int; proc : int; kind : op_kind }
    | Return of { uid : int; value : S.value }
    | Crash

  val pp_event : Format.formatter -> event -> unit

  (** Accumulates events in execution order. Under the simulator, recorder
      calls are not scheduling points, so instrumentation does not perturb
      the schedule; under the native machine, calls are serialised by an
      internal mutex. *)
  module Recorder : sig
    type t

    val create : unit -> t

    val invoke : t -> proc:int -> op_kind -> int
    (** Returns the fresh operation uid to pass to {!return_}. *)

    val return_ : t -> int -> S.value -> unit
    val crash : t -> unit
    val history : t -> event list

    val run_update :
      t -> proc:int -> S.update_op -> (S.update_op -> S.value) -> S.value
    (** [run_update r ~proc op f] records the invocation, runs [f op],
        records the response. *)

    val run_read :
      t -> proc:int -> S.read_op -> (S.read_op -> S.value) -> S.value
  end

  type verdict =
    | Durably_linearizable of int list
        (** witness: operation uids in linearization order (dropped pending
            operations omitted) *)
    | Violation of string
    | Budget_exhausted
        (** the search hit its state budget without a decision *)

  val pp_verdict : Format.formatter -> verdict -> unit

  val check : ?max_states:int -> event list -> verdict
  (** [check history] decides durable linearizability. [max_states]
      (default 2_000_000) bounds distinct memoised search states.
      @raise Invalid_argument on malformed histories (return without
      invocation, two pending invocations by one process, more than 62
      operations). *)

  val validate_witness : event list -> int list -> (unit, string) result
  (** Independently verify a linearization witness against a history: the
      order must include every completed operation exactly once, respect
      real-time precedence and era boundaries, and replay to the recorded
      return values. [check]'s positive verdicts are validated with this in
      the test suite, so the searcher and the validator cross-check each
      other. *)
end
