(** The lower-bound adversary (paper §6, Theorem 6.3).

    Theorem 6.3: for any lock-free durably linearizable implementation of an
    update operation, there is an execution in which [n] concurrent callers
    {e each} perform at least one persistent fence. The proof constructs the
    execution; this module builds the same schedules against a real
    implementation running on the simulator and reports what actually
    happened, fence by fence.

    Two schedules are provided, mirroring the two proof cases:
    {ul
    {- {!solo_chain} (Case 1): run each process solo up to the instant just
       before its operation responds, then preempt it and move to the next.
       A correct lock-free implementation must have fenced by each
       preemption point — otherwise a crash right after the (imminent)
       response would lose a completed operation.}
    {- {!fence_chain} (Case 2): run each process solo up to the instant just
       before its {e first persistent fence}, preempt, move on; finally
       resume each preempted process for exactly one step (the fence).
       This realises the proof's count of one fence per process. A blocking
       implementation (e.g. flat combining, §8) fails this schedule
       honestly: once the first process is parked before its fence — for
       flat combining, the combiner holding the lock — the others spin
       forever and never reach a fence of their own, which the harness
       reports as a livelock. That livelock {e is} the content of the
       lower bound: the blocked processes pay the fence's price by waiting
       instead of fencing.}} *)

type outcome =
  | Measured  (** the schedule ran to its measurement point *)
  | Livelock of int
      (** the schedule exceeded its step budget; the payload is the index
          of the process that could not make progress *)
  | Completed_early
      (** some operation responded before the intended preemption point
          (an implementation doing less work than the schedule expects) *)

type report = {
  n : int;
  per_proc_fences : int array;
      (** persistent fences executed by each process when measured *)
  outcome : outcome;
  steps : int;  (** scheduler steps consumed *)
}

val all_at_least_one : report -> bool
(** The lower bound's claim, checked: every process fenced at least once. *)

val pp_report : Format.formatter -> report -> unit

val solo_chain :
  ?max_steps:int -> Onll_machine.Sim.t -> procs:(int -> unit) array -> report
(** Case 1 schedule. Each [procs.(p)] must invoke exactly one update
    operation on the object under test. Resets the simulator's statistics
    first. *)

val fence_chain :
  ?max_steps:int -> Onll_machine.Sim.t -> procs:(int -> unit) array -> report
(** Case 2 schedule (see module doc). *)

val solo_chain_rounds :
  ?max_steps:int ->
  rounds:int ->
  Onll_machine.Sim.t ->
  procs:(int -> unit) array ->
  report
(** The theorem counts fences {e per update operation invoked}: here each
    [procs.(p)] must invoke [rounds] update operations, and the Case 1
    schedule is applied round by round — every process is run solo up to
    just before its r-th response before anyone starts its (r+1)-th. A
    correct lock-free implementation shows at least [rounds] fences per
    process at the measurement point ({!all_at_least} [rounds]). *)

val all_at_least : int -> report -> bool
(** Every process performed at least [k] persistent fences. *)
