lib/lowerbound/lowerbound.mli: Format Onll_machine
