lib/lowerbound/lowerbound.ml: Array Format Fun List Onll_machine Onll_nvm Onll_sched Printf Sched Sim String
