open Onll_sched
open Onll_machine

type outcome = Measured | Livelock of int | Completed_early

type report = {
  n : int;
  per_proc_fences : int array;
  outcome : outcome;
  steps : int;
}

let all_at_least k r = Array.for_all (fun c -> c >= k) r.per_proc_fences
let all_at_least_one r = all_at_least 1 r

let pp_report ppf r =
  let outcome =
    match r.outcome with
    | Measured -> "measured"
    | Livelock p -> Printf.sprintf "livelock (process %d starved)" p
    | Completed_early -> "completed before preemption point"
  in
  Format.fprintf ppf "n=%d fences=[%s] %s (%d steps)" r.n
    (String.concat ";"
       (Array.to_list (Array.map string_of_int r.per_proc_fences)))
    outcome r.steps

let run_chain ?(max_steps = 200_000) sim ~procs cmds =
  let n = Array.length procs in
  Sim.reset_stats sim;
  let last_scheduled = ref 0 in
  let inner =
    Sched.Strategy.script ~fallback:(fun _ -> Sched.Strategy.Stop "measured")
      cmds
  in
  let strategy view =
    let d = inner view in
    (match d with
    | Sched.Strategy.Schedule p -> last_scheduled := p
    | Sched.Strategy.Crash_now | Sched.Strategy.Stop _ -> ());
    d
  in
  let outcome =
    match Sim.run ~max_steps sim strategy procs with
    | Sched.World.Stopped _ -> Measured
    | Sched.World.Completed -> Completed_early
    | Sched.World.Crashed -> assert false  (* no Crash_now in these scripts *)
    | exception Sched.Stuck _ -> Livelock !last_scheduled
  in
  let mem = Sim.memory sim in
  {
    n;
    per_proc_fences =
      Array.init n (fun p -> Onll_nvm.Memory.persistent_fences_by mem ~proc:p);
    outcome;
    steps = Sched.World.steps_taken (Sim.world sim);
  }

(* Case 1: park every process just before its operation's response. *)
let solo_chain ?max_steps sim ~procs =
  let n = Array.length procs in
  let cmds = List.init n (fun p -> Sched.Strategy.run_until_return p) in
  run_chain ?max_steps sim ~procs cmds

(* Rounds of Case 1: each process is run solo to just before its r-th
   response; responses are then released one by one so the next round can
   begin. The final round leaves everyone parked pre-response, where the
   fence counters are read. *)
let solo_chain_rounds ?max_steps ~rounds sim ~procs =
  let n = Array.length procs in
  let round r =
    (* park everyone before their r-th response... *)
    List.init n (fun p -> Sched.Strategy.run_until_return p)
    @
    (* ...then, except in the last round, let the responses happen *)
    if r = rounds - 1 then []
    else List.init n (fun p -> Sched.Strategy.Run_steps (p, 1))
  in
  run_chain ?max_steps sim ~procs (List.concat_map round (List.init rounds Fun.id))

(* Case 2: park every process just before its first persistent fence, then
   let each execute exactly that one instruction, in reverse order as in the
   proof. *)
let fence_chain ?max_steps sim ~procs =
  let n = Array.length procs in
  let park = List.init n (fun p -> Sched.Strategy.run_until_pfence p) in
  let release =
    List.init n (fun k -> Sched.Strategy.Run_steps (n - 1 - k, 1))
  in
  run_chain ?max_steps sim ~procs (park @ release)
