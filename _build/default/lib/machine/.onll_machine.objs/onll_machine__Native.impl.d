lib/machine/native.ml: Array Atomic Bytes Domain Float Hashtbl List Machine_sig Mutex Printf String Sys Unix
