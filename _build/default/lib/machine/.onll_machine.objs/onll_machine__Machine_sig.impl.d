lib/machine/machine_sig.ml:
