lib/machine/sim.ml: Array Crash_policy Machine_sig Memory Onll_nvm Onll_sched Sched
