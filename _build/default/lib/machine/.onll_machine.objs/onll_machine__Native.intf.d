lib/machine/native.mli: Machine_sig
