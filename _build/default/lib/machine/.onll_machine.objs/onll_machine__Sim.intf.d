lib/machine/sim.mli: Crash_policy Machine_sig Memory Onll_nvm Onll_sched Sched
