(** Ready-made durable data structures: typed wrappers over ONLL objects.

    Each functor instantiates the universal construction on a stock
    specification and exposes the operations with ordinary OCaml types
    instead of spec-level variants. Underneath, every mutation is a
    lock-free durably linearizable ONLL update (one persistent fence, crash
    recovery via [recover]); every read is fence-free. The wrappers work on
    both machines — the simulator for crash testing, native domains for
    performance. *)

open Onll_machine

(** A durable counter; [~wait_free] selects the Kogan–Petrank trace (§8). *)
module Counter (M : Machine_sig.S) : sig
  type t

  val create :
    ?wait_free:bool -> ?log_capacity:int -> ?local_views:bool -> unit -> t

  val incr : t -> int
  (** Increment; returns the new value. *)

  val add : t -> int -> int
  val get : t -> int
  val recover : t -> unit
  val checkpoint : t -> int
end

(** A durable string key-value store with replay-detectable writes. *)
module Kv (M : Machine_sig.S) : sig
  type t

  val create : ?log_capacity:int -> ?local_views:bool -> unit -> t

  val put : t -> string -> string -> string option
  (** Returns the previous binding. *)

  val delete : t -> string -> string option
  val get : t -> string -> string option
  val size : t -> int
  val recover : t -> unit
  val checkpoint : t -> int
  val was_linearized : t -> Onll_core.Onll.op_id -> bool
end

(** A durable FIFO queue. *)
module Queue (M : Machine_sig.S) : sig
  type t

  val create : ?log_capacity:int -> ?local_views:bool -> unit -> t
  val enqueue : t -> int -> unit
  val dequeue : t -> int option
  val peek : t -> int option
  val length : t -> int
  val recover : t -> unit
  val checkpoint : t -> int
end

(** A durable LIFO stack. *)
module Stack (M : Machine_sig.S) : sig
  type t

  val create : ?log_capacity:int -> ?local_views:bool -> unit -> t
  val push : t -> int -> unit
  val pop : t -> int option
  val top : t -> int option
  val depth : t -> int
  val recover : t -> unit
end

(** A durable integer set. *)
module Set (M : Machine_sig.S) : sig
  type t

  val create : ?log_capacity:int -> ?local_views:bool -> unit -> t

  val insert : t -> int -> bool
  (** True iff the element was new. *)

  val remove : t -> int -> bool
  val mem : t -> int -> bool
  val cardinal : t -> int
  val recover : t -> unit
end

(** A durable min-priority queue of (priority, payload) pairs. *)
module Pqueue (M : Machine_sig.S) : sig
  type t

  val create : ?log_capacity:int -> ?local_views:bool -> unit -> t
  val insert : t -> prio:int -> int -> unit
  val extract_min : t -> (int * int) option
  val find_min : t -> (int * int) option
  val size : t -> int
  val recover : t -> unit
end

(** A durable bank ledger with crash-consistent transfers. Mutations return
    [Error reason] when the sequential specification rejects them
    (unknown account, insufficient funds, ...). *)
module Ledger (M : Machine_sig.S) : sig
  type t

  exception Rejected of string

  val create : ?log_capacity:int -> ?local_views:bool -> unit -> t
  val open_account : t -> string -> (unit, string) result
  val deposit : t -> string -> int -> (unit, string) result
  val withdraw : t -> string -> int -> (unit, string) result
  val transfer : t -> from_:string -> to_:string -> int -> (unit, string) result
  val balance : t -> string -> int option
  val total : t -> int
  val accounts : t -> string list
  val recover : t -> unit
  val checkpoint : t -> int
end
