lib/derived/derived.ml: Machine_sig Onll_core Onll_machine Onll_specs
