lib/derived/derived.mli: Machine_sig Onll_core Onll_machine
