lib/baselines/persist_on_read.mli: Onll_core Onll_machine
