lib/baselines/broken_early.ml: Array Hashtbl List Onll_core Onll_machine Onll_plog Onll_util Option Printf
