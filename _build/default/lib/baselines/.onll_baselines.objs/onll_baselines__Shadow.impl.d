lib/baselines/shadow.ml: Bytes Codec Crc32 Int64 Onll_core Onll_machine Onll_util Printf String
