lib/baselines/shadow.mli: Onll_core Onll_machine
