lib/baselines/flat_combining.ml: Array List Onll_core Onll_machine Onll_plog Onll_util Printf
