lib/baselines/wait_on_read.ml: Array Hashtbl List Onll_core Onll_machine Onll_plog Onll_util Option Printf
