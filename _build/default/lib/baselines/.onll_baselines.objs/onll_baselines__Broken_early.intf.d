lib/baselines/broken_early.mli: Onll_core Onll_machine
