lib/baselines/volatile.mli: Onll_core Onll_machine
