lib/baselines/flat_combining.mli: Onll_core Onll_machine
