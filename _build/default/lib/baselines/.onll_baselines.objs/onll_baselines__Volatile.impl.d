lib/baselines/volatile.ml: Onll_core Onll_machine
