(** Non-durable lock-free baseline: the object state lives in a single
    transient variable updated by CAS. Zero fences, zero durability — the
    throughput ceiling every durable implementation is measured against,
    and the floor for fence counts. *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) = struct
  type t = { state : S.state M.Tvar.t }

  let create () = { state = M.Tvar.make S.initial }

  let update t op =
    let rec loop () =
      let s = M.Tvar.get t.state in
      let s', v = S.apply s op in
      if M.Tvar.cas t.state ~expected:s ~desired:s' then v else loop ()
    in
    let v = loop () in
    M.return_point ();
    v

  let read t rop =
    let v = S.read (M.Tvar.get t.state) rop in
    M.return_point ();
    v

  (* Nothing survives a crash: recovery is reinitialisation. *)
  let recover t = M.Tvar.set t.state S.initial
end
