(** Deterministic replays of the paper's Figure 1: four executions of a
    shared counter implemented with ONLL, reproduced step by step with
    scripted schedules. Each function builds a fresh simulated machine, runs
    the schedule, and returns what the figure shows — operation return
    values, trace/flag observations, and (for execution 4) the post-crash
    recovered state.

    Used three ways: asserted in the test suite, printed by
    [bench/main.exe f1], and replayable from the CLI ([onll figure1]). *)

type execution1 = {
  e1_update_returned : int;  (** the increment's return value (1) *)
  e1_read_returned : int;  (** the subsequent read (1) *)
  e1_trace : (int * bool) list;
      (** (execution index, available) for each trace node, oldest first *)
}

type execution2 = {
  e2_r1 : int;  (** reader that ran before the available flag was set (1) *)
  e2_r2 : int;  (** reader that ran after (2) *)
  e2_update_returned : int;  (** the concurrent increment's return (2) *)
}

type execution3 = {
  e3_p2_returned : int;  (** helper's increment observes both updates (3) *)
  e3_p2_log_ops : int;  (** operations in p2's log entry: 2 (helped p1) *)
  e3_reader_after_p2 : int;  (** reader sees 3 though n2's flag is unset *)
  e3_p1_returned : int;  (** p1's own increment, finishing last (2) *)
}

type execution4 = {
  e4_reader_during : int;  (** concurrent reader before the crash (0) *)
  e4_recovered_value : int;  (** post-crash state: p1's and p2's updates (2) *)
  e4_p1_linearized : bool;  (** true: persisted by p2's helping entry *)
  e4_p2_linearized : bool;  (** true: persisted by its own entry *)
  e4_p3_linearized : bool;  (** false: its log append never fenced *)
}

val execution1 : unit -> execution1
val execution2 : unit -> execution2
val execution3 : unit -> execution3
val execution4 : unit -> execution4

val print_all : unit -> unit
(** Replay all four executions and print a narrative comparison with the
    figure's expected outcomes. *)
