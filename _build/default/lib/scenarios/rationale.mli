(** The §3.1 case analysis, executed (see the implementation header).

    Runs the same adversarial window — an updater parked just before its
    persistent fence, a reader, a drop-all crash, recovery — against the
    three designs the paper rules out and against ONLL, and reports what
    each one did. *)

type branch_result = {
  b_name : string;
  b_story : string;
  b_reader_saw : int option;  (** [None]: the reader never returned *)
  b_recovered : int;  (** counter value after recovery *)
  b_verdict : string;
      (** "DURABILITY VIOLATION ...", "LIVELOCK ...", or "consistent ..." *)
}

val run_all : unit -> branch_result list
(** The four branches, in the paper's order: reader returns (violation),
    reader waits (livelock), reader helps (consistent, reads fence), and
    ONLL (consistent, fence-free reads). *)

val print_all : unit -> unit
