lib/scenarios/figure1.mli:
