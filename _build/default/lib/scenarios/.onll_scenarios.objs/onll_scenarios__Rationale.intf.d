lib/scenarios/rationale.mli:
