lib/scenarios/rationale.ml: Format List Onll_baselines Onll_core Onll_machine Onll_nvm Onll_sched Onll_specs Sched Sim
