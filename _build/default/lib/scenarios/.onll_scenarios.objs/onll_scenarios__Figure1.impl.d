lib/scenarios/figure1.ml: Format List Onll_core Onll_machine Onll_sched Onll_specs Printf Sched Sim String
