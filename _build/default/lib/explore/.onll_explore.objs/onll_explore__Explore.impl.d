lib/explore/explore.ml: Array Format List Onll_machine Onll_sched Sched
