lib/explore/explore.mli: Format Onll_machine Onll_sched
