open Onll_sched

type choice = Proc of int | Crash

type stats = {
  runs : int;
  crashed_runs : int;
  max_depth : int;
  truncated : bool;
}

let pp_stats ppf s =
  Format.fprintf ppf "runs=%d crashed=%d max_depth=%d%s" s.runs
    s.crashed_runs s.max_depth
    (if s.truncated then " (truncated)" else "")

(* One decision point of an execution: who was runnable, who had been
   running, what was chosen. *)
type decision = { d_enabled : int list; d_prev : int option; d_chosen : choice }

let is_preemption d =
  match (d.d_prev, d.d_chosen) with
  | Some q, Proc p -> p <> q && List.mem q d.d_enabled
  | _, Crash | None, _ -> false

(* Execute once: replay [prefix], then continue with the default policy
   (keep running the current process; else the smallest runnable). Returns
   the decisions taken, oldest first, and the outcome. *)
let run_one ~max_steps sim procs prefix =
  let remaining = ref prefix in
  let decisions = ref [] in
  let prev = ref None in
  let strategy view =
    let enabled = view.Sched.Strategy.runnable () in
    let chosen =
      match !remaining with
      | c :: rest ->
          remaining := rest;
          c
      | [] -> (
          match !prev with
          | Some p when List.mem p enabled -> Proc p
          | Some _ | None -> Proc (List.hd enabled))
    in
    decisions := { d_enabled = enabled; d_prev = !prev; d_chosen = chosen } :: !decisions;
    match chosen with
    | Proc p ->
        prev := Some p;
        Sched.Strategy.Schedule p
    | Crash -> Sched.Strategy.Crash_now
  in
  let outcome = Onll_machine.Sim.run ~max_steps sim strategy procs in
  (Array.of_list (List.rev !decisions), outcome)

let run ?(max_preemptions = 2) ?(with_crashes = false) ?(max_steps = 100_000)
    ?(max_runs = 200_000) ~mk () =
  let runs = ref 0 in
  let crashed_runs = ref 0 in
  let max_depth = ref 0 in
  let truncated = ref false in
  let rec explore prefix =
    if !runs >= max_runs then truncated := true
    else begin
      incr runs;
      let sim, procs, chk = mk () in
      let decisions, outcome = run_one ~max_steps sim procs prefix in
      if outcome = Sched.World.Crashed then incr crashed_runs;
      chk outcome;
      let n = Array.length decisions in
      if n > !max_depth then max_depth := n;
      (* cumulative preemption counts: pcum.(i) = preemptions in [0, i) *)
      let pcum = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        pcum.(i + 1) <- pcum.(i) + if is_preemption decisions.(i) then 1 else 0
      done;
      let prefix_len = List.length prefix in
      let chosen_prefix i =
        Array.to_list (Array.sub decisions 0 i)
        |> List.map (fun d -> d.d_chosen)
      in
      (* branch on every untried alternative at or beyond the frozen prefix,
         deepest first *)
      for i = n - 1 downto prefix_len do
        let d = decisions.(i) in
        match d.d_chosen with
        | Crash -> ()  (* proc branches at this point belong to the parent *)
        | Proc chosen ->
            let alt_allowed p =
              p <> chosen
              &&
              let preempts =
                match d.d_prev with
                | Some q when q <> p && List.mem q d.d_enabled -> true
                | Some _ | None -> false
              in
              (not preempts) || pcum.(i) < max_preemptions
            in
            let alts =
              List.filter_map
                (fun p -> if alt_allowed p then Some (Proc p) else None)
                d.d_enabled
            in
            let alts = if with_crashes then Crash :: alts else alts in
            List.iter
              (fun alt -> explore (chosen_prefix i @ [ alt ]))
              alts
      done
    end
  in
  explore [];
  {
    runs = !runs;
    crashed_runs = !crashed_runs;
    max_depth = !max_depth;
    truncated = !truncated;
  }
