(** Systematic concurrency testing: stateless exploration of schedules
    with a preemption bound (à la CHESS) and optional crash branching.

    Where the fuzz campaigns sample random interleavings, this module
    {e enumerates} them: every schedule of the program whose number of
    preemptions (switching away from a process that could still run) is at
    most a bound, and — when crash branching is on — additionally a
    full-system crash at {e every} decision point of every such schedule.
    For the small programs used as tests (2–3 processes, 1–2 operations
    each) this is exhaustive enough to find any bug that random testing
    might miss by luck, deterministically.

    The exploration is stateless: each schedule re-runs the program from
    scratch on a fresh machine built by the caller's [mk]. The program must
    be deterministic given the schedule (true of everything built on the
    simulator). *)

type choice = Proc of int | Crash

type stats = {
  runs : int;  (** program executions performed *)
  crashed_runs : int;  (** runs ending in an injected crash *)
  max_depth : int;  (** longest schedule, in decisions *)
  truncated : bool;  (** true if [max_runs] cut the exploration short *)
}

val pp_stats : Format.formatter -> stats -> unit

val run :
  ?max_preemptions:int ->
  ?with_crashes:bool ->
  ?max_steps:int ->
  ?max_runs:int ->
  mk:
    (unit ->
    Onll_machine.Sim.t
    * (int -> unit) array
    * (Onll_sched.Sched.World.outcome -> unit)) ->
  unit ->
  stats
(** [run ~mk ()] explores the program.

    [mk ()] must build a {e fresh} simulator, process array and a check
    callback; the callback runs after each execution (with its outcome) and
    should perform recovery plus whatever assertions define correctness —
    raising on violation aborts the exploration with that exception.

    [max_preemptions] (default 2) bounds involuntary context switches per
    schedule. [with_crashes] (default false) adds a crash branch at every
    decision point (the crash policy is whatever the simulator from [mk] is
    configured with). [max_steps] (default 100_000) guards against
    livelocking programs; [max_runs] (default 200_000) caps the exploration
    size, setting [truncated] when hit. *)
