type label =
  | Prim of string
  | Fence
  | Pfence
  | Return_point
  | Custom of string

let label_to_string = function
  | Prim s -> s
  | Fence -> "fence"
  | Pfence -> "pfence"
  | Return_point -> "return"
  | Custom s -> s

let pp_label ppf l = Format.pp_print_string ppf (label_to_string l)

exception Stuck of string

type _ Effect.t += Step : label -> unit Effect.t

exception Preempted
(* Used to discontinue fibers at a crash or when a run is abandoned. Process
   code must not catch it (our simulated processes never do). *)

(* Dynamic scheduling context. The simulator is single-threaded, so plain
   refs are safe; [executing] is true exactly while a process body runs. *)
let executing = ref false
let cur_proc = ref 0

let step lbl = if !executing then Effect.perform (Step lbl)
let current_proc () = if !executing then !cur_proc else 0
let in_scheduler () = !executing

(* Result of resuming a process until its next pause. *)
type resume =
  | R_done
  | R_paused of label * (unit, resume) Effect.Deep.continuation
  | R_killed

let handler : (unit, resume) Effect.Deep.handler =
  {
    retc = (fun () -> R_done);
    exnc = (function Preempted -> R_killed | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Step lbl ->
            Some
              (fun (k : (a, resume) Effect.Deep.continuation) ->
                R_paused (lbl, k))
        | _ -> None);
  }

module Strategy = struct
  type view = {
    runnable : unit -> int list;
    label_of : int -> label option;
    steps : unit -> int;
    finished : int -> bool;
  }

  type decision = Schedule of int | Crash_now | Stop of string
  type t = view -> decision

  (* Stateless (keyed on the step counter) so the same strategy value can be
     shared between runs without leaking rotation state. *)
  let round_robin view =
    match view.runnable () with
    | [] -> Stop "round_robin: no runnable process"
    | procs -> Schedule (List.nth procs (view.steps () mod List.length procs))

  let random ~seed =
    let rng = Onll_util.Splitmix.create seed in
    fun view ->
      match view.runnable () with
      | [] -> Stop "random: no runnable process"
      | procs -> Schedule (Onll_util.Splitmix.pick rng procs)

  let random_with_crash ~seed ~crash_at_step =
    let inner = random ~seed in
    fun view ->
      if view.steps () >= crash_at_step then Crash_now else inner view

  (* PCT: random distinct priorities, highest-priority runnable process
     runs; at each change point the current winner is demoted below all. *)
  let pct ~seed ~depth ~expected_steps =
    let rng = Onll_util.Splitmix.create seed in
    let priorities = Hashtbl.create 8 in
    let priority_of p =
      match Hashtbl.find_opt priorities p with
      | Some pr -> pr
      | None ->
          (* initial priorities: large positive, randomized, distinct *)
          let pr = (Onll_util.Splitmix.int rng 1_000_000 * 64) + p + 1 in
          Hashtbl.replace priorities p pr;
          pr
    in
    let change_points =
      List.init (max 0 (depth - 1)) (fun _ ->
          Onll_util.Splitmix.int rng (max 1 expected_steps))
    in
    let demotions = ref 0 in
    fun view ->
      match view.runnable () with
      | [] -> Stop "pct: no runnable process"
      | procs ->
          let best =
            List.fold_left
              (fun best p ->
                if priority_of p > priority_of best then p else best)
              (List.hd procs) procs
          in
          let step = view.steps () in
          if List.mem step change_points then begin
            (* demote the would-be winner below every priority so far *)
            decr demotions;
            Hashtbl.replace priorities best !demotions;
            let best' =
              List.fold_left
                (fun b p -> if priority_of p > priority_of b then p else b)
                (List.hd procs) procs
            in
            Schedule best'
          end
          else Schedule best

  type cmd =
    | Run_steps of int * int
    | Run_until of int * (label -> bool)
    | Run_to_completion of int
    | Crash_here
    | Round_robin_rest

  let run_until_return p = Run_until (p, fun l -> l = Return_point)
  let run_until_pfence p = Run_until (p, fun l -> l = Pfence)

  let script ?(fallback = round_robin) cmds =
    let cmds = ref cmds in
    fun view ->
      let rec next () =
        match !cmds with
        | [] -> fallback view
        | Run_steps (p, k) :: rest ->
            if k <= 0 || view.finished p then begin
              cmds := rest;
              next ()
            end
            else begin
              cmds := Run_steps (p, k - 1) :: rest;
              Schedule p
            end
        | Run_until (p, pred) :: rest ->
            if view.finished p then begin
              cmds := rest;
              next ()
            end
            else begin
              let at_target =
                match view.label_of p with Some l -> pred l | None -> false
              in
              if at_target then begin
                cmds := rest;
                next ()
              end
              else Schedule p
            end
        | Run_to_completion p :: rest ->
            if view.finished p then begin
              cmds := rest;
              next ()
            end
            else Schedule p
        | Crash_here :: rest ->
            cmds := rest;
            Crash_now
        | Round_robin_rest :: _ -> round_robin view
      in
      next ()
end

module World = struct
  type outcome = Completed | Crashed | Stopped of string

  type proc_state =
    | Not_started of (int -> unit)
    | Paused of label * (unit, resume) Effect.Deep.continuation
    | Finished

  type t = {
    mutable crash_hooks : (unit -> unit) list;  (* reversed *)
    mutable last_steps : int;
    mutable last_trace : (int * label) list;  (* reversed *)
    trace_log : bool;
  }

  let create ?(trace_log = false) () =
    { crash_hooks = []; last_steps = 0; last_trace = []; trace_log }

  let on_crash t hook = t.crash_hooks <- hook :: t.crash_hooks
  let steps_taken t = t.last_steps
  let trace t = List.rev t.last_trace

  let resume_proc p action =
    cur_proc := p;
    executing := true;
    let r =
      match action () with
      | r ->
          executing := false;
          r
      | exception e ->
          executing := false;
          raise e
    in
    r

  let kill_all states =
    Array.iteri
      (fun p st ->
        match st with
        | Paused (_, k) ->
            states.(p) <- Finished;
            (match resume_proc p (fun () -> Effect.Deep.discontinue k Preempted)
             with
            | R_done | R_killed -> ()
            | R_paused _ ->
                (* A process performed a step while unwinding from Preempted;
                   simulated processes must not do that. *)
                failwith "Sched: process performed a step during kill")
        | Not_started _ -> states.(p) <- Finished
        | Finished -> ())
      states

  let run ?(max_steps = 2_000_000) t strategy procs =
    let n = Array.length procs in
    let states = Array.init n (fun i -> Not_started procs.(i)) in
    t.last_steps <- 0;
    t.last_trace <- [];
    let view =
      {
        Strategy.runnable =
          (fun () ->
            let acc = ref [] in
            for p = n - 1 downto 0 do
              match states.(p) with
              | Not_started _ | Paused _ -> acc := p :: !acc
              | Finished -> ()
            done;
            !acc);
        label_of =
          (fun p ->
            match states.(p) with
            | Paused (l, _) -> Some l
            | Not_started _ | Finished -> None);
        steps = (fun () -> t.last_steps);
        finished = (fun p -> states.(p) = Finished);
      }
    in
    let record p st =
      if t.trace_log then
        let performed =
          match st with
          | Paused (l, _) -> l
          | Not_started _ -> Custom "start"
          | Finished -> Custom "?"
        in
        t.last_trace <- (p, performed) :: t.last_trace
    in
    let rec loop () =
      let all_done =
        Array.for_all (function Finished -> true | _ -> false) states
      in
      if all_done then Completed
      else begin
        match strategy view with
        | Strategy.Stop msg ->
            kill_all states;
            Stopped msg
        | Strategy.Crash_now ->
            kill_all states;
            List.iter (fun h -> h ()) (List.rev t.crash_hooks);
            Crashed
        | Strategy.Schedule p ->
            if p < 0 || p >= n then
              invalid_arg (Printf.sprintf "Sched: scheduled bad process %d" p);
            t.last_steps <- t.last_steps + 1;
            if t.last_steps > max_steps then begin
              kill_all states;
              raise
                (Stuck
                   (Printf.sprintf "schedule exceeded %d steps (livelock?)"
                      max_steps))
            end;
            let st = states.(p) in
            record p st;
            (match st with
            | Finished ->
                invalid_arg
                  (Printf.sprintf "Sched: scheduled finished process %d" p)
            | Not_started _ | Paused _ ->
                (* Mark finished before resuming so that a process raising a
                   real exception (e.g. a failed test assertion) leaves a
                   consistent state for [kill_all]. *)
                states.(p) <- Finished);
            let r =
              try
                match st with
                | Not_started fn ->
                    resume_proc p (fun () ->
                        Effect.Deep.match_with (fun () -> fn p) () handler)
                | Paused (_, k) ->
                    resume_proc p (fun () -> Effect.Deep.continue k ())
                | Finished -> assert false
              with e ->
                kill_all states;
                raise e
            in
            (match r with
            | R_done | R_killed -> states.(p) <- Finished
            | R_paused (l, k) -> states.(p) <- Paused (l, k));
            loop ()
      end
    in
    loop ()
end
