lib/sched/sched.ml: Array Effect Format Hashtbl List Onll_util Printf
