lib/sched/sched.mli: Format
