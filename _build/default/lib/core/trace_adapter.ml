(** {!Trace_intf.S} view of the paper's lock-free trace (Listing 2). *)

module Backward (M : Onll_machine.Machine_sig.S) :
  Trace_intf.S = struct
  module T = Trace.Make (M)

  type ('env, 'state) t = ('env, 'state) T.t
  type ('env, 'state) node = ('env, 'state) T.node

  let create = T.create
  let insert = T.insert
  let idx n = n.T.idx
  let is_available n = M.Tvar.get n.T.available
  let set_available n = M.Tvar.set n.T.available true
  let latest_available = T.latest_available
  let fuzzy_envs _t node = T.fuzzy_envs node

  let delta_from ?floor _t node =
    let floor =
      match floor with
      | Some (fnode, fstate) when fnode.T.idx <= node.T.idx ->
          Some (fnode.T.idx, fstate)
      | Some _ | None -> None
    in
    T.delta_from ?floor node

  let to_list = T.to_list
  let base_of = T.base_of
  let prune = T.prune
end
