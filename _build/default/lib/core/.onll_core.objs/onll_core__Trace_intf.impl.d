lib/core/trace_intf.ml:
