lib/core/onll.mli: Format Onll_machine Spec Trace_intf
