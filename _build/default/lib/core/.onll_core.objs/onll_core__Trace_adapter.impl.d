lib/core/trace_adapter.ml: Onll_machine Trace Trace_intf
