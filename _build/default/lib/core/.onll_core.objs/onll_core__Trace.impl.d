lib/core/trace.ml: List Onll_machine
