lib/core/onll.ml: Array Format Hashtbl List Onll_machine Onll_plog Onll_util Printf Spec Trace_adapter Trace_intf Wf_trace
