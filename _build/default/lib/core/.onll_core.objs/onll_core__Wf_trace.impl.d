lib/core/wf_trace.ml: Array List Onll_machine Trace_intf
