lib/core/spec.ml: Format Onll_util
