(** Deterministic sequential object specifications.

    The universal construction turns any module of this signature into a
    lock-free durably linearizable object. The paper's model (§2.2) defines
    the state of an object as the sequence of update operations applied to
    it, with a [compute] method giving each operation's return value; here
    that is split into an explicit state type with [apply] (updates: new
    state + return value) and [read] (read-only operations: return value
    only), which is equivalent and lets implementations checkpoint states.

    Update operations must be deterministic: applying the same operations in
    the same order always yields the same state and values. [apply] and
    [read] must be pure. *)

module type S = sig
  type state
  type update_op
  type read_op
  type value

  val name : string
  (** Short identifier, used in region names and reports. *)

  val initial : state
  (** The state produced by INITIALIZE. *)

  val apply : state -> update_op -> state * value
  (** Sequential semantics of an update: the new state and the value
      returned to the invoking process. *)

  val read : state -> read_op -> value
  (** Sequential semantics of a read-only operation. *)

  val update_codec : update_op Onll_util.Codec.t
  (** Serialization for persisting operations in the log. *)

  val state_codec : state Onll_util.Codec.t
  (** Serialization for checkpointing states (log compaction, §8). *)

  val equal_state : state -> state -> bool
  val equal_value : value -> value -> bool
  val pp_update : Format.formatter -> update_op -> unit
  val pp_read : Format.formatter -> read_op -> unit
  val pp_value : Format.formatter -> value -> unit
end
