type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the small
     bounds used by schedules and workloads. Mask to OCaml's 63-bit
     non-negative range ([Int64.to_int] truncates, so bit 62 would otherwise
     surface as a sign bit). *)
  let x = Int64.to_int (next_int64 t) land max_int in
  x mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x /. 9007199254740992.0 *. bound

let pick t = function
  | [] -> invalid_arg "Splitmix.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
