type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> Array.of_list a
    | _ -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row
    else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let line row =
    let cells = List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell) row in
    let s = String.concat "  " cells in
    let stop = ref (String.length s) in
    while !stop > 0 && s.[!stop - 1] = ' ' do decr stop done;
    String.sub s 0 !stop
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let out = Buffer.create 512 in
  Buffer.add_string out (line header);
  Buffer.add_char out '\n';
  Buffer.add_string out sep;
  Buffer.add_char out '\n';
  List.iter
    (fun row ->
      Buffer.add_string out (line row);
      Buffer.add_char out '\n')
    rows;
  Buffer.contents out

let print ?align ~title ~header rows =
  Printf.printf "\n== %s ==\n%s%!" title (render ?align ~header rows)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.abs f >= 100. then Printf.sprintf "%.1f" f
  else if Float.abs f >= 1. then Printf.sprintf "%.2f" f
  else Printf.sprintf "%.4f" f

let series ~title ~x_label curves =
  let module FS = Set.Make (Float) in
  let xs =
    List.fold_left
      (fun acc (_, pts) ->
        List.fold_left (fun acc (x, _) -> FS.add x acc) acc pts)
      FS.empty curves
  in
  let header = x_label :: List.map fst curves in
  let rows =
    FS.elements xs
    |> List.map (fun x ->
           fmt_float x
           :: List.map
                (fun (_, pts) ->
                  match List.assoc_opt x pts with
                  | Some y -> fmt_float y
                  | None -> "-")
                curves)
  in
  print ~title ~header rows
