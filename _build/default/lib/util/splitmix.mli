(** SplitMix64 pseudo-random number generator.

    Deterministic, seedable and splittable; used everywhere a reproducible
    stream of random choices is needed (schedules, crash points, workloads)
    so that every randomized experiment can be replayed from its seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current position. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
