let table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         if Int32.logand !c 1l <> 0l then
           c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
         else c := Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let update_byte crc b =
  let t = Lazy.force table in
  let idx = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int b)) 0xFFl) in
  Int32.logxor t.(idx) (Int32.shift_right_logical crc 8)

let bytes ?(init = 0l) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes: range out of bounds";
  let crc = ref (Int32.lognot init) in
  for i = pos to pos + len - 1 do
    crc := update_byte !crc (Char.code (Bytes.unsafe_get b i))
  done;
  Int32.lognot !crc

let string ?init s =
  bytes ?init (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let int64 ?init x =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 x;
  bytes ?init b ~pos:0 ~len:8
