(** Little binary serialization combinators.

    Sequential specifications hand the construction opaque byte strings for
    their operations and checkpointed states; these combinators build such
    codecs without depending on [Marshal] (whose format is not stable and
    whose failure mode on corrupt input is a segfault rather than an error,
    which matters when decoding possibly-torn NVM contents). *)

type 'a t
(** A codec: a value of type ['a] to/from bytes. *)

exception Decode_error of string
(** Raised by [decode]/readers on malformed or truncated input. *)

val encode : 'a t -> 'a -> string
val decode : 'a t -> string -> 'a
(** [decode c s] decodes [s] entirely; trailing bytes are a
    {!Decode_error}. *)

(** {1 Primitives} *)

val unit : unit t
val bool : bool t

val int : int t
(** 63-bit OCaml int, 8 bytes little-endian. *)

val int32 : int32 t
val int64 : int64 t
val float : float t
val char : char t

val string : string t
(** Length-prefixed. *)

(** {1 Combinators} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val list : 'a t -> 'a list t
val array : 'a t -> 'a array t
val option : 'a t -> 'a option t

val map : ('a -> 'b) -> ('b -> 'a) -> 'a t -> 'b t
(** [map of_a to_a c] converts codec [c] via an isomorphism:
    [of_a] decodes, [to_a] encodes. *)

val tagged : ('a -> int * string) -> (int -> string -> 'a) -> 'a t
(** [tagged to_tag of_tag] builds a variant codec: [to_tag v] yields a
    constructor tag and an encoded payload; [of_tag tag payload] rebuilds the
    value (raising {!Decode_error} on an unknown tag). *)

(** {1 Low-level interface for incremental encoding} *)

val write : 'a t -> Buffer.t -> 'a -> unit
val read : 'a t -> string -> pos:int -> 'a * int
(** [read c s ~pos] decodes at offset [pos], returning the value and the
    offset one past its encoding. *)
