(** ASCII table and data-series rendering for the benchmark harness.

    Every experiment prints its result as either a table (rows of cells) or a
    series (x, y pairs per curve) in a stable plain-text format so that
    paper-vs-measured comparisons in EXPERIMENTS.md can quote the output
    verbatim. *)

type align = Left | Right

val render :
  ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the table out with a column width fitting the
    widest cell. [align] defaults to [Left] for the first column and [Right]
    for the rest. Rows shorter than the header are padded with empty cells. *)

val print :
  ?align:align list -> title:string -> header:string list ->
  string list list -> unit
(** [print ~title ~header rows] writes a titled table to stdout. *)

val series :
  title:string -> x_label:string ->
  (string * (float * float) list) list -> unit
(** [series ~title ~x_label curves] prints one row per x value with a column
    per named curve — the textual equivalent of a line plot. X values are the
    union of all curves' x values; missing points print as "-". *)

val fmt_float : float -> string
(** Compact float formatting: integers without decimals, otherwise 2–3
    significant decimals. *)
