lib/util/splitmix.mli:
