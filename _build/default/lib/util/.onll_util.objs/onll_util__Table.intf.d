lib/util/table.mli:
