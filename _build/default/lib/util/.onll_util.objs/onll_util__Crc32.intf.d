lib/util/crc32.mli: Bytes
