lib/util/table.ml: Array Buffer Float List Printf Set String
