lib/util/splitmix.ml: Array Int64 List
