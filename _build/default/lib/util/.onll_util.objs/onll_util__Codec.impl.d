lib/util/codec.ml: Array Buffer Char Format Int64 List String
