exception Decode_error of string

type 'a t = {
  write : Buffer.t -> 'a -> unit;
  read : string -> pos:int -> 'a * int;
}

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let check_space s pos need what =
  if pos < 0 || pos + need > String.length s then
    fail "%s: truncated input (need %d bytes at offset %d, have %d)" what need
      pos (String.length s - pos)

let encode c v =
  let b = Buffer.create 64 in
  c.write b v;
  Buffer.contents b

let decode c s =
  let v, stop = c.read s ~pos:0 in
  if stop <> String.length s then
    fail "decode: %d trailing bytes" (String.length s - stop);
  v

let write c buf v = c.write buf v
let read c s ~pos = c.read s ~pos

let unit =
  { write = (fun _ () -> ()); read = (fun _ ~pos -> ((), pos)) }

let char =
  {
    write = (fun b c -> Buffer.add_char b c);
    read =
      (fun s ~pos ->
        check_space s pos 1 "char";
        (s.[pos], pos + 1));
  }

let bool =
  {
    write = (fun b v -> Buffer.add_char b (if v then '\001' else '\000'));
    read =
      (fun s ~pos ->
        check_space s pos 1 "bool";
        (match s.[pos] with
        | '\000' -> (false, pos + 1)
        | '\001' -> (true, pos + 1)
        | c -> fail "bool: invalid byte %d" (Char.code c)));
  }

let int64 =
  {
    write = (fun b v -> Buffer.add_int64_le b v);
    read =
      (fun s ~pos ->
        check_space s pos 8 "int64";
        (String.get_int64_le s pos, pos + 8));
  }

let int =
  {
    write = (fun b v -> Buffer.add_int64_le b (Int64.of_int v));
    read =
      (fun s ~pos ->
        check_space s pos 8 "int";
        (Int64.to_int (String.get_int64_le s pos), pos + 8));
  }

let int32 =
  {
    write = (fun b v -> Buffer.add_int32_le b v);
    read =
      (fun s ~pos ->
        check_space s pos 4 "int32";
        (String.get_int32_le s pos, pos + 4));
  }

let float =
  {
    write = (fun b v -> Buffer.add_int64_le b (Int64.bits_of_float v));
    read =
      (fun s ~pos ->
        check_space s pos 8 "float";
        (Int64.float_of_bits (String.get_int64_le s pos), pos + 8));
  }

let string =
  {
    write =
      (fun b v ->
        Buffer.add_int64_le b (Int64.of_int (String.length v));
        Buffer.add_string b v);
    read =
      (fun s ~pos ->
        check_space s pos 8 "string length";
        let len = Int64.to_int (String.get_int64_le s pos) in
        if len < 0 then fail "string: negative length %d" len;
        check_space s (pos + 8) len "string body";
        (String.sub s (pos + 8) len, pos + 8 + len));
  }

let pair ca cb =
  {
    write =
      (fun b (x, y) ->
        ca.write b x;
        cb.write b y);
    read =
      (fun s ~pos ->
        let x, pos = ca.read s ~pos in
        let y, pos = cb.read s ~pos in
        ((x, y), pos));
  }

let triple ca cb cc =
  {
    write =
      (fun b (x, y, z) ->
        ca.write b x;
        cb.write b y;
        cc.write b z);
    read =
      (fun s ~pos ->
        let x, pos = ca.read s ~pos in
        let y, pos = cb.read s ~pos in
        let z, pos = cc.read s ~pos in
        ((x, y, z), pos));
  }

let list c =
  {
    write =
      (fun b l ->
        Buffer.add_int64_le b (Int64.of_int (List.length l));
        List.iter (c.write b) l);
    read =
      (fun s ~pos ->
        check_space s pos 8 "list length";
        let n = Int64.to_int (String.get_int64_le s pos) in
        if n < 0 then fail "list: negative length %d" n;
        let rec loop acc pos k =
          if k = 0 then (List.rev acc, pos)
          else
            let v, pos = c.read s ~pos in
            loop (v :: acc) pos (k - 1)
        in
        loop [] (pos + 8) n);
  }

let array c =
  let l = list c in
  {
    write = (fun b a -> l.write b (Array.to_list a));
    read =
      (fun s ~pos ->
        let xs, pos = l.read s ~pos in
        (Array.of_list xs, pos));
  }

let option c =
  {
    write =
      (fun b -> function
        | None -> Buffer.add_char b '\000'
        | Some v ->
            Buffer.add_char b '\001';
            c.write b v);
    read =
      (fun s ~pos ->
        check_space s pos 1 "option tag";
        match s.[pos] with
        | '\000' -> (None, pos + 1)
        | '\001' ->
            let v, pos = c.read s ~pos:(pos + 1) in
            (Some v, pos)
        | ch -> fail "option: invalid tag %d" (Char.code ch));
  }

let map of_a to_a c =
  {
    write = (fun b v -> c.write b (to_a v));
    read =
      (fun s ~pos ->
        let v, pos = c.read s ~pos in
        (of_a v, pos));
  }

let tagged to_tag of_tag =
  let payload = pair int string in
  {
    write = (fun b v -> payload.write b (to_tag v));
    read =
      (fun s ~pos ->
        let (tag, body), pos = payload.read s ~pos in
        (of_tag tag body, pos));
  }
