(** CRC-32 (IEEE 802.3 polynomial, reflected).

    Used by the persistent log to make entries self-validating: an entry whose
    stored checksum matches the checksum of its contents is known to have been
    written back completely, so no write ordering between payload and "commit
    marker" is needed (the checksum is the commit marker). *)

val string : ?init:int32 -> string -> int32
(** [string s] is the CRC-32 of [s]. [init] continues a running checksum. *)

val bytes : ?init:int32 -> Bytes.t -> pos:int -> len:int -> int32
(** [bytes b ~pos ~len] checksums the range [pos, pos+len) of [b].
    @raise Invalid_argument if the range is out of bounds. *)

val int64 : ?init:int32 -> int64 -> int32
(** [int64 x] checksums the 8 little-endian bytes of [x]. *)
