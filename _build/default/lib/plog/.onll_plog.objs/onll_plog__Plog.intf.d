lib/plog/plog.mli: Onll_machine
