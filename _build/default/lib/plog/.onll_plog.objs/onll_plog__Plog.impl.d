lib/plog/plog.ml: Bytes Crc32 Int64 List Onll_machine Onll_util String
