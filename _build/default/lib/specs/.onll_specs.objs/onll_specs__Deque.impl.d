lib/specs/deque.ml: Format List Onll_util Printf
