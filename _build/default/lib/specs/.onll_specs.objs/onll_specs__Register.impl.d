lib/specs/register.ml: Format Int Onll_util
