lib/specs/set_spec.ml: Format Int Onll_util Printf Set
