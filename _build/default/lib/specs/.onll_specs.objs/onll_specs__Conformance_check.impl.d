lib/specs/conformance_check.ml: Counter Deque Kv Ledger Onll_core Pqueue Queue_spec Register Set_spec Stack_spec
