lib/specs/counter.ml: Format Int Onll_util Printf
