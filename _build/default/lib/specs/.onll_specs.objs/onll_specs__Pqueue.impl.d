lib/specs/pqueue.ml: Format List Onll_util Printf
