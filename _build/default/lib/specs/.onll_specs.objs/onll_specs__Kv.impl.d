lib/specs/kv.ml: Format List Map Onll_util Printf String
