lib/specs/stack_spec.ml: Format List Onll_util Printf
