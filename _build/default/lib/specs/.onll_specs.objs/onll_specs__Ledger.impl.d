lib/specs/ledger.ml: Format Int List Map Onll_util Printf String
