lib/specs/queue_spec.ml: Format List Onll_util Printf
