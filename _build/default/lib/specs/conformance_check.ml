(* Compile-time proof that every stock specification satisfies
   {!Onll_core.Spec.S}. Nothing is exported; a spec drifting from the
   signature breaks the build here, with an error pointing at the spec
   rather than at some distant functor application. *)

module type S = Onll_core.Spec.S

module Check_counter : S = Counter
module Check_register : S = Register
module Check_queue : S = Queue_spec
module Check_stack : S = Stack_spec
module Check_kv : S = Kv
module Check_set : S = Set_spec
module Check_ledger : S = Ledger
module Check_pqueue : S = Pqueue
module Check_deque : S = Deque
