(** F2 — the fuzzy window (Figure 2 / Proposition 5.2).

    Across many random schedules, record the largest fuzzy window any
    persist step observed. Proposition 5.2 bounds it by MAX-PROCESSES; the
    table shows the bound is both respected and approached (contention
    genuinely produces windows larger than 1). *)

open Onll_machine
module Cs = Onll_specs.Counter

let max_window ~n ~seeds ~ops =
  let worst = ref 0 in
  for seed = 1 to seeds do
    let sim = Sim.create ~max_processes:n () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.create ~log_capacity:(1 lsl 20) () in
    let procs =
      Array.init n (fun _ ->
          fun _ ->
            for _ = 1 to ops do
              ignore (C.update obj Cs.Increment)
            done)
    in
    let outcome = Sim.run sim (Onll_sched.Sched.Strategy.random ~seed) procs in
    assert (outcome = Onll_sched.Sched.World.Completed);
    worst := max !worst (C.max_fuzzy_window obj)
  done;
  !worst

let run () =
  let rows =
    List.map
      (fun n ->
        let w = max_window ~n ~seeds:40 ~ops:8 in
        assert (w <= n);
        [
          string_of_int n;
          string_of_int w;
          string_of_int n;
          (if w <= n then "holds" else "VIOLATED");
        ])
      [ 2; 3; 4; 6; 8 ]
  in
  Onll_util.Table.print
    ~title:
      "F2 — largest fuzzy window over 40 random schedules (Prop 5.2 bound: \
       MAX-PROCESSES)"
    ~header:[ "processes"; "max window seen"; "bound"; "Prop 5.2" ]
    rows
