bench/fuzzy_window.ml: Array List Onll_core Onll_machine Onll_sched Onll_specs Onll_util Sim
