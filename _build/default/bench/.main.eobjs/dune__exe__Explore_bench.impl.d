bench/explore_bench.ml: Array List Onll_core Onll_explore Onll_machine Onll_sched Onll_specs Onll_util Printf Sim
