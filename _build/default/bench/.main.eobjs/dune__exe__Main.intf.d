bench/main.mli:
