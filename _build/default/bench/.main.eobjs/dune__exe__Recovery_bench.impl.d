bench/recovery_bench.ml: Harness List Onll_core Onll_machine Onll_nvm Onll_specs Onll_util Sim
