bench/helping_bench.ml: Array List Onll_core Onll_machine Onll_sched Onll_specs Onll_util Sim Table
