bench/fence_audit.ml: Array Float Gen List Onll_baselines Onll_core Onll_machine Onll_nvm Onll_sched Onll_specs Onll_util Sim Splitmix Table Test_support
