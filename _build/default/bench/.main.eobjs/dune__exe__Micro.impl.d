bench/micro.ml: Analyze Bechamel Benchmark Char Hashtbl Instance List Measure Onll_core Onll_machine Onll_plog Onll_util Printf Staged String Test Time Toolkit
