bench/fuzz_campaign.ml: Fuzz Gen List Onll_core Onll_nvm Onll_specs Onll_util Test_support
