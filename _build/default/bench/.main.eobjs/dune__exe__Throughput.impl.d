bench/throughput.ml: Domain Harness List Native Onll_baselines Onll_core Onll_machine Onll_specs Onll_util Printf Test_support Unix
