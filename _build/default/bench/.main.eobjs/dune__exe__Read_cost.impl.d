bench/read_cost.ml: List Native Onll_core Onll_machine Onll_specs Onll_util Unix
