bench/checkpoint_sweep.ml: Harness List Onll_core Onll_machine Onll_nvm Onll_specs Onll_util Printf Sim
