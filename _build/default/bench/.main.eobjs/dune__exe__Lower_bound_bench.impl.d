bench/lower_bound_bench.ml: Array List Onll_baselines Onll_core Onll_lowerbound Onll_machine Onll_specs Onll_util Printf Sim
