bench/harness.ml: Array Float Onll_machine Onll_nvm Onll_sched Sim Unix
