(** E6 — recovery cost and memory reclamation (§8 checkpoints and pruning).

    Crash an object after H updates and measure what recovery must do, with
    and without periodic checkpoints: wall time, live log bytes scanned, and
    the size of the rebuilt execution trace. Expected shape: without
    checkpoints everything is O(H); with a checkpoint every k updates, all
    three collapse to O(k). *)

open Onll_machine
module Cs = Onll_specs.Counter

type sample = {
  recovery_ms : float;
  live_log_bytes : int;
  trace_nodes : int;
  value : int;
}

let run_one ~history ~checkpoint_every =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.create ~log_capacity:(1 lsl 22) () in
  for k = 1 to history do
    ignore (C.update obj Cs.Increment);
    if checkpoint_every > 0 && k mod checkpoint_every = 0 then begin
      ignore (C.checkpoint obj);
      C.prune obj ~below:(C.latest_available_idx obj)
    end
  done;
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  let live_log_bytes =
    List.fold_left (fun a (_, l, _) -> a + l) 0 (C.log_stats obj)
  in
  let (), dt = Harness.time_it (fun () -> C.recover obj) in
  {
    recovery_ms = dt *. 1e3;
    live_log_bytes;
    trace_nodes = List.length (C.trace_nodes obj);
    value = C.read obj Cs.Get;
  }

let run () =
  let histories = [ 200; 500; 1_000; 2_000; 4_000 ] in
  let rows =
    List.concat_map
      (fun h ->
        List.map
          (fun (label, every) ->
            let s = run_one ~history:h ~checkpoint_every:every in
            assert (s.value = h);
            [
              string_of_int h;
              label;
              Onll_util.Table.fmt_float s.recovery_ms;
              string_of_int s.live_log_bytes;
              string_of_int s.trace_nodes;
            ])
          [ ("none", 0); ("every 200", 200) ])
      histories
  in
  Onll_util.Table.print
    ~title:
      "E6 — recovery cost vs history length (counter; crash after H \
       updates; recovered value asserted = H)"
    ~header:
      [ "history"; "checkpoints"; "recovery ms"; "live log bytes";
        "trace nodes" ]
    rows
