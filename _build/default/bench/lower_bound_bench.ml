(** E2 — the lower bound (Theorem 6.3), measured.

    For each implementation and each process count, run the two adversary
    schedules and report what every process had to pay. The paper's claim:
    any {e lock-free} durably linearizable implementation shows at least one
    persistent fence per process (ONLL and persist-on-read hit exactly one;
    shadow paging pays two); a non-durable object shows zero (it simply is
    not durable); blocking implementations starve instead of fencing. *)

open Onll_machine
module Lb = Onll_lowerbound.Lowerbound
module Cs = Onll_specs.Counter

let setups :
    (string * (int -> Sim.t * (int -> unit) array)) list =
  let onll n =
    let sim = Sim.create ~max_processes:n () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.create () in
    (sim, Array.init n (fun _ -> fun _ -> ignore (C.update obj Cs.Increment)))
  in
  let onll_wf n =
    let sim = Sim.create ~max_processes:n () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
    let obj = C.create () in
    (sim, Array.init n (fun _ -> fun _ -> ignore (C.update obj Cs.Increment)))
  in
  let por n =
    let sim = Sim.create ~max_processes:n () in
    let module M = (val Sim.machine sim) in
    let module P = Onll_baselines.Persist_on_read.Make (M) (Cs) in
    let obj = P.create () in
    (sim, Array.init n (fun _ -> fun _ -> ignore (P.update obj Cs.Increment)))
  in
  let shadow n =
    let sim = Sim.create ~max_processes:n () in
    let module M = (val Sim.machine sim) in
    let module H = Onll_baselines.Shadow.Make (M) (Cs) in
    let obj = H.create () in
    (sim, Array.init n (fun _ -> fun _ -> ignore (H.update obj Cs.Increment)))
  in
  let fc n =
    let sim = Sim.create ~max_processes:n () in
    let module M = (val Sim.machine sim) in
    let module F = Onll_baselines.Flat_combining.Make (M) (Cs) in
    let obj = F.create () in
    (sim, Array.init n (fun _ -> fun _ -> ignore (F.update obj Cs.Increment)))
  in
  let volatile n =
    let sim = Sim.create ~max_processes:n () in
    let module M = (val Sim.machine sim) in
    let module V = Onll_baselines.Volatile.Make (M) (Cs) in
    let obj = V.create () in
    (sim, Array.init n (fun _ -> fun _ -> ignore (V.update obj Cs.Increment)))
  in
  [
    ("onll", onll);
    ("onll-wait-free", onll_wf);
    ("persist-on-read", por);
    ("shadow", shadow);
    ("flat-combining", fc);
    ("volatile", volatile);
  ]

let fence_summary r =
  let a = r.Lb.per_proc_fences in
  let mn = Array.fold_left min max_int a and mx = Array.fold_left max 0 a in
  if mn = mx then string_of_int mn else Printf.sprintf "%d..%d" mn mx

let outcome_str r =
  match r.Lb.outcome with
  | Lb.Measured -> "measured"
  | Lb.Livelock p -> Printf.sprintf "LIVELOCK (p%d starved)" p
  | Lb.Completed_early -> "completed early"

let run () =
  let rows =
    List.concat_map
      (fun (impl, setup) ->
        List.map
          (fun n ->
            let sim, procs = setup n in
            let solo = Lb.solo_chain ~max_steps:100_000 sim ~procs in
            let sim, procs = setup n in
            let chain = Lb.fence_chain ~max_steps:100_000 sim ~procs in
            [
              impl;
              string_of_int n;
              fence_summary solo;
              outcome_str solo;
              fence_summary chain;
              outcome_str chain;
              (if Lb.all_at_least_one chain then "yes"
               else
                 match chain.Lb.outcome with
                 | Lb.Livelock _ -> "n/a (blocks)"
                 | _ -> "NO");
            ])
          [ 2; 4; 8 ])
      setups
  in
  Onll_util.Table.print
    ~title:
      "E2 — Theorem 6.3 adversary: persistent fences per process (min..max)"
    ~header:
      [
        "implementation";
        "n";
        "solo-chain pf";
        "solo outcome";
        "fence-chain pf";
        "fence-chain outcome";
        ">=1 fence each";
      ]
    rows;
  (* The theorem's unit is fences per update INVOKED: repeat the Case 1
     schedule for k operations per process. *)
  let round_rows =
    List.map
      (fun rounds ->
        let n = 4 in
        let sim = Sim.create ~max_processes:n () in
        let module M = (val Sim.machine sim) in
        let module C = Onll_core.Onll.Make (M) (Cs) in
        let obj = C.create () in
        let procs =
          Array.init n (fun _ ->
              fun _ ->
                for _ = 1 to rounds do
                  ignore (C.update obj Cs.Increment)
                done)
        in
        let r = Lb.solo_chain_rounds ~rounds sim ~procs in
        [
          string_of_int rounds;
          fence_summary r;
          outcome_str r;
          (if Lb.all_at_least rounds r then "yes" else "NO");
        ])
      [ 1; 2; 4; 8 ]
  in
  Onll_util.Table.print
    ~title:
      "E2b — k updates per process under the repeated Case 1 schedule        (onll, n = 4): k fences each"
    ~header:[ "k"; "pf per process"; "outcome"; ">=k fences each" ]
    round_rows
