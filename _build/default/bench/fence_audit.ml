(** E1 — persistent fences per operation (Theorem 5.1).

    For every object specification and every implementation, run (a) an
    update-only phase and (b) a mixed update/read phase under a random
    schedule, and report persistent fences per update and the extra fences
    attributable to reads. The paper's claim: ONLL costs exactly 1 per
    update and 0 per read; the linearize-early variant charges reads; shadow
    paging charges 2 per update; flat combining amortises below 1 by
    blocking; volatile pays nothing (and persists nothing). *)

open Onll_machine

let n_procs = 3
let updates_phase = 20  (* per process *)
let mixed_updates = 10
let mixed_reads = 10

module Audit (S : Onll_core.Spec.S) = struct
  (* Measure one implementation through closures. [setup] builds a fresh
     machine + object and returns (sim, update p, read p). *)
  let measure setup =
    (* Phase U: updates only. *)
    let sim, update, _read = setup () in
    let body _ p _ =
      for _ = 1 to updates_phase do
        update p
      done
    in
    Sim.reset_stats sim;
    let outcome =
      Sim.run sim
        (Onll_sched.Sched.Strategy.random ~seed:11)
        (Array.init n_procs (fun p -> body () p))
    in
    assert (outcome = Onll_sched.Sched.World.Completed);
    let pf_updates =
      (Sim.stats sim).Onll_nvm.Memory.Stats.persistent_fences
    in
    let per_update =
      float_of_int pf_updates /. float_of_int (n_procs * updates_phase)
    in
    (* Phase M: mixed, on a fresh object (so histories are comparable). *)
    let sim, update, read = setup () in
    let mixed p _ =
      for k = 1 to mixed_updates + mixed_reads do
        if k mod 2 = 0 then read p else update p
      done
    in
    Sim.reset_stats sim;
    let outcome =
      Sim.run sim
        (Onll_sched.Sched.Strategy.random ~seed:23)
        (Array.init n_procs (fun p -> mixed p))
    in
    assert (outcome = Onll_sched.Sched.World.Completed);
    let pf_mixed = (Sim.stats sim).Onll_nvm.Memory.Stats.persistent_fences in
    let expected_from_updates =
      per_update *. float_of_int (n_procs * mixed_updates)
    in
    let per_read =
      Float.max 0.
        ((float_of_int pf_mixed -. expected_from_updates)
        /. float_of_int (n_procs * mixed_reads))
    in
    (per_update, per_read)

  let rows ~gen_update ~gen_read =
    let open Onll_util in
    let ops seed = Splitmix.create seed in
    let onll ~views () =
      let sim = Sim.create ~max_processes:n_procs () in
      let module M = (val Sim.machine sim) in
      let module C = Onll_core.Onll.Make (M) (S) in
      let obj = C.create ~local_views:views ~log_capacity:(1 lsl 18) () in
      let rng = ops 1 in
      ( sim,
        (fun _ -> ignore (C.update obj (gen_update rng))),
        fun _ -> ignore (C.read obj (gen_read rng)) )
    in
    let onll_wf () =
      let sim = Sim.create ~max_processes:n_procs () in
      let module M = (val Sim.machine sim) in
      let module C = Onll_core.Onll.Make_wait_free (M) (S) in
      let obj = C.create ~log_capacity:(1 lsl 18) () in
      let rng = ops 6 in
      ( sim,
        (fun _ -> ignore (C.update obj (gen_update rng))),
        fun _ -> ignore (C.read obj (gen_read rng)) )
    in
    let por () =
      let sim = Sim.create ~max_processes:n_procs () in
      let module M = (val Sim.machine sim) in
      let module P = Onll_baselines.Persist_on_read.Make (M) (S) in
      let obj = P.create ~log_capacity:(1 lsl 18) () in
      let rng = ops 2 in
      ( sim,
        (fun _ -> ignore (P.update obj (gen_update rng))),
        fun _ -> ignore (P.read obj (gen_read rng)) )
    in
    let shadow () =
      let sim = Sim.create ~max_processes:n_procs () in
      let module M = (val Sim.machine sim) in
      let module H = Onll_baselines.Shadow.Make (M) (S) in
      let obj = H.create ~state_capacity:(1 lsl 14) () in
      let rng = ops 3 in
      ( sim,
        (fun _ -> ignore (H.update obj (gen_update rng))),
        fun _ -> ignore (H.read obj (gen_read rng)) )
    in
    let fc () =
      let sim = Sim.create ~max_processes:n_procs () in
      let module M = (val Sim.machine sim) in
      let module F = Onll_baselines.Flat_combining.Make (M) (S) in
      let obj = F.create ~log_capacity:(1 lsl 18) () in
      let rng = ops 4 in
      ( sim,
        (fun _ -> ignore (F.update obj (gen_update rng))),
        fun _ -> ignore (F.read obj (gen_read rng)) )
    in
    let volatile () =
      let sim = Sim.create ~max_processes:n_procs () in
      let module M = (val Sim.machine sim) in
      let module V = Onll_baselines.Volatile.Make (M) (S) in
      let obj = V.create () in
      let rng = ops 5 in
      ( sim,
        (fun _ -> ignore (V.update obj (gen_update rng))),
        fun _ -> ignore (V.read obj (gen_read rng)) )
    in
    List.map
      (fun (impl, setup) ->
        let per_update, per_read = measure setup in
        [
          S.name;
          impl;
          Table.fmt_float per_update;
          Table.fmt_float per_read;
        ])
      [
        ("onll", onll ~views:false);
        ("onll+views", onll ~views:true);
        ("onll-wait-free", onll_wf);
        ("persist-on-read", por);
        ("shadow", shadow);
        ("flat-combining", fc);
        ("volatile", volatile);
      ]
end

let run () =
  let module A_counter = Audit (Onll_specs.Counter) in
  let module A_register = Audit (Onll_specs.Register) in
  let module A_queue = Audit (Onll_specs.Queue_spec) in
  let module A_stack = Audit (Onll_specs.Stack_spec) in
  let module A_kv = Audit (Onll_specs.Kv) in
  let module A_set = Audit (Onll_specs.Set_spec) in
  let module A_ledger = Audit (Onll_specs.Ledger) in
  let open Test_support in
  let rows =
    A_counter.rows ~gen_update:Gen.Counter.update ~gen_read:Gen.Counter.read
    @ A_register.rows ~gen_update:Gen.Register.update
        ~gen_read:Gen.Register.read
    @ A_queue.rows ~gen_update:Gen.Queue.update ~gen_read:Gen.Queue.read
    @ A_stack.rows ~gen_update:Gen.Stack.update ~gen_read:Gen.Stack.read
    @ A_kv.rows ~gen_update:Gen.Kv.update ~gen_read:Gen.Kv.read
    @ A_set.rows ~gen_update:Gen.Set_g.update ~gen_read:Gen.Set_g.read
    @ A_ledger.rows ~gen_update:Gen.Ledger.update ~gen_read:Gen.Ledger.read
  in
  Onll_util.Table.print
    ~title:
      "E1 — persistent fences per operation (Theorem 5.1: ONLL = 1 per \
       update, 0 per read)"
    ~header:[ "object"; "implementation"; "pf/update"; "pf/read" ]
    rows;
  (* Hard assertions for the headline claim. *)
  List.iter
    (fun row ->
      match row with
      | [ _; impl; pu; pr ]
        when impl = "onll" || impl = "onll+views" || impl = "onll-wait-free"
        ->
          assert (pu = "1" && pr = "0")
      | _ -> ())
    rows;
  print_endline
    "(asserted: every onll row reads exactly 1 pf/update, 0 pf/read)"
