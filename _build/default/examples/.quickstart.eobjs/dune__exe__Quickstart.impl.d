examples/quickstart.ml: Array Format Onll_core Onll_machine Onll_nvm Onll_sched Onll_specs Printf Sched Sim
