examples/durable_queue.mli:
