examples/bank_ledger.ml: Array List Onll_core Onll_machine Onll_sched Onll_specs Onll_util Printf Sched Sim Splitmix
