examples/persistent_kv.ml: Array List Onll_core Onll_machine Onll_sched Onll_specs Printf Sched Sim String
