examples/disk_persistence.mli:
