examples/quickstart.mli:
