examples/disk_persistence.ml: List Onll_core Onll_machine Onll_nvm Onll_specs Printf Sim Sys
