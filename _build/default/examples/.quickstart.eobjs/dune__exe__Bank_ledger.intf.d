examples/bank_ledger.mli:
