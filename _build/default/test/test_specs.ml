open Onll_util

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* Generic codec-roundtrip property for a spec's update operations, driven
   by the shared seeded generators. *)
let op_roundtrip (type u) ~name (codec : u Codec.t) (gen : Splitmix.t -> u) =
  qcheck
    (QCheck.Test.make ~name:(name ^ " update codec roundtrips") ~count:300
       QCheck.small_nat
       (fun seed ->
         let rng = Splitmix.create seed in
         let op = gen rng in
         Codec.decode codec (Codec.encode codec op) = op))

(* {1 Counter} *)

let test_counter_semantics () =
  let open Onll_specs.Counter in
  check Alcotest.int "initial" 0 initial;
  check Alcotest.(pair int int) "incr" (1, 1) (apply 0 Increment);
  check Alcotest.(pair int int) "add" (7, 7) (apply 2 (Add 5));
  check Alcotest.(pair int int) "add negative" (-3, -3) (apply 0 (Add (-3)));
  check Alcotest.int "read" 5 (read 5 Get)

(* {1 Register} *)

let test_register_semantics () =
  let open Onll_specs.Register in
  check Alcotest.(pair int int) "write returns old" (9, 0) (apply 0 (Write 9));
  check Alcotest.int "read" 9 (read 9 Read)

(* {1 Queue} *)

let test_queue_semantics () =
  let open Onll_specs.Queue_spec in
  let st = initial in
  let st, v1 = apply st (Enqueue 1) in
  check Alcotest.bool "enq returns nothing" true (v1 = Nothing);
  let st, _ = apply st (Enqueue 2) in
  let st, _ = apply st (Enqueue 3) in
  check Alcotest.bool "peek" true (read st Peek = Taken (Some 1));
  check Alcotest.bool "length" true (read st Length = Len 3);
  let st, d1 = apply st Dequeue in
  let st, d2 = apply st Dequeue in
  let st, d3 = apply st Dequeue in
  let _, d4 = apply st Dequeue in
  check Alcotest.bool "fifo order" true
    ([ d1; d2; d3; d4 ]
    = [ Taken (Some 1); Taken (Some 2); Taken (Some 3); Taken None ])

let prop_queue_matches_stdlib =
  qcheck
    (QCheck.Test.make ~name:"queue matches Stdlib.Queue" ~count:200
       QCheck.(small_list (option small_nat))
       (fun cmds ->
         let open Onll_specs.Queue_spec in
         let model = Queue.create () in
         let st = ref initial in
         List.for_all
           (fun cmd ->
             match cmd with
             | Some x ->
                 Queue.push x model;
                 let st', v = apply !st (Enqueue x) in
                 st := st';
                 v = Nothing
             | None ->
                 let expected = Queue.take_opt model in
                 let st', v = apply !st Dequeue in
                 st := st';
                 v = Taken expected)
           cmds))

let test_queue_state_codec_canonical () =
  let open Onll_specs.Queue_spec in
  (* The same logical queue in different (front, back) splits must encode
     identically: recovery checkpoints rely on canonical encodings. *)
  let a = ([ 1; 2 ], [ 4; 3 ]) in
  let b = ([ 1; 2; 3; 4 ], []) in
  check Alcotest.bool "equal states" true (equal_state a b);
  check Alcotest.string "equal encodings"
    (Codec.encode state_codec a)
    (Codec.encode state_codec b)

(* {1 Stack} *)

let test_stack_semantics () =
  let open Onll_specs.Stack_spec in
  let st, _ = apply initial (Push 1) in
  let st, _ = apply st (Push 2) in
  check Alcotest.bool "top" true (read st Top = Taken (Some 2));
  check Alcotest.bool "depth" true (read st Depth = Count 2);
  let st, p1 = apply st Pop in
  check Alcotest.bool "lifo" true (p1 = Taken (Some 2));
  let st, _ = apply st Pop in
  let _, p3 = apply st Pop in
  check Alcotest.bool "pop empty" true (p3 = Taken None)

(* {1 KV} *)

let test_kv_semantics () =
  let open Onll_specs.Kv in
  let st, v = apply initial (Put ("a", "1")) in
  check Alcotest.bool "fresh put" true (v = Previous None);
  let st, v = apply st (Put ("a", "2")) in
  check Alcotest.bool "overwrite" true (v = Previous (Some "1"));
  check Alcotest.bool "get" true (read st (Get "a") = Found (Some "2"));
  check Alcotest.bool "size" true (read st Size = Count 1);
  let st, v = apply st (Delete "a") in
  check Alcotest.bool "delete returns old" true (v = Previous (Some "2"));
  let _, v = apply st (Delete "a") in
  check Alcotest.bool "delete absent" true (v = Previous None)

let prop_kv_matches_assoc =
  qcheck
    (QCheck.Test.make ~name:"kv matches an association list" ~count:200
       QCheck.(
         small_list
           (pair (int_bound 3) (pair (int_bound 3) (string_of_size Gen.(0 -- 4)))))
       (fun cmds ->
         let open Onll_specs.Kv in
         let key i = Printf.sprintf "k%d" i in
         let model = Hashtbl.create 8 in
         let st = ref initial in
         List.for_all
           (fun (tag, (k, v)) ->
             let k = key k in
             if tag = 0 then begin
               let expected = Hashtbl.find_opt model k in
               Hashtbl.remove model k;
               let st', got = apply !st (Delete k) in
               st := st';
               got = Previous expected
             end
             else begin
               let expected = Hashtbl.find_opt model k in
               Hashtbl.replace model k v;
               let st', got = apply !st (Put (k, v)) in
               st := st';
               got = Previous expected
             end)
           cmds))

(* {1 Set} *)

let test_set_semantics () =
  let open Onll_specs.Set_spec in
  let st, v = apply initial (Insert 5) in
  check Alcotest.bool "insert fresh" true (v = Changed true);
  let st, v = apply st (Insert 5) in
  check Alcotest.bool "insert dup" true (v = Changed false);
  check Alcotest.bool "contains" true (read st (Contains 5) = Member true);
  check Alcotest.bool "cardinal" true (read st Cardinal = Count 1);
  let st, v = apply st (Remove 5) in
  check Alcotest.bool "remove" true (v = Changed true);
  let _, v = apply st (Remove 5) in
  check Alcotest.bool "remove absent" true (v = Changed false)

(* {1 Ledger} *)

let test_ledger_basic () =
  let open Onll_specs.Ledger in
  let st, v = apply initial (Open "a") in
  check Alcotest.bool "open" true (v = Ok_v);
  let _, v = apply st (Open "a") in
  check Alcotest.bool "reopen rejected" true (v = Rejected "exists");
  let st, v = apply st (Deposit ("a", 100)) in
  check Alcotest.bool "deposit" true (v = Ok_v);
  check Alcotest.bool "balance" true (read st (Balance "a") = Amount (Some 100));
  let st, v = apply st (Withdraw ("a", 30)) in
  check Alcotest.bool "withdraw" true (v = Ok_v);
  check Alcotest.bool "balance 70" true (read st (Balance "a") = Amount (Some 70));
  let _, v = apply st (Withdraw ("a", 1000)) in
  check Alcotest.bool "overdraft rejected" true
    (v = Rejected "insufficient funds")

let test_ledger_transfer () =
  let open Onll_specs.Ledger in
  let st, _ = apply initial (Open "a") in
  let st, _ = apply st (Open "b") in
  let st, _ = apply st (Deposit ("a", 100)) in
  let st, v = apply st (Transfer ("a", "b", 40)) in
  check Alcotest.bool "transfer ok" true (v = Ok_v);
  check Alcotest.bool "a debited" true (read st (Balance "a") = Amount (Some 60));
  check Alcotest.bool "b credited" true
    (read st (Balance "b") = Amount (Some 40));
  let _, v = apply st (Transfer ("a", "a", 10)) in
  check Alcotest.bool "self transfer rejected" true (v = Rejected "same account");
  let _, v = apply st (Transfer ("a", "zz", 10)) in
  check Alcotest.bool "unknown account" true (v = Rejected "no such account");
  let _, v = apply st (Transfer ("a", "b", 0)) in
  check Alcotest.bool "zero amount" true (v = Rejected "non-positive amount")

let prop_ledger_conserves_money =
  qcheck
    (QCheck.Test.make
       ~name:"ledger: deposits/withdrawals account for the total" ~count:200
       QCheck.small_nat
       (fun seed ->
         let open Onll_specs.Ledger in
         let rng = Splitmix.create seed in
         let st = ref initial in
         let injected = ref 0 in
         for _ = 1 to 40 do
           let op = Test_support.Gen.Ledger.update rng in
           let st', v = apply !st op in
           st := st';
           (* only accepted deposits/withdrawals change the total *)
           (match (op, v) with
           | Deposit (_, n), Ok_v -> injected := !injected + n
           | Withdraw (_, n), Ok_v -> injected := !injected - n
           | (Deposit _ | Withdraw _ | Open _ | Transfer _), _ -> ())
         done;
         read !st Total = Amount (Some !injected)))

(* {1 Priority queue} *)

let test_pqueue_semantics () =
  let open Onll_specs.Pqueue in
  let st, _ = apply initial (Insert (5, 50)) in
  let st, _ = apply st (Insert (2, 20)) in
  let st, _ = apply st (Insert (7, 70)) in
  check Alcotest.bool "find min" true (read st Find_min = Min (Some (2, 20)));
  check Alcotest.bool "size" true (read st Size = Count 3);
  let st, m1 = apply st Extract_min in
  let st, m2 = apply st Extract_min in
  let st, m3 = apply st Extract_min in
  let _, m4 = apply st Extract_min in
  check Alcotest.bool "extraction order" true
    ([ m1; m2; m3; m4 ]
    = [ Min (Some (2, 20)); Min (Some (5, 50)); Min (Some (7, 70)); Min None ])

let test_pqueue_ties_deterministic () =
  let open Onll_specs.Pqueue in
  let st, _ = apply initial (Insert (1, 111)) in
  let st, _ = apply st (Insert (1, 222)) in
  let st, m1 = apply st Extract_min in
  let _, m2 = apply st Extract_min in
  check Alcotest.bool "fifo among equal priorities" true
    (m1 = Min (Some (1, 111)) && m2 = Min (Some (1, 222)))

let prop_pqueue_extracts_sorted =
  qcheck
    (QCheck.Test.make ~name:"pqueue extracts in priority order" ~count:150
       QCheck.(small_list (pair (int_bound 20) (int_bound 100)))
       (fun inserts ->
         let open Onll_specs.Pqueue in
         let st =
           List.fold_left
             (fun st (p, x) -> fst (apply st (Insert (p, x))))
             initial inserts
         in
         let rec drain st acc =
           match apply st Extract_min with
           | _, Min None -> List.rev acc
           | st', Min (Some (p, _)) -> drain st' (p :: acc)
           | _ -> assert false
         in
         let prios = drain st [] in
         prios = List.sort compare prios))

(* {1 Deque} *)

let test_deque_semantics () =
  let open Onll_specs.Deque in
  let st, _ = apply initial (Push_back 2) in
  let st, _ = apply st (Push_front 1) in
  let st, _ = apply st (Push_back 3) in
  check Alcotest.bool "front" true (read st Front = Got (Some 1));
  check Alcotest.bool "back" true (read st Back = Got (Some 3));
  check Alcotest.bool "length" true (read st Length = Count 3);
  let st, f = apply st Pop_front in
  let st, b = apply st Pop_back in
  let st, m = apply st Pop_front in
  let _, e = apply st Pop_back in
  check Alcotest.bool "pop order" true
    ([ f; b; m; e ] = [ Got (Some 1); Got (Some 3); Got (Some 2); Got None ])

(* {1 Codec roundtrips for every spec} *)

let prop_counter_codec =
  op_roundtrip ~name:"counter" Onll_specs.Counter.update_codec
    Test_support.Gen.Counter.update

let prop_register_codec =
  op_roundtrip ~name:"register" Onll_specs.Register.update_codec
    Test_support.Gen.Register.update

let prop_queue_codec =
  op_roundtrip ~name:"queue" Onll_specs.Queue_spec.update_codec
    Test_support.Gen.Queue.update

let prop_stack_codec =
  op_roundtrip ~name:"stack" Onll_specs.Stack_spec.update_codec
    Test_support.Gen.Stack.update

let prop_kv_codec =
  op_roundtrip ~name:"kv" Onll_specs.Kv.update_codec
    Test_support.Gen.Kv.update

let prop_set_codec =
  op_roundtrip ~name:"set" Onll_specs.Set_spec.update_codec
    Test_support.Gen.Set_g.update

let prop_ledger_codec =
  op_roundtrip ~name:"ledger" Onll_specs.Ledger.update_codec
    Test_support.Gen.Ledger.update

let prop_pqueue_codec =
  op_roundtrip ~name:"pqueue" Onll_specs.Pqueue.update_codec
    Test_support.Gen.Pqueue.update

let prop_deque_codec =
  op_roundtrip ~name:"deque" Onll_specs.Deque.update_codec
    Test_support.Gen.Deque.update

(* State codecs roundtrip through sequences of generated updates. *)
let state_roundtrip (type s u)
    (module S : Onll_core.Spec.S with type state = s and type update_op = u)
    gen =
  qcheck
    (QCheck.Test.make
       ~name:(S.name ^ " state codec roundtrips after random updates")
       ~count:150 QCheck.small_nat
       (fun seed ->
         let rng = Splitmix.create seed in
         let st = ref S.initial in
         for _ = 1 to 20 do
           st := fst (S.apply !st (gen rng))
         done;
         S.equal_state !st
           (Codec.decode S.state_codec (Codec.encode S.state_codec !st))))

let () =
  Alcotest.run "specs"
    [
      ( "counter",
        [
          Alcotest.test_case "semantics" `Quick test_counter_semantics;
          prop_counter_codec;
          state_roundtrip (module Onll_specs.Counter)
            Test_support.Gen.Counter.update;
        ] );
      ( "register",
        [
          Alcotest.test_case "semantics" `Quick test_register_semantics;
          prop_register_codec;
          state_roundtrip (module Onll_specs.Register)
            Test_support.Gen.Register.update;
        ] );
      ( "queue",
        [
          Alcotest.test_case "semantics" `Quick test_queue_semantics;
          Alcotest.test_case "canonical state codec" `Quick
            test_queue_state_codec_canonical;
          prop_queue_matches_stdlib;
          prop_queue_codec;
          state_roundtrip (module Onll_specs.Queue_spec)
            Test_support.Gen.Queue.update;
        ] );
      ( "stack",
        [
          Alcotest.test_case "semantics" `Quick test_stack_semantics;
          prop_stack_codec;
          state_roundtrip (module Onll_specs.Stack_spec)
            Test_support.Gen.Stack.update;
        ] );
      ( "kv",
        [
          Alcotest.test_case "semantics" `Quick test_kv_semantics;
          prop_kv_matches_assoc;
          prop_kv_codec;
          state_roundtrip (module Onll_specs.Kv) Test_support.Gen.Kv.update;
        ] );
      ( "set",
        [
          Alcotest.test_case "semantics" `Quick test_set_semantics;
          prop_set_codec;
          state_roundtrip (module Onll_specs.Set_spec)
            Test_support.Gen.Set_g.update;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "basics" `Quick test_ledger_basic;
          Alcotest.test_case "transfer" `Quick test_ledger_transfer;
          prop_ledger_conserves_money;
          prop_ledger_codec;
          state_roundtrip (module Onll_specs.Ledger)
            Test_support.Gen.Ledger.update;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "semantics" `Quick test_pqueue_semantics;
          Alcotest.test_case "deterministic ties" `Quick
            test_pqueue_ties_deterministic;
          prop_pqueue_extracts_sorted;
          prop_pqueue_codec;
          state_roundtrip (module Onll_specs.Pqueue)
            Test_support.Gen.Pqueue.update;
        ] );
      ( "deque",
        [
          Alcotest.test_case "semantics" `Quick test_deque_semantics;
          prop_deque_codec;
          state_roundtrip (module Onll_specs.Deque)
            Test_support.Gen.Deque.update;
        ] );
    ]
