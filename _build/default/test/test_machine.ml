open Onll_machine
open Onll_sched

let check = Alcotest.check

(* {1 Sim machine: Tvar} *)

let test_tvar_basic () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let v = M.Tvar.make 1 in
  check Alcotest.int "get" 1 (M.Tvar.get v);
  M.Tvar.set v 2;
  check Alcotest.int "set" 2 (M.Tvar.get v)

let test_tvar_cas_physical_equality () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  (* refs allocate fresh blocks (constant literals may be shared) *)
  let a = ref 1 and b = ref 1 in
  let v = M.Tvar.make a in
  (* b is structurally equal but physically distinct: CAS must fail *)
  let two = ref 2 in
  check Alcotest.bool "cas wrong witness fails" false
    (M.Tvar.cas v ~expected:b ~desired:two);
  check Alcotest.bool "cas right witness succeeds" true
    (M.Tvar.cas v ~expected:a ~desired:two);
  check Alcotest.int "value updated" 2 !(M.Tvar.get v)

let test_tvar_ops_are_scheduling_points () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let v = M.Tvar.make 0 in
  let w = Sim.world sim in
  ignore
    (Sched.World.run w Sched.Strategy.round_robin
       [|
         (fun _ ->
           M.Tvar.set v 5;
           ignore (M.Tvar.get v);
           ignore (M.Tvar.cas v ~expected:5 ~desired:6));
       |]);
  (* 3 primitive steps + 1 final resume *)
  check Alcotest.int "steps" 4 (Sched.World.steps_taken w)

(* {1 Sim machine: Pm and fences} *)

let test_pm_store_flush_fence () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let r = M.Pm.create ~name:"t" ~size:256 in
  M.Pm.store r ~off:0 "data";
  M.Pm.flush r ~off:0 ~len:4;
  M.fence ();
  check Alcotest.int "one persistent fence" 1 (M.persistent_fences ());
  check Alcotest.string "readable" "data" (M.Pm.load r ~off:0 ~len:4)

let test_fence_label_distinguishes_persistent () =
  let sim = Sim.create ~max_processes:1 ~trace_log:true () in
  let module M = (val Sim.machine sim) in
  let r = M.Pm.create ~name:"t" ~size:64 in
  let w = Sim.world sim in
  ignore
    (Sched.World.run w Sched.Strategy.round_robin
       [|
         (fun _ ->
           M.fence ();  (* nothing pending: plain fence *)
           M.Pm.store r ~off:0 "x";
           M.Pm.flush r ~off:0 ~len:1;
           M.fence () (* pending: persistent *));
       |]);
  let labels = List.map snd (Sched.World.trace w) in
  check Alcotest.bool "has plain fence label" true
    (List.mem Sched.Fence labels);
  check Alcotest.bool "has pfence label" true (List.mem Sched.Pfence labels);
  check Alcotest.int "only one persistent fence" 1 (M.persistent_fences ())

let test_fences_attributed_to_scheduled_proc () =
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let r = M.Pm.create ~name:"t" ~size:256 in
  let proc p _ =
    M.Pm.store r ~off:(p * 64) "z";
    M.Pm.flush r ~off:(p * 64) ~len:1;
    M.fence ()
  in
  ignore
    (Sim.run sim
       (Sched.Strategy.random ~seed:4)
       (Array.init 3 (fun p -> proc p)));
  for p = 0 to 2 do
    check Alcotest.int
      (Printf.sprintf "proc %d fenced once" p)
      1
      (M.persistent_fences_by ~proc:p)
  done

let test_sim_crash_policy_applies () =
  let sim =
    Sim.create ~max_processes:1 ~crash_policy:Onll_nvm.Crash_policy.Persist_all
      ()
  in
  let module M = (val Sim.machine sim) in
  let r = M.Pm.create ~name:"t" ~size:64 in
  let strategy =
    Sched.Strategy.script
      [ Sched.Strategy.Run_steps (0, 2); Sched.Strategy.Crash_here ]
  in
  (* the trailing pause keeps the process alive so the crash lands *)
  ignore
    (Sim.run sim strategy
       [|
         (fun _ ->
           M.Pm.store r ~off:0 "abc";
           M.pause ());
       |]);
  (* Persist_all: the unfenced store survives the crash. *)
  check Alcotest.string "survived under persist-all" "abc"
    (M.Pm.load r ~off:0 ~len:3);
  (* Now the same with Drop_all. *)
  Sim.set_crash_policy sim Onll_nvm.Crash_policy.Drop_all;
  let strategy =
    Sched.Strategy.script
      [ Sched.Strategy.Run_steps (0, 2); Sched.Strategy.Crash_here ]
  in
  ignore
    (Sim.run sim strategy
       [|
         (fun _ ->
           M.Pm.store r ~off:8 "xyz";
           M.pause ());
       |]);
  check Alcotest.string "dropped under drop-all" "\000\000\000"
    (M.Pm.load r ~off:8 ~len:3)

let test_sim_run_rejects_too_many_procs () =
  let sim = Sim.create ~max_processes:2 () in
  Alcotest.check_raises "too many procs"
    (Invalid_argument "Sim.run: more processes than max_processes") (fun () ->
      ignore
        (Sim.run sim Sched.Strategy.round_robin
           (Array.make 3 (fun (_ : int) -> ()))))

let test_sim_self_matches_schedule () =
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let seen = Array.make 3 (-1) in
  ignore
    (Sim.run sim
       (Sched.Strategy.random ~seed:9)
       (Array.init 3 (fun p ->
            fun _ ->
              M.pause ();
              seen.(p) <- M.self ())));
  check Alcotest.(array int) "self = own id" [| 0; 1; 2 |] seen

(* {1 Native machine} *)

let test_native_register_and_self () =
  let n = Native.create ~max_processes:2 ~fence_ns:0 () in
  let module M = (val Native.machine n) in
  let id = Native.register n in
  check Alcotest.int "first id" 0 id;
  check Alcotest.int "self" 0 (M.self ());
  check Alcotest.int "re-register returns same id" 0 (Native.register n)

let test_native_tvar_and_pm () =
  let n = Native.create ~max_processes:1 ~fence_ns:0 () in
  let module M = (val Native.machine n) in
  ignore (Native.register n);
  let v = M.Tvar.make "a" in
  M.Tvar.set v "b";
  check Alcotest.string "tvar" "b" (M.Tvar.get v);
  let r = M.Pm.create ~name:"nat" ~size:128 in
  M.Pm.store r ~off:5 "hello";
  check Alcotest.string "pm roundtrip" "hello" (M.Pm.load r ~off:5 ~len:5);
  M.Pm.store_int64 r ~off:16 77L;
  check Alcotest.int64 "pm int64" 77L (M.Pm.load_int64 r ~off:16)

let test_native_fence_counting () =
  let n = Native.create ~max_processes:1 ~fence_ns:0 () in
  let module M = (val Native.machine n) in
  ignore (Native.register n);
  let r = M.Pm.create ~name:"natf" ~size:128 in
  M.fence ();  (* no pending: not persistent *)
  check Alcotest.int "plain fence free" 0 (M.persistent_fences ());
  M.Pm.store r ~off:0 "x";
  M.Pm.flush r ~off:0 ~len:1;
  M.fence ();
  check Alcotest.int "persistent fence counted" 1 (M.persistent_fences ());
  M.fence ();  (* drained: not persistent *)
  check Alcotest.int "still one" 1 (M.persistent_fences ());
  Native.reset_stats n;
  check Alcotest.int "reset" 0 (M.persistent_fences ())

let test_native_duplicate_region () =
  let n = Native.create ~max_processes:1 () in
  let module M = (val Native.machine n) in
  let _ = M.Pm.create ~name:"dup" ~size:8 in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Native.Pm.create: duplicate region \"dup\"") (fun () ->
      ignore (M.Pm.create ~name:"dup" ~size:8))

let test_native_calibration_positive () =
  check Alcotest.bool "iters per ns > 0" true (Native.calibrate () > 0.0)

let test_native_fence_ns_settable () =
  let n = Native.create ~max_processes:1 ~fence_ns:100 () in
  check Alcotest.int "initial" 100 (Native.fence_ns n);
  Native.set_fence_ns n 250;
  check Alcotest.int "updated" 250 (Native.fence_ns n)

let () =
  Alcotest.run "machine"
    [
      ( "sim.tvar",
        [
          Alcotest.test_case "basic" `Quick test_tvar_basic;
          Alcotest.test_case "cas physical equality" `Quick
            test_tvar_cas_physical_equality;
          Alcotest.test_case "scheduling points" `Quick
            test_tvar_ops_are_scheduling_points;
        ] );
      ( "sim.pm",
        [
          Alcotest.test_case "store/flush/fence" `Quick
            test_pm_store_flush_fence;
          Alcotest.test_case "fence labels" `Quick
            test_fence_label_distinguishes_persistent;
          Alcotest.test_case "fence attribution" `Quick
            test_fences_attributed_to_scheduled_proc;
          Alcotest.test_case "crash policy" `Quick test_sim_crash_policy_applies;
          Alcotest.test_case "proc limit" `Quick
            test_sim_run_rejects_too_many_procs;
          Alcotest.test_case "self" `Quick test_sim_self_matches_schedule;
        ] );
      ( "native",
        [
          Alcotest.test_case "register/self" `Quick
            test_native_register_and_self;
          Alcotest.test_case "tvar and pm" `Quick test_native_tvar_and_pm;
          Alcotest.test_case "fence counting" `Quick test_native_fence_counting;
          Alcotest.test_case "duplicate region" `Quick
            test_native_duplicate_region;
          Alcotest.test_case "calibration" `Quick
            test_native_calibration_positive;
          Alcotest.test_case "fence_ns settable" `Quick
            test_native_fence_ns_settable;
        ] );
    ]
