open Onll_sched

let check = Alcotest.check

(* A tiny shared-memory abstraction over scheduler steps, standing in for
   the machine layer: each access to [cell] is one scheduling point. *)
let get cell =
  Sched.step (Sched.Prim "get");
  !cell

let set cell v =
  Sched.step (Sched.Prim "set");
  cell := v

(* {1 Basics} *)

let test_single_proc_completes () =
  let w = Sched.World.create () in
  let cell = ref 0 in
  let outcome =
    Sched.World.run w Sched.Strategy.round_robin
      [| (fun _ -> set cell (get cell + 1)) |]
  in
  check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
  check Alcotest.int "effect applied" 1 !cell

let test_proc_receives_own_id () =
  let w = Sched.World.create () in
  let ids = ref [] in
  let outcome =
    Sched.World.run w Sched.Strategy.round_robin
      (Array.init 3 (fun _ -> fun p -> ids := p :: !ids))
  in
  check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
  check Alcotest.(list int) "each proc got its id" [ 0; 1; 2 ]
    (List.sort compare !ids)

let test_current_proc_inside () =
  let w = Sched.World.create () in
  let seen = ref (-1) in
  let procs =
    [|
      (fun _ ->
        Sched.step (Sched.Prim "x");
        seen := Sched.current_proc ());
    |]
  in
  ignore (Sched.World.run w Sched.Strategy.round_robin procs);
  check Alcotest.int "current_proc" 0 !seen

let test_step_outside_scheduler_is_noop () =
  (* Recovery code calls machine primitives outside any run. *)
  Sched.step (Sched.Prim "outside");
  check Alcotest.int "proc 0 by convention" 0 (Sched.current_proc ());
  check Alcotest.bool "not in scheduler" false (Sched.in_scheduler ())

let test_steps_counted () =
  let w = Sched.World.create () in
  let cell = ref 0 in
  ignore
    (Sched.World.run w Sched.Strategy.round_robin
       [| (fun _ -> set cell 1) |]);
  (* one Prim step + final resume to completion *)
  check Alcotest.int "steps" 2 (Sched.World.steps_taken w)

(* {1 Determinism} *)

let interleaving seed =
  let w = Sched.World.create ~trace_log:true () in
  let cell = ref 0 in
  let procs =
    Array.init 3 (fun _ ->
        fun _ ->
          for _ = 1 to 5 do
            set cell (get cell + 1)
          done)
  in
  ignore (Sched.World.run w (Sched.Strategy.random ~seed) procs);
  (!cell, Sched.World.trace w)

let test_random_schedule_deterministic () =
  let v1, t1 = interleaving 123 in
  let v2, t2 = interleaving 123 in
  check Alcotest.int "same result" v1 v2;
  check Alcotest.bool "same trace" true (t1 = t2)

let test_random_seeds_differ () =
  (* With racy increments, different interleavings lose different updates;
     at least the traces must differ. *)
  let _, t1 = interleaving 1 in
  let _, t2 = interleaving 5 in
  check Alcotest.bool "different traces" true (t1 <> t2)

let test_round_robin_is_fair () =
  let w = Sched.World.create ~trace_log:true () in
  let procs =
    Array.init 2 (fun _ ->
        fun _ ->
          Sched.step (Sched.Prim "a");
          Sched.step (Sched.Prim "b"))
  in
  ignore (Sched.World.run w Sched.Strategy.round_robin procs);
  let trace = Sched.World.trace w in
  let procs_seq = List.map fst trace in
  (* strict alternation 0 1 0 1 ... *)
  check Alcotest.(list int) "alternating" [ 0; 1; 0; 1; 0; 1 ] procs_seq

(* {1 Racy counter: lost updates are observable} *)

let test_interleaving_can_lose_updates () =
  (* Find a seed where the racy read-modify-write loses an update — the
     scheduler must be able to produce such interleavings. *)
  let exists_lost =
    List.exists
      (fun seed ->
        let v, _ = interleaving seed in
        v < 15)
      (List.init 50 Fun.id)
  in
  check Alcotest.bool "some schedule loses updates" true exists_lost

let test_sequential_script_loses_nothing () =
  let w = Sched.World.create () in
  let cell = ref 0 in
  let procs =
    Array.init 3 (fun _ ->
        fun _ ->
          for _ = 1 to 5 do
            set cell (get cell + 1)
          done)
  in
  let strategy =
    Sched.Strategy.script
      [
        Sched.Strategy.Run_to_completion 0;
        Sched.Strategy.Run_to_completion 1;
        Sched.Strategy.Run_to_completion 2;
      ]
  in
  ignore (Sched.World.run w strategy procs);
  check Alcotest.int "sequential runs keep all updates" 15 !cell

(* {1 Scripts and breakpoints} *)

let test_run_until_pauses_before_label () =
  let w = Sched.World.create () in
  let reached = ref false in
  let procs =
    [|
      (fun _ ->
        Sched.step (Sched.Prim "first");
        Sched.step (Sched.Custom "target");
        reached := true);
    |]
  in
  let strategy =
    Sched.Strategy.script
      ~fallback:(fun _ -> Sched.Strategy.Stop "parked")
      [ Sched.Strategy.Run_until (0, fun l -> l = Sched.Custom "target") ]
  in
  let outcome = Sched.World.run w strategy procs in
  check Alcotest.bool "stopped" true
    (outcome = Sched.World.Stopped "parked");
  check Alcotest.bool "target instruction did not execute" false !reached

let test_run_steps_exact () =
  let w = Sched.World.create () in
  let count = ref 0 in
  let procs =
    [|
      (fun _ ->
        for _ = 1 to 10 do
          Sched.step (Sched.Prim "tick");
          incr count
        done);
    |]
  in
  let strategy =
    Sched.Strategy.script
      ~fallback:(fun _ -> Sched.Strategy.Stop "done")
      [ Sched.Strategy.Run_steps (0, 3) ]
  in
  ignore (Sched.World.run w strategy procs);
  (* 3 scheduling steps: start (pauses at first tick), then 2 ticks run. *)
  check Alcotest.int "exactly 2 increments" 2 !count

let test_return_point_breakpoint () =
  let w = Sched.World.create () in
  let returned = ref false in
  let procs =
    [|
      (fun _ ->
        Sched.step (Sched.Prim "work");
        Sched.step Sched.Return_point;
        returned := true);
    |]
  in
  let strategy =
    Sched.Strategy.script
      ~fallback:(fun _ -> Sched.Strategy.Stop "parked")
      [ Sched.Strategy.run_until_return 0 ]
  in
  ignore (Sched.World.run w strategy procs);
  check Alcotest.bool "parked before returning" false !returned

let test_script_skips_finished_procs () =
  let w = Sched.World.create () in
  let order = ref [] in
  let procs =
    Array.init 2 (fun _ ->
        fun p ->
          Sched.step (Sched.Prim "x");
          order := p :: !order)
  in
  let strategy =
    Sched.Strategy.script
      [
        Sched.Strategy.Run_to_completion 0;
        Sched.Strategy.Run_to_completion 0;  (* already finished: skipped *)
        Sched.Strategy.Run_to_completion 1;
      ]
  in
  let outcome = Sched.World.run w strategy procs in
  check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
  check Alcotest.(list int) "both ran" [ 1; 0 ] !order

(* {1 Crashes} *)

let test_crash_kills_and_fires_hooks () =
  let w = Sched.World.create () in
  let hook_fired = ref false in
  Sched.World.on_crash w (fun () -> hook_fired := true);
  let survived = ref false in
  let procs =
    [|
      (fun _ ->
        Sched.step (Sched.Prim "a");
        Sched.step (Sched.Prim "b");
        survived := true);
    |]
  in
  let strategy =
    Sched.Strategy.script
      [ Sched.Strategy.Run_steps (0, 1); Sched.Strategy.Crash_here ]
  in
  let outcome = Sched.World.run w strategy procs in
  check Alcotest.bool "crashed" true (outcome = Sched.World.Crashed);
  check Alcotest.bool "hook fired" true !hook_fired;
  check Alcotest.bool "continuation discarded" false !survived

let test_crash_hooks_persist_across_runs () =
  let w = Sched.World.create () in
  let crashes = ref 0 in
  Sched.World.on_crash w (fun () -> incr crashes);
  let proc = [| (fun _ -> Sched.step (Sched.Prim "x")) |] in
  (* scripts are single-use (they consume their command list) *)
  let crash_now () = Sched.Strategy.script [ Sched.Strategy.Crash_here ] in
  ignore (Sched.World.run w (crash_now ()) proc);
  ignore (Sched.World.run w (crash_now ()) proc);
  check Alcotest.int "hook fired per crash" 2 !crashes

let test_random_with_crash () =
  let w = Sched.World.create () in
  let procs =
    Array.init 2 (fun _ ->
        fun _ ->
          for _ = 1 to 100 do
            Sched.step (Sched.Prim "x")
          done)
  in
  let outcome =
    Sched.World.run w
      (Sched.Strategy.random_with_crash ~seed:3 ~crash_at_step:10)
      procs
  in
  check Alcotest.bool "crashed" true (outcome = Sched.World.Crashed);
  check Alcotest.int "crashed at step 10" 10 (Sched.World.steps_taken w)

let test_crash_before_completion_beats_completion () =
  let w = Sched.World.create () in
  let procs = [| (fun _ -> ()) |] in
  (* crash_at_step 0: crash before anything runs *)
  let outcome =
    Sched.World.run w
      (Sched.Strategy.random_with_crash ~seed:1 ~crash_at_step:0)
      procs
  in
  check Alcotest.bool "crashed immediately" true
    (outcome = Sched.World.Crashed)

(* {1 PCT} *)

let test_pct_deterministic () =
  let run seed =
    let w = Sched.World.create ~trace_log:true () in
    let cell = ref 0 in
    let procs =
      Array.init 3 (fun _ ->
          fun _ ->
            for _ = 1 to 4 do
              set cell (get cell + 1)
            done)
    in
    ignore
      (Sched.World.run w
         (Sched.Strategy.pct ~seed ~depth:3 ~expected_steps:30)
         procs);
    (!cell, Sched.World.trace w)
  in
  check Alcotest.bool "same seed, same run" true (run 7 = run 7);
  check Alcotest.bool "different seeds differ" true (run 1 <> run 9)

let test_pct_completes () =
  let w = Sched.World.create () in
  let cell = ref 0 in
  let procs =
    Array.init 4 (fun _ -> fun _ -> set cell (get cell + 1))
  in
  let outcome =
    Sched.World.run w
      (Sched.Strategy.pct ~seed:3 ~depth:2 ~expected_steps:10)
      procs
  in
  check Alcotest.bool "completed" true (outcome = Sched.World.Completed)

let test_pct_finds_ordering_bug () =
  (* The racy increment loses an update only if a preemption lands between
     a get and the following set. PCT with depth 2 must find such a
     schedule within a few seeds. *)
  let found = ref false in
  for seed = 1 to 30 do
    let w = Sched.World.create () in
    let cell = ref 0 in
    let procs =
      Array.init 2 (fun _ -> fun _ -> set cell (get cell + 1))
    in
    ignore
      (Sched.World.run w
         (Sched.Strategy.pct ~seed ~depth:2 ~expected_steps:8)
         procs);
    if !cell < 2 then found := true
  done;
  check Alcotest.bool "pct found the lost update" true !found

(* {1 Livelock detection} *)

let test_stuck_raises () =
  let w = Sched.World.create () in
  let flag = ref false in
  let procs =
    [|
      (fun _ ->
        while not (get flag) do
          Sched.step (Sched.Prim "spin")
        done);
    |]
  in
  check Alcotest.bool "raises Stuck" true
    (match Sched.World.run ~max_steps:1000 w Sched.Strategy.round_robin procs
     with
    | exception Sched.Stuck _ -> true
    | _ -> false)

(* {1 Exceptions from processes} *)

exception Boom

let test_proc_exception_propagates () =
  let w = Sched.World.create () in
  let procs =
    Array.init 2 (fun i ->
        fun _ ->
          Sched.step (Sched.Prim "x");
          if i = 0 then raise Boom;
          Sched.step (Sched.Prim "y"))
  in
  check Alcotest.bool "exception escapes run" true
    (match Sched.World.run w Sched.Strategy.round_robin procs with
    | exception Boom -> true
    | _ -> false);
  (* The world must remain usable for a fresh run. *)
  let outcome =
    Sched.World.run w Sched.Strategy.round_robin [| (fun _ -> ()) |]
  in
  check Alcotest.bool "world reusable" true (outcome = Sched.World.Completed)

(* {1 Trace log} *)

let test_trace_records_performed_labels () =
  let w = Sched.World.create ~trace_log:true () in
  let procs =
    [|
      (fun _ ->
        Sched.step (Sched.Prim "alpha");
        Sched.step (Sched.Prim "beta"));
    |]
  in
  ignore (Sched.World.run w Sched.Strategy.round_robin procs);
  let labels = List.map (fun (_, l) -> Sched.label_to_string l) (Sched.World.trace w) in
  check Alcotest.(list string) "start, then performed labels"
    [ "start"; "alpha"; "beta" ] labels

let test_trace_empty_without_flag () =
  let w = Sched.World.create () in
  ignore
    (Sched.World.run w Sched.Strategy.round_robin
       [| (fun _ -> Sched.step (Sched.Prim "x")) |]);
  check Alcotest.int "no trace" 0 (List.length (Sched.World.trace w))

let () =
  Alcotest.run "sched"
    [
      ( "basics",
        [
          Alcotest.test_case "single proc" `Quick test_single_proc_completes;
          Alcotest.test_case "proc ids" `Quick test_proc_receives_own_id;
          Alcotest.test_case "current_proc" `Quick test_current_proc_inside;
          Alcotest.test_case "outside scheduler" `Quick
            test_step_outside_scheduler_is_noop;
          Alcotest.test_case "steps counted" `Quick test_steps_counted;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed same run" `Quick
            test_random_schedule_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_random_seeds_differ;
          Alcotest.test_case "round robin fair" `Quick test_round_robin_is_fair;
          Alcotest.test_case "lost updates exist" `Quick
            test_interleaving_can_lose_updates;
          Alcotest.test_case "sequential keeps all" `Quick
            test_sequential_script_loses_nothing;
        ] );
      ( "scripts",
        [
          Alcotest.test_case "run_until pauses before" `Quick
            test_run_until_pauses_before_label;
          Alcotest.test_case "run_steps exact" `Quick test_run_steps_exact;
          Alcotest.test_case "return point" `Quick test_return_point_breakpoint;
          Alcotest.test_case "skips finished" `Quick
            test_script_skips_finished_procs;
        ] );
      ( "crash",
        [
          Alcotest.test_case "kills and hooks" `Quick
            test_crash_kills_and_fires_hooks;
          Alcotest.test_case "hooks persist" `Quick
            test_crash_hooks_persist_across_runs;
          Alcotest.test_case "random with crash" `Quick test_random_with_crash;
          Alcotest.test_case "crash at step 0" `Quick
            test_crash_before_completion_beats_completion;
        ] );
      ( "pct",
        [
          Alcotest.test_case "deterministic" `Quick test_pct_deterministic;
          Alcotest.test_case "completes" `Quick test_pct_completes;
          Alcotest.test_case "finds ordering bug" `Quick
            test_pct_finds_ordering_bug;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "stuck raises" `Quick test_stuck_raises;
          Alcotest.test_case "proc exception" `Quick
            test_proc_exception_propagates;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records labels" `Quick
            test_trace_records_performed_labels;
          Alcotest.test_case "off by default" `Quick
            test_trace_empty_without_flag;
        ] );
    ]
