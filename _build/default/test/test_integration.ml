(** End-to-end crash-fuzz campaigns: randomized concurrent workloads with
    randomized crash points and crash policies, audited by the generic
    driver (durability of completed ops, precedence of the recovered order)
    and, for small histories, by the exhaustive durable-linearizability
    checker. Each campaign is deterministic from its seeds. *)

open Test_support

let check = Alcotest.check

module Fuzz_counter = Fuzz.Make (Onll_specs.Counter)
module Fuzz_queue = Fuzz.Make (Onll_specs.Queue_spec)
module Fuzz_kv = Fuzz.Make (Onll_specs.Kv)
module Fuzz_stack = Fuzz.Make (Onll_specs.Stack_spec)
module Fuzz_set = Fuzz.Make (Onll_specs.Set_spec)
module Fuzz_ledger = Fuzz.Make (Onll_specs.Ledger)
module Fuzz_register = Fuzz.Make (Onll_specs.Register)
module Fuzz_pqueue = Fuzz.Make (Onll_specs.Pqueue)
module Fuzz_deque = Fuzz.Make (Onll_specs.Deque)

let assert_clean name (r : Fuzz.result) =
  List.iter (fun f -> Alcotest.fail (name ^ ": " ^ f)) r.Fuzz.failures;
  if not r.Fuzz.verdict_ok then
    Alcotest.fail
      (name ^ ": checker verdict: " ^ Option.value ~default:"?" r.Fuzz.verdict)

let policies seed =
  if seed mod 3 = 0 then Onll_nvm.Crash_policy.Persist_all
  else if seed mod 3 = 1 then Onll_nvm.Crash_policy.Drop_all
  else Onll_nvm.Crash_policy.Random seed

(* {1 Crash-free campaigns: plain linearizability} *)

let run_crash_free run_fn gen_update gen_read name () =
  for seed = 1 to 30 do
    let plan =
      { Fuzz.default_plan with seed; n_procs = 3; ops_per_proc = 3 }
    in
    let r = run_fn ~plan ~gen_update ~gen_read () in
    check Alcotest.bool "did not crash" false r.Fuzz.crashed;
    assert_clean (Printf.sprintf "%s seed %d" name seed) r
  done

let test_crash_free_counter =
  run_crash_free Fuzz_counter.run Gen.Counter.update Gen.Counter.read "counter"

let test_crash_free_queue =
  run_crash_free Fuzz_queue.run Gen.Queue.update Gen.Queue.read "queue"

let test_crash_free_kv = run_crash_free Fuzz_kv.run Gen.Kv.update Gen.Kv.read "kv"

let test_crash_free_register =
  run_crash_free Fuzz_register.run Gen.Register.update Gen.Register.read
    "register"

(* {1 Crash campaigns} *)

let run_crashing run_fn gen_update gen_read name () =
  let crashes = ref 0 in
  for seed = 1 to 40 do
    let plan =
      {
        Fuzz.default_plan with
        seed;
        n_procs = 3;
        ops_per_proc = 3;
        crash_at = Some (10 + (seed * 7 mod 120));
        policy = policies seed;
      }
    in
    let r = run_fn ~plan ~gen_update ~gen_read () in
    if r.Fuzz.crashed then incr crashes;
    assert_clean (Printf.sprintf "%s seed %d" name seed) r
  done;
  check Alcotest.bool "campaign actually crashed runs" true (!crashes > 20)

let test_crashing_counter =
  run_crashing Fuzz_counter.run Gen.Counter.update Gen.Counter.read "counter"

let test_crashing_queue =
  run_crashing Fuzz_queue.run Gen.Queue.update Gen.Queue.read "queue"

let test_crashing_kv = run_crashing Fuzz_kv.run Gen.Kv.update Gen.Kv.read "kv"

let test_crashing_stack =
  run_crashing Fuzz_stack.run Gen.Stack.update Gen.Stack.read "stack"

let test_crashing_set =
  run_crashing Fuzz_set.run Gen.Set_g.update Gen.Set_g.read "set"

let test_crashing_ledger =
  run_crashing Fuzz_ledger.run Gen.Ledger.update Gen.Ledger.read "ledger"

let test_crashing_register =
  run_crashing Fuzz_register.run Gen.Register.update Gen.Register.read
    "register"

let test_crashing_pqueue =
  run_crashing Fuzz_pqueue.run Gen.Pqueue.update Gen.Pqueue.read "pqueue"

let test_crashing_deque =
  run_crashing Fuzz_deque.run Gen.Deque.update Gen.Deque.read "deque"

(* {1 Local views under fuzz} *)

let test_crashing_counter_with_views () =
  for seed = 1 to 25 do
    let plan =
      {
        Fuzz.default_plan with
        seed;
        n_procs = 3;
        ops_per_proc = 3;
        crash_at = Some (15 + (seed * 11 mod 100));
        policy = policies seed;
        local_views = true;
      }
    in
    let r =
      Fuzz_counter.run ~plan ~gen_update:Gen.Counter.update
        ~gen_read:Gen.Counter.read ()
    in
    assert_clean (Printf.sprintf "views seed %d" seed) r
  done

(* {1 PCT-scheduled campaigns} *)

let test_crashing_counter_pct () =
  for seed = 1 to 25 do
    let plan =
      {
        Fuzz.default_plan with
        seed;
        use_pct = true;
        crash_at = Some (12 + (seed * 13 mod 110));
        policy = policies seed;
      }
    in
    let r =
      Fuzz_counter.run ~plan ~gen_update:Gen.Counter.update
        ~gen_read:Gen.Counter.read ()
    in
    assert_clean (Printf.sprintf "pct seed %d" seed) r
  done

(* {1 Early crashes and heavier read mixes} *)

let test_crash_at_first_steps () =
  for crash_at = 0 to 15 do
    let plan =
      {
        Fuzz.default_plan with
        seed = 100 + crash_at;
        n_procs = 3;
        ops_per_proc = 2;
        crash_at = Some crash_at;
        policy = Onll_nvm.Crash_policy.Drop_all;
      }
    in
    let r =
      Fuzz_counter.run ~plan ~gen_update:Gen.Counter.update
        ~gen_read:Gen.Counter.read ()
    in
    assert_clean (Printf.sprintf "early crash %d" crash_at) r
  done

let test_read_heavy_mix () =
  for seed = 1 to 20 do
    let plan =
      {
        Fuzz.default_plan with
        seed;
        n_procs = 3;
        ops_per_proc = 4;
        read_ratio = 0.7;
        crash_at = Some (20 + seed);
        policy = policies seed;
      }
    in
    let r =
      Fuzz_kv.run ~plan ~gen_update:Gen.Kv.update ~gen_read:Gen.Kv.read ()
    in
    assert_clean (Printf.sprintf "read-heavy %d" seed) r
  done

(* {1 Checker bites: a broken implementation is caught} *)

let test_checker_catches_a_bug () =
  (* Simulate a "recovery" that loses a completed op: volatile object whose
     pre-crash history is fed to the checker with a post-crash read of the
     reinitialised state. The checker must reject it. *)
  let module H = Onll_histcheck.Histcheck.Make (Onll_specs.Counter) in
  let open Onll_specs.Counter in
  let h =
    [
      H.Invoke { uid = 0; proc = 0; kind = H.Update Increment };
      H.Return { uid = 0; value = 1 };
      H.Crash;
      (* volatile "recovery": state is back to 0 *)
      H.Invoke { uid = 1; proc = 0; kind = H.Read Get };
      H.Return { uid = 1; value = 0 };
    ]
  in
  match H.check h with
  | H.Violation _ -> ()
  | H.Durably_linearizable _ | H.Budget_exhausted ->
      Alcotest.fail "checker accepted a durability violation"

let () =
  Alcotest.run "integration"
    [
      ( "crash-free",
        [
          Alcotest.test_case "counter" `Quick test_crash_free_counter;
          Alcotest.test_case "queue" `Quick test_crash_free_queue;
          Alcotest.test_case "kv" `Quick test_crash_free_kv;
          Alcotest.test_case "register" `Quick test_crash_free_register;
        ] );
      ( "crashing",
        [
          Alcotest.test_case "counter" `Quick test_crashing_counter;
          Alcotest.test_case "queue" `Quick test_crashing_queue;
          Alcotest.test_case "kv" `Quick test_crashing_kv;
          Alcotest.test_case "stack" `Quick test_crashing_stack;
          Alcotest.test_case "set" `Quick test_crashing_set;
          Alcotest.test_case "ledger" `Quick test_crashing_ledger;
          Alcotest.test_case "register" `Quick test_crashing_register;
          Alcotest.test_case "pqueue" `Quick test_crashing_pqueue;
          Alcotest.test_case "deque" `Quick test_crashing_deque;
        ] );
      ( "variants",
        [
          Alcotest.test_case "local views" `Quick
            test_crashing_counter_with_views;
          Alcotest.test_case "pct schedules" `Quick test_crashing_counter_pct;
          Alcotest.test_case "early crashes" `Quick test_crash_at_first_steps;
          Alcotest.test_case "read-heavy" `Quick test_read_heavy_mix;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "catches violations" `Quick
            test_checker_catches_a_bug;
        ] );
    ]
