test/test_explore.mli:
