test/test_wf.mli:
