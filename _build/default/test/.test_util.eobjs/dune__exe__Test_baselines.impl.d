test/test_baselines.ml: Alcotest Array List Onll_baselines Onll_machine Onll_nvm Onll_sched Onll_specs Sched Sim
