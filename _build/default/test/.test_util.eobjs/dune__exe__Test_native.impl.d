test/test_native.ml: Alcotest Domain Fun List Native Onll_core Onll_machine Onll_specs Printf Unix
