test/test_sched.ml: Alcotest Array Fun List Onll_sched Sched
