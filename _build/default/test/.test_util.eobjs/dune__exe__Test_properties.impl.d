test/test_properties.ml: Alcotest Array List Onll_baselines Onll_core Onll_histcheck Onll_machine Onll_nvm Onll_sched Onll_specs Onll_util QCheck QCheck_alcotest Sim Splitmix Test_support
