test/test_explore.ml: Alcotest Array Onll_baselines Onll_core Onll_explore Onll_histcheck Onll_machine Onll_sched Onll_specs Printf Sim
