test/test_histcheck.ml: Alcotest Array List Onll_histcheck Onll_specs Onll_util QCheck QCheck_alcotest
