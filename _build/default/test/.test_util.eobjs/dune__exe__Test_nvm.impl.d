test/test_nvm.ml: Alcotest Bytes Char Crash_policy Filename Gen List Memory Onll_nvm Option QCheck QCheck_alcotest String Sys
