test/test_lowerbound.ml: Alcotest Array Format List Onll_baselines Onll_core Onll_lowerbound Onll_machine Onll_specs Printf Sim String
