test/test_integration.ml: Alcotest Fuzz Gen List Onll_histcheck Onll_nvm Onll_specs Option Printf Test_support
