test/test_oracle.ml: Alcotest Array List Onll_baselines Onll_core Onll_histcheck Onll_machine Onll_scenarios Onll_sched Onll_specs Printf Sched Sim String
