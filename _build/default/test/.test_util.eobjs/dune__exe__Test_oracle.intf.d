test/test_oracle.mli:
