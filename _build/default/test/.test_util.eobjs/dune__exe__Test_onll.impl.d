test/test_onll.ml: Alcotest Array Bytes Codec Crc32 Fun Int64 List Onll_core Onll_histcheck Onll_machine Onll_nvm Onll_plog Onll_scenarios Onll_sched Onll_specs Onll_util Sched Sim String
