test/test_lowerbound.mli:
