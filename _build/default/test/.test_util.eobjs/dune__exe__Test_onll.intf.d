test/test_onll.mli:
