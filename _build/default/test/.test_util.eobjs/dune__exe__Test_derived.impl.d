test/test_derived.ml: Alcotest List Onll_derived Onll_machine Onll_nvm Onll_sched Sim
