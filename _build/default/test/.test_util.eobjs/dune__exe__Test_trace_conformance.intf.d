test/test_trace_conformance.mli:
