test/test_trace_conformance.ml: Alcotest Array Hashtbl List Machine_sig Onll_core Onll_machine Onll_sched Onll_util Printf QCheck QCheck_alcotest Sched Sim
