test/test_specs.ml: Alcotest Codec Gen Hashtbl List Onll_core Onll_specs Onll_util Printf QCheck QCheck_alcotest Queue Splitmix Test_support
