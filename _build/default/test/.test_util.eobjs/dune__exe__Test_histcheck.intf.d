test/test_histcheck.mli:
