test/test_plog.ml: Alcotest Char List Onll_machine Onll_nvm Onll_plog Onll_sched Printf QCheck QCheck_alcotest Sched Sim String
