test/test_util.ml: Alcotest Array Bytes Char Codec Crc32 Float Fun Gen List Onll_util Printf QCheck QCheck_alcotest Splitmix String Table
