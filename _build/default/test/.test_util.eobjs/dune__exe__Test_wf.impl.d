test/test_wf.ml: Alcotest Array Fun List Onll_core Onll_lowerbound Onll_machine Onll_nvm Onll_sched Onll_specs Printf Sched Sim Test_support
