test/test_trace.ml: Alcotest Array List Onll_core Onll_machine Onll_sched Sched Sim
