test/test_native.mli:
