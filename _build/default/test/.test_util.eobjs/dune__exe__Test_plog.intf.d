test/test_plog.mli:
