test/test_machine.ml: Alcotest Array List Native Onll_machine Onll_nvm Onll_sched Printf Sched Sim
