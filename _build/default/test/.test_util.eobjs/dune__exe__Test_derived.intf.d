test/test_derived.mli:
