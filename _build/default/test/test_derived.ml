(** The ergonomic wrappers in [Onll_derived]: typed operations over the
    same ONLL objects, checked for semantics, fence counts and crash
    recovery. *)

open Onll_machine
module D = Onll_derived.Derived

let check = Alcotest.check

let test_counter () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = D.Counter (M) in
  let c = C.create () in
  check Alcotest.int "incr" 1 (C.incr c);
  check Alcotest.int "add" 6 (C.add c 5);
  check Alcotest.int "get" 6 (C.get c);
  check Alcotest.int "fences = updates" 2 (M.persistent_fences ());
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  C.recover c;
  check Alcotest.int "recovered" 6 (C.get c)

let test_counter_wait_free () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = D.Counter (M) in
  let c = C.create ~wait_free:true () in
  check Alcotest.int "incr" 1 (C.incr c);
  check Alcotest.int "checkpoint" 1 (C.checkpoint c);
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  C.recover c;
  check Alcotest.int "recovered from checkpoint" 1 (C.get c)

let test_kv () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module K = D.Kv (M) in
  let s = K.create () in
  check Alcotest.(option string) "fresh put" None (K.put s "a" "1");
  check Alcotest.(option string) "overwrite" (Some "1") (K.put s "a" "2");
  check Alcotest.(option string) "get" (Some "2") (K.get s "a");
  check Alcotest.int "size" 1 (K.size s);
  check Alcotest.(option string) "delete" (Some "2") (K.delete s "a");
  check Alcotest.(option string) "gone" None (K.get s "a");
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  K.recover s;
  check Alcotest.int "recovered size" 0 (K.size s)

let test_queue () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module Q = D.Queue (M) in
  let q = Q.create () in
  Q.enqueue q 1;
  Q.enqueue q 2;
  check Alcotest.(option int) "peek" (Some 1) (Q.peek q);
  check Alcotest.int "length" 2 (Q.length q);
  check Alcotest.(option int) "deq" (Some 1) (Q.dequeue q);
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  Q.recover q;
  check Alcotest.(option int) "recovered head" (Some 2) (Q.dequeue q);
  check Alcotest.(option int) "empty" None (Q.dequeue q)

let test_stack () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module S = D.Stack (M) in
  let s = S.create () in
  S.push s 1;
  S.push s 2;
  check Alcotest.(option int) "top" (Some 2) (S.top s);
  check Alcotest.int "depth" 2 (S.depth s);
  check Alcotest.(option int) "pop" (Some 2) (S.pop s);
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  S.recover s;
  check Alcotest.(option int) "recovered" (Some 1) (S.pop s)

let test_set () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module S = D.Set (M) in
  let s = S.create () in
  check Alcotest.bool "insert fresh" true (S.insert s 5);
  check Alcotest.bool "insert dup" false (S.insert s 5);
  check Alcotest.bool "mem" true (S.mem s 5);
  check Alcotest.int "cardinal" 1 (S.cardinal s);
  check Alcotest.bool "remove" true (S.remove s 5);
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  S.recover s;
  check Alcotest.bool "recovered empty" false (S.mem s 5)

let test_pqueue () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = D.Pqueue (M) in
  let p = P.create () in
  P.insert p ~prio:5 50;
  P.insert p ~prio:1 10;
  check Alcotest.(option (pair int int)) "find min" (Some (1, 10))
    (P.find_min p);
  check Alcotest.int "size" 2 (P.size p);
  check Alcotest.(option (pair int int)) "extract" (Some (1, 10))
    (P.extract_min p);
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  P.recover p;
  check Alcotest.(option (pair int int)) "recovered" (Some (5, 50))
    (P.extract_min p)

let test_ledger () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module L = D.Ledger (M) in
  let l = L.create () in
  check Alcotest.bool "open" true (L.open_account l "a" = Ok ());
  check Alcotest.bool "reopen" true (L.open_account l "a" = Error "exists");
  check Alcotest.bool "deposit" true (L.deposit l "a" 100 = Ok ());
  check Alcotest.bool "open b" true (L.open_account l "b" = Ok ());
  check Alcotest.bool "transfer" true
    (L.transfer l ~from_:"a" ~to_:"b" 40 = Ok ());
  check Alcotest.(option int) "balance a" (Some 60) (L.balance l "a");
  check Alcotest.(option int) "balance b" (Some 40) (L.balance l "b");
  check Alcotest.int "total" 100 (L.total l);
  check Alcotest.(list string) "accounts" [ "a"; "b" ] (L.accounts l);
  check Alcotest.bool "overdraft" true
    (L.withdraw l "a" 1000 = Error "insufficient funds");
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  L.recover l;
  check Alcotest.int "total conserved" 100 (L.total l)

let test_concurrent_wrapper_use () =
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let module Q = D.Queue (M) in
  let q = Q.create () in
  let taken = ref [] in
  let procs =
    [|
      (fun _ ->
        for k = 1 to 5 do
          Q.enqueue q k
        done);
      (fun _ ->
        for k = 11 to 15 do
          Q.enqueue q k
        done);
      (fun _ ->
        for _ = 1 to 6 do
          match Q.dequeue q with
          | Some x -> taken := x :: !taken
          | None -> ()
        done);
    |]
  in
  ignore
    (Sim.run sim (Onll_sched.Sched.Strategy.random ~seed:17) procs);
  let drained = ref [] in
  let drain _ =
    let continue_ = ref true in
    while !continue_ do
      match Q.dequeue q with
      | Some x -> drained := x :: !drained
      | None -> continue_ := false
    done
  in
  ignore (Sim.run sim Onll_sched.Sched.Strategy.round_robin [| drain |]);
  check Alcotest.int "conservation" 10
    (List.length !taken + List.length !drained)

let () =
  Alcotest.run "derived"
    [
      ( "wrappers",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "counter wait-free" `Quick test_counter_wait_free;
          Alcotest.test_case "kv" `Quick test_kv;
          Alcotest.test_case "queue" `Quick test_queue;
          Alcotest.test_case "stack" `Quick test_stack;
          Alcotest.test_case "set" `Quick test_set;
          Alcotest.test_case "pqueue" `Quick test_pqueue;
          Alcotest.test_case "ledger" `Quick test_ledger;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "wrapped queue" `Quick test_concurrent_wrapper_use;
        ] );
    ]
