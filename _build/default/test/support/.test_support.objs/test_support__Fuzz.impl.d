test/support/fuzz.ml: Array Format Hashtbl List Onll_core Onll_histcheck Onll_machine Onll_nvm Onll_sched Onll_util Sim Splitmix
