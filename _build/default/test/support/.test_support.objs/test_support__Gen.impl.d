test/support/gen.ml: Array Onll_specs Onll_util Printf Splitmix
