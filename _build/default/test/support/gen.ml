(** Seeded operation generators for each specification, for fuzz drivers and
    benchmarks. All draw from a {!Onll_util.Splitmix.t}, so workloads are
    reproducible. *)

open Onll_util

module Counter = struct
  open Onll_specs.Counter

  let update rng =
    if Splitmix.bool rng then Increment else Add (1 + Splitmix.int rng 9)

  let read _rng = Get
end

module Register = struct
  open Onll_specs.Register

  let update rng = Write (Splitmix.int rng 1000)
  let read _rng = Read
end

module Queue = struct
  open Onll_specs.Queue_spec

  let update rng =
    if Splitmix.int rng 3 = 0 then Dequeue else Enqueue (Splitmix.int rng 100)

  let read rng = if Splitmix.bool rng then Peek else Length
end

module Stack = struct
  open Onll_specs.Stack_spec

  let update rng =
    if Splitmix.int rng 3 = 0 then Pop else Push (Splitmix.int rng 100)

  let read rng = if Splitmix.bool rng then Top else Depth
end

module Kv = struct
  open Onll_specs.Kv

  let keys = [| "a"; "b"; "c"; "d" |]
  let key rng = keys.(Splitmix.int rng (Array.length keys))

  let update rng =
    if Splitmix.int rng 4 = 0 then Delete (key rng)
    else Put (key rng, Printf.sprintf "v%d" (Splitmix.int rng 50))

  let read rng = if Splitmix.int rng 4 = 0 then Size else Get (key rng)
end

module Set_g = struct
  open Onll_specs.Set_spec

  let update rng =
    let x = Splitmix.int rng 20 in
    if Splitmix.bool rng then Insert x else Remove x

  let read rng =
    if Splitmix.int rng 4 = 0 then Cardinal else Contains (Splitmix.int rng 20)
end

module Ledger = struct
  open Onll_specs.Ledger

  let accounts = [| "alice"; "bob"; "carol" |]
  let account rng = accounts.(Splitmix.int rng (Array.length accounts))

  let update rng =
    match Splitmix.int rng 5 with
    | 0 -> Open (account rng)
    | 1 | 2 -> Deposit (account rng, 1 + Splitmix.int rng 100)
    | 3 -> Withdraw (account rng, 1 + Splitmix.int rng 100)
    | _ -> Transfer (account rng, account rng, 1 + Splitmix.int rng 50)

  let read rng =
    match Splitmix.int rng 3 with
    | 0 -> Total
    | 1 -> Accounts
    | _ -> Balance (account rng)
end

module Pqueue = struct
  open Onll_specs.Pqueue

  let update rng =
    if Splitmix.int rng 3 = 0 then Extract_min
    else Insert (Splitmix.int rng 10, Splitmix.int rng 100)

  let read rng = if Splitmix.bool rng then Find_min else Size
end

module Deque = struct
  open Onll_specs.Deque

  let update rng =
    match Splitmix.int rng 4 with
    | 0 -> Push_front (Splitmix.int rng 100)
    | 1 -> Push_back (Splitmix.int rng 100)
    | 2 -> Pop_front
    | _ -> Pop_back

  let read rng =
    match Splitmix.int rng 3 with 0 -> Front | 1 -> Back | _ -> Length
end
