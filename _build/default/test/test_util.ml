open Onll_util

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* {1 CRC32} *)

let test_crc_known_vectors () =
  (* Standard IEEE CRC-32 check value. *)
  check Alcotest.int32 "123456789" 0xCBF43926l (Crc32.string "123456789");
  check Alcotest.int32 "empty" 0l (Crc32.string "");
  check Alcotest.int32 "single byte" 0xD202EF8Dl (Crc32.string "\x00");
  check Alcotest.int32 "abc" 0x352441C2l (Crc32.string "abc")

let test_crc_incremental () =
  let whole = Crc32.string "hello world" in
  let part = Crc32.string ~init:(Crc32.string "hello ") "world" in
  check Alcotest.int32 "incremental = whole" whole part

let test_crc_bytes_range () =
  let b = Bytes.of_string "xxhelloyy" in
  check Alcotest.int32 "range" (Crc32.string "hello")
    (Crc32.bytes b ~pos:2 ~len:5);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Crc32.bytes: range out of bounds") (fun () ->
      ignore (Crc32.bytes b ~pos:5 ~len:10))

let test_crc_int64 () =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 0x0123456789ABCDEFL;
  check Alcotest.int32 "int64 = 8 LE bytes"
    (Crc32.bytes b ~pos:0 ~len:8)
    (Crc32.int64 0x0123456789ABCDEFL)

let prop_crc_detects_single_bit_flip =
  QCheck.Test.make ~name:"crc detects any single bit flip" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 64)) (pair small_nat small_nat))
    (fun (s, (byte, bit)) ->
      QCheck.assume (String.length s > 0);
      let byte = byte mod String.length s and bit = bit mod 8 in
      let b = Bytes.of_string s in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
      Crc32.string s <> Crc32.string (Bytes.to_string b))

(* {1 SplitMix} *)

let test_splitmix_deterministic () =
  let a = Splitmix.create 42 and b = Splitmix.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Splitmix.next_int64 a)
      (Splitmix.next_int64 b)
  done

let test_splitmix_seeds_differ () =
  let a = Splitmix.create 1 and b = Splitmix.create 2 in
  let xs = List.init 10 (fun _ -> Splitmix.next_int64 a) in
  let ys = List.init 10 (fun _ -> Splitmix.next_int64 b) in
  check Alcotest.bool "different streams" false (xs = ys)

let test_splitmix_split_independent () =
  let a = Splitmix.create 7 in
  let child = Splitmix.split a in
  let xs = List.init 10 (fun _ -> Splitmix.next_int64 a) in
  let ys = List.init 10 (fun _ -> Splitmix.next_int64 child) in
  check Alcotest.bool "split stream differs" false (xs = ys)

let test_splitmix_copy () =
  let a = Splitmix.create 9 in
  ignore (Splitmix.next_int64 a);
  let b = Splitmix.copy a in
  check Alcotest.int64 "copy continues identically" (Splitmix.next_int64 a)
    (Splitmix.next_int64 b)

let prop_splitmix_int_in_range =
  QCheck.Test.make ~name:"int stays in range" ~count:500
    QCheck.(pair small_nat (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Splitmix.create seed in
      let x = Splitmix.int rng bound in
      x >= 0 && x < bound)

let test_splitmix_int_bad_bound () =
  let rng = Splitmix.create 1 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Splitmix.int: bound must be positive") (fun () ->
      ignore (Splitmix.int rng 0))

let test_splitmix_shuffle_permutes () =
  let rng = Splitmix.create 5 in
  let a = Array.init 20 Fun.id in
  Splitmix.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check
    Alcotest.(array int)
    "same elements" (Array.init 20 Fun.id) sorted

let test_splitmix_pick () =
  let rng = Splitmix.create 3 in
  for _ = 1 to 50 do
    let x = Splitmix.pick rng [ 1; 2; 3 ] in
    check Alcotest.bool "picked member" true (List.mem x [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty pick"
    (Invalid_argument "Splitmix.pick: empty list") (fun () ->
      ignore (Splitmix.pick rng []))

(* {1 Codec} *)

let roundtrip codec v = Codec.decode codec (Codec.encode codec v) = v

let test_codec_primitives () =
  check Alcotest.bool "int" true (roundtrip Codec.int 42);
  check Alcotest.bool "int negative" true (roundtrip Codec.int (-7));
  check Alcotest.bool "int min" true (roundtrip Codec.int min_int);
  check Alcotest.bool "int max" true (roundtrip Codec.int max_int);
  check Alcotest.bool "bool" true (roundtrip Codec.bool true);
  check Alcotest.bool "string" true (roundtrip Codec.string "hello \x00 bytes");
  check Alcotest.bool "empty string" true (roundtrip Codec.string "");
  check Alcotest.bool "float" true (roundtrip Codec.float 3.14159);
  check Alcotest.bool "float nan-safe" true
    (Float.is_nan (Codec.decode Codec.float (Codec.encode Codec.float Float.nan)));
  check Alcotest.bool "int64" true (roundtrip Codec.int64 (-1L));
  check Alcotest.bool "int32" true (roundtrip Codec.int32 0xDEADBEEFl);
  check Alcotest.bool "char" true (roundtrip Codec.char '\255');
  check Alcotest.bool "unit" true (roundtrip Codec.unit ())

let test_codec_combinators () =
  let open Codec in
  check Alcotest.bool "pair" true (roundtrip (pair int string) (1, "x"));
  check Alcotest.bool "triple" true
    (roundtrip (triple int bool string) (5, false, "yo"));
  check Alcotest.bool "list" true (roundtrip (list int) [ 1; 2; 3 ]);
  check Alcotest.bool "empty list" true (roundtrip (list int) []);
  check Alcotest.bool "nested" true
    (roundtrip (list (pair string (option int))) [ ("a", Some 1); ("b", None) ]);
  check Alcotest.bool "array" true (roundtrip (array int) [| 9; 8 |])

let test_codec_errors () =
  let open Codec in
  let is_decode_error f =
    match f () with
    | exception Decode_error _ -> true
    | _ -> false
  in
  check Alcotest.bool "truncated int" true
    (is_decode_error (fun () -> decode int "abc"));
  check Alcotest.bool "trailing bytes" true
    (is_decode_error (fun () -> decode bool "\001\000"));
  check Alcotest.bool "bad bool byte" true
    (is_decode_error (fun () -> decode bool "\002"));
  check Alcotest.bool "bad option tag" true
    (is_decode_error (fun () -> decode (option int) "\007"));
  check Alcotest.bool "string length beyond input" true
    (is_decode_error (fun () ->
         decode string "\255\255\255\255\255\255\255\000abc"))

let test_codec_tagged () =
  let open Codec in
  let c =
    tagged
      (function `A n -> (0, encode int n) | `B s -> (1, encode string s))
      (fun tag body ->
        match tag with
        | 0 -> `A (decode int body)
        | 1 -> `B (decode string body)
        | n -> raise (Decode_error (Printf.sprintf "bad tag %d" n)))
  in
  check Alcotest.bool "tag A" true (roundtrip c (`A 4));
  check Alcotest.bool "tag B" true (roundtrip c (`B "hey"))

let prop_codec_int_roundtrip =
  QCheck.Test.make ~name:"int codec roundtrips" ~count:500 QCheck.int
    (fun n -> roundtrip Codec.int n)

let prop_codec_string_roundtrip =
  QCheck.Test.make ~name:"string codec roundtrips" ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s -> roundtrip Codec.string s)

let prop_codec_list_roundtrip =
  QCheck.Test.make ~name:"int list codec roundtrips" ~count:200
    QCheck.(list int)
    (fun l -> roundtrip Codec.(list int) l)

let prop_codec_canonical =
  QCheck.Test.make ~name:"equal values encode equally" ~count:200
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (a, b) ->
      let open Codec in
      (a = b) = (encode (list int) a = encode (list int) b))

(* {1 Table} *)

let test_table_render () =
  let s =
    Table.render ~header:[ "name"; "x" ] [ [ "foo"; "1" ]; [ "b"; "23" ] ]
  in
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "5 lines (incl. trailing empty)" 5 (List.length lines);
  check Alcotest.string "header" "name   x" (List.nth lines 0);
  check Alcotest.string "separator" "----  --" (List.nth lines 1);
  check Alcotest.string "row 1" "foo    1" (List.nth lines 2);
  check Alcotest.string "row 2" "b     23" (List.nth lines 3)

let test_table_alignment () =
  let s =
    Table.render
      ~align:[ Table.Right; Table.Left ]
      ~header:[ "num"; "label" ]
      [ [ "7"; "seven" ] ]
  in
  let lines = String.split_on_char '\n' s in
  check Alcotest.string "right-aligned first column" "  7  seven"
    (List.nth lines 2)

let test_table_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "only" ] ] in
  check Alcotest.bool "no exception, includes row" true
    (String.length s > 0)

let test_series_layout () =
  (* capture stdout via a temp redirect-free path: render via the same
     pipeline [series] uses — union of x values, '-' for holes *)
  let s =
    Table.render ~header:[ "x"; "a"; "b" ]
      [ [ "1"; "10"; "-" ]; [ "2"; "20"; "200" ] ]
  in
  check Alcotest.bool "holes render as dashes" true
    (String.length s > 0);
  (* the real series printer goes to stdout; here we check its input
     contract instead: fmt_float of the x values used by series *)
  check Alcotest.string "x formatting" "2" (Table.fmt_float 2.0)

let test_fmt_float () =
  check Alcotest.string "integer" "3" (Table.fmt_float 3.0);
  check Alcotest.string "small" "0.1250" (Table.fmt_float 0.125);
  check Alcotest.string "mid" "2.50" (Table.fmt_float 2.5);
  check Alcotest.string "big" "123.4" (Table.fmt_float 123.42)

let () =
  Alcotest.run "util"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc_known_vectors;
          Alcotest.test_case "incremental" `Quick test_crc_incremental;
          Alcotest.test_case "bytes range" `Quick test_crc_bytes_range;
          Alcotest.test_case "int64" `Quick test_crc_int64;
          qcheck prop_crc_detects_single_bit_flip;
        ] );
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_splitmix_seeds_differ;
          Alcotest.test_case "split independent" `Quick
            test_splitmix_split_independent;
          Alcotest.test_case "copy" `Quick test_splitmix_copy;
          Alcotest.test_case "bad bound" `Quick test_splitmix_int_bad_bound;
          Alcotest.test_case "shuffle permutes" `Quick
            test_splitmix_shuffle_permutes;
          Alcotest.test_case "pick" `Quick test_splitmix_pick;
          qcheck prop_splitmix_int_in_range;
        ] );
      ( "codec",
        [
          Alcotest.test_case "primitives" `Quick test_codec_primitives;
          Alcotest.test_case "combinators" `Quick test_codec_combinators;
          Alcotest.test_case "errors" `Quick test_codec_errors;
          Alcotest.test_case "tagged" `Quick test_codec_tagged;
          qcheck prop_codec_int_roundtrip;
          qcheck prop_codec_string_roundtrip;
          qcheck prop_codec_list_roundtrip;
          qcheck prop_codec_canonical;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "series layout" `Quick test_series_layout;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
        ] );
    ]
