open Onll_machine
open Onll_sched
module Cs = Onll_specs.Counter

let check = Alcotest.check

(* {1 Volatile} *)

let test_volatile_semantics_and_zero_fences () =
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let module V = Onll_baselines.Volatile.Make (M) (Cs) in
  let obj = V.create () in
  let results = ref [] in
  let procs =
    Array.init 3 (fun _ ->
        fun _ ->
          for _ = 1 to 5 do
            let v = V.update obj Cs.Increment in
            results := v :: !results
          done)
  in
  ignore (Sim.run sim (Sched.Strategy.random ~seed:2) procs);
  check
    Alcotest.(list int)
    "linearizable increments"
    (List.init 15 (fun i -> i + 1))
    (List.sort compare !results);
  check Alcotest.int "zero fences" 0 (M.persistent_fences ());
  check Alcotest.int "value" 15 (V.read obj Cs.Get)

let test_volatile_loses_everything () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module V = Onll_baselines.Volatile.Make (M) (Cs) in
  let obj = V.create () in
  ignore (V.update obj (Cs.Add 42));
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Persist_all;
  V.recover obj;
  check Alcotest.int "nothing survives" 0 (V.read obj Cs.Get)

(* {1 Shadow paging} *)

let test_shadow_semantics () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module S = Onll_baselines.Shadow.Make (M) (Cs) in
  let obj = S.create () in
  check Alcotest.int "incr" 1 (S.update obj Cs.Increment);
  check Alcotest.int "add" 6 (S.update obj (Cs.Add 5));
  check Alcotest.int "read" 6 (S.read obj Cs.Get)

let test_shadow_two_fences_per_update () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module S = Onll_baselines.Shadow.Make (M) (Cs) in
  let obj = S.create () in
  for i = 1 to 5 do
    ignore (S.update obj Cs.Increment);
    check Alcotest.int "2 fences per update" (2 * i) (M.persistent_fences ())
  done;
  ignore (S.read obj Cs.Get);
  check Alcotest.int "reads free" 10 (M.persistent_fences ())

let test_shadow_durable_and_recovers () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module S = Onll_baselines.Shadow.Make (M) (Cs) in
  let obj = S.create () in
  for _ = 1 to 7 do
    ignore (S.update obj Cs.Increment)
  done;
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  S.recover obj;
  check Alcotest.int "full state recovered" 7 (S.read obj Cs.Get);
  check Alcotest.int "continues" 8 (S.update obj Cs.Increment)

let test_shadow_torn_commit_keeps_old_state () =
  (* Crash between the data fence and the header fence: the old version
     must win. Park before the SECOND pfence of an update. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module S = Onll_baselines.Shadow.Make (M) (Cs) in
  let obj = S.create () in
  ignore (S.update obj (Cs.Add 5));
  let script =
    Sched.Strategy.script
      [
        Sched.Strategy.run_until_pfence 0;
        Sched.Strategy.Run_steps (0, 1);  (* data fence executes *)
        Sched.Strategy.run_until_pfence 0;  (* park before commit fence *)
        Sched.Strategy.Crash_here;
      ]
  in
  ignore (Sim.run sim script [| (fun _ -> ignore (S.update obj Cs.Increment)) |]);
  S.recover obj;
  check Alcotest.int "old state preserved" 5 (S.read obj Cs.Get)

let test_shadow_concurrent_mutual_exclusion () =
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let module S = Onll_baselines.Shadow.Make (M) (Cs) in
  let obj = S.create () in
  let results = ref [] in
  let procs =
    Array.init 3 (fun _ ->
        fun _ ->
          for _ = 1 to 4 do
            let v = S.update obj Cs.Increment in
            results := v :: !results
          done)
  in
  ignore (Sim.run sim (Sched.Strategy.random ~seed:8) procs);
  check
    Alcotest.(list int)
    "no lost updates under the lock"
    (List.init 12 (fun i -> i + 1))
    (List.sort compare !results)

(* {1 Persist-on-read} *)

let test_por_semantics () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_baselines.Persist_on_read.Make (M) (Cs) in
  let obj = P.create () in
  check Alcotest.int "incr" 1 (P.update obj Cs.Increment);
  check Alcotest.int "read" 1 (P.read obj Cs.Get);
  check Alcotest.int "incr 2" 2 (P.update obj Cs.Increment)

let test_por_one_fence_per_update () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_baselines.Persist_on_read.Make (M) (Cs) in
  let obj = P.create () in
  for i = 1 to 10 do
    ignore (P.update obj Cs.Increment);
    check Alcotest.int "1 fence per update" i (M.persistent_fences ())
  done;
  (* sequential reads find everything persisted: no extra fences *)
  ignore (P.read obj Cs.Get);
  check Alcotest.int "sequential read free" 10 (M.persistent_fences ());
  check Alcotest.int "no read fences recorded" 0 (P.read_fences obj)

let test_por_reader_pays_when_update_in_flight () =
  (* Park an updater after it linearized (inserted its node) but before it
     persisted; a reader now observes the unpersisted operation and must
     fence before returning — the §3.1 trade-off made visible. *)
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_baselines.Persist_on_read.Make (M) (Cs) in
  let obj = P.create () in
  let read_v = ref (-1) in
  let procs =
    [|
      (fun _ -> ignore (P.update obj Cs.Increment));
      (fun _ -> read_v := P.read obj Cs.Get);
    |]
  in
  let script =
    Sched.Strategy.script
      [
        Sched.Strategy.run_until_pfence 0;  (* linearized, not persisted *)
        Sched.Strategy.Run_to_completion 1;  (* reader must persist it *)
        Sched.Strategy.Run_to_completion 0;
      ]
  in
  ignore (Sim.run sim script procs);
  check Alcotest.int "reader saw the linearized update" 1 !read_v;
  check Alcotest.int "reader fenced" 1 (P.read_fences obj);
  check Alcotest.int "reader's fence attributed to proc 1" 1
    (M.persistent_fences_by ~proc:1)

let test_por_read_observation_durable () =
  (* After the reader in the scenario above returns, a crash must preserve
     the observed update even though the updater never fenced. *)
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_baselines.Persist_on_read.Make (M) (Cs) in
  let obj = P.create () in
  let procs =
    [|
      (fun _ -> ignore (P.update obj Cs.Increment));
      (fun _ -> ignore (P.read obj Cs.Get));
    |]
  in
  let script =
    Sched.Strategy.script
      [
        Sched.Strategy.run_until_pfence 0;
        Sched.Strategy.Run_to_completion 1;
        Sched.Strategy.Crash_here;
      ]
  in
  ignore (Sim.run sim script procs);
  P.recover obj;
  check Alcotest.int "observed update durable" 1 (P.read obj Cs.Get)

let test_por_recovery () =
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_baselines.Persist_on_read.Make (M) (Cs) in
  let obj = P.create () in
  let procs =
    Array.init 3 (fun _ ->
        fun _ ->
          for _ = 1 to 4 do
            ignore (P.update obj Cs.Increment)
          done)
  in
  ignore
    (Sim.run sim
       (Sched.Strategy.random_with_crash ~seed:3 ~crash_at_step:80)
       procs);
  P.recover obj;
  let v = P.read obj Cs.Get in
  check Alcotest.bool "recovered prefix" true (v >= 0 && v <= 12);
  check Alcotest.int "continues" (v + 1) (P.update obj Cs.Increment)

(* {1 Wait-on-read (§3.1 branch two)} *)

let test_wor_semantics () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module W = Onll_baselines.Wait_on_read.Make (M) (Cs) in
  let obj = W.create () in
  check Alcotest.int "incr" 1 (W.update obj Cs.Increment);
  check Alcotest.int "read" 1 (W.read obj Cs.Get);
  check Alcotest.int "no waiting when sequential" 0 (W.reader_waits obj)

let test_wor_reader_waits_for_updater () =
  (* Park the updater after it linearized but before its fence; the reader
     observes the update, spins; resuming the updater releases it. *)
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module W = Onll_baselines.Wait_on_read.Make (M) (Cs) in
  let obj = W.create () in
  let read_v = ref (-1) in
  let procs =
    [|
      (fun _ -> ignore (W.update obj Cs.Increment));
      (fun _ -> read_v := W.read obj Cs.Get);
    |]
  in
  let script =
    Sched.Strategy.script
      [
        Sched.Strategy.run_until_pfence 0;  (* linearized, unpersisted *)
        Sched.Strategy.Run_steps (1, 40);  (* reader spins... *)
        Sched.Strategy.Run_to_completion 0;  (* updater persists *)
        Sched.Strategy.Run_to_completion 1;  (* reader released *)
      ]
  in
  let outcome = Sim.run sim script procs in
  check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
  check Alcotest.int "reader saw the update" 1 !read_v;
  check Alcotest.int "reader had to wait" 1 (W.reader_waits obj);
  check Alcotest.int "reader issued no fence" 0
    (M.persistent_fences_by ~proc:1)

let test_wor_livelocks_behind_stalled_updater () =
  (* The §3.1 point: if the updater never resumes, the reader spins
     forever — waiting breaks lock-freedom. *)
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module W = Onll_baselines.Wait_on_read.Make (M) (Cs) in
  let obj = W.create () in
  let procs =
    [|
      (fun _ -> ignore (W.update obj Cs.Increment));
      (fun _ -> ignore (W.read obj Cs.Get));
    |]
  in
  let script =
    Sched.Strategy.script
      [
        Sched.Strategy.run_until_pfence 0;
        Sched.Strategy.Run_to_completion 1;  (* never returns *)
      ]
  in
  check Alcotest.bool "livelocks" true
    (match Sim.run ~max_steps:20_000 sim script procs with
    | exception Sched.Stuck _ -> true
    | _ -> false)

let test_wor_durable_observations () =
  (* When it does respond, a wait-on-read observation is durable: crash
     after the reader returned, the update must survive. *)
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module W = Onll_baselines.Wait_on_read.Make (M) (Cs) in
  let obj = W.create () in
  let procs =
    [|
      (fun _ -> ignore (W.update obj Cs.Increment));
      (fun _ -> ignore (W.read obj Cs.Get));
    |]
  in
  let script =
    Sched.Strategy.script
      [
        Sched.Strategy.Run_to_completion 0;
        Sched.Strategy.Run_to_completion 1;
        Sched.Strategy.Crash_here;
      ]
  in
  ignore (Sim.run sim script procs);
  W.recover obj;
  check Alcotest.int "observed update survived" 1 (W.read obj Cs.Get)

(* {1 Flat combining} *)

let test_fc_semantics_sequential () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module F = Onll_baselines.Flat_combining.Make (M) (Cs) in
  let obj = F.create () in
  let outcome =
    Sim.run sim Sched.Strategy.round_robin
      [|
        (fun _ ->
          check Alcotest.int "incr" 1 (F.update obj Cs.Increment);
          check Alcotest.int "add" 4 (F.update obj (Cs.Add 3));
          check Alcotest.int "read" 4 (F.read obj Cs.Get));
      |]
  in
  check Alcotest.bool "completed" true (outcome = Sched.World.Completed)

let test_fc_batches_share_one_fence () =
  (* Three processes announce concurrently; one combiner serves all three
     with a single persistent fence. Schedule: park all three right after
     announcing (before trying the lock), then run one to completion. *)
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let module F = Onll_baselines.Flat_combining.Make (M) (Cs) in
  let obj = F.create () in
  let results = ref [] in
  let procs =
    Array.init 3 (fun _ ->
        fun _ ->
          let v = F.update obj Cs.Increment in
          results := v :: !results)
  in
  let announced p = Sched.Strategy.Run_steps (p, 2) in
  (* step 1 starts the proc (parks at the announce store); step 2 performs
     the announce and parks at the next primitive (the lock CAS). *)
  let script =
    Sched.Strategy.script
      [
        announced 0;
        announced 1;
        announced 2;
        Sched.Strategy.Run_to_completion 0;
        Sched.Strategy.Round_robin_rest;
      ]
  in
  let outcome = Sim.run sim script procs in
  check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
  check
    Alcotest.(list int)
    "all three served"
    [ 1; 2; 3 ]
    (List.sort compare !results);
  check Alcotest.int "one persistent fence for the batch" 1
    (M.persistent_fences ());
  let batches, ops = F.batch_stats obj in
  check Alcotest.int "one batch" 1 batches;
  check Alcotest.int "three ops in it" 3 ops

let test_fc_random_schedules_correct () =
  for seed = 1 to 10 do
    let sim = Sim.create ~max_processes:3 () in
    let module M = (val Sim.machine sim) in
    let module F = Onll_baselines.Flat_combining.Make (M) (Cs) in
    let obj = F.create () in
    let results = ref [] in
    let procs =
      Array.init 3 (fun _ ->
          fun _ ->
            for _ = 1 to 4 do
              let v = F.update obj Cs.Increment in
              results := v :: !results
            done)
    in
    let outcome = Sim.run sim (Sched.Strategy.random ~seed) procs in
    check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
    check
      Alcotest.(list int)
      "linearizable"
      (List.init 12 (fun i -> i + 1))
      (List.sort compare !results);
    check Alcotest.bool "fences <= updates" true (M.persistent_fences () <= 12)
  done

let test_fc_recovery () =
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let module F = Onll_baselines.Flat_combining.Make (M) (Cs) in
  let obj = F.create () in
  let procs =
    Array.init 3 (fun _ ->
        fun _ ->
          for _ = 1 to 4 do
            ignore (F.update obj Cs.Increment)
          done)
  in
  ignore
    (Sim.run sim
       (Sched.Strategy.random_with_crash ~seed:6 ~crash_at_step:100)
       procs);
  F.recover obj;
  let v = F.read obj Cs.Get in
  check Alcotest.bool "recovered batches" true (v >= 0 && v <= 12);
  (* post-recovery operation *)
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [| (fun _ -> ignore (F.update obj Cs.Increment)) |]);
  check Alcotest.int "continues" (v + 1) (F.read obj Cs.Get)

let test_fc_blocks_when_combiner_stalls () =
  (* The §8 point: park the combiner inside its critical section; the other
     process can never finish. *)
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module F = Onll_baselines.Flat_combining.Make (M) (Cs) in
  let obj = F.create () in
  let procs =
    Array.init 2 (fun _ -> fun _ -> ignore (F.update obj Cs.Increment))
  in
  let script =
    Sched.Strategy.script
      [
        Sched.Strategy.run_until_pfence 0;  (* combiner holds the lock *)
        Sched.Strategy.Run_to_completion 1;  (* spins forever *)
      ]
  in
  check Alcotest.bool "livelocks" true
    (match Sim.run ~max_steps:20_000 sim script procs with
    | exception Sched.Stuck _ -> true
    | _ -> false)

let () =
  Alcotest.run "baselines"
    [
      ( "volatile",
        [
          Alcotest.test_case "semantics, zero fences" `Quick
            test_volatile_semantics_and_zero_fences;
          Alcotest.test_case "loses everything" `Quick
            test_volatile_loses_everything;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "semantics" `Quick test_shadow_semantics;
          Alcotest.test_case "two fences per update" `Quick
            test_shadow_two_fences_per_update;
          Alcotest.test_case "durable + recovery" `Quick
            test_shadow_durable_and_recovers;
          Alcotest.test_case "torn commit" `Quick
            test_shadow_torn_commit_keeps_old_state;
          Alcotest.test_case "mutual exclusion" `Quick
            test_shadow_concurrent_mutual_exclusion;
        ] );
      ( "persist-on-read",
        [
          Alcotest.test_case "semantics" `Quick test_por_semantics;
          Alcotest.test_case "one fence per update" `Quick
            test_por_one_fence_per_update;
          Alcotest.test_case "reader pays in flight" `Quick
            test_por_reader_pays_when_update_in_flight;
          Alcotest.test_case "read observation durable" `Quick
            test_por_read_observation_durable;
          Alcotest.test_case "recovery" `Quick test_por_recovery;
        ] );
      ( "wait-on-read",
        [
          Alcotest.test_case "semantics" `Quick test_wor_semantics;
          Alcotest.test_case "reader waits" `Quick
            test_wor_reader_waits_for_updater;
          Alcotest.test_case "livelock behind stalled updater" `Quick
            test_wor_livelocks_behind_stalled_updater;
          Alcotest.test_case "durable observations" `Quick
            test_wor_durable_observations;
        ] );
      ( "flat-combining",
        [
          Alcotest.test_case "sequential semantics" `Quick
            test_fc_semantics_sequential;
          Alcotest.test_case "batch shares one fence" `Quick
            test_fc_batches_share_one_fence;
          Alcotest.test_case "random schedules" `Quick
            test_fc_random_schedules_correct;
          Alcotest.test_case "recovery" `Quick test_fc_recovery;
          Alcotest.test_case "stalled combiner blocks" `Quick
            test_fc_blocks_when_combiner_stalls;
        ] );
    ]
