open Onll_machine
open Onll_sched
module Kv = Onll_specs.Kv
module Faults = Onll_faults.Faults

let check = Alcotest.check

(* Probe for a key the router sends to shard [s] — the router is pure, so
   a key found once stays on that shard for the object's lifetime. *)
let key_for shard_of s =
  let rec go i =
    let k = Printf.sprintf "key-%d" i in
    if shard_of (Kv.Put (k, "")) = s then k else go (i + 1)
  in
  go 0

(* {1 Router determinism} *)

let test_router_deterministic_across_instances_and_crash () =
  (* The router must answer identically on independent instances and
     across a crash: recovery re-routes nothing, it just recovers each
     shard, so a key wandering between shards would orphan its history. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_sharded.Make (M) (Kv) in
  let a = C.create ~shards:4 () in
  let b = C.create ~shards:4 () in
  let keys = List.init 64 (Printf.sprintf "user:%d") in
  let route obj k = C.shard_of_update obj (Kv.Put (k, "v")) in
  let before = List.map (route a) keys in
  check
    Alcotest.(list int)
    "identical routing on an independent instance" before
    (List.map (route b) keys);
  (* every update routes with its key's reads: Get k must land where
     Put k landed, or reads would miss their own writes *)
  List.iter
    (fun k ->
      check
        Alcotest.(option int)
        "get follows put" (Some (route a k))
        (Kv.shard_of_read ~shards:4 (Kv.Get k)))
    keys;
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [| (fun _ -> List.iter (fun k -> ignore (C.update a (Kv.Put (k, k)))) keys) |]);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  C.recover a;
  check
    Alcotest.(list int)
    "identical routing after crash + recovery" before (List.map (route a) keys);
  List.iter
    (fun k -> check (Alcotest.option Alcotest.string) "binding recovered"
        (Some k)
        (match C.read a (Kv.Get k) with
        | Kv.Found v -> v
        | _ -> None))
    keys

(* {1 Fence accounting and global reads} *)

let test_one_fence_per_update_zero_per_read () =
  (* Theorem 5.1 through the partitioned object: an update runs on exactly
     one shard, so the bound survives composition verbatim — and a global
     read fans out over all shards without fencing any of them. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_sharded.Make (M) (Kv) in
  let obj = C.create ~shards:4 () in
  let n = 40 in
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [|
         (fun _ ->
           for i = 1 to n do
             match C.update obj (Kv.Put (Printf.sprintf "k%d" i, "v")) with
             | Kv.Previous None -> ()
             | _ -> Alcotest.fail "fresh key had a previous binding"
           done);
       |]);
  check Alcotest.int "one persistent fence per update" n
    (M.persistent_fences ());
  let touched =
    List.sort_uniq compare
      (List.init n (fun i ->
           C.shard_of_update obj (Kv.Put (Printf.sprintf "k%d" (i + 1), "v"))))
  in
  check Alcotest.bool "the workload actually spread over shards" true
    (List.length touched > 1);
  (* shard-routed reads and the global Size fan-out are both fence-free *)
  for i = 1 to n do
    let k = Printf.sprintf "k%d" i in
    check Alcotest.bool "read back" true
      (C.read obj (Kv.Get k) = Kv.Found (Some "v"))
  done;
  check Alcotest.bool "global size sums disjoint shards" true
    (C.read obj Kv.Size = Kv.Count n);
  check Alcotest.int "reads fenced nothing" n (M.persistent_fences ())

(* {1 Cross-shard crash audit} *)

let test_crash_on_one_shard_leaves_others_durable () =
  (* Proc 0 completes (and fences) updates routed to shard A; proc 1 is
     parked mid-update on a DIFFERENT shard — linearized there but not yet
     persisted — when the crash hits. Shard independence says the in-flight
     update on shard B cannot disturb shard A's durable history. *)
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_sharded.Make (M) (Kv) in
  let obj = C.create ~shards:4 () in
  let route op = C.shard_of_update obj op in
  let shard_a = 0 and shard_b = 1 in
  let key_a = key_for route shard_a and key_b = key_for route shard_b in
  let procs =
    [|
      (fun _ ->
        ignore (C.update obj (Kv.Put (key_a, "committed")));
        ignore (C.update obj (Kv.Put (key_a ^ "'", "committed"))));
      (fun _ -> ignore (C.update obj (Kv.Put (key_b, "in-flight"))));
    |]
  in
  let script =
    Sched.Strategy.script
      [
        Sched.Strategy.Run_to_completion 0;
        Sched.Strategy.run_until_pfence 1;  (* linearized, unpersisted *)
        Sched.Strategy.Crash_here;
      ]
  in
  (match Sim.run sim script procs with
  | Sched.World.Crashed -> ()
  | _ -> Alcotest.fail "expected the scripted crash");
  let r = C.recover_report obj in
  check Alcotest.bool "no detected loss: an unfenced op may simply vanish"
    false
    (Onll_core.Onll.Recovery_report.detected_loss r);
  check Alcotest.bool "shard A's fenced updates survived" true
    (C.read obj (Kv.Get key_a) = Kv.Found (Some "committed")
    && C.read obj (Kv.Get (key_a ^ "'")) = Kv.Found (Some "committed"));
  check Alcotest.bool "shard A is where they were recovered" true
    (List.exists (fun (s, _, _) -> s = shard_a) (C.recovered_ops obj));
  check Alcotest.bool "no stray recovery outside A and B" true
    (List.for_all
       (fun (s, _, _) -> s = shard_a || s = shard_b)
       (C.recovered_ops obj));
  check Alcotest.bool "composed object still serves" true
    (C.update obj (Kv.Put (key_b, "retry")) = Kv.Previous None
     || C.read obj (Kv.Get key_b) = Kv.Found (Some "in-flight"))

(* {1 Degraded-flag aggregation} *)

let test_degraded_flag_is_or_over_shards () =
  (* Rot confined to ONE shard's (unmirrored) log regions: that shard's
     hardened recovery reports loss and goes degraded; the others stay
     clean; the composed flag is the OR. Region names are shard-qualified
     (".s<i>"), which is what lets the fault plan aim at one shard. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_sharded.Make (M) (Kv) in
  let obj = C.create ~shards:4 () in
  let route op = C.shard_of_update obj op in
  let plan =
    {
      Faults.Plan.none with
      Faults.Plan.seed = 11;
      rot_ops_interval = 2;
      media_window = 4096;
      target =
        (fun name ->
          (* kv.s1.<inst>.plog.<proc> *)
          let sub = ".s1." in
          let n = String.length name and m = String.length sub in
          let rec at i =
            i + m <= n && (String.sub name i m = sub || at (i + 1))
          in
          at 0);
    }
  in
  let h = Faults.install (Sim.memory sim) plan in
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [|
         (fun _ ->
           for i = 1 to 200 do
             ignore
               (C.update obj (Kv.Put (key_for route (i mod 4) ^ "x", "v")))
           done);
       |]);
  Faults.set_rot h false;
  check Alcotest.bool "rot actually fired" true
    ((Faults.counters h).Faults.rot_flips > 20);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let reports = C.recover_reports obj in
  Faults.remove h;
  check Alcotest.int "one report per shard" 4 (List.length reports);
  List.iteri
    (fun s r ->
      let lossy = Onll_core.Onll.Recovery_report.detected_loss r in
      if s = 1 then
        check Alcotest.bool "the rotted shard detected its loss" true lossy
      else check Alcotest.bool "untouched shards recovered clean" false lossy)
    reports;
  check Alcotest.bool "composed degraded flag is the OR" true (C.degraded obj);
  check Alcotest.bool "untouched shard is not itself degraded" false
    (C.Shard.degraded (C.shard obj 0))

(* {1 Detectable execution across shards} *)

let test_was_linearized_routes_by_operation () =
  (* Identities are per shard: the same (proc, seq) pair can exist on two
     shards. was_linearized takes the operation so it can ask the right
     shard — and only the shard that executed the op says yes. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_sharded.Make (M) (Kv) in
  let obj = C.create ~shards:4 () in
  let route op = C.shard_of_update obj op in
  let op_a = Kv.Put (key_for route 0, "a") in
  let op_b = Kv.Put (key_for route 1, "b") in
  let id = ref { Onll_core.Onll.id_proc = 0; id_seq = 0 } in
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [|
         (fun _ ->
           let i, _ = C.update_with_id obj op_a in
           id := i);
       |]);
  check Alcotest.bool "executed op is linearized on its shard" true
    (C.was_linearized obj op_a !id);
  check Alcotest.bool "same id asked of another shard: no" false
    (C.was_linearized obj op_b !id);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  ignore (C.recover_report obj);
  check Alcotest.bool "still linearized after recovery" true
    (C.was_linearized obj op_a !id)

let test_recovered_ops_shard_major_after_cross_shard_crash () =
  (* A workload interleaved across every shard, cut by a crash that spans
     them all: [recovered_ops] must come back shard-major (not in the
     interleaved execution order), oldest first within each shard, and
     every completed update must still answer [was_linearized] when
     routed by its operation — and only there. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_sharded.Make (M) (Kv) in
  let obj = C.create ~shards:4 () in
  let route op = C.shard_of_update obj op in
  let keys_for s n =
    let rec go i acc =
      if List.length acc = n then List.rev acc
      else
        let k = Printf.sprintf "key-%d" i in
        if route (Kv.Put (k, "")) = s then go (i + 1) (k :: acc)
        else go (i + 1) acc
    in
    go 0 []
  in
  let rounds = 3 in
  let per_shard = Array.init 4 (fun s -> keys_for s rounds) in
  (* round-robin over shards: 0,1,2,3,0,1,2,3,... *)
  let ops =
    List.concat
      (List.init rounds (fun r ->
           List.init 4 (fun s ->
               Kv.Put (List.nth per_shard.(s) r, Printf.sprintf "v%d" r))))
  in
  let ids = ref [] in
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [|
         (fun _ ->
           List.iter
             (fun op ->
               let id, _ = C.update_with_id obj op in
               ids := (op, id) :: !ids)
             ops);
       |]);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  ignore (C.recover_report obj);
  let ro = C.recovered_ops obj in
  check Alcotest.int "every completed update recovered" (List.length ops)
    (List.length ro);
  let shard_seq = List.map (fun (s, _, _) -> s) ro in
  check
    Alcotest.(list int)
    "shard-major, not execution-interleaved"
    (List.sort compare shard_seq) shard_seq;
  List.iter
    (fun s ->
      let idxs =
        List.filter_map (fun (s', _, i) -> if s' = s then Some i else None) ro
      in
      check Alcotest.(list int) "oldest first within the shard"
        (List.sort_uniq compare idxs)
        idxs;
      (* the composed list is exactly the per-shard lists, tagged *)
      check Alcotest.int "agrees with the shard's own recovered_ops"
        (List.length (C.Shard.recovered_ops (C.shard obj s)))
        (List.length idxs))
    [ 0; 1; 2; 3 ];
  List.iter
    (fun (op, id) ->
      check Alcotest.bool "listed on its own shard" true
        (List.exists (fun (s, i, _) -> s = route op && i = id) ro);
      (* post-recovery answers may be floor-coarsened, but never in the
         false-negative direction: each op's own shard still says yes *)
      check Alcotest.bool "was_linearized after the cross-shard crash" true
        (C.was_linearized obj op id))
    !ids

let () =
  Alcotest.run "sharded"
    [
      ( "router",
        [
          Alcotest.test_case "deterministic across instances and crashes"
            `Quick test_router_deterministic_across_instances_and_crash;
        ] );
      ( "fences",
        [
          Alcotest.test_case "1 pf/update, 0 pf/read through the partition"
            `Quick test_one_fence_per_update_zero_per_read;
        ] );
      ( "crash",
        [
          Alcotest.test_case "crash on one shard leaves others durable"
            `Quick test_crash_on_one_shard_leaves_others_durable;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "flag aggregates as OR over shards" `Quick
            test_degraded_flag_is_or_over_shards;
        ] );
      ( "detectable",
        [
          Alcotest.test_case "was_linearized routes by operation" `Quick
            test_was_linearized_routes_by_operation;
        ] );
      ( "recovery",
        [
          Alcotest.test_case
            "recovered_ops is shard-major after a cross-shard crash" `Quick
            test_recovered_ops_shard_major_after_cross_shard_crash;
        ] );
    ]
