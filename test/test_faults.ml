(* The fault-injection layer (Onll_faults) and the hardened recovery it
   exists to exercise: deterministic media corruption, capped transient
   failures, the armed nested-crash fuse — and the PR's central acceptance
   property, recovery idempotence under a crash at EVERY recovery step. *)

open Onll_machine
module Faults = Onll_faults.Faults
module Memory = Onll_nvm.Memory
module Cs = Onll_specs.Counter

let check = Alcotest.check

(* {1 Determinism} *)

let test_media_corruption_deterministic () =
  (* Same seed -> byte-identical corrupted image and identical counters;
     different seed -> a different image. *)
  let durable seed =
    let sim = Sim.create ~max_processes:1 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with log_capacity = 4096 } in
    for _ = 1 to 5 do ignore (C.update obj Cs.Increment) done;
    let mem = Sim.memory sim in
    let plan =
      { (Faults.Plan.default ~seed) with
        Faults.Plan.flush_fail_prob = 0.; fence_fail_prob = 0. }
    in
    let h = Faults.install mem plan in
    Memory.crash mem ~policy:Onll_nvm.Crash_policy.Drop_all;
    Faults.remove h;
    let snap =
      (* max_processes = 1: the object owns exactly one log region *)
      match Memory.region_names mem with
      | [ name ] ->
          Memory.Region.durable_snapshot
            (Option.get (Memory.find_region mem name))
      | names ->
          Alcotest.failf "expected one region, got %d" (List.length names)
    in
    (snap, Faults.counters h)
  in
  let s1, c1 = durable 42 in
  let s2, c2 = durable 42 in
  let s3, _ = durable 43 in
  check Alcotest.bool "same seed, same corrupted image" true (s1 = s2);
  check Alcotest.bool "same seed, same counters" true (c1 = c2);
  check Alcotest.bool "different seed, different image" true (s1 <> s3);
  check Alcotest.int "plan's bit flips landed" 2 c1.Faults.bit_flips;
  check Alcotest.int "plan's torn span landed" 1 c1.Faults.torn_spans

let test_crash_policy_random_deterministic () =
  (* The Crash_policy.Random seed contract (crash_policy.mli): the
     surviving set is a pure function of the seed and the crash-time
     memory state — including PENDING (flushed-but-unfenced) write-backs,
     not just dirty lines. *)
  let durable seed =
    let m = Memory.create ~line_size:8 ~max_processes:2 () in
    let r = Memory.region m ~name:"r" ~size:512 in
    for i = 0 to 7 do
      Memory.Region.store r ~proc:0 ~off:(i * 8) "DDDDDDDD"
    done;
    (* half flushed (pending at the crash), half left dirty *)
    Memory.Region.flush r ~proc:0 ~off:0 ~len:32;
    Memory.Region.store r ~proc:1 ~off:256 "dddddddd";
    Memory.crash m ~policy:(Onll_nvm.Crash_policy.Random seed);
    Memory.Region.durable_snapshot r
  in
  check Alcotest.string "same seed, same durable image" (durable 9) (durable 9);
  check Alcotest.bool "different seeds differ" true (durable 1 <> durable 2)

(* {1 Transient failures} *)

let test_transient_failures_capped_and_retried () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  let plan =
    { Faults.Plan.none with
      Faults.Plan.fence_fail_prob = 1.0; max_consecutive_transients = 2 }
  in
  let h = Faults.install (Sim.memory sim) plan in
  (* Every fence fails with probability 1 — but never more than twice in a
     row, so the bounded retry inside the log's persist must succeed. *)
  P.append log "payload";
  Faults.remove h;
  check Alcotest.(list string) "append survived the transients" [ "payload" ]
    (P.entries log);
  let c = Faults.counters h in
  check Alcotest.int "exactly the cap worth of fence failures" 2
    c.Faults.fence_transients;
  (* The flush hook (probability 0) must not have reset the cap. *)
  check Alcotest.int "no flush failures" 0 c.Faults.flush_transients

(* {1 The nested-crash fuse} *)

let test_armed_fuse_fires_at_exact_op () =
  let m = Memory.create ~max_processes:1 () in
  let r = Memory.region m ~name:"r" ~size:256 in
  let h = Faults.install m Faults.Plan.none in
  Memory.Region.store r ~proc:0 ~off:0 "x";
  check Alcotest.bool "not armed" false (Faults.armed h);
  Faults.arm_recovery_crash h ~at_op:2;
  check Alcotest.bool "armed" true (Faults.armed h);
  Memory.Region.store r ~proc:0 ~off:1 "y" (* fuse: 2 -> 1 *);
  Memory.Region.store r ~proc:0 ~off:2 "z" (* fuse: 1 -> 0 *);
  check Alcotest.bool "third op crashes" true
    (match Memory.Region.store r ~proc:0 ~off:3 "w" with
    | exception Memory.Injected_crash -> true
    | () -> false);
  (* the fuse is spent: the next op proceeds *)
  check Alcotest.bool "disarmed after firing" false (Faults.armed h);
  Memory.Region.store r ~proc:0 ~off:4 "v";
  check Alcotest.int "one recovery crash counted" 1
    (Faults.counters h).Faults.recovery_crashes;
  Faults.remove h

(* {1 Recovery idempotence, exhaustively} *)

(* The acceptance property: starting from one crashed (and media-faulted)
   durable image, crash the hardened recovery at EVERY durable-memory
   operation in turn; after each interruption a re-run must adopt exactly
   the recovered history and state of an uninterrupted recovery. The
   durable image is reset from a saved snapshot before every trial, so the
   trials are independent and the reference is fixed. *)
let recovery_idempotence_exhaustive ~media ?(replicas = 1) () =
  let path = Filename.temp_file "onll_faults" ".img" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj =
    C.make
      { Onll_core.Onll.Config.default with
        Onll_core.Onll.Config.log_capacity = 4096; replicas }
  in
  let mem = Sim.memory sim in
  let body _ = for _ = 1 to 6 do ignore (C.update obj Cs.Increment) done in
  let h0 =
    Faults.install mem
      (if media then
         { (Faults.Plan.default ~seed:7) with
           Faults.Plan.flush_fail_prob = 0.; fence_fail_prob = 0. }
       else Faults.Plan.none)
  in
  let outcome =
    Sim.run sim
      (Onll_sched.Sched.Strategy.random_with_crash ~seed:3 ~crash_at_step:50)
      [| body; body |]
  in
  Faults.remove h0;
  check Alcotest.bool "workload crashed" true
    (outcome = Onll_sched.Sched.World.Crashed);
  Memory.save_image mem ~path;
  (* Reference: two uninterrupted recoveries (the second pins plain
     idempotence on an already-repaired image). *)
  Memory.load_image mem ~path;
  let ref_report = C.recover_report obj in
  let ref_ops = C.recovered_ops obj in
  let ref_val = C.read obj Cs.Get in
  let r2 = C.recover_report obj in
  check Alcotest.bool "second recovery adopts the same ops" true
    (C.recovered_ops obj = ref_ops);
  check Alcotest.int "second recovery, same state" ref_val (C.read obj Cs.Get);
  check Alcotest.bool "second recovery repairs nothing" true
    (List.for_all
       (fun (_, s) -> s.Onll_plog.Plog.quarantined_spans = 0)
       r2.Onll_core.Onll.Recovery_report.salvage);
  ignore ref_report;
  (* Exhaustive interruption sweep. *)
  let h = Faults.install mem Faults.Plan.none in
  let trials = ref 0 in
  let fired = ref true in
  while !fired do
    Memory.load_image mem ~path;
    Faults.arm_recovery_crash h ~at_op:!trials;
    (match C.recover_report obj with
    | _ ->
        (* recovery finished in fewer ops than the fuse: sweep complete *)
        Faults.disarm h;
        fired := false
    | exception Memory.Injected_crash ->
        Memory.crash mem ~policy:Onll_nvm.Crash_policy.Drop_all;
        let _second = C.recover_report obj in
        if C.recovered_ops obj <> ref_ops then
          Alcotest.failf
            "crash at recovery op %d: re-recovery adopted %d ops, reference \
             %d"
            !trials
            (List.length (C.recovered_ops obj))
            (List.length ref_ops);
        check Alcotest.int
          (Printf.sprintf "crash at recovery op %d: same state" !trials)
          ref_val (C.read obj Cs.Get));
    incr trials
  done;
  Faults.remove h;
  check Alcotest.bool
    (Printf.sprintf "sweep covered every recovery step (%d)" !trials)
    true
    (!trials > 5)

let test_recovery_idempotent_exhaustive_clean () =
  recovery_idempotence_exhaustive ~media:false ()

let test_recovery_idempotent_exhaustive_media () =
  recovery_idempotence_exhaustive ~media:true ()

(* The E13 acceptance half: the same sweep over a MIRRORED object, where
   recovery additionally heals cross-replica divergence — every repair
   (header re-convergence, byte copies from the intact replica, marker
   propagation) must itself be crash-safe at every durable step. *)
let test_recovery_idempotent_exhaustive_mirrored_clean () =
  recovery_idempotence_exhaustive ~media:false ~replicas:2 ()

let test_recovery_idempotent_exhaustive_mirrored_media () =
  recovery_idempotence_exhaustive ~media:true ~replicas:2 ()

(* {1 One full chaos run in the tier-1 suite} *)

let test_chaos_run_hardened_and_calibration () =
  let module Ch = Test_support.Chaos.Make (Onll_specs.Kv) in
  let plan = Test_support.Chaos_harness.plan_of_seed 4 in
  let r =
    Ch.run ~plan ~gen_update:Test_support.Gen.Kv.update
      ~gen_read:Test_support.Gen.Kv.read ()
  in
  check Alcotest.(list string) "hardened run has no violations" []
    r.Test_support.Chaos.violations;
  (* seed 4's plan injects media faults on the calibration path too; the
     audit must catch the unhardened recovery on at least one nearby seed *)
  let caught = ref false in
  for seed = 1 to 8 do
    let plan =
      { (Test_support.Chaos_harness.plan_of_seed seed) with
        Test_support.Chaos.hardened = false }
    in
    let r =
      Ch.run ~plan ~gen_update:Test_support.Gen.Kv.update
        ~gen_read:Test_support.Gen.Kv.read ()
    in
    if r.Test_support.Chaos.violations <> [] then caught := true
  done;
  check Alcotest.bool "unhardened baseline caught" true !caught

(* {1 Scrubbing under active rot} *)

let test_scrub_under_active_rot_never_spreads_damage () =
  (* Regression: the scrubber runs while rot keeps striking, so a replica
     can be corrupted BETWEEN the probe that validated it and the load of
     the bytes to copy. An unvalidated copy would spread that fresh damage
     onto the intact mirror — turning a repairable single-copy fault into
     an unrepairable all-copy loss. The repair path revalidates the loaded
     bytes themselves before propagating them; with rot on the primary
     only, no scrub may ever quarantine and recovery must be loss-free. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:65536 ~replicas:2 () in
  let plan =
    { Faults.Plan.none with
      Faults.Plan.seed = 1;
      rot_ops_interval = 2;
      media_window = 2048;
      target = (fun n -> not (Onll_plog.Plog.is_mirror_region n)) }
  in
  let h = Faults.install (Sim.memory sim) plan in
  let unrepairable = ref 0 in
  for i = 1 to 120 do
    P.append log (Printf.sprintf "entry-%04d" i);
    let s = P.scrub log in
    unrepairable := !unrepairable + s.Onll_plog.Plog.unrepairable_spans
  done;
  Faults.set_rot h false;
  check Alcotest.int "no scrub ever quarantined (mirror stayed intact)" 0
    !unrepairable;
  check Alcotest.bool "rot actually fired, heavily" true
    ((Faults.counters h).Faults.rot_flips > 100);
  Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = P.recover log in
  Faults.remove h;
  check Alcotest.int "recovery lost nothing" 0 (Onll_plog.Plog.report_lost r);
  check Alcotest.int "every entry survived" 120 (P.entry_count log)

let test_relocate_under_active_rot_never_loses () =
  (* Regression: relocate used to bulk-copy the live span from the primary
     with no CRC check and then zero the old offsets in every replica —
     under primary-only rot that propagates fresh damage onto the mirror
     AND destroys the mirror's only intact copy. With the record-by-record
     validated copy, a scrub+compact cycle run under ACTIVE primary rot
     must never lose an acknowledged entry: interior damage is always
     healed from the mirror, never quarantined. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:65536 ~replicas:2 () in
  let plan =
    { Faults.Plan.none with
      Faults.Plan.seed = 7;
      rot_ops_interval = 2;
      media_window = 2048;
      target = (fun n -> not (Onll_plog.Plog.is_mirror_region n)) }
  in
  let h = Faults.install (Sim.memory sim) plan in
  (* Slide a 4-entry live window: every drop is followed by a relocate,
     so the copy keeps crossing freshly rotted territory. Scrub first, as
     the compaction discipline does, but rot keeps striking between the
     scrub and the copy — exactly the window the validated copy closes. *)
  let live = Queue.create () in
  for i = 1 to 80 do
    let e = Printf.sprintf "entry-%04d" i in
    P.append log e;
    Queue.add e live;
    if Queue.length live > 4 then begin
      ignore (Queue.take live);
      (* Pause rot for the head advance — set_head's scan reads the
         primary only and is not the repair path under test — then run
         the relocate itself under active rot: its record loads tick the
         fault hooks, so rot strikes mid-copy, exactly the window the
         validated per-record copy must close. *)
      Faults.set_rot h false;
      ignore (P.scrub log);
      P.set_head log 1;
      Faults.set_rot h true;
      P.relocate log
    end
  done;
  Faults.set_rot h false;
  check Alcotest.bool "rot actually fired, heavily" true
    ((Faults.counters h).Faults.rot_flips > 50);
  Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = P.recover log in
  Faults.remove h;
  (* rot beyond the tail may be truncated as torn garbage (it never held
     data), but no interior span may ever be quarantined: the mirror
     always has the intact copy *)
  check Alcotest.int "nothing quarantined" 0
    r.Onll_plog.Plog.quarantined_spans;
  check Alcotest.(list string) "the exact live window survives"
    (List.of_seq (Queue.to_seq live))
    (P.entries log)

(* {1 Tail-ambiguity disambiguation (E12 -> E13)} *)

let test_mirroring_disambiguates_tail_faults () =
  (* E12's residual excuse: on a single-copy log, a media fault on the last
     entry is indistinguishable from a torn append, so the audit lets a
     missing completed op pass as `Tail_ambiguous`. Find seeds where the
     unmirrored campaign actually claims that excuse, then re-run the SAME
     seeds mirrored with primary-only faults: the excuse is revoked there
     (chaos.ml tightens it to replicas = 1 or all-replica fault scopes) and
     every such op must instead be repaired from the mirror — zero losses,
     zero ambiguity, zero violations. *)
  let module Ch = Test_support.Chaos.Make (Onll_specs.Kv) in
  let run plan =
    Ch.run ~plan ~gen_update:Test_support.Gen.Kv.update
      ~gen_read:Test_support.Gen.Kv.read ()
  in
  let ambiguous_seeds = ref [] in
  for seed = 1 to 60 do
    let r = run (Test_support.Chaos_harness.plan_of_seed seed) in
    if r.Test_support.Chaos.tail_ambiguous > 0 then
      ambiguous_seeds := seed :: !ambiguous_seeds
  done;
  check Alcotest.bool "found genuinely ambiguous unmirrored seeds" true
    (!ambiguous_seeds <> []);
  List.iter
    (fun seed ->
      let plan = Test_support.Chaos_harness.mirrored_plan_of_seed seed in
      let r = run plan in
      check Alcotest.(list string)
        (Printf.sprintf "seed %d mirrored: no violations" seed)
        [] r.Test_support.Chaos.violations;
      check Alcotest.int
        (Printf.sprintf "seed %d mirrored: nothing reported lost" seed)
        0 r.Test_support.Chaos.lost_reported;
      check Alcotest.int
        (Printf.sprintf "seed %d mirrored: no ambiguity left" seed)
        0 r.Test_support.Chaos.tail_ambiguous)
    !ambiguous_seeds

(* {1 Backend-uniform fault scoping (E17)}

   One {!Faults.Plan.t} must mean the same thing on both backends: the
   sim installer and the file installer roll transient flush/fence
   failures with the same discipline (same short-circuits, same
   consecutive cap, same SplitMix draw order from the same seed) and the
   same [target] region scoping — so a plan tuned against the simulator
   transfers to real files without re-tuning. Drive an identical
   store/flush/fence program through both backends via the shared
   {!Onll_nvm.Memory_sig.S} surface and require byte-identical injection
   sites. *)

let parity_plan =
  {
    Faults.Plan.none with
    Faults.Plan.seed = 42;
    flush_fail_prob = 0.3;
    fence_fail_prob = 0.2;
    max_consecutive_transients = 2;
    target = (fun n -> n = "a");
  }

let drive_parity (module B : Onll_nvm.Memory_sig.S) =
  let a = B.region ~name:"a" ~size:1024 in
  let b = B.region ~name:"b" ~size:1024 in
  let faults = ref [] in
  let record what i = faults := (what, i) :: !faults in
  for i = 0 to 59 do
    let off = i mod 60 * 16 in
    B.store a ~proc:0 ~off (String.make 8 'x');
    B.store b ~proc:0 ~off (String.make 8 'y');
    (try B.flush a ~proc:0 ~off ~len:8
     with Memory.Transient_fault _ -> record "flush.a" i);
    (try B.flush b ~proc:0 ~off ~len:8
     with Memory.Transient_fault _ -> record "flush.b" i);
    try B.fence ~proc:0 with Memory.Transient_fault _ -> record "fence" i
  done;
  List.rev !faults

let test_plan_scoping_uniform_across_backends () =
  let sim_mem = Memory.create ~max_processes:1 () in
  let h_sim = Faults.install sim_mem parity_plan in
  let sim_sites = drive_parity (Memory.instance sim_mem) in
  Faults.remove h_sim;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "onll-parity-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  let fmem = Onll_nvm.File_memory.create ~dir ~max_processes:1 () in
  let h_file =
    Faults.install_file fmem { Faults.File_plan.none with base = parity_plan }
  in
  let file_sites = drive_parity (Onll_nvm.File_memory.instance fmem) in
  Faults.remove_file h_file;
  Onll_nvm.File_memory.close fmem;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  check Alcotest.bool "plan injected something" true (sim_sites <> []);
  check Alcotest.bool "targeted flushes faulted" true
    (List.exists (fun (w, _) -> w = "flush.a") sim_sites);
  check Alcotest.bool "untargeted region never faulted" true
    (not (List.exists (fun (w, _) -> w = "flush.b") sim_sites));
  check
    Alcotest.(list (pair string int))
    "identical injection sites on both backends" sim_sites file_sites

let () =
  Alcotest.run "faults"
    [
      ( "determinism",
        [
          Alcotest.test_case "media corruption is seeded" `Quick
            test_media_corruption_deterministic;
          Alcotest.test_case "Crash_policy.Random contract" `Quick
            test_crash_policy_random_deterministic;
        ] );
      ( "transients",
        [
          Alcotest.test_case "capped and retried" `Quick
            test_transient_failures_capped_and_retried;
        ] );
      ( "fuse",
        [
          Alcotest.test_case "fires at the armed op" `Quick
            test_armed_fuse_fires_at_exact_op;
        ] );
      ( "idempotence",
        [
          Alcotest.test_case "crash at every recovery step (clean logs)"
            `Quick test_recovery_idempotent_exhaustive_clean;
          Alcotest.test_case "crash at every recovery step (media faults)"
            `Quick test_recovery_idempotent_exhaustive_media;
          Alcotest.test_case "crash at every recovery step (mirrored)" `Quick
            test_recovery_idempotent_exhaustive_mirrored_clean;
          Alcotest.test_case
            "crash at every recovery step (mirrored + media)" `Quick
            test_recovery_idempotent_exhaustive_mirrored_media;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "hardened clean, unhardened caught" `Quick
            test_chaos_run_hardened_and_calibration;
          Alcotest.test_case "mirroring disambiguates tail faults" `Quick
            test_mirroring_disambiguates_tail_faults;
          Alcotest.test_case "scrub under active rot never spreads damage"
            `Quick test_scrub_under_active_rot_never_spreads_damage;
          Alcotest.test_case "relocate under active rot never loses" `Quick
            test_relocate_under_active_rot_never_loses;
        ] );
      ( "backend parity",
        [
          Alcotest.test_case "plan scoping uniform across backends" `Quick
            test_plan_scoping_uniform_across_backends;
        ] );
    ]
