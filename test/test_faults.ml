(* The fault-injection layer (Onll_faults) and the hardened recovery it
   exists to exercise: deterministic media corruption, capped transient
   failures, the armed nested-crash fuse — and the PR's central acceptance
   property, recovery idempotence under a crash at EVERY recovery step. *)

open Onll_machine
module Faults = Onll_faults.Faults
module Memory = Onll_nvm.Memory
module Cs = Onll_specs.Counter

let check = Alcotest.check

(* {1 Determinism} *)

let test_media_corruption_deterministic () =
  (* Same seed -> byte-identical corrupted image and identical counters;
     different seed -> a different image. *)
  let durable seed =
    let sim = Sim.create ~max_processes:1 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.create ~log_capacity:4096 () in
    for _ = 1 to 5 do ignore (C.update obj Cs.Increment) done;
    let mem = Sim.memory sim in
    let plan =
      { (Faults.Plan.default ~seed) with
        Faults.Plan.flush_fail_prob = 0.; fence_fail_prob = 0. }
    in
    let h = Faults.install mem plan in
    Memory.crash mem ~policy:Onll_nvm.Crash_policy.Drop_all;
    Faults.remove h;
    let snap =
      (* max_processes = 1: the object owns exactly one log region *)
      match Memory.region_names mem with
      | [ name ] ->
          Memory.Region.durable_snapshot
            (Option.get (Memory.find_region mem name))
      | names ->
          Alcotest.failf "expected one region, got %d" (List.length names)
    in
    (snap, Faults.counters h)
  in
  let s1, c1 = durable 42 in
  let s2, c2 = durable 42 in
  let s3, _ = durable 43 in
  check Alcotest.bool "same seed, same corrupted image" true (s1 = s2);
  check Alcotest.bool "same seed, same counters" true (c1 = c2);
  check Alcotest.bool "different seed, different image" true (s1 <> s3);
  check Alcotest.int "plan's bit flips landed" 2 c1.Faults.bit_flips;
  check Alcotest.int "plan's torn span landed" 1 c1.Faults.torn_spans

let test_crash_policy_random_deterministic () =
  (* The Crash_policy.Random seed contract (crash_policy.mli): the
     surviving set is a pure function of the seed and the crash-time
     memory state — including PENDING (flushed-but-unfenced) write-backs,
     not just dirty lines. *)
  let durable seed =
    let m = Memory.create ~line_size:8 ~max_processes:2 () in
    let r = Memory.region m ~name:"r" ~size:512 in
    for i = 0 to 7 do
      Memory.Region.store r ~proc:0 ~off:(i * 8) "DDDDDDDD"
    done;
    (* half flushed (pending at the crash), half left dirty *)
    Memory.Region.flush r ~proc:0 ~off:0 ~len:32;
    Memory.Region.store r ~proc:1 ~off:256 "dddddddd";
    Memory.crash m ~policy:(Onll_nvm.Crash_policy.Random seed);
    Memory.Region.durable_snapshot r
  in
  check Alcotest.string "same seed, same durable image" (durable 9) (durable 9);
  check Alcotest.bool "different seeds differ" true (durable 1 <> durable 2)

(* {1 Transient failures} *)

let test_transient_failures_capped_and_retried () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  let plan =
    { Faults.Plan.none with
      Faults.Plan.fence_fail_prob = 1.0; max_consecutive_transients = 2 }
  in
  let h = Faults.install (Sim.memory sim) plan in
  (* Every fence fails with probability 1 — but never more than twice in a
     row, so the bounded retry inside the log's persist must succeed. *)
  P.append log "payload";
  Faults.remove h;
  check Alcotest.(list string) "append survived the transients" [ "payload" ]
    (P.entries log);
  let c = Faults.counters h in
  check Alcotest.int "exactly the cap worth of fence failures" 2
    c.Faults.fence_transients;
  (* The flush hook (probability 0) must not have reset the cap. *)
  check Alcotest.int "no flush failures" 0 c.Faults.flush_transients

(* {1 The nested-crash fuse} *)

let test_armed_fuse_fires_at_exact_op () =
  let m = Memory.create ~max_processes:1 () in
  let r = Memory.region m ~name:"r" ~size:256 in
  let h = Faults.install m Faults.Plan.none in
  Memory.Region.store r ~proc:0 ~off:0 "x";
  check Alcotest.bool "not armed" false (Faults.armed h);
  Faults.arm_recovery_crash h ~at_op:2;
  check Alcotest.bool "armed" true (Faults.armed h);
  Memory.Region.store r ~proc:0 ~off:1 "y" (* fuse: 2 -> 1 *);
  Memory.Region.store r ~proc:0 ~off:2 "z" (* fuse: 1 -> 0 *);
  check Alcotest.bool "third op crashes" true
    (match Memory.Region.store r ~proc:0 ~off:3 "w" with
    | exception Memory.Injected_crash -> true
    | () -> false);
  (* the fuse is spent: the next op proceeds *)
  check Alcotest.bool "disarmed after firing" false (Faults.armed h);
  Memory.Region.store r ~proc:0 ~off:4 "v";
  check Alcotest.int "one recovery crash counted" 1
    (Faults.counters h).Faults.recovery_crashes;
  Faults.remove h

(* {1 Recovery idempotence, exhaustively} *)

(* The acceptance property: starting from one crashed (and media-faulted)
   durable image, crash the hardened recovery at EVERY durable-memory
   operation in turn; after each interruption a re-run must adopt exactly
   the recovered history and state of an uninterrupted recovery. The
   durable image is reset from a saved snapshot before every trial, so the
   trials are independent and the reference is fixed. *)
let recovery_idempotence_exhaustive ~media () =
  let path = Filename.temp_file "onll_faults" ".img" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.create ~log_capacity:4096 () in
  let mem = Sim.memory sim in
  let body _ = for _ = 1 to 6 do ignore (C.update obj Cs.Increment) done in
  let h0 =
    Faults.install mem
      (if media then
         { (Faults.Plan.default ~seed:7) with
           Faults.Plan.flush_fail_prob = 0.; fence_fail_prob = 0. }
       else Faults.Plan.none)
  in
  let outcome =
    Sim.run sim
      (Onll_sched.Sched.Strategy.random_with_crash ~seed:3 ~crash_at_step:50)
      [| body; body |]
  in
  Faults.remove h0;
  check Alcotest.bool "workload crashed" true
    (outcome = Onll_sched.Sched.World.Crashed);
  Memory.save_image mem ~path;
  (* Reference: two uninterrupted recoveries (the second pins plain
     idempotence on an already-repaired image). *)
  Memory.load_image mem ~path;
  let ref_report = C.recover_report obj in
  let ref_ops = C.recovered_ops obj in
  let ref_val = C.read obj Cs.Get in
  let r2 = C.recover_report obj in
  check Alcotest.bool "second recovery adopts the same ops" true
    (C.recovered_ops obj = ref_ops);
  check Alcotest.int "second recovery, same state" ref_val (C.read obj Cs.Get);
  check Alcotest.bool "second recovery repairs nothing" true
    (List.for_all
       (fun (_, s) -> s.Onll_plog.Plog.quarantined_spans = 0)
       r2.Onll_core.Onll.Recovery_report.salvage);
  ignore ref_report;
  (* Exhaustive interruption sweep. *)
  let h = Faults.install mem Faults.Plan.none in
  let trials = ref 0 in
  let fired = ref true in
  while !fired do
    Memory.load_image mem ~path;
    Faults.arm_recovery_crash h ~at_op:!trials;
    (match C.recover_report obj with
    | _ ->
        (* recovery finished in fewer ops than the fuse: sweep complete *)
        Faults.disarm h;
        fired := false
    | exception Memory.Injected_crash ->
        Memory.crash mem ~policy:Onll_nvm.Crash_policy.Drop_all;
        let _second = C.recover_report obj in
        if C.recovered_ops obj <> ref_ops then
          Alcotest.failf
            "crash at recovery op %d: re-recovery adopted %d ops, reference \
             %d"
            !trials
            (List.length (C.recovered_ops obj))
            (List.length ref_ops);
        check Alcotest.int
          (Printf.sprintf "crash at recovery op %d: same state" !trials)
          ref_val (C.read obj Cs.Get));
    incr trials
  done;
  Faults.remove h;
  check Alcotest.bool
    (Printf.sprintf "sweep covered every recovery step (%d)" !trials)
    true
    (!trials > 5)

let test_recovery_idempotent_exhaustive_clean () =
  recovery_idempotence_exhaustive ~media:false ()

let test_recovery_idempotent_exhaustive_media () =
  recovery_idempotence_exhaustive ~media:true ()

(* {1 One full chaos run in the tier-1 suite} *)

let test_chaos_run_hardened_and_calibration () =
  let module Ch = Test_support.Chaos.Make (Onll_specs.Kv) in
  let plan = Test_support.Chaos_harness.plan_of_seed 4 in
  let r =
    Ch.run ~plan ~gen_update:Test_support.Gen.Kv.update
      ~gen_read:Test_support.Gen.Kv.read ()
  in
  check Alcotest.(list string) "hardened run has no violations" []
    r.Test_support.Chaos.violations;
  (* seed 4's plan injects media faults on the calibration path too; the
     audit must catch the unhardened recovery on at least one nearby seed *)
  let caught = ref false in
  for seed = 1 to 8 do
    let plan =
      { (Test_support.Chaos_harness.plan_of_seed seed) with
        Test_support.Chaos.hardened = false }
    in
    let r =
      Ch.run ~plan ~gen_update:Test_support.Gen.Kv.update
        ~gen_read:Test_support.Gen.Kv.read ()
    in
    if r.Test_support.Chaos.violations <> [] then caught := true
  done;
  check Alcotest.bool "unhardened baseline caught" true !caught

let () =
  Alcotest.run "faults"
    [
      ( "determinism",
        [
          Alcotest.test_case "media corruption is seeded" `Quick
            test_media_corruption_deterministic;
          Alcotest.test_case "Crash_policy.Random contract" `Quick
            test_crash_policy_random_deterministic;
        ] );
      ( "transients",
        [
          Alcotest.test_case "capped and retried" `Quick
            test_transient_failures_capped_and_retried;
        ] );
      ( "fuse",
        [
          Alcotest.test_case "fires at the armed op" `Quick
            test_armed_fuse_fires_at_exact_op;
        ] );
      ( "idempotence",
        [
          Alcotest.test_case "crash at every recovery step (clean logs)"
            `Quick test_recovery_idempotent_exhaustive_clean;
          Alcotest.test_case "crash at every recovery step (media faults)"
            `Quick test_recovery_idempotent_exhaustive_media;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "hardened clean, unhardened caught" `Quick
            test_chaos_run_hardened_and_calibration;
        ] );
    ]
