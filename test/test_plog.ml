open Onll_machine
open Onll_sched

let check = Alcotest.check

let test_append_entries_roundtrip () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  P.append log "alpha";
  P.append log "beta";
  P.append log "gamma";
  check Alcotest.(list string) "entries in order" [ "alpha"; "beta"; "gamma" ]
    (P.entries log);
  check Alcotest.int "count" 3 (P.entry_count log)

let test_one_persistent_fence_per_append () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  for i = 1 to 10 do
    P.append log (Printf.sprintf "entry-%d" i);
    check Alcotest.int "fences = appends" i (M.persistent_fences ())
  done

let test_append_durable_across_crash () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  P.append log "persisted";
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  ignore (P.recover log);
  check Alcotest.(list string) "entry survives" [ "persisted" ]
    (P.entries log);
  (* New appends continue after the recovered tail. *)
  P.append log "after";
  check Alcotest.(list string) "continues" [ "persisted"; "after" ]
    (P.entries log)

let test_torn_append_rejected () =
  (* Crash mid-append under Persist_all: whatever bytes were stored do
     persist, but the CRC does not validate, so recovery drops the torn
     entry and keeps the fenced prefix. We cut the append after a few of its
     stores using a scripted schedule. *)
  let sim =
    Sim.create ~max_processes:1
      ~crash_policy:Onll_nvm.Crash_policy.Persist_all ()
  in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  P.append log "good";
  let strategy =
    Sched.Strategy.script
      [ Sched.Strategy.Run_steps (0, 2); Sched.Strategy.Crash_here ]
  in
  let outcome =
    Sim.run sim strategy [| (fun _ -> P.append log "interrupted") |]
  in
  check Alcotest.bool "crashed" true (outcome = Sched.World.Crashed);
  ignore (P.recover log);
  check Alcotest.(list string) "only the fenced entry" [ "good" ]
    (P.entries log)

let test_unfenced_append_may_survive_persist_all () =
  (* Crash after all stores+flushes but before the fence, under Persist_all:
     the entry is complete in the cache, the crash "evicts" it, recovery
     accepts it (its CRC validates). Both outcomes are legal durable states;
     this pins the simulator's behaviour. *)
  let sim =
    Sim.create ~max_processes:1
      ~crash_policy:Onll_nvm.Crash_policy.Persist_all ()
  in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  let strategy =
    Sched.Strategy.script
      [
        (* park just before the fence, then crash *)
        Sched.Strategy.run_until_pfence 0;
        Sched.Strategy.Crash_here;
      ]
  in
  ignore (Sim.run sim strategy [| (fun _ -> P.append log "lucky") |]);
  ignore (P.recover log);
  check Alcotest.(list string) "lucky entry recovered" [ "lucky" ]
    (P.entries log);
  check Alcotest.int "no fence was executed" 0 (M.persistent_fences ())

let test_unfenced_append_lost_drop_all () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  let strategy =
    Sched.Strategy.script
      [ Sched.Strategy.run_until_pfence 0; Sched.Strategy.Crash_here ]
  in
  ignore (Sim.run sim strategy [| (fun _ -> P.append log "unlucky") |]);
  ignore (P.recover log);
  check Alcotest.(list string) "nothing recovered" [] (P.entries log)

let test_full_raises () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:64 () in
  P.append log (String.make 40 'x');
  check Alcotest.bool "full" true
    (match P.append log (String.make 40 'y') with
    | exception Onll_plog.Plog.Full -> true
    | () -> false)

let test_empty_payload_rejected () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:64 () in
  Alcotest.check_raises "empty payload"
    (Invalid_argument "Plog.append: empty payload") (fun () ->
      P.append log "")

let test_used_and_live_bytes () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  check Alcotest.int "empty used" 0 (P.used_bytes log);
  P.append log "12345";  (* 16 header + 5 *)
  check Alcotest.int "used" 21 (P.used_bytes log);
  check Alcotest.int "live = used" 21 (P.live_bytes log)

let test_set_head_compacts () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  P.append log "one";
  P.append log "two";
  P.append log "three";
  P.set_head log 2;
  check Alcotest.(list string) "only the tail entries" [ "three" ]
    (P.entries log);
  check Alcotest.bool "live < used" true (P.live_bytes log < P.used_bytes log);
  (* Appends continue normally. *)
  P.append log "four";
  check Alcotest.(list string) "append after compaction" [ "three"; "four" ]
    (P.entries log)

let test_set_head_durable_across_crash () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  P.append log "a";
  P.append log "b";
  P.set_head log 1;
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  ignore (P.recover log);
  check Alcotest.(list string) "head survived" [ "b" ] (P.entries log)

let test_set_head_zero_noop_and_errors () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  P.append log "a";
  P.set_head log 0;
  check Alcotest.(list string) "0 is a no-op" [ "a" ] (P.entries log);
  check Alcotest.bool "too many raises" true
    (match P.set_head log 5 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_set_head_all_entries () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  P.append log "a";
  P.append log "b";
  P.set_head log 2;
  check Alcotest.(list string) "empty after full compaction" []
    (P.entries log);
  P.append log "c";
  check Alcotest.(list string) "append after full compaction" [ "c" ]
    (P.entries log)

let test_crash_during_set_head_keeps_a_valid_header () =
  (* The header is two versioned slots; a torn header write must leave the
     previous head intact. Park the set_head just before its fence and crash
     with Drop_all: the new header never persists, the old one rules. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  P.append log "a";
  P.append log "b";
  P.set_head log 1;  (* durable head: entry "b" *)
  let strategy =
    Sched.Strategy.script
      [ Sched.Strategy.run_until_pfence 0; Sched.Strategy.Crash_here ]
  in
  ignore (Sim.run sim strategy [| (fun _ -> P.set_head log 1) |]);
  ignore (P.recover log);
  check Alcotest.(list string) "previous head preserved" [ "b" ]
    (P.entries log)

let test_crash_during_set_head_newer_header_wins () =
  (* Same cut as above, but under Persist_all the stored (unfenced) header
     slot is evicted-persisted: both slots are now valid and recovery must
     pick the one with the higher sequence number — the new head. *)
  let sim =
    Sim.create ~max_processes:1
      ~crash_policy:Onll_nvm.Crash_policy.Persist_all ()
  in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  P.append log "a";
  P.append log "b";
  let strategy =
    Sched.Strategy.script
      [ Sched.Strategy.run_until_pfence 0; Sched.Strategy.Crash_here ]
  in
  ignore (Sim.run sim strategy [| (fun _ -> P.set_head log 1) |]);
  ignore (P.recover log);
  check Alcotest.(list string) "newer valid header wins" [ "b" ]
    (P.entries log)

(* {1 Salvage: media faults in durable bytes} *)

(* Three 8-byte entries occupy [64,88), [88,112), [112,136). *)
let flip region ~off =
  Onll_nvm.Memory.Region.corrupt region ~off ~len:1 ~f:(fun _ c ->
      Char.chr (Char.code c lxor 0x10))

let test_salvage_quarantines_interior_corruption () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  P.append log "aaaaaaaa";
  P.append log "bbbbbbbb";
  P.append log "cccccccc";
  let region =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l")
  in
  (* rot a payload byte of the MIDDLE entry: its CRC no longer validates,
     but the entry after it does — interior corruption, not a torn tail *)
  flip region ~off:(88 + 16 + 3);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = P.recover log in
  check Alcotest.(list string) "entries beyond the rot survive"
    [ "aaaaaaaa"; "cccccccc" ] (P.entries log);
  check Alcotest.int "one quarantined span" 1
    r.Onll_plog.Plog.quarantined_spans;
  check Alcotest.int "span = the whole middle entry" 24
    r.Onll_plog.Plog.quarantined_bytes;
  check Alcotest.int "no torn tail" 0 r.Onll_plog.Plog.torn_tail_bytes;
  check Alcotest.bool "reported as loss" true
    (Onll_plog.Plog.report_lost r > 0);
  (* Salvage is idempotent: a second recovery finds a clean log whose only
     scar is the durable skip marker. *)
  let r2 = P.recover log in
  check Alcotest.(list string) "stable" [ "aaaaaaaa"; "cccccccc" ]
    (P.entries log);
  check Alcotest.int "nothing newly quarantined" 0
    r2.Onll_plog.Plog.quarantined_spans;
  check Alcotest.int "the old marker is still counted" 1
    r2.Onll_plog.Plog.skip_markers;
  (* And the log is still writable. *)
  P.append log "dddddddd";
  check Alcotest.(list string) "appends continue"
    [ "aaaaaaaa"; "cccccccc"; "dddddddd" ] (P.entries log)

let test_salvage_truncates_corrupt_tail () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  P.append log "aaaaaaaa";
  P.append log "bbbbbbbb";
  P.append log "cccccccc";
  let region =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l")
  in
  (* rot the LAST entry: no valid entry follows, so this is
     indistinguishable from a torn append and must be truncated, not
     quarantined *)
  flip region ~off:(112 + 16 + 3);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = P.recover log in
  check Alcotest.(list string) "prefix survives" [ "aaaaaaaa"; "bbbbbbbb" ]
    (P.entries log);
  check Alcotest.int "tail zeroed" 24 r.Onll_plog.Plog.torn_tail_bytes;
  check Alcotest.int "nothing quarantined" 0
    r.Onll_plog.Plog.quarantined_spans;
  (* the truncated space is reusable *)
  P.append log "dddddddd";
  check Alcotest.(list string) "appends continue"
    [ "aaaaaaaa"; "bbbbbbbb"; "dddddddd" ] (P.entries log)

let test_unhardened_recover_silently_truncates () =
  (* The calibration baseline: same interior rot as the quarantine test,
     but the pre-hardening scan stops dead at the first bad CRC — the valid
     entry beyond it is silently thrown away and nothing is reported. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  P.append log "aaaaaaaa";
  P.append log "bbbbbbbb";
  P.append log "cccccccc";
  let region =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l")
  in
  flip region ~off:(88 + 16 + 3);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  P.recover_unhardened log;
  check Alcotest.(list string) "fenced entry c silently gone" [ "aaaaaaaa" ]
    (P.entries log)

(* {1 Mirroring: durable redundancy and repair} *)

let test_mirrored_roundtrip () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 ~replicas:2 () in
  check Alcotest.int "replicas" 2 (P.replicas log);
  check Alcotest.(list string) "region names" [ "l"; "l~1" ]
    (P.region_names log);
  P.append log "alpha";
  P.append log "beta";
  check Alcotest.(list string) "entries" [ "alpha"; "beta" ] (P.entries log);
  (* both replica regions really exist in NVM *)
  check Alcotest.bool "mirror region exists" true
    (Onll_nvm.Memory.find_region (Sim.memory sim) "l~1" <> None);
  check Alcotest.bool "mirror marker" true
    (Onll_plog.Plog.is_mirror_region "l~1");
  check Alcotest.bool "primary is not a mirror" false
    (Onll_plog.Plog.is_mirror_region "l")

let test_mirrored_one_fence_per_append () =
  (* the tentpole invariant: both replica flushes drain under ONE fence *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 ~replicas:2 () in
  for i = 1 to 10 do
    P.append log (Printf.sprintf "entry-%d" i);
    check Alcotest.int "fences = appends despite 2 replicas" i
      (M.persistent_fences ())
  done

let test_mirrored_repairs_interior_rot () =
  (* same rot as the quarantine test, but the mirror holds an intact copy:
     recovery must restore the entry in place and lose NOTHING *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 ~replicas:2 () in
  P.append log "aaaaaaaa";
  P.append log "bbbbbbbb";
  P.append log "cccccccc";
  let primary =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l")
  in
  flip primary ~off:(88 + 16 + 3);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = P.recover log in
  check Alcotest.(list string) "nothing lost"
    [ "aaaaaaaa"; "bbbbbbbb"; "cccccccc" ] (P.entries log);
  check Alcotest.int "one entry repaired" 1 r.Onll_plog.Plog.repaired_entries;
  check Alcotest.int "nothing quarantined" 0
    r.Onll_plog.Plog.quarantined_spans;
  check Alcotest.int "no loss reported" 0 (Onll_plog.Plog.report_lost r);
  (* the repair was durable and byte-exact: a second recovery is clean *)
  let r2 = P.recover log in
  check Alcotest.int "idempotent: no re-repair" 0
    r2.Onll_plog.Plog.repaired_entries;
  check Alcotest.(list string) "stable"
    [ "aaaaaaaa"; "bbbbbbbb"; "cccccccc" ] (P.entries log)

let test_mirrored_tail_fault_disambiguated () =
  (* E12's tail ambiguity, resolved: a media fault on the LAST entry hits
     one replica, so the mirror proves it was a completed append and heals
     it — where the single-copy log had to truncate and shrug. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 ~replicas:2 () in
  P.append log "aaaaaaaa";
  P.append log "bbbbbbbb";
  P.append log "cccccccc";
  let primary =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l")
  in
  flip primary ~off:(112 + 16 + 3);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = P.recover log in
  check Alcotest.(list string) "tail entry healed, not truncated"
    [ "aaaaaaaa"; "bbbbbbbb"; "cccccccc" ] (P.entries log);
  check Alcotest.int "repaired" 1 r.Onll_plog.Plog.repaired_entries;
  check Alcotest.int "no torn tail" 0 r.Onll_plog.Plog.torn_tail_bytes

let test_mirrored_torn_append_tears_all_replicas () =
  (* the other side of the disambiguation: a genuinely torn append never
     completed its single fence, so NO replica holds a valid copy — the
     tail is truncated in all of them and nothing acknowledged is lost *)
  let sim =
    Sim.create ~max_processes:1
      ~crash_policy:Onll_nvm.Crash_policy.Persist_all ()
  in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 ~replicas:2 () in
  P.append log "good";
  let strategy =
    Sched.Strategy.script
      [ Sched.Strategy.Run_steps (0, 2); Sched.Strategy.Crash_here ]
  in
  let outcome =
    Sim.run sim strategy [| (fun _ -> P.append log "interrupted") |]
  in
  check Alcotest.bool "crashed" true (outcome = Sched.World.Crashed);
  let r = P.recover log in
  check Alcotest.(list string) "only the fenced entry" [ "good" ]
    (P.entries log);
  check Alcotest.int "no repair possible (no intact copy exists)" 0
    r.Onll_plog.Plog.repaired_entries

let test_mirrored_double_fault_quarantined () =
  (* a span corrupt in EVERY replica is genuine loss: quarantined and
     reported, with the entries beyond it still saved *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 ~replicas:2 () in
  P.append log "aaaaaaaa";
  P.append log "bbbbbbbb";
  P.append log "cccccccc";
  let primary =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l")
  in
  let mirror =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l~1")
  in
  flip primary ~off:(88 + 16 + 3);
  flip mirror ~off:(88 + 16 + 4);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = P.recover log in
  check Alcotest.(list string) "both-replica hit is lost, rest survives"
    [ "aaaaaaaa"; "cccccccc" ] (P.entries log);
  check Alcotest.int "quarantined" 1 r.Onll_plog.Plog.quarantined_spans;
  check Alcotest.int "reported as loss" 24 (Onll_plog.Plog.report_lost r)

let test_scrub_heals_divergence_online () =
  (* no crash at all: rot the primary while the log is live, scrub, and the
     divergence is gone before recovery ever sees it *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 ~replicas:2 () in
  P.append log "aaaaaaaa";
  P.append log "bbbbbbbb";
  P.append log "cccccccc";
  let primary =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l")
  in
  flip primary ~off:(88 + 16 + 3);
  let s = P.scrub log in
  check Alcotest.int "walked all live entries" 3
    s.Onll_plog.Plog.scrubbed_entries;
  check Alcotest.int "healed one" 1 s.Onll_plog.Plog.scrub_repaired_entries;
  check Alcotest.int "nothing unrepairable" 0
    s.Onll_plog.Plog.unrepairable_spans;
  (* idempotent: nothing left to do *)
  let s2 = P.scrub log in
  check Alcotest.int "second pass clean" 0
    s2.Onll_plog.Plog.scrub_repaired_entries;
  (* the log keeps working and a crash later finds nothing to repair *)
  P.append log "dddddddd";
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = P.recover log in
  check Alcotest.(list string) "all four entries"
    [ "aaaaaaaa"; "bbbbbbbb"; "cccccccc"; "dddddddd" ] (P.entries log);
  check Alcotest.int "recovery had nothing to heal" 0
    r.Onll_plog.Plog.repaired_entries

let test_scrub_quarantines_double_fault () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 ~replicas:2 () in
  P.append log "aaaaaaaa";
  P.append log "bbbbbbbb";
  P.append log "cccccccc";
  let primary =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l")
  in
  let mirror =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l~1")
  in
  flip primary ~off:(88 + 16 + 3);
  flip mirror ~off:(88 + 16 + 4);
  let s = P.scrub log in
  check Alcotest.int "unrepairable" 1 s.Onll_plog.Plog.unrepairable_spans;
  check Alcotest.(list string) "survivors still served"
    [ "aaaaaaaa"; "cccccccc" ] (P.entries log);
  (* the quarantine is durable: still stable after crash+recover *)
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = P.recover log in
  check Alcotest.(list string) "stable" [ "aaaaaaaa"; "cccccccc" ]
    (P.entries log);
  check Alcotest.int "nothing NEWLY quarantined" 0
    r.Onll_plog.Plog.quarantined_spans

let test_relocate_sources_from_intact_replica () =
  (* Regression: relocate used to bulk-copy the live span from the primary
     with no CRC check, then overwrite every replica and zero the old
     offsets — propagating a rotted primary record onto the mirror AND
     destroying the mirror's intact copy, converting a repairable
     single-replica fault into unrepairable loss. The copy must source
     each record from whichever replica's copy revalidates. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 ~replicas:2 () in
  P.append log "aaaaaaaa";
  P.append log "bbbbbbbb";
  P.append log "cccccccc";
  P.append log "dddddddd";
  P.set_head log 2;  (* live span: entries c, d at [112,160) *)
  let primary =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l")
  in
  (* rot a live payload byte on the primary ONLY, then compact *)
  flip primary ~off:(112 + 16 + 3);
  P.relocate log;
  check Alcotest.(list string) "rotted record restored from the mirror"
    [ "cccccccc"; "dddddddd" ] (P.entries log);
  check Alcotest.int "live span compacted to the front" 48 (P.used_bytes log);
  (* the relocated copy is durable, byte-identical across replicas and
     loss-free: a crash finds nothing to repair and nothing to report *)
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = P.recover log in
  check Alcotest.int "no loss" 0 (Onll_plog.Plog.report_lost r);
  check Alcotest.int "nothing left to repair" 0
    r.Onll_plog.Plog.repaired_entries;
  check Alcotest.(list string) "stable after recovery"
    [ "cccccccc"; "dddddddd" ] (P.entries log)

let test_relocate_quarantines_double_fault () =
  (* A live record corrupt in EVERY replica cannot be copied; relocate
     must quarantine it at the destination behind a skip marker — exactly
     what an in-place scrub would do — and keep the records beyond it. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 ~replicas:2 () in
  List.iter (P.append log)
    [ "aaaaaaaa"; "bbbbbbbb"; "cccccccc"; "dddddddd"; "eeeeeeee"; "ffffffff" ];
  P.set_head log 4;  (* live span: entries e, f at [160,208) *)
  let primary =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l")
  in
  let mirror =
    Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) "l~1")
  in
  flip primary ~off:(160 + 16 + 3);
  flip mirror ~off:(160 + 16 + 4);  (* entry e dead in both replicas *)
  P.relocate log;
  check Alcotest.(list string) "survivor beyond the double fault kept"
    [ "ffffffff" ] (P.entries log);
  (* the quarantine is already settled: scrub and recovery find nothing
     new to repair, quarantine or report *)
  let s = P.scrub log in
  check Alcotest.int "scrub: nothing unrepairable left" 0
    s.Onll_plog.Plog.unrepairable_spans;
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = P.recover log in
  check Alcotest.int "nothing NEWLY quarantined" 0
    r.Onll_plog.Plog.quarantined_spans;
  check Alcotest.(list string) "stable" [ "ffffffff" ] (P.entries log)

let test_multiple_logs_independent () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let l0 = P.create ~name:"l0" ~capacity:1024 () in
  let l1 = P.create ~name:"l1" ~capacity:1024 () in
  P.append l0 "zero";
  P.append l1 "one";
  check Alcotest.(list string) "log 0" [ "zero" ] (P.entries l0);
  check Alcotest.(list string) "log 1" [ "one" ] (P.entries l1)

let test_binary_payloads () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_plog.Plog.Make (M) in
  let log = P.create ~name:"l" ~capacity:4096 () in
  let payload = String.init 256 Char.chr in
  P.append log payload;
  check Alcotest.(list string) "binary-safe" [ payload ] (P.entries log)

(* Property: whatever single step the crash lands on, recovery yields a
   prefix of the appended entries; completed appends always survive. *)
let prop_recovery_is_prefix =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"crash anywhere -> recovered = prefix, fenced kept"
       ~count:150
       QCheck.(pair small_nat (int_bound 200))
       (fun (seed, crash_at) ->
         let policy =
           if seed mod 2 = 0 then Onll_nvm.Crash_policy.Drop_all
           else Onll_nvm.Crash_policy.Persist_all
         in
         let sim = Sim.create ~max_processes:1 ~crash_policy:policy () in
         let module M = (val Sim.machine sim) in
         let module P = Onll_plog.Plog.Make (M) in
         let log = P.create ~name:"l" ~capacity:65536 () in
         let completed = ref 0 in
         let all = List.init 8 (fun i -> Printf.sprintf "entry-%d-%d" seed i) in
         let strategy =
           Sched.Strategy.random_with_crash ~seed ~crash_at_step:crash_at
         in
         let proc _ =
           List.iter
             (fun e ->
               P.append log e;
               incr completed)
             all
         in
         ignore (Sim.run sim strategy [| proc |]);
         ignore (P.recover log);
         let recovered = P.entries log in
         let is_prefix =
           List.length recovered <= List.length all
           && List.for_all2
                (fun a b -> a = b)
                recovered
                (List.filteri (fun i _ -> i < List.length recovered) all)
         in
         is_prefix && List.length recovered >= !completed))

let () =
  Alcotest.run "plog"
    [
      ( "append",
        [
          Alcotest.test_case "roundtrip" `Quick test_append_entries_roundtrip;
          Alcotest.test_case "one fence per append" `Quick
            test_one_persistent_fence_per_append;
          Alcotest.test_case "durable across crash" `Quick
            test_append_durable_across_crash;
          Alcotest.test_case "binary payloads" `Quick test_binary_payloads;
          Alcotest.test_case "full raises" `Quick test_full_raises;
          Alcotest.test_case "empty payload" `Quick test_empty_payload_rejected;
          Alcotest.test_case "used/live bytes" `Quick test_used_and_live_bytes;
          Alcotest.test_case "independent logs" `Quick
            test_multiple_logs_independent;
        ] );
      ( "crash",
        [
          Alcotest.test_case "torn append rejected" `Quick
            test_torn_append_rejected;
          Alcotest.test_case "unfenced may survive (persist-all)" `Quick
            test_unfenced_append_may_survive_persist_all;
          Alcotest.test_case "unfenced lost (drop-all)" `Quick
            test_unfenced_append_lost_drop_all;
          prop_recovery_is_prefix;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "set_head compacts" `Quick test_set_head_compacts;
          Alcotest.test_case "head durable" `Quick
            test_set_head_durable_across_crash;
          Alcotest.test_case "zero and errors" `Quick
            test_set_head_zero_noop_and_errors;
          Alcotest.test_case "drop all entries" `Quick test_set_head_all_entries;
          Alcotest.test_case "torn header harmless" `Quick
            test_crash_during_set_head_keeps_a_valid_header;
          Alcotest.test_case "newer header wins (persist-all)" `Quick
            test_crash_during_set_head_newer_header_wins;
        ] );
      ( "mirror",
        [
          Alcotest.test_case "roundtrip + region names" `Quick
            test_mirrored_roundtrip;
          Alcotest.test_case "one fence per mirrored append" `Quick
            test_mirrored_one_fence_per_append;
          Alcotest.test_case "interior rot repaired from mirror" `Quick
            test_mirrored_repairs_interior_rot;
          Alcotest.test_case "tail fault disambiguated and healed" `Quick
            test_mirrored_tail_fault_disambiguated;
          Alcotest.test_case "torn append tears all replicas" `Quick
            test_mirrored_torn_append_tears_all_replicas;
          Alcotest.test_case "double fault quarantined" `Quick
            test_mirrored_double_fault_quarantined;
          Alcotest.test_case "scrub heals divergence online" `Quick
            test_scrub_heals_divergence_online;
          Alcotest.test_case "scrub quarantines double fault" `Quick
            test_scrub_quarantines_double_fault;
          Alcotest.test_case "relocate sources from intact replica" `Quick
            test_relocate_sources_from_intact_replica;
          Alcotest.test_case "relocate quarantines double fault" `Quick
            test_relocate_quarantines_double_fault;
        ] );
      ( "salvage",
        [
          Alcotest.test_case "interior corruption quarantined" `Quick
            test_salvage_quarantines_interior_corruption;
          Alcotest.test_case "corrupt tail truncated" `Quick
            test_salvage_truncates_corrupt_tail;
          Alcotest.test_case "unhardened silently truncates" `Quick
            test_unhardened_recover_silently_truncates;
        ] );
    ]
