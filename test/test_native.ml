(** Native-machine tests: the same functorised ONLL code running on real
    OCaml 5 domains with [Atomic] shared variables and emulated fence cost.
    These validate that the construction is race-free under true parallelism
    (return values form a permutation, final states are exact) — crash
    testing stays on the simulator. *)

open Onll_machine
module Cs = Onll_specs.Counter

let check = Alcotest.check
let n_domains = max 2 (min 4 (Domain.recommended_domain_count () - 1))

let test_parallel_increments () =
  let native = Native.create ~max_processes:(n_domains + 1) ~fence_ns:0 () in
  let module M = (val Native.machine native) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 20) } in
  ignore (Native.register native)  (* the main domain reads at the end *);
  let per_domain = 200 in
  let bodies =
    List.init n_domains (fun _ ->
        fun _ ->
          List.init per_domain (fun _ -> C.update obj Cs.Increment))
  in
  let results = List.concat (Native.run_workers native bodies) in
  let expected = List.init (n_domains * per_domain) (fun i -> i + 1) in
  check
    Alcotest.(list int)
    "increments are a permutation of 1..n" expected
    (List.sort compare results);
  check Alcotest.int "final value" (n_domains * per_domain)
    (C.read obj Cs.Get);
  check Alcotest.int "one persistent fence per update"
    (n_domains * per_domain)
    (M.persistent_fences ())

let test_parallel_mixed_reads () =
  let native = Native.create ~max_processes:(n_domains + 1) ~fence_ns:0 () in
  let module M = (val Native.machine native) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 20); local_views = true } in
  ignore (Native.register native);
  let per_domain = 100 in
  let monotone =
    Native.run_workers native
      (List.init n_domains (fun _ ->
           fun _ ->
             let last = ref (-1) in
             let ok = ref true in
             for _ = 1 to per_domain do
               ignore (C.update obj Cs.Increment);
               let v = C.read obj Cs.Get in
               if v < !last then ok := false;
               last := v
             done;
             !ok))
  in
  check Alcotest.bool "per-domain reads monotone" true
    (List.for_all Fun.id monotone);
  check Alcotest.int "final value" (n_domains * per_domain)
    (C.read obj Cs.Get)

let test_parallel_queue_fifo_per_producer () =
  let native = Native.create ~max_processes:n_domains ~fence_ns:0 () in
  let module M = (val Native.machine native) in
  let module C = Onll_core.Onll.Make (M) (Onll_specs.Queue_spec) in
  let obj = C.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 20) } in
  let per_domain = 50 in
  (* each producer enqueues p*1000, p*1000+1, ... — per-producer order must
     be preserved in the final queue (FIFO + linearizability) *)
  ignore
    (Native.run_workers native
       (List.init n_domains (fun _ ->
            fun p ->
              for k = 0 to per_domain - 1 do
                ignore
                  (C.update obj (Onll_specs.Queue_spec.Enqueue ((p * 1000) + k)))
              done)));
  let contents = Onll_specs.Queue_spec.to_list (C.current_state obj) in
  check Alcotest.int "all enqueued" (n_domains * per_domain)
    (List.length contents);
  for p = 0 to n_domains - 1 do
    let mine = List.filter (fun x -> x / 1000 = p) contents in
    check
      Alcotest.(list int)
      (Printf.sprintf "producer %d order preserved" p)
      (List.init per_domain (fun k -> (p * 1000) + k))
      mine
  done

let test_native_fence_cost_slows_updates () =
  (* Sanity for the cost model: the same workload takes measurably longer
     with a large fence cost than with none. *)
  let time_with fence_ns =
    let native = Native.create ~max_processes:1 ~fence_ns () in
    let module M = (val Native.machine native) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 20) } in
    ignore (Native.register native);
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 300 do
      ignore (C.update obj Cs.Increment)
    done;
    Unix.gettimeofday () -. t0
  in
  let fast = time_with 0 in
  let slow = time_with 100_000 (* 100µs per fence: 30ms total minimum *) in
  check Alcotest.bool
    (Printf.sprintf "fenced run slower (%.4fs vs %.4fs)" slow fast)
    true (slow > fast)

let test_parallel_wait_free_increments () =
  (* the Kogan–Petrank trace under true parallelism *)
  let native = Native.create ~max_processes:(n_domains + 1) ~fence_ns:0 () in
  let module M = (val Native.machine native) in
  let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 22) } in
  ignore (Native.register native);
  let per_domain = 100 in
  let results =
    List.concat
      (Native.run_workers native
         (List.init n_domains (fun _ ->
              fun _ ->
                List.init per_domain (fun _ -> C.update obj Cs.Increment))))
  in
  check
    Alcotest.(list int)
    "wait-free: permutation"
    (List.init (n_domains * per_domain) (fun i -> i + 1))
    (List.sort compare results);
  check Alcotest.int "one fence per update" (n_domains * per_domain)
    (M.persistent_fences ())

let test_parallel_queue_conservation () =
  (* producers and consumers racing on a native ONLL queue: everything
     dequeued was enqueued, exactly once, and the leftovers account for the
     difference *)
  let native = Native.create ~max_processes:(n_domains + 1) ~fence_ns:0 () in
  let module M = (val Native.machine native) in
  let module C = Onll_core.Onll.Make (M) (Onll_specs.Queue_spec) in
  let obj = C.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 22); local_views = true } in
  ignore (Native.register native);
  let producers = n_domains / 2 and consumers = n_domains - (n_domains / 2) in
  let per = 80 in
  let outs =
    Native.run_workers native
      (List.init producers (fun i ->
           fun _ ->
             for k = 0 to per - 1 do
               ignore (C.update obj (Onll_specs.Queue_spec.Enqueue ((i * 1000) + k)))
             done;
             [])
      @ List.init consumers (fun _ ->
            fun _ ->
              List.filter_map
                (fun _ ->
                  match C.update obj Onll_specs.Queue_spec.Dequeue with
                  | Onll_specs.Queue_spec.Taken v -> v
                  | _ -> None)
                (List.init per Fun.id)))
  in
  let taken = List.concat outs in
  let leftover = Onll_specs.Queue_spec.to_list (C.current_state obj) in
  let enqueued = producers * per in
  check Alcotest.int "conservation" enqueued
    (List.length taken + List.length leftover);
  check Alcotest.int "no duplicates" enqueued
    (List.length (List.sort_uniq compare (taken @ leftover)))

let test_native_detectable_ids () =
  let native = Native.create ~max_processes:2 ~fence_ns:0 () in
  let module M = (val Native.machine native) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let ids =
    Native.run_workers native
      (List.init 2 (fun _ ->
           fun _ -> fst (C.update_with_id obj Cs.Increment)))
  in
  check Alcotest.int "distinct ids" 2
    (List.length (List.sort_uniq compare ids))

let () =
  Alcotest.run "native"
    [
      ( "parallel",
        [
          Alcotest.test_case "increments permutation" `Quick
            test_parallel_increments;
          Alcotest.test_case "mixed reads monotone" `Quick
            test_parallel_mixed_reads;
          Alcotest.test_case "queue per-producer fifo" `Quick
            test_parallel_queue_fifo_per_producer;
          Alcotest.test_case "wait-free increments" `Quick
            test_parallel_wait_free_increments;
          Alcotest.test_case "queue conservation" `Quick
            test_parallel_queue_conservation;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "fence cost slows updates" `Slow
            test_native_fence_cost_slows_updates;
        ] );
      ( "detectability",
        [ Alcotest.test_case "ids distinct" `Quick test_native_detectable_ids ]
      );
    ]
