open Onll_nvm

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let mem ?(line_size = 64) ?(mp = 4) () = Memory.create ~line_size ~max_processes:mp ()

let region ?line_size ?mp ?(size = 1024) () =
  let m = mem ?line_size ?mp () in
  (m, Memory.region m ~name:"r" ~size)

(* {1 Construction and bounds} *)

let test_create_validation () =
  Alcotest.check_raises "line_size < 1"
    (Invalid_argument "Memory.create: line_size < 1") (fun () ->
      ignore (Memory.create ~line_size:0 ~max_processes:1 ()));
  Alcotest.check_raises "max_processes < 1"
    (Invalid_argument "Memory.create: max_processes < 1") (fun () ->
      ignore (Memory.create ~max_processes:0 ()))

let test_region_validation () =
  let m = mem () in
  Alcotest.check_raises "non-positive size"
    (Invalid_argument "Memory.region: non-positive size") (fun () ->
      ignore (Memory.region m ~name:"x" ~size:0));
  let _ = Memory.region m ~name:"dup" ~size:8 in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Memory.region: duplicate region \"dup\"") (fun () ->
      ignore (Memory.region m ~name:"dup" ~size:8))

let test_bounds_checks () =
  let _, r = region ~size:16 () in
  Alcotest.check_raises "store out of bounds"
    (Invalid_argument
       "Region.store: [10, 20) out of bounds for \"r\" (size 16)") (fun () ->
      Memory.Region.store r ~proc:0 ~off:10 "0123456789");
  Alcotest.check_raises "load out of bounds"
    (Invalid_argument "Region.load: [-1, 3) out of bounds for \"r\" (size 16)")
    (fun () -> ignore (Memory.Region.load r ~proc:0 ~off:(-1) ~len:4))

let test_bad_proc () =
  let _, r = region ~mp:2 () in
  Alcotest.check_raises "process id out of range"
    (Invalid_argument "Memory: process id 2 out of range") (fun () ->
      Memory.Region.store r ~proc:2 ~off:0 "x")

let test_find_region () =
  let m = mem () in
  let r = Memory.region m ~name:"abc" ~size:8 in
  (* physical equality: regions contain a back-pointer to the memory system,
     so structural comparison would chase the cycle *)
  check Alcotest.bool "found" true
    (match Memory.find_region m "abc" with Some r' -> r' == r | None -> false);
  check Alcotest.bool "absent" true
    (Option.is_none (Memory.find_region m "zzz"))

(* {1 Cache semantics} *)

let test_store_load_through_cache () =
  let _, r = region () in
  Memory.Region.store r ~proc:0 ~off:10 "hello";
  check Alcotest.string "load sees store" "hello"
    (Memory.Region.load r ~proc:1 ~off:10 ~len:5)

let test_store_not_durable_without_fence () =
  let _, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "hello";
  let snap = Memory.Region.durable_snapshot r in
  check Alcotest.string "NVM still zero" (String.make 5 '\000')
    (String.sub snap 0 5)

let test_flush_alone_not_durable () =
  let _, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "hello";
  Memory.Region.flush r ~proc:0 ~off:0 ~len:5;
  let snap = Memory.Region.durable_snapshot r in
  check Alcotest.string "NVM still zero after flush" (String.make 5 '\000')
    (String.sub snap 0 5)

let test_flush_fence_durable () =
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "hello";
  Memory.Region.flush r ~proc:0 ~off:0 ~len:5;
  Memory.fence m ~proc:0;
  check Alcotest.string "durable" "hello"
    (String.sub (Memory.Region.durable_snapshot r) 0 5)

let test_store_after_flush_keeps_snapshot () =
  (* clwb semantics: the write-back carries the value at flush time; a later
     store re-dirties the line and is not covered by the fence. *)
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "aaaa";
  Memory.Region.flush r ~proc:0 ~off:0 ~len:4;
  Memory.Region.store r ~proc:0 ~off:0 "bbbb";
  Memory.fence m ~proc:0;
  check Alcotest.string "fence persists the flushed value" "aaaa"
    (String.sub (Memory.Region.durable_snapshot r) 0 4);
  check Alcotest.string "cache still sees the newer value" "bbbb"
    (Memory.Region.load r ~proc:0 ~off:0 ~len:4);
  check Alcotest.bool "line still dirty" true
    (Memory.Region.dirty_lines r <> [])

let test_fence_cleans_lines () =
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "x";
  check Alcotest.(list int) "dirty before" [ 0 ] (Memory.Region.dirty_lines r);
  Memory.Region.flush r ~proc:0 ~off:0 ~len:1;
  Memory.fence m ~proc:0;
  check Alcotest.(list int) "clean after" [] (Memory.Region.dirty_lines r)

let test_cross_line_store () =
  let m, r = region ~line_size:8 ~size:64 () in
  let data = "0123456789abcdef" in
  Memory.Region.store r ~proc:0 ~off:4 data;
  check Alcotest.string "read back across lines" data
    (Memory.Region.load r ~proc:0 ~off:4 ~len:16);
  check Alcotest.(list int) "three dirty lines" [ 0; 1; 2 ]
    (Memory.Region.dirty_lines r);
  Memory.Region.flush r ~proc:0 ~off:4 ~len:16;
  Memory.fence m ~proc:0;
  check Alcotest.string "durable across lines" data
    (String.sub (Memory.Region.durable_snapshot r) 4 16)

let test_partial_flush_range () =
  let m, r = region ~line_size:8 ~size:64 () in
  Memory.Region.store r ~proc:0 ~off:0 "AAAAAAAA";
  Memory.Region.store r ~proc:0 ~off:16 "BBBBBBBB";
  (* Flush only the first line. *)
  Memory.Region.flush r ~proc:0 ~off:0 ~len:8;
  Memory.fence m ~proc:0;
  let snap = Memory.Region.durable_snapshot r in
  check Alcotest.string "flushed line durable" "AAAAAAAA" (String.sub snap 0 8);
  check Alcotest.string "unflushed line not durable" (String.make 8 '\000')
    (String.sub snap 16 8)

let test_int64_accessors () =
  let m, r = region () in
  Memory.Region.store_int64 r ~proc:0 ~off:8 0x1122334455667788L;
  check Alcotest.int64 "int64 roundtrip" 0x1122334455667788L
    (Memory.Region.load_int64 r ~proc:0 ~off:8);
  Memory.Region.flush r ~proc:0 ~off:8 ~len:8;
  Memory.fence m ~proc:0;
  check Alcotest.int64 "durable int64" 0x1122334455667788L
    (Memory.Region.load_int64 r ~proc:1 ~off:8)

(* {1 Fences and per-process pending sets} *)

let test_fence_without_pending_is_cheap () =
  let m, _ = region () in
  Memory.fence m ~proc:0;
  let s = Memory.stats m in
  check Alcotest.int "fences" 1 s.Memory.Stats.fences;
  check Alcotest.int "persistent fences" 0 s.Memory.Stats.persistent_fences

let test_pending_is_per_process () =
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "x";
  Memory.Region.flush r ~proc:0 ~off:0 ~len:1;
  check Alcotest.int "proc 0 pending" 1 (Memory.pending_write_backs m ~proc:0);
  check Alcotest.int "proc 1 not pending" 0
    (Memory.pending_write_backs m ~proc:1);
  (* proc 1's fence does not drain proc 0's write-backs *)
  Memory.fence m ~proc:1;
  check Alcotest.string "still not durable" "\000"
    (String.sub (Memory.Region.durable_snapshot r) 0 1);
  Memory.fence m ~proc:0;
  check Alcotest.string "durable after owner's fence" "x"
    (String.sub (Memory.Region.durable_snapshot r) 0 1)

let test_per_proc_fence_attribution () =
  let m, r = region () in
  Memory.Region.store r ~proc:2 ~off:0 "y";
  Memory.Region.flush r ~proc:2 ~off:0 ~len:1;
  Memory.fence m ~proc:2;
  check Alcotest.int "proc 2 credited" 1 (Memory.persistent_fences_by m ~proc:2);
  check Alcotest.int "proc 0 not credited" 0
    (Memory.persistent_fences_by m ~proc:0)

let test_flush_clean_line_is_noop () =
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "z";
  Memory.Region.flush r ~proc:0 ~off:0 ~len:1;
  Memory.fence m ~proc:0;
  (* Line is now clean; flushing it again must not create pending work. *)
  Memory.Region.flush r ~proc:0 ~off:0 ~len:1;
  check Alcotest.int "no pending for clean line" 0
    (Memory.pending_write_backs m ~proc:0);
  Memory.fence m ~proc:0;
  let s = Memory.stats m in
  check Alcotest.int "second fence not persistent" 1
    s.Memory.Stats.persistent_fences

(* {1 Crash policies} *)

let test_crash_drop_all () =
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "keep";
  Memory.Region.flush r ~proc:0 ~off:0 ~len:4;
  Memory.fence m ~proc:0;
  Memory.Region.store r ~proc:0 ~off:8 "lost";
  Memory.Region.store r ~proc:1 ~off:16 "gone";
  Memory.Region.flush r ~proc:1 ~off:16 ~len:4;  (* flushed, not fenced *)
  Memory.crash m ~policy:Crash_policy.Drop_all;
  let snap = Memory.Region.durable_snapshot r in
  check Alcotest.string "fenced survives" "keep" (String.sub snap 0 4);
  check Alcotest.string "unflushed dropped" (String.make 4 '\000')
    (String.sub snap 8 4);
  check Alcotest.string "unfenced dropped" (String.make 4 '\000')
    (String.sub snap 16 4);
  check Alcotest.(list int) "cache empty after crash" []
    (Memory.Region.dirty_lines r);
  check Alcotest.string "loads read durable state" "keep"
    (Memory.Region.load r ~proc:0 ~off:0 ~len:4)

let test_crash_persist_all () =
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "aaaa";
  Memory.Region.store r ~proc:1 ~off:8 "bbbb";
  Memory.crash m ~policy:Crash_policy.Persist_all;
  let snap = Memory.Region.durable_snapshot r in
  check Alcotest.string "dirty line evicted-persisted" "aaaa"
    (String.sub snap 0 4);
  check Alcotest.string "other dirty line too" "bbbb" (String.sub snap 8 4)

let test_crash_random_is_seeded () =
  let run seed =
    let m, r = region ~line_size:8 ~size:1024 () in
    for i = 0 to 15 do
      Memory.Region.store r ~proc:0 ~off:(i * 8) "DDDDDDDD"
    done;
    Memory.crash m ~policy:(Crash_policy.Random seed);
    Memory.Region.durable_snapshot r
  in
  check Alcotest.string "same seed, same surviving lines" (run 42) (run 42);
  (* With 16 lines the chance of two different seeds agreeing is 2^-16-ish;
     this specific pair differs. *)
  check Alcotest.bool "different seeds differ" true (run 1 <> run 2)

let test_crash_preserves_stats_counts_crashes () =
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "x";
  Memory.Region.flush r ~proc:0 ~off:0 ~len:1;
  Memory.fence m ~proc:0;
  Memory.crash m ~policy:Crash_policy.Drop_all;
  let s = Memory.stats m in
  check Alcotest.int "persistent fences kept" 1 s.Memory.Stats.persistent_fences;
  check Alcotest.int "crash counted" 1 s.Memory.Stats.crashes

let test_crash_clears_pending () =
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "x";
  Memory.Region.flush r ~proc:0 ~off:0 ~len:1;
  Memory.crash m ~policy:Crash_policy.Drop_all;
  check Alcotest.int "pending cleared" 0 (Memory.pending_write_backs m ~proc:0);
  (* A fence after the crash must not resurrect the write-back. *)
  Memory.fence m ~proc:0;
  check Alcotest.string "still not durable" "\000"
    (String.sub (Memory.Region.durable_snapshot r) 0 1)

(* {1 Durable images} *)

let test_image_roundtrip () =
  let path = Filename.temp_file "onll" ".img" in
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "durable!";
  Memory.Region.flush r ~proc:0 ~off:0 ~len:8;
  Memory.fence m ~proc:0;
  Memory.save_image m ~path;
  (* restore into a brand-new memory system with the same layout *)
  let m2 = mem () in
  let r2 = Memory.region m2 ~name:"r" ~size:1024 in
  Memory.load_image m2 ~path;
  check Alcotest.string "bytes restored" "durable!"
    (Memory.Region.load r2 ~proc:0 ~off:0 ~len:8);
  Sys.remove path

let test_image_save_is_crash_atomic () =
  (* save_image writes a temp file, fsyncs it and renames over the
     target: overwriting an existing (even corrupt) image either fully
     replaces it or leaves it untouched, and never strands the temp *)
  let path = Filename.temp_file "onll" ".img" in
  let oc = open_out_bin path in
  output_string oc "garbage that a torn overwrite must never expose";
  close_out oc;
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "replaced";
  Memory.Region.flush r ~proc:0 ~off:0 ~len:8;
  Memory.fence m ~proc:0;
  Memory.save_image m ~path;
  check Alcotest.bool "no temp file left behind" false
    (Sys.file_exists (path ^ ".tmp"));
  let m2 = mem () in
  let r2 = Memory.region m2 ~name:"r" ~size:1024 in
  Memory.load_image m2 ~path;
  check Alcotest.string "old image fully replaced" "replaced"
    (Memory.Region.load r2 ~proc:0 ~off:0 ~len:8);
  Sys.remove path;
  (* a failing save must not touch the target or strand its temp *)
  let missing = Filename.concat path "nope/img" in
  (match Memory.save_image m ~path:missing with
  | () -> Alcotest.fail "save into a missing directory succeeded"
  | exception Sys_error _ -> ());
  check Alcotest.bool "failed save leaves no temp" false
    (Sys.file_exists (missing ^ ".tmp"))

let test_image_excludes_cache () =
  (* only durable bytes are captured: an unfenced store must not leak into
     the image *)
  let path = Filename.temp_file "onll" ".img" in
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "volatile";
  Memory.save_image m ~path;
  let m2 = mem () in
  let r2 = Memory.region m2 ~name:"r" ~size:1024 in
  Memory.load_image m2 ~path;
  check Alcotest.string "cache content absent" (String.make 8 '\000')
    (Memory.Region.load r2 ~proc:0 ~off:0 ~len:8);
  Sys.remove path

let test_image_checksum_rejected () =
  let path = Filename.temp_file "onll" ".img" in
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "x";
  Memory.Region.flush r ~proc:0 ~off:0 ~len:1;
  Memory.fence m ~proc:0;
  Memory.save_image m ~path;
  (* flip one payload byte *)
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string raw in
  let pos = Bytes.length b - 1 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  let m2 = mem () in
  let _ = Memory.region m2 ~name:"r" ~size:1024 in
  check Alcotest.bool "corrupt image rejected" true
    (match Memory.load_image m2 ~path with
    | exception Invalid_argument _ -> true
    | () -> false);
  Sys.remove path

let test_image_missing_region_rejected () =
  let path = Filename.temp_file "onll" ".img" in
  let m, _ = region () in
  Memory.save_image m ~path;
  let m2 = mem () in
  (* no regions allocated in m2 *)
  check Alcotest.bool "unknown region rejected" true
    (match Memory.load_image m2 ~path with
    | exception Invalid_argument _ -> true
    | () -> false);
  Sys.remove path

let test_region_names () =
  let m = mem () in
  let _ = Memory.region m ~name:"b" ~size:8 in
  let _ = Memory.region m ~name:"a" ~size:8 in
  check Alcotest.(list string) "sorted names" [ "a"; "b" ]
    (Memory.region_names m)

(* {1 Statistics} *)

let test_stats_counting () =
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "a";
  Memory.Region.store r ~proc:0 ~off:1 "b";
  ignore (Memory.Region.load r ~proc:0 ~off:0 ~len:2);
  Memory.Region.flush r ~proc:0 ~off:0 ~len:2;
  Memory.fence m ~proc:0;
  let s = Memory.stats m in
  check Alcotest.int "stores" 2 s.Memory.Stats.stores;
  check Alcotest.int "loads" 1 s.Memory.Stats.loads;
  check Alcotest.int "flushes (1 line)" 1 s.Memory.Stats.flushes;
  check Alcotest.int "fences" 1 s.Memory.Stats.fences;
  check Alcotest.int "persistent" 1 s.Memory.Stats.persistent_fences

let test_stats_sub_and_reset () =
  let m, r = region () in
  Memory.Region.store r ~proc:0 ~off:0 "a";
  let before = Memory.stats m in
  Memory.Region.store r ~proc:0 ~off:1 "b";
  let diff = Memory.Stats.sub (Memory.stats m) before in
  check Alcotest.int "window stores" 1 diff.Memory.Stats.stores;
  Memory.reset_stats m;
  check Alcotest.int "reset" 0 (Memory.stats m).Memory.Stats.stores;
  check Alcotest.int "per-proc reset" 0 (Memory.persistent_fences_by m ~proc:0)

(* {1 Properties} *)

let prop_fenced_data_survives_any_policy =
  qcheck
    (QCheck.Test.make ~name:"fenced writes survive every crash policy"
       ~count:100
       QCheck.(pair small_nat (string_of_size Gen.(1 -- 100)))
       (fun (seed, data) ->
         List.for_all
           (fun policy ->
             let m = Memory.create ~line_size:16 ~max_processes:2 () in
             let r = Memory.region m ~name:"r" ~size:256 in
             let data = String.sub data 0 (min (String.length data) 100) in
             Memory.Region.store r ~proc:0 ~off:3 data;
             Memory.Region.flush r ~proc:0 ~off:3 ~len:(String.length data);
             Memory.fence m ~proc:0;
             Memory.crash m ~policy;
             String.sub (Memory.Region.durable_snapshot r) 3
               (String.length data)
             = data)
           [
             Crash_policy.Drop_all;
             Crash_policy.Persist_all;
             Crash_policy.Random seed;
           ]))

let prop_load_equals_last_store =
  qcheck
    (QCheck.Test.make ~name:"load returns the last store (volatile view)"
       ~count:100
       QCheck.(small_list (pair (int_bound 200) (string_of_size Gen.(1 -- 20))))
       (fun writes ->
         let m = Memory.create ~max_processes:1 () in
         let r = Memory.region m ~name:"r" ~size:256 in
         let mirror = Bytes.make 256 '\000' in
         List.iter
           (fun (off, data) ->
             let len = min (String.length data) (256 - off) in
             let data = String.sub data 0 len in
             if len > 0 then begin
               Memory.Region.store r ~proc:0 ~off data;
               Bytes.blit_string data 0 mirror off len
             end)
           writes;
         Memory.Region.load r ~proc:0 ~off:0 ~len:256
         = Bytes.to_string mirror))

let () =
  Alcotest.run "nvm"
    [
      ( "construction",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "region validation" `Quick test_region_validation;
          Alcotest.test_case "bounds checks" `Quick test_bounds_checks;
          Alcotest.test_case "bad proc" `Quick test_bad_proc;
          Alcotest.test_case "find region" `Quick test_find_region;
        ] );
      ( "cache",
        [
          Alcotest.test_case "store/load through cache" `Quick
            test_store_load_through_cache;
          Alcotest.test_case "store not durable" `Quick
            test_store_not_durable_without_fence;
          Alcotest.test_case "flush alone not durable" `Quick
            test_flush_alone_not_durable;
          Alcotest.test_case "flush+fence durable" `Quick
            test_flush_fence_durable;
          Alcotest.test_case "store after flush" `Quick
            test_store_after_flush_keeps_snapshot;
          Alcotest.test_case "fence cleans lines" `Quick
            test_fence_cleans_lines;
          Alcotest.test_case "cross-line store" `Quick test_cross_line_store;
          Alcotest.test_case "partial flush range" `Quick
            test_partial_flush_range;
          Alcotest.test_case "int64 accessors" `Quick test_int64_accessors;
        ] );
      ( "fences",
        [
          Alcotest.test_case "fence without pending" `Quick
            test_fence_without_pending_is_cheap;
          Alcotest.test_case "pending per process" `Quick
            test_pending_is_per_process;
          Alcotest.test_case "per-proc attribution" `Quick
            test_per_proc_fence_attribution;
          Alcotest.test_case "flush clean line" `Quick
            test_flush_clean_line_is_noop;
        ] );
      ( "crash",
        [
          Alcotest.test_case "drop-all" `Quick test_crash_drop_all;
          Alcotest.test_case "persist-all" `Quick test_crash_persist_all;
          Alcotest.test_case "random seeded" `Quick test_crash_random_is_seeded;
          Alcotest.test_case "stats preserved" `Quick
            test_crash_preserves_stats_counts_crashes;
          Alcotest.test_case "pending cleared" `Quick test_crash_clears_pending;
        ] );
      ( "images",
        [
          Alcotest.test_case "roundtrip" `Quick test_image_roundtrip;
          Alcotest.test_case "crash-atomic save" `Quick
            test_image_save_is_crash_atomic;
          Alcotest.test_case "excludes cache" `Quick test_image_excludes_cache;
          Alcotest.test_case "checksum" `Quick test_image_checksum_rejected;
          Alcotest.test_case "missing region" `Quick
            test_image_missing_region_rejected;
          Alcotest.test_case "region names" `Quick test_region_names;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counting" `Quick test_stats_counting;
          Alcotest.test_case "sub and reset" `Quick test_stats_sub_and_reset;
        ] );
      ( "properties",
        [ prop_fenced_data_survives_any_policy; prop_load_equals_last_store ]
      );
    ]
