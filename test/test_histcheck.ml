module Cs = Onll_specs.Counter
module H = Onll_histcheck.Histcheck.Make (Onll_specs.Counter)
module Hq = Onll_histcheck.Histcheck.Make (Onll_specs.Queue_spec)

let check = Alcotest.check

let ok = function
  | H.Durably_linearizable _ -> true
  | H.Violation _ | H.Budget_exhausted -> false

let okq = function
  | Hq.Durably_linearizable _ -> true
  | Hq.Violation _ | Hq.Budget_exhausted -> false

let inv ?(proc = 0) uid kind = H.Invoke { uid; proc; kind }
let ret uid value = H.Return { uid; value }
let upd = H.Update Cs.Increment
let get = H.Read Cs.Get

(* {1 Crash-free linearizability} *)

let test_empty_history () =
  check Alcotest.bool "empty ok" true (ok (H.check []))

let test_sequential_ok () =
  let h = [ inv 0 upd; ret 0 1; inv 1 upd; ret 1 2; inv 2 get; ret 2 2 ] in
  check Alcotest.bool "sequential" true (ok (H.check h))

let test_wrong_value_rejected () =
  let h = [ inv 0 upd; ret 0 2 ] in
  check Alcotest.bool "wrong increment result" false (ok (H.check h))

let test_stale_read_rejected () =
  (* A read that starts after an increment completed cannot see 0. *)
  let h = [ inv 0 upd; ret 0 1; inv 1 get; ret 1 0 ] in
  check Alcotest.bool "stale read" false (ok (H.check h))

let test_concurrent_read_may_see_either () =
  (* A read overlapping an increment may return 0 or 1. *)
  let before = [ inv 0 upd; inv 1 ~proc:1 get; ret 1 0; ret 0 1 ] in
  let after = [ inv 0 upd; inv 1 ~proc:1 get; ret 1 1; ret 0 1 ] in
  check Alcotest.bool "sees old" true (ok (H.check before));
  check Alcotest.bool "sees new" true (ok (H.check after));
  let impossible = [ inv 0 upd; inv 1 ~proc:1 get; ret 1 2; ret 0 1 ] in
  check Alcotest.bool "sees the future" false (ok (H.check impossible))

let test_concurrent_updates_any_order () =
  (* Two overlapping increments: return values 1,2 in either assignment. *)
  let h v0 v1 =
    [ inv 0 upd; inv 1 ~proc:1 upd; ret 0 v0; ret 1 v1 ]
  in
  check Alcotest.bool "p0 first" true (ok (H.check (h 1 2)));
  check Alcotest.bool "p1 first" true (ok (H.check (h 2 1)));
  check Alcotest.bool "both 1 impossible" false (ok (H.check (h 1 1)))

let test_precedence_enforced () =
  (* Sequential increments by the same process must linearize in order:
     returning 2 then 1 is impossible. *)
  let h = [ inv 0 upd; ret 0 2; inv 1 upd; ret 1 1 ] in
  check Alcotest.bool "order violation" false (ok (H.check h))

let test_pending_op_optional () =
  (* An invocation with no response may or may not take effect. *)
  let dropped = [ inv 0 upd; inv 1 ~proc:1 get; ret 1 0 ] in
  let applied = [ inv 0 upd; inv 1 ~proc:1 get; ret 1 1 ] in
  check Alcotest.bool "dropped" true (ok (H.check dropped));
  check Alcotest.bool "applied" true (ok (H.check applied))

(* {1 Crashes (durable linearizability)} *)

let test_completed_op_must_survive_crash () =
  let h = [ inv 0 upd; ret 0 1; H.Crash; inv 1 get; ret 1 0 ] in
  check Alcotest.bool "erased completed op" false (ok (H.check h));
  let h' = [ inv 0 upd; ret 0 1; H.Crash; inv 1 get; ret 1 1 ] in
  check Alcotest.bool "surviving op" true (ok (H.check h'))

let test_pending_at_crash_either_way () =
  let h v = [ inv 0 upd; H.Crash; inv 1 get; ret 1 v ] in
  check Alcotest.bool "lost" true (ok (H.check (h 0)));
  check Alcotest.bool "kept" true (ok (H.check (h 1)));
  check Alcotest.bool "duplicated" false (ok (H.check (h 2)))

let test_consistent_cut_enforced () =
  (* p0's first op completed; its second is pending at the crash. Observing
     value 1 is fine (second dropped), 2 is fine (second kept), but a
     post-crash read of 0 erases a completed op. *)
  let h v =
    [ inv 0 upd; ret 0 1; inv 1 upd; H.Crash; inv 2 get; ret 2 v ]
  in
  check Alcotest.bool "drop pending" true (ok (H.check (h 1)));
  check Alcotest.bool "keep pending" true (ok (H.check (h 2)));
  check Alcotest.bool "erase completed" false (ok (H.check (h 0)))

let test_multi_era () =
  let h =
    [
      inv 0 upd; ret 0 1; H.Crash;
      inv 1 upd; ret 1 2; H.Crash;
      inv 2 get; ret 2 2;
    ]
  in
  check Alcotest.bool "three eras" true (ok (H.check h))

let test_cross_era_order () =
  (* An operation from era 2 cannot linearize before one from era 1: a
     counter that reads 1 in era 1 and then 1 again after another completed
     increment is wrong. *)
  let h =
    [
      inv 0 upd; ret 0 1; H.Crash;
      inv 1 upd; ret 1 1;  (* must be 2: era-1 op is fixed *)
    ]
  in
  check Alcotest.bool "cross-era violation" false (ok (H.check h))

(* {1 Queue histories (value-rich)} *)

let test_queue_fifo_violation_detected () =
  let open Onll_specs.Queue_spec in
  let h =
    [
      Hq.Invoke { uid = 0; proc = 0; kind = Hq.Update (Enqueue 1) };
      Hq.Return { uid = 0; value = Nothing };
      Hq.Invoke { uid = 1; proc = 0; kind = Hq.Update (Enqueue 2) };
      Hq.Return { uid = 1; value = Nothing };
      Hq.Invoke { uid = 2; proc = 0; kind = Hq.Update Dequeue };
      Hq.Return { uid = 2; value = Taken (Some 2) };  (* must be 1 *)
    ]
  in
  check Alcotest.bool "fifo violation" false (okq (Hq.check h))

let test_queue_concurrent_enqueues () =
  let open Onll_specs.Queue_spec in
  (* two concurrent enqueues; a later dequeue may return either element *)
  let h first =
    [
      Hq.Invoke { uid = 0; proc = 0; kind = Hq.Update (Enqueue 1) };
      Hq.Invoke { uid = 1; proc = 1; kind = Hq.Update (Enqueue 2) };
      Hq.Return { uid = 0; value = Nothing };
      Hq.Return { uid = 1; value = Nothing };
      Hq.Invoke { uid = 2; proc = 0; kind = Hq.Update Dequeue };
      Hq.Return { uid = 2; value = Taken (Some first) };
    ]
  in
  check Alcotest.bool "1 first" true (okq (Hq.check (h 1)));
  check Alcotest.bool "2 first" true (okq (Hq.check (h 2)));
  check Alcotest.bool "3 impossible" false (okq (Hq.check (h 3)))

(* {1 Buffered durable linearizability (E20)} *)

let bok = function
  | H.Buffered_linearizable _ -> true
  | H.Buffered_violation _ | H.Buffered_budget_exhausted -> false

let test_buffered_k_bounded_loss_accepted () =
  (* Two acknowledged increments vanish at the crash: the strict checker
     rejects, the buffered one accepts within the staleness budget and
     names the lost suffix. *)
  let h v =
    [ inv 0 upd; ret 0 1; inv 1 upd; ret 1 2; H.Crash; inv 2 get; ret 2 v ]
  in
  check Alcotest.bool "strict rejects" false (ok (H.check (h 0)));
  check Alcotest.bool "k=2 accepts" true
    (bok (H.check_buffered ~staleness:2 (h 0)));
  (match H.check_buffered ~staleness:2 (h 0) with
  | H.Buffered_linearizable { lost; _ } ->
      check Alcotest.(list int) "lost suffix" [ 0; 1 ] lost
  | _ -> Alcotest.fail "expected buffered success");
  (* losing only the newest ack needs staleness 1 *)
  check Alcotest.bool "suffix of 1" true
    (bok (H.check_buffered ~staleness:1 (h 1)));
  (* staleness 0 degenerates to the strict checker *)
  check Alcotest.bool "k=0 is strict" false
    (bok (H.check_buffered ~staleness:0 (h 0)))

let test_buffered_depth_k_plus_1_rejected () =
  let h =
    [
      inv 0 upd; ret 0 1; inv 1 upd; ret 1 2; inv 2 upd; ret 2 3;
      H.Crash; inv 3 get; ret 3 0;
    ]
  in
  check Alcotest.bool "3 lost under k=2" false
    (bok (H.check_buffered ~staleness:2 h));
  check Alcotest.bool "3 lost under k=3" true
    (bok (H.check_buffered ~staleness:3 h))

let test_buffered_lost_op_invisible_post_recovery () =
  (* declared_lost pins the cut to the recovery report: a post-recovery
     read must not see a declared-lost op, and the lost set must be a
     suffix — declaring the *first* of two sequential acks lost is an
     interior hole, rejected no matter what the read returns. *)
  let h v =
    [ inv 0 upd; ret 0 1; inv 1 upd; ret 1 2; H.Crash; inv 2 get; ret 2 v ]
  in
  check Alcotest.bool "declared suffix, clean read" true
    (bok (H.check_buffered ~staleness:2 ~declared_lost:[ 1 ] (h 1)));
  check Alcotest.bool "post-recovery read of a lost op" false
    (bok (H.check_buffered ~staleness:2 ~declared_lost:[ 1 ] (h 2)));
  check Alcotest.bool "interior loss" false
    (bok (H.check_buffered ~staleness:2 ~declared_lost:[ 0 ] (h 1)));
  (* an impostor report that declares nothing lost while the state lost
     an ack is equally a violation *)
  check Alcotest.bool "undeclared loss" false
    (bok (H.check_buffered ~staleness:2 ~declared_lost:[] (h 1)))

let test_buffered_no_resurrection () =
  (* An op lost at the first crash stays lost: reappearing after a second
     crash is rejected. *)
  let h v2 =
    [
      inv 0 upd; ret 0 1; H.Crash;
      inv 1 get; ret 1 0; H.Crash;
      inv 2 get; ret 2 v2;
    ]
  in
  check Alcotest.bool "stays lost" true
    (bok (H.check_buffered ~staleness:1 (h 0)));
  check Alcotest.bool "resurrection" false
    (bok (H.check_buffered ~staleness:1 (h 1)))

(* {1 Witness and malformed input} *)

let test_witness_is_a_valid_order () =
  let h = [ inv 0 upd; ret 0 1; inv 1 upd; ret 1 2 ] in
  match H.check h with
  | H.Durably_linearizable w -> check Alcotest.(list int) "order" [ 0; 1 ] w
  | H.Violation _ | H.Budget_exhausted -> Alcotest.fail "expected success"

let test_malformed_histories_rejected () =
  let bad1 = [ ret 0 1 ] in
  let bad2 = [ inv 0 upd; inv 1 upd ] (* same process, two pending *) in
  let raises h =
    match H.check h with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check Alcotest.bool "return without invoke" true (raises bad1);
  check Alcotest.bool "two pending per proc" true (raises bad2)

let test_budget () =
  (* Six concurrent increments whose recorded values force the reverse
     linearization order: the witness needs more search states than the
     tiny budget allows. *)
  let n = 6 in
  let h =
    List.init n (fun p -> inv p ~proc:p upd)
    @ List.init n (fun p -> ret p (n - p))
  in
  match H.check ~max_states:3 h with
  | H.Budget_exhausted -> ()
  | H.Durably_linearizable _ | H.Violation _ ->
      Alcotest.fail "expected budget exhaustion"

(* {1 Witness validation: the searcher and the validator cross-check} *)

let test_witness_validates () =
  let h =
    [ inv 0 upd; ret 0 1; inv 1 ~proc:1 upd; inv 2 ~proc:2 get;
      ret 2 1; ret 1 2 ]
  in
  match H.check h with
  | H.Durably_linearizable w ->
      check Alcotest.bool "witness validates" true
        (H.validate_witness h w = Ok ());
      (* a shuffled witness that breaks precedence must be rejected *)
      let broken = List.rev w in
      check Alcotest.bool "reversed witness rejected" true
        (H.validate_witness h broken <> Ok ())
  | _ -> Alcotest.fail "expected success"

let test_witness_rejects_missing_complete_op () =
  let h = [ inv 0 upd; ret 0 1; inv 1 upd; ret 1 2 ] in
  check Alcotest.bool "dropping a completed op rejected" true
    (H.validate_witness h [ 0 ] <> Ok ());
  check Alcotest.bool "duplicate rejected" true
    (H.validate_witness h [ 0; 0; 1 ] <> Ok ());
  check Alcotest.bool "foreign uid rejected" true
    (H.validate_witness h [ 0; 1; 9 ] <> Ok ())

let prop_checker_witnesses_always_validate =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"every positive verdict's witness validates"
       ~count:120 QCheck.small_nat (fun seed ->
         let rng = Onll_util.Splitmix.create seed in
         (* random small concurrent histories of increments and reads over
            2 processes, with possible pending tails and one crash *)
         let events = ref [] in
         let uid = ref 0 in
         let pending = Array.make 2 None in
         for _ = 1 to 10 do
           let p = Onll_util.Splitmix.int rng 2 in
           match pending.(p) with
           | Some (u, is_upd) when Onll_util.Splitmix.bool rng ->
               (* close it with a random (often wrong) value *)
               let v = Onll_util.Splitmix.int rng 4 in
               ignore is_upd;
               events := H.Return { uid = u; value = v } :: !events;
               pending.(p) <- None
           | _ ->
               if pending.(p) = None then begin
                 let u = !uid in
                 incr uid;
                 let is_upd = Onll_util.Splitmix.bool rng in
                 let kind = if is_upd then upd else get in
                 events := H.Invoke { uid = u; proc = p; kind } :: !events;
                 pending.(p) <- Some (u, is_upd)
               end
         done;
         let h = List.rev !events in
         match H.check h with
         | H.Durably_linearizable w -> H.validate_witness h w = Ok ()
         | H.Violation _ | H.Budget_exhausted -> true))

(* {1 Recorder} *)

let test_recorder_roundtrip () =
  let r = H.Recorder.create () in
  let u = H.Recorder.invoke r ~proc:0 upd in
  H.Recorder.return_ r u 1;
  H.Recorder.crash r;
  let g = H.Recorder.invoke r ~proc:1 get in
  H.Recorder.return_ r g 1;
  let h = H.Recorder.history r in
  check Alcotest.int "5 events" 5 (List.length h);
  check Alcotest.bool "checks out" true (ok (H.check h))

let test_recorder_run_helpers () =
  let r = H.Recorder.create () in
  let v =
    H.Recorder.run_update r ~proc:0 Cs.Increment (fun _op -> 1)
  in
  check Alcotest.int "value passed through" 1 v;
  let v = H.Recorder.run_read r ~proc:0 Cs.Get (fun _ -> 1) in
  check Alcotest.int "read value" 1 v;
  check Alcotest.bool "history valid" true (ok (H.check (H.Recorder.history r)))

let () =
  Alcotest.run "histcheck"
    [
      ( "linearizability",
        [
          Alcotest.test_case "empty" `Quick test_empty_history;
          Alcotest.test_case "sequential" `Quick test_sequential_ok;
          Alcotest.test_case "wrong value" `Quick test_wrong_value_rejected;
          Alcotest.test_case "stale read" `Quick test_stale_read_rejected;
          Alcotest.test_case "concurrent read" `Quick
            test_concurrent_read_may_see_either;
          Alcotest.test_case "concurrent updates" `Quick
            test_concurrent_updates_any_order;
          Alcotest.test_case "precedence" `Quick test_precedence_enforced;
          Alcotest.test_case "pending optional" `Quick test_pending_op_optional;
        ] );
      ( "durability",
        [
          Alcotest.test_case "completed survives" `Quick
            test_completed_op_must_survive_crash;
          Alcotest.test_case "pending either way" `Quick
            test_pending_at_crash_either_way;
          Alcotest.test_case "consistent cut" `Quick
            test_consistent_cut_enforced;
          Alcotest.test_case "multi era" `Quick test_multi_era;
          Alcotest.test_case "cross-era order" `Quick test_cross_era_order;
        ] );
      ( "queue",
        [
          Alcotest.test_case "fifo violation" `Quick
            test_queue_fifo_violation_detected;
          Alcotest.test_case "concurrent enqueues" `Quick
            test_queue_concurrent_enqueues;
        ] );
      ( "buffered",
        [
          Alcotest.test_case "k-bounded loss accepted" `Quick
            test_buffered_k_bounded_loss_accepted;
          Alcotest.test_case "depth k+1 rejected" `Quick
            test_buffered_depth_k_plus_1_rejected;
          Alcotest.test_case "lost op invisible after recovery" `Quick
            test_buffered_lost_op_invisible_post_recovery;
          Alcotest.test_case "no resurrection" `Quick
            test_buffered_no_resurrection;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "witness" `Quick test_witness_is_a_valid_order;
          Alcotest.test_case "malformed" `Quick
            test_malformed_histories_rejected;
          Alcotest.test_case "budget" `Quick test_budget;
        ] );
      ( "witness",
        [
          Alcotest.test_case "validates" `Quick test_witness_validates;
          Alcotest.test_case "rejects bad witnesses" `Quick
            test_witness_rejects_missing_complete_op;
          prop_checker_witnesses_always_validate;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "roundtrip" `Quick test_recorder_roundtrip;
          Alcotest.test_case "run helpers" `Quick test_recorder_run_helpers;
        ] );
    ]
