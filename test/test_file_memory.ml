(* File_memory / File_machine (E17): real files, real fsync fences.

   What must hold on real media, with the write-backs deferred to the
   fence: fenced data survives close-and-reopen, unfenced data does not
   (it lived only in the process heap); a fence with nothing pending is
   not persistent and does no fsync; the §2.1 constructions (Plog,
   counter, mirroring, sessions) run unchanged over the file machine and
   recover from what the files actually hold; fsync EIO is retried with
   full re-writes (fsyncgate) within the budget and degrades sticky
   fail-stop past it — never acking an update whose fence failed. *)

module Fmem = Onll_nvm.File_memory
module Fm = Onll_machine.File_machine
module Faults = Onll_faults.Faults
module Cs = Onll_specs.Counter

let check = Alcotest.check

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "onll-tfm-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir d 0o755;
    d

(* {1 Durability across reopen} *)

let test_fenced_survives_reopen () =
  let dir = fresh_dir () in
  let fm = Fmem.create ~dir ~max_processes:1 () in
  let r = Fmem.region fm ~name:"data" ~size:1024 in
  Fmem.Region.store r ~proc:0 ~off:0 "fenced!!";
  Fmem.Region.flush r ~proc:0 ~off:0 ~len:8;
  Fmem.fence fm ~proc:0;
  Fmem.Region.store r ~proc:0 ~off:512 "unfenced";
  Fmem.Region.flush r ~proc:0 ~off:512 ~len:8;
  (* flushed but never fenced: the write-back never ran *)
  Fmem.close fm;
  let fm2 = Fmem.create ~dir ~max_processes:1 () in
  let r2 = Fmem.region fm2 ~name:"data" ~size:1024 in
  check Alcotest.string "fenced data survived" "fenced!!"
    (Fmem.Region.load r2 ~proc:0 ~off:0 ~len:8);
  check Alcotest.string "unfenced data lost" (String.make 8 '\000')
    (Fmem.Region.load r2 ~proc:0 ~off:512 ~len:8);
  Fmem.close fm2

let test_store_without_flush_not_durable () =
  let dir = fresh_dir () in
  let fm = Fmem.create ~dir ~max_processes:1 () in
  let r = Fmem.region fm ~name:"data" ~size:512 in
  Fmem.Region.store r ~proc:0 ~off:0 "cached##";
  Fmem.fence fm ~proc:0;
  (* stored but never flushed: the fence had nothing pending *)
  check Alcotest.string "volatile view sees it" "cached##"
    (Fmem.Region.load r ~proc:0 ~off:0 ~len:8);
  check Alcotest.string "durable view does not" (String.make 8 '\000')
    (String.sub (Fmem.Region.durable_snapshot r) 0 8);
  Fmem.close fm

let test_empty_fence_no_fsync () =
  let dir = fresh_dir () in
  let fm = Fmem.create ~dir ~max_processes:1 () in
  let r = Fmem.region fm ~name:"data" ~size:512 in
  Fmem.Region.store r ~proc:0 ~off:0 "x";
  Fmem.Region.flush r ~proc:0 ~off:0 ~len:1;
  Fmem.fence fm ~proc:0;
  let s1 = Fmem.stats fm in
  Fmem.fence fm ~proc:0;
  Fmem.fence fm ~proc:0;
  let s2 = Fmem.stats fm in
  check Alcotest.int "no fsync for empty fences" s1.Fmem.Stats.fsyncs
    s2.Fmem.Stats.fsyncs;
  check Alcotest.int "not persistent fences" s1.Fmem.Stats.persistent_fences
    s2.Fmem.Stats.persistent_fences;
  check Alcotest.int "still ordinary fences"
    (s1.Fmem.Stats.fences + 2)
    s2.Fmem.Stats.fences;
  Fmem.close fm

let test_region_reopen_size_mismatch () =
  let dir = fresh_dir () in
  let fm = Fmem.create ~dir ~max_processes:1 () in
  ignore (Fmem.region fm ~name:"data" ~size:1024);
  Fmem.close fm;
  let fm2 = Fmem.create ~dir ~max_processes:1 () in
  Alcotest.check_raises "size mismatch rejected"
    (Invalid_argument
       "File_memory.region: \"data\" exists with size 1024, expected 4096")
    (fun () -> ignore (Fmem.region fm2 ~name:"data" ~size:4096));
  Fmem.close fm2

(* {1 The constructions, unchanged, on files} *)

let counter_epoch ~dir ~replicas ~updates =
  let fmach = Fm.create ~dir ~max_processes:1 () in
  ignore (Fm.register fmach);
  let module M = (val Fm.machine fmach) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj =
    C.make { Onll_core.Onll.Config.default with log_capacity = 8192; replicas }
  in
  let report = C.recover_report obj in
  let v0 = C.read obj Cs.Get in
  for _ = 1 to updates do
    ignore (C.update obj Cs.Increment)
  done;
  let v = C.read obj Cs.Get in
  Fm.close fmach;
  (report, v0, v)

let test_counter_recovers_across_processes_lifetimes () =
  let dir = fresh_dir () in
  let _, v0, v = counter_epoch ~dir ~replicas:1 ~updates:5 in
  check Alcotest.int "fresh store starts at 0" 0 v0;
  check Alcotest.int "five updates" 5 v;
  let _, v0', v' = counter_epoch ~dir ~replicas:1 ~updates:3 in
  check Alcotest.int "reopened store recovered 5" 5 v0';
  check Alcotest.int "three more" 8 v'

let test_mirrored_counter_on_two_files () =
  let dir = fresh_dir () in
  let _, _, v = counter_epoch ~dir ~replicas:2 ~updates:4 in
  check Alcotest.int "mirrored updates" 4 v;
  (* two files per log: the primary and its mirror *)
  let files = Sys.readdir dir in
  Array.sort compare files;
  check Alcotest.bool "mirror region file exists" true
    (Array.exists
       (fun f -> Onll_plog.Plog.is_mirror_region f)
       files);
  let _, v0', _ = counter_epoch ~dir ~replicas:2 ~updates:0 in
  check Alcotest.int "mirrored store recovered" 4 v0'

(* {1 fsync failure: bounded retry, then sticky fail-stop} *)

let test_eio_within_budget_retried () =
  let dir = fresh_dir () in
  let fm = Fmem.create ~dir ~max_processes:1 ~retry_budget:8 ~backoff_ns:0 () in
  let h =
    Faults.install_file fm
      {
        Faults.File_plan.none with
        fsync_eio_from = 1;
        fsync_eio_count = 3;
        drop_pages_on_eio = true;
      }
  in
  let r = Fmem.region fm ~name:"data" ~size:512 in
  Fmem.Region.store r ~proc:0 ~off:0 "survive!";
  Fmem.Region.flush r ~proc:0 ~off:0 ~len:8;
  Fmem.fence fm ~proc:0;
  let c = Faults.file_counters h in
  check Alcotest.int "three EIOs injected" 3 c.Faults.f_eio_injected;
  check Alcotest.bool "retries recorded" true
    ((Fmem.stats fm).Fmem.Stats.fsync_retries >= 3);
  check Alcotest.bool "not degraded" false (Fmem.degraded fm);
  Faults.remove_file h;
  Fmem.close fm;
  (* fsyncgate check: the EIO'd attempts reverted their writes, but the
     final successful attempt re-wrote everything — durable on reopen *)
  let fm2 = Fmem.create ~dir ~max_processes:1 () in
  let r2 = Fmem.region fm2 ~name:"data" ~size:512 in
  check Alcotest.string "data durable after retried EIO" "survive!"
    (Fmem.Region.load r2 ~proc:0 ~off:0 ~len:8);
  Fmem.close fm2

let test_eio_past_budget_sticky_degraded () =
  let dir = fresh_dir () in
  let fm = Fmem.create ~dir ~max_processes:1 ~retry_budget:3 ~backoff_ns:0 () in
  let h =
    Faults.install_file fm
      {
        Faults.File_plan.none with
        fsync_eio_from = 1;
        fsync_eio_count = 1000;
        drop_pages_on_eio = true;
      }
  in
  let r = Fmem.region fm ~name:"data" ~size:512 in
  Fmem.Region.store r ~proc:0 ~off:0 "doomed##";
  Fmem.Region.flush r ~proc:0 ~off:0 ~len:8;
  (match Fmem.fence fm ~proc:0 with
  | () -> Alcotest.fail "fence succeeded under unbounded EIO"
  | exception Fmem.Degraded _ -> ());
  check Alcotest.bool "sticky flag up" true (Fmem.degraded fm);
  (* every later fence fails too, even with nothing pending: fail-stop *)
  (match Fmem.fence fm ~proc:0 with
  | () -> Alcotest.fail "post-degradation fence succeeded"
  | exception Fmem.Degraded _ -> ());
  (* and the page-dropped data never reached the file *)
  check Alcotest.string "dropped pages not durable" (String.make 8 '\000')
    (String.sub (Fmem.Region.durable_snapshot r) 0 8);
  Faults.remove_file h;
  Fmem.close fm

let test_short_writes_healed_by_retry () =
  let dir = fresh_dir () in
  let fm = Fmem.create ~dir ~max_processes:1 ~retry_budget:64 ~backoff_ns:0 () in
  let h =
    Faults.install_file fm
      {
        Faults.File_plan.none with
        base = { Faults.Plan.none with seed = 7 };
        (* 4 dirty sectors at p=0.25: each write-back attempt survives
           with p ~ 0.32, so 64 attempts heal with near certainty (and
           deterministically, for this seed) *)
        short_write_prob = 0.25;
      }
  in
  let r = Fmem.region fm ~name:"data" ~size:2048 in
  for i = 0 to 3 do
    Fmem.Region.store r ~proc:0 ~off:(i * 512) (Printf.sprintf "sector%02d" i);
    Fmem.Region.flush r ~proc:0 ~off:(i * 512) ~len:8
  done;
  Fmem.fence fm ~proc:0;
  let c = Faults.file_counters h in
  check Alcotest.bool "short writes injected" true (c.Faults.f_short_writes > 0);
  Faults.remove_file h;
  Fmem.close fm;
  let fm2 = Fmem.create ~dir ~max_processes:1 () in
  let r2 = Fmem.region fm2 ~name:"data" ~size:2048 in
  for i = 0 to 3 do
    check Alcotest.string
      (Printf.sprintf "sector %d durable despite torn writes" i)
      (Printf.sprintf "sector%02d" i)
      (Fmem.Region.load r2 ~proc:0 ~off:(i * 512) ~len:8)
  done;
  Fmem.close fm2

(* {1 Exactly-once sessions over crash-restarts (in-process slice)} *)

let test_session_exactly_once_restart_grid () =
  let module Fc = Test_support.File_chaos in
  List.iter
    (fun replicas ->
      let t =
        {
          Fc.t_scenarios = 0;
          t_epochs = 0;
          t_kills = 0;
          t_acks = 0;
          t_confirmed = 0;
          t_adopted = 0;
          t_reacked = 0;
          t_violations = 0;
        }
      in
      for seed = 0 to 3 do
        Fc.run_restart_scenario ~replicas ~target:5 ~seed t
      done;
      check Alcotest.int
        (Printf.sprintf "replicas=%d: zero violations" replicas)
        0 t.Fc.t_violations;
      check Alcotest.bool
        (Printf.sprintf "replicas=%d: kills actually fired" replicas)
        true (t.Fc.t_kills > 0))
    [ 1; 2 ]

let () =
  Alcotest.run "file_memory"
    [
      ( "durability",
        [
          Alcotest.test_case "fenced survives reopen" `Quick
            test_fenced_survives_reopen;
          Alcotest.test_case "store without flush volatile" `Quick
            test_store_without_flush_not_durable;
          Alcotest.test_case "empty fence no fsync" `Quick
            test_empty_fence_no_fsync;
          Alcotest.test_case "reopen size mismatch" `Quick
            test_region_reopen_size_mismatch;
        ] );
      ( "constructions",
        [
          Alcotest.test_case "counter across lifetimes" `Quick
            test_counter_recovers_across_processes_lifetimes;
          Alcotest.test_case "mirrored on two files" `Quick
            test_mirrored_counter_on_two_files;
        ] );
      ( "fsync failure",
        [
          Alcotest.test_case "EIO within budget retried" `Quick
            test_eio_within_budget_retried;
          Alcotest.test_case "EIO past budget sticky" `Quick
            test_eio_past_budget_sticky_degraded;
          Alcotest.test_case "short writes healed" `Quick
            test_short_writes_healed_by_retry;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "exactly-once restart grid" `Quick
            test_session_exactly_once_restart_grid;
        ] );
    ]
