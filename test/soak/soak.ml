(* One-off soak: heavier than the committed suites. *)
open Test_support
let () =
  (* 1. 500-seed crash fuzz on ONLL counter, all policies, pct+random, wf on/off *)
  let module F = Fuzz.Make (Onll_specs.Counter) in
  let failures = ref 0 in
  for seed = 1 to 500 do
    let plan = { Fuzz.default_plan with
                 seed;
                 n_procs = 4; ops_per_proc = 4;
                 crash_at = Some (5 + (seed * 31) mod 250);
                 use_pct = seed mod 2 = 0;
                 wait_free = seed mod 3 = 0;
                 local_views = seed mod 5 = 0;
                 policy = (match seed mod 3 with
                           | 0 -> Onll_nvm.Crash_policy.Persist_all
                           | 1 -> Onll_nvm.Crash_policy.Drop_all
                           | _ -> Onll_nvm.Crash_policy.Random seed) } in
    let r = F.run ~plan ~gen_update:Gen.Counter.update ~gen_read:Gen.Counter.read () in
    if r.Fuzz.failures <> [] || not r.Fuzz.verdict_ok then begin
      incr failures;
      Printf.printf "SEED %d FAILED\n" seed;
      List.iter print_endline r.Fuzz.failures;
      Option.iter print_endline r.Fuzz.verdict
    end
  done;
  Printf.printf "counter soak: 500 runs, %d failures\n%!" !failures;
  (* 2. ledger 300 seeds *)
  let module FL = Fuzz.Make (Onll_specs.Ledger) in
  let lf = ref 0 in
  for seed = 1 to 300 do
    let plan = { Fuzz.default_plan with seed; n_procs = 3; ops_per_proc = 4;
                 crash_at = Some (8 + (seed * 17) mod 200);
                 wait_free = seed mod 4 = 0;
                 policy = Onll_nvm.Crash_policy.Random seed } in
    let r = FL.run ~plan ~gen_update:Gen.Ledger.update ~gen_read:Gen.Ledger.read () in
    if r.Fuzz.failures <> [] || not r.Fuzz.verdict_ok then incr lf
  done;
  Printf.printf "ledger soak: 300 runs, %d failures\n%!" !lf;
  (* 3. exhaustive wf 2x2 with crashes *)
  let module E = Onll_explore.Explore in
  let mk () =
    let sim = Onll_machine.Sim.create ~max_processes:2 () in
    let module M = (val Onll_machine.Sim.machine sim) in
    let module C = Onll_core.Onll.Make_wait_free (M) (Onll_specs.Counter) in
    let obj = C.make { Onll_core.Onll.Config.default with log_capacity = 8192 } in
    let completed = ref 0 in
    let procs = Array.init 2 (fun _ -> fun _ ->
      for k = 0 to 1 do
        ignore (C.update_detectable obj ~seq:k Onll_specs.Counter.Increment);
        incr completed
      done) in
    (sim, procs, fun outcome ->
      match outcome with
      | Onll_sched.Sched.World.Completed ->
          assert (C.read obj Onll_specs.Counter.Get = 4)
      | Onll_sched.Sched.World.Crashed ->
          C.recover obj;
          let v = C.read obj Onll_specs.Counter.Get in
          assert (v >= !completed && v <= 4);
          let lin = ref 0 in
          for p = 0 to 1 do for k = 0 to 1 do
            if C.was_linearized obj { Onll_core.Onll.id_proc = p; id_seq = k }
            then incr lin done done;
          assert (v = !lin)
      | _ -> assert false)
  in
  let stats = E.run ~max_preemptions:1 ~with_crashes:true ~max_runs:400_000 ~mk () in
  Format.printf "wf exhaustive 2x2+crashes: %a@." E.pp_stats stats;
  assert (not stats.E.truncated);
  print_endline "SOAK CLEAN"
