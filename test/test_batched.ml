(* The E16 group-commit construction (Onll_batched): concurrent updates
   combined into one batch made durable under a SINGLE shared persistent
   fence. Semantics must be indistinguishable from the unbatched
   construction — including detectability across crashes landing at every
   point of the batch protocol — while the fence cost amortises below one
   per update under concurrency and degenerates to exactly one solo
   (Thm 6.3: no construction beats 1 pf/update without concurrency to
   share it with). *)

open Onll_machine
module Cs = Onll_specs.Counter

let check = Alcotest.check

let cfg ?(log_capacity = 1 lsl 16) ?(replicas = 1)
    ?(sink = Onll_obs.Sink.null) () =
  { Onll_core.Onll.Config.default with log_capacity; replicas; sink }

(* {1 Amortisation: the whole point of group commit} *)

(* Round-robin, 4 submitters: every process announces its request before
   the first one wins the combiner lock, so batches fill and the shared
   fence is split 4 ways. The per-process attribution (leader pays the
   fence, waiters pay nothing) is what the amortised metric measures. *)
let test_combining_amortizes_fences () =
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim = Sim.create ~sink ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_batched.Make (M) (Cs) in
  let obj = C.make (cfg ~sink ()) in
  let body _ =
    for _ = 1 to 8 do
      ignore (C.update obj Cs.Increment)
    done;
    ignore (C.read obj Cs.Get)
  in
  (match
     Sim.run sim Onll_sched.Sched.Strategy.round_robin (Array.make 4 body)
   with
  | Onll_sched.Sched.World.Completed -> ()
  | _ -> Alcotest.fail "workload did not complete");
  let v = Onll_obs.Metrics.counter_value registry in
  check Alcotest.int "all updates applied" 32 (C.read obj Cs.Get);
  check Alcotest.int "every update counted" 32 (v "ops.update");
  check Alcotest.bool "some fences were paid" true (v "fences.update" > 0);
  check Alcotest.bool
    (Printf.sprintf "amortised below 1/2 pf/update (%d fences / 32 updates)"
       (v "fences.update"))
    true
    (2 * v "fences.update" < v "ops.update");
  check Alcotest.int "reads cost no fence" 0 (v "fences.read");
  (* The dedicated counters agree with the object's own bookkeeping. *)
  let batches, batched_ops = C.batch_stats obj in
  check Alcotest.int "fences.batched = batch count" batches
    (v "fences.batched");
  check Alcotest.int "every update rode a batch" 32 batched_ops;
  check Alcotest.bool "batches actually combined" true
    ((C.snapshot obj).Onll_core.Onll.Snapshot.max_fuzzy_window >= 2)

(* Solo, the construction degenerates to the unbatched bound: nobody to
   share the fence with, so exactly one pf per update — never zero. *)
let test_solo_degenerates_to_one_fence_per_update () =
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_batched.Make (M) (Cs) in
  let obj = C.make (cfg ~sink ()) in
  let body _ = for _ = 1 to 10 do ignore (C.update obj Cs.Increment) done in
  ignore (Sim.run sim Onll_sched.Sched.Strategy.round_robin [| body |]);
  let v = Onll_obs.Metrics.counter_value registry in
  check Alcotest.int "10 updates" 10 (v "ops.update");
  check Alcotest.int "exactly 1 pf/update solo" 10 (v "fences.update");
  check
    Alcotest.(pair int int)
    "10 singleton batches" (10, 10) (C.batch_stats obj);
  check Alcotest.int "occupancy never exceeded 1" 1
    (C.snapshot obj).Onll_core.Onll.Snapshot.max_fuzzy_window

(* {1 Detectable execution semantics} *)

let test_seq_reuse_rejected_before_effect () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_batched.Make (M) (Cs) in
  let obj = C.make (cfg ()) in
  let body _ =
    ignore (C.update_detectable obj ~seq:0 Cs.Increment);
    (match C.update_detectable obj ~seq:0 Cs.Increment with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "sequence reuse accepted");
    (* the rejected call took no effect — not announced, not applied *)
    check Alcotest.int "state unchanged by the rejected call" 1
      (C.read obj Cs.Get);
    ignore (C.update_detectable obj ~seq:5 Cs.Increment);
    (* seq allocation advanced past the explicit jump *)
    match C.update_detectable obj ~seq:3 Cs.Increment with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "stale sequence accepted after a jump"
  in
  ignore (Sim.run sim Onll_sched.Sched.Strategy.round_robin [| body |]);
  check Alcotest.int "two updates landed" 2 (C.read obj Cs.Get);
  check Alcotest.bool "seq 0 linearized" true
    (C.was_linearized obj { Onll_core.Onll.id_proc = 0; id_seq = 0 });
  check Alcotest.bool "seq 5 linearized" true
    (C.was_linearized obj { Onll_core.Onll.id_proc = 0; id_seq = 5 });
  check Alcotest.bool "seq 3 never executed" false
    (C.was_linearized obj { Onll_core.Onll.id_proc = 0; id_seq = 3 })

(* {1 Crash at every step of the batch protocol (the PR's acceptance
   sweep)} *)

(* Drive 3 concurrent submitters into shared batches and crash at every
   scheduler step in turn. Whatever the crash cuts — announce, combine,
   the shared fence, watermark publication, acknowledgement — recovery
   must satisfy:

   - {b no partial acks}: every acknowledged update is recovered, exactly
     once (a crash before the batch fence must lose the whole unfenced
     tail-batch, and since nothing in it was acknowledged, that loss is
     invisible here);
   - {b all-or-nothing batches}: the adopted history is gapless — a torn
     batch record fails its CRC frame whole, so no prefix of a batch is
     ever adopted (no gaps, no drops, no disagreements on clean media);
   - {b idempotence}: re-recovery adopts the identical history;
   - {b consistency}: the recovered state is exactly the fold of the
     recovered history;
   - {b liveness}: the recovered object completes a post-crash era.

   Across the sweep both crash windows must actually occur: some run
   loses an unacknowledged tail (crash before the fence), some run
   recovers an update that was durable but never acknowledged (crash
   after the fence, before the ack) — otherwise the sweep never
   exercised the protocol it claims to. *)
let crash_sweep ~replicas () =
  let saw_tail_lost = ref false in
  let saw_unacked_recovered = ref false in
  let crashed_runs = ref 0 in
  for crash_at = 2 to 90 do
    let sim =
      Sim.create ~max_processes:3
        ~crash_policy:Onll_nvm.Crash_policy.Drop_all ()
    in
    let module M = (val Sim.machine sim) in
    let module C = Onll_batched.Make (M) (Cs) in
    let obj = C.make (cfg ~replicas ()) in
    let invoked = ref [] in
    let completed = ref [] in
    let body p _ =
      for seq = 0 to 2 do
        let id = { Onll_core.Onll.id_proc = p; id_seq = seq } in
        invoked := id :: !invoked;
        ignore (C.update_detectable obj ~seq Cs.Increment);
        completed := id :: !completed
      done
    in
    let outcome =
      Sim.run sim
        (Onll_sched.Sched.Strategy.random_with_crash ~seed:crash_at
           ~crash_at_step:crash_at)
        (Array.init 3 (fun p -> body p))
    in
    if outcome = Onll_sched.Sched.World.Crashed then begin
      incr crashed_runs;
      let r = C.recover_report obj in
      let fail_at fmt =
        Format.kasprintf
          (fun s -> Alcotest.failf "crash at step %d: %s" crash_at s)
          fmt
      in
      (* all-or-nothing: clean media, so the adopted history is gapless *)
      if r.Onll_core.Onll.Recovery_report.gap_indices <> [] then
        fail_at "recovery found gaps — a batch was adopted partially";
      if r.Onll_core.Onll.Recovery_report.dropped <> [] then
        fail_at "recovery dropped operations on clean media";
      if r.Onll_core.Onll.Recovery_report.disagreements <> [] then
        fail_at "recovery found disagreements on clean media";
      if r.Onll_core.Onll.Recovery_report.decode_failures <> 0 then
        fail_at "undecodable record on clean media";
      let ops = C.recovered_ops obj in
      (* no partial acks: acknowledged => recovered exactly once *)
      List.iter
        (fun id ->
          if not (C.was_linearized obj id) then
            fail_at "acknowledged update %a lost" Onll_core.Onll.pp_op_id id;
          match
            List.length (List.filter (fun (id', _) -> id' = id) ops)
          with
          | 1 -> ()
          | n ->
              fail_at "acknowledged update %a recovered %d times"
                Onll_core.Onll.pp_op_id id n)
        !completed;
      (* idempotence *)
      ignore (C.recover_report obj);
      if C.recovered_ops obj <> ops then fail_at "re-recovery disagreed";
      (* consistency: counter state = number of recovered increments *)
      check Alcotest.int
        (Printf.sprintf "crash at step %d: state is the recovered fold"
           crash_at)
        (List.length ops) (C.read obj Cs.Get);
      (* classify which side of the shared fence this crash landed on *)
      List.iter
        (fun id ->
          if not (List.mem id !completed) then
            if C.was_linearized obj id then saw_unacked_recovered := true
            else saw_tail_lost := true)
        !invoked;
      (* liveness *)
      let post _ = for _ = 1 to 2 do ignore (C.update obj Cs.Increment) done in
      match Sim.run sim Onll_sched.Sched.Strategy.round_robin [| post |] with
      | Onll_sched.Sched.World.Completed -> ()
      | _ -> fail_at "post-crash era did not complete"
    end
  done;
  check Alcotest.bool "sweep produced crashes" true (!crashed_runs > 40);
  check Alcotest.bool
    "some crash lost an unacknowledged (unfenced) tail-batch" true
    !saw_tail_lost;
  check Alcotest.bool
    "some crash recovered a durable-but-unacknowledged update" true
    !saw_unacked_recovered

let test_crash_at_every_step () = crash_sweep ~replicas:1 ()
let test_crash_at_every_step_mirrored () = crash_sweep ~replicas:2 ()

(* {1 Checkpointing and compaction} *)

let test_compaction_preserves_detectability () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_batched.Make (M) (Cs) in
  (* 240 updates through a 2 KiB log: completion alone proves the
     checkpoint-compact-relocate path ran many times over. *)
  let obj = C.make (cfg ~log_capacity:2048 ()) in
  let per_proc = 120 in
  let body _ =
    for _ = 1 to per_proc do
      ignore (C.update obj Cs.Increment)
    done
  in
  (match
     Sim.run sim Onll_sched.Sched.Strategy.round_robin (Array.make 2 body)
   with
  | Onll_sched.Sched.World.Completed -> ()
  | _ -> Alcotest.fail "workload did not survive log pressure");
  check Alcotest.int "no update lost to compaction" (2 * per_proc)
    (C.read obj Cs.Get);
  (* Detectability is answered from sequence floors once the history
     behind a checkpoint is gone — every pre-compaction id still
     acknowledges. *)
  for p = 0 to 1 do
    for seq = 0 to per_proc - 1 do
      if
        not (C.was_linearized obj { Onll_core.Onll.id_proc = p; id_seq = seq })
      then
        Alcotest.failf "update (%d,%d) no longer detectable after compaction"
          p seq
    done
  done;
  check Alcotest.bool "never-executed id stays undetected" false
    (C.was_linearized obj { Onll_core.Onll.id_proc = 0; id_seq = per_proc });
  let snap = C.snapshot obj in
  check Alcotest.int "one shared log" 1
    (List.length snap.Onll_core.Onll.Snapshot.logs);
  check Alcotest.int "watermark covers every update" (2 * per_proc)
    snap.Onll_core.Onll.Snapshot.latest_available_idx

(* {1 The chaos arms (media faults, nested recovery crashes)} *)

let test_batched_chaos_arms () =
  let module Ch = Test_support.Chaos.Make (Onll_specs.Kv) in
  let run plan =
    Ch.run ~plan ~gen_update:Test_support.Gen.Kv.update
      ~gen_read:Test_support.Gen.Kv.read ()
  in
  for seed = 1 to 4 do
    let r = run (Test_support.Chaos_harness.batched_plan_of_seed seed) in
    check Alcotest.(list string)
      (Printf.sprintf "batched seed %d clean" seed)
      [] r.Test_support.Chaos.violations;
    let r =
      run (Test_support.Chaos_harness.batched_mirrored_plan_of_seed seed)
    in
    check Alcotest.(list string)
      (Printf.sprintf "batched+mirrored seed %d clean" seed)
      [] r.Test_support.Chaos.violations;
    (* the E13 bar composed with batching: a primary-only fault on the
       shared batch log costs nothing at all *)
    check Alcotest.int
      (Printf.sprintf "batched+mirrored seed %d lost nothing" seed)
      0
      (r.Test_support.Chaos.lost_reported
     + r.Test_support.Chaos.tail_ambiguous)
  done

let () =
  Alcotest.run "batched"
    [
      ( "amortisation",
        [
          Alcotest.test_case "concurrent submitters share the fence" `Quick
            test_combining_amortizes_fences;
          Alcotest.test_case "solo degenerates to exactly 1 pf/update"
            `Quick test_solo_degenerates_to_one_fence_per_update;
        ] );
      ( "detectability",
        [
          Alcotest.test_case "sequence reuse rejected before effect" `Quick
            test_seq_reuse_rejected_before_effect;
          Alcotest.test_case "compaction preserves detectability" `Quick
            test_compaction_preserves_detectability;
        ] );
      ( "crash-mid-batch",
        [
          Alcotest.test_case "crash at every step of the batch protocol"
            `Quick test_crash_at_every_step;
          Alcotest.test_case "crash at every step (mirrored log)" `Quick
            test_crash_at_every_step_mirrored;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "batched and batched+mirrored arms clean"
            `Quick test_batched_chaos_arms;
        ] );
    ]
