(** End-to-end validation of the durable-linearizability oracle against a
    {e deliberately broken} implementation ({!Onll_baselines.Broken_early}):
    the §3.1 case analysis says that if an update is linearized before it is
    persisted and readers neither wait nor help, a reader can observe an
    update that a crash then erases. The oracle must catch exactly that —
    and must accept the same schedule when the object is real ONLL. *)

open Onll_machine
open Onll_sched
module Cs = Onll_specs.Counter
module H = Onll_histcheck.Histcheck.Make (Onll_specs.Counter)

let check = Alcotest.check

(* The §3.1 bad window, scripted:
   p0: update parked after linearization (insert done) but before its log
   append's fence; p1: read — observes the update and responds; crash
   (drop-all); recovery; a post-crash read records what survived. *)

let drive_scenario ~update ~read ~recover =
  let recorder = H.Recorder.create () in
  let p0 _ =
    let uid = H.Recorder.invoke recorder ~proc:0 (H.Update Cs.Increment) in
    let v = update () in
    H.Recorder.return_ recorder uid v
  in
  let p1 _ =
    let uid = H.Recorder.invoke recorder ~proc:1 (H.Read Cs.Get) in
    let v = read () in
    H.Recorder.return_ recorder uid v
  in
  (recorder, p0, p1,
   fun sim ->
     let script =
       Sched.Strategy.script
         [
           Sched.Strategy.run_until_pfence 0;  (* linearized, unpersisted *)
           Sched.Strategy.Run_to_completion 1;  (* the reader responds *)
           Sched.Strategy.Crash_here;
         ]
     in
     let outcome = Sim.run sim script [| p0; p1 |] in
     assert (outcome = Sched.World.Crashed);
     H.Recorder.crash recorder;
     recover ();
     (* post-crash observation *)
     let uid = H.Recorder.invoke recorder ~proc:0 (H.Read Cs.Get) in
     let v = read () in
     H.Recorder.return_ recorder uid v;
     H.Recorder.history recorder)

let test_broken_implementation_rejected () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module B = Onll_baselines.Broken_early.Make (M) (Cs) in
  let obj = B.create () in
  let _, _, _, go =
    drive_scenario
      ~update:(fun () -> B.update obj Cs.Increment)
      ~read:(fun () -> B.read obj Cs.Get)
      ~recover:(fun () -> B.recover obj)
  in
  let history = go sim in
  (* Sanity: the bad window really occurred — the reader saw 1, recovery
     lost it. *)
  let returns =
    List.filter_map
      (function H.Return { value; _ } -> Some value | _ -> None)
      history
  in
  check Alcotest.(list int) "reader saw 1; post-crash sees 0" [ 1; 0 ] returns;
  match H.check history with
  | H.Violation _ -> ()
  | H.Durably_linearizable _ ->
      Alcotest.fail "oracle accepted a durability violation"
  | H.Budget_exhausted -> Alcotest.fail "oracle ran out of budget"

let test_real_onll_accepted_same_schedule () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let _, _, _, go =
    drive_scenario
      ~update:(fun () -> C.update obj Cs.Increment)
      ~read:(fun () -> C.read obj Cs.Get)
      ~recover:(fun () -> C.recover obj)
  in
  let history = go sim in
  (* With ONLL the parked update is simply not yet visible: the reader sees
     0 and recovery owes nothing. *)
  let returns =
    List.filter_map
      (function H.Return { value; _ } -> Some value | _ -> None)
      history
  in
  check Alcotest.(list int) "reader sees 0; post-crash sees 0" [ 0; 0 ]
    returns;
  match H.check history with
  | H.Durably_linearizable _ -> ()
  | H.Violation msg -> Alcotest.fail ("oracle rejected correct ONLL: " ^ msg)
  | H.Budget_exhausted -> Alcotest.fail "oracle ran out of budget"

let test_persist_on_read_accepted_same_schedule () =
  (* The third §3.1 branch: the reader helps. It sees 1 — and because it
     fenced before responding, the update survives the crash. *)
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_baselines.Persist_on_read.Make (M) (Cs) in
  let obj = P.create () in
  let _, _, _, go =
    drive_scenario
      ~update:(fun () -> P.update obj Cs.Increment)
      ~read:(fun () -> P.read obj Cs.Get)
      ~recover:(fun () -> P.recover obj)
  in
  let history = go sim in
  let returns =
    List.filter_map
      (function H.Return { value; _ } -> Some value | _ -> None)
      history
  in
  check Alcotest.(list int) "reader sees 1; post-crash still 1" [ 1; 1 ]
    returns;
  match H.check history with
  | H.Durably_linearizable _ -> ()
  | H.Violation msg ->
      Alcotest.fail ("oracle rejected persist-on-read: " ^ msg)
  | H.Budget_exhausted -> Alcotest.fail "oracle ran out of budget"

let test_broken_fuzz_campaign_finds_violations () =
  (* Under random schedules with random crash points, fuzzing the broken
     implementation must surface at least one violation — the oracle has
     teeth, not just on the hand-crafted schedule. *)
  let violations = ref 0 in
  for seed = 1 to 60 do
    let sim = Sim.create ~max_processes:3 () in
    let module M = (val Sim.machine sim) in
    let module B = Onll_baselines.Broken_early.Make (M) (Cs) in
    let obj = B.create () in
    let recorder = H.Recorder.create () in
    let proc p _ =
      for k = 1 to 3 do
        if k mod 2 = 0 then begin
          let uid = H.Recorder.invoke recorder ~proc:p (H.Read Cs.Get) in
          let v = B.read obj Cs.Get in
          H.Recorder.return_ recorder uid v
        end
        else begin
          let uid =
            H.Recorder.invoke recorder ~proc:p (H.Update Cs.Increment)
          in
          let v = B.update obj Cs.Increment in
          H.Recorder.return_ recorder uid v
        end
      done
    in
    let outcome =
      Sim.run sim
        (Sched.Strategy.random_with_crash ~seed
           ~crash_at_step:(10 + (seed * 7 mod 60)))
        (Array.init 3 (fun p -> proc p))
    in
    if outcome = Sched.World.Crashed then begin
      H.Recorder.crash recorder;
      B.recover obj;
      let uid = H.Recorder.invoke recorder ~proc:0 (H.Read Cs.Get) in
      let v = B.read obj Cs.Get in
      H.Recorder.return_ recorder uid v;
      match H.check (H.Recorder.history recorder) with
      | H.Violation _ -> incr violations
      | H.Durably_linearizable _ | H.Budget_exhausted -> ()
    end
  done;
  check Alcotest.bool
    (Printf.sprintf "fuzz found %d violations" !violations)
    true (!violations > 0)

let test_rationale_verdicts () =
  let module R = Onll_scenarios.Rationale in
  match R.run_all () with
  | [ b1; b2; b3; escape ] ->
      check Alcotest.bool "branch 1 violates durability" true
        (String.length b1.R.b_verdict > 0
        && String.sub b1.R.b_verdict 0 10 = "DURABILITY");
      check Alcotest.bool "branch 2 livelocks" true
        (String.sub b2.R.b_verdict 0 8 = "LIVELOCK");
      check Alcotest.bool "branch 3 consistent" true
        (String.sub b3.R.b_verdict 0 10 = "consistent");
      check Alcotest.bool "branch 3 reader saw the update" true
        (b3.R.b_reader_saw = Some 1 && b3.R.b_recovered = 1);
      check Alcotest.bool "onll consistent" true
        (String.sub escape.R.b_verdict 0 10 = "consistent");
      check Alcotest.bool "onll reader saw the old state" true
        (escape.R.b_reader_saw = Some 0 && escape.R.b_recovered = 0)
  | _ -> Alcotest.fail "expected four branches"

let () =
  Alcotest.run "oracle"
    [
      ( "section-3.1",
        [
          Alcotest.test_case "broken implementation rejected" `Quick
            test_broken_implementation_rejected;
          Alcotest.test_case "real onll accepted" `Quick
            test_real_onll_accepted_same_schedule;
          Alcotest.test_case "persist-on-read accepted" `Quick
            test_persist_on_read_accepted_same_schedule;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "campaign finds violations" `Quick
            test_broken_fuzz_campaign_finds_violations;
        ] );
      ( "rationale",
        [
          Alcotest.test_case "all four verdicts" `Quick
            test_rationale_verdicts;
        ] );
    ]
