(* Bounded-staleness relaxed mode (E20): risk-budgeted fence-free acks,
   the lazy drain, strict piggybacking, quantified crash loss
   (lost_acked), the unhardened calibration baseline, and the buffered
   checker closing the loop on a real history. *)

open Onll_machine
open Onll_sched
module Cs = Onll_specs.Counter
module Report = Onll_core.Onll.Recovery_report

let check = Alcotest.check
let default = Onll_core.Onll.Config.default

let run1 sim f = ignore (Sim.run sim Sched.Strategy.round_robin [| f |])

(* {1 Fence accounting} *)

let test_budgeted_fences () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module R = Onll_relaxed.Make (M) (Cs) in
  let obj = R.make ~max_unfenced_ops:4 default in
  run1 sim (fun _ ->
      for i = 1 to 3 do
        let _, v = R.update obj Cs.Increment in
        check Alcotest.int "acked value" i v
      done;
      check Alcotest.int "no fences below the budget" 0
        (M.persistent_fences ());
      check Alcotest.int "three ops at risk" 3 (R.pending_ops obj);
      ignore (R.update obj Cs.Increment);
      check Alcotest.int "one lazy fence at depth k" 1
        (M.persistent_fences ());
      check Alcotest.int "tail drained" 0 (R.pending_ops obj);
      (* solo-after-quiesce floor: the next k updates cost exactly one
         more fence — 1/k per update, never less *)
      for _ = 1 to 4 do
        ignore (R.update obj Cs.Increment)
      done;
      check Alcotest.int "1/k fences per update" 2 (M.persistent_fences ());
      check Alcotest.int "risk peak pinned at the budget" 4 (R.risk_peak obj);
      check Alcotest.int "reads stay free" 8 (R.read obj Cs.Get);
      check Alcotest.int "reads cost no fence" 2 (M.persistent_fences ()))

let test_strict_piggyback () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module R = Onll_relaxed.Make (M) (Cs) in
  let obj = R.make ~max_unfenced_ops:8 default in
  run1 sim (fun _ ->
      ignore (R.update obj Cs.Increment);
      ignore (R.update obj Cs.Increment);
      check Alcotest.int "deferred" 0 (M.persistent_fences ());
      let _, v = R.update_strict obj Cs.Increment in
      check Alcotest.int "strict value" 3 v;
      check Alcotest.int "strict costs exactly one fence" 1
        (M.persistent_fences ());
      check Alcotest.int "and drains its predecessors" 0 (R.pending_ops obj));
  (* the piggybacked fence made all three durable *)
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = R.recover_report obj in
  check Alcotest.bool "clean" true (Report.clean r);
  check Alcotest.(list int) "nothing lost" []
    (List.map (fun id -> id.Onll_core.Onll.id_seq) r.Report.lost_acked);
  check Alcotest.int "all survive" 3 (R.read obj Cs.Get)

let test_budget_override_tightens () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module R = Onll_relaxed.Make (M) (Cs) in
  let obj = R.make ~max_unfenced_ops:8 default in
  run1 sim (fun _ ->
      ignore (R.update ~budget:2 obj Cs.Increment);
      check Alcotest.int "below the tight budget" 0 (M.persistent_fences ());
      (* the default-budget ack joins a tail governed by the tightest
         pending promise *)
      ignore (R.update obj Cs.Increment);
      check Alcotest.int "tightest pending budget governs" 1
        (M.persistent_fences ());
      check Alcotest.int "drained" 0 (R.pending_ops obj))

let test_time_budget () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module R = Onll_relaxed.Make (M) (Cs) in
  let clock = ref 0L in
  let obj =
    R.make ~max_unfenced_ops:100 ~max_unfenced_ns:1_000L
      ~now_ns:(fun () -> !clock)
      default
  in
  run1 sim (fun _ ->
      ignore (R.update obj Cs.Increment);
      check Alcotest.int "young tail unfenced" 0 (M.persistent_fences ());
      clock := 2_000L;
      ignore (R.update obj Cs.Increment);
      check Alcotest.int "aged tail drained" 1 (M.persistent_fences ());
      check Alcotest.int "empty" 0 (R.pending_ops obj))

(* {1 Crash loss is the budgeted suffix, precisely reported} *)

let test_crash_loses_exactly_the_unfenced_suffix () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module R = Onll_relaxed.Make (M) (Cs) in
  let obj = R.make ~max_unfenced_ops:4 default in
  let ids = ref [] in
  run1 sim (fun _ ->
      for _ = 1 to 6 do
        ids := fst (R.update obj Cs.Increment) :: !ids
      done);
  let ids = List.rev !ids in
  check Alcotest.int "two acks at risk" 2 (R.pending_ops obj);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = R.recover_report obj in
  check Alcotest.bool "no durable data was lost" true (Report.clean r);
  check Alcotest.(list int) "lost = the acked unfenced suffix" [ 4; 5 ]
    (List.map (fun id -> id.Onll_core.Onll.id_seq) r.Report.lost_acked);
  check Alcotest.int "the drained prefix survives" 4 (R.read obj Cs.Get);
  List.iteri
    (fun i id ->
      check Alcotest.bool
        (Printf.sprintf "was_linearized #%d" i)
        (i < 4)
        (R.was_linearized obj id))
    ids;
  (* convergence: ordinary durable linearizability from here on *)
  let ops1 =
    List.filter (fun id -> R.was_linearized obj id) ids
  in
  ignore (R.recover_report obj);
  check Alcotest.(list int) "idempotent re-recovery, no new loss" []
    (List.map (fun id -> id.Onll_core.Onll.id_seq) (R.lost_acked obj));
  check Alcotest.bool "same adopted set" true
    (ops1 = List.filter (fun id -> R.was_linearized obj id) ids);
  run1 sim (fun _ ->
      let _, v = R.update_strict obj Cs.Increment in
      check Alcotest.int "post-recovery update applies" 5 v)

let test_flush_empties_the_risk_window () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module R = Onll_relaxed.Make (M) (Cs) in
  let obj = R.make ~max_unfenced_ops:8 default in
  run1 sim (fun _ ->
      ignore (R.update obj Cs.Increment);
      ignore (R.update obj Cs.Increment);
      R.flush obj;
      check Alcotest.int "flush fenced once" 1 (M.persistent_fences ());
      R.flush obj;
      check Alcotest.int "empty flush is free" 1 (M.persistent_fences ()));
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = R.recover_report obj in
  check Alcotest.int "nothing lost after flush" 0
    (List.length r.Report.lost_acked);
  check Alcotest.int "both survive" 2 (R.read obj Cs.Get)

let test_checkpoint_covers_the_tail () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module R = Onll_relaxed.Make (M) (Cs) in
  let obj = R.make ~max_unfenced_ops:8 default in
  run1 sim (fun _ ->
      for _ = 1 to 3 do
        ignore (R.update obj Cs.Increment)
      done;
      ignore (R.checkpoint obj);
      check Alcotest.int "checkpoint made the tail durable" 0
        (R.pending_ops obj));
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = R.recover_report obj in
  check Alcotest.int "nothing lost" 0 (List.length r.Report.lost_acked);
  check Alcotest.int "summarised ops survive" 3 (R.read obj Cs.Get)

(* {1 Recoverable faults release the lock}

   A degraded store or a transient fault escapes the wrapper to the
   caller (the serve layer catches both and keeps refusing/serving), so
   an escaping exception must leave the tail lock free — leaking it
   would wedge every later update, flush and quiesce in the lock's
   busy-wait. *)

exception Boom

let test_escaping_fault_releases_lock () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module R = Onll_relaxed.Make (M) (Cs) in
  let seq = ref (-1) in
  let boom = ref true in
  let obj =
    R.make ~max_unfenced_ops:4
      ~alloc:(fun () ->
        if !boom then raise Boom
        else begin
          incr seq;
          !seq
        end)
      default
  in
  run1 sim (fun _ ->
      (match R.update obj Cs.Increment with
      | _ -> Alcotest.fail "the injected fault must escape"
      | exception Boom -> ());
      boom := false;
      (* the lock was released on the way out: the object keeps serving *)
      let _, v = R.update obj Cs.Increment in
      check Alcotest.int "serves after a recoverable fault" 1 v;
      R.flush obj;
      check Alcotest.int "flush still drains" 0 (R.pending_ops obj))

let test_bad_budget_is_recoverable () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module R = Onll_relaxed.Make (M) (Cs) in
  let obj = R.make ~max_unfenced_ops:4 default in
  run1 sim (fun _ ->
      (match R.update ~budget:0 obj Cs.Increment with
      | _ -> Alcotest.fail "budget 0 must be rejected"
      | exception Invalid_argument _ -> ());
      (* validation happens before the lock: the object is not wedged *)
      let _, v = R.update obj Cs.Increment in
      check Alcotest.int "object still serves" 1 v)

(* {1 The calibration baseline the audits must catch} *)

let test_unhardened_recovery_loses_silently () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module R = Onll_relaxed.Make (M) (Cs) in
  let obj = R.make ~max_unfenced_ops:2 default in
  let ids = ref [] in
  run1 sim (fun _ ->
      for _ = 1 to 2 do
        ids := fst (R.update obj Cs.Increment) :: !ids
      done);
  check Alcotest.int "drained (durable) at depth 2" 0 (R.pending_ops obj);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  R.recover_unhardened obj;
  (* both acks were fenced, yet the unhardened path forgets the drain
     records — and admits nothing *)
  check Alcotest.int "drained acks silently gone" 0 (R.read obj Cs.Get);
  check Alcotest.(list int) "and no loss admitted" []
    (List.map (fun id -> id.Onll_core.Onll.id_seq) (R.lost_acked obj));
  List.iter
    (fun id ->
      check Alcotest.bool "not linearized" false (R.was_linearized obj id))
    !ids

(* {1 The checker dual closes the loop on a real history} *)

let test_history_buffered_checkable () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module R = Onll_relaxed.Make (M) (Cs) in
  let module H = Onll_histcheck.Histcheck.Make (Cs) in
  let obj = R.make ~max_unfenced_ops:4 default in
  let rec_ = H.Recorder.create () in
  run1 sim (fun _ ->
      for _ = 1 to 6 do
        ignore
          (H.Recorder.run_update rec_ ~proc:0 Cs.Increment (fun op ->
               snd (R.update obj op)))
      done);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  H.Recorder.crash rec_;
  let r = R.recover_report obj in
  (* per-process sequence numbers are the recorder uids here: one
     process, recorded in ack order *)
  let declared_lost =
    List.map (fun id -> id.Onll_core.Onll.id_seq) r.Report.lost_acked
  in
  check Alcotest.(list int) "report names the suffix" [ 4; 5 ] declared_lost;
  run1 sim (fun _ ->
      ignore
        (H.Recorder.run_read rec_ ~proc:0 Cs.Get (fun op -> R.read obj op)));
  let h = H.Recorder.history rec_ in
  (match H.check h with
  | H.Violation _ -> ()
  | _ -> Alcotest.fail "strict checker must reject the lost suffix");
  (match H.check_buffered ~staleness:4 ~declared_lost h with
  | H.Buffered_linearizable { lost; _ } ->
      check Alcotest.(list int) "checker agrees with the report" [ 4; 5 ]
        (List.sort compare lost)
  | v ->
      Alcotest.failf "buffered checker rejected a budgeted loss: %a"
        H.pp_buffered_verdict v);
  (* the report is load-bearing: declaring less than was lost fails *)
  match H.check_buffered ~staleness:4 ~declared_lost:[ 5 ] h with
  | H.Buffered_linearizable _ ->
      Alcotest.fail "an under-declaring report must be rejected"
  | H.Buffered_violation _ | H.Buffered_budget_exhausted -> ()

let () =
  Alcotest.run "relaxed"
    [
      ( "fences",
        [
          Alcotest.test_case "budgeted lazy fences" `Quick
            test_budgeted_fences;
          Alcotest.test_case "strict piggyback" `Quick test_strict_piggyback;
          Alcotest.test_case "budget override tightens" `Quick
            test_budget_override_tightens;
          Alcotest.test_case "time budget" `Quick test_time_budget;
        ] );
      ( "crash loss",
        [
          Alcotest.test_case "lost = unfenced suffix" `Quick
            test_crash_loses_exactly_the_unfenced_suffix;
          Alcotest.test_case "flush" `Quick test_flush_empties_the_risk_window;
          Alcotest.test_case "checkpoint covers tail" `Quick
            test_checkpoint_covers_the_tail;
          Alcotest.test_case "unhardened calibration" `Quick
            test_unhardened_recovery_loses_silently;
        ] );
      ( "fault containment",
        [
          Alcotest.test_case "escaping fault releases the lock" `Quick
            test_escaping_fault_releases_lock;
          Alcotest.test_case "bad budget is recoverable" `Quick
            test_bad_budget_is_recoverable;
        ] );
      ( "checker",
        [
          Alcotest.test_case "history buffered-checkable" `Quick
            test_history_buffered_checkable;
        ] );
    ]
