open Onll_machine
open Onll_sched
module Cs = Onll_specs.Counter
module F1 = Onll_scenarios.Figure1

let check = Alcotest.check

(* Fresh counter object on a fresh simulated machine. Tests that need the
   machine module instantiate inline instead. *)

(* {1 Sequential semantics} *)

let test_sequential_counter () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  check Alcotest.int "read initial" 0 (C.read obj Cs.Get);
  check Alcotest.int "first increment" 1 (C.update obj Cs.Increment);
  check Alcotest.int "second increment" 2 (C.update obj Cs.Increment);
  check Alcotest.int "add" 7 (C.update obj (Cs.Add 5));
  check Alcotest.int "read" 7 (C.read obj Cs.Get)

let test_sequential_kv () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Onll_specs.Kv) in
  let obj = C.make Onll_core.Onll.Config.default in
  let open Onll_specs.Kv in
  check Alcotest.bool "put fresh" true
    (C.update obj (Put ("k", "v1")) = Previous None);
  check Alcotest.bool "put replace" true
    (C.update obj (Put ("k", "v2")) = Previous (Some "v1"));
  check Alcotest.bool "get" true (C.read obj (Get "k") = Found (Some "v2"));
  check Alcotest.bool "delete" true
    (C.update obj (Delete "k") = Previous (Some "v2"));
  check Alcotest.bool "get after delete" true
    (C.read obj (Get "k") = Found None)

let test_sequential_queue () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Onll_specs.Queue_spec) in
  let obj = C.make Onll_core.Onll.Config.default in
  let open Onll_specs.Queue_spec in
  check Alcotest.bool "deq empty" true (C.update obj Dequeue = Taken None);
  ignore (C.update obj (Enqueue 1));
  ignore (C.update obj (Enqueue 2));
  check Alcotest.bool "peek" true (C.read obj Peek = Taken (Some 1));
  check Alcotest.bool "fifo" true (C.update obj Dequeue = Taken (Some 1));
  check Alcotest.bool "fifo 2" true (C.update obj Dequeue = Taken (Some 2))

(* {1 Fence complexity (Theorem 5.1)} *)

let test_one_fence_per_update_zero_per_read () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  for i = 1 to 20 do
    ignore (C.update obj Cs.Increment);
    check Alcotest.int "updates: exactly one fence each" i
      (M.persistent_fences ())
  done;
  for _ = 1 to 50 do
    ignore (C.read obj Cs.Get)
  done;
  check Alcotest.int "reads: zero fences" 20 (M.persistent_fences ())

let test_fence_bound_concurrent () =
  (* Under any schedule, total persistent fences <= total updates (helping
     can only reduce the count below 1 per op, never above). *)
  for seed = 1 to 10 do
    let sim = Sim.create ~max_processes:4 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make Onll_core.Onll.Config.default in
    let procs =
      Array.init 4 (fun _ ->
          fun _ ->
            for _ = 1 to 5 do
              ignore (C.update obj Cs.Increment);
              ignore (C.read obj Cs.Get)
            done)
    in
    let outcome = Sim.run sim (Sched.Strategy.random ~seed) procs in
    check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
    check Alcotest.int "one fence per update, none per read" 20
      (M.persistent_fences ())
  done

(* {1 Concurrent correctness} *)

let test_concurrent_increments_return_distinct_values () =
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let results = ref [] in
  let procs =
    Array.init 4 (fun _ ->
        fun _ ->
          for _ = 1 to 5 do
            (* bind first: the ref read must happen after the update *)
            let v = C.update obj Cs.Increment in
            results := v :: !results
          done)
  in
  ignore (Sim.run sim (Sched.Strategy.random ~seed:31) procs);
  check
    Alcotest.(list int)
    "increments return 1..20 exactly once"
    (List.init 20 (fun i -> i + 1))
    (List.sort compare !results);
  check Alcotest.int "final value" 20 (C.read obj Cs.Get)

let test_reads_monotone_per_process () =
  (* A process's successive reads can never observe the counter going
     backwards. *)
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let violation = ref false in
  let procs =
    Array.init 4 (fun p ->
        fun _ ->
          if p = 0 then
            for _ = 1 to 10 do
              ignore (C.update obj Cs.Increment)
            done
          else begin
            let last = ref (-1) in
            for _ = 1 to 10 do
              let v = C.read obj Cs.Get in
              if v < !last then violation := true;
              last := v
            done
          end)
  in
  for seed = 1 to 10 do
    ignore (Sim.run sim (Sched.Strategy.random ~seed) procs)
  done;
  check Alcotest.bool "monotone reads" false !violation

(* {1 Figure 1 executions} *)

let test_figure1_execution1 () =
  let e = F1.execution1 () in
  check Alcotest.int "update" 1 e.F1.e1_update_returned;
  check Alcotest.int "read" 1 e.F1.e1_read_returned;
  check
    Alcotest.(list (pair int bool))
    "trace" [ (0, true); (1, true) ] e.F1.e1_trace

let test_figure1_execution2 () =
  let e = F1.execution2 () in
  check Alcotest.int "r1 sees old state" 1 e.F1.e2_r1;
  check Alcotest.int "r2 sees new state" 2 e.F1.e2_r2;
  check Alcotest.int "update returns new value" 2 e.F1.e2_update_returned

let test_figure1_execution3 () =
  let e = F1.execution3 () in
  check Alcotest.int "helper returns 3" 3 e.F1.e3_p2_returned;
  check Alcotest.int "helper persisted two ops" 2 e.F1.e3_p2_log_ops;
  check Alcotest.int "reader sees 3" 3 e.F1.e3_reader_after_p2;
  check Alcotest.int "helped op returns 2" 2 e.F1.e3_p1_returned

let test_figure1_execution4 () =
  let e = F1.execution4 () in
  check Alcotest.int "reader during: 0" 0 e.F1.e4_reader_during;
  check Alcotest.int "recovered value: 2" 2 e.F1.e4_recovered_value;
  check Alcotest.bool "p1 linearized" true e.F1.e4_p1_linearized;
  check Alcotest.bool "p2 linearized" true e.F1.e4_p2_linearized;
  check Alcotest.bool "p3 lost" false e.F1.e4_p3_linearized

(* {1 Proposition 5.9: the read anomaly}

   A reader traverses the live trace, not a snapshot: while it walks past
   unavailable nodes, a later node's flag may get set behind it, so the
   node it settles on may no longer be the newest available one by the time
   it returns. Prop 5.9 places such a read's linearization point at its
   traversal of the tail; the history stays linearizable. This test builds
   exactly that race and checks both the anomalous return value and the
   checker's acceptance. *)

let test_prop59_read_anomaly () =
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let module H = Onll_histcheck.Histcheck.Make (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let recorder = H.Recorder.create () in
  let read_v = ref (-1) in
  let procs =
    [|
      (fun _ ->
        let uid = H.Recorder.invoke recorder ~proc:0 (H.Update Cs.Increment) in
        let v = C.update obj Cs.Increment in
        H.Recorder.return_ recorder uid v);
      (fun _ ->
        let uid = H.Recorder.invoke recorder ~proc:1 (H.Update Cs.Increment) in
        let v = C.update obj Cs.Increment in
        H.Recorder.return_ recorder uid v);
      (fun _ ->
        let uid = H.Recorder.invoke recorder ~proc:2 (H.Read Cs.Get) in
        let v = C.read obj Cs.Get in
        read_v := v;
        H.Recorder.return_ recorder uid v);
    |]
  in
  let script =
    Sched.Strategy.script
      [
        (* p0 inserts n1 and parks before touching its log: n1 stays
           unavailable *)
        Sched.Strategy.Run_until (0, fun l -> l = Sched.Prim "pm.store64");
        (* p1 inserts n2 and persists it (helping n1), parking just before
           setting n2's available flag *)
        Sched.Strategy.run_until_pfence 1;
        Sched.Strategy.Run_steps (1, 1);
        (* the reader walks past n2 (flag still unset): start, read tail,
           read n2.available, read n2.next — paused before n1.available *)
        Sched.Strategy.Run_steps (2, 4);
        (* n2's flag is set BEHIND the reader *)
        Sched.Strategy.Run_steps (1, 1);
        (* the reader finishes its traversal: it settles on the sentinel *)
        Sched.Strategy.Run_to_completion 2;
        Sched.Strategy.Run_to_completion 1;
        Sched.Strategy.Run_to_completion 0;
      ]
  in
  let outcome = Sim.run sim script procs in
  check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
  (* the anomaly: the read returned 0 (the sentinel) although value 2 was
     available before it responded *)
  check Alcotest.int "anomalous read" 0 !read_v;
  check Alcotest.int "final value" 2 (C.read obj Cs.Get);
  (* ... and the history is nonetheless durably linearizable *)
  (match H.check (H.Recorder.history recorder) with
  | H.Durably_linearizable _ -> ()
  | H.Violation m -> Alcotest.fail ("prop 5.9 history rejected: " ^ m)
  | H.Budget_exhausted -> Alcotest.fail "budget")

(* {1 Recovery} *)

let test_recover_empty () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  C.recover obj;
  check Alcotest.int "empty recovery = initial" 0 (C.read obj Cs.Get)

let test_recover_idempotent () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  for _ = 1 to 5 do
    ignore (C.update obj Cs.Increment)
  done;
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  C.recover obj;
  check Alcotest.int "after first recovery" 5 (C.read obj Cs.Get);
  C.recover obj;
  check Alcotest.int "recovery idempotent" 5 (C.read obj Cs.Get)

let test_repeated_crashes () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let total = ref 0 in
  for round = 1 to 5 do
    let procs =
      Array.init 2 (fun _ ->
          fun _ ->
            for _ = 1 to 10 do
              ignore (C.update obj Cs.Increment)
            done)
    in
    let outcome =
      Sim.run sim
        (Sched.Strategy.random_with_crash ~seed:round ~crash_at_step:50)
        procs
    in
    check Alcotest.bool "crashed" true (outcome = Sched.World.Crashed);
    C.recover obj;
    let v = C.read obj Cs.Get in
    check Alcotest.bool "value never decreases" true (v >= !total);
    total := v
  done

let test_values_consistent_after_recovery () =
  (* The value an update returned before the crash must match its position
     in the recovered history: re-reading gives the number of recovered
     increments, and every completed increment's return value is <= that. *)
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let returned = ref [] in
  let procs =
    Array.init 3 (fun _ ->
        fun _ ->
          for _ = 1 to 5 do
            let v = C.update obj Cs.Increment in
            returned := v :: !returned
          done)
  in
  ignore
    (Sim.run sim
       (Sched.Strategy.random_with_crash ~seed:5 ~crash_at_step:120)
       procs);
  C.recover obj;
  let v = C.read obj Cs.Get in
  List.iter
    (fun r -> check Alcotest.bool "completed value within range" true (r <= v))
    !returned;
  check Alcotest.bool "all completed counted" true
    (List.length !returned <= v)

let test_post_recovery_updates_continue () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  ignore (C.update obj (Cs.Add 10));
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  C.recover obj;
  check Alcotest.int "recovered" 10 (C.read obj Cs.Get);
  check Alcotest.int "continue" 11 (C.update obj Cs.Increment);
  (* ... and that update is itself durable *)
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  C.recover obj;
  check Alcotest.int "second recovery" 11 (C.read obj Cs.Get)

let test_recovery_under_persist_all () =
  (* Persist_all means even unfenced appends may land; recovery must accept
     any such prefix and produce a consistent state. *)
  let sim =
    Sim.create ~max_processes:3
      ~crash_policy:Onll_nvm.Crash_policy.Persist_all ()
  in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let procs =
    Array.init 3 (fun _ ->
        fun _ ->
          for _ = 1 to 4 do
            ignore (C.update obj Cs.Increment)
          done)
  in
  ignore
    (Sim.run sim
       (Sched.Strategy.random_with_crash ~seed:9 ~crash_at_step:60)
       procs);
  C.recover obj;
  let v = C.read obj Cs.Get in
  check Alcotest.bool "recovered value sane" true (v >= 0 && v <= 12)

(* {1 Detectability} *)

let test_detectable_pre_append_op_is_lost () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let script =
    Sched.Strategy.script
      [
        (* park before the op touches the log, then crash *)
        Sched.Strategy.Run_until (0, fun l -> l = Sched.Prim "pm.store64");
        Sched.Strategy.Crash_here;
      ]
  in
  ignore
    (Sim.run sim script
       [| (fun _ -> ignore (C.update_detectable obj ~seq:0 Cs.Increment)) |]);
  C.recover obj;
  check Alcotest.bool "not linearized" false
    (C.was_linearized obj { Onll_core.Onll.id_proc = 0; id_seq = 0 })

let test_detectable_post_fence_op_survives () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let script =
    Sched.Strategy.script
      [
        Sched.Strategy.run_until_pfence 0;
        Sched.Strategy.Run_steps (0, 1);  (* fence executes *)
        Sched.Strategy.Crash_here;  (* crash before the available flag *)
      ]
  in
  ignore
    (Sim.run sim script
       [| (fun _ -> ignore (C.update_detectable obj ~seq:0 Cs.Increment)) |]);
  C.recover obj;
  check Alcotest.bool "linearized though never returned" true
    (C.was_linearized obj { Onll_core.Onll.id_proc = 0; id_seq = 0 });
  check Alcotest.int "effect visible" 1 (C.read obj Cs.Get)

let test_detectable_seq_reuse_rejected () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  ignore (C.update_detectable obj ~seq:0 Cs.Increment);
  Alcotest.check_raises "reuse"
    (Invalid_argument "Onll.update_detectable: sequence number reused")
    (fun () -> ignore (C.update_detectable obj ~seq:0 Cs.Increment))

let test_detectable_seq_reuse_no_side_effects () =
  (* The documented misuse contract: a duplicate [seq] — same payload (an
     at-least-once retry) or a different one (an identity collision) — is
     rejected before any effect. State, logs, the reused identity's
     was_linearized answer and the fence count must all be exactly as if
     the call never happened, and a fresh seq must still be accepted. *)
  let module Kv = Onll_specs.Kv in
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Kv) in
  let obj = C.make Onll_core.Onll.Config.default in
  ignore (C.update_detectable obj ~seq:0 (Kv.Put ("k", "original")));
  let live_bytes () =
    List.map
      (fun (l : Onll_core.Onll.Snapshot.log) -> l.live_bytes)
      (C.snapshot obj).Onll_core.Onll.Snapshot.logs
  in
  let logs_before = live_bytes () in
  let fences_before = (Sim.stats sim).Onll_nvm.Memory.Stats.persistent_fences in
  let reuse payload =
    Alcotest.check_raises "reuse rejected"
      (Invalid_argument "Onll.update_detectable: sequence number reused")
      (fun () -> ignore (C.update_detectable obj ~seq:0 payload))
  in
  reuse (Kv.Put ("k", "original"));
  (* same payload: a retry *)
  reuse (Kv.Put ("k", "forged"));
  (* different payload: a collision *)
  reuse (Kv.Delete "k");
  check Alcotest.bool "state untouched" true
    (C.read obj (Kv.Get "k") = Kv.Found (Some "original"));
  check Alcotest.(list int) "logs untouched" logs_before (live_bytes ());
  check Alcotest.int "no persistence work spent on rejections" fences_before
    (Sim.stats sim).Onll_nvm.Memory.Stats.persistent_fences;
  check Alcotest.bool "the reused identity's answer is unchanged" true
    (C.was_linearized obj { Onll_core.Onll.id_proc = 0; id_seq = 0 });
  (* the process is not wedged: the next fresh seq is accepted *)
  ignore (C.update_detectable obj ~seq:1 (Kv.Put ("k2", "v2")));
  check Alcotest.bool "fresh seq applied" true
    (C.read obj (Kv.Get "k2") = Kv.Found (Some "v2"))

let test_seq_numbers_advance_past_recovery () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let id1, _ = C.update_with_id obj Cs.Increment in
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  C.recover obj;
  let id2, _ = C.update_with_id obj Cs.Increment in
  check Alcotest.bool "new id differs from recovered id" true (id1 <> id2)

(* {1 Local views (§8)} *)

let test_local_views_same_results () =
  (* Views change how many shared reads a compute performs, so concurrent
     schedules legitimately diverge; equivalence is therefore asserted on a
     single process (identical sequential results) and, concurrently, on
     schedule-independent facts: increments return a permutation of 1..n and
     the final value is n. *)
  let sequential ~local_views =
    let sim = Sim.create ~max_processes:1 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with local_views } in
    List.concat_map
      (fun _ -> [ C.update obj Cs.Increment; C.read obj Cs.Get ])
      (List.init 10 Fun.id)
  in
  check
    Alcotest.(list int)
    "sequential results identical"
    (sequential ~local_views:false)
    (sequential ~local_views:true);
  for seed = 1 to 8 do
    let sim = Sim.create ~max_processes:3 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with local_views = true } in
    let results = ref [] in
    let procs =
      Array.init 3 (fun _ ->
          fun _ ->
            for _ = 1 to 5 do
              let v = C.update obj Cs.Increment in
              results := v :: !results
            done)
    in
    ignore (Sim.run sim (Sched.Strategy.random ~seed) procs);
    check
      Alcotest.(list int)
      "increments are a permutation of 1..15"
      (List.init 15 (fun i -> i + 1))
      (List.sort compare !results);
    check Alcotest.int "final value" 15 (C.read obj Cs.Get)
  done

let test_local_views_survive_crash_reset () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with local_views = true } in
  for _ = 1 to 5 do
    ignore (C.update obj Cs.Increment)
  done;
  ignore (C.read obj Cs.Get);
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  C.recover obj;
  check Alcotest.int "views reset, state correct" 5 (C.read obj Cs.Get);
  check Alcotest.int "updates continue" 6 (C.update obj Cs.Increment)

(* {1 Checkpointing and reclamation (§8)} *)

let test_checkpoint_compacts_log () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  for _ = 1 to 20 do
    ignore (C.update obj Cs.Increment)
  done;
  let live_before = List.fold_left (fun a (_, l, _) -> a + l) 0 ((List.map (fun l -> Onll_core.Onll.Snapshot.(l.log_name, l.live_bytes, l.used_bytes)) (C.snapshot obj).Onll_core.Onll.Snapshot.logs)) in
  let upto = C.checkpoint obj in
  check Alcotest.int "checkpoint covers all" 20 upto;
  let live_after = List.fold_left (fun a (_, l, _) -> a + l) 0 ((List.map (fun l -> Onll_core.Onll.Snapshot.(l.log_name, l.live_bytes, l.used_bytes)) (C.snapshot obj).Onll_core.Onll.Snapshot.logs)) in
  check Alcotest.bool "log shrank" true (live_after < live_before);
  check Alcotest.int "state unchanged" 20 (C.read obj Cs.Get)

let test_recovery_from_checkpoint () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  for _ = 1 to 10 do
    ignore (C.update obj Cs.Increment)
  done;
  ignore (C.checkpoint obj);
  for _ = 1 to 3 do
    ignore (C.update obj Cs.Increment)
  done;
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  C.recover obj;
  check Alcotest.int "checkpoint + tail ops" 13 (C.read obj Cs.Get);
  let base_idx, _ = C.trace_base obj in
  check Alcotest.int "trace starts at the checkpoint" 10 base_idx;
  check Alcotest.int "updates continue" 14 (C.update obj Cs.Increment)

let test_detectability_past_checkpoint () =
  (* Operations summarised by a checkpoint are still detectable via the
     sequence floors carried in the materialised state. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let id, _ = C.update_with_id obj Cs.Increment in
  ignore (C.checkpoint obj);
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  C.recover obj;
  check Alcotest.bool "pre-checkpoint op detectable" true
    (C.was_linearized obj id);
  check Alcotest.bool "never-invoked op not detectable" false
    (C.was_linearized obj { Onll_core.Onll.id_proc = 0; id_seq = 99 })

let test_prune_keeps_reads_correct () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  for _ = 1 to 10 do
    ignore (C.update obj Cs.Increment)
  done;
  let nodes_before = List.length (C.trace_nodes obj) in
  C.prune obj ~below:8;
  let nodes_after = List.length (C.trace_nodes obj) in
  check Alcotest.bool "trace shrank" true (nodes_after < nodes_before);
  check Alcotest.int "reads correct after prune" 10 (C.read obj Cs.Get);
  check Alcotest.int "updates correct after prune" 11
    (C.update obj Cs.Increment)

let test_checkpoint_prune_crash_cycle () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  for round = 1 to 4 do
    let procs =
      Array.init 2 (fun _ ->
          fun _ ->
            for _ = 1 to 5 do
              ignore (C.update obj Cs.Increment)
            done)
    in
    ignore (Sim.run sim (Sched.Strategy.random ~seed:round) procs);
    ignore (C.checkpoint obj);
    C.prune obj ~below:((C.snapshot obj).Onll_core.Onll.Snapshot.latest_available_idx);
    Onll_nvm.Memory.crash (Sim.memory sim)
      ~policy:Onll_nvm.Crash_policy.Drop_all;
    C.recover obj;
    check Alcotest.int "each round fully durable" (round * 10)
      (C.read obj Cs.Get)
  done

(* {1 Misc} *)

let test_two_objects_independent () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let a = C.make Onll_core.Onll.Config.default in
  let b = C.make Onll_core.Onll.Config.default in
  ignore (C.update a (Cs.Add 3));
  ignore (C.update b (Cs.Add 4));
  check Alcotest.int "a" 3 (C.read a Cs.Get);
  check Alcotest.int "b" 4 (C.read b Cs.Get)

(* A full log no longer surfaces Plog.Full: the update checkpoints,
   physically compacts the log (Plog relocate) and retries, so a workload
   far exceeding the raw capacity completes — and the result is still
   durable across a crash. *)
let test_log_full_auto_compacts () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with log_capacity = 256 } in
  for _ = 1 to 100 do
    ignore (C.update obj Cs.Increment)
  done;
  check Alcotest.int "all updates applied" 100 (C.read obj Cs.Get);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  C.recover obj;
  check Alcotest.int "durable across compactions" 100 (C.read obj Cs.Get)

(* When even a checkpoint record cannot fit, degradation is graceful but
   terminal: the typed Onll.Log_full, not the transient Plog.Full. *)
let test_log_full_terminal_when_checkpoint_cannot_fit () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with log_capacity = 80 } in
  check Alcotest.bool "typed Log_full" true
    (match
       for _ = 1 to 100 do
         ignore (C.update obj Cs.Increment)
       done
     with
    | exception Onll_core.Onll.Log_full _ -> true
    | _ -> false)

(* Forge a log entry claiming execution index 3 with no entries for 1..2:
   recovery must refuse (Prop 5.10 says such logs cannot be produced by the
   implementation, so this is corruption). The entry bytes are constructed
   with the same codecs the implementation uses, then written straight into
   the object's log region. *)
let test_recovery_corrupt_on_forged_gap () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let open Onll_util in
  (* envelope (proc 0, seq 0, Increment); the operation is encoded inline
     (not length-prefixed) and Increment = tagged (0, "") *)
  let env_c = Codec.(triple int int (pair int string)) in
  let ops_body =
    Codec.encode Codec.(pair int (list env_c)) (3, [ (0, 0, (0, "")) ])
  in
  let payload = Codec.encode Codec.(pair int Codec.string) (0, ops_body) in
  (* plog entry framing: [len][crc32(len||payload)][payload] at offset 64 *)
  let len = String.length payload in
  let crc_input = Bytes.create (8 + len) in
  Bytes.set_int64_le crc_input 0 (Int64.of_int len);
  Bytes.blit_string payload 0 crc_input 8 len;
  let crc =
    Int64.logand
      (Int64.of_int32 (Crc32.bytes crc_input ~pos:0 ~len:(8 + len)))
      0xFFFFFFFFL
  in
  let mem = Sim.memory sim in
  let region =
    match Onll_nvm.Memory.find_region mem "counter.0.plog.0" with
    | Some r -> r
    | None -> Alcotest.fail "log region not found"
  in
  Onll_nvm.Memory.Region.store_int64 region ~proc:0 ~off:64 (Int64.of_int len);
  Onll_nvm.Memory.Region.store_int64 region ~proc:0 ~off:72 crc;
  Onll_nvm.Memory.Region.store region ~proc:0 ~off:80 payload;
  Onll_nvm.Memory.Region.flush region ~proc:0 ~off:64 ~len:(16 + len);
  Onll_nvm.Memory.fence mem ~proc:0;
  check Alcotest.bool "recovery refuses the gap" true
    (match C.recover obj with
    | exception Onll_core.Onll.Recovery_corrupt _ -> true
    | () -> false)

let () =
  Alcotest.run "onll"
    [
      ( "sequential",
        [
          Alcotest.test_case "counter" `Quick test_sequential_counter;
          Alcotest.test_case "kv" `Quick test_sequential_kv;
          Alcotest.test_case "queue" `Quick test_sequential_queue;
        ] );
      ( "fences",
        [
          Alcotest.test_case "1 per update, 0 per read" `Quick
            test_one_fence_per_update_zero_per_read;
          Alcotest.test_case "bound under concurrency" `Quick
            test_fence_bound_concurrent;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "distinct increment values" `Quick
            test_concurrent_increments_return_distinct_values;
          Alcotest.test_case "monotone reads" `Quick
            test_reads_monotone_per_process;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "execution 1" `Quick test_figure1_execution1;
          Alcotest.test_case "execution 2" `Quick test_figure1_execution2;
          Alcotest.test_case "execution 3" `Quick test_figure1_execution3;
          Alcotest.test_case "execution 4" `Quick test_figure1_execution4;
        ] );
      ( "prop 5.9",
        [
          Alcotest.test_case "read anomaly is linearizable" `Quick
            test_prop59_read_anomaly;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "empty" `Quick test_recover_empty;
          Alcotest.test_case "idempotent" `Quick test_recover_idempotent;
          Alcotest.test_case "repeated crashes" `Quick test_repeated_crashes;
          Alcotest.test_case "values consistent" `Quick
            test_values_consistent_after_recovery;
          Alcotest.test_case "updates continue" `Quick
            test_post_recovery_updates_continue;
          Alcotest.test_case "persist-all policy" `Quick
            test_recovery_under_persist_all;
          Alcotest.test_case "forged gap rejected" `Quick
            test_recovery_corrupt_on_forged_gap;
        ] );
      ( "detectability",
        [
          Alcotest.test_case "pre-append lost" `Quick
            test_detectable_pre_append_op_is_lost;
          Alcotest.test_case "post-fence survives" `Quick
            test_detectable_post_fence_op_survives;
          Alcotest.test_case "seq reuse is effect-free" `Quick
            test_detectable_seq_reuse_no_side_effects;
          Alcotest.test_case "seq reuse rejected" `Quick
            test_detectable_seq_reuse_rejected;
          Alcotest.test_case "seqs advance past recovery" `Quick
            test_seq_numbers_advance_past_recovery;
        ] );
      ( "local views",
        [
          Alcotest.test_case "same results" `Quick test_local_views_same_results;
          Alcotest.test_case "crash resets views" `Quick
            test_local_views_survive_crash_reset;
        ] );
      ( "reclamation",
        [
          Alcotest.test_case "checkpoint compacts" `Quick
            test_checkpoint_compacts_log;
          Alcotest.test_case "recovery from checkpoint" `Quick
            test_recovery_from_checkpoint;
          Alcotest.test_case "detectability past checkpoint" `Quick
            test_detectability_past_checkpoint;
          Alcotest.test_case "prune keeps reads correct" `Quick
            test_prune_keeps_reads_correct;
          Alcotest.test_case "checkpoint+prune+crash cycle" `Quick
            test_checkpoint_prune_crash_cycle;
        ] );
      ( "misc",
        [
          Alcotest.test_case "independent objects" `Quick
            test_two_objects_independent;
          Alcotest.test_case "full log auto-compacts" `Quick
            test_log_full_auto_compacts;
          Alcotest.test_case "Log_full when terminal" `Quick
            test_log_full_terminal_when_checkpoint_cannot_fit;
        ] );
    ]
