open Onll_machine
module Lb = Onll_lowerbound.Lowerbound
module Cs = Onll_specs.Counter

let check = Alcotest.check

(* Each setup builds a fresh machine and n one-update processes against one
   implementation. *)

let onll n =
  let sim = Sim.create ~max_processes:n () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  ( sim,
    Array.init n (fun _ -> fun _ -> ignore (C.update obj Cs.Increment)) )

let por n =
  let sim = Sim.create ~max_processes:n () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_baselines.Persist_on_read.Make (M) (Cs) in
  let obj = P.create () in
  ( sim,
    Array.init n (fun _ -> fun _ -> ignore (P.update obj Cs.Increment)) )

let shadow n =
  let sim = Sim.create ~max_processes:n () in
  let module M = (val Sim.machine sim) in
  let module S = Onll_baselines.Shadow.Make (M) (Cs) in
  let obj = S.create () in
  ( sim,
    Array.init n (fun _ -> fun _ -> ignore (S.update obj Cs.Increment)) )

let volatile n =
  let sim = Sim.create ~max_processes:n () in
  let module M = (val Sim.machine sim) in
  let module V = Onll_baselines.Volatile.Make (M) (Cs) in
  let obj = V.create () in
  ( sim,
    Array.init n (fun _ -> fun _ -> ignore (V.update obj Cs.Increment)) )

let flatcomb n =
  let sim = Sim.create ~max_processes:n () in
  let module M = (val Sim.machine sim) in
  let module F = Onll_baselines.Flat_combining.Make (M) (Cs) in
  let obj = F.create () in
  ( sim,
    Array.init n (fun _ -> fun _ -> ignore (F.update obj Cs.Increment)) )

(* {1 ONLL meets the bound tightly, for every n} *)

let test_onll_solo_chain_tight () =
  List.iter
    (fun n ->
      let sim, procs = onll n in
      let r = Lb.solo_chain sim ~procs in
      check Alcotest.bool "measured" true (r.Lb.outcome = Lb.Measured);
      check
        Alcotest.(array int)
        (Printf.sprintf "n=%d: exactly one fence each" n)
        (Array.make n 1) r.Lb.per_proc_fences)
    [ 2; 3; 4; 6; 8 ]

let test_onll_fence_chain_tight () =
  List.iter
    (fun n ->
      let sim, procs = onll n in
      let r = Lb.fence_chain sim ~procs in
      check Alcotest.bool "measured" true (r.Lb.outcome = Lb.Measured);
      check
        Alcotest.(array int)
        (Printf.sprintf "n=%d: exactly one fence each" n)
        (Array.make n 1) r.Lb.per_proc_fences;
      check Alcotest.bool "bound satisfied" true (Lb.all_at_least_one r))
    [ 2; 3; 4; 6; 8 ]

let test_onll_rounds_one_fence_per_operation () =
  (* The theorem's actual unit is fences per update INVOKED: k operations
     each, parked before the k-th response, must show exactly k fences per
     process. *)
  List.iter
    (fun rounds ->
      let n = 3 in
      let sim = Sim.create ~max_processes:n () in
      let module M = (val Sim.machine sim) in
      let module C = Onll_core.Onll.Make (M) (Cs) in
      let obj = C.make Onll_core.Onll.Config.default in
      let procs =
        Array.init n (fun _ ->
            fun _ ->
              for _ = 1 to rounds do
                ignore (C.update obj Cs.Increment)
              done)
      in
      let r = Lb.solo_chain_rounds ~rounds sim ~procs in
      check Alcotest.bool "measured" true (r.Lb.outcome = Lb.Measured);
      check
        Alcotest.(array int)
        (Printf.sprintf "%d fences per process after %d rounds" rounds rounds)
        (Array.make n rounds) r.Lb.per_proc_fences;
      check Alcotest.bool "all_at_least" true (Lb.all_at_least rounds r))
    [ 1; 2; 3; 5 ]

(* {1 Baselines behave as the theory predicts} *)

let test_por_meets_bound () =
  let sim, procs = por 4 in
  let r = Lb.solo_chain sim ~procs in
  check Alcotest.bool "lock-free durable: >= 1 fence each" true
    (Lb.all_at_least_one r)

let test_shadow_pays_double () =
  let sim, procs = shadow 4 in
  let r = Lb.solo_chain sim ~procs in
  check Alcotest.bool "measured" true (r.Lb.outcome = Lb.Measured);
  check
    Alcotest.(array int)
    "two fences each (shadow paging)"
    [| 2; 2; 2; 2 |]
    r.Lb.per_proc_fences

let test_volatile_fails_the_bound () =
  (* Not durable — the execution exists but shows zero fences, which is the
     checker's way of saying durability is impossible here. *)
  let sim, procs = volatile 4 in
  let r = Lb.solo_chain sim ~procs in
  check Alcotest.bool "no fences" false (Lb.all_at_least_one r);
  check
    Alcotest.(array int)
    "zero everywhere" [| 0; 0; 0; 0 |] r.Lb.per_proc_fences

let test_volatile_completes_early_on_fence_chain () =
  let sim, procs = volatile 3 in
  let r = Lb.fence_chain sim ~procs in
  check Alcotest.bool "never reaches a fence" true
    (r.Lb.outcome = Lb.Completed_early)

let test_flat_combining_livelocks () =
  (* Blocking implementations dodge the fence count by making everyone wait:
     the fence-chain adversary exposes this as a livelock. *)
  let sim, procs = flatcomb 3 in
  let r = Lb.fence_chain ~max_steps:20_000 sim ~procs in
  (match r.Lb.outcome with
  | Lb.Livelock p -> check Alcotest.bool "a waiter starved" true (p >= 0)
  | Lb.Measured | Lb.Completed_early ->
      Alcotest.fail "expected livelock for a blocking implementation");
  check Alcotest.bool "bound not met by fencing" false (Lb.all_at_least_one r)

let test_shadow_livelocks_on_fence_chain () =
  let sim, procs = shadow 3 in
  let r = Lb.fence_chain ~max_steps:20_000 sim ~procs in
  check Alcotest.bool "lock-based: livelock" true
    (match r.Lb.outcome with Lb.Livelock _ -> true | _ -> false)

(* {1 Harness mechanics} *)

let test_report_printing () =
  let sim, procs = onll 2 in
  let r = Lb.solo_chain sim ~procs in
  let s = Format.asprintf "%a" Lb.pp_report r in
  check Alcotest.bool "mentions fences" true
    (String.length s > 0 && String.contains s 'f')

let test_stats_reset_between_reports () =
  (* Two consecutive harness runs on the same sim must not accumulate. *)
  let sim, procs = onll 2 in
  let r1 = Lb.solo_chain sim ~procs in
  check Alcotest.(array int) "first" [| 1; 1 |] r1.Lb.per_proc_fences
  (* procs are finished now; a second run would need fresh closures, which
     is exactly why the setups above rebuild everything. *)

let () =
  Alcotest.run "lowerbound"
    [
      ( "onll",
        [
          Alcotest.test_case "solo chain tight" `Quick
            test_onll_solo_chain_tight;
          Alcotest.test_case "fence chain tight" `Quick
            test_onll_fence_chain_tight;
          Alcotest.test_case "k rounds, k fences" `Quick
            test_onll_rounds_one_fence_per_operation;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "persist-on-read meets bound" `Quick
            test_por_meets_bound;
          Alcotest.test_case "shadow pays double" `Quick
            test_shadow_pays_double;
          Alcotest.test_case "volatile fails" `Quick
            test_volatile_fails_the_bound;
          Alcotest.test_case "volatile completes early" `Quick
            test_volatile_completes_early_on_fence_chain;
          Alcotest.test_case "flat combining livelocks" `Quick
            test_flat_combining_livelocks;
          Alcotest.test_case "shadow livelocks" `Quick
            test_shadow_livelocks_on_fence_chain;
        ] );
      ( "harness",
        [
          Alcotest.test_case "report printing" `Quick test_report_printing;
          Alcotest.test_case "stats reset" `Quick
            test_stats_reset_between_reports;
        ] );
    ]
