(* Cross-shard atomic transactions (E19): one coordinator fence per
   transaction, all-or-nothing across any crash point, helper-committed
   staging, the single-operation fast path, and coordinator truncation. *)

open Onll_machine
open Onll_sched
module Kv = Onll_specs.Kv

let check = Alcotest.check

(* Probe for the [n]-th key the router sends to shard [s]. *)
let key_for shard_of ?(nth = 0) s =
  let rec go i left =
    let k = Printf.sprintf "key-%d" i in
    if shard_of (Kv.Put (k, "")) = s then
      if left = 0 then k else go (i + 1) (left - 1)
    else go (i + 1) left
  in
  go 0 nth

let got = function Kv.Found v -> v | _ -> Alcotest.fail "expected Found"

(* {1 Fence accounting} *)

let test_one_fence_per_txn () =
  (* The headline: a multi-shard transaction costs exactly one persistent
     fence — the coordinator commit append — whatever the participant
     count; 2PC would pay participants + 1. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module Tx = Onll_txn.Make (M) (Kv) in
  let obj = Tx.create ~shards:4 () in
  let route op = Tx.Sh.shard_of_update (Tx.sharded obj) op in
  let a = key_for route 0 and b = key_for route 1 in
  let four =
    List.init 4 (fun s -> Kv.Put (key_for route ~nth:1 s, "4way"))
  in
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [|
         (fun _ ->
           (* fund: two plain updates, one fence each *)
           ignore (Tx.update obj (Kv.Put (a, "100")));
           ignore (Tx.update obj (Kv.Put (b, "100")));
           check Alcotest.int "funding fenced once per update" 2
             (M.persistent_fences ());
           (* a 2-shard transfer: one fence *)
           (match Tx.txn obj [ Kv.Put (a, "60"); Kv.Put (b, "140") ] with
           | [ Kv.Previous (Some "100"); Kv.Previous (Some "100") ] -> ()
           | _ -> Alcotest.fail "transfer values");
           check Alcotest.int "one fence for the 2-shard txn" 3
             (M.persistent_fences ());
           check Alcotest.int "participants spanned 2 shards" 2
             (List.length
                (Tx.participants obj [ Kv.Put (a, ""); Kv.Put (b, "") ]));
           (* a 4-shard transaction: still one fence *)
           ignore (Tx.txn obj four);
           check Alcotest.int "one fence for the 4-shard txn" 4
             (M.persistent_fences ()));
       |]);
  check Alcotest.bool "transfer visible" true
    (got (Tx.read obj (Kv.Get a)) = Some "60"
    && got (Tx.read obj (Kv.Get b)) = Some "140");
  check Alcotest.int "reads fenced nothing" 4 (M.persistent_fences ());
  check Alcotest.int "two commit records live" 2 (Tx.coordinator_entries obj)

let test_same_shard_multi_op_txn_is_atomic_and_ordered () =
  (* Two operations on ONE shard still take the coordinator path (partial
     application across a crash would otherwise be possible) and apply in
     program order under one fence. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module Tx = Onll_txn.Make (M) (Kv) in
  let obj = Tx.create ~shards:4 () in
  let route op = Tx.Sh.shard_of_update (Tx.sharded obj) op in
  let k = key_for route 2 in
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [|
         (fun _ ->
           (match Tx.txn obj [ Kv.Put (k, "1"); Kv.Put (k, "2") ] with
           | [ Kv.Previous None; Kv.Previous (Some "1") ] -> ()
           | _ -> Alcotest.fail "program-order values");
           check Alcotest.int "one fence for the same-shard pair" 1
             (M.persistent_fences ()));
       |]);
  check Alcotest.bool "second write wins" true
    (got (Tx.read obj (Kv.Get k)) = Some "2");
  check Alcotest.int "it used the coordinator" 1 (Tx.coordinator_entries obj)

(* {1 The single-shard fast path (regression)} *)

let test_single_op_txn_degenerates_to_fast_path () =
  (* A transaction touching one shard with one operation is a plain
     sharded update: no coordinator record, exactly one fence. *)
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module Tx = Onll_txn.Make (M) (Kv) in
  let obj = Tx.create ~shards:4 () in
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [|
         (fun _ ->
           (match Tx.txn obj [ Kv.Put ("solo", "v") ] with
           | [ Kv.Previous None ] -> ()
           | _ -> Alcotest.fail "fast-path value");
           check Alcotest.int "exactly one fence" 1 (M.persistent_fences ());
           check Alcotest.int "no coordinator record" 0
             (Tx.coordinator_entries obj);
           check Alcotest.int "empty txn is free" 0
             (List.length (Tx.txn obj [])));
       |]);
  check Alcotest.bool "applied" true
    (got (Tx.read obj (Kv.Get "solo")) = Some "v");
  (* and after a crash it recovers like any sharded update *)
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = Tx.recover_report obj in
  check Alcotest.bool "clean recovery" true
    (Onll_core.Onll.Recovery_report.clean r);
  check Alcotest.bool "still applied" true
    (got (Tx.read obj (Kv.Get "solo")) = Some "v")

let test_txn_detectable_rejects_misuse () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module Tx = Onll_txn.Make (M) (Kv) in
  let obj = Tx.create ~shards:4 () in
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [|
         (fun _ ->
           let pair = [ Kv.Put ("x", "1"); Kv.Put ("y", "1") ] in
           (try
              ignore (Tx.txn_detectable obj ~seq:0 [ Kv.Put ("x", "1") ]);
              Alcotest.fail "singleton accepted"
            with Invalid_argument _ -> ());
           ignore (Tx.txn_detectable obj ~seq:0 pair);
           (* reuse is rejected before any effect *)
           (try
              ignore (Tx.txn_detectable obj ~seq:0 pair);
              Alcotest.fail "sequence reuse accepted"
            with Invalid_argument _ -> ());
           check Alcotest.int "one committed txn, not two" 1
             (Tx.coordinator_entries obj));
       |])

(* {1 Crash at every coordinator step} *)

(* Fund two accounts on distinct shards (two fences), then transfer
   between them with [txn_detectable ~seq:0] (one fence). Crash parked at
   each successive persistent-fence point [k]; after recovery the
   transfer must be all-or-nothing, detectable, idempotent under
   re-recovery, and the object live. *)
let transfer_crash_at ~replicas k =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module Tx = Onll_txn.Make (M) (Kv) in
  let obj = Tx.create ~shards:4 ~replicas () in
  let route op = Tx.Sh.shard_of_update (Tx.sharded obj) op in
  let a = key_for route 0 and b = key_for route 1 in
  let post_a = "60" and post_b = "140" in
  let procs =
    [|
      (fun _ ->
        ignore (Tx.update obj (Kv.Put (a, "100")));
        ignore (Tx.update obj (Kv.Put (b, "100")));
        ignore
          (Tx.txn_detectable obj ~seq:0
             [ Kv.Put (a, post_a); Kv.Put (b, post_b) ]));
    |]
  in
  let script =
    Sched.Strategy.script
      (List.init k (fun _ -> Sched.Strategy.run_until_pfence 0)
      @ [ Sched.Strategy.Crash_here ])
  in
  (match Sim.run sim script procs with
  | Sched.World.Crashed -> ()
  | _ -> Alcotest.fail "expected the scripted crash");
  let r = Tx.recover_report obj in
  check Alcotest.bool
    (Printf.sprintf "clean recovery at step %d" k)
    true
    (Onll_core.Onll.Recovery_report.clean r);
  let committed =
    Tx.txn_was_committed obj { Onll_txn.txn_proc = 0; txn_seq = 0 }
  in
  let va = got (Tx.read obj (Kv.Get a)) and vb = got (Tx.read obj (Kv.Get b)) in
  if committed then (
    check Alcotest.(option string) "committed: debit visible" (Some post_a) va;
    check Alcotest.(option string) "committed: credit visible" (Some post_b) vb)
  else (
    check Alcotest.bool "uncommitted: no debit" true (va <> Some post_a);
    check Alcotest.bool "uncommitted: no credit" true (vb <> Some post_b));
  (* re-recovery converges: same adopted operations at the same indices *)
  let ops1 = Tx.recovered_ops obj in
  ignore (Tx.recover_report obj);
  check Alcotest.bool "idempotent re-recovery" true
    (ops1 = Tx.recovered_ops obj);
  if committed then
    check Alcotest.(option string) "still committed after re-recovery"
      (Some post_a)
      (got (Tx.read obj (Kv.Get a)));
  (* liveness: the object still serves transactions *)
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [|
         (fun _ ->
           ignore (Tx.txn obj [ Kv.Put (a, "1"); Kv.Put (b, "2") ]));
       |]);
  check Alcotest.bool "post-recovery txn applied" true
    (got (Tx.read obj (Kv.Get a)) = Some "1"
    && got (Tx.read obj (Kv.Get b)) = Some "2")

let test_crash_at_every_step_plain () =
  for k = 1 to 4 do
    transfer_crash_at ~replicas:1 k
  done

let test_crash_at_every_step_mirrored () =
  for k = 1 to 4 do
    transfer_crash_at ~replicas:2 k
  done

(* {1 Helper-committed transactions} *)

let test_helper_persisting_a_staged_sub_commits_the_txn () =
  (* The coordinator is parked after staging, BEFORE its commit fence, so
     the commit record itself is lost in the crash. A concurrent update
     on one participant shard persists the staged sub-operation in its
     own fuzzy window — and because staged envelopes carry the commit
     payload, that one fenced record commits the WHOLE transaction:
     recovery must apply the sibling on the other shard too. *)
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module Tx = Onll_txn.Make (M) (Kv) in
  let obj = Tx.create ~shards:4 () in
  let route op = Tx.Sh.shard_of_update (Tx.sharded obj) op in
  let a = key_for route 0 and b = key_for route 1 in
  let helper_key = key_for route ~nth:1 0 in
  let procs =
    [|
      (fun _ ->
        ignore
          (Tx.txn_detectable obj ~seq:0
             [ Kv.Put (a, "60"); Kv.Put (b, "140") ]));
      (fun _ -> ignore (Tx.update obj (Kv.Put (helper_key, "helper"))));
    |]
  in
  let script =
    Sched.Strategy.script
      [
        Sched.Strategy.run_until_pfence 0;  (* staged, commit unfenced *)
        Sched.Strategy.Run_to_completion 1;  (* helps, fences, returns *)
        Sched.Strategy.Crash_here;
      ]
  in
  (match Sim.run sim script procs with
  | Sched.World.Crashed -> ()
  | _ -> Alcotest.fail "expected the scripted crash");
  let r = Tx.recover_report obj in
  check Alcotest.bool "clean recovery" true
    (Onll_core.Onll.Recovery_report.clean r);
  check Alcotest.bool "helper-committed: the txn is committed" true
    (Tx.txn_was_committed obj { Onll_txn.txn_proc = 0; txn_seq = 0 });
  check Alcotest.(option string) "helped sub visible" (Some "60")
    (got (Tx.read obj (Kv.Get a)));
  check Alcotest.(option string) "sibling shard swept in" (Some "140")
    (got (Tx.read obj (Kv.Get b)));
  check Alcotest.(option string) "the helper's own update survived"
    (Some "helper")
    (got (Tx.read obj (Kv.Get helper_key)));
  (* nested re-recovery converges on the same answer *)
  let ops1 = Tx.recovered_ops obj in
  ignore (Tx.recover_report obj);
  check Alcotest.bool "idempotent" true (ops1 = Tx.recovered_ops obj)

(* {1 Coordinator truncation} *)

let test_compact_truncates_covered_commit_records () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module Tx = Onll_txn.Make (M) (Kv) in
  let obj = Tx.create ~shards:4 () in
  let route op = Tx.Sh.shard_of_update (Tx.sharded obj) op in
  let a = key_for route 0 and b = key_for route 1 in
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [|
         (fun _ ->
           for i = 1 to 8 do
             ignore
               (Tx.txn obj
                  [
                    Kv.Put (a, string_of_int i);
                    Kv.Put (b, string_of_int (-i));
                  ])
           done;
           check Alcotest.int "records before compaction" 8
             (Tx.coordinator_entries obj);
           Tx.compact obj;
           check Alcotest.int "all covered records truncated" 0
             (Tx.coordinator_entries obj));
       |]);
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = Tx.recover_report obj in
  check Alcotest.bool "clean recovery from checkpoints" true
    (Onll_core.Onll.Recovery_report.clean r);
  check Alcotest.bool "state intact" true
    (got (Tx.read obj (Kv.Get a)) = Some "8"
    && got (Tx.read obj (Kv.Get b)) = Some "-8")

let () =
  Alcotest.run "txn"
    [
      ( "fences",
        [
          Alcotest.test_case "1 fence per multi-shard txn" `Quick
            test_one_fence_per_txn;
          Alcotest.test_case "same-shard pair: coordinated, ordered" `Quick
            test_same_shard_multi_op_txn_is_atomic_and_ordered;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "single op: no coordinator record, 1 fence"
            `Quick test_single_op_txn_degenerates_to_fast_path;
          Alcotest.test_case "txn_detectable misuse rejected" `Quick
            test_txn_detectable_rejects_misuse;
        ] );
      ( "crash-steps",
        [
          Alcotest.test_case "all-or-nothing at every step (plain)" `Quick
            test_crash_at_every_step_plain;
          Alcotest.test_case "all-or-nothing at every step (mirrored)" `Quick
            test_crash_at_every_step_mirrored;
        ] );
      ( "helping",
        [
          Alcotest.test_case "helper-persisted staging commits the txn"
            `Quick test_helper_persisting_a_staged_sub_commits_the_txn;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "covered commit records truncate" `Quick
            test_compact_truncates_covered_commit_records;
        ] );
    ]
