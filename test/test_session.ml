(* Deterministic unit tests for the durable client session (E15's
   protocol layer): exactly-once crash resolution on both branches,
   deterministic Timeout and Overloaded, sequence durability across the
   session log's own compaction, degradation policies, and misuse. The
   randomized/adversarial coverage lives in the E15 chaos campaign
   ([test_support/session_chaos.ml]); these are the pinned, single-world
   specimens of each contract clause. *)

open Onll_machine
module Cs = Onll_specs.Counter
module Faults = Onll_faults.Faults
module Sess_t = Onll_session

let check = Alcotest.check

let run sim body =
  match Sim.run sim Onll_sched.Sched.Strategy.round_robin [| body |] with
  | Onll_sched.Sched.World.Completed -> ()
  | _ -> Alcotest.fail "simulated body did not complete"

(* A flush storm pinned to every region except [spare]: transient faults
   rage until removed ([max_consecutive_transients] far above any retry
   budget), so whatever durable step touches a targeted region times out
   deterministically. *)
let storm ?(spare = fun _ -> false) mem =
  Faults.install mem
    {
      Faults.Plan.none with
      seed = 7;
      flush_fail_prob = 1.0;
      max_consecutive_transients = 1_000_000;
      target = (fun n -> not (spare n));
    }

(* {1 Exactly-once: the Was_applied branch} *)

let test_was_applied () =
  (* A crash after the last update linearized but before its ack became
     durable: recovery must answer Was_applied and must NOT re-invoke. *)
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let mem = Sim.memory sim in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with sink } in
  let module Sess = Onll_session.Make (M) (Cs) in
  let module Over = Sess.Over (C) in
  let s = Sess.attach ~sink ~client:0 (Over.backend obj) in
  run sim (fun _ ->
      for _ = 1 to 4 do
        match Sess.submit s Cs.Increment with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "submit: %a" Sess_t.pp_error e
      done);
  let seq_before = Sess.next_seq s in
  Onll_nvm.Memory.crash mem ~policy:Onll_nvm.Crash_policy.Persist_all;
  ignore (C.recover_report obj);
  run sim (fun _ ->
      (match Sess.recover s with
      | Sess.Was_applied id ->
          check Alcotest.int "the in-doubt op is the last submitted one"
            (seq_before - 1) id.Onll_core.Onll.id_seq
      | r -> Alcotest.failf "expected Was_applied, got %a" Sess.pp_resolution r);
      check Alcotest.int "not re-invoked: the counter is unchanged" 4
        (Sess.read s Cs.Get);
      (* idempotence: an immediate second recovery resolves nothing new *)
      (match Sess.recover s with
      | Sess.No_pending | Sess.Was_applied _ -> ()
      | r -> Alcotest.failf "second recover: %a" Sess.pp_resolution r);
      (* the session keeps working, sequence numbers never reused *)
      (match Sess.submit s Cs.Increment with
      | Ok v -> check Alcotest.int "post-recovery submit applies once" 5 v
      | Error e -> Alcotest.failf "post-recovery submit: %a" Sess_t.pp_error e);
      check Alcotest.bool "next_seq advanced past every pre-crash seq" true
        (Sess.next_seq s > seq_before))

(* {1 Exactly-once: the Reinvoked branch} *)

let test_reinvoked () =
  (* A flush storm pinned to the object's regions (the client record
     stays writable): the intent becomes durable, the object is never
     reached, the submission times out in doubt — and after a Drop_all
     restart, recovery must re-invoke under a fresh identity, exactly
     once. *)
  let sink = Onll_obs.Sink.make () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let mem = Sim.memory sim in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with sink } in
  let module Sess = Onll_session.Make (M) (Cs) in
  let module Over = Sess.Over (C) in
  let s = Sess.attach ~sink ~client:0 (Over.backend obj) in
  run sim (fun _ ->
      for _ = 1 to 2 do
        match Sess.submit s Cs.Increment with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "submit: %a" Sess_t.pp_error e
      done);
  let h = storm ~spare:(fun n -> n = Sess.log_name s) mem in
  run sim (fun _ ->
      match Sess.submit s Cs.Increment with
      | Error Sess_t.Timeout ->
          check Alcotest.bool "the timed-out op is pending (in doubt)" true
            (Sess.pending s <> None)
      | Ok _ -> Alcotest.fail "the storm never bit"
      | Error e -> Alcotest.failf "expected Timeout, got %a" Sess_t.pp_error e);
  Faults.remove h;
  (* Drop_all: the storm-blocked object record was never fenced, so the
     restart discards it — the fenced intent survives. *)
  Onll_nvm.Memory.crash mem ~policy:Onll_nvm.Crash_policy.Drop_all;
  ignore (C.recover_report obj);
  run sim (fun _ ->
      (match Sess.recover s with
      | Sess.Reinvoked (old_id, fresh, v) ->
          check Alcotest.bool "fresh identity, same process" true
            (old_id.Onll_core.Onll.id_proc = fresh.Onll_core.Onll.id_proc
            && fresh.Onll_core.Onll.id_seq > old_id.Onll_core.Onll.id_seq);
          check Alcotest.int "re-invocation applied the op once" 3 v
      | r -> Alcotest.failf "expected Reinvoked, got %a" Sess.pp_resolution r);
      check Alcotest.int "exactly once across the crash" 3 (Sess.read s Cs.Get))

(* {1 Deterministic Timeout + misuse: submit over an unresolved pending} *)

let test_timeout_then_submit_raises () =
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let mem = Sim.memory sim in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with sink } in
  let module Sess = Onll_session.Make (M) (Cs) in
  let module Over = Sess.Over (C) in
  let s = Sess.attach ~sink ~client:0 (Over.backend obj) in
  let h = storm mem in
  run sim (fun _ ->
      (match Sess.submit s Cs.Increment with
      | Error Sess_t.Timeout -> ()
      | Ok _ -> Alcotest.fail "a total flush storm let a submission through"
      | Error e -> Alcotest.failf "expected Timeout, got %a" Sess_t.pp_error e);
      check Alcotest.bool "the deadline was reached through retries" true
        (Onll_obs.Metrics.counter_value registry "session.retries" > 0);
      (* the operation is unresolved; submitting over it is misuse *)
      match Sess.submit s Cs.Increment with
      | exception Invalid_argument _ -> ()
      | Ok _ | Error _ ->
          Alcotest.fail "submit over an unresolved pending did not raise");
  Faults.remove h

(* {1 Deterministic Overloaded} *)

let test_overloaded () =
  (* Admission control: a watermark below any live history sheds the next
     submission before it does durable work. Client 0 (watermark off)
     seeds one update; client 1 samples pressure on every submission
     against an impossible watermark and must be refused without the
     counter moving. *)
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim = Sim.create ~sink ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with sink } in
  let module Sess = Onll_session.Make (M) (Cs) in
  let module Over = Sess.Over (C) in
  let backend = Over.backend obj in
  let s0 = Sess.attach ~sink ~client:0 backend in
  let shed_cfg =
    {
      Onll_session.default_config with
      high_watermark = 1e-9;
      check_pressure_every = 1;
    }
  in
  let s1 = Sess.attach ~config:shed_cfg ~sink ~client:1 backend in
  let outcome =
    Sim.run sim Onll_sched.Sched.Strategy.round_robin
      [|
        (fun _ ->
          match Sess.submit s0 Cs.Increment with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "seed submit: %a" Sess_t.pp_error e);
        (fun _ ->
          (* yield until client 0's update is live, then get shed *)
          let tries = ref 0 in
          while Sess.read s1 Cs.Get = 0 && !tries < 10_000 do
            incr tries
          done;
          check Alcotest.bool "client 0's update is live" true
            (Sess.read s1 Cs.Get = 1);
          match Sess.submit s1 Cs.Increment with
          | Error Sess_t.Overloaded ->
              check Alcotest.bool "pressure sample exceeded the watermark"
                true
                (Sess.pressure s1 > shed_cfg.Onll_session.high_watermark)
          | Ok _ -> Alcotest.fail "an impossible watermark admitted a write"
          | Error e ->
              Alcotest.failf "expected Overloaded, got %a" Sess_t.pp_error e);
      |]
  in
  check Alcotest.bool "completed" true
    (outcome = Onll_sched.Sched.World.Completed);
  check Alcotest.int "shed before any durable work: value unchanged" 1
    (C.read obj Cs.Get);
  check Alcotest.bool "the shed was counted" true
    (Onll_obs.Metrics.counter_value registry "session.sheds" > 0)

(* {1 Sequence durability across session-log compaction} *)

let test_seq_across_compaction () =
  (* A session log too small for the workload forces the summary-first
     compaction mid-run; sequence numbers must keep ascending across both
     the compactions and a crash-restart over the compacted log. *)
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let mem = Sim.memory sim in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with sink } in
  let module Sess = Onll_session.Make (M) (Cs) in
  let module Over = Sess.Over (C) in
  let cfg = { Onll_session.default_config with log_capacity = 640 } in
  let s = Sess.attach ~config:cfg ~sink ~client:0 (Over.backend obj) in
  let n = 40 in
  run sim (fun _ ->
      for _ = 1 to n do
        match Sess.submit s Cs.Increment with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "submit: %a" Sess_t.pp_error e
      done);
  check Alcotest.bool "the session log compacted at least once" true
    (Onll_obs.Metrics.counter_value registry "session.compactions" > 0);
  let seq_before = Sess.next_seq s in
  check Alcotest.int "sequence numbers stayed dense" n seq_before;
  Onll_nvm.Memory.crash mem ~policy:Onll_nvm.Crash_policy.Persist_all;
  ignore (C.recover_report obj);
  run sim (fun _ ->
      (match Sess.recover s with
      | Sess.No_pending | Sess.Was_applied _ -> ()
      | r -> Alcotest.failf "recover: %a" Sess.pp_resolution r);
      check Alcotest.bool
        "next_seq refolded from the compacted log, never reused" true
        (Sess.next_seq s >= seq_before);
      check Alcotest.int "no duplicates across the restart" n
        (Sess.read s Cs.Get))

(* {1 Degradation policies} *)

(* A backend whose sticky degraded flag the test controls: the real
   counter backend with [b_degraded] swapped for a ref — the record of
   closures exists exactly so policy logic is testable against a
   synthetic flag without manufacturing real unrepairable media loss. *)
let test_degradation_fail_writes_and_best_effort () =
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim = Sim.create ~sink ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with sink } in
  let module Sess = Onll_session.Make (M) (Cs) in
  let module Over = Sess.Over (C) in
  let degraded = ref false in
  let backend =
    { (Over.backend obj) with Sess.b_degraded = (fun () -> !degraded) }
  in
  (* client 0: Fail_writes (the default); client 1: Best_effort *)
  let s0 = Sess.attach ~sink ~client:0 backend in
  let be_cfg =
    { Onll_session.default_config with degradation = Sess_t.Best_effort }
  in
  let s1 = Sess.attach ~config:be_cfg ~sink ~client:1 backend in
  run sim (fun _ ->
      (match Sess.submit s0 Cs.Increment with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "healthy submit: %a" Sess_t.pp_error e);
      degraded := true;
      (match Sess.submit s0 Cs.Increment with
      | Error Sess_t.Degraded -> ()
      | Ok _ -> Alcotest.fail "Fail_writes accepted a degraded write"
      | Error e ->
          Alcotest.failf "expected Degraded, got %a" Sess_t.pp_error e);
      check Alcotest.int "reads are served under every policy" 1
        (Sess.read s0 Cs.Get);
      check Alcotest.bool "degraded reads are counted" true
        (Onll_obs.Metrics.counter_value registry "session.degraded_reads" > 0));
  (match
     Sim.run sim Onll_sched.Sched.Strategy.round_robin
       [|
         (fun _ -> ());
         (fun _ ->
           match Sess.submit s1 Cs.Increment with
           | Ok v ->
               check Alcotest.int "Best_effort keeps writing" 2 v;
               check Alcotest.bool "and counts it" true
                 (Onll_obs.Metrics.counter_value registry
                    "session.degraded_writes"
                 > 0)
           | Error e ->
               Alcotest.failf "Best_effort refused: %a" Sess_t.pp_error e);
       |]
   with
  | Onll_sched.Sched.World.Completed -> ()
  | _ -> Alcotest.fail "second era did not complete")

let test_degradation_read_only_refuses_reinvocation () =
  (* Read_only is the strictest policy: even the promised re-invocation
     of the in-doubt operation is withheld (Refused), and the operation
     stays pending for a later policy to resolve. *)
  let sink = Onll_obs.Sink.make () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let mem = Sim.memory sim in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with sink } in
  let module Sess = Onll_session.Make (M) (Cs) in
  let module Over = Sess.Over (C) in
  let degraded = ref false in
  let backend =
    { (Over.backend obj) with Sess.b_degraded = (fun () -> !degraded) }
  in
  let ro_cfg =
    { Onll_session.default_config with degradation = Sess_t.Read_only }
  in
  let s = Sess.attach ~config:ro_cfg ~sink ~client:0 backend in
  let h = storm ~spare:(fun n -> n = Sess.log_name s) mem in
  run sim (fun _ ->
      match Sess.submit s Cs.Increment with
      | Error Sess_t.Timeout -> ()
      | Ok _ -> Alcotest.fail "the storm never bit"
      | Error e -> Alcotest.failf "expected Timeout, got %a" Sess_t.pp_error e);
  Faults.remove h;
  degraded := true;
  Onll_nvm.Memory.crash mem ~policy:Onll_nvm.Crash_policy.Drop_all;
  ignore (C.recover_report obj);
  run sim (fun _ ->
      (match Sess.recover s with
      | Sess.Refused _ -> ()
      | r -> Alcotest.failf "expected Refused, got %a" Sess.pp_resolution r);
      check Alcotest.bool "the operation stays pending" true
        (Sess.pending s <> None);
      check Alcotest.int "no write of any kind happened" 0
        (Sess.read s Cs.Get))

(* {1 Backoff jitter: deterministic under a pinned rng_seed} *)

(* One world: a bounded transient storm long enough to punch through the
   persistent log's own retry budget (8), so the escaping transient
   reaches the session's jittered backoff — then relents, so every
   submission eventually lands. Returns the whole observable outcome:
   retry count, session fences, final value, cursors. *)
let jitter_world ~rng_seed =
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let mem = Sim.memory sim in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with sink } in
  let module Sess = Onll_session.Make (M) (Cs) in
  let module Over = Sess.Over (C) in
  let config =
    { Sess_t.default_config with rng_seed; max_attempts = 64; deadline = 0 }
  in
  let s = Sess.attach ~config ~sink ~proc:0 ~client:3 (Over.backend obj) in
  (* storm only the session's own log: every intent/ack append punches
     through the plog budget once (9 failures), backs off with jitter,
     and lands on the retry — the object itself stays clean, so every
     submission terminates *)
  let h =
    Faults.install mem
      {
        Faults.Plan.none with
        seed = 11;
        flush_fail_prob = 1.0;
        max_consecutive_transients = 12;
        target = (fun n -> n = Sess.log_name s);
      }
  in
  run sim (fun _ ->
      for _ = 1 to 6 do
        match Sess.submit s Cs.Increment with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "storm exceeded the budget: %a"
                       Sess_t.pp_error e
      done);
  Faults.remove h;
  ( Onll_obs.Metrics.counter_value registry "session.retries",
    Onll_obs.Metrics.counter_value registry "fences.session",
    Sess.read s Cs.Get,
    Sess.next_seq s )

let test_jitter_deterministic () =
  let r1, f1, v1, n1 = jitter_world ~rng_seed:42 in
  let r2, f2, v2, n2 = jitter_world ~rng_seed:42 in
  check Alcotest.bool "the storm actually forced retries" true (r1 > 0);
  check Alcotest.int "same seed: identical retry count" r1 r2;
  check Alcotest.int "same seed: identical fence count" f1 f2;
  check Alcotest.int "same seed: identical value" v1 v2;
  check Alcotest.int "same seed: identical cursor" n1 n2;
  (* a different seed reshuffles the jitter, never the outcome *)
  let _, _, v3, n3 = jitter_world ~rng_seed:9001 in
  check Alcotest.int "different seed: same exactly-once value" v1 v3;
  check Alcotest.int "different seed: same cursor" n1 n3

(* {1 Misuse: a foreign process on an owned session} *)

let test_foreign_process_raises () =
  let sink = Onll_obs.Sink.make () in
  let sim = Sim.create ~sink ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with sink } in
  let module Sess = Onll_session.Make (M) (Cs) in
  let module Over = Sess.Over (C) in
  let s = Sess.attach ~sink ~client:0 (Over.backend obj) in
  match
    Sim.run sim Onll_sched.Sched.Strategy.round_robin
      [|
        (fun _ -> ());
        (fun _ ->
          (match Sess.submit s Cs.Increment with
          | exception Invalid_argument _ -> ()
          | Ok _ | Error _ ->
              Alcotest.fail "a foreign process drove client 0's session");
          match Sess.recover s with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "a foreign process recovered client 0's session");
      |]
  with
  | Onll_sched.Sched.World.Completed -> ()
  | _ -> Alcotest.fail "did not complete"

let () =
  Alcotest.run "session"
    [
      ( "exactly-once",
        [
          Alcotest.test_case "crash resolves Was_applied, no re-invoke" `Quick
            test_was_applied;
          Alcotest.test_case "crash resolves Reinvoked, fresh identity" `Quick
            test_reinvoked;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic Timeout + pending misuse" `Quick
            test_timeout_then_submit_raises;
          Alcotest.test_case "deterministic Overloaded shed" `Quick
            test_overloaded;
          Alcotest.test_case "backoff jitter pinned by rng_seed" `Quick
            test_jitter_deterministic;
        ] );
      ( "durability",
        [
          Alcotest.test_case "seqs survive session-log compaction + crash"
            `Quick test_seq_across_compaction;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "Fail_writes refuses, Best_effort counts" `Quick
            test_degradation_fail_writes_and_best_effort;
          Alcotest.test_case "Read_only withholds re-invocation" `Quick
            test_degradation_read_only_refuses_reinvocation;
        ] );
      ( "misuse",
        [
          Alcotest.test_case "foreign process raises" `Quick
            test_foreign_process_raises;
        ] );
    ]
