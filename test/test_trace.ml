open Onll_machine
open Onll_sched

let check = Alcotest.check

(* The trace is generic in envelopes and base states; tests use int
   envelopes and string base states. *)

(* Each test instantiates its own simulator and trace modules. *)

let test_sentinel () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module T = Onll_core.Trace.Make (M) in
  let t = T.create ~base_idx:0 ~base_state:"init" () in
  let tail = T.tail t in
  check Alcotest.int "sentinel idx" 0 tail.T.idx;
  check Alcotest.bool "sentinel available" true (M.Tvar.get tail.T.available);
  check Alcotest.bool "sentinel has no op" true (tail.T.env = None);
  check Alcotest.bool "base" true (T.base_of t = (0, "init"))

let test_insert_assigns_dense_indices () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module T = Onll_core.Trace.Make (M) in
  let t = T.create ~base_idx:0 ~base_state:"init" () in
  let n1 = T.insert t 100 in
  let n2 = T.insert t 200 in
  let n3 = T.insert t 300 in
  check Alcotest.(list int) "indices" [ 1; 2; 3 ] [ n1.T.idx; n2.T.idx; n3.T.idx ];
  check Alcotest.bool "fresh nodes unavailable" true
    (not (M.Tvar.get n1.T.available))

let test_insert_respects_base_idx () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module T = Onll_core.Trace.Make (M) in
  let t = T.create ~base_idx:41 ~base_state:"mid" () in
  let n = T.insert t 1 in
  check Alcotest.int "continues from base" 42 n.T.idx

let test_latest_available () =
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module T = Onll_core.Trace.Make (M) in
  let t = T.create ~base_idx:0 ~base_state:"init" () in
  let n1 = T.insert t 1 in
  let n2 = T.insert t 2 in
  let n3 = T.insert t 3 in
  (* nothing available yet: the sentinel rules *)
  check Alcotest.int "sentinel" 0 (T.latest_available t).T.idx;
  M.Tvar.set n1.T.available true;
  check Alcotest.int "n1" 1 (T.latest_available t).T.idx;
  (* availability can be set out of order (Figure 2) *)
  M.Tvar.set n3.T.available true;
  check Alcotest.int "n3 wins" 3 (T.latest_available t).T.idx;
  M.Tvar.set n2.T.available true;
  check Alcotest.int "still n3" 3 (T.latest_available t).T.idx

let test_fuzzy_envs () =
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module T = Onll_core.Trace.Make (M) in
  let t = T.create ~base_idx:0 ~base_state:"init" () in
  let n1 = T.insert t 1 in
  let n2 = T.insert t 2 in
  let n3 = T.insert t 3 in
  ignore n2;
  (* window = everything after the last available node, newest first *)
  check Alcotest.(list int) "all three fuzzy" [ 3; 2; 1 ] (T.fuzzy_envs n3);
  M.Tvar.set n1.T.available true;
  check Alcotest.(list int) "window shrinks" [ 3; 2 ] (T.fuzzy_envs n3);
  M.Tvar.set n3.T.available true;
  check Alcotest.(list int) "available node: empty window" []
    (T.fuzzy_envs n3)

let test_fuzzy_window_is_continuous () =
  (* Figure 2: an unavailable node below an available one is NOT fuzzy. *)
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module T = Onll_core.Trace.Make (M) in
  let t = T.create ~base_idx:0 ~base_state:"init" () in
  let _n1 = T.insert t 1 in
  let n2 = T.insert t 2 in
  let n3 = T.insert t 3 in
  let n4 = T.insert t 4 in
  M.Tvar.set n2.T.available true;
  (* n1 unavailable but shielded by n2 *)
  check Alcotest.(list int) "window stops at first available" [ 4; 3 ]
    (T.fuzzy_envs n4);
  ignore n3

let test_delta_from () =
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module T = Onll_core.Trace.Make (M) in
  let t = T.create ~base_idx:0 ~base_state:"init" () in
  let _ = T.insert t 10 in
  let _ = T.insert t 20 in
  let n3 = T.insert t 30 in
  let base, delta = T.delta_from n3 in
  check Alcotest.string "base state" "init" base;
  check Alcotest.(list (pair int int)) "ops ascending"
    [ (1, 10); (2, 20); (3, 30) ]
    delta

let test_delta_from_floor () =
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module T = Onll_core.Trace.Make (M) in
  let t = T.create ~base_idx:0 ~base_state:"init" () in
  let _ = T.insert t 10 in
  let _ = T.insert t 20 in
  let n3 = T.insert t 30 in
  let base, delta = T.delta_from ~floor:(2, "cached") n3 in
  check Alcotest.string "floor state used" "cached" base;
  check Alcotest.(list (pair int int)) "only newer ops" [ (3, 30) ] delta;
  (* floor at the node itself: empty delta *)
  let base, delta = T.delta_from ~floor:(3, "exact") n3 in
  check Alcotest.string "exact floor" "exact" base;
  check Alcotest.(list (pair int int)) "empty delta" [] delta

let test_to_list () =
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module T = Onll_core.Trace.Make (M) in
  let t = T.create ~base_idx:0 ~base_state:"init" () in
  let _ = T.insert t 10 in
  let n2 = T.insert t 20 in
  M.Tvar.set n2.T.available true;
  let l = T.to_list t in
  check Alcotest.int "3 nodes incl sentinel" 3 (List.length l);
  check
    Alcotest.(list (triple int bool (option int)))
    "oldest first with flags"
    [ (0, true, None); (1, false, Some 10); (2, true, Some 20) ]
    l

let test_prune () =
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module T = Onll_core.Trace.Make (M) in
  let t = T.create ~base_idx:0 ~base_state:"s0" () in
  let n1 = T.insert t 10 in
  let n2 = T.insert t 20 in
  let n3 = T.insert t 30 in
  M.Tvar.set n1.T.available true;
  M.Tvar.set n2.T.available true;
  M.Tvar.set n3.T.available true;
  (* state_before receives the predecessor node; summarise as a string *)
  let state_before older =
    let base, delta = T.delta_from older in
    List.fold_left (fun acc (_, e) -> acc ^ "+" ^ string_of_int e) base delta
  in
  T.prune t ~below:2 ~state_before;
  check Alcotest.bool "base moved" true (T.base_of t = (1, "s0+10"));
  check Alcotest.int "only 2 nodes reachable" 2 (List.length (T.to_list t));
  (* delta from the tail now starts at the materialised base *)
  let base, delta = T.delta_from n3 in
  check Alcotest.string "pruned base" "s0+10" base;
  check Alcotest.(list (pair int int)) "remaining ops" [ (2, 20); (3, 30) ]
    delta;
  (* pruning at the same point again is a no-op *)
  T.prune t ~below:2 ~state_before;
  check Alcotest.bool "idempotent" true (T.base_of t = (1, "s0+10"))

let test_prune_errors () =
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module T = Onll_core.Trace.Make (M) in
  let t = T.create ~base_idx:0 ~base_state:"s0" () in
  let n1 = T.insert t 10 in
  check Alcotest.bool "unavailable node rejected" true
    (match T.prune t ~below:1 ~state_before:(fun _ -> "x") with
    | exception Invalid_argument _ -> true
    | () -> false);
  M.Tvar.set n1.T.available true;
  check Alcotest.bool "missing index rejected" true
    (match T.prune t ~below:7 ~state_before:(fun _ -> "x") with
    | exception Invalid_argument _ -> true
    | () -> false)

(* {1 Concurrent insertion under the scheduler} *)

let test_concurrent_inserts_dense_and_complete () =
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module T = Onll_core.Trace.Make (M) in
  let t = T.create ~base_idx:0 ~base_state:"init" () in
  let procs =
    Array.init 4 (fun p ->
        fun _ ->
          for k = 0 to 4 do
            let n = T.insert t ((p * 10) + k) in
            M.Tvar.set n.T.available true
          done)
  in
  let outcome = Sim.run sim (Sched.Strategy.random ~seed:77) procs in
  check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
  let nodes = T.to_list t in
  check Alcotest.int "20 ops + sentinel" 21 (List.length nodes);
  List.iteri
    (fun i (idx, _, _) -> check Alcotest.int "dense idx" i idx)
    nodes;
  (* every op present exactly once *)
  let envs =
    List.filter_map (fun (_, _, e) -> e) nodes |> List.sort compare
  in
  let expected =
    List.concat_map (fun p -> List.init 5 (fun k -> (p * 10) + k))
      [ 0; 1; 2; 3 ]
    |> List.sort compare
  in
  check Alcotest.(list int) "all ops present once" expected envs

let test_insert_retries_under_contention () =
  (* With several processes racing on the tail CAS, some CAS attempts fail;
     the loop must still insert exactly once per call. Determinism: same
     seed, same final trace. *)
  let run seed =
    let sim = Sim.create ~max_processes:3 () in
    let module M = (val Sim.machine sim) in
    let module T = Onll_core.Trace.Make (M) in
    let t = T.create ~base_idx:0 ~base_state:() () in
    let procs =
      Array.init 3 (fun p ->
          fun _ ->
            for k = 0 to 2 do
              ignore (T.insert t ((p * 10) + k))
            done)
    in
    ignore (Sim.run sim (Sched.Strategy.random ~seed) procs);
    List.filter_map (fun (_, _, e) -> e) (T.to_list t)
  in
  check Alcotest.int "9 inserts" 9 (List.length (run 5));
  check Alcotest.(list int) "deterministic" (run 5) (run 5)

let test_fuzzy_bound_under_random_schedules () =
  (* Proposition 5.2: the fuzzy window never exceeds MAX-PROCESSES when every
     op sets its flag before finishing. Sampled over schedules. *)
  let max_window = ref 0 in
  for seed = 1 to 20 do
    let sim = Sim.create ~max_processes:3 () in
    let module M = (val Sim.machine sim) in
    let module T = Onll_core.Trace.Make (M) in
    let t = T.create ~base_idx:0 ~base_state:() () in
    let procs =
      Array.init 3 (fun p ->
          fun _ ->
            for k = 0 to 3 do
              let n = T.insert t ((p * 10) + k) in
              let window = List.length (T.fuzzy_envs n) in
              if window > !max_window then max_window := window;
              M.Tvar.set n.T.available true
            done)
    in
    ignore (Sim.run sim (Sched.Strategy.random ~seed) procs)
  done;
  check Alcotest.bool "window <= MAX_PROCESSES" true (!max_window <= 3);
  check Alcotest.bool "contention observed (window > 1)" true (!max_window > 1)

let () =
  Alcotest.run "trace"
    [
      ( "structure",
        [
          Alcotest.test_case "sentinel" `Quick test_sentinel;
          Alcotest.test_case "dense indices" `Quick
            test_insert_assigns_dense_indices;
          Alcotest.test_case "base idx" `Quick test_insert_respects_base_idx;
          Alcotest.test_case "to_list" `Quick test_to_list;
        ] );
      ( "availability",
        [
          Alcotest.test_case "latest available" `Quick test_latest_available;
          Alcotest.test_case "fuzzy envs" `Quick test_fuzzy_envs;
          Alcotest.test_case "fuzzy window continuous" `Quick
            test_fuzzy_window_is_continuous;
        ] );
      ( "delta",
        [
          Alcotest.test_case "from scratch" `Quick test_delta_from;
          Alcotest.test_case "with floor" `Quick test_delta_from_floor;
        ] );
      ( "prune",
        [
          Alcotest.test_case "prune" `Quick test_prune;
          Alcotest.test_case "prune errors" `Quick test_prune_errors;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "dense and complete" `Quick
            test_concurrent_inserts_dense_and_complete;
          Alcotest.test_case "contention retries" `Quick
            test_insert_retries_under_contention;
          Alcotest.test_case "fuzzy bound (Prop 5.2)" `Quick
            test_fuzzy_bound_under_random_schedules;
        ] );
    ]
