(** Generic crash-fuzz driver: run a randomized concurrent workload against
    an ONLL object under a seeded random schedule, optionally crash it
    mid-flight, recover, keep going — then audit everything we know must
    hold:

    - {b durability of completed operations}: every update that responded
      before the crash is in the recovered history (detectability audit);
    - {b precedence}: the recovered execution order extends the real-time
      order of the recorded history;
    - {b durable linearizability}: for small histories, the exhaustive
      {!Onll_histcheck} oracle validates recorded return values across the
      crash.

    Every run is reproducible from its integer seed. *)

open Onll_util
open Onll_machine

type plan = {
  seed : int;
  n_procs : int;
  ops_per_proc : int;
  read_ratio : float;  (** probability an operation is a read *)
  crash_at : int option;  (** scheduler step of the crash, if any *)
  use_pct : bool;
      (** schedule with PCT (depth 3) instead of uniform random *)
  policy : Onll_nvm.Crash_policy.t;
  local_views : bool;
  wait_free : bool;  (** use the Kogan–Petrank wait-free trace (§8) *)
  post_ops : int;  (** single-process operations appended after recovery *)
  log_capacity : int;
  check_history : bool;  (** run the exhaustive checker when small enough *)
}

let default_plan =
  {
    seed = 1;
    n_procs = 3;
    ops_per_proc = 3;
    read_ratio = 0.3;
    crash_at = None;
    use_pct = false;
    policy = Onll_nvm.Crash_policy.Drop_all;
    local_views = false;
    wait_free = false;
    post_ops = 2;
    log_capacity = 1 lsl 16;
    check_history = true;
  }

type result = {
  crashed : bool;
  recovered_count : int;  (** operations in the post-crash history *)
  completed_count : int;  (** updates that responded pre-crash *)
  verdict : string option;  (** checker verdict, when run *)
  verdict_ok : bool;  (** true when the checker passed or was skipped *)
  failures : string list;  (** audit failures; empty = pass *)
  total_ops : int;
}

module Make (S : Onll_core.Spec.S) = struct
  module H = Onll_histcheck.Histcheck.Make (S)

  (* The object under test behind closures, so the same driver covers both
     the lock-free and the wait-free construction. *)
  type obj = {
    o_update : S.update_op -> S.value;
    o_update_detectable : seq:int -> S.update_op -> S.value;
    o_read : S.read_op -> S.value;
    o_recover : unit -> unit;
    o_was_linearized : Onll_core.Onll.op_id -> bool;
    o_recovered_ops : unit -> (Onll_core.Onll.op_id * int) list;
  }

  let make_obj (module M : Onll_machine.Machine_sig.S) plan =
    if plan.wait_free then begin
      let module C = Onll_core.Onll.Make_wait_free (M) (S) in
      let obj =
        C.make { Onll_core.Onll.Config.default with log_capacity = plan.log_capacity; local_views = plan.local_views }
      in
      {
        o_update = C.update obj;
        o_update_detectable = (fun ~seq op -> C.update_detectable obj ~seq op);
        o_read = C.read obj;
        o_recover = (fun () -> C.recover obj);
        o_was_linearized = C.was_linearized obj;
        o_recovered_ops = (fun () -> C.recovered_ops obj);
      }
    end
    else begin
      let module C = Onll_core.Onll.Make (M) (S) in
      let obj =
        C.make { Onll_core.Onll.Config.default with log_capacity = plan.log_capacity; local_views = plan.local_views }
      in
      {
        o_update = C.update obj;
        o_update_detectable = (fun ~seq op -> C.update_detectable obj ~seq op);
        o_read = C.read obj;
        o_recover = (fun () -> C.recover obj);
        o_was_linearized = C.was_linearized obj;
        o_recovered_ops = (fun () -> C.recovered_ops obj);
      }
    end

  let run ~plan ~gen_update ~gen_read () =
    let sim =
      Sim.create ~max_processes:(max plan.n_procs 1)
        ~crash_policy:plan.policy ()
    in
    let obj = make_obj (Sim.machine sim) plan in
    let recorder = H.Recorder.create () in
    (* (uid, op_id) of updates, as they are invoked / as they respond.
       Mutated from inside simulated processes — plain refs, not shared
       variables, so the mutation is not a scheduling point. *)
    let invoked = ref [] in
    let completed = ref [] in
    let mk_proc p _ =
      let rng = Splitmix.create ((plan.seed * 1_000_003) + p) in
      let seq = ref 0 in
      for _ = 1 to plan.ops_per_proc do
        if Splitmix.float rng 1.0 < plan.read_ratio then begin
          let rop = gen_read rng in
          let uid = H.Recorder.invoke recorder ~proc:p (H.Read rop) in
          let v = obj.o_read rop in
          H.Recorder.return_ recorder uid v
        end
        else begin
          let op = gen_update rng in
          let uid = H.Recorder.invoke recorder ~proc:p (H.Update op) in
          let id = { Onll_core.Onll.id_proc = p; id_seq = !seq } in
          invoked := (uid, id) :: !invoked;
          let v = obj.o_update_detectable ~seq:!seq op in
          incr seq;
          H.Recorder.return_ recorder uid v;
          completed := (uid, id) :: !completed
        end
      done
    in
    let strategy =
      let base =
        if plan.use_pct then
          Onll_sched.Sched.Strategy.pct ~seed:plan.seed ~depth:3
            ~expected_steps:(plan.n_procs * plan.ops_per_proc * 30)
        else Onll_sched.Sched.Strategy.random ~seed:plan.seed
      in
      match plan.crash_at with
      | None -> base
      | Some k ->
          fun view ->
            if view.Onll_sched.Sched.Strategy.steps () >= k then
              Onll_sched.Sched.Strategy.Crash_now
            else base view
    in
    let outcome =
      Sim.run sim strategy (Array.init plan.n_procs (fun p -> mk_proc p))
    in
    let crashed = outcome = Onll_sched.Sched.World.Crashed in
    let failures = ref [] in
    let fail fmt = Format.kasprintf (fun s -> failures := s :: !failures) fmt in
    if crashed then begin
      H.Recorder.crash recorder;
      obj.o_recover ();
      (* Audit 1: completed updates survive. *)
      List.iter
        (fun (_, id) ->
          if not (obj.o_was_linearized id) then
            fail "completed update %a lost by recovery"
              Onll_core.Onll.pp_op_id id)
        !completed;
      (* Audit 2: recovered order extends real-time precedence. *)
      let times = Hashtbl.create 32 in
      List.iteri
        (fun pos ev ->
          match ev with
          | H.Invoke { uid; _ } -> Hashtbl.replace times uid (pos, max_int)
          | H.Return { uid; _ } ->
              let inv, _ = Hashtbl.find times uid in
              Hashtbl.replace times uid (inv, pos)
          | H.Crash -> ())
        (H.Recorder.history recorder);
      let recovered_idx = Hashtbl.create 32 in
      List.iter
        (fun (id, idx) -> Hashtbl.replace recovered_idx id idx)
        (obj.o_recovered_ops ());
      List.iter
        (fun (uid1, id1) ->
          List.iter
            (fun (uid2, id2) ->
              match
                ( Hashtbl.find_opt times uid1,
                  Hashtbl.find_opt times uid2,
                  Hashtbl.find_opt recovered_idx id1,
                  Hashtbl.find_opt recovered_idx id2 )
              with
              | Some (_, ret1), Some (inv2, _), Some i1, Some i2
                when ret1 < inv2 && i1 >= i2 ->
                  fail "recovered order violates precedence: %a (idx %d) \
                        returned before %a (idx %d) was invoked"
                    Onll_core.Onll.pp_op_id id1 i1 Onll_core.Onll.pp_op_id
                    id2 i2
              | _ -> ())
            !invoked)
        !invoked;
      (* Post-crash era: a single fresh process exercises the recovered
         object; its recorded values let the checker validate durability. *)
      if plan.post_ops > 0 then begin
        let rng = Splitmix.create (plan.seed + 777) in
        let post _ =
          for k = 1 to plan.post_ops do
            if k mod 2 = 0 then begin
              let rop = gen_read rng in
              let uid = H.Recorder.invoke recorder ~proc:0 (H.Read rop) in
              let v = obj.o_read rop in
              H.Recorder.return_ recorder uid v
            end
            else begin
              let op = gen_update rng in
              let uid = H.Recorder.invoke recorder ~proc:0 (H.Update op) in
              let v = obj.o_update op in
              H.Recorder.return_ recorder uid v
            end
          done
        in
        match Sim.run sim Onll_sched.Sched.Strategy.round_robin [| post |] with
        | Onll_sched.Sched.World.Completed -> ()
        | _ -> fail "post-crash era did not complete"
      end
    end;
    let history = H.Recorder.history recorder in
    let total_ops =
      List.length
        (List.filter (function H.Invoke _ -> true | _ -> false) history)
    in
    let verdict, verdict_ok =
      if plan.check_history && total_ops <= 14 then
        match H.check history with
        | H.Durably_linearizable w as v ->
            (* cross-check the searcher with the independent validator *)
            (match H.validate_witness history w with
            | Ok () -> (Some (Format.asprintf "%a" H.pp_verdict v), true)
            | Error m ->
                (Some ("witness failed validation: " ^ m), false))
        | H.Budget_exhausted as v ->
            (Some (Format.asprintf "%a" H.pp_verdict v), true)
        | H.Violation _ as v ->
            (Some (Format.asprintf "%a" H.pp_verdict v), false)
      else (None, true)
    in
    {
      crashed;
      recovered_count =
        (if crashed then List.length (obj.o_recovered_ops ()) else 0);
      completed_count = List.length !completed;
      verdict;
      verdict_ok;
      failures = List.rev !failures;
      total_ops;
    }
end
