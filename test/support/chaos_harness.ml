(** The E12/E13 chaos campaigns, shared by the bench experiments and the
    [onll chaos] subcommand: many {!Chaos} runs per object — schedules ×
    crash policies × media-fault plans × nested recovery crashes — plus a
    calibration pass that re-runs a slice of the same plans against the
    {e unhardened} recovery and must catch it silently losing data (a
    campaign whose detector never fires proves nothing).

    E13 escalates E12 with durable redundancy: the same fault grid against
    {e mirrored} logs (two replicas, faults confined to primaries, online
    rot healed by periodic scrubs), where the bar is strictly higher — not
    just zero silent loss but zero {e reported} loss and zero torn-tail
    ambiguity, since every primary-only fault has an intact mirror copy to
    restore. A dual-fault arm lets faults into both replicas (losses
    reappear but must be named exactly), and an unmirrored arm re-runs the
    E12 plans as the scale calibration the mirrored rows are compared
    against. *)

open Onll_util
module Faults = Onll_faults.Faults

(* The per-seed plan grid. Every knob is a pure function of the seed so a
   row reproduces from (object, seed) alone. *)
let plan_of_seed seed =
  let fault =
    {
      (Faults.Plan.default ~seed) with
      Faults.Plan.bit_flips_per_crash = 1 + (seed mod 3);
      torn_spans_per_crash = (if seed mod 4 = 0 then 1 else 0);
      torn_span_max_bytes = 40;
      media_window = 512;
      (* corrupt media on the first crash and the first nested crash, then
         stop, so crash-recover-crash loops converge *)
      media_fault_crashes = 2;
      flush_fail_prob = (if seed mod 2 = 0 then 0.05 else 0.);
      fence_fail_prob = (if seed mod 2 = 0 then 0.05 else 0.);
      max_consecutive_transients = 2;
    }
  in
  {
    Chaos.default_plan with
    Chaos.seed;
    n_procs = 3;
    ops_per_proc = 4;
    crash_at = 20 + (seed * 17 mod 160);
    policy =
      (match seed mod 3 with
      | 0 -> Onll_nvm.Crash_policy.Persist_all
      | 1 -> Onll_nvm.Crash_policy.Drop_all
      | _ -> Onll_nvm.Crash_policy.Random seed);
    wait_free = seed mod 5 = 0;
    local_views = seed mod 2 = 0;
    fault;
    nested_crashes = seed mod 3;
    hardened = true;
  }

(* The E13 grid: the same per-seed adversity as E12, but against two-way
   mirrored logs with media faults confined to primaries — the scope a
   mirror provably heals — plus, on even seeds, online rot with a periodic
   scrub to heal it before the crash. *)
let mirrored_plan_of_seed seed =
  let p = plan_of_seed seed in
  {
    p with
    Chaos.replicas = 2;
    fault_scope = `Primary_only;
    scrub_every = (if seed mod 2 = 0 then 1 else 0);
    fault =
      {
        p.Chaos.fault with
        (* dense enough that rot lands between two scrub steps, so the
           online heal path (not just recovery) does real work *)
        Faults.Plan.rot_ops_interval = (if seed mod 2 = 0 then 40 else 0);
      };
  }

(* The double-fault arm: mirrored logs, faults allowed into every replica.
   Losses reappear (both copies of a span can die) — the audit requires
   them named exactly, never silent. *)
let dual_fault_plan_of_seed seed =
  { (mirrored_plan_of_seed seed) with Chaos.fault_scope = `All }

(* The E14 arms: the same per-seed adversity against the {e sharded}
   construction (4 shards; wait_free off — sharding composes the lock-free
   trace construction). The crash lands mid-update on whichever shard the
   schedule was driving while the other shards proceed; per-shard recovery
   must compose back into one loss-free history. *)
let sharded_plan_of_seed seed =
  { (plan_of_seed seed) with Chaos.shards = 4; wait_free = false }

(* Sharded over mirrored logs with primary-scoped faults: the no-excuse
   arm of E13 composed with partitioning — zero violations, zero reported
   loss, zero tail ambiguity, on every shard. *)
let sharded_mirrored_plan_of_seed seed =
  { (mirrored_plan_of_seed seed) with Chaos.shards = 4; wait_free = false }

(* The E16 arms: the same per-seed adversity against the {e group-commit}
   construction, where the crash grid sweeps over the batch protocol
   itself — before the shared fence (the whole unfenced tail-batch must
   vanish with no acknowledged op in it) or after it (every batched
   update must recover exactly once). wait_free off: batching replaces
   the per-process-log trace, it does not compose with Kogan–Petrank. *)
let batched_plan_of_seed seed =
  { (plan_of_seed seed) with Chaos.batched = true; wait_free = false }

(* Batched over mirrored logs with primary-scoped faults: the E13
   no-excuse bar applied to group commit — a primary-only fault on the
   shared batch log must cost nothing, because the mirror drained under
   the same single batch fence. *)
let batched_mirrored_plan_of_seed seed =
  { (mirrored_plan_of_seed seed) with Chaos.batched = true; wait_free = false }

type row = {
  obj_name : string;
  runs : int;
  crashed : int;
  media_faults : int;  (** bit flips + torn spans injected *)
  transients : int;  (** transient flush/fence failures injected *)
  nested : int;  (** nested recovery crashes that fired *)
  lost_reported : int;
  tail_ambiguous : int;
  violations : int;
  metrics : (string * int) list;  (** summed tracked sink counters *)
}

type calibration = {
  cal_runs : int;
  cal_caught : int;  (** unhardened runs the audit flagged (must be > 0) *)
}

type summary = {
  rows : row list;
  calibration : calibration;
  messages : string list;  (** concrete violation messages, if any *)
}

let total_violations s =
  List.fold_left (fun acc r -> acc + r.violations) 0 s.rows

module Drive (S : Onll_core.Spec.S) = struct
  module C = Chaos.Make (S)

  let campaign ?(plan_of = plan_of_seed) ~name ~gen_update ~gen_read ~seeds
      ~messages () =
    let zero k = (k, 0) in
    let acc =
      ref
        {
          obj_name = name;
          runs = 0;
          crashed = 0;
          media_faults = 0;
          transients = 0;
          nested = 0;
          lost_reported = 0;
          tail_ambiguous = 0;
          violations = 0;
          metrics = List.map zero Chaos.tracked_counters;
        }
    in
    for seed = 1 to seeds do
      let r = C.run ~plan:(plan_of seed) ~gen_update ~gen_read () in
      let a = !acc in
      let f = r.Chaos.faults in
      List.iter
        (fun m -> messages := Printf.sprintf "%s seed %d: %s" name seed m :: !messages)
        r.Chaos.violations;
      acc :=
        {
          a with
          runs = a.runs + 1;
          crashed = (a.crashed + if r.Chaos.crashed then 1 else 0);
          media_faults =
            a.media_faults + f.Faults.bit_flips + f.Faults.torn_spans;
          transients =
            a.transients + f.Faults.flush_transients
            + f.Faults.fence_transients;
          nested = a.nested + r.Chaos.nested_fired;
          lost_reported = a.lost_reported + r.Chaos.lost_reported;
          tail_ambiguous = a.tail_ambiguous + r.Chaos.tail_ambiguous;
          violations = a.violations + List.length r.Chaos.violations;
          metrics =
            List.map2
              (fun (k, v) (k', v') ->
                assert (k = k');
                (k, v + v'))
              a.metrics r.Chaos.metrics;
        }
    done;
    !acc

  (* Calibration: the same plans, unhardened recovery. A run is "caught"
     when the audit flags it — which it must, for silent truncation under
     media faults, on at least one seed. *)
  let calibrate ~gen_update ~gen_read ~seeds =
    let caught = ref 0 in
    for seed = 1 to seeds do
      let plan = { (plan_of_seed seed) with Chaos.hardened = false } in
      let r = C.run ~plan ~gen_update ~gen_read () in
      if r.Chaos.violations <> [] then incr caught
    done;
    (seeds, !caught)
end

let run ~seeds_per_object ~calibration_seeds =
  let messages = ref [] in
  let module D_counter = Drive (Onll_specs.Counter) in
  let module D_queue = Drive (Onll_specs.Queue_spec) in
  let module D_kv = Drive (Onll_specs.Kv) in
  let module D_stack = Drive (Onll_specs.Stack_spec) in
  let rows =
    [
      D_counter.campaign ~name:"counter" ~gen_update:Gen.Counter.update
        ~gen_read:Gen.Counter.read ~seeds:seeds_per_object ~messages ();
      D_queue.campaign ~name:"queue" ~gen_update:Gen.Queue.update
        ~gen_read:Gen.Queue.read ~seeds:seeds_per_object ~messages ();
      D_kv.campaign ~name:"kv" ~gen_update:Gen.Kv.update ~gen_read:Gen.Kv.read
        ~seeds:seeds_per_object ~messages ();
      D_stack.campaign ~name:"stack" ~gen_update:Gen.Stack.update
        ~gen_read:Gen.Stack.read ~seeds:seeds_per_object ~messages ();
    ]
  in
  (* Calibration on the kv object: rich payloads make silent truncation
     bite fast. *)
  let cal_runs, cal_caught =
    D_kv.calibrate ~gen_update:Gen.Kv.update ~gen_read:Gen.Kv.read
      ~seeds:calibration_seeds
  in
  {
    rows;
    calibration = { cal_runs; cal_caught };
    messages = List.rev !messages;
  }

let print s =
  Table.print
    ~title:
      "E12 — chaos campaign (media faults × transient flush/fence failures \
       × nested recovery crashes; violations must be 0)"
    ~header:
      [
        "object";
        "runs";
        "crashed";
        "media";
        "transient";
        "nested";
        "reported-lost";
        "tail-ambig";
        "violations";
      ]
    (List.map
       (fun r ->
         [
           r.obj_name;
           string_of_int r.runs;
           string_of_int r.crashed;
           string_of_int r.media_faults;
           string_of_int r.transients;
           string_of_int r.nested;
           string_of_int r.lost_reported;
           string_of_int r.tail_ambiguous;
           string_of_int r.violations;
         ])
       s.rows);
  List.iter (fun m -> Printf.printf "  VIOLATION %s\n" m) s.messages;
  Printf.printf
    "calibration (unhardened recovery): %d/%d runs caught losing data %s\n"
    s.calibration.cal_caught s.calibration.cal_runs
    (if s.calibration.cal_caught > 0 then "(detector fires)"
     else "(DETECTOR NEVER FIRED — campaign proves nothing)")

(* {2 E13 — mirrored logs, scrubbing, repair-aware recovery} *)

type e13_summary = {
  mirrored : row list;
      (** 2-way mirrored, faults on primaries only: zero violations AND
          zero reported-lost AND zero tail-ambiguous required *)
  dual : row list;
      (** mirrored, faults on every replica: zero violations required;
          double-fault losses reappear but must be named *)
  unmirrored : row list;
      (** the E12 plans re-run hardened and unmirrored — the calibration
          scale mirrored rows are compared against (must show losses) *)
  e13_messages : string list;
}

let e13_violations s =
  List.fold_left (fun acc r -> acc + r.violations) 0 (s.mirrored @ s.dual)

let e13_mirrored_lost s =
  List.fold_left
    (fun acc r -> acc + r.lost_reported + r.tail_ambiguous)
    0 s.mirrored

let e13_unmirrored_lost s =
  List.fold_left
    (fun acc r -> acc + r.lost_reported + r.tail_ambiguous)
    0 s.unmirrored

let run_e13 ~seeds_per_object ~dual_seeds ~unmirrored_seeds =
  let messages = ref [] in
  let module D_counter = Drive (Onll_specs.Counter) in
  let module D_queue = Drive (Onll_specs.Queue_spec) in
  let module D_kv = Drive (Onll_specs.Kv) in
  let module D_stack = Drive (Onll_specs.Stack_spec) in
  let arm plan_of suffix seeds =
    [
      D_counter.campaign ~plan_of ~name:("counter" ^ suffix)
        ~gen_update:Gen.Counter.update ~gen_read:Gen.Counter.read ~seeds
        ~messages ();
      D_queue.campaign ~plan_of ~name:("queue" ^ suffix)
        ~gen_update:Gen.Queue.update ~gen_read:Gen.Queue.read ~seeds
        ~messages ();
      D_kv.campaign ~plan_of ~name:("kv" ^ suffix)
        ~gen_update:Gen.Kv.update ~gen_read:Gen.Kv.read ~seeds ~messages ();
      D_stack.campaign ~plan_of ~name:("stack" ^ suffix)
        ~gen_update:Gen.Stack.update ~gen_read:Gen.Stack.read ~seeds
        ~messages ();
    ]
  in
  let mirrored = arm mirrored_plan_of_seed "" seeds_per_object in
  let dual =
    [
      D_kv.campaign ~plan_of:dual_fault_plan_of_seed ~name:"kv/dual"
        ~gen_update:Gen.Kv.update ~gen_read:Gen.Kv.read ~seeds:dual_seeds
        ~messages ();
    ]
  in
  let unmirrored =
    [
      D_kv.campaign ~plan_of:plan_of_seed ~name:"kv/unmirrored"
        ~gen_update:Gen.Kv.update ~gen_read:Gen.Kv.read
        ~seeds:unmirrored_seeds ~messages ();
    ]
  in
  { mirrored; dual; unmirrored; e13_messages = List.rev !messages }

let print_e13 s =
  let render rows =
    List.map
      (fun r ->
        [
          r.obj_name;
          string_of_int r.runs;
          string_of_int r.crashed;
          string_of_int r.media_faults;
          string_of_int (List.assoc "scrubs" r.metrics);
          string_of_int (List.assoc "repairs" r.metrics);
          string_of_int (List.assoc "scrub.repaired" r.metrics);
          string_of_int r.lost_reported;
          string_of_int r.tail_ambiguous;
          string_of_int r.violations;
        ])
      rows
  in
  Table.print
    ~title:
      "E13 — mirrored chaos campaign (2 replicas; primary-only faults must \
       cost NOTHING: reported-lost, tail-ambig and violations all 0; the \
       dual arm may lose but must say so; the unmirrored arm shows the \
       E12-scale losses mirroring removed)"
    ~header:
      [
        "object";
        "runs";
        "crashed";
        "media";
        "scrubs";
        "repairs";
        "scrub-fix";
        "reported-lost";
        "tail-ambig";
        "violations";
      ]
    (render (s.mirrored @ s.dual @ s.unmirrored));
  List.iter (fun m -> Printf.printf "  VIOLATION %s\n" m) s.e13_messages;
  Printf.printf
    "mirrored losses: %d (must be 0) | unmirrored calibration losses: %d %s\n"
    (e13_mirrored_lost s) (e13_unmirrored_lost s)
    (if e13_unmirrored_lost s > 0 then "(faults were real)"
     else "(NO LOSSES UNMIRRORED — the grid stopped biting; tighten it)")

let e13_to_metrics s =
  let reg = Onll_obs.Metrics.create () in
  let add name v = Onll_obs.Metrics.add (Onll_obs.Metrics.counter reg name) v in
  let fold prefix r =
    let p fmt = Printf.sprintf fmt prefix r.obj_name in
    add (p "%s.%s.runs") r.runs;
    add (p "%s.%s.crashed") r.crashed;
    add (p "%s.%s.media_faults") r.media_faults;
    add (p "%s.%s.transients") r.transients;
    add (p "%s.%s.nested_crashes") r.nested;
    add (p "%s.%s.reported_lost") r.lost_reported;
    add (p "%s.%s.tail_ambiguous") r.tail_ambiguous;
    add (p "%s.%s.violations") r.violations;
    List.iter
      (fun (k, v) -> add (Printf.sprintf "%s.%s.%s" prefix r.obj_name k) v)
      r.metrics
  in
  List.iter (fold "e13.mirrored") s.mirrored;
  List.iter (fold "e13.dual") s.dual;
  List.iter (fold "e13.unmirrored") s.unmirrored;
  reg

(* Fold a summary into a metrics registry for the BENCH_e12.json snapshot
   (satellite: fault/retry/salvage/recovery counters are first-class
   metrics). *)
let to_metrics s =
  let reg = Onll_obs.Metrics.create () in
  let add name v = Onll_obs.Metrics.add (Onll_obs.Metrics.counter reg name) v in
  List.iter
    (fun r ->
      let p fmt = Printf.sprintf fmt r.obj_name in
      add (p "chaos.%s.runs") r.runs;
      add (p "chaos.%s.crashed") r.crashed;
      add (p "chaos.%s.media_faults") r.media_faults;
      add (p "chaos.%s.transients") r.transients;
      add (p "chaos.%s.nested_crashes") r.nested;
      add (p "chaos.%s.reported_lost") r.lost_reported;
      add (p "chaos.%s.tail_ambiguous") r.tail_ambiguous;
      add (p "chaos.%s.violations") r.violations;
      List.iter
        (fun (k, v) -> add (Printf.sprintf "chaos.%s.%s" r.obj_name k) v)
        r.metrics)
    s.rows;
  add "chaos.calibration.runs" s.calibration.cal_runs;
  add "chaos.calibration.caught" s.calibration.cal_caught;
  reg
