(** The E19 atomicity chaos campaign: seeded cross-shard transfers cut by
    crashes at swept schedule points, audited for {e all-or-nothing}
    visibility.

    Each simulated process owns a disjoint set of kv accounts (so no
    cross-process data races muddy the oracle) plus one "note" key, and
    runs a deterministic action script: mostly two-operation {e transfers}
    between two of its accounts on (usually) different shards, submitted
    with {!Onll_txn.Make.txn_detectable}, interleaved with plain
    single-key updates — the latter both exercise the fast path and give
    concurrent fuzzy windows a chance to {e helper-commit} a neighbour's
    staged transaction. Every action writes {e absolute} values drawn
    from a per-action power of two, which makes the state after every
    prefix of a process's script pairwise distinct — so "which prefix
    survived?" has exactly one answer and a partial transaction matches
    {e no} prefix at all.

    Why no media faults here: the E12/E13 grids already cover media
    damage, and absolute-valued transfers make account sums
    history-dependent under whole-record loss — the crisp invariants
    below only hold when durable fenced records survive, i.e. under pure
    crash policies ([Drop_all]/[Persist_all]/[Random] pending-line
    subsets). Under those, a process's coordinator records are
    prefix-closed (each commit fence drains before the next txn stages),
    which is what the audit leans on.

    Post-crash, recovery must satisfy, per process:

    - {b prefix}: the recovered values of its accounts + note equal the
      model state after some prefix of its script — a transfer with one
      leg visible and the other missing matches no prefix (the atomicity
      check);
    - {b completion}: every action that {e returned} before the crash is
      inside that prefix, and every transfer that returned answers
      [txn_was_committed] = true;
    - {b prefix-closed commitment}: the committed transaction sequence
      numbers form a gapless prefix [0..k-1];
    - {b balance}: summed over {e all} processes and shards, the transfer
      accounts net to zero — value moved, never created or destroyed;
    - {b idempotence}: an immediate second recovery adopts the identical
      operation set;
    - {b liveness}: the recovered object completes a post-crash transfer
      era and the books still balance.

    The calibration arm re-runs a slice of the same plans against
    {!Onll_txn.Make.recover_unhardened} (no coordinator sweep, no
    oracle): completed transfers become invisible or half-applied, and
    the audit {e must} flag it — a campaign whose detector never fires
    proves nothing. *)

open Onll_util
open Onll_machine
module Kv = Onll_specs.Kv

type plan = {
  seed : int;
  n_procs : int;
  actions_per_proc : int;
  crash_at : int;  (** scheduler step of the crash *)
  policy : Onll_nvm.Crash_policy.t;
  replicas : int;
  hardened : bool;
}

let plan_of_seed seed =
  {
    seed;
    n_procs = 2 + (seed mod 2);
    actions_per_proc = 4 + (seed mod 3);
    crash_at = 10 + (seed * 13 mod 170);
    policy =
      (match seed mod 3 with
      | 0 -> Onll_nvm.Crash_policy.Persist_all
      | 1 -> Onll_nvm.Crash_policy.Drop_all
      | _ -> Onll_nvm.Crash_policy.Random seed);
    replicas = 1;
    hardened = true;
  }

(* The mirrored arm: every region — shard logs and coordinator logs —
   two-way replicated, all copies drained under the same fences. The
   invariants are identical; what is being checked is that mirroring
   composes with the commit protocol without adding fences or races. *)
let mirrored_plan_of_seed seed =
  { (plan_of_seed seed) with replicas = 2 }

(* One process's deterministic script: the action list and the model
   state (accounts, note) after every prefix. Account values are signed
   sums of distinct powers of two and the note is a fresh power per
   write, so prefix states are pairwise distinct. *)
type action =
  | Transfer of { t_seq : int; ops : Kv.update_op list }
  | Note of Kv.update_op

let n_accts = 4

let acct_key p i = Printf.sprintf "acct.%d.%d" p i
let note_key p = Printf.sprintf "note.%d" p

let script_of ~plan p =
  let rng = Splitmix.create ((plan.seed * 1_000_003) + p) in
  let bal = Array.make n_accts 0 in
  let note = ref 0 in
  let states = ref [ (Array.copy bal, !note) ] (* newest first *) in
  let txn_seq = ref 0 in
  let actions =
    List.init plan.actions_per_proc (fun t ->
        let amount = 1 lsl t in
        let a =
          if t mod 3 = 2 then begin
            note := amount;
            Note (Kv.Put (note_key p, string_of_int amount))
          end
          else begin
            let src = Splitmix.int rng n_accts in
            let dst = (src + 1 + Splitmix.int rng (n_accts - 1)) mod n_accts in
            bal.(src) <- bal.(src) - amount;
            bal.(dst) <- bal.(dst) + amount;
            let ops =
              [
                Kv.Put (acct_key p src, string_of_int bal.(src));
                Kv.Put (acct_key p dst, string_of_int bal.(dst));
              ]
            in
            let seq = !txn_seq in
            incr txn_seq;
            Transfer { t_seq = seq; ops }
          end
        in
        states := (Array.copy bal, !note) :: !states;
        a)
  in
  (* states.(k) = model after prefix k, oldest first *)
  (actions, Array.of_list (List.rev !states))

type result = {
  crashed : bool;
  completed : int;  (** actions that returned pre-crash, all processes *)
  committed : int;  (** transactions committed per the recovered table *)
  swept : int;  (** sub-operations recovery had to re-apply *)
  violations : string list;
  metrics : (string * int) list;
}

let tracked_counters =
  [ "txns"; "txn.subops"; "txn.fast_path"; "txn.sweep.injected"; "crashes" ]

let run ~plan () =
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim =
    Sim.create ~sink ~max_processes:plan.n_procs ~crash_policy:plan.policy ()
  in
  let module M = (val Sim.machine sim) in
  let module Tx = Onll_txn.Make (M) (Kv) in
  let obj =
    Tx.make ~shards:4
      {
        Onll_core.Onll.Config.log_capacity = 1 lsl 16;
        replicas = plan.replicas;
        local_views = false;
        region_suffix = "";
        sink;
      }
  in
  let scripts = Array.init plan.n_procs (fun p -> script_of ~plan p) in
  (* Plain refs mutated inside simulated processes: bookkeeping, not
     shared state, hence not scheduling points. *)
  let done_actions = Array.make plan.n_procs 0 in
  let done_txn_seq = Array.make plan.n_procs (-1) in
  let mk_proc p _ =
    let actions, _ = scripts.(p) in
    List.iter
      (fun a ->
        (match a with
        | Transfer { t_seq; ops } ->
            ignore (Tx.txn_detectable obj ~seq:t_seq ops);
            done_txn_seq.(p) <- t_seq
        | Note op -> ignore (Tx.update obj op));
        done_actions.(p) <- done_actions.(p) + 1)
      actions
  in
  let strategy =
    let base = Onll_sched.Sched.Strategy.random ~seed:plan.seed in
    fun view ->
      if view.Onll_sched.Sched.Strategy.steps () >= plan.crash_at then
        Onll_sched.Sched.Strategy.Crash_now
      else base view
  in
  let outcome =
    Sim.run sim strategy (Array.init plan.n_procs (fun p -> mk_proc p))
  in
  let crashed = outcome = Onll_sched.Sched.World.Crashed in
  let violations = ref [] in
  let fail fmt =
    Format.kasprintf (fun s -> violations := s :: !violations) fmt
  in
  if crashed then begin
    (if plan.hardened then begin
       let r = Tx.recover_report obj in
       (* Pure crash chaos: nothing fenced can vanish, so recovery must
          be spotless — any gap, disagreement or decode failure is a
          protocol bug, not an excuse. *)
       if not (Onll_core.Onll.Recovery_report.clean r) then
         fail "recovery not clean under pure crash: %a"
           Onll_core.Onll.Recovery_report.pp r
     end
     else Tx.recover_unhardened obj);
    let balance key =
      match Tx.read obj (Kv.Get key) with
      | Kv.Found (Some s) -> int_of_string s
      | _ -> 0
    in
    for p = 0 to plan.n_procs - 1 do
      let actions, states = scripts.(p) in
      let state_matches k =
        let bal, note = states.(k) in
        balance (note_key p) = note
        && Array.for_all2 ( = )
             (Array.init n_accts (fun i -> balance (acct_key p i)))
             bal
      in
      (* The longest matching prefix — with pairwise-distinct prefix
         states there is at most one, so scan from the newest. *)
      let rec longest k = if k < 0 then None else if state_matches k then Some k else longest (k - 1) in
      (match longest (List.length actions) with
      | None ->
          fail
            "proc %d: recovered state matches NO prefix of its script — a \
             partial transaction is visible"
            p
      | Some k ->
          if done_actions.(p) > k then
            fail
              "proc %d: %d actions returned before the crash but only the \
               %d-action prefix survived"
              p
              done_actions.(p)
              k);
      (* Commitment: gapless prefix, covering every returned transfer. *)
      let committed_seqs =
        List.filter_map
          (fun (id : Onll_txn.txn_id) ->
            if id.txn_proc = p then Some id.txn_seq else None)
          (Tx.committed_txns obj)
      in
      let sorted = List.sort compare committed_seqs in
      if sorted <> List.init (List.length sorted) (fun i -> i) then
        fail "proc %d: committed transaction seqs are not a gapless prefix" p;
      for s = 0 to done_txn_seq.(p) do
        if not (Tx.txn_was_committed obj { Onll_txn.txn_proc = p; txn_seq = s })
        then
          fail
            "proc %d: transfer seq %d returned before the crash but is not \
             committed after recovery"
            p s
      done
    done;
    (* Balance: transfers move value, never mint it. *)
    let total =
      let sum = ref 0 in
      for p = 0 to plan.n_procs - 1 do
        for i = 0 to n_accts - 1 do
          sum := !sum + balance (acct_key p i)
        done
      done;
      !sum
    in
    if total <> 0 then
      fail "shard sums do not balance: transfer accounts net %d, want 0" total;
    (* Idempotence (hardened only: the calibration baseline neither
       sweeps nor reports, so re-running it proves nothing). *)
    if plan.hardened then begin
      let ops1 = Tx.recovered_ops obj in
      ignore (Tx.recover_report obj);
      if ops1 <> Tx.recovered_ops obj then
        fail "second recovery adopted a different operation set"
    end;
    (* Liveness: a post-crash delta transfer per process, then the books
       must still balance. *)
    let post p _ =
      let src = balance (acct_key p 0) and dst = balance (acct_key p 1) in
      ignore
        (Tx.txn obj
           [
             Kv.Put (acct_key p 0, string_of_int (src - 7));
             Kv.Put (acct_key p 1, string_of_int (dst + 7));
           ])
    in
    (match
       Sim.run sim Onll_sched.Sched.Strategy.round_robin
         (Array.init plan.n_procs (fun p -> post p))
     with
    | Onll_sched.Sched.World.Completed -> ()
    | _ -> fail "post-crash transfer era did not complete");
    let total' =
      let sum = ref 0 in
      for p = 0 to plan.n_procs - 1 do
        for i = 0 to n_accts - 1 do
          sum := !sum + balance (acct_key p i)
        done
      done;
      !sum
    in
    if total' <> 0 then
      fail "books unbalanced after the post-crash era: net %d" total'
  end;
  {
    crashed;
    completed = Array.fold_left ( + ) 0 done_actions;
    committed = List.length (Tx.committed_txns obj);
    swept = Onll_obs.Metrics.counter_value registry "txn.sweep.injected";
    violations = List.rev !violations;
    metrics =
      List.map
        (fun k -> (k, Onll_obs.Metrics.counter_value registry k))
        tracked_counters;
  }

(* {2 Campaign aggregation} *)

type row = {
  arm : string;
  runs : int;
  crashed : int;
  completed : int;
  committed : int;
  swept : int;
  violations : int;
}

type summary = {
  rows : row list;
  cal_runs : int;
  cal_caught : int;  (** unhardened runs the audit flagged (must be > 0) *)
  messages : string list;
}

let total_violations s =
  List.fold_left (fun acc r -> acc + r.violations) 0 s.rows

let campaign ?(plan_of = plan_of_seed) ~arm ~seeds ~messages () =
  let acc =
    ref
      {
        arm;
        runs = 0;
        crashed = 0;
        completed = 0;
        committed = 0;
        swept = 0;
        violations = 0;
      }
  in
  for seed = 1 to seeds do
    let r = run ~plan:(plan_of seed) () in
    List.iter
      (fun m ->
        messages := Printf.sprintf "%s seed %d: %s" arm seed m :: !messages)
      r.violations;
    let a = !acc in
    acc :=
      {
        a with
        runs = a.runs + 1;
        crashed = (a.crashed + if r.crashed then 1 else 0);
        completed = a.completed + r.completed;
        committed = a.committed + r.committed;
        swept = a.swept + r.swept;
        violations = a.violations + List.length r.violations;
      }
  done;
  !acc

let calibrate ~seeds =
  let caught = ref 0 in
  for seed = 1 to seeds do
    let plan = { (plan_of_seed seed) with hardened = false } in
    let r = run ~plan () in
    if r.crashed && r.violations <> [] then incr caught
  done;
  (seeds, !caught)

let run_campaign ~seeds ~calibration_seeds =
  let messages = ref [] in
  let rows =
    [
      campaign ~arm:"txn" ~seeds ~messages ();
      campaign ~plan_of:mirrored_plan_of_seed ~arm:"txn/mirrored" ~seeds
        ~messages ();
    ]
  in
  let cal_runs, cal_caught = calibrate ~seeds:calibration_seeds in
  { rows; cal_runs; cal_caught; messages = List.rev !messages }

let print s =
  Table.print
    ~title:
      "E19 — cross-shard transaction atomicity chaos (crash sweep; after \
       every crash a transfer is all-or-nothing and the books balance; \
       violations must be 0)"
    ~header:
      [
        "arm"; "runs"; "crashed"; "completed"; "committed"; "swept";
        "violations";
      ]
    (List.map
       (fun r ->
         [
           r.arm;
           string_of_int r.runs;
           string_of_int r.crashed;
           string_of_int r.completed;
           string_of_int r.committed;
           string_of_int r.swept;
           string_of_int r.violations;
         ])
       s.rows);
  List.iter (fun m -> Printf.printf "  VIOLATION %s\n" m) s.messages;
  Printf.printf
    "calibration (unhardened recovery, no sweep): %d/%d crashes caught \
     losing or tearing transactions %s\n"
    s.cal_caught s.cal_runs
    (if s.cal_caught > 0 then "(detector fires)"
     else "(DETECTOR NEVER FIRED — campaign proves nothing)")

(* Fold into a metrics registry for the BENCH_e19.json gate slice
   ([?reg] merges into an existing summary instead). *)
let to_metrics ?(reg = Onll_obs.Metrics.create ()) s =
  let add name v = Onll_obs.Metrics.add (Onll_obs.Metrics.counter reg name) v in
  List.iter
    (fun r ->
      let p fmt = Printf.sprintf fmt r.arm in
      add (p "e19.%s.runs") r.runs;
      add (p "e19.%s.crashed") r.crashed;
      add (p "e19.%s.completed") r.completed;
      add (p "e19.%s.committed") r.committed;
      add (p "e19.%s.swept") r.swept;
      add (p "e19.%s.violations") r.violations)
    s.rows;
  add "e19.calibration.runs" s.cal_runs;
  add "e19.calibration.caught" s.cal_caught;
  reg
