(** Chaos-fuzz driver: crash-fuzz ({!Fuzz}) escalated with media faults.

    One chaos run is: a randomized concurrent workload under a seeded
    random schedule, cut by a crash whose aftermath includes {e media
    damage} (bit flips and torn spans in durable bytes, injected by
    {!Onll_faults}), recovered under {e further} adversity — transient
    flush/fence failures and nested crashes armed to fire mid-recovery —
    and finally audited:

    - {b no silent corruption}: every update that responded before the
      crash is either in the recovered history or covered by the recovery
      report's detected-loss set (see {!excuse} below for the one
      fundamental ambiguity);
    - {b no fabrication}: every recovered operation was actually invoked;
    - {b precedence}: the recovered order extends real-time order;
    - {b idempotence}: recovering a second time yields the same history;
    - {b liveness}: the recovered object completes a post-crash era.

    The same plan can be run against the {e unhardened} recovery
    (pre-hardening truncating scan, no reports) to calibrate the audit:
    the violations the hardened path must not produce are exactly the
    ones the unhardened path must. Every run is reproducible from its
    integer seed.

    {b The tail-ambiguity excuse.} A media fault that destroys the {e
    final} entry of a log is indistinguishable from an ordinary torn
    (unacknowledged, unfenced) append — there is nothing after it to
    resync on. Salvage classifies it as a torn tail, which is not
    reported as loss. So when a plan injects media faults, a missing
    completed operation is excused if some recovery attempt salvaged torn
    bytes (counted separately as [tail_ambiguous]); without media faults
    a fenced entry cannot tear and the excuse is off.

    {b Mirroring disambiguates it (E13).} With [replicas >= 2] and faults
    confined to primaries ([fault_scope = `Primary_only]), the ambiguity
    is {e gone}: an ordinary torn append tears every replica's tail (no
    copy of an unfenced append is ever durable), while a media fault hits
    one replica and leaves the mirror intact for salvage to restore. A
    mirrored primary-scoped run therefore gets {e no} excuse — any missing
    completed operation is a hard violation. Only [`All]-scope faults
    (both replicas hit — a genuine double fault) keep the excuse, and
    their losses must still be named by the report. *)

open Onll_util
open Onll_machine
module Faults = Onll_faults.Faults

type plan = {
  seed : int;
  n_procs : int;
  ops_per_proc : int;
  read_ratio : float;
  crash_at : int;  (** scheduler step of the crash *)
  policy : Onll_nvm.Crash_policy.t;
  wait_free : bool;
  local_views : bool;
  shards : int;
      (** run the E14 sharded construction with this many shards
          (1 = plain unsharded ONLL); incompatible with [wait_free] *)
  batched : bool;
      (** run the E16 group-commit construction: updates combined into a
          shared batch made durable under one fence, so the crash can land
          {e mid-batch} — between the announce and the shared fence (the
          whole unfenced tail-batch must vanish with no acknowledged op in
          it) or between the fence and the acknowledgements (every batched
          update must recover exactly once). Composes with [replicas];
          incompatible with [wait_free] and [shards > 1] *)
  log_capacity : int;
  replicas : int;  (** log replication factor (1 = unmirrored) *)
  fault_scope : [ `All | `Primary_only ];
      (** which replicas media faults may hit; [`Primary_only] composes
          [Plog.is_mirror_region] into the fault plan's target, modelling
          independent media (mirrors provably heal) *)
  scrub_every : int;
      (** run an online scrub step every [n] operations per process
          (0 = never) *)
  fault : Faults.Plan.t;  (** media/transient fault plan *)
  nested_crashes : int;  (** nested crashes armed during recovery *)
  hardened : bool;  (** hardened recovery vs. calibration baseline *)
  post_ops : int;  (** single-process operations after recovery *)
}

let default_plan =
  {
    seed = 1;
    n_procs = 3;
    ops_per_proc = 4;
    read_ratio = 0.25;
    crash_at = 60;
    policy = Onll_nvm.Crash_policy.Drop_all;
    wait_free = false;
    local_views = false;
    shards = 1;
    batched = false;
    log_capacity = 1 lsl 16;
    replicas = 1;
    fault_scope = `All;
    scrub_every = 0;
    fault = Faults.Plan.none;
    nested_crashes = 0;
    hardened = true;
    post_ops = 4;
  }

type result = {
  crashed : bool;
  completed : int;  (** updates that responded pre-crash *)
  recovered : int;  (** operations in the final recovered history *)
  lost_reported : int;  (** completed ops covered by the loss report *)
  tail_ambiguous : int;  (** completed ops excused by torn-tail salvage *)
  nested_fired : int;  (** nested crashes that actually interrupted *)
  faults : Faults.counters;  (** everything the fault layer injected *)
  violations : string list;  (** audit failures; empty = pass *)
  metrics : (string * int) list;
      (** cumulative fault/retry/salvage/recovery counters from the run's
          sink registry, for campaign aggregation *)
}

(* The sink counters a campaign aggregates across runs. *)
let tracked_counters =
  [
    "faults.injected";
    "retries";
    "salvages";
    "salvage.quarantined";
    "salvage.bytes_lost";
    "repairs";
    "repair.entries";
    "scrubs";
    "scrub.repaired";
    "scrub.unrepairable";
    "recovery.interruptions";
    "recoveries";
    "crashes";
  ]

module Make (S : Onll_core.Spec.S) = struct
  type obj = {
    o_update : S.update_op -> S.value;
    o_update_detectable : seq:int -> S.update_op -> S.value;
    o_read : S.read_op -> S.value;
    o_recover_report : unit -> Onll_core.Onll.Recovery_report.t;
    o_recover_unhardened : unit -> unit;
    o_scrub : unit -> unit;
    o_was_linearized : Onll_core.Onll.op_id -> bool;
    o_recovered_ops : unit -> (Onll_core.Onll.op_id * int) list;
    o_shard_of : Onll_core.Onll.op_id -> int;
        (** which shard an id's operation routed to (constantly [0]
            unsharded). Execution indices are per shard, so the precedence
            audit only compares indices of ids on the same shard — across
            shards durable linearizability composes by locality, there is
            no shared index space to compare. *)
  }

  let make_obj (module M : Onll_machine.Machine_sig.S) plan sink =
    let cfg =
      {
        Onll_core.Onll.Config.log_capacity = plan.log_capacity;
        replicas = plan.replicas;
        local_views = plan.local_views;
        region_suffix = "";
        sink;
      }
    in
    if plan.shards > 1 then begin
      if plan.wait_free then
        invalid_arg "Chaos: shards > 1 with wait_free is not supported";
      if plan.batched then
        invalid_arg "Chaos: shards > 1 with batched is not supported";
      let module C = Onll_sharded.Make (M) (S) in
      let obj = C.make ~shards:plan.shards cfg in
      (* The audit interrogates detectability by id alone, but sharded
         identities are per-shard — remember each id's routing operation.
         A volatile (non-simulated-NVM) table, so it survives simulated
         crashes exactly like the audit's own bookkeeping does. *)
      let routes : (Onll_core.Onll.op_id, S.update_op) Hashtbl.t =
        Hashtbl.create 64
      in
      {
        o_update =
          (fun op ->
            let id, v = C.update_with_id obj op in
            Hashtbl.replace routes id op;
            v);
        o_update_detectable =
          (fun ~seq op ->
            let id = { Onll_core.Onll.id_proc = M.self (); id_seq = seq } in
            Hashtbl.replace routes id op;
            C.update_detectable obj ~seq op);
        o_read = C.read obj;
        o_recover_report = (fun () -> C.recover_report obj);
        o_recover_unhardened = (fun () -> C.recover_unhardened obj);
        o_scrub = (fun () -> ignore (C.scrub obj));
        o_was_linearized =
          (fun id ->
            match Hashtbl.find_opt routes id with
            | Some op -> C.was_linearized obj op id
            | None -> false);
        o_recovered_ops =
          (fun () ->
            (* Shard-major like [recovered_ops]; indices are (shard,
               per-shard exec idx) flattened so idempotence comparison
               still works. Precedence is audited per shard. *)
            List.map (fun (_, id, idx) -> (id, idx)) (C.recovered_ops obj));
        o_shard_of =
          (fun id ->
            match Hashtbl.find_opt routes id with
            | Some op -> C.shard_of_update obj op
            | None -> -1);
      }
    end
    else if plan.batched then begin
      if plan.wait_free then
        invalid_arg "Chaos: batched with wait_free is not supported";
      let module C = Onll_batched.Make (M) (S) in
      let obj = C.make cfg in
      {
        o_update = C.update obj;
        o_update_detectable = (fun ~seq op -> C.update_detectable obj ~seq op);
        o_read = C.read obj;
        o_recover_report = (fun () -> C.recover_report obj);
        o_recover_unhardened = (fun () -> C.recover_unhardened obj);
        o_scrub = (fun () -> ignore (C.scrub obj));
        o_was_linearized = C.was_linearized obj;
        o_recovered_ops = (fun () -> C.recovered_ops obj);
        o_shard_of = (fun _ -> 0);
      }
    end
    else if plan.wait_free then begin
      let module C = Onll_core.Onll.Make_wait_free (M) (S) in
      let obj = C.make cfg in
      {
        o_update = C.update obj;
        o_update_detectable = (fun ~seq op -> C.update_detectable obj ~seq op);
        o_read = C.read obj;
        o_recover_report = (fun () -> C.recover_report obj);
        o_recover_unhardened = (fun () -> C.recover_unhardened obj);
        o_scrub = (fun () -> ignore (C.scrub obj));
        o_was_linearized = C.was_linearized obj;
        o_recovered_ops = (fun () -> C.recovered_ops obj);
        o_shard_of = (fun _ -> 0);
      }
    end
    else begin
      let module C = Onll_core.Onll.Make (M) (S) in
      let obj = C.make cfg in
      {
        o_update = C.update obj;
        o_update_detectable = (fun ~seq op -> C.update_detectable obj ~seq op);
        o_read = C.read obj;
        o_recover_report = (fun () -> C.recover_report obj);
        o_recover_unhardened = (fun () -> C.recover_unhardened obj);
        o_scrub = (fun () -> ignore (C.scrub obj));
        o_was_linearized = C.was_linearized obj;
        o_recovered_ops = (fun () -> C.recovered_ops obj);
        o_shard_of = (fun _ -> 0);
      }
    end

  let run ~plan ~gen_update ~gen_read () =
    let registry = Onll_obs.Metrics.create () in
    let sink = Onll_obs.Sink.make ~registry () in
    let sim =
      Sim.create ~sink ~max_processes:(max plan.n_procs 1)
        ~crash_policy:plan.policy ()
    in
    let mem = Sim.memory sim in
    let obj = make_obj (Sim.machine sim) plan sink in
    let fault_plan =
      match plan.fault_scope with
      | `All -> plan.fault
      | `Primary_only ->
          let base = plan.fault.Faults.Plan.target in
          {
            plan.fault with
            Faults.Plan.target =
              (fun n ->
                base n && not (Onll_plog.Plog.is_mirror_region n));
          }
    in
    let handle = Faults.install mem fault_plan in
    (* Real-time bookkeeping: ids with invocation/response stamps from a
       logical clock. Plain refs mutated inside simulated processes — not
       shared variables, so not scheduling points. *)
    let clock = ref 0 in
    let tick () =
      incr clock;
      !clock
    in
    let invoked = ref [] (* (id, inv_time) *) in
    let completed = ref [] (* (id, inv_time, ret_time) *) in
    let mk_proc p _ =
      let rng = Splitmix.create ((plan.seed * 1_000_003) + p) in
      let seq = ref 0 in
      for k = 1 to plan.ops_per_proc do
        if Splitmix.float rng 1.0 < plan.read_ratio then
          ignore (obj.o_read (gen_read rng))
        else begin
          let op = gen_update rng in
          let id = { Onll_core.Onll.id_proc = p; id_seq = !seq } in
          let inv = tick () in
          invoked := (id, inv) :: !invoked;
          let _v = obj.o_update_detectable ~seq:!seq op in
          incr seq;
          completed := (id, inv, tick ()) :: !completed
        end;
        (* Online scrubbing as a cooperative scheduler step: the crash can
           land mid-scrub, which is part of what the audit must survive. *)
        if plan.scrub_every > 0 && k mod plan.scrub_every = 0 then
          obj.o_scrub ()
      done
    in
    let strategy =
      let base = Onll_sched.Sched.Strategy.random ~seed:plan.seed in
      fun view ->
        if view.Onll_sched.Sched.Strategy.steps () >= plan.crash_at then
          Onll_sched.Sched.Strategy.Crash_now
        else base view
    in
    let outcome =
      Sim.run sim strategy (Array.init plan.n_procs (fun p -> mk_proc p))
    in
    let crashed = outcome = Onll_sched.Sched.World.Crashed in
    let violations = ref [] in
    let fail fmt =
      Format.kasprintf (fun s -> violations := s :: !violations) fmt
    in
    let lost_reported = ref 0 in
    let tail_ambiguous = ref 0 in
    let nested_fired = ref 0 in
    if crashed then begin
      (* Runtime rot is the online scrubber's regime; pause it for the
         recovery/audit phase (recovery adversity is modelled by crash-time
         corruption, transients and nested crashes instead). *)
      Faults.set_rot handle false;
      (* Recover under chaos: nested crashes are armed to fire a random
         number of durable-memory operations into the attempt; each firing
         is followed by a real crash (media may corrupt again, per the
         plan) and a fresh attempt. The budget bounds the loop; the last
         attempt runs unarmed. *)
      let rng = Splitmix.create (plan.seed lxor 0x5EED) in
      let recover_once () =
        if plan.hardened then Some (obj.o_recover_report ())
        else begin
          obj.o_recover_unhardened ();
          None
        end
      in
      let rec go budget =
        (* Recovery performs a few dozen durable-memory operations (salvage
           batches its log reads), so a short fuse is what actually lands
           mid-attempt. *)
        if budget > 0 && plan.nested_crashes > 0 then
          Faults.arm_recovery_crash handle ~at_op:(Splitmix.int rng 24)
        else Faults.disarm handle;
        match recover_once () with
        | r ->
            Faults.disarm handle;
            r
        | exception Onll_nvm.Memory.Injected_crash ->
            incr nested_fired;
            Onll_nvm.Memory.crash mem ~policy:plan.policy;
            go (budget - 1)
      in
      let report = go plan.nested_crashes in
      (* Idempotence: an immediate re-recovery must adopt the same
         history. *)
      let ops1 = obj.o_recovered_ops () in
      ignore (recover_once ());
      let ops2 = obj.o_recovered_ops () in
      if ops1 <> ops2 then
        fail "recovery not idempotent: %d ops then %d ops"
          (List.length ops1) (List.length ops2);
      (* Audit 1: no silent corruption. *)
      let media =
        plan.fault.Faults.Plan.bit_flips_per_crash > 0
        || plan.fault.Faults.Plan.torn_spans_per_crash > 0
      in
      let salvaged_bytes =
        Onll_obs.Metrics.counter_value registry "salvage.bytes_lost"
      in
      (* The torn-tail excuse only stands while it is genuinely ambiguous:
         with faults allowed into every replica (or no mirror at all) a
         fault on the final entry is indistinguishable from an ordinary
         torn append. With a mirror and primary-scoped faults it is not —
         the intact mirror tail must have been restored — so the excuse is
         withdrawn and any missing completed op is a hard violation. *)
      let excusable = plan.replicas = 1 || plan.fault_scope = `All in
      let reported id =
        match report with
        | None -> `No
        | Some r ->
            if
              List.mem id r.Onll_core.Onll.Recovery_report.dropped
              || Onll_core.Onll.Recovery_report.detected_loss r
            then `Reported
            else if media && salvaged_bytes > 0 && excusable then
              `Tail_ambiguous
            else `No
      in
      List.iter
        (fun (id, _, _) ->
          if not (obj.o_was_linearized id) then
            match reported id with
            | `Reported -> incr lost_reported
            | `Tail_ambiguous -> incr tail_ambiguous
            | `No ->
                fail "silent loss: completed update %a gone, nothing reported"
                  Onll_core.Onll.pp_op_id id)
        !completed;
      (* Audit 2: no fabrication. *)
      List.iter
        (fun (id, _) ->
          if not (List.mem_assoc id !invoked) then
            fail "recovery fabricated operation %a" Onll_core.Onll.pp_op_id id)
        ops2;
      (* Audit 3: recovered order extends real-time precedence. *)
      let idx_of id = List.assoc_opt id ops2 in
      List.iter
        (fun (id1, _, ret1) ->
          List.iter
            (fun (id2, inv2) ->
              if
                id1 <> id2 && ret1 < inv2
                && obj.o_shard_of id1 = obj.o_shard_of id2
              then
                match (idx_of id1, idx_of id2) with
                | Some i1, Some i2 when i1 >= i2 ->
                    fail
                      "recovered order violates precedence: %a (idx %d) \
                       returned before %a (idx %d) was invoked"
                      Onll_core.Onll.pp_op_id id1 i1 Onll_core.Onll.pp_op_id
                      id2 i2
                | _ -> ())
            !invoked)
        !completed;
      (* Audit 4: the recovered object is alive. *)
      if plan.post_ops > 0 then begin
        let prng = Splitmix.create (plan.seed + 777) in
        let post _ =
          for k = 1 to plan.post_ops do
            if k mod 2 = 0 then ignore (obj.o_read (gen_read prng))
            else ignore (obj.o_update (gen_update prng))
          done
        in
        match Sim.run sim Onll_sched.Sched.Strategy.round_robin [| post |] with
        | Onll_sched.Sched.World.Completed -> ()
        | _ -> fail "post-crash era did not complete"
      end
    end;
    Faults.remove handle;
    {
      crashed;
      completed = List.length !completed;
      recovered =
        (if crashed then List.length (obj.o_recovered_ops ()) else 0);
      lost_reported = !lost_reported;
      tail_ambiguous = !tail_ambiguous;
      nested_fired = !nested_fired;
      faults = Faults.counters handle;
      violations = List.rev !violations;
      metrics =
        List.map
          (fun k -> (k, Onll_obs.Metrics.counter_value registry k))
          tracked_counters;
    }
end
