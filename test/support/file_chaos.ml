(* E17: the file-backend crash harness.

   One EPOCH is one process lifetime against a store directory: open the
   file-backed machine, run hardened recovery, attach a durable session,
   resolve the in-doubt operation, then submit increments until the
   counter reaches [target]. The epoch narrates itself through a tiny
   line protocol (RESOLUTION / NEXT_SEQ / V0 / ACK / APPLIED / DONE /
   DEGRADED) emitted through a callback — the subprocess worker prints
   and flushes each line (so everything acked before a SIGKILL reaches
   the supervisor), while the in-process gate slice just collects them.

   The AUDIT consumes those lines across epochs and checks the
   exactly-once / no-lost-ack invariants:
   - a sequence number is confirmed (ACKed, adopted or re-acked) at most
     once — a second confirmation is a duplicate;
   - the recovered value V0 never exceeds NEXT_SEQ (more applied
     increments than intents ever created = a duplicated apply);
   - V0 never falls below the number of confirmed seqs, nor below the
     highest acked value (either would be an acked update the media
     lost);
   - the final epoch's APPLIED scan (was_linearized over every seq) must
     contain every confirmed seq and agree with the final value.

   Crashes come in two flavours, selected by the fault plan's kill mode:
   [Sigkill] for the out-of-process campaign (the supervisor spawns
   `onll store worker` and expects WSIGNALED), [Raise] for the
   deterministic in-process slice the bench gate replays (the injected
   crash is caught here, the store closed unfsynced, and the next epoch
   reopens the directory). *)

module Faults = Onll_faults.Faults
module Fm = Onll_machine.File_machine
module File_memory = Onll_nvm.File_memory
module Cs = Onll_specs.Counter
module Metrics = Onll_obs.Metrics

type outcome =
  | Done of int  (** reached target; final value *)
  | Crashed  (** in-process injected crash (Raise mode) *)
  | Degraded of string  (** fail-stop: fsync retry budget exhausted *)
  | Failed of string  (** a submission returned an error *)

(* {1 One epoch} *)

let run_epoch ?(log_capacity = 1 lsl 14) ?(retry_budget = 8) ?(backoff_ns = 0)
    ?(sector_size = 512) ?fplan ~emit ~dir ~replicas ~target () =
  let fmach =
    Fm.create ~sector_size ~retry_budget ~backoff_ns ~dir ~max_processes:1 ()
  in
  let inj =
    Option.map (fun p -> Faults.install_file (Fm.memory fmach) p) fplan
  in
  ignore (Fm.register fmach);
  let module M = (val Fm.machine fmach) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let module Sess = Onll_session.Make (M) (Cs) in
  let module Over = Sess.Over (C) in
  let finish outcome =
    Option.iter Faults.remove_file inj;
    Fm.close fmach;
    outcome
  in
  try
    let cfg =
      { Onll_core.Onll.Config.default with log_capacity; replicas }
    in
    let obj = C.make cfg in
    ignore (C.recover_report obj);
    let backend = Over.backend ~log_capacity obj in
    let config = { Onll_session.default_config with replicas } in
    let sess = Sess.attach ~config ~client:0 backend in
    (match Sess.recover sess with
    | Sess.No_pending -> emit "RESOLUTION none"
    | Sess.Was_applied id ->
        emit (Printf.sprintf "RESOLUTION adopted %d" id.Onll_core.Onll.id_seq)
    | Sess.Reinvoked (_old, fresh, v) ->
        emit
          (Printf.sprintf "RESOLUTION reacked %d %d"
             fresh.Onll_core.Onll.id_seq v)
    | Sess.Refused id ->
        emit (Printf.sprintf "RESOLUTION refused %d" id.Onll_core.Onll.id_seq)
    | Sess.Unresolved (id, _) ->
        emit
          (Printf.sprintf "RESOLUTION unresolved %d"
             id.Onll_core.Onll.id_seq));
    emit (Printf.sprintf "NEXT_SEQ %d" (Sess.next_seq sess));
    let v0 = Sess.read sess Cs.Get in
    emit (Printf.sprintf "V0 %d" v0);
    let v = ref v0 in
    let failed = ref None in
    while !failed = None && !v < target do
      let seq = Sess.next_seq sess in
      match Sess.submit sess Cs.Increment with
      | Ok v' ->
          emit (Printf.sprintf "ACK %d %d" seq v');
          v := v'
      | Error e ->
          failed := Some (Format.asprintf "%a" Onll_session.pp_error e)
    done;
    match !failed with
    | Some msg ->
        emit ("ERR " ^ msg);
        finish (Failed msg)
    | None ->
        let applied =
          List.filter
            (fun s ->
              C.was_linearized obj
                { Onll_core.Onll.id_proc = 0; id_seq = s })
            (List.init (Sess.next_seq sess) Fun.id)
        in
        emit
          (Printf.sprintf "APPLIED %d%s" (List.length applied)
             (String.concat ""
                (List.map (fun s -> " " ^ string_of_int s) applied)));
        let vf = Sess.read sess Cs.Get in
        emit (Printf.sprintf "DONE %d" vf);
        finish (Done vf)
  with
  | Onll_nvm.Memory.Injected_crash -> finish Crashed
  | File_memory.Degraded msg ->
      emit ("DEGRADED " ^ msg);
      finish (Degraded msg)

(* {1 The audit} *)

type audit = {
  confirmed : (int, unit) Hashtbl.t;  (* seqs acked/adopted, ever *)
  mutable max_acked : int;  (* highest counter value ever acked *)
  mutable next_seq_seen : int;
  mutable last_applied : int;
  mutable acks : int;
  mutable adopted : int;
  mutable reacked : int;
  mutable degraded_epochs : int;
  mutable done_value : int option;
  mutable violations : string list;
}

let audit_create () =
  {
    confirmed = Hashtbl.create 64;
    max_acked = 0;
    next_seq_seen = 0;
    last_applied = 0;
    acks = 0;
    adopted = 0;
    reacked = 0;
    degraded_epochs = 0;
    done_value = None;
    violations = [];
  }

let violation a fmt =
  Printf.ksprintf (fun s -> a.violations <- s :: a.violations) fmt

let confirm a seq =
  if Hashtbl.mem a.confirmed seq then
    violation a "seq %d confirmed twice (duplicate)" seq
  else Hashtbl.replace a.confirmed seq ()

let audit_line a line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "RESOLUTION"; "none" ] -> ()
  | [ "RESOLUTION"; "adopted"; s ] ->
      (* Was_applied is idempotent confirmation, not a second apply: the
         op may have been acked already, with the ack record not yet
         durable when the crash hit. *)
      a.adopted <- a.adopted + 1;
      Hashtbl.replace a.confirmed (int_of_string s) ()
  | [ "RESOLUTION"; "reacked"; s; v ] ->
      a.reacked <- a.reacked + 1;
      confirm a (int_of_string s);
      let v = int_of_string v in
      if v <= a.max_acked then
        violation a "reacked value %d not above %d" v a.max_acked
      else a.max_acked <- v
  | [ "RESOLUTION"; "refused"; _ ] -> ()
  | [ "RESOLUTION"; "unresolved"; s ] ->
      violation a "seq %s left unresolved by recovery" s
  | [ "NEXT_SEQ"; n ] -> a.next_seq_seen <- int_of_string n
  | [ "V0"; v ] ->
      let v = int_of_string v in
      if v > a.next_seq_seen then
        violation a "value %d exceeds %d intents ever created (duplicate)" v
          a.next_seq_seen;
      if v < Hashtbl.length a.confirmed then
        violation a "value %d below %d confirmed updates (lost ack)" v
          (Hashtbl.length a.confirmed);
      if v < a.max_acked then
        violation a "value %d below highest acked value %d (lost data)" v
          a.max_acked
  | [ "ACK"; s; v ] ->
      a.acks <- a.acks + 1;
      confirm a (int_of_string s);
      let v = int_of_string v in
      if v <= a.max_acked then
        violation a "acked value %d not above %d" v a.max_acked
      else a.max_acked <- v
  | "APPLIED" :: n :: seqs ->
      let applied = List.map int_of_string seqs in
      a.last_applied <- int_of_string n;
      Hashtbl.iter
        (fun seq () ->
          if not (List.mem seq applied) then
            violation a "confirmed seq %d not applied (lost ack)" seq)
        a.confirmed
  | [ "DONE"; v ] ->
      let v = int_of_string v in
      a.done_value <- Some v;
      if v <> a.last_applied then
        violation a "final value %d != %d applied operations" v
          a.last_applied
  | "DEGRADED" :: _ -> a.degraded_epochs <- a.degraded_epochs + 1
  | "ERR" :: rest ->
      violation a "submission error: %s" (String.concat " " rest)
  | _ -> violation a "unparseable worker line: %s" line

let audit_done a ~target =
  match a.done_value with
  | None -> violation a "scenario never completed"
  | Some v -> if v <> target then violation a "final value %d != target %d" v target

(* {1 Seeded kill schedules}

   The n-th epoch of a scenario is killed at a fence index that grows
   with n, so every epoch durably out-runs the previous one and the
   scenario converges; the cut lands before any write, mid-write, or at
   the fsync point, round-robin over the seed. *)

let kill_plan ~mode ~seed ~epoch =
  {
    Faults.File_plan.none with
    base = { Onll_faults.Faults.Plan.none with seed };
    kill_at_fence = 2 + (2 * epoch) + (seed mod 3);
    kill_after_sectors = [| 0; 1; 3; -1 |].((seed + epoch) mod 4);
    kill_mode = mode;
  }

(* {1 The deterministic in-process slice (bench gate + tests)}

   Kill mode [Raise]: the injected crash is an exception caught by
   [run_epoch], the store is closed without fsync and the next epoch
   reopens the same directory — fully deterministic, no subprocesses, so
   the counters below are gate-golden material. *)

type slice_totals = {
  mutable t_scenarios : int;
  mutable t_epochs : int;
  mutable t_kills : int;
  mutable t_acks : int;
  mutable t_confirmed : int;
  mutable t_adopted : int;
  mutable t_reacked : int;
  mutable t_violations : int;
}

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "onll-e17-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir d 0o755;
    d

let rm_rf dir =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> go (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then go dir

let run_restart_scenario ~replicas ~target ~seed totals =
  let dir = fresh_dir () in
  let a = audit_create () in
  let max_epochs = (3 * target) + 8 in
  (try
     let finished = ref false in
     let epoch = ref 0 in
     while (not !finished) && !epoch < max_epochs do
       let fplan =
         kill_plan ~mode:Faults.File_plan.Raise ~seed ~epoch:!epoch
       in
       let outcome =
         run_epoch ~fplan ~emit:(audit_line a) ~dir ~replicas ~target ()
       in
       totals.t_epochs <- totals.t_epochs + 1;
       (match outcome with
       | Done _ -> finished := true
       | Crashed -> totals.t_kills <- totals.t_kills + 1
       | Degraded m -> violation a "unexpected degradation: %s" m
       | Failed m -> violation a "unexpected failure: %s" m);
       incr epoch
     done
   with e ->
     violation a "scenario raised %s" (Printexc.to_string e));
  audit_done a ~target;
  totals.t_scenarios <- totals.t_scenarios + 1;
  totals.t_acks <- totals.t_acks + a.acks;
  totals.t_confirmed <- totals.t_confirmed + Hashtbl.length a.confirmed;
  totals.t_adopted <- totals.t_adopted + a.adopted;
  totals.t_reacked <- totals.t_reacked + a.reacked;
  totals.t_violations <- totals.t_violations + List.length a.violations;
  List.iter (Printf.eprintf "e17 violation: %s\n%!") (List.rev a.violations);
  rm_rf dir

let slice_to_metrics reg ~prefix t =
  let c name v = Metrics.add (Metrics.counter reg (prefix ^ "." ^ name)) v in
  c "scenarios" t.t_scenarios;
  c "runs" t.t_epochs;
  c "kills" t.t_kills;
  c "acks" t.t_acks;
  c "confirmed" t.t_confirmed;
  c "adopted" t.t_adopted;
  c "reacked" t.t_reacked;
  c "violations" t.t_violations

(* fsync-failure slices: bounded-retry success, then the sticky
   fail-stop. Both deterministic (backoff 0, fixed injection sites). *)
let run_eio_slices reg =
  let c name v = Metrics.add (Metrics.counter reg name) v in
  (* EIO within the retry budget: the fence re-writes and lands; every
     submission acks; nothing degrades. *)
  let dir = fresh_dir () in
  let a = audit_create () in
  let fplan =
    {
      Faults.File_plan.none with
      fsync_eio_from = 2;
      fsync_eio_count = 2;
      drop_pages_on_eio = true;
    }
  in
  let target = 6 in
  (match run_epoch ~fplan ~emit:(audit_line a) ~dir ~replicas:1 ~target () with
  | Done v -> if v <> target then violation a "retry arm: %d != target" v
  | Crashed -> violation a "retry arm crashed"
  | Degraded m -> violation a "retry arm degraded within budget: %s" m
  | Failed m -> violation a "retry arm failed: %s" m);
  audit_done a ~target;
  c "e17.eio.retry.acks" a.acks;
  c "e17.eio.retry.violations" (List.length a.violations);
  List.iter (Printf.eprintf "e17 violation: %s\n%!") (List.rev a.violations);
  rm_rf dir;
  (* EIO past the budget: fsyncgate page loss on every attempt. The fence
     must never succeed, the store must degrade sticky, the epoch must not
     ack the in-flight update — and a clean restart must still see every
     update that WAS acked before the first EIO. *)
  let dir = fresh_dir () in
  let a = audit_create () in
  let fplan =
    {
      Faults.File_plan.none with
      fsync_eio_from = 4;
      fsync_eio_count = 10_000;
      drop_pages_on_eio = true;
    }
  in
  let degraded_seen = ref 0 in
  (match run_epoch ~fplan ~emit:(audit_line a) ~dir ~replicas:1 ~target:40 ()
   with
  | Degraded _ -> incr degraded_seen
  | Done _ -> violation a "sticky arm completed despite unbounded EIO"
  | Crashed -> violation a "sticky arm crashed"
  | Failed m -> violation a "sticky arm failed oddly: %s" m);
  let acked_before = a.acks + a.reacked in
  (* clean restart over the same directory: recovery + the audit's V0
     checks prove no acked update was lost and the failed fence's update
     was never acked *)
  let target = acked_before + 2 in
  (match run_epoch ~emit:(audit_line a) ~dir ~replicas:1 ~target () with
  | Done _ -> ()
  | Crashed | Degraded _ | Failed _ ->
      violation a "sticky arm: clean restart did not complete");
  audit_done a ~target;
  c "e17.eio.sticky.degraded" !degraded_seen;
  c "e17.eio.sticky.acks_before" acked_before;
  c "e17.eio.sticky.violations" (List.length a.violations);
  List.iter (Printf.eprintf "e17 violation: %s\n%!") (List.rev a.violations);
  rm_rf dir;
  (* short writes: torn sectors at pwrite granularity, healed by the
     bounded re-write retry — all acks land, zero violations *)
  let dir = fresh_dir () in
  let a = audit_create () in
  let fplan =
    {
      Faults.File_plan.none with
      base = { Onll_faults.Faults.Plan.none with seed = 11 };
      short_write_prob = 0.2;
    }
  in
  let target = 8 in
  (match run_epoch ~fplan ~emit:(audit_line a) ~dir ~replicas:1 ~target () with
  | Done _ -> ()
  | Crashed -> violation a "short-write arm crashed"
  | Degraded m -> violation a "short-write arm degraded: %s" m
  | Failed m -> violation a "short-write arm failed: %s" m);
  audit_done a ~target;
  c "e17.shortw.acks" a.acks;
  c "e17.shortw.violations" (List.length a.violations);
  List.iter (Printf.eprintf "e17 violation: %s\n%!") (List.rev a.violations);
  rm_rf dir;
  (* disk-full: one injected ENOSPC fails the attempt, the retry lands *)
  let dir = fresh_dir () in
  let a = audit_create () in
  let fplan =
    { Faults.File_plan.none with enospc_at_write = 3 }
  in
  let target = 5 in
  (match run_epoch ~fplan ~emit:(audit_line a) ~dir ~replicas:1 ~target () with
  | Done _ -> ()
  | Crashed -> violation a "enospc arm crashed"
  | Degraded m -> violation a "enospc arm degraded: %s" m
  | Failed m -> violation a "enospc arm failed: %s" m);
  audit_done a ~target;
  c "e17.enospc.acks" a.acks;
  c "e17.enospc.violations" (List.length a.violations);
  List.iter (Printf.eprintf "e17 violation: %s\n%!") (List.rev a.violations);
  rm_rf dir

let gate_slices reg =
  let plain =
    {
      t_scenarios = 0;
      t_epochs = 0;
      t_kills = 0;
      t_acks = 0;
      t_confirmed = 0;
      t_adopted = 0;
      t_reacked = 0;
      t_violations = 0;
    }
  in
  for seed = 0 to 2 do
    run_restart_scenario ~replicas:1 ~target:6 ~seed plain
  done;
  slice_to_metrics reg ~prefix:"e17.restart.plain" plain;
  let mirrored =
    {
      t_scenarios = 0;
      t_epochs = 0;
      t_kills = 0;
      t_acks = 0;
      t_confirmed = 0;
      t_adopted = 0;
      t_reacked = 0;
      t_violations = 0;
    }
  in
  for seed = 0 to 2 do
    run_restart_scenario ~replicas:2 ~target:6 ~seed mirrored
  done;
  slice_to_metrics reg ~prefix:"e17.restart.mirrored" mirrored;
  run_eio_slices reg

(* {1 The out-of-process campaign (kill -9)}

   The real thing: spawn `onll store worker` subprocesses, SIGKILL them
   at seeded fence points via the fault layer, rerun recovery in the
   next spawn, audit the same line protocol off the worker's stdout. *)

type campaign = {
  mutable c_scenarios : int;
  mutable c_runs : int;
  mutable c_sigkills : int;
  mutable c_degraded : int;
  mutable c_acks : int;
  mutable c_confirmed : int;
  mutable c_violations : string list;
}

let worker_args ~dir ~replicas ~target (fplan : Faults.File_plan.t option) =
  (* single-token --flag=value form: a bare "-1" operand would parse as
     an option *)
  let base =
    [
      "store"; "worker"; "--dir=" ^ dir;
      Printf.sprintf "--target=%d" target;
      Printf.sprintf "--replicas=%d" replicas;
    ]
  in
  match fplan with
  | None -> base
  | Some p ->
      let open Faults.File_plan in
      base
      @ (if p.kill_at_fence > 0 then
           [
             Printf.sprintf "--kill-at-fence=%d" p.kill_at_fence;
             Printf.sprintf "--kill-after-sectors=%d" p.kill_after_sectors;
           ]
         else [])
      @ (if p.fsync_eio_from > 0 then
           [
             Printf.sprintf "--fsync-eio-from=%d" p.fsync_eio_from;
             Printf.sprintf "--fsync-eio-count=%d" p.fsync_eio_count;
           ]
         else [])
      @ (if p.short_write_prob > 0. then
           [ Printf.sprintf "--short-write-prob=%f" p.short_write_prob ]
         else [])
      @
      if p.base.Onll_faults.Faults.Plan.seed <> 0 then
        [ Printf.sprintf "--seed=%d" p.base.Onll_faults.Faults.Plan.seed ]
      else []

let spawn_worker ~worker args =
  let r, w = Unix.pipe () in
  let pid =
    Unix.create_process worker
      (Array.of_list (worker :: args))
      Unix.stdin w Unix.stderr
  in
  Unix.close w;
  let ic = Unix.in_channel_of_descr r in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let _, status = Unix.waitpid [] pid in
  (List.rev !lines, status)

let campaign_scenario cam ~worker ~dir ~replicas ~target ~seed =
  let a = audit_create () in
  let max_epochs = (3 * target) + 8 in
  let finished = ref false in
  let epoch = ref 0 in
  while (not !finished) && !epoch < max_epochs do
    let fplan =
      kill_plan ~mode:Faults.File_plan.Sigkill ~seed ~epoch:!epoch
    in
    let lines, status =
      spawn_worker ~worker (worker_args ~dir ~replicas ~target (Some fplan))
    in
    cam.c_runs <- cam.c_runs + 1;
    List.iter (audit_line a) lines;
    (match status with
    | Unix.WSIGNALED s when s = Sys.sigkill ->
        cam.c_sigkills <- cam.c_sigkills + 1
    | Unix.WEXITED 0 -> finished := true
    | Unix.WEXITED n -> violation a "worker exited %d" n
    | Unix.WSIGNALED s -> violation a "worker died on signal %d" s
    | Unix.WSTOPPED _ -> violation a "worker stopped");
    incr epoch
  done;
  if not !finished then begin
    (* the armed kill never let it finish in time; one clean run must *)
    let lines, status =
      spawn_worker ~worker (worker_args ~dir ~replicas ~target None)
    in
    cam.c_runs <- cam.c_runs + 1;
    List.iter (audit_line a) lines;
    match status with
    | Unix.WEXITED 0 -> ()
    | _ -> violation a "clean final worker did not complete"
  end;
  audit_done a ~target;
  cam.c_scenarios <- cam.c_scenarios + 1;
  cam.c_acks <- cam.c_acks + a.acks;
  cam.c_confirmed <- cam.c_confirmed + Hashtbl.length a.confirmed;
  cam.c_violations <- List.rev_append a.violations cam.c_violations

let campaign_eio cam ~worker ~dir ~replicas ~target =
  let a = audit_create () in
  (* sticky fail-stop under endless EIO: worker must exit 3 (degraded) *)
  let sticky =
    {
      Faults.File_plan.none with
      fsync_eio_from = 4;
      fsync_eio_count = 10_000;
    }
  in
  let lines, status =
    spawn_worker ~worker (worker_args ~dir ~replicas ~target (Some sticky))
  in
  cam.c_runs <- cam.c_runs + 1;
  List.iter (audit_line a) lines;
  (match status with
  | Unix.WEXITED 3 -> cam.c_degraded <- cam.c_degraded + 1
  | Unix.WEXITED 0 -> violation a "eio worker completed despite endless EIO"
  | _ -> violation a "eio worker died unexpectedly");
  (* clean rerun: everything acked before the EIO storm must be there,
     the update whose fence failed must not *)
  let target = Hashtbl.length a.confirmed + 2 in
  let lines, status =
    spawn_worker ~worker (worker_args ~dir ~replicas ~target None)
  in
  cam.c_runs <- cam.c_runs + 1;
  List.iter (audit_line a) lines;
  (match status with
  | Unix.WEXITED 0 -> ()
  | _ -> violation a "clean rerun after EIO did not complete");
  audit_done a ~target;
  cam.c_scenarios <- cam.c_scenarios + 1;
  cam.c_acks <- cam.c_acks + a.acks;
  cam.c_confirmed <- cam.c_confirmed + Hashtbl.length a.confirmed;
  cam.c_violations <- List.rev_append a.violations cam.c_violations

let run_campaign ~worker ~dir ~seeds ~target =
  let cam =
    {
      c_scenarios = 0;
      c_runs = 0;
      c_sigkills = 0;
      c_degraded = 0;
      c_acks = 0;
      c_confirmed = 0;
      c_violations = [];
    }
  in
  List.iter
    (fun (arm, replicas) ->
      for seed = 0 to seeds - 1 do
        let sdir = Filename.concat dir (Printf.sprintf "%s-%d" arm seed) in
        Unix.mkdir sdir 0o755;
        campaign_scenario cam ~worker ~dir:sdir ~replicas ~target ~seed
      done)
    [ ("plain", 1); ("mirrored", 2) ];
  List.iter
    (fun (arm, replicas) ->
      let sdir = Filename.concat dir ("eio-" ^ arm) in
      Unix.mkdir sdir 0o755;
      campaign_eio cam ~worker ~dir:sdir ~replicas ~target:30)
    [ ("plain", 1); ("mirrored", 2) ];
  cam

let campaign_to_metrics reg cam =
  let c name v = Metrics.add (Metrics.counter reg name) v in
  c "e17c.campaign.scenarios" cam.c_scenarios;
  c "e17c.campaign.runs" cam.c_runs;
  c "e17c.campaign.sigkills" cam.c_sigkills;
  c "e17c.campaign.degraded" cam.c_degraded;
  c "e17c.campaign.acks" cam.c_acks;
  c "e17c.campaign.confirmed" cam.c_confirmed;
  c "e17c.campaign.violations" (List.length cam.c_violations)

let pp_campaign ppf cam =
  Format.fprintf ppf
    "scenarios=%d runs=%d sigkills=%d degraded=%d acks=%d confirmed=%d \
     violations=%d"
    cam.c_scenarios cam.c_runs cam.c_sigkills cam.c_degraded cam.c_acks
    cam.c_confirmed
    (List.length cam.c_violations)

let campaign_violations cam = cam.c_violations
