(** E15 — exactly-once session chaos: crash-fuzz the {!Onll_session}
    client protocol and audit it at the {e identity} level.

    One run is: [n_procs] clients, each driving its own durable session
    over a shared object (plain, mirrored or sharded), submitting a
    deterministic per-client workload under a seeded random schedule with
    transient flush/fence faults — cut by a crash, recovered under
    nested-crash adversity, resumed (every client resolves its in-doubt
    operation from inside the simulated world, then finishes its
    workload) and audited:

    - {b exactly-once}: for every logical client operation, the number of
      identities that linearized is at most one — re-invocation after a
      crash (or after a timeout) must never duplicate an operation that
      survived;
    - {b no lost acks}: every operation acknowledged to the client is in
      the final history under one of its identities;
    - {b value}: the object's final state equals what the per-identity
      application counts predict — duplicate-sensitive specs (counter,
      ledger) make both duplication and loss observable in the state
      itself, not just in the bookkeeping;
    - {b idempotence}: a second {!Onll_session.Make.recover} immediately
      after the first is a no-op;
    - {b liveness}: the post-crash era completes.

    The {!arm.Naive} arm is the calibration: the same workload driven as
    {e at-least-once} — volatile sequence numbers, blind re-invocation
    after a timeout or a restart, never asking
    {!Onll_core.Onll.CONSTRUCTION.was_linearized} first. Its duplicates
    are counted (not flagged): a campaign in which the naive arm never
    duplicates proves nothing about the session arms' zeros.

    Seeds where [seed mod 5 = 0] are {e transient storms} (no crash, but
    flush/fence failure runs long enough to escape the log layer's
    bounded retry), exercising the in-run half of the protocol: backoff,
    in-doubt detection, and timeout resolution without a restart. *)

open Onll_util
open Onll_machine
module Faults = Onll_faults.Faults

(** Which backend the sessions drive — or the at-least-once baseline. *)
type arm = Plain | Mirrored | Sharded | Naive

let arm_label = function
  | Plain -> "plain"
  | Mirrored -> "mirrored"
  | Sharded -> "sharded"
  | Naive -> "naive"

type plan = {
  seed : int;
  n_procs : int;
  ops_per_proc : int;  (** logical client ops per process, era 1 *)
  post_ops : int;  (** additional logical ops per process after recovery *)
  crash_at : int;  (** scheduler step of the crash; [max_int] = no crash *)
  policy : Onll_nvm.Crash_policy.t;
  arm : arm;
  log_capacity : int;  (** object log capacity (per process, per shard) *)
  session_log_capacity : int;
      (** client-record log capacity; small values force the session's
          summary-first compaction under fire *)
  fault : Faults.Plan.t;
  fault_scope : [ `All | `Primary_only ];
  nested_crashes : int;
}

(* The per-seed grid: every knob a pure function of (arm, seed). Storm
   seeds ([seed mod 5 = 0]) trade the crash for transient-fault runs long
   enough ([max_consecutive_transients] above the log layer's retry
   budget) that faults escape into the session's own backoff/in-doubt
   machinery; all other seeds crash mid-era under mild transients. Media
   corruption is reserved for the mirrored arm and confined to primaries
   — the scope mirrors provably heal — so the exactly-once bar stays at
   zero across every session arm. *)
let plan_of_seed ?(arm = Plain) seed =
  let storm = seed mod 5 = 0 in
  let fault =
    {
      Faults.Plan.none with
      Faults.Plan.seed;
      flush_fail_prob =
        (if storm then 0.9 else if seed mod 2 = 0 then 0.05 else 0.);
      fence_fail_prob =
        (if storm then 0.9 else if seed mod 2 = 1 then 0.05 else 0.02);
      max_consecutive_transients = (if storm then 12 else 2);
    }
  in
  let fault =
    match arm with
    | Mirrored ->
        {
          fault with
          Faults.Plan.bit_flips_per_crash = 1 + (seed mod 2);
          torn_spans_per_crash = (if seed mod 4 = 0 then 1 else 0);
          torn_span_max_bytes = 40;
          media_window = 512;
          media_fault_crashes = 2;
        }
    | Plain | Sharded | Naive -> fault
  in
  {
    seed;
    n_procs = 3;
    ops_per_proc = 6;
    post_ops = 2;
    crash_at = (if storm then max_int else 20 + (seed * 13 mod 150));
    policy =
      (match seed mod 3 with
      | 0 -> Onll_nvm.Crash_policy.Persist_all
      | 1 -> Onll_nvm.Crash_policy.Drop_all
      | _ -> Onll_nvm.Crash_policy.Random seed);
    arm;
    log_capacity = 1 lsl 16;
    session_log_capacity =
      (if (not storm) && seed mod 4 = 2 then 640 else 4096);
    fault;
    fault_scope = (match arm with Mirrored -> `Primary_only | _ -> `All);
    nested_crashes = seed mod 2;
  }

(** Arm-agnostic recovery resolution (value dropped), for harness
    bookkeeping. *)
type res =
  | R_none
  | R_applied of Onll_core.Onll.op_id
  | R_reinvoked of Onll_core.Onll.op_id * Onll_core.Onll.op_id
  | R_refused of Onll_core.Onll.op_id
  | R_unresolved of Onll_core.Onll.op_id

type result = {
  crashed : bool;
  logical : int;  (** logical client operations attempted *)
  acked : int;  (** operations acknowledged to their client *)
  duplicates : int;  (** extra linearized identities beyond one/logical op *)
  lost_acks : int;  (** acknowledged ops absent from the final history *)
  nested_fired : int;
  faults : Faults.counters;
  violations : string list;  (** audit failures; empty = pass *)
  metrics : (string * int) list;
}

(* The sink counters a campaign aggregates across runs. *)
let tracked_counters =
  [
    "session.ops";
    "session.ok";
    "session.timeouts";
    "session.sheds";
    "session.refused";
    "session.resolved.applied";
    "session.resolved.reinvoked";
    "session.retries";
    "session.indoubt";
    "session.compactions";
    "ops.session";
    "fences.session";
    "fences.session.compact";
    "ops.update";
    "fences.update";
    "faults.injected";
    "retries";
    "crashes";
    "recoveries";
  ]

module Make (S : Onll_core.Spec.S) = struct
  module Sess_err = Onll_session

  (* One rig = backend + attached sessions behind closures, so plain,
     mirrored and sharded backends (whose module types differ) drive the
     identical harness body. *)
  type rig = {
    r_submit :
      int -> S.update_op -> (S.value, Onll_session.error) Stdlib.result;
    r_recover : int -> res;
    r_pending : int -> (Onll_core.Onll.op_id * S.update_op) option;
    r_last_ids : int -> Onll_core.Onll.op_id list;
    r_naive : proc:int -> seq:int -> S.update_op -> S.value;
    r_was : S.update_op -> Onll_core.Onll.op_id -> bool;
    r_read : S.read_op -> S.value;
    r_backend_recover : unit -> unit;
    r_history_ids : unit -> Onll_core.Onll.op_id list;
        (* exact membership: ids in the live trace or the recovery-adopted
           set right now — unlike [r_was], never coarsened by the
           per-process checkpoint floor (which deems every seq below the
           highest summarised one linearized, and so answers [true] for
           identities a session allocated but abandoned) *)
  }

  let make_rig (module M : Onll_machine.Machine_sig.S) plan sink =
    let module Sess = Onll_session.Make (M) (S) in
    let cfg ~replicas =
      {
        Onll_core.Onll.Config.log_capacity = plan.log_capacity;
        replicas;
        local_views = false;
        region_suffix = "";
        sink;
      }
    in
    let backend, backend_recover, history_ids =
      match plan.arm with
      | Sharded ->
          let module C = Onll_sharded.Make (M) (S) in
          let obj = C.make ~shards:4 (cfg ~replicas:1) in
          let capf = float_of_int (max plan.log_capacity 1) in
          ( {
              Sess.b_update_detectable =
                (fun ~seq op -> C.update_detectable obj ~seq op);
              b_was_linearized = (fun op id -> C.was_linearized obj op id);
              b_read = (fun r -> C.read obj r);
              b_degraded = (fun () -> C.degraded obj);
              b_pressure =
                (fun () ->
                  let snap = C.snapshot obj in
                  List.fold_left
                    (fun acc (l : Onll_core.Onll.Snapshot.log) ->
                      Float.max acc (float_of_int l.live_bytes /. capf))
                    0. snap.Onll_core.Onll.Snapshot.logs);
              b_alloc = None;
            },
            (fun () -> ignore (C.recover_report obj)),
            fun () ->
              List.concat
                (List.init (C.shards obj) (fun i ->
                     let sh = C.shard obj i in
                     List.map fst (C.Shard.recovered_ops sh)
                     @ List.filter_map
                         (fun (_, _, env) ->
                           Option.map C.Shard.envelope_id env)
                         (C.Shard.trace_nodes sh))) )
      | Plain | Mirrored | Naive ->
          let replicas = if plan.arm = Mirrored then 2 else 1 in
          let module C = Onll_core.Onll.Make (M) (S) in
          let obj = C.make (cfg ~replicas) in
          let module Over = Sess.Over (C) in
          ( Over.backend ~log_capacity:plan.log_capacity obj,
            (fun () -> ignore (C.recover_report obj)),
            fun () ->
              List.map fst (C.recovered_ops obj)
              @ List.filter_map
                  (fun (_, _, env) -> Option.map C.envelope_id env)
                  (C.trace_nodes obj) )
    in
    let scfg =
      {
        Onll_session.default_config with
        log_capacity = plan.session_log_capacity;
        replicas = (if plan.arm = Mirrored then 2 else 1);
        (* Shedding off: admission control has its own deterministic
           test; here every submission must reach the exactly-once
           machinery. *)
        high_watermark = 1.0;
      }
    in
    let sessions =
      if plan.arm = Naive then [||]
      else
        Array.init plan.n_procs (fun client ->
            Sess.attach ~config:scfg ~sink ~client backend)
    in
    let resof = function
      | Sess.No_pending -> R_none
      | Sess.Was_applied id -> R_applied id
      | Sess.Reinvoked (old_id, fresh, _) -> R_reinvoked (old_id, fresh)
      | Sess.Refused id -> R_refused id
      | Sess.Unresolved (id, _) -> R_unresolved id
    in
    {
      r_submit = (fun p op -> Sess.submit sessions.(p) op);
      r_recover = (fun p -> resof (Sess.recover sessions.(p)));
      r_pending = (fun p -> Sess.pending sessions.(p));
      r_last_ids = (fun p -> Sess.last_attempt_ids sessions.(p));
      r_naive =
        (fun ~proc:_ ~seq op -> backend.Sess.b_update_detectable ~seq op);
      r_was = (fun op id -> backend.Sess.b_was_linearized op id);
      r_read = (fun r -> backend.Sess.b_read r);
      r_backend_recover = backend_recover;
      r_history_ids = history_ids;
    }

  (* [op_of ~proc ~k] is the deterministic logical workload — logical op
     [k] of client [proc] — so the audit can reconstruct any operation
     (e.g. to route a sharded [was_linearized] query) from its key alone.
     [check ~read ~applied] receives the per-logical-op application
     counts (how many of its identities are in the final history) and
     cross-checks the object's state against them. *)
  let run ~plan ~op_of ~check () =
    let registry = Onll_obs.Metrics.create () in
    let sink = Onll_obs.Sink.make ~registry () in
    let sim =
      Sim.create ~sink ~max_processes:(max plan.n_procs 1)
        ~crash_policy:plan.policy ()
    in
    let mem = Sim.memory sim in
    let rig = make_rig (Sim.machine sim) plan sink in
    let fault_plan =
      match plan.fault_scope with
      | `All -> plan.fault
      | `Primary_only ->
          let base = plan.fault.Faults.Plan.target in
          {
            plan.fault with
            Faults.Plan.target =
              (fun n -> base n && not (Onll_plog.Plog.is_mirror_region n));
          }
    in
    let handle = Faults.install mem fault_plan in
    (* The identity ledger: every op_id each logical (client, k) ever
       tried, who owns each id, and which logical ops were acknowledged.
       Plain OCaml state — not simulated NVM — so it survives simulated
       crashes exactly like a test's own bookkeeping must. *)
    let tried : (int * int, Onll_core.Onll.op_id list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let owner : (Onll_core.Onll.op_id, int * int) Hashtbl.t =
      Hashtbl.create 64
    in
    let acked : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    let logical lk =
      if not (Hashtbl.mem tried lk) then Hashtbl.replace tried lk (ref [])
    in
    let note lk id =
      logical lk;
      let ids = Hashtbl.find tried lk in
      if not (List.mem id !ids) then ids := id :: !ids;
      if not (Hashtbl.mem owner id) then Hashtbl.replace owner id lk
    in
    let ack lk = Hashtbl.replace acked lk () in
    (* Which identity each acknowledgement was credited to. The final
       audit needs this because raw [was_linearized] is floor-coarsened:
       once a checkpoint summarises an op, every lower seq of that process
       answers [true] — including identities the session allocated and
       abandoned without them ever reaching the object. Exact trace
       membership covers everything still materialised; the floor answer
       is trusted only for the identity that actually produced the ack. *)
    let credited : (int * int, Onll_core.Onll.op_id list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let credit lk id =
      let l =
        match Hashtbl.find_opt credited lk with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace credited lk l;
            l
      in
      if not (List.mem id !l) then l := id :: !l
    in
    let violations = ref [] in
    let fail fmt =
      Format.kasprintf (fun s -> violations := s :: !violations) fmt
    in
    let inflight = Array.make plan.n_procs None in
    let kcur = Array.make plan.n_procs 1 in
    let nseq = Array.make plan.n_procs 0 in
    (* Resolve client [p]'s in-doubt operation and fold the resolution
       into the ledger. The resolved identity may belong to an *earlier*
       logical op than the one in flight (its durable ack watermark only
       rides on the next record), so attribution goes through [owner]. *)
    let resolve p =
      let rec attempt n =
        match rig.r_recover p with
        | r -> r
        | exception Onll_nvm.Memory.Transient_fault _ when n < 5 ->
            attempt (n + 1)
      in
      match attempt 0 with
      | R_none -> ()
      | R_applied id -> (
          match Hashtbl.find_opt owner id with
          | Some lk ->
              credit lk id;
              ack lk
          | None -> (
              match inflight.(p) with
              | Some k ->
                  note (p, k) id;
                  credit (p, k) id;
                  ack (p, k)
              | None -> ()))
      | R_reinvoked (old_id, fresh) ->
          let lk =
            match Hashtbl.find_opt owner old_id with
            | Some lk -> lk
            | None -> (
                match inflight.(p) with
                | Some k -> (p, k)
                | None -> (p, kcur.(p)))
          in
          note lk old_id;
          note lk fresh;
          credit lk fresh;
          ack lk
      | R_refused id | R_unresolved id -> (
          (* The id is the durable (post-refold) pending identity; record
             it for its logical op even though it stays unresolved. *)
          match Hashtbl.find_opt owner id with
          | Some lk -> note lk id
          | None -> (
              match inflight.(p) with
              | Some k -> note (p, k) id
              | None -> ()))
    in
    let stalled = Array.make plan.n_procs false in
    (* One logical session op. A [Timeout] is indeterminate; what the
       client may do next depends on whether the in-doubt operation was
       ordered. If it was (or will be, via helping), this process's
       unpersisted trace node stands until recovery — driving the object
       again from the same process would break Prop 5.2's fuzzy-window
       bound, exactly as a real thread wedged on a stuck persist
       instruction cannot proceed — so the client {e stalls} until the
       restart. If it was never ordered, resolving in place is safe: the
       object was untouched and recovery re-invokes under a fresh
       identity. *)
    let session_op p k =
      let op = op_of ~proc:p ~k in
      let rec go retries =
        if Hashtbl.mem acked (p, k) then `Done
        else begin
          inflight.(p) <- Some k;
          logical (p, k);
          match rig.r_submit p op with
          | r -> (
              List.iter (note (p, k)) (rig.r_last_ids p);
              match r with
              | Ok _ ->
                  (match List.rev (rig.r_last_ids p) with
                  | id :: _ -> credit (p, k) id
                  | [] -> ());
                  ack (p, k);
                  inflight.(p) <- None;
                  `Done
              | Error Sess_err.Timeout -> (
                  match rig.r_pending p with
                  | Some (id, pop) when rig.r_was pop id -> `Stall
                  | Some _ when retries < 3 ->
                      resolve p;
                      if Hashtbl.mem acked (p, k) then begin
                        inflight.(p) <- None;
                        `Done
                      end
                      else if rig.r_pending p <> None then `Stall
                      else go (retries + 1)
                  | Some _ -> `Stall
                  | None -> if retries < 3 then go (retries + 1) else `Skip)
              | Error _ ->
                  inflight.(p) <- None;
                  `Skip)
        end
      in
      go 0
    in
    (* The at-least-once baseline: volatile sequence numbers, no durable
       intent, and — after a restart — blind re-invocation, never a
       [was_linearized] question first. Its duplicates calibrate the
       audit. *)
    let naive_op p k =
      let op = op_of ~proc:p ~k in
      logical (p, k);
      inflight.(p) <- Some k;
      let seq = nseq.(p) in
      nseq.(p) <- seq + 1;
      let id = { Onll_core.Onll.id_proc = p; id_seq = seq } in
      note (p, k) id;
      match rig.r_naive ~proc:p ~seq op with
      | _ ->
          credit (p, k) id;
          ack (p, k);
          inflight.(p) <- None;
          `Done
      | exception Onll_nvm.Memory.Transient_fault _ ->
          (* the persist instruction is stuck; an at-least-once client
             hangs here until its process restarts *)
          `Stall
    in
    let one_op p k =
      if plan.arm = Naive then naive_op p k else session_op p k
    in
    let era_to p limit =
      let continue = ref true in
      while !continue && kcur.(p) <= limit do
        let k = kcur.(p) in
        match one_op p k with
        | `Done | `Skip -> kcur.(p) <- max kcur.(p) (k + 1)
        | `Stall ->
            stalled.(p) <- true;
            continue := false
      done
    in
    let strategy =
      let base = Onll_sched.Sched.Strategy.random ~seed:plan.seed in
      fun view ->
        if view.Onll_sched.Sched.Strategy.steps () >= plan.crash_at then
          Onll_sched.Sched.Strategy.Crash_now
        else base view
    in
    let outcome =
      Sim.run sim strategy
        (Array.init plan.n_procs (fun p _ -> era_to p plan.ops_per_proc))
    in
    let crashed = outcome = Onll_sched.Sched.World.Crashed in
    let nested_fired = ref 0 in
    (* Era boundary: the storm grid must not rage through recovery — a
       transient run longer than the log layer's bounded retry would abort
       the recovery attempt itself, which is outside the protocol being
       audited. Swap to a mild close-out grid (same media settings, capped
       transients recovery's own retry always absorbs). *)
    let era1_faults = Faults.counters handle in
    Faults.remove handle;
    let handle =
      Faults.install mem
        {
          fault_plan with
          Faults.Plan.flush_fail_prob =
            Float.min fault_plan.Faults.Plan.flush_fail_prob 0.05;
          fence_fail_prob =
            Float.min fault_plan.Faults.Plan.fence_fail_prob 0.05;
          max_consecutive_transients = 2;
        }
    in
    begin
      (* Every run closes with a crash-recovery cycle: runs the scheduler
         did not cut (storm seeds, or a crash step past the era) crash
         here instead. Without it, operations stalled in-doubt at era end
         would stay ordered-but-unavailable forever — durable via
         helping, yet invisible to fence-free reads — and the final-state
         cross-check would have nothing well-defined to compare against.
         Recovery is also precisely the protocol's promised resolution
         point, so the audit always exercises it. *)
      if not crashed then Onll_nvm.Memory.crash mem ~policy:plan.policy;
      Faults.set_rot handle false;
      (* Backend recovery under nested-crash adversity, chaos-style: each
         armed firing is a real crash (media may corrupt again, per plan)
         followed by a fresh attempt; the last attempt runs unarmed. *)
      let rng = Splitmix.create (plan.seed lxor 0x5E55) in
      let rec go budget =
        if budget > 0 && plan.nested_crashes > 0 then
          Faults.arm_recovery_crash handle ~at_op:(Splitmix.int rng 24)
        else Faults.disarm handle;
        match rig.r_backend_recover () with
        | () -> Faults.disarm handle
        | exception Onll_nvm.Memory.Injected_crash ->
            incr nested_fired;
            Onll_nvm.Memory.crash mem ~policy:plan.policy;
            go (budget - 1)
      in
      go plan.nested_crashes;
      (* Era 2, inside the simulated world: every client resolves its own
         in-doubt operation ([recover] must run as the owning process),
         then finishes its workload plus [post_ops] more. *)
      let total = plan.ops_per_proc + plan.post_ops in
      let post p _ =
        stalled.(p) <- false;
        if plan.arm = Naive then begin
          (match inflight.(p) with
          | Some k ->
              (* at-least-once restart: re-invoke the in-flight op blindly
                 — the duplicate source when it had already landed *)
              (match naive_op p k with `Done | `Skip | `Stall -> ());
              kcur.(p) <- max kcur.(p) (k + 1)
          | None -> ());
          era_to p total
        end
        else begin
          (* A crash may have cut [submit] before it reported the identity
             it tried; [resolve] attributes the durable pending identity
             (via [owner], falling back to [inflight]) from the refolded
             client record. The *volatile* pending id must never be noted
             here: a total wipe of the (never-durable) client record
             legitimately recycles those identities for later logical
             ops — only what refold reads back from media names this op. *)
          resolve p;
          if rig.r_pending p = None then begin
            (* Idempotence: an immediate second recovery resolves nothing
               new (it may re-answer [Was_applied] for an operation whose
               resolution is not yet durably acked). *)
            (match rig.r_recover p with
            | R_none | R_applied _ -> ()
            | R_reinvoked _ | R_refused _ | R_unresolved _ ->
                fail "client %d: second recover was not a no-op" p);
            (match inflight.(p) with
            | Some k when Hashtbl.mem acked (p, k) ->
                inflight.(p) <- None;
                kcur.(p) <- max kcur.(p) (k + 1)
            | _ -> ());
            era_to p total
          end
        end
      in
      (match
         Sim.run sim Onll_sched.Sched.Strategy.round_robin
           (Array.init plan.n_procs post)
       with
      | Onll_sched.Sched.World.Completed -> ()
      | _ -> fail "post-crash era did not complete")
    end;
    (* The exactly-once audit, at the identity level: per logical op,
       count how many of the identities it ever tried are in the final
       history. More than one = duplicate (a violation for session arms,
       the expected calibration signal for the naive arm); zero for an
       acknowledged op = lost ack (a violation everywhere).

       Membership is exact trace/recovered membership, falling back to
       [was_linearized] only for the identity credited with the ack:
       the raw oracle's checkpoint-floor shortcut answers [true] for
       {e every} seq below the highest summarised one, which would
       convict abandoned session identities that never reached the
       object. A real duplicate both executed, so both copies are
       materialised (and the value cross-check below backstops the one
       case — both copies summarised — identity membership cannot see). *)
    let exact : (Onll_core.Onll.op_id, unit) Hashtbl.t =
      Hashtbl.create 256
    in
    List.iter (fun id -> Hashtbl.replace exact id ()) (rig.r_history_ids ());
    let applied =
      Hashtbl.fold (fun lk ids acc -> (lk, ids) :: acc) tried []
      |> List.map (fun (((p, k) as lk), ids) ->
             let op = op_of ~proc:p ~k in
             let cred =
               match Hashtbl.find_opt credited lk with
               | Some l -> !l
               | None -> []
             in
             let in_history id =
               Hashtbl.mem exact id
               || (List.mem id cred && rig.r_was op id)
             in
             let ids = List.sort_uniq compare !ids in
             (lk, List.length (List.filter in_history ids)))
      |> List.sort compare
    in
    let duplicates = ref 0 in
    let lost = ref 0 in
    List.iter
      (fun ((p, k), n) ->
        if n > 1 then begin
          duplicates := !duplicates + (n - 1);
          if plan.arm <> Naive then
            fail "duplicate: client %d op %d linearized under %d identities"
              p k n
        end;
        if Hashtbl.mem acked (p, k) && n = 0 then begin
          incr lost;
          fail "lost ack: client %d op %d acknowledged but not in history" p
            k
        end)
      applied;
    (* Duplicate-sensitive value cross-check: the state must equal what
       the per-identity application counts predict. *)
    List.iter
      (fun m -> violations := m :: !violations)
      (check ~read:rig.r_read ~applied);
    Faults.remove handle;
    {
      crashed;
      logical = List.length applied;
      acked = Hashtbl.length acked;
      duplicates = !duplicates;
      lost_acks = !lost;
      nested_fired = !nested_fired;
      faults =
        (let a = era1_faults and b = Faults.counters handle in
         Faults.
           {
             bit_flips = a.bit_flips + b.bit_flips;
             torn_spans = a.torn_spans + b.torn_spans;
             rot_flips = a.rot_flips + b.rot_flips;
             flush_transients = a.flush_transients + b.flush_transients;
             fence_transients = a.fence_transients + b.fence_transients;
             recovery_crashes = a.recovery_crashes + b.recovery_crashes;
           });
      violations = List.rev !violations;
      metrics =
        List.map
          (fun k -> (k, Onll_obs.Metrics.counter_value registry k))
          tracked_counters;
    }
end

(* {2 Campaign} *)

type row = {
  row_name : string;  (** "<spec>/<arm>" *)
  runs : int;
  crashed : int;
  logical : int;
  acked : int;
  duplicates : int;
  lost_acks : int;
  transients : int;
  media_faults : int;
  nested : int;
  violations : int;
  metrics : (string * int) list;  (** summed tracked sink counters *)
}

type summary = {
  rows : row list;
  messages : string list;  (** concrete violation messages, if any *)
}

let is_naive_row r =
  String.length r.row_name >= 6
  && String.sub r.row_name (String.length r.row_name - 5) 5 = "naive"

let e15_violations s =
  List.fold_left (fun acc r -> acc + r.violations) 0 s.rows

let e15_session_duplicates s =
  List.fold_left
    (fun acc r -> if is_naive_row r then acc else acc + r.duplicates)
    0 s.rows

let e15_session_lost_acks s =
  List.fold_left
    (fun acc r -> if is_naive_row r then acc else acc + r.lost_acks)
    0 s.rows

let e15_naive_duplicates s =
  List.fold_left
    (fun acc r -> if is_naive_row r then acc + r.duplicates else acc)
    0 s.rows

module Drive (S : Onll_core.Spec.S) = struct
  module SC = Make (S)

  let campaign ~arm ~name ~op_of ~check ~seeds ~messages () =
    let zero k = (k, 0) in
    let acc =
      ref
        {
          row_name = name;
          runs = 0;
          crashed = 0;
          logical = 0;
          acked = 0;
          duplicates = 0;
          lost_acks = 0;
          transients = 0;
          media_faults = 0;
          nested = 0;
          violations = 0;
          metrics = List.map zero tracked_counters;
        }
    in
    for seed = 1 to seeds do
      let r = SC.run ~plan:(plan_of_seed ~arm seed) ~op_of ~check () in
      let a = !acc in
      let f = r.faults in
      List.iter
        (fun m ->
          messages := Printf.sprintf "%s seed %d: %s" name seed m :: !messages)
        r.violations;
      acc :=
        {
          a with
          runs = a.runs + 1;
          crashed = (a.crashed + if r.crashed then 1 else 0);
          logical = a.logical + r.logical;
          acked = a.acked + r.acked;
          duplicates = a.duplicates + r.duplicates;
          lost_acks = a.lost_acks + r.lost_acks;
          transients =
            a.transients + f.Faults.flush_transients
            + f.Faults.fence_transients;
          media_faults =
            a.media_faults + f.Faults.bit_flips + f.Faults.torn_spans;
          nested = a.nested + r.nested_fired;
          violations = a.violations + List.length r.violations;
          metrics =
            List.map2
              (fun (k, v) (k', v') ->
                assert (k = k');
                (k, v + v'))
              a.metrics r.metrics;
        }
    done;
    !acc
end

(* Deterministic per-client workloads. Both specs are duplicate-sensitive:
   a counter counts every applied increment; a per-client ledger account
   balance counts every applied deposit. *)
let counter_op ~proc:_ ~k:_ = Onll_specs.Counter.Increment

let counter_check ~read ~applied =
  let expect = List.fold_left (fun a (_, n) -> a + n) 0 applied in
  let got = read Onll_specs.Counter.Get in
  if got = expect then []
  else
    [
      Printf.sprintf "counter: value %d but %d applied increments" got expect;
    ]

let ledger_account p = Printf.sprintf "c%d" p

let ledger_op ~proc ~k =
  if k = 1 then Onll_specs.Ledger.Open (ledger_account proc)
  else Onll_specs.Ledger.Deposit (ledger_account proc, 1)

let ledger_check ~n_procs ~read ~applied =
  List.concat
    (List.init n_procs (fun p ->
         let opened =
           List.exists (fun ((q, k), n) -> q = p && k = 1 && n > 0) applied
         in
         let deposits =
           List.fold_left
             (fun a ((q, k), n) -> if q = p && k > 1 then a + n else a)
             0 applied
         in
         let expect = if opened then Some deposits else None in
         match read (Onll_specs.Ledger.Balance (ledger_account p)) with
         | Onll_specs.Ledger.Amount got when got = expect -> []
         | Onll_specs.Ledger.Amount got ->
             [
               Printf.sprintf
                 "ledger: account c%d balance %s but applied ops predict %s"
                 p
                 (match got with Some n -> string_of_int n | None -> "none")
                 (match expect with
                 | Some n -> string_of_int n
                 | None -> "none");
             ]
         | _ -> [ Printf.sprintf "ledger: Balance(c%d) returned non-amount" p ]))

let run_e15 ~seeds_per_arm =
  let messages = ref [] in
  let module D_counter = Drive (Onll_specs.Counter) in
  let module D_ledger = Drive (Onll_specs.Ledger) in
  let n_procs = (plan_of_seed 1).n_procs in
  let arms = [ Plain; Mirrored; Sharded; Naive ] in
  let rows =
    List.concat_map
      (fun arm ->
        [
          D_counter.campaign ~arm
            ~name:(Printf.sprintf "counter/%s" (arm_label arm))
            ~op_of:counter_op ~check:counter_check ~seeds:seeds_per_arm
            ~messages ();
          D_ledger.campaign ~arm
            ~name:(Printf.sprintf "ledger/%s" (arm_label arm))
            ~op_of:ledger_op
            ~check:(ledger_check ~n_procs)
            ~seeds:seeds_per_arm ~messages ();
        ])
      arms
  in
  { rows; messages = List.rev !messages }

let print s =
  Table.print
    ~title:
      "E15 — exactly-once session campaign (session arms must show 0 \
       duplicates and 0 lost acks; the naive at-least-once arm is the \
       calibration and must duplicate)"
    ~header:
      [
        "workload/arm";
        "runs";
        "crashed";
        "logical";
        "acked";
        "timeouts";
        "indoubt";
        "reinvoked";
        "compact";
        "dups";
        "lost-acks";
        "violations";
      ]
    (List.map
       (fun r ->
         [
           r.row_name;
           string_of_int r.runs;
           string_of_int r.crashed;
           string_of_int r.logical;
           string_of_int r.acked;
           string_of_int (List.assoc "session.timeouts" r.metrics);
           string_of_int (List.assoc "session.indoubt" r.metrics);
           string_of_int (List.assoc "session.resolved.reinvoked" r.metrics);
           string_of_int (List.assoc "session.compactions" r.metrics);
           string_of_int r.duplicates;
           string_of_int r.lost_acks;
           string_of_int r.violations;
         ])
       s.rows);
  List.iter (fun m -> Printf.printf "  VIOLATION %s\n" m) s.messages;
  Printf.printf
    "session arms: %d duplicates, %d lost acks (both must be 0) | naive \
     calibration: %d duplicates %s\n"
    (e15_session_duplicates s) (e15_session_lost_acks s)
    (e15_naive_duplicates s)
    (if e15_naive_duplicates s > 0 then "(detector fires)"
     else "(NAIVE ARM NEVER DUPLICATED — campaign proves nothing)")

(* Fold a summary into a metrics registry for the BENCH_e15.json snapshot
   and the deterministic gate slice. *)
let to_metrics s =
  let reg = Onll_obs.Metrics.create () in
  let add name v =
    Onll_obs.Metrics.add (Onll_obs.Metrics.counter reg name) v
  in
  List.iter
    (fun r ->
      let name =
        String.map (fun c -> if c = '/' then '.' else c) r.row_name
      in
      let p fmt = Printf.sprintf fmt name in
      add (p "e15.%s.runs") r.runs;
      add (p "e15.%s.crashed") r.crashed;
      add (p "e15.%s.logical") r.logical;
      add (p "e15.%s.acked") r.acked;
      add (p "e15.%s.duplicates") r.duplicates;
      add (p "e15.%s.lost_acks") r.lost_acks;
      add (p "e15.%s.transients") r.transients;
      add (p "e15.%s.media_faults") r.media_faults;
      add (p "e15.%s.nested_crashes") r.nested;
      add (p "e15.%s.violations") r.violations;
      List.iter
        (fun (k, v) -> add (Printf.sprintf "e15.%s.%s" name k) v)
        r.metrics)
    s.rows;
  reg
