(* E18: the network front-end crash harness.

   Two layers, mirroring the E17 store harness (file_chaos.ml):

   - IN-PROCESS, DETERMINISTIC (gate material): drive
     {!Onll_serve.Service.Make.handle} directly over a file-backed
     machine with Raise-mode kill plans — no sockets, no clocks, no
     subprocesses. The injected crash escapes [handle] (the service
     deliberately does not catch it), the store is closed unfsynced, and
     the next epoch reopens the directory, re-Hellos every client and
     applies the protocol's resolution rule. Counters from these slices
     are byte-stable and gate-golden.

   - OUT-OF-PROCESS (the campaign): spawn `onll serve` subprocesses over
     real sockets, arm the file fault injector so the server SIGKILLs
     itself mid-fence (or fsync-EIOs into sticky degradation), drive them
     with the in-process {!Onll_serve.Loadgen} under one cross-pass
     {!Onll_serve.Loadgen.Audit}, and close each scenario with a
     resolve-only pass against a clean server plus a direct counter
     read. Arms: seeded SIGKILL storms (plain and mirrored),
     disconnect/reattach floods with SIGTERM-mid-load drain, and a
     degraded-media drill. The audit's verdict is the tentpole claim:
     0 duplicate applies, 0 lost acks, every in-doubt op resolved. *)

module Faults = Onll_faults.Faults
module Fm = Onll_machine.File_machine
module Cs = Onll_specs.Counter
module Metrics = Onll_obs.Metrics
module Service = Onll_serve.Service
module Protocol = Onll_serve.Protocol
module Loadgen = Onll_serve.Loadgen

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "onll-e18-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir d 0o755;
    d

let rm_rf dir =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> go (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then go dir

let inc_op = Onll_util.Codec.encode Cs.update_codec Cs.Increment

(* Where to kill inside the epoch's fence sequence. The server fences at
   startup (recovery, allocator reservation, session attach) and once per
   served update, so small quotas die during attach storms and larger
   ones mid-serving; quotas grow with the epoch so recovery's own fences
   (which grow with the surviving log) eventually fit under them. *)
let kill_point ~seed ~epoch =
  ( 3 + (3 * epoch) + (seed mod 5),
    [| 0; 1; 3; -1 |].((seed + epoch) mod 4) )

(* {1 In-process deterministic slices (Raise mode)} *)

type slice_totals = {
  mutable t_scenarios : int;
  mutable t_epochs : int;
  mutable t_kills : int;
  mutable t_acks : int;
  mutable t_confirmed : int;
  mutable t_adopted : int;
  mutable t_reinvoked : int;
  mutable t_violations : int;
}

let new_totals () =
  {
    t_scenarios = 0;
    t_epochs = 0;
    t_kills = 0;
    t_acks = 0;
    t_confirmed = 0;
    t_adopted = 0;
    t_reinvoked = 0;
    t_violations = 0;
  }

let slice_to_metrics reg ~prefix t =
  let c name v = Metrics.add (Metrics.counter reg (prefix ^ "." ^ name)) v in
  c "scenarios" t.t_scenarios;
  c "epochs" t.t_epochs;
  c "kills" t.t_kills;
  c "acks" t.t_acks;
  c "confirmed" t.t_confirmed;
  c "adopted" t.t_adopted;
  c "reinvoked" t.t_reinvoked;
  c "violations" t.t_violations

(* One scenario: a few protocol clients increment the shared counter to
   [target] acknowledgements across as many crash-restart epochs as the
   seeded kill schedule forces. *)
let run_restart_scenario ~construction ~target ~seed totals =
  let dir = fresh_dir () in
  let nclients = 3 in
  let confirmed : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let confirm ~client ~seq =
    if Hashtbl.mem confirmed (client, seq) then begin
      Printf.eprintf "e18 violation: client %d seq %d confirmed twice\n%!"
        client seq;
      totals.t_violations <- totals.t_violations + 1
    end
    else begin
      Hashtbl.replace confirmed (client, seq) ();
      totals.t_confirmed <- totals.t_confirmed + 1
    end
  in
  (* the seq each client was last seen attempting (in doubt on crash) *)
  let attempt = Array.make nclients (-1) in
  let next = Array.make nclients 0 in
  let finished = ref false in
  let epoch = ref 0 in
  let max_epochs = (3 * target) + 8 in
  while (not !finished) && !epoch < max_epochs do
    let fmach = Fm.create ~dir ~max_processes:1 () in
    let kill_at_fence, kill_after_sectors =
      kill_point ~seed ~epoch:!epoch
    in
    let fplan =
      {
        Faults.File_plan.none with
        kill_at_fence;
        kill_after_sectors;
        kill_mode = Faults.File_plan.Raise;
      }
    in
    let inj = Faults.install_file (Fm.memory fmach) fplan in
    ignore (Fm.register fmach);
    let module M = (val Fm.machine fmach) in
    let module Srv = Service.Make (M) in
    let finish () =
      Faults.remove_file inj;
      Fm.close fmach
    in
    totals.t_epochs <- totals.t_epochs + 1;
    (try
       let svc =
         Srv.make
           ~session:{ Onll_session.default_config with log_capacity = 4096 }
           ~log_capacity:4096 ~oseq_block:32 construction
       in
       let conns = Array.init nclients (fun _ -> Srv.conn ()) in
       for i = 0 to nclients - 1 do
         match
           Srv.handle svc conns.(i)
             (Protocol.Hello { client = i; token = "onll"; tier = Protocol.T_exactly_once })
         with
         | Protocol.Attached { next_seq; acked = _; resolution } -> (
             next.(i) <- next_seq;
             match resolution with
             | Protocol.W_applied _ | Protocol.W_reinvoked _ ->
                 (* the resolved intent is session seq [next_seq - 1]; the
                    session re-reports it whenever its durable acked-cursor
                    lags the acks we actually received, so an already
                    confirmed seq is benign redelivery, not a new apply *)
                 let s = next_seq - 1 in
                 if not (Hashtbl.mem confirmed (i, s)) then begin
                   confirm ~client:i ~seq:s;
                   match resolution with
                   | Protocol.W_reinvoked _ ->
                       totals.t_reinvoked <- totals.t_reinvoked + 1
                   | _ -> totals.t_adopted <- totals.t_adopted + 1
                 end;
                 attempt.(i) <- -1
             | Protocol.W_refused _ -> attempt.(i) <- -1
             | Protocol.W_unresolved _ ->
                 Printf.eprintf
                   "e18 violation: unresolved under Raise faults\n%!";
                 totals.t_violations <- totals.t_violations + 1;
                 attempt.(i) <- -1
             | Protocol.W_none ->
                 if attempt.(i) >= 0 && attempt.(i) < next_seq then begin
                   (* applied and session-acked; the crash ate the ack *)
                   confirm ~client:i ~seq:attempt.(i);
                   totals.t_adopted <- totals.t_adopted + 1;
                   attempt.(i) <- -1
                 end
                 (* else: never durable — resubmitted below under the
                    session's cursor *))
         | resp ->
             Printf.eprintf "e18 violation: hello answered %s\n%!"
               (match resp with
               | Protocol.Refused r ->
                   Format.asprintf "%a" Protocol.pp_refusal r
               | _ -> "non-attach");
             totals.t_violations <- totals.t_violations + 1
       done;
       let i = ref 0 in
       while Hashtbl.length confirmed < target do
         let c = !i mod nclients in
         incr i;
         let seq = next.(c) in
         attempt.(c) <- seq;
         (match
            Srv.handle svc conns.(c)
              (Protocol.Submit { seq; deadline_ns = 0; op = inc_op })
          with
         | Protocol.Acked { seq = s; value = _ } ->
             confirm ~client:c ~seq:s;
             totals.t_acks <- totals.t_acks + 1;
             next.(c) <- s + 1;
             attempt.(c) <- -1
         | Protocol.Refused (Protocol.R_bad_seq expected) ->
             next.(c) <- expected;
             attempt.(c) <- -1
         | Protocol.Refused r ->
             Printf.eprintf "e18 violation: submit refused: %s\n%!"
               (Format.asprintf "%a" Protocol.pp_refusal r);
             totals.t_violations <- totals.t_violations + 1;
             attempt.(c) <- -1
         | _ ->
             Printf.eprintf "e18 violation: submit got a non-ack\n%!";
             totals.t_violations <- totals.t_violations + 1)
       done;
       let v = Srv.counter_value svc in
       if v <> Hashtbl.length confirmed then begin
         Printf.eprintf "e18 violation: counter %d, confirmed %d\n%!" v
           (Hashtbl.length confirmed);
         totals.t_violations <- totals.t_violations + 1
       end;
       finished := true;
       finish ()
     with Onll_nvm.Memory.Injected_crash ->
       totals.t_kills <- totals.t_kills + 1;
       finish ());
    incr epoch
  done;
  if not !finished then begin
    Printf.eprintf "e18 violation: scenario never completed\n%!";
    totals.t_violations <- totals.t_violations + 1
  end;
  totals.t_scenarios <- totals.t_scenarios + 1;
  rm_rf dir

(* Protocol policy surface, deterministically: refusals, injectivity,
   drain semantics — no faults, one epoch. *)
let run_policy_slice reg =
  let c name v = Metrics.add (Metrics.counter reg name) v in
  let dir = fresh_dir () in
  let fmach = Fm.create ~dir ~max_processes:1 () in
  ignore (Fm.register fmach);
  let module M = (val Fm.machine fmach) in
  let module Srv = Service.Make (M) in
  let svc =
    Srv.make
      ~session:{ Onll_session.default_config with log_capacity = 4096 }
      ~log_capacity:4096 ~token:"sesame" ~max_clients:100 Service.Plain
  in
  let refusal conn req =
    match Srv.handle svc conn req with
    | Protocol.Refused r -> Some r
    | _ -> None
  in
  let conn = Srv.conn () in
  let hits = ref 0 in
  let expect what = if what then incr hits in
  expect
    (refusal conn (Protocol.Submit { seq = 0; deadline_ns = 0; op = inc_op })
    = Some Protocol.R_not_attached);
  expect
    (refusal conn (Protocol.Hello { client = 1; token = "wrong"; tier = Protocol.T_exactly_once })
    = Some Protocol.R_bad_token);
  expect
    (refusal conn (Protocol.Hello { client = 100; token = "sesame"; tier = Protocol.T_exactly_once })
    = Some Protocol.R_bad_client);
  (match Srv.handle svc conn (Protocol.Hello { client = 1; token = "sesame"; tier = Protocol.T_exactly_once })
   with
  | Protocol.Attached { next_seq = 0; _ } -> incr hits
  | _ -> ());
  expect
    (refusal conn (Protocol.Submit { seq = 5; deadline_ns = 0; op = inc_op })
    = Some (Protocol.R_bad_seq 0));
  expect
    (refusal conn
       (Protocol.Submit { seq = 0; deadline_ns = 0; op = "\255garbage" })
    = Some Protocol.R_bad_op);
  (match
     Srv.handle svc conn
       (Protocol.Submit { seq = 0; deadline_ns = 0; op = inc_op })
   with
  | Protocol.Acked { seq = 0; value = 1 } -> incr hits
  | _ -> ());
  (match Srv.handle svc conn (Protocol.Fetch { op = "" }) with
  | Protocol.Got 1 -> incr hits
  | _ -> ());
  expect (Srv.handle svc conn Protocol.Ping = Protocol.Pong);
  (* a small population: every client its own region, shared counter *)
  for client = 2 to 41 do
    let cn = Srv.conn () in
    (match
       Srv.handle svc cn (Protocol.Hello { client; token = "sesame"; tier = Protocol.T_exactly_once })
     with
    | Protocol.Attached _ -> ()
    | _ -> ());
    match
      Srv.handle svc cn (Protocol.Submit { seq = 0; deadline_ns = 0; op = inc_op })
    with
    | Protocol.Acked _ -> ()
    | _ -> ()
  done;
  Srv.drain svc;
  expect
    (refusal (Srv.conn ()) (Protocol.Hello { client = 50; token = "sesame"; tier = Protocol.T_exactly_once })
    = Some Protocol.R_draining);
  expect
    (refusal conn (Protocol.Submit { seq = 1; deadline_ns = 0; op = inc_op })
    = Some Protocol.R_draining);
  (match Srv.handle svc conn (Protocol.Fetch { op = "" }) with
  | Protocol.Got 41 -> incr hits
  | _ -> ());
  expect (Srv.handle svc conn Protocol.Bye = Protocol.Gone);
  c "e18.policy.checks" !hits;
  c "e18.policy.value" (Srv.counter_value svc);
  c "e18.policy.sessions" (Srv.sessions svc);
  c "e18.policy.region_bytes" (Srv.region_bytes svc);
  Fm.close fmach;
  rm_rf dir

(* The allocator across a restart: the unused tail of a reserved block
   is abandoned, never re-handed. *)
let run_oseq_slice reg =
  let c name v = Metrics.add (Metrics.counter reg name) v in
  let dir = fresh_dir () in
  let first_run =
    let fmach = Fm.create ~dir ~max_processes:1 () in
    ignore (Fm.register fmach);
    let module M = (val Fm.machine fmach) in
    let module Srv = Service.Make (M) in
    let alloc = Srv.Oseq.create ~block:8 () in
    Srv.Oseq.recover alloc;
    let ids = List.init 5 (fun _ -> Srv.Oseq.next alloc) in
    let wm = Srv.Oseq.watermark alloc in
    Fm.close fmach;
    (ids, wm)
  in
  let ids, wm1 = first_run in
  let fmach = Fm.create ~dir ~max_processes:1 () in
  ignore (Fm.register fmach);
  let module M = (val Fm.machine fmach) in
  let module Srv = Service.Make (M) in
  let alloc = Srv.Oseq.create ~block:8 () in
  Srv.Oseq.recover alloc;
  let after = Srv.Oseq.next alloc in
  let reused = if List.mem after ids || after < wm1 then 1 else 0 in
  c "e18.oseq.handed" (List.length ids);
  c "e18.oseq.watermark" wm1;
  c "e18.oseq.restart_first" after;
  c "e18.oseq.reused" reused;
  Fm.close fmach;
  rm_rf dir

let gate_slices reg =
  let plain = new_totals () in
  for seed = 0 to 2 do
    run_restart_scenario ~construction:Service.Plain ~target:6 ~seed plain
  done;
  slice_to_metrics reg ~prefix:"e18.restart.plain" plain;
  let mirrored = new_totals () in
  for seed = 0 to 2 do
    run_restart_scenario ~construction:Service.Mirrored ~target:6 ~seed
      mirrored
  done;
  slice_to_metrics reg ~prefix:"e18.restart.mirrored" mirrored;
  run_policy_slice reg;
  run_oseq_slice reg

(* {1 The out-of-process campaign (kill -9 over sockets)} *)

type campaign = {
  mutable c_scenarios : int;
  mutable c_spawns : int;
  mutable c_passes : int;
  mutable c_sigkills : int;
  mutable c_drains : int;
  mutable c_degraded : int;
  mutable c_confirmed : int;
  mutable c_sheds : int;
  mutable c_reconnects : int;
  mutable c_violations : string list;
}

let violation cam fmt =
  Printf.ksprintf (fun s -> cam.c_violations <- s :: cam.c_violations) fmt

let server_args ~dir ~socket ~construction extra =
  [
    "serve";
    "--socket=" ^ socket;
    "--dir=" ^ dir;
    "--construction=" ^ Service.construction_name construction;
    "--drain-grace-ms=1500";
  ]
  @ extra

let spawn_server ~worker args =
  let r, w = Unix.pipe () in
  let pid =
    Unix.create_process worker
      (Array.of_list (worker :: args))
      Unix.stdin w Unix.stderr
  in
  Unix.close w;
  (pid, Unix.in_channel_of_descr r)

(* Block until the server prints READY, or dies trying (a kill armed at
   a startup fence): the pipe closes and waitpid collects the corpse. *)
let wait_ready (pid, ic) =
  let rec go () =
    match input_line ic with
    | line when String.length line >= 5 && String.sub line 0 5 = "READY" ->
        `Ready
    | _ -> go ()
    | exception End_of_file ->
        let _, st = Unix.waitpid [] pid in
        `Died st
  in
  go ()

let reap (pid, ic) =
  let _, st = Unix.waitpid [] pid in
  close_in ic;
  st

let stop cam ~expect_exit (pid, ic) =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  (match reap (pid, ic) with
  | Unix.WEXITED n when n = expect_exit -> cam.c_drains <- cam.c_drains + 1
  | st ->
      violation cam "server drain: expected exit %d, got %s" expect_exit
        (match st with
        | Unix.WEXITED n -> Printf.sprintf "exit %d" n
        | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
        | Unix.WSTOPPED _ -> "stopped"))

let fold_pass cam (rep : Loadgen.report) =
  cam.c_passes <- cam.c_passes + 1;
  cam.c_confirmed <- cam.c_confirmed + rep.Loadgen.r_confirmed;
  cam.c_sheds <- cam.c_sheds + rep.Loadgen.r_shed;
  cam.c_reconnects <- cam.c_reconnects + rep.Loadgen.r_reconnects

let pass_cfg ~socket ~seed ~duration_ms ~clients =
  {
    (Loadgen.default_config ~socket_path:socket) with
    Loadgen.clients;
    rate_hz = 40.;
    duration_ms;
    seed;
    deadline_ms = 300;
    max_attempts = 6;
    backoff_base_ms = 1;
    backoff_cap_ms = 16;
    connect_timeout_ms = 700;
  }

(* Close a scenario: clean server, resolve-only pass (every in-doubt op
   adopted / re-invoked / definitively resubmitted), direct counter read,
   the audit's verdict. *)
let final_resolve cam ~worker ~dir ~socket ~construction ~audit ~seed =
  let h = spawn_server ~worker (server_args ~dir ~socket ~construction []) in
  cam.c_spawns <- cam.c_spawns + 1;
  match wait_ready h with
  | `Died _ ->
      violation cam "final clean server died before READY";
      ignore (reap h)
  | `Ready -> (
      (* span every client that might still hold an in-doubt op (the
         flood arm runs more clients than the kill arms) *)
      let clients =
        max 6 (Loadgen.Audit.max_outstanding_client audit + 1)
      in
      let rep =
        Loadgen.run ~audit
          (pass_cfg ~socket ~seed:(seed + 9000) ~duration_ms:0 ~clients)
      in
      fold_pass cam rep;
      stop cam ~expect_exit:0 h;
      match rep.Loadgen.r_final_value with
      | None -> violation cam "final pass read no counter value"
      | Some v ->
          List.iter
            (fun s -> violation cam "%s" s)
            (Loadgen.Audit.check_final audit ~counter_value:v))

let scenario_kill cam ~worker ~dir ~construction ~seed =
  let socket = Filename.concat dir "srv.sock" in
  let audit = Loadgen.Audit.create () in
  let survived = ref false in
  let epoch = ref 0 in
  while (not !survived) && !epoch < 8 do
    let kill_at_fence, kill_after_sectors =
      kill_point ~seed ~epoch:!epoch
    in
    let h =
      spawn_server ~worker
        (server_args ~dir ~socket ~construction
           [
             Printf.sprintf "--kill-at-fence=%d" kill_at_fence;
             Printf.sprintf "--kill-after-sectors=%d" kill_after_sectors;
             Printf.sprintf "--seed=%d" (seed + 1);
           ])
    in
    cam.c_spawns <- cam.c_spawns + 1;
    (match wait_ready h with
    | `Died (Unix.WSIGNALED s) when s = Sys.sigkill ->
        cam.c_sigkills <- cam.c_sigkills + 1;
        close_in (snd h)
    | `Died st ->
        violation cam "armed server died oddly before READY (%s)"
          (match st with
          | Unix.WEXITED n -> Printf.sprintf "exit %d" n
          | _ -> "signal");
        close_in (snd h)
    | `Ready -> (
        let rep =
          Loadgen.run ~audit
            (pass_cfg ~socket
               ~seed:((seed * 131) + !epoch)
               ~duration_ms:500 ~clients:6)
        in
        fold_pass cam rep;
        match Unix.waitpid [ Unix.WNOHANG ] (fst h) with
        | 0, _ ->
            (* the armed kill never fired inside this pass *)
            stop cam ~expect_exit:0 h;
            survived := true
        | _, Unix.WSIGNALED s when s = Sys.sigkill ->
            cam.c_sigkills <- cam.c_sigkills + 1;
            close_in (snd h)
        | _, st ->
            violation cam "armed server ended oddly mid-pass (%s)"
              (match st with
              | Unix.WEXITED n -> Printf.sprintf "exit %d" n
              | _ -> "signal");
            close_in (snd h)));
    incr epoch
  done;
  final_resolve cam ~worker ~dir ~socket ~construction ~audit ~seed;
  cam.c_scenarios <- cam.c_scenarios + 1

(* Disconnect/reattach flood, then SIGTERM lands mid-load: every client
   is either answered or definitively refused R_draining — never left
   half-acked. *)
let scenario_flood cam ~worker ~dir ~construction ~seed =
  let socket = Filename.concat dir "srv.sock" in
  let audit = Loadgen.Audit.create () in
  let h = spawn_server ~worker (server_args ~dir ~socket ~construction []) in
  cam.c_spawns <- cam.c_spawns + 1;
  (match wait_ready h with
  | `Died _ ->
      violation cam "flood server died before READY";
      ignore (reap h)
  | `Ready ->
      let rep =
        Loadgen.run ~audit
          {
            (pass_cfg ~socket ~seed ~duration_ms:700 ~clients:12) with
            Loadgen.churn_every_ms = 80;
            churn_frac = 0.4;
          }
      in
      fold_pass cam rep;
      (* drain under load: a forked sibling SIGTERMs the server while
         this process is mid-pass *)
      let killer = Unix.fork () in
      if killer = 0 then begin
        Unix.sleepf 0.25;
        (try Unix.kill (fst h) Sys.sigterm with Unix.Unix_error _ -> ());
        Unix._exit 0
      end;
      let rep2 =
        Loadgen.run ~audit
          (pass_cfg ~socket ~seed:(seed + 77) ~duration_ms:900 ~clients:12)
      in
      fold_pass cam rep2;
      ignore (Unix.waitpid [] killer);
      (match reap h with
      | Unix.WEXITED 0 -> cam.c_drains <- cam.c_drains + 1
      | st ->
          violation cam "flood server drain failed (%s)"
            (match st with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | _ -> "stopped")));
  final_resolve cam ~worker ~dir ~socket ~construction ~audit ~seed;
  cam.c_scenarios <- cam.c_scenarios + 1

(* Sticky degradation mid-traffic: fsync EIO exhausts the retry budget,
   every later write is refused R_degraded (a protocol error, not a
   reset), the failed fence is never acked, and the server still drains
   (exit 3). A clean restart then resolves every in-doubt op. *)
let scenario_degraded cam ~worker ~dir ~construction ~seed =
  let socket = Filename.concat dir "srv.sock" in
  let audit = Loadgen.Audit.create () in
  let h =
    spawn_server ~worker
      (server_args ~dir ~socket ~construction
         [ "--fsync-eio-from=6"; "--fsync-eio-count=10000" ])
  in
  cam.c_spawns <- cam.c_spawns + 1;
  (match wait_ready h with
  | `Died _ ->
      violation cam "degraded-arm server died before READY";
      ignore (reap h)
  | `Ready ->
      let rep =
        Loadgen.run ~audit
          (pass_cfg ~socket ~seed ~duration_ms:600 ~clients:6)
      in
      fold_pass cam rep;
      (try Unix.kill (fst h) Sys.sigterm with Unix.Unix_error _ -> ());
      (match reap h with
      | Unix.WEXITED 3 -> cam.c_degraded <- cam.c_degraded + 1
      | Unix.WEXITED 0 ->
          (* the EIO storm may start only after the traffic stopped *)
          cam.c_drains <- cam.c_drains + 1
      | st ->
          violation cam "degraded server ended oddly (%s)"
            (match st with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | _ -> "stopped")));
  final_resolve cam ~worker ~dir ~socket ~construction ~audit ~seed;
  cam.c_scenarios <- cam.c_scenarios + 1

let run_campaign ~worker ~dir ~seeds =
  let cam =
    {
      c_scenarios = 0;
      c_spawns = 0;
      c_passes = 0;
      c_sigkills = 0;
      c_drains = 0;
      c_degraded = 0;
      c_confirmed = 0;
      c_sheds = 0;
      c_reconnects = 0;
      c_violations = [];
    }
  in
  let scenario name f construction seed =
    let sdir = Filename.concat dir (Printf.sprintf "%s-%d" name seed) in
    Unix.mkdir sdir 0o755;
    f cam ~worker ~dir:sdir ~construction ~seed
  in
  List.iter
    (fun (arm, construction) ->
      for seed = 0 to seeds - 1 do
        scenario ("kill-" ^ arm) scenario_kill construction seed
      done)
    [ ("plain", Service.Plain); ("mirrored", Service.Mirrored) ];
  for seed = 0 to min 1 (seeds - 1) do
    scenario "flood" scenario_flood Service.Mirrored seed;
    scenario "degraded" scenario_degraded Service.Plain seed
  done;
  cam

let campaign_violations cam = List.rev cam.c_violations

let campaign_to_metrics reg cam =
  let c name v = Metrics.add (Metrics.counter reg name) v in
  c "e18c.campaign.scenarios" cam.c_scenarios;
  c "e18c.campaign.spawns" cam.c_spawns;
  c "e18c.campaign.passes" cam.c_passes;
  c "e18c.campaign.sigkills" cam.c_sigkills;
  c "e18c.campaign.drains" cam.c_drains;
  c "e18c.campaign.degraded" cam.c_degraded;
  c "e18c.campaign.confirmed" cam.c_confirmed;
  c "e18c.campaign.sheds" cam.c_sheds;
  c "e18c.campaign.reconnects" cam.c_reconnects;
  c "e18c.campaign.violations" (List.length cam.c_violations)

let pp_campaign ppf cam =
  Format.fprintf ppf
    "scenarios=%d spawns=%d passes=%d sigkills=%d drains=%d degraded=%d \
     confirmed=%d sheds=%d reconnects=%d violations=%d"
    cam.c_scenarios cam.c_spawns cam.c_passes cam.c_sigkills cam.c_drains
    cam.c_degraded cam.c_confirmed cam.c_sheds cam.c_reconnects
    (List.length cam.c_violations)
