(** The E20 bounded-staleness chaos campaign: seeded crashes cut a
    risk-budgeted relaxed object at swept schedule points — so the
    volatile tail is hit at every depth from empty to the full budget —
    and recovery is audited for {e quantified, suffix-only} loss.

    Each simulated process runs a deterministic script of single-key kv
    writes against its own keys, mostly through the fence-free
    {!Onll_relaxed.Make.update} path with occasional
    {!Onll_relaxed.Make.update_strict} piggybacks. Values are strictly
    increasing per step, which makes the state after every prefix of a
    process's script pairwise distinct — "which prefix survived?" has
    exactly one answer.

    Post-crash, hardened recovery must satisfy, per process:

    - {b accounting}: every operation acknowledged before the crash is
      either linearized in the rebuilt state or named in
      {!Onll_core.Onll.Recovery_report.t.lost_acked} — exactly one of
      the two, never neither, never both;
    - {b budget}: the lost set never exceeds the risk budget k, nor the
      tail depth observed at the crash;
    - {b suffix}: the lost set is a suffix of the acknowledgement order
      — a reported-lost operation below a surviving one would break the
      prefix property buffered durable linearizability demands;
    - {b prefix}: the recovered values equal the model state after
      {e exactly} the acked-minus-lost prefix (one unacknowledged
      in-flight operation may extend it when nothing was lost) — in
      particular no reported-lost update is still visible;
    - {b idempotence}: an immediate second recovery reports no fresh
      loss and leaves the state untouched;
    - {b convergence}: a post-crash era ending in {!flush} completes,
      leaves zero operations at risk, and a second crash then loses
      nothing and resurrects nothing.

    Single-process windows additionally close the loop through the
    checker dual: the recorded history plus post-recovery reads must
    satisfy {!Histcheck.Make.check_buffered} with [declared_lost] taken
    verbatim from the recovery report.

    Why no media faults here: the E12/E13 grids already cover media
    damage; the crisp loss-equals-suffix invariant only holds under pure
    crash policies ([Drop_all]/[Persist_all]/[Random] pending-line
    subsets), where fenced drain records never vanish.

    The calibration arm re-runs the same plans against
    {!Onll_relaxed.Make.recover_unhardened} (drain records and the
    acknowledgement ledger both ignored): fenced, drained operations
    vanish with nothing admitted, and the audits — and on checked
    windows the buffered checker — {e must} flag it. *)

open Onll_machine
module Kv = Onll_specs.Kv
module Report = Onll_core.Onll.Recovery_report

type plan = {
  seed : int;
  n_procs : int;
  updates_per_proc : int;
  budget : int;  (** risk budget k: max acked-unfenced operations *)
  crash_at : int;  (** scheduler step of the crash *)
  policy : Onll_nvm.Crash_policy.t;
  replicas : int;
  hardened : bool;
  checked : bool;
      (** run the buffered-checker dual on this window (single-process
          plans only — the checker is exponential in concurrency) *)
}

let plan_of_seed seed =
  let n_procs = 1 + (seed mod 3) in
  let updates_per_proc = 4 + (seed mod 6) in
  {
    seed;
    n_procs;
    updates_per_proc;
    budget = 1 lsl (seed mod 4);
    (* a fine sweep of the crash step walks the tail through every depth
       from 0 to the budget across the campaign *)
    crash_at = 4 + (seed * 7 mod 160);
    policy =
      (match seed mod 3 with
      | 0 -> Onll_nvm.Crash_policy.Persist_all
      | 1 -> Onll_nvm.Crash_policy.Drop_all
      | _ -> Onll_nvm.Crash_policy.Random seed);
    replicas = 1;
    hardened = true;
    checked = n_procs = 1 && updates_per_proc <= 6;
  }

(* The mirrored arm: object and coordinator logs two-way replicated, all
   copies drained under the same lazy fences. The invariants are
   identical; what is being checked is that mirroring composes with the
   deferred-drain protocol without widening the loss window. *)
let mirrored_plan_of_seed seed = { (plan_of_seed seed) with replicas = 2 }

let n_keys = 3
let key p i = Printf.sprintf "r.%d.%d" p i

(* One process's deterministic script: [(op, strict)] actions and the
   model state after every prefix. Values strictly increase per step, so
   prefix states are pairwise distinct. *)
let script_of ~plan p =
  let vals = Array.make n_keys None in
  let states = ref [ Array.copy vals ] (* newest first *) in
  let actions =
    List.init plan.updates_per_proc (fun t ->
        let i = t mod n_keys in
        let v = string_of_int (t + 1) in
        vals.(i) <- Some v;
        states := Array.copy vals :: !states;
        (Kv.Put (key p i, v), (t + plan.seed) mod 7 = 6))
  in
  (* states.(k) = model after prefix k, oldest first *)
  (actions, Array.of_list (List.rev !states))

type result = {
  crashed : bool;
  completed : int;  (** updates acknowledged pre-crash, all processes *)
  lost : int;  (** acknowledgements the recovery reported lost *)
  depth_at_crash : int;  (** tail depth (ops at risk) when the crash hit *)
  drains : int;
  deferred : int;
  converge_steps : int;  (** scheduler steps of the post-crash era *)
  violations : string list;
}

let run ~plan () =
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim =
    Sim.create ~sink ~max_processes:plan.n_procs ~crash_policy:plan.policy ()
  in
  let module M = (val Sim.machine sim) in
  let module R = Onll_relaxed.Make (M) (Kv) in
  let module H = Onll_histcheck.Histcheck.Make (Kv) in
  let obj =
    R.make ~max_unfenced_ops:plan.budget
      {
        Onll_core.Onll.Config.log_capacity = 1 lsl 16;
        replicas = plan.replicas;
        local_views = false;
        region_suffix = "";
        sink;
      }
  in
  let recorder = if plan.checked then Some (H.Recorder.create ()) else None in
  let scripts = Array.init plan.n_procs (fun p -> script_of ~plan p) in
  (* Plain refs mutated inside simulated processes: bookkeeping, not
     shared state, hence not scheduling points. Oldest-last. *)
  let acked = Array.make plan.n_procs [] in
  let mk_proc p _ =
    let actions, _ = scripts.(p) in
    List.iteri
      (fun t (op, strict) ->
        let submit op =
          if strict then R.update_strict obj op else R.update obj op
        in
        let id =
          match recorder with
          | Some rc ->
              let id = ref None in
              ignore
                (H.Recorder.run_update rc ~proc:p op (fun op ->
                     let i, v = submit op in
                     id := Some i;
                     v));
              Option.get !id
          | None -> fst (submit op)
        in
        acked.(p) <- (t, id) :: acked.(p))
      actions
  in
  let strategy =
    let base = Onll_sched.Sched.Strategy.random ~seed:plan.seed in
    fun view ->
      if view.Onll_sched.Sched.Strategy.steps () >= plan.crash_at then
        Onll_sched.Sched.Strategy.Crash_now
      else base view
  in
  let outcome =
    Sim.run sim strategy (Array.init plan.n_procs (fun p -> mk_proc p))
  in
  let crashed = outcome = Onll_sched.Sched.World.Crashed in
  (* The tail is wrapper (host-side) state, so its depth at the crash is
     still readable — that is the ops-at-risk figure the histogram
     buckets. *)
  let depth_at_crash = if crashed then R.pending_ops obj else 0 in
  let violations = ref [] in
  let fail fmt =
    Format.kasprintf (fun s -> violations := s :: !violations) fmt
  in
  let converge_steps = ref 0 in
  let lost_count = ref 0 in
  (* surviving prefix length per process, from the prefix audit *)
  let survived_prefix = Array.make plan.n_procs 0 in
  if crashed then begin
    Option.iter H.Recorder.crash recorder;
    (if plan.hardened then begin
       let r = R.recover_report obj in
       (* Pure crash chaos: budgeted loss is admitted in [lost_acked],
          everything else must be spotless. *)
       if not (Report.clean r) then
         fail "recovery not clean under pure crash: %a" Report.pp r;
       if List.length r.Report.lost_acked > plan.budget then
         fail "budget exceeded: %d acked operations lost, budget %d"
           (List.length r.Report.lost_acked)
           plan.budget;
       if List.length r.Report.lost_acked > depth_at_crash then
         fail "loss deeper than the tail: %d lost, %d pending at the crash"
           (List.length r.Report.lost_acked)
           depth_at_crash
     end
     else R.recover_unhardened obj);
    let lost = R.lost_acked obj in
    lost_count := List.length lost;
    let value k =
      match R.read obj (Kv.Get k) with Kv.Found v -> v | _ -> None
    in
    for p = 0 to plan.n_procs - 1 do
      let acks = List.rev acked.(p) (* oldest first *) in
      let n = List.length acks in
      let lost_p =
        List.filter (fun id -> id.Onll_core.Onll.id_proc = p) lost
      in
      (* Accounting: every acknowledged operation is linearized xor
         reported lost. *)
      List.iter
        (fun (t, id) ->
          let linearized = R.was_linearized obj id in
          let reported = List.mem id lost_p in
          if linearized && reported then
            fail "proc %d: update %d both linearized and reported lost" p t;
          if (not linearized) && not reported then
            fail
              "proc %d: update %d was acknowledged but is neither \
               linearized nor reported lost"
              p t)
        acks;
      (* Suffix: the lost set is the tail of the acknowledgement order.
         An id we never booked (the crash landed between the wrapper's
         internal ack and our bookkeeping) may ride above it, never
         below. *)
      let known_lost =
        List.filter (fun id -> List.exists (fun (_, i) -> i = id) acks) lost_p
      in
      let l = List.length known_lost in
      let suffix = List.filteri (fun i _ -> i >= n - l) acks in
      if not (List.for_all (fun (_, id) -> List.mem id known_lost) suffix)
      then
        fail "proc %d: the lost set is not a suffix of the acked sequence" p;
      let max_seq =
        List.fold_left
          (fun m (_, i) -> max m i.Onll_core.Onll.id_seq)
          (-1) acks
      in
      List.iter
        (fun id ->
          if
            (not (List.mem id known_lost))
            && id.Onll_core.Onll.id_seq <= max_seq
          then
            fail "proc %d: a lost operation sits below an acknowledged one"
              p)
        lost_p;
      (* Prefix: the recovered values match the surviving prefix — and
         only it. *)
      let _, states = scripts.(p) in
      let state_matches k =
        let m = states.(k) in
        let ok = ref true in
        for i = 0 to n_keys - 1 do
          if value (key p i) <> m.(i) then ok := false
        done;
        !ok
      in
      let rec longest k =
        if k < 0 then None
        else if state_matches k then Some k
        else longest (k - 1)
      in
      (match longest (Array.length states - 1) with
      | None ->
          fail "proc %d: recovered state matches NO prefix of its script" p
      | Some k ->
          survived_prefix.(p) <- k;
          let survived = n - l in
          if plan.hardened then begin
            if k < survived then
              fail
                "proc %d: only the %d-update prefix survived but %d acked \
                 updates were not reported lost"
                p k survived;
            if k > survived + 1 then
              fail
                "proc %d: the %d-update prefix is visible with only %d \
                 acked survivors"
                p k survived;
            if l > 0 && k <> survived then
              fail
                "proc %d: %d acked updates reported lost but the \
                 %d-update prefix is visible (want exactly %d) — a \
                 reported-lost update survived"
                p l k survived
          end
          else if k < survived then
            fail
              "proc %d: unhardened recovery lost %d acknowledged updates \
               and admitted nothing"
              p (survived - k))
    done;
    (* The checker dual: on single-process windows the recorded history
       plus post-recovery reads must pass the buffered verifier with the
       report's own loss declaration. *)
    (match recorder with
    | None -> ()
    | Some rc ->
        for i = 0 to n_keys - 1 do
          ignore
            (H.Recorder.run_read rc ~proc:0
               (Kv.Get (key 0 i))
               (fun op -> R.read obj op))
        done;
        let h = H.Recorder.history rc in
        let completed = List.length acked.(0) in
        (* recorder uids are invocation order = per-process sequence
           numbers here; an unreturned in-flight ack (seq >= completed)
           is incomplete in the history and must not be declared *)
        let declared =
          List.filter_map
            (fun id ->
              if
                id.Onll_core.Onll.id_proc = 0
                && id.Onll_core.Onll.id_seq < completed
              then Some id.Onll_core.Onll.id_seq
              else None)
            lost
        in
        (match
           H.check_buffered ~staleness:plan.budget ~declared_lost:declared h
         with
        | H.Buffered_linearizable _ | H.Buffered_budget_exhausted -> ()
        | H.Buffered_violation msg ->
            if plan.hardened then
              fail "buffered checker rejected the recovered history: %s" msg
            else
              fail "undeclared loss caught by the buffered checker: %s" msg);
        if plan.hardened && List.length declared > 0 then
          match H.check h with
          | H.Violation _ -> ()
          | _ ->
              fail
                "the strict checker accepted a history with %d lost \
                 acknowledgements"
                (List.length declared));
    if plan.hardened then begin
      (* Idempotence: an immediate second recovery is a no-op. *)
      let snap () =
        List.init plan.n_procs (fun p ->
            List.init n_keys (fun i -> value (key p i)))
      in
      let before = snap () in
      let r2 = R.recover_report obj in
      if r2.Report.lost_acked <> [] then
        fail "second recovery reported fresh loss";
      if before <> snap () then fail "second recovery changed the state";
      (* Convergence: a post-crash era ending in a flush leaves nothing
         at risk; a further crash then loses nothing and resurrects
         nothing. [converge_steps] is the time-to-converge figure. *)
      let post p _ =
        ignore (R.update obj (Kv.Put (key p 0, "post")));
        R.flush obj
      in
      let counting view =
        incr converge_steps;
        Onll_sched.Sched.Strategy.round_robin view
      in
      (match Sim.run sim counting (Array.init plan.n_procs post) with
      | Onll_sched.Sched.World.Completed -> ()
      | _ -> fail "post-crash era did not complete");
      if R.pending_ops obj <> 0 then
        fail "flush left %d operations at risk" (R.pending_ops obj);
      for p = 0 to plan.n_procs - 1 do
        if value (key p 0) <> Some "post" then
          fail "proc %d: post-crash update not visible" p
      done;
      Onll_nvm.Memory.crash (Sim.memory sim)
        ~policy:Onll_nvm.Crash_policy.Drop_all;
      let r3 = R.recover_report obj in
      if r3.Report.lost_acked <> [] then
        fail "a fully flushed object lost acknowledgements in a second crash";
      for p = 0 to plan.n_procs - 1 do
        if value (key p 0) <> Some "post" then
          fail "proc %d: flushed update lost in the second crash" p;
        (* no resurrection: the untouched keys still show exactly the
           first crash's surviving prefix — a value lost then must not
           reappear now (per-process sequence numbers are reused after
           recovery, so this is checked by value, not by id) *)
        let _, states = scripts.(p) in
        let m = states.(survived_prefix.(p)) in
        for i = 1 to n_keys - 1 do
          if value (key p i) <> m.(i) then
            fail
              "proc %d: key %d diverged after the second crash — a lost \
               update resurrected or a flushed one vanished"
              p i
        done
      done
    end
  end;
  {
    crashed;
    completed = Array.fold_left (fun a l -> a + List.length l) 0 acked;
    lost = !lost_count;
    depth_at_crash;
    drains = Onll_obs.Metrics.counter_value registry "fences.drains";
    deferred = Onll_obs.Metrics.counter_value registry "fences.deferred";
    converge_steps = !converge_steps;
    violations = List.rev !violations;
  }

(* {2 Campaign aggregation} *)

type row = {
  arm : string;
  runs : int;
  crashed : int;
  completed : int;
  lost : int;
  drains : int;
  deferred : int;
  converge_steps : int;
  violations : int;
}

type summary = {
  rows : row list;
  hist : (int * int) list;
      (** (tail depth at the crash, crashed runs at that depth) — the
          measured ops-at-risk distribution, bounded by the budget *)
  cal_runs : int;
  cal_caught : int;  (** unhardened runs the audit flagged (must be > 0) *)
  messages : string list;
}

let total_violations s =
  List.fold_left (fun acc r -> acc + r.violations) 0 s.rows

let campaign ?(plan_of = plan_of_seed) ?hist ~arm ~seeds ~messages () =
  let acc =
    ref
      {
        arm;
        runs = 0;
        crashed = 0;
        completed = 0;
        lost = 0;
        drains = 0;
        deferred = 0;
        converge_steps = 0;
        violations = 0;
      }
  in
  for seed = 1 to seeds do
    let r = run ~plan:(plan_of seed) () in
    List.iter
      (fun m ->
        messages := Printf.sprintf "%s seed %d: %s" arm seed m :: !messages)
      r.violations;
    (match hist with
    | Some h when r.crashed ->
        Hashtbl.replace h r.depth_at_crash
          (1 + Option.value ~default:0 (Hashtbl.find_opt h r.depth_at_crash))
    | _ -> ());
    let a = !acc in
    acc :=
      {
        a with
        runs = a.runs + 1;
        crashed = (a.crashed + if r.crashed then 1 else 0);
        completed = a.completed + r.completed;
        lost = a.lost + r.lost;
        drains = a.drains + r.drains;
        deferred = a.deferred + r.deferred;
        converge_steps = a.converge_steps + r.converge_steps;
        violations = a.violations + List.length r.violations;
      }
  done;
  !acc

let calibrate ~seeds =
  let caught = ref 0 in
  for seed = 1 to seeds do
    let plan = { (plan_of_seed seed) with hardened = false } in
    let r = run ~plan () in
    if r.crashed && r.violations <> [] then incr caught
  done;
  (seeds, !caught)

let run_campaign ~seeds ~calibration_seeds =
  let messages = ref [] in
  let h = Hashtbl.create 16 in
  let rows =
    [
      campaign ~arm:"relaxed" ~hist:h ~seeds ~messages ();
      campaign ~plan_of:mirrored_plan_of_seed ~arm:"relaxed/mirrored"
        ~hist:h ~seeds ~messages ();
    ]
  in
  let cal_runs, cal_caught = calibrate ~seeds:calibration_seeds in
  {
    rows;
    hist =
      List.sort compare (Hashtbl.fold (fun d n acc -> (d, n) :: acc) h []);
    cal_runs;
    cal_caught;
    messages = List.rev !messages;
  }

let print s =
  Onll_util.Table.print
    ~title:
      "E20 — bounded-staleness crash chaos (swept crash points; loss is \
       at most the budgeted suffix, named exactly, never resurrected; \
       violations must be 0)"
    ~header:
      [
        "arm"; "runs"; "crashed"; "acked"; "lost"; "drains"; "deferred";
        "converge-steps"; "violations";
      ]
    (List.map
       (fun r ->
         [
           r.arm;
           string_of_int r.runs;
           string_of_int r.crashed;
           string_of_int r.completed;
           string_of_int r.lost;
           string_of_int r.drains;
           string_of_int r.deferred;
           string_of_int r.converge_steps;
           string_of_int r.violations;
         ])
       s.rows);
  List.iter (fun m -> Printf.printf "  VIOLATION %s\n" m) s.messages;
  Printf.printf "ops at risk when the crash hit (tail depth -> runs): %s\n"
    (String.concat ", "
       (List.map (fun (d, n) -> Printf.sprintf "%d->%d" d n) s.hist));
  Printf.printf
    "calibration (unhardened recovery, ledger ignored): %d/%d crashes \
     caught losing acknowledged updates %s\n"
    s.cal_caught s.cal_runs
    (if s.cal_caught > 0 then "(detector fires)"
     else "(DETECTOR NEVER FIRED — campaign proves nothing)")

(* Fold into a metrics registry for the BENCH_e20.json gate slice
   ([?reg] merges into an existing summary instead). *)
let to_metrics ?(reg = Onll_obs.Metrics.create ()) s =
  let add name v =
    Onll_obs.Metrics.add (Onll_obs.Metrics.counter reg name) v
  in
  List.iter
    (fun r ->
      let p fmt = Printf.sprintf fmt r.arm in
      add (p "e20.%s.runs") r.runs;
      add (p "e20.%s.crashed") r.crashed;
      add (p "e20.%s.acked") r.completed;
      add (p "e20.%s.lost") r.lost;
      add (p "e20.%s.drains") r.drains;
      add (p "e20.%s.deferred") r.deferred;
      add (p "e20.%s.converge_steps") r.converge_steps;
      add (p "e20.%s.violations") r.violations)
    s.rows;
  List.iter
    (fun (d, n) -> add (Printf.sprintf "e20.risk.hist.%d" d) n)
    s.hist;
  add "e20.calibration.runs" s.cal_runs;
  add "e20.calibration.caught" s.cal_caught;
  reg
