(** Cross-cutting property tests (qcheck): equivalences between every
    durable implementation and the pure sequential model, recovery-prefix
    properties under randomized crashes, reclamation-anytime invariance,
    and self-tests of the checker on generated histories. *)

open Onll_machine
open Onll_util
module Cs = Onll_specs.Counter

let qcheck = QCheck_alcotest.to_alcotest

(* Interpret a seeded op sequence both through an implementation and
   through the pure model; every value must agree. *)
let sequential_equiv (type s u r v)
    (module S : Onll_core.Spec.S
      with type state = s
       and type update_op = u
       and type read_op = r
       and type value = v) ~gen_update ~gen_read ~(driver : int -> (u -> v) * (r -> v))
    seed =
  let rng = Splitmix.create seed in
  let update, read = driver seed in
  let model = ref S.initial in
  let steps = 25 in
  let ok = ref true in
  for k = 1 to steps do
    if k mod 3 = 0 then begin
      let rop = gen_read rng in
      let expected = S.read !model rop in
      if not (S.equal_value (read rop) expected) then ok := false
    end
    else begin
      let op = gen_update rng in
      let st', expected = S.apply !model op in
      model := st';
      if not (S.equal_value (update op) expected) then ok := false
    end
  done;
  !ok

let onll_driver (type s u r v)
    (module S : Onll_core.Spec.S
      with type state = s
       and type update_op = u
       and type read_op = r
       and type value = v) ~wait_free ~local_views _seed : (u -> v) * (r -> v)
    =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  if wait_free then begin
    let module C = Onll_core.Onll.Make_wait_free (M) (S) in
    let obj = C.make { Onll_core.Onll.Config.default with local_views } in
    (C.update obj, C.read obj)
  end
  else begin
    let module C = Onll_core.Onll.Make (M) (S) in
    let obj = C.make { Onll_core.Onll.Config.default with local_views } in
    (C.update obj, C.read obj)
  end

let equiv_test (type s u r v) name ~driver
    (module S : Onll_core.Spec.S
      with type state = s
       and type update_op = u
       and type read_op = r
       and type value = v) ~(gen_update : Splitmix.t -> u)
    ~(gen_read : Splitmix.t -> r) =
  qcheck
    (QCheck.Test.make ~name ~count:60 QCheck.small_nat (fun seed ->
         sequential_equiv (module S) ~gen_update ~gen_read ~driver seed))

(* {1 Sequential equivalence: every implementation = the model} *)

let prop_onll_counter =
  equiv_test "onll counter = model"
    ~driver:(onll_driver (module Cs) ~wait_free:false ~local_views:false)
    (module Cs)
    ~gen_update:Test_support.Gen.Counter.update
    ~gen_read:Test_support.Gen.Counter.read

let prop_onll_views_kv =
  equiv_test "onll+views kv = model"
    ~driver:
      (onll_driver (module Onll_specs.Kv) ~wait_free:false ~local_views:true)
    (module Onll_specs.Kv)
    ~gen_update:Test_support.Gen.Kv.update ~gen_read:Test_support.Gen.Kv.read

let prop_onll_wf_queue =
  equiv_test "onll-wait-free queue = model"
    ~driver:
      (onll_driver
         (module Onll_specs.Queue_spec)
         ~wait_free:true ~local_views:false)
    (module Onll_specs.Queue_spec)
    ~gen_update:Test_support.Gen.Queue.update
    ~gen_read:Test_support.Gen.Queue.read

let prop_onll_wf_views_ledger =
  equiv_test "onll-wait-free+views ledger = model"
    ~driver:
      (onll_driver (module Onll_specs.Ledger) ~wait_free:true
         ~local_views:true)
    (module Onll_specs.Ledger)
    ~gen_update:Test_support.Gen.Ledger.update
    ~gen_read:Test_support.Gen.Ledger.read

let shadow_driver (type s u r v)
    (module S : Onll_core.Spec.S
      with type state = s
       and type update_op = u
       and type read_op = r
       and type value = v) _seed : (u -> v) * (r -> v) =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module H = Onll_baselines.Shadow.Make (M) (S) in
  let obj = H.create ~state_capacity:(1 lsl 14) () in
  (H.update obj, H.read obj)

let prop_shadow_set =
  equiv_test "shadow set = model"
    ~driver:(shadow_driver (module Onll_specs.Set_spec))
    (module Onll_specs.Set_spec)
    ~gen_update:Test_support.Gen.Set_g.update
    ~gen_read:Test_support.Gen.Set_g.read

let por_driver (type s u r v)
    (module S : Onll_core.Spec.S
      with type state = s
       and type update_op = u
       and type read_op = r
       and type value = v) _seed : (u -> v) * (r -> v) =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module P = Onll_baselines.Persist_on_read.Make (M) (S) in
  let obj = P.create () in
  (P.update obj, P.read obj)

let prop_por_stack =
  equiv_test "persist-on-read stack = model"
    ~driver:(por_driver (module Onll_specs.Stack_spec))
    (module Onll_specs.Stack_spec)
    ~gen_update:Test_support.Gen.Stack.update
    ~gen_read:Test_support.Gen.Stack.read

(* {1 Recovery-prefix properties} *)

let prop_recovered_count_bounds =
  qcheck
    (QCheck.Test.make ~name:"recovered count in [completed, invoked]"
       ~count:80
       QCheck.(pair small_nat (int_bound 200))
       (fun (seed, crash_at) ->
         let sim = Sim.create ~max_processes:3 () in
         let module M = (val Sim.machine sim) in
         let module C = Onll_core.Onll.Make (M) (Cs) in
         let obj = C.make Onll_core.Onll.Config.default in
         let completed = ref 0 and invoked = ref 0 in
         let procs =
           Array.init 3 (fun _ ->
               fun _ ->
                 for _ = 1 to 4 do
                   incr invoked;
                   ignore (C.update obj Cs.Increment);
                   incr completed
                 done)
         in
         let outcome =
           Sim.run sim
             (Onll_sched.Sched.Strategy.random_with_crash ~seed
                ~crash_at_step:crash_at)
             procs
         in
         ignore outcome;
         C.recover obj;
         let v = C.read obj Cs.Get in
         v >= !completed && v <= !invoked))

let prop_multi_era_monotone =
  qcheck
    (QCheck.Test.make ~name:"value monotone across repeated crash eras"
       ~count:40 QCheck.small_nat (fun seed ->
         let sim = Sim.create ~max_processes:2 () in
         let module M = (val Sim.machine sim) in
         let module C = Onll_core.Onll.Make (M) (Cs) in
         let obj = C.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 18) } in
         let last = ref 0 in
         let ok = ref true in
         for era = 1 to 4 do
           let procs =
             Array.init 2 (fun _ ->
                 fun _ ->
                   for _ = 1 to 5 do
                     ignore (C.update obj Cs.Increment)
                   done)
           in
           ignore
             (Sim.run sim
                (Onll_sched.Sched.Strategy.random_with_crash
                   ~seed:(seed + era)
                   ~crash_at_step:(20 + ((seed * era) mod 60)))
                procs);
           C.recover obj;
           let v = C.read obj Cs.Get in
           if v < !last then ok := false;
           last := v
         done;
         !ok))

(* {1 Reclamation anytime: checkpoints/prunes never change semantics} *)

let prop_checkpoint_anytime =
  qcheck
    (QCheck.Test.make
       ~name:"random checkpoint/prune placement preserves the state"
       ~count:60 QCheck.small_nat (fun seed ->
         let rng = Splitmix.create seed in
         let sim = Sim.create ~max_processes:1 () in
         let module M = (val Sim.machine sim) in
         let module C = Onll_core.Onll.Make (M) (Cs) in
         let obj = C.make { Onll_core.Onll.Config.default with log_capacity = (1 lsl 18) } in
         let n = 30 in
         for _ = 1 to n do
           ignore (C.update obj Cs.Increment);
           (match Splitmix.int rng 6 with
           | 0 -> ignore (C.checkpoint obj)
           | 1 -> C.prune obj ~below:((C.snapshot obj).Onll_core.Onll.Snapshot.latest_available_idx)
           | _ -> ())
         done;
         Onll_nvm.Memory.crash (Sim.memory sim)
           ~policy:
             (if Splitmix.bool rng then Onll_nvm.Crash_policy.Drop_all
              else Onll_nvm.Crash_policy.Persist_all);
         C.recover obj;
         C.read obj Cs.Get = n))

let prop_detectability_total =
  qcheck
    (QCheck.Test.make
       ~name:"after crash: op linearized iff counted in the value" ~count:60
       QCheck.(pair small_nat (int_bound 150))
       (fun (seed, crash_at) ->
         let sim = Sim.create ~max_processes:2 () in
         let module M = (val Sim.machine sim) in
         let module C = Onll_core.Onll.Make (M) (Cs) in
         let obj = C.make Onll_core.Onll.Config.default in
         let per = 4 in
         let procs =
           Array.init 2 (fun p ->
               fun _ ->
                 for k = 0 to per - 1 do
                   ignore (C.update_detectable obj ~seq:k Cs.Increment);
                   ignore p
                 done)
         in
         ignore
           (Sim.run sim
              (Onll_sched.Sched.Strategy.random_with_crash ~seed
                 ~crash_at_step:crash_at)
              procs);
         C.recover obj;
         let linearized = ref 0 in
         for p = 0 to 1 do
           for k = 0 to per - 1 do
             if
               C.was_linearized obj { Onll_core.Onll.id_proc = p; id_seq = k }
             then incr linearized
           done
         done;
         C.read obj Cs.Get = !linearized))

(* {1 Checker self-tests on generated histories} *)

module H = Onll_histcheck.Histcheck.Make (Cs)

(* A sequential history generated from the model is always accepted. *)
let prop_checker_accepts_model_histories =
  qcheck
    (QCheck.Test.make ~name:"checker accepts model-generated histories"
       ~count:80 QCheck.small_nat (fun seed ->
         let rng = Splitmix.create seed in
         let events = ref [] in
         let model = ref Cs.initial in
         let uid = ref 0 in
         for _ = 1 to 8 do
           let proc = Splitmix.int rng 3 in
           let u = !uid in
           incr uid;
           if Splitmix.bool rng then begin
             let op = Test_support.Gen.Counter.update rng in
             let st', v = Cs.apply !model op in
             model := st';
             events :=
               H.Return { uid = u; value = v }
               :: H.Invoke { uid = u; proc; kind = H.Update op }
               :: !events
           end
           else begin
             let v = Cs.read !model Cs.Get in
             events :=
               H.Return { uid = u; value = v }
               :: H.Invoke { uid = u; proc; kind = H.Read Cs.Get }
               :: !events
           end
         done;
         match H.check (List.rev !events) with
         | H.Durably_linearizable _ -> true
         | H.Violation _ | H.Budget_exhausted -> false))

(* Mutating one increment's return value in a strictly increasing history
   must be rejected. *)
let prop_checker_rejects_mutations =
  qcheck
    (QCheck.Test.make ~name:"checker rejects a mutated return value"
       ~count:60
       QCheck.(pair (int_range 1 6) (int_range 1 100))
       (fun (victim, delta) ->
         let n = 7 in
         let victim = victim mod n in
         let events =
           List.concat
             (List.init n (fun k ->
                  let v = if k = victim then k + 1 + delta else k + 1 in
                  [
                    H.Invoke { uid = k; proc = 0; kind = H.Update Cs.Increment };
                    H.Return { uid = k; value = v };
                  ]))
         in
         match H.check events with
         | H.Violation _ -> true
         | H.Durably_linearizable _ | H.Budget_exhausted -> false))

let () =
  Alcotest.run "properties"
    [
      ( "sequential equivalence",
        [
          prop_onll_counter;
          prop_onll_views_kv;
          prop_onll_wf_queue;
          prop_onll_wf_views_ledger;
          prop_shadow_set;
          prop_por_stack;
        ] );
      ( "recovery",
        [
          prop_recovered_count_bounds;
          prop_multi_era_monotone;
          prop_detectability_total;
        ] );
      ( "reclamation", [ prop_checkpoint_anytime ] );
      ( "checker",
        [ prop_checker_accepts_model_histories; prop_checker_rejects_mutations ]
      );
    ]
