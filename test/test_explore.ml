(** The systematic explorer: exhaustive (preemption-bounded) schedule and
    crash-point enumeration on small programs. Exhaustiveness is what the
    assertions rely on: when the explorer reports zero violations over all
    schedules with <= k preemptions and all crash points, that is a
    statement about every such execution, not a sample. *)

open Onll_machine
module E = Onll_explore.Explore
module Cs = Onll_specs.Counter

let check = Alcotest.check

(* {1 Mechanics} *)

let test_single_proc_one_run () =
  (* One process, no crashes: exactly one schedule exists. *)
  let runs = ref 0 in
  let mk () =
    incr runs;
    let sim = Sim.create ~max_processes:1 () in
    let module M = (val Sim.machine sim) in
    let v = M.Tvar.make 0 in
    ( sim,
      [| (fun _ -> M.Tvar.set v 1) |],
      fun outcome ->
        assert (outcome = Onll_sched.Sched.World.Completed) )
  in
  let stats = E.run ~mk () in
  check Alcotest.int "one run" 1 stats.E.runs;
  check Alcotest.int "mk called once" 1 !runs;
  check Alcotest.bool "not truncated" false stats.E.truncated

let test_preemption_bound_monotone () =
  let explore k =
    let mk () =
      let sim = Sim.create ~max_processes:2 () in
      let module M = (val Sim.machine sim) in
      let v = M.Tvar.make 0 in
      ( sim,
        Array.init 2 (fun _ ->
            fun _ ->
              for _ = 1 to 3 do
                M.Tvar.set v (M.Tvar.get v + 1)
              done),
        fun _ -> () )
    in
    (E.run ~max_preemptions:k ~mk ()).E.runs
  in
  let r0 = explore 0 and r1 = explore 1 and r2 = explore 2 in
  check Alcotest.bool
    (Printf.sprintf "more preemptions, more schedules (%d < %d <= %d)" r0 r1
       r2)
    true
    (r0 < r1 && r1 <= r2);
  (* k=0: the only choices are at voluntary switches (process completion):
     with 2 procs that is the choice of who goes first... plus who continues
     when the running one finishes. *)
  check Alcotest.bool "k=0 explores at least both orders" true (r0 >= 2)

let test_crash_branching_adds_runs () =
  let explore with_crashes =
    let mk () =
      let sim = Sim.create ~max_processes:1 () in
      let module M = (val Sim.machine sim) in
      let r = M.Pm.create ~name:"r" ~size:64 in
      ( sim,
        [| (fun _ ->
             M.Pm.store r ~off:0 "x";
             M.Pm.flush r ~off:0 ~len:1;
             M.fence ()) |],
        fun _ -> () )
    in
    E.run ~with_crashes ~mk ()
  in
  let plain = explore false and crashy = explore true in
  check Alcotest.int "no crash branches" 0 plain.E.crashed_runs;
  check Alcotest.bool "crash at every decision point" true
    (crashy.E.crashed_runs >= 3);
  check Alcotest.bool "more runs with crashes" true
    (crashy.E.runs > plain.E.runs)

(* {1 Exhaustive correctness of ONLL on small programs} *)

let test_onll_counter_all_schedules () =
  (* 2 processes x 1 increment, all schedules with <= 2 preemptions: the
     final value is always exactly 2 and fences exactly 2. *)
  let mk () =
    let sim = Sim.create ~max_processes:2 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with log_capacity = 4096 } in
    let procs =
      Array.init 2 (fun _ -> fun _ -> ignore (C.update obj Cs.Increment))
    in
    ( sim,
      procs,
      fun outcome ->
        assert (outcome = Onll_sched.Sched.World.Completed);
        assert (C.read obj Cs.Get = 2);
        assert (M.persistent_fences () = 2) )
  in
  let stats = E.run ~max_preemptions:2 ~mk () in
  check Alcotest.bool "explored a real space" true (stats.E.runs > 50);
  check Alcotest.bool "not truncated" false stats.E.truncated

let test_onll_durability_all_schedules_and_crashes () =
  (* 2 processes x 1 increment, crash at every decision point of every
     schedule with <= 1 preemption, drop-all policy: after recovery the
     counter equals the number of linearized ops, and no violation of the
     completed-op rule is possible (no op completes before the crash unless
     persisted). *)
  let mk () =
    let sim = Sim.create ~max_processes:2 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with log_capacity = 4096 } in
    let completed = ref 0 in
    let procs =
      Array.init 2 (fun p ->
          fun _ ->
            ignore (C.update_detectable obj ~seq:0 Cs.Increment);
            ignore p;
            incr completed)
    in
    ( sim,
      procs,
      fun outcome ->
        match outcome with
        | Onll_sched.Sched.World.Completed -> assert (C.read obj Cs.Get = 2)
        | Onll_sched.Sched.World.Crashed ->
            C.recover obj;
            let v = C.read obj Cs.Get in
            (* completed ops survive *)
            assert (v >= !completed);
            (* detectability is consistent with the recovered value *)
            let lin = ref 0 in
            for p = 0 to 1 do
              if C.was_linearized obj { Onll_core.Onll.id_proc = p; id_seq = 0 }
              then incr lin
            done;
            assert (v = !lin)
        | Onll_sched.Sched.World.Stopped _ -> assert false )
  in
  let stats = E.run ~max_preemptions:1 ~with_crashes:true ~mk () in
  check Alcotest.bool "hundreds of executions" true (stats.E.runs > 200);
  check Alcotest.bool "many crash injections" true (stats.E.crashed_runs > 100);
  check Alcotest.bool "not truncated" false stats.E.truncated

(* {1 The explorer finds real bugs deterministically} *)

let test_explorer_finds_volatile_lost_update () =
  (* Racy volatile counter: some schedule with <= 1 preemption loses an
     update. Random testing might find it; the explorer must. *)
  let lost = ref false in
  let mk () =
    let sim = Sim.create ~max_processes:2 () in
    let module M = (val Sim.machine sim) in
    let v = M.Tvar.make 0 in
    ( sim,
      Array.init 2 (fun _ ->
          fun _ ->
            (* read-modify-write without CAS *)
            let x = M.Tvar.get v in
            M.Tvar.set v (x + 1)),
      fun _ -> (let x = M.Tvar.get v in
                if x < 2 then lost := true) )
  in
  let stats = E.run ~max_preemptions:1 ~mk () in
  ignore stats;
  check Alcotest.bool "found a lost update" true !lost

let test_explorer_finds_broken_early_violation () =
  (* The §3.1 bug (Broken_early): the explorer, with crash branching, must
     hit the reader-observed-then-erased window without any seed luck. *)
  let module H = Onll_histcheck.Histcheck.Make (Cs) in
  let violation = ref false in
  let mk () =
    let sim = Sim.create ~max_processes:2 () in
    let module M = (val Sim.machine sim) in
    let module B = Onll_baselines.Broken_early.Make (M) (Cs) in
    let obj = B.create ~log_capacity:4096 () in
    let recorder = H.Recorder.create () in
    let procs =
      [|
        (fun _ ->
          let uid = H.Recorder.invoke recorder ~proc:0 (H.Update Cs.Increment) in
          let v = B.update obj Cs.Increment in
          H.Recorder.return_ recorder uid v);
        (fun _ ->
          let uid = H.Recorder.invoke recorder ~proc:1 (H.Read Cs.Get) in
          let v = B.read obj Cs.Get in
          H.Recorder.return_ recorder uid v);
      |]
    in
    ( sim,
      procs,
      fun outcome ->
        if outcome = Onll_sched.Sched.World.Crashed then begin
          H.Recorder.crash recorder;
          B.recover obj;
          let uid = H.Recorder.invoke recorder ~proc:0 (H.Read Cs.Get) in
          let v = B.read obj Cs.Get in
          H.Recorder.return_ recorder uid v;
          match H.check (H.Recorder.history recorder) with
          | H.Violation _ -> violation := true
          | H.Durably_linearizable _ | H.Budget_exhausted -> ()
        end )
  in
  let stats = E.run ~max_preemptions:1 ~with_crashes:true ~mk () in
  check Alcotest.bool "exploration happened" true (stats.E.crashed_runs > 10);
  check Alcotest.bool "violation found deterministically" true !violation

let test_onll_same_program_no_violation () =
  (* The same exploration against real ONLL: zero violations over the whole
     space. *)
  let module H = Onll_histcheck.Histcheck.Make (Cs) in
  let violation = ref false in
  let mk () =
    let sim = Sim.create ~max_processes:2 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with log_capacity = 4096 } in
    let recorder = H.Recorder.create () in
    let procs =
      [|
        (fun _ ->
          let uid = H.Recorder.invoke recorder ~proc:0 (H.Update Cs.Increment) in
          let v = C.update obj Cs.Increment in
          H.Recorder.return_ recorder uid v);
        (fun _ ->
          let uid = H.Recorder.invoke recorder ~proc:1 (H.Read Cs.Get) in
          let v = C.read obj Cs.Get in
          H.Recorder.return_ recorder uid v);
      |]
    in
    ( sim,
      procs,
      fun outcome ->
        if outcome = Onll_sched.Sched.World.Crashed then begin
          H.Recorder.crash recorder;
          C.recover obj;
          let uid = H.Recorder.invoke recorder ~proc:0 (H.Read Cs.Get) in
          let v = C.read obj Cs.Get in
          H.Recorder.return_ recorder uid v;
          match H.check (H.Recorder.history recorder) with
          | H.Violation _ -> violation := true
          | H.Durably_linearizable _ | H.Budget_exhausted -> ()
        end )
  in
  let stats = E.run ~max_preemptions:1 ~with_crashes:true ~mk () in
  check Alcotest.bool "space explored" true (stats.E.crashed_runs > 10);
  check Alcotest.bool "no violation anywhere" false !violation

let test_wait_free_onll_explored () =
  (* The wait-free variant under exhaustive small-space exploration. *)
  let mk () =
    let sim = Sim.create ~max_processes:2 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with log_capacity = 4096 } in
    ( sim,
      Array.init 2 (fun _ -> fun _ -> ignore (C.update obj Cs.Increment)),
      fun outcome ->
        match outcome with
        | Onll_sched.Sched.World.Completed -> assert (C.read obj Cs.Get = 2)
        | Onll_sched.Sched.World.Crashed ->
            C.recover obj;
            assert (C.read obj Cs.Get <= 2)
        | Onll_sched.Sched.World.Stopped _ -> assert false )
  in
  let stats = E.run ~max_preemptions:1 ~with_crashes:true ~mk () in
  check Alcotest.bool "explored" true (stats.E.runs > 100);
  check Alcotest.bool "not truncated" false stats.E.truncated

let test_max_runs_truncates () =
  let mk () =
    let sim = Sim.create ~max_processes:3 () in
    let module M = (val Sim.machine sim) in
    let v = M.Tvar.make 0 in
    ( sim,
      Array.init 3 (fun _ ->
          fun _ ->
            for _ = 1 to 5 do
              M.Tvar.set v (M.Tvar.get v + 1)
            done),
      fun _ -> () )
  in
  let stats = E.run ~max_preemptions:3 ~max_runs:50 ~mk () in
  check Alcotest.bool "truncated" true stats.E.truncated;
  check Alcotest.int "capped" 50 stats.E.runs

let () =
  Alcotest.run "explore"
    [
      ( "mechanics",
        [
          Alcotest.test_case "single proc" `Quick test_single_proc_one_run;
          Alcotest.test_case "preemption bound" `Quick
            test_preemption_bound_monotone;
          Alcotest.test_case "crash branching" `Quick
            test_crash_branching_adds_runs;
          Alcotest.test_case "max runs truncates" `Quick test_max_runs_truncates;
        ] );
      ( "onll exhaustive",
        [
          Alcotest.test_case "all schedules: value exact" `Quick
            test_onll_counter_all_schedules;
          Alcotest.test_case "all schedules and crashes: durable" `Slow
            test_onll_durability_all_schedules_and_crashes;
          Alcotest.test_case "wait-free variant" `Slow
            test_wait_free_onll_explored;
        ] );
      ( "bug finding",
        [
          Alcotest.test_case "volatile lost update" `Quick
            test_explorer_finds_volatile_lost_update;
          Alcotest.test_case "broken-early violation" `Slow
            test_explorer_finds_broken_early_violation;
          Alcotest.test_case "onll clean on same program" `Slow
            test_onll_same_program_no_violation;
        ] );
    ]
