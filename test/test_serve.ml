(* Deterministic unit tests for the `onll serve` front-end (E18): wire
   framing, the region-naming audit, the service's protocol policy over
   an in-memory machine, the identity allocator's never-reuse contract
   across a file-machine restart, recovery-complete serving, and the
   SIGTERM drain over a real socket (plain and mirrored). The
   randomized/adversarial coverage lives in the E18 chaos campaign
   ([test_support/service_chaos.ml]); these are the pinned specimens. *)

open Onll_machine
module Fm = Onll_machine.File_machine
module Cs = Onll_specs.Counter
module Codec = Onll_util.Codec
module Protocol = Onll_serve.Protocol
module Service = Onll_serve.Service
module Server = Onll_serve.Server

let check = Alcotest.check

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "onll-tsv-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let incr_op = Codec.encode Cs.update_codec Cs.Increment

(* {1 Wire framing} *)

let test_framing () =
  (* Roundtrip through the length-prefixed framing, delivered one byte
     at a time (the poll loop's worst case). *)
  let msgs =
    [
      Protocol.Hello { client = 42; token = "onll"; tier = Protocol.T_exactly_once };
      Protocol.Submit { seq = 7; deadline_ns = 123_456; op = incr_op };
      Protocol.Fetch { op = "" };
      Protocol.Ping;
      Protocol.Bye;
    ]
  in
  let buf = Buffer.create 256 in
  List.iter (fun m -> Protocol.write_frame buf Protocol.req_codec m) msgs;
  let raw = Buffer.contents buf in
  let inbuf = Protocol.Inbuf.create () in
  let got = ref [] in
  String.iter
    (fun ch ->
      Protocol.Inbuf.add inbuf (Bytes.make 1 ch) 1;
      match Protocol.Inbuf.pop inbuf Protocol.req_codec with
      | Some m -> got := m :: !got
      | None -> ())
    raw;
  check Alcotest.int "every frame popped" (List.length msgs)
    (List.length !got);
  check Alcotest.bool "frames decode to the originals" true
    (List.rev !got = msgs);
  check Alcotest.int "no residue" 0 (Protocol.Inbuf.pending inbuf);
  (* a forged length prefix over the cap is a protocol error, not an
     allocation request *)
  let evil = Bytes.create 4 in
  Bytes.set_int32_be evil 0 (Int32.of_int (Protocol.max_frame + 1));
  Protocol.Inbuf.add inbuf evil 4;
  check Alcotest.bool "oversized prefix raises" true
    (match Protocol.Inbuf.pop inbuf Protocol.req_codec with
    | exception Protocol.Inbuf.Oversized_frame -> true
    | _ -> false)

(* {1 Region naming: injective across the whole client-id range} *)

let test_region_names_injective () =
  let seen = Hashtbl.create 20_000 in
  for client = 0 to 9_999 do
    let name = Service.region_name ~client in
    (match Hashtbl.find_opt seen name with
    | Some other ->
        Alcotest.failf "clients %d and %d share region %S" other client name
    | None -> ());
    Hashtbl.replace seen name client
  done;
  check Alcotest.int "10k distinct region names" 10_000 (Hashtbl.length seen)

(* {1 Protocol policy over an in-memory machine} *)

let test_handle_policy () =
  let nat = Native.create ~fence_ns:0 ~max_processes:1 () in
  ignore (Native.register nat);
  let module M = (val Native.machine nat) in
  let module Svc = Service.Make (M) in
  let t = Svc.make ~token:"secret" ~max_clients:100 Service.Plain in
  let conn = Svc.conn () in
  let h req = Svc.handle t conn req in
  (* auth and range policy, all before any durable work *)
  check Alcotest.bool "bad token refused" true
    (h (Protocol.Hello { client = 1; token = "wrong"; tier = Protocol.T_exactly_once })
    = Protocol.Refused Protocol.R_bad_token);
  check Alcotest.bool "client out of range refused" true
    (h (Protocol.Hello { client = 100; token = "secret"; tier = Protocol.T_exactly_once })
    = Protocol.Refused Protocol.R_bad_client);
  check Alcotest.bool "submit before hello refused" true
    (h (Protocol.Submit { seq = 0; deadline_ns = 0; op = incr_op })
    = Protocol.Refused Protocol.R_not_attached);
  (* the session-region accounting moves exactly once per client *)
  let rb0 = Svc.region_bytes t in
  (match h (Protocol.Hello { client = 1; token = "secret"; tier = Protocol.T_exactly_once }) with
  | Protocol.Attached { next_seq = 0; resolution = Protocol.W_none; _ } -> ()
  | r -> Alcotest.failf "hello: %s" (match r with
      | Protocol.Refused ref ->
          Format.asprintf "refused %a" Protocol.pp_refusal ref
      | _ -> "unexpected response shape"));
  let rb1 = Svc.region_bytes t in
  check Alcotest.bool "attach reserves session-region bytes" true (rb1 > rb0);
  ignore (h (Protocol.Hello { client = 1; token = "secret"; tier = Protocol.T_exactly_once }) : Protocol.resp);
  check Alcotest.int "re-attach reserves nothing new" rb1 (Svc.region_bytes t);
  (* the exactly-once submit path *)
  check Alcotest.bool "first submit acks value 1" true
    (h (Protocol.Submit { seq = 0; deadline_ns = 0; op = incr_op })
    = Protocol.Acked { seq = 0; value = 1 });
  check Alcotest.bool "stale seq refused with the expected one" true
    (h (Protocol.Submit { seq = 0; deadline_ns = 0; op = incr_op })
    = Protocol.Refused (Protocol.R_bad_seq 1));
  check Alcotest.bool "undecodable op refused" true
    (h (Protocol.Submit { seq = 1; deadline_ns = 0; op = "\xff\xff\xff" })
    = Protocol.Refused Protocol.R_bad_op);
  check Alcotest.bool "read sees the one applied op" true
    (h (Protocol.Fetch { op = "" }) = Protocol.Got 1);
  check Alcotest.int "counter agrees" 1 (Svc.counter_value t);
  (* drain policy *)
  Svc.drain t;
  check Alcotest.bool "hello while draining refused" true
    (h (Protocol.Hello { client = 2; token = "secret"; tier = Protocol.T_exactly_once })
    = Protocol.Refused Protocol.R_draining);
  check Alcotest.bool "submit while draining refused" true
    (h (Protocol.Submit { seq = 1; deadline_ns = 0; op = incr_op })
    = Protocol.Refused Protocol.R_draining);
  check Alcotest.bool "reads still answer while draining" true
    (h (Protocol.Fetch { op = "" }) = Protocol.Got 1);
  check Alcotest.bool "bye answers gone" true (h Protocol.Bye = Protocol.Gone)

(* {1 Per-session durability tiers (E20)} *)

let test_tiers () =
  let nat = Native.create ~fence_ns:0 ~max_processes:1 () in
  ignore (Native.register nat);
  let module M = (val Native.machine nat) in
  let module Svc = Service.Make (M) in
  let t = Svc.make ~max_staleness:8 Service.Plain in
  let submit conn seq =
    Svc.handle t conn (Protocol.Submit { seq; deadline_ns = 0; op = incr_op })
  in
  (* tier validation is definite and pre-durable *)
  let refused tier =
    Svc.handle t (Svc.conn ())
      (Protocol.Hello { client = 9; token = "onll"; tier })
    = Protocol.Refused Protocol.R_bad_tier
  in
  check Alcotest.bool "staleness 0 refused" true
    (refused (Protocol.T_staleness 0));
  check Alcotest.bool "staleness above the server cap refused" true
    (refused (Protocol.T_staleness 9));
  check Alcotest.bool "staleness at the cap accepted" false
    (refused (Protocol.T_staleness 8));
  (* a staleness-k session: fence-free acks, visible to reads at once *)
  let ck = Svc.conn () in
  (match
     Svc.handle t ck
       (Protocol.Hello
          { client = 1; token = "onll"; tier = Protocol.T_staleness 4 })
   with
  | Protocol.Attached _ -> ()
  | _ -> Alcotest.fail "staleness hello not attached");
  check Alcotest.bool "staleness submit acks" true
    (submit ck 0 = Protocol.Acked { seq = 0; value = 1 });
  check Alcotest.bool "staleness echoes the client seq" true
    (submit ck 1 = Protocol.Acked { seq = 1; value = 2 });
  check Alcotest.int "acks are readable immediately" 2 (Svc.counter_value t);
  (* a strict session piggybacks: its one fence drains the tail too *)
  let cs = Svc.conn () in
  (match
     Svc.handle t cs
       (Protocol.Hello { client = 2; token = "onll"; tier = Protocol.T_strict })
   with
  | Protocol.Attached _ -> ()
  | _ -> Alcotest.fail "strict hello not attached");
  check Alcotest.bool "strict submit acks" true
    (submit cs 0 = Protocol.Acked { seq = 0; value = 3 });
  (* exactly-once clients interleave with tiered ones on the same object *)
  let ce = Svc.conn () in
  ignore
    (Svc.handle t ce
       (Protocol.Hello
          { client = 3; token = "onll"; tier = Protocol.T_exactly_once })
      : Protocol.resp);
  check Alcotest.bool "exactly-once submit still acks" true
    (submit ce 0 = Protocol.Acked { seq = 0; value = 4 });
  check Alcotest.int "all four updates landed" 4 (Svc.counter_value t);
  Svc.quiesce t;
  (* relaxed tiers are a wrapper property: constructions without it
     refuse them outright (fresh machine: region names are global) *)
  let nat2 = Native.create ~fence_ns:0 ~max_processes:1 () in
  ignore (Native.register nat2);
  let module M2 = (val Native.machine nat2) in
  let module Svc = Service.Make (M2) in
  let tb = Svc.make ~token:"onll" Service.Batched in
  check Alcotest.bool "batched refuses the strict tier" true
    (Svc.handle tb (Svc.conn ())
       (Protocol.Hello { client = 1; token = "onll"; tier = Protocol.T_strict })
    = Protocol.Refused Protocol.R_bad_tier);
  check Alcotest.bool "batched refuses staleness tiers" true
    (Svc.handle tb (Svc.conn ())
       (Protocol.Hello
          { client = 1; token = "onll"; tier = Protocol.T_staleness 2 })
    = Protocol.Refused Protocol.R_bad_tier);
  check Alcotest.bool "batched still serves exactly-once" true
    (match
       Svc.handle tb (Svc.conn ())
         (Protocol.Hello
            { client = 1; token = "onll"; tier = Protocol.T_exactly_once })
     with
    | Protocol.Attached _ -> true
    | _ -> false)

(* {1 The identity allocator never re-hands an identity across restart} *)

let test_oseq_restart_never_reuses () =
  let dir = fresh_dir () in
  let drawn = ref [] in
  (* life 1: draw from a block of 8, then die with the tail unused *)
  let fm = Fm.create ~dir ~max_processes:1 () in
  ignore (Fm.register fm);
  let module M1 = (val Fm.machine fm) in
  let module S1 = Service.Make (M1) in
  let o1 = S1.Oseq.create ~block:8 () in
  S1.Oseq.recover o1;
  for _ = 1 to 5 do
    drawn := S1.Oseq.next o1 :: !drawn
  done;
  check Alcotest.int "block reservation is durable up front" 8
    (S1.Oseq.watermark o1);
  Fm.close fm;
  (* life 2: the unused tail of the block is abandoned, never re-handed *)
  let fm2 = Fm.create ~dir ~max_processes:1 () in
  ignore (Fm.register fm2);
  let module M2 = (val Fm.machine fm2) in
  let module S2 = Service.Make (M2) in
  let o2 = S2.Oseq.create ~block:8 () in
  S2.Oseq.recover o2;
  check Alcotest.bool "restart resumes at the durable watermark" true
    (S2.Oseq.watermark o2 >= 8);
  for _ = 1 to 10 do
    let id = S2.Oseq.next o2 in
    if List.mem id !drawn then
      Alcotest.failf "identity %d re-handed after restart" id
  done;
  Fm.close fm2

(* {1 Recovery-complete serving across a file-machine restart} *)

let test_recovery_complete_restart () =
  let dir = fresh_dir () in
  (* life 1: client 7 attaches and applies one op *)
  let fm = Fm.create ~dir ~max_processes:1 () in
  ignore (Fm.register fm);
  let module M1 = (val Fm.machine fm) in
  let module S1 = Service.Make (M1) in
  let t1 = S1.make Service.Plain in
  let c1 = S1.conn () in
  (match S1.handle t1 c1 (Protocol.Hello { client = 7; token = "onll"; tier = Protocol.T_exactly_once }) with
  | Protocol.Attached _ -> ()
  | _ -> Alcotest.fail "life-1 hello refused");
  (match
     S1.handle t1 c1 (Protocol.Submit { seq = 0; deadline_ns = 0; op = incr_op })
   with
  | Protocol.Acked { value = 1; _ } -> ()
  | _ -> Alcotest.fail "life-1 submit not acked");
  S1.quiesce t1;
  Fm.close fm;
  (* life 2: [make] must re-attach the directory's clients before serving
     — an in-doubt identity resolved lazily would be unsound, see the
     directory comment in [Service] *)
  let fm2 = Fm.create ~dir ~max_processes:1 () in
  ignore (Fm.register fm2);
  let module M2 = (val Fm.machine fm2) in
  let module S2 = Service.Make (M2) in
  let t2 = S2.make Service.Plain in
  check Alcotest.bool "directory re-attached client 7 before serving" true
    (S2.sessions t2 >= 1);
  check Alcotest.int "the applied op survived the restart" 1
    (S2.counter_value t2);
  (* and the client's cursors came back with it *)
  let c2 = S2.conn () in
  (match S2.handle t2 c2 (Protocol.Hello { client = 7; token = "onll"; tier = Protocol.T_exactly_once }) with
  | Protocol.Attached { next_seq = 1; _ } -> ()
  | Protocol.Attached { next_seq; _ } ->
      Alcotest.failf "life-2 next_seq = %d, wanted 1" next_seq
  | _ -> Alcotest.fail "life-2 hello refused");
  Fm.close fm2

(* {1 SIGTERM drain over a real socket} *)

(* Blocking client-side framing helpers (tests only). *)
let send_req fd req =
  let buf = Buffer.create 64 in
  Protocol.write_frame buf Protocol.req_codec req;
  let s = Buffer.to_bytes buf in
  let n = Bytes.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd s !off (n - !off)
  done

let recv_resp fd inbuf =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Protocol.Inbuf.pop inbuf Protocol.resp_codec with
    | Some r -> Some r
    | None -> (
        match Unix.read fd chunk 0 4096 with
        | 0 -> None
        | n ->
            Protocol.Inbuf.add inbuf chunk n;
            go ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> None)
  in
  go ()

(* A server child over the native machine; SIGTERM lands while the parent
   is mid-submit. Every in-flight op must be finished (Acked) or cleanly
   refused (R_draining / connection closed after a flush) — never left
   half-acked — and the child must exit 0 through the drain path. *)
let drain_scenario construction =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "srv.sock" in
  let ready_r, ready_w = Unix.pipe () in
  let child = Unix.fork () in
  if child = 0 then begin
    let code =
      try
        Unix.close ready_r;
        let nat = Native.create ~fence_ns:0 ~max_processes:1 () in
        ignore (Native.register nat);
        let module M = (val Native.machine nat) in
        let module Srv = Server.Make (M) in
        let svc = Srv.Svc.make construction in
        let scfg =
          {
            (Server.default_config ~socket_path:socket) with
            Server.on_ready =
              (fun () ->
                ignore (Unix.write ready_w (Bytes.make 1 'R') 0 1);
                Unix.close ready_w);
          }
        in
        Srv.run svc scfg;
        0
      with _ -> 1
    in
    Unix._exit code
  end;
  Unix.close ready_w;
  check Alcotest.int "server came up" 1 (Unix.read ready_r (Bytes.create 1) 0 1);
  Unix.close ready_r;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let inbuf = Protocol.Inbuf.create () in
  send_req fd (Protocol.Hello { client = 0; token = "onll"; tier = Protocol.T_exactly_once });
  (match recv_resp fd inbuf with
  | Some (Protocol.Attached _) -> ()
  | _ -> Alcotest.fail "hello refused");
  let acked = ref 0 and drained = ref false and closed = ref false in
  let seq = ref 0 in
  let i = ref 0 in
  while (not !drained) && (not !closed) && !i < 200 do
    if !i = 20 then Unix.kill child Sys.sigterm;
    (match
       send_req fd
         (Protocol.Submit { seq = !seq; deadline_ns = 0; op = incr_op })
     with
    | () -> (
        match recv_resp fd inbuf with
        | Some (Protocol.Acked { seq = s; _ }) ->
            check Alcotest.int "acks arrive in submit order" !seq s;
            incr acked;
            incr seq
        | Some (Protocol.Refused Protocol.R_draining) -> drained := true
        | Some (Protocol.Refused Protocol.R_overloaded) -> ()
        | Some _ -> Alcotest.fail "unexpected response to submit"
        | None -> closed := true)
    | exception Unix.Unix_error (Unix.EPIPE, _, _) -> closed := true);
    incr i
  done;
  Unix.close fd;
  (match Unix.waitpid [] child with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "server exited %d" n
  | _, _ -> Alcotest.fail "server killed by signal");
  check Alcotest.bool "durable work happened before the drain" true
    (!acked > 0);
  check Alcotest.bool "the drain answered or cleanly closed" true
    (!drained || !closed);
  check Alcotest.bool "the socket file was removed on drain" false
    (Sys.file_exists socket)

let test_drain_plain () =
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev)
  @@ fun () -> drain_scenario Service.Plain

let test_drain_mirrored () =
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev)
  @@ fun () -> drain_scenario Service.Mirrored

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "framing roundtrip + oversized prefix" `Quick
            test_framing;
          Alcotest.test_case "handle policy: auth, seq, drain, reads" `Quick
            test_handle_policy;
          Alcotest.test_case "durability tiers: strict / staleness-k" `Quick
            test_tiers;
        ] );
      ( "regions",
        [
          Alcotest.test_case "10k region names are injective" `Quick
            test_region_names_injective;
        ] );
      ( "restart",
        [
          Alcotest.test_case "oseq never re-hands an identity" `Quick
            test_oseq_restart_never_reuses;
          Alcotest.test_case "recovery-complete serving after restart" `Quick
            test_recovery_complete_restart;
        ] );
      ( "drain",
        [
          Alcotest.test_case "SIGTERM drain over a socket (plain)" `Quick
            test_drain_plain;
          Alcotest.test_case "SIGTERM drain over a socket (mirrored)" `Quick
            test_drain_mirrored;
        ] );
    ]
