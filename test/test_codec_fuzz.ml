(* Fuzz/property tests for the decode paths that face possibly-corrupt
   durable bytes. The contract under test: arbitrary garbage must surface
   as a TYPED outcome — [Codec.Decode_error] from the serialization layer,
   a salvage report (never an exception) from [Plog.recover] — because a
   segfault or an untyped exception during recovery would turn recoverable
   media damage into an unrecoverable crash loop. Everything is
   Splitmix-seeded, so any failure replays from its trial number. *)

open Onll_machine
module Codec = Onll_util.Codec
module Sm = Onll_util.Splitmix

let check = Alcotest.check
let rand_bytes rng len = String.init len (fun _ -> Char.chr (Sm.int rng 256))

(* The codec battery: every primitive and combinator, plus the codecs the
   object specifications actually persist through the logs. *)
type packed = P : string * 'a Codec.t -> packed

let codecs =
  [
    P ("unit", Codec.unit);
    P ("bool", Codec.bool);
    P ("int", Codec.int);
    P ("int32", Codec.int32);
    P ("int64", Codec.int64);
    P ("float", Codec.float);
    P ("char", Codec.char);
    P ("string", Codec.string);
    P ("pair", Codec.pair Codec.int Codec.string);
    P ("triple", Codec.triple Codec.bool Codec.int Codec.string);
    P ("list", Codec.list Codec.string);
    P ("array", Codec.array Codec.int);
    P ("option", Codec.option Codec.string);
    P ("counter-update", Onll_specs.Counter.update_codec);
    P ("counter-state", Onll_specs.Counter.state_codec);
    P ("queue-update", Onll_specs.Queue_spec.update_codec);
    P ("queue-state", Onll_specs.Queue_spec.state_codec);
    P ("kv-update", Onll_specs.Kv.update_codec);
    P ("kv-state", Onll_specs.Kv.state_codec);
    P ("stack-update", Onll_specs.Stack_spec.update_codec);
    P ("set-update", Onll_specs.Set_spec.update_codec);
    P ("ledger-update", Onll_specs.Ledger.update_codec);
    P ("ledger-state", Onll_specs.Ledger.state_codec);
  ]

let decode_is_typed name c s =
  match Codec.decode c s with
  | _ -> ()
  | exception Codec.Decode_error _ -> ()
  | exception e ->
      Alcotest.failf "%s: untyped exception %s decoding %d bytes %S" name
        (Printexc.to_string e) (String.length s) s

let test_decode_arbitrary_bytes () =
  let rng = Sm.create 0xC0DEC in
  List.iter
    (fun (P (name, c)) ->
      for _ = 1 to 400 do
        decode_is_typed name c (rand_bytes rng (Sm.int rng 64))
      done)
    codecs

let test_decode_mutated_valid_encodings () =
  (* Harder inputs than pure noise: start from REAL encodings (as a torn or
     rotted log entry would) and truncate, extend or bit-flip them. *)
  let rng = Sm.create 0xBADF00D in
  let mutate s =
    match Sm.int rng 3 with
    | 0 -> String.sub s 0 (Sm.int rng (String.length s + 1)) (* truncate *)
    | 1 -> s ^ rand_bytes rng (1 + Sm.int rng 8) (* trailing garbage *)
    | _ ->
        if s = "" then s
        else
          String.mapi
            (fun i c ->
              if i = Sm.int rng (String.length s) then
                Char.chr (Char.code c lxor (1 lsl Sm.int rng 8))
              else c)
            s
  in
  let exercise : type a. string -> a Codec.t -> a -> unit =
   fun name c v ->
    let enc = Codec.encode c v in
    for _ = 1 to 200 do
      decode_is_typed name c (mutate enc)
    done
  in
  exercise "int" Codec.int 12345678;
  exercise "string" Codec.string "the quick brown fox";
  exercise "pair" (Codec.pair Codec.int Codec.string) (42, "payload");
  exercise "list" (Codec.list Codec.string) [ "a"; "bb"; "ccc" ];
  exercise "array" (Codec.array Codec.int) [| 1; 2; 3; 4 |];
  exercise "option" (Codec.option Codec.string) (Some "present");
  exercise "kv-update" Onll_specs.Kv.update_codec
    (Onll_specs.Kv.Put ("key", "value"));
  exercise "ledger-update" Onll_specs.Ledger.update_codec
    (Onll_specs.Ledger.Deposit ("acct", 100))

let test_roundtrip_still_holds () =
  (* the fuzz must not have been vacuous: honest encodings still decode *)
  let rng = Sm.create 0x5EED in
  for _ = 1 to 200 do
    let v = (Sm.int rng 1000, rand_bytes rng (Sm.int rng 32)) in
    let c = Codec.pair Codec.int Codec.string in
    check
      Alcotest.(pair int string)
      "roundtrip" v
      (Codec.decode c (Codec.encode c v))
  done

(* {1 Plog salvage under arbitrary corruption} *)

(* Property: whatever bytes media damage leaves in the regions — headers
   included, every replica included — [recover] returns a report rather
   than raising, [entries] then succeeds, and a second recovery is a fixed
   point (no new quarantine, repair or truncation). *)
let test_plog_salvage_never_raises () =
  let rng = Sm.create 0xFA175 in
  for trial = 1 to 120 do
    let replicas = 1 + (trial mod 2) in
    let sim = Sim.create ~max_processes:1 () in
    let module M = (val Sim.machine sim) in
    let module P = Onll_plog.Plog.Make (M) in
    let log = P.create ~name:"l" ~capacity:1024 ~replicas () in
    for _ = 1 to Sm.int rng 6 do
      P.append log (rand_bytes rng (1 + Sm.int rng 24))
    done;
    List.iter
      (fun name ->
        let r =
          Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) name)
        in
        let size = Onll_nvm.Memory.Region.size r in
        for _ = 1 to Sm.int rng 24 do
          Onll_nvm.Memory.Region.corrupt r ~off:(Sm.int rng size) ~len:1
            ~f:(fun _ _ -> Char.chr (Sm.int rng 256))
        done)
      (P.region_names log);
    Onll_nvm.Memory.crash (Sim.memory sim)
      ~policy:Onll_nvm.Crash_policy.Drop_all;
    (match P.recover log with
    | _ -> ()
    | exception e ->
        Alcotest.failf "trial %d: recover raised %s" trial
          (Printexc.to_string e));
    let entries1 =
      match P.entries log with
      | e -> e
      | exception e ->
          Alcotest.failf "trial %d: entries raised %s" trial
            (Printexc.to_string e)
    in
    let r2 = P.recover log in
    check Alcotest.(list string)
      (Printf.sprintf "trial %d: recovery is a fixed point" trial)
      entries1 (P.entries log);
    check Alcotest.int
      (Printf.sprintf "trial %d: nothing newly quarantined" trial)
      0 r2.Onll_plog.Plog.quarantined_spans;
    check Alcotest.int
      (Printf.sprintf "trial %d: nothing newly repaired" trial)
      0 r2.Onll_plog.Plog.repaired_entries;
    check Alcotest.int
      (Printf.sprintf "trial %d: nothing newly truncated" trial)
      0 r2.Onll_plog.Plog.torn_tail_bytes;
    (* and the log still accepts appends *)
    P.append log "after-salvage";
    check Alcotest.bool
      (Printf.sprintf "trial %d: appends continue" trial)
      true
      (List.exists (( = ) "after-salvage") (P.entries log))
  done

let test_plog_scrub_never_raises () =
  (* the same property for the ONLINE half: scrub a live corrupted log *)
  let rng = Sm.create 0x5C12B in
  for trial = 1 to 60 do
    let sim = Sim.create ~max_processes:1 () in
    let module M = (val Sim.machine sim) in
    let module P = Onll_plog.Plog.Make (M) in
    let log = P.create ~name:"l" ~capacity:1024 ~replicas:2 () in
    for _ = 1 to 1 + Sm.int rng 5 do
      P.append log (rand_bytes rng (1 + Sm.int rng 24))
    done;
    List.iter
      (fun name ->
        let r =
          Option.get (Onll_nvm.Memory.find_region (Sim.memory sim) name)
        in
        let size = Onll_nvm.Memory.Region.size r in
        for _ = 1 to Sm.int rng 12 do
          Onll_nvm.Memory.Region.corrupt r ~off:(Sm.int rng size) ~len:1
            ~f:(fun _ _ -> Char.chr (Sm.int rng 256))
        done)
      (P.region_names log);
    (match P.scrub log with
    | _ -> ()
    | exception e ->
        Alcotest.failf "trial %d: scrub raised %s" trial
          (Printexc.to_string e));
    (* a second scrub of the (now repaired or quarantined) log is clean *)
    let s2 = P.scrub log in
    check Alcotest.int
      (Printf.sprintf "trial %d: second scrub repairs nothing" trial)
      0 s2.Onll_plog.Plog.scrub_repaired_entries
  done

let () =
  Alcotest.run "codec_fuzz"
    [
      ( "codec",
        [
          Alcotest.test_case "arbitrary bytes -> typed errors only" `Quick
            test_decode_arbitrary_bytes;
          Alcotest.test_case "mutated encodings -> typed errors only" `Quick
            test_decode_mutated_valid_encodings;
          Alcotest.test_case "honest roundtrip unharmed" `Quick
            test_roundtrip_still_holds;
        ] );
      ( "salvage",
        [
          Alcotest.test_case "recover never raises, converges" `Quick
            test_plog_salvage_never_raises;
          Alcotest.test_case "scrub never raises, converges" `Quick
            test_plog_scrub_never_raises;
        ] );
    ]
