(** The observability layer: metrics registry, sinks, exporters, the
    unified [Config]/[Snapshot] construction API and the implementation
    registry. The headline end-to-end check: with one sink installed in
    both the machine and the object, the attributed ["fences.update"]
    counter, the machine's own fence statistics and Theorem 5.1's
    "one persistent fence per update" all agree exactly. *)

open Onll_machine
open Onll_sched
module Cs = Onll_specs.Counter
module Obs = Onll_obs

let check = Alcotest.check

(* {1 Metrics registry} *)

let test_metrics_basics () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "fences.total" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  check Alcotest.int "counter" 5 (Obs.Metrics.count c);
  (* get-or-create resolves the same handle *)
  Obs.Metrics.incr (Obs.Metrics.counter r "fences.total");
  check Alcotest.int "shared handle" 6
    (Obs.Metrics.counter_value r "fences.total");
  let g = Obs.Metrics.gauge r "ops_per_sec" in
  Obs.Metrics.set g 1.5;
  Obs.Metrics.set g 2.5;
  check (Alcotest.float 0.) "gauge is last-write-wins" 2.5
    (Obs.Metrics.value g);
  let h = Obs.Metrics.histogram r "window" in
  List.iter (Obs.Metrics.observe h) [ 1; 3; 2 ];
  let s = Obs.Metrics.summary h in
  check Alcotest.int "hist count" 3 s.Obs.Metrics.hs_count;
  check Alcotest.int "hist sum" 6 s.Obs.Metrics.hs_sum;
  check Alcotest.int "hist min" 1 s.Obs.Metrics.hs_min;
  check Alcotest.int "hist max" 3 s.Obs.Metrics.hs_max;
  check (Alcotest.float 1e-9) "hist mean" 2. s.Obs.Metrics.hs_mean;
  check Alcotest.int "dump size" 3 (List.length (Obs.Metrics.dump r))

let test_metrics_kind_mismatch () =
  let r = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter r "x");
  Alcotest.check_raises "same name, different kind"
    (Obs.Metrics.Kind_mismatch "x") (fun () -> ignore (Obs.Metrics.gauge r "x"))

(* {1 Sinks} *)

let test_null_sink_inactive () =
  check Alcotest.bool "null inactive" false (Obs.Sink.active Obs.Sink.null);
  Obs.Sink.emit Obs.Sink.null ~proc:0 Obs.Event.Crash;
  check Alcotest.int "null clock never advances" 0
    (Obs.Sink.now Obs.Sink.null);
  (* Its registry exists (pre-resolved handles) but is never written. *)
  check Alcotest.bool "null registry never written" true
    (List.for_all
       (fun (_, v) -> v = Obs.Metrics.Int 0)
       (Obs.Metrics.dump (Obs.Sink.registry Obs.Sink.null)))

let test_sink_folds_and_stamps () =
  let sink, events = Obs.Sink.recording () in
  Obs.Sink.emit sink ~proc:0 (Obs.Event.Fence { persistent = true });
  Obs.Sink.emit sink ~proc:1 (Obs.Event.Fence { persistent = false });
  Obs.Sink.emit sink ~proc:1 (Obs.Event.Help { helped = 2 });
  Obs.Sink.emit sink ~proc:(-1) Obs.Event.Crash;
  let r = Obs.Sink.registry sink in
  check Alcotest.int "fences.total" 2 (Obs.Metrics.counter_value r "fences.total");
  check Alcotest.int "fences.persistent" 1
    (Obs.Metrics.counter_value r "fences.persistent");
  check Alcotest.int "help.ops" 2 (Obs.Metrics.counter_value r "help.ops");
  check Alcotest.int "crashes" 1 (Obs.Metrics.counter_value r "crashes");
  let evs = events () in
  check Alcotest.int "all recorded" 4 (List.length evs);
  check
    Alcotest.(list int)
    "logical clock is 0,1,2,..." [ 0; 1; 2; 3 ]
    (List.map (fun e -> e.Obs.Event.time) evs);
  check Alcotest.int "clock" 4 (Obs.Sink.now sink)

(* {1 Exporters} *)

let test_export_json_and_csv () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter r "fences.update") 7;
  Obs.Metrics.observe (Obs.Metrics.histogram r "fuzzy.window") 2;
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let json = Obs.Export.json ~meta:[ ("experiment", "t") ] r in
  check Alcotest.bool "json meta" true
    (contains json {|"experiment": "t"|});
  check Alcotest.bool "json counter" true
    (contains json {|"fences.update": 7|});
  check Alcotest.bool "json histogram" true (contains json {|"count": 1|});
  let csv = Obs.Export.csv ~meta:[ ("experiment", "t") ] r in
  check Alcotest.bool "csv meta" true (contains csv "# experiment=t");
  check Alcotest.bool "csv counter" true (contains csv "fences.update,7");
  check Alcotest.bool "csv hist row" true (contains csv "fuzzy.window.max,2")

let test_read_scalars_roundtrips_json () =
  (* The bench gate trusts read_scalars to reload exactly the scalars the
     JSON exporter wrote (histograms skipped), so the pair must roundtrip
     — including gauges that only survive %.17g printing. *)
  let r = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter r "fences.update") 300;
  Obs.Metrics.set (Obs.Metrics.gauge r "mops.kv.s4") 1.2345678901234567;
  Obs.Metrics.set (Obs.Metrics.gauge r "speedup") 2.;
  Obs.Metrics.observe (Obs.Metrics.histogram r "fuzzy.window") 3;
  let path = Filename.temp_file "onll-obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Export.write_file ~path
        (Obs.Export.json ~meta:[ ("experiment", "t") ] r);
      let scalars = Obs.Export.read_scalars ~path in
      check
        Alcotest.(list (pair string (float 0.)))
        "scalars roundtrip, histogram skipped, file order kept"
        [
          ("fences.update", 300.);
          ("mops.kv.s4", 1.2345678901234567);
          ("speedup", 2.);
        ]
        scalars)

(* {1 Config / Snapshot — the unified construction API} *)

let test_config_make_is_deterministic () =
  (* Two objects from the same Config on one machine behave identically
     and never share durable state (instance-qualified region names). *)
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let a = C.make { Onll_core.Onll.Config.default with log_capacity = 4096 } in
  let b = C.make { Onll_core.Onll.Config.default with log_capacity = 4096 } in
  for _ = 1 to 10 do
    ignore (C.update a Cs.Increment);
    ignore (C.update b Cs.Increment)
  done;
  check Alcotest.int "same value" (C.read a Cs.Get) (C.read b Cs.Get);
  let names snap =
    List.map
      (fun l -> l.Onll_core.Onll.Snapshot.log_name)
      snap.Onll_core.Onll.Snapshot.logs
  in
  check Alcotest.bool "distinct durable regions" true
    (List.for_all
       (fun n -> not (List.mem n (names (C.snapshot b))))
       (names (C.snapshot a)));
  check Alcotest.bool "default sink is null" false
    (Obs.Sink.active (C.sink b))

let test_snapshot_is_consistent () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with log_capacity = 8192 } in
  let procs =
    Array.init 2 (fun _ ->
        fun _ ->
          for _ = 1 to 10 do
            ignore (C.update obj Cs.Increment)
          done)
  in
  ignore (Sim.run sim (Sched.Strategy.random ~seed:5) procs);
  let snap = C.snapshot obj in
  let open Onll_core.Onll.Snapshot in
  check Alcotest.int "latest_available_idx is the durable history" 20
    snap.latest_available_idx;
  check Alcotest.bool "fuzzy window within Prop 5.2 bound" true
    (snap.max_fuzzy_window >= 1 && snap.max_fuzzy_window <= 2);
  check Alcotest.int "one log per process" 2 (List.length snap.logs);
  List.iter
    (fun l ->
      check Alcotest.int "entry count matches helping profile"
        (List.length l.ops_per_entry) l.entry_count;
      check Alcotest.bool "live fits used" true (l.live_bytes <= l.used_bytes))
    snap.logs;
  (* Every persisted envelope is accounted to some entry. *)
  let envs =
    List.fold_left
      (fun a l -> a + List.fold_left ( + ) 0 l.ops_per_entry)
      0 snap.logs
  in
  check Alcotest.bool "all 20 updates persisted" true (envs >= 20)

(* {1 End-to-end attribution (Theorem 5.1 through the sink)} *)

let test_fence_attribution_matches_machine () =
  let procs_n = 4 and updates = 12 in
  let sink = Obs.Sink.make () in
  let sim = Sim.create ~sink ~max_processes:procs_n () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with sink } in
  let procs =
    Array.init procs_n (fun _ ->
        fun _ ->
          for _ = 1 to updates do
            ignore (C.update obj Cs.Increment);
            ignore (C.read obj Cs.Get)
          done)
  in
  let outcome = Sim.run sim (Sched.Strategy.random ~seed:9) procs in
  check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
  let r = Obs.Sink.registry sink in
  let machine_fences =
    (Sim.stats sim).Onll_nvm.Memory.Stats.persistent_fences
  in
  (* One persistent fence per update — and the attributed counter, the
     machine totals and the event-folded counter all see the same thing. *)
  check Alcotest.int "fences.update = #updates" (procs_n * updates)
    (Obs.Metrics.counter_value r "fences.update");
  check Alcotest.int "machine agrees" machine_fences
    (Obs.Metrics.counter_value r "fences.update");
  check Alcotest.int "event fold agrees" machine_fences
    (Obs.Metrics.counter_value r "fences.persistent");
  check Alcotest.int "reads are free" 0
    (Obs.Metrics.counter_value r "fences.read");
  check Alcotest.int "ops.update" (procs_n * updates)
    (Obs.Metrics.counter_value r "ops.update");
  check Alcotest.int "ops.read" (procs_n * updates)
    (Obs.Metrics.counter_value r "ops.read");
  (* Prop 5.2: every observed fuzzy window is within MAX-PROCESSES. *)
  let h =
    Obs.Metrics.(summary (histogram r "fuzzy.window"))
  in
  check Alcotest.int "every update observed a window" (procs_n * updates)
    h.Obs.Metrics.hs_count;
  check Alcotest.bool "window bounded by MAX-PROCESSES" true
    (h.Obs.Metrics.hs_max <= procs_n)

let test_event_order_across_crash_and_recovery () =
  let sink, events = Obs.Sink.recording () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with sink } in
  for _ = 1 to 5 do
    ignore (C.update obj Cs.Increment)
  done;
  Onll_nvm.Memory.crash (Sim.memory sim)
    ~policy:Onll_nvm.Crash_policy.Persist_all;
  C.recover obj;
  check Alcotest.int "value recovered" 5 (C.read obj Cs.Get);
  let evs = events () in
  (* Timestamps are unique and monotone. *)
  let times = List.map (fun e -> e.Obs.Event.time) evs in
  check Alcotest.bool "monotone clock" true
    (List.for_all2 ( = ) times (List.init (List.length times) Fun.id));
  let pos kind =
    let rec go i = function
      | [] -> Alcotest.failf "no %s event" kind
      | e :: tl ->
          if Obs.Event.kind_label e.Obs.Event.kind = kind then i
          else go (i + 1) tl
    in
    go 0 evs
  in
  (* Machine-level and object-level events interleave in one stream: the
     crash (emitted by the memory) precedes the recovery (emitted by the
     construction), which precedes nothing else of its kind. *)
  check Alcotest.bool "crash before recovery" true
    (pos "crash" < pos "recovery");
  check Alcotest.bool "some pfence before the crash" true
    (pos "pfence" < pos "crash");
  let r = Obs.Sink.registry sink in
  check Alcotest.int "one crash" 1 (Obs.Metrics.counter_value r "crashes");
  check Alcotest.int "one recovery" 1
    (Obs.Metrics.counter_value r "recoveries");
  check Alcotest.int "recovery replayed the history" 5
    (Obs.Metrics.counter_value r "recovery.ops")

(* {1 The implementation registry} *)

let test_registry_builds_every_name () =
  let module R = Onll_baselines.Registry.Make (Cs) in
  List.iter
    (fun name ->
      match
        R.build ~max_processes:2
          ~gen_update:(fun () -> Cs.Increment)
          ~gen_read:(fun () -> Cs.Get)
          name
      with
      | None -> Alcotest.failf "registry cannot build %s" name
      | Some h ->
          let open Onll_baselines.Registry in
          let outcome =
            Sim.run h.sim
              (Sched.Strategy.random ~seed:3)
              (Array.init 2 (fun _ ->
                   fun _ ->
                    for _ = 1 to 4 do
                      h.update ();
                      h.read ()
                    done))
          in
          check Alcotest.bool
            (name ^ " completes")
            true
            (outcome = Sched.World.Completed))
    Onll_baselines.Registry.names;
  check Alcotest.bool "alias accepted" true
    (R.build ~max_processes:1
       ~gen_update:(fun () -> Cs.Increment)
       ~gen_read:(fun () -> Cs.Get)
       "wait-free"
    <> None);
  check Alcotest.bool "unknown rejected" true
    (R.build ~max_processes:1
       ~gen_update:(fun () -> Cs.Increment)
       ~gen_read:(fun () -> Cs.Get)
       "mystery"
    = None)

let test_registry_attribution_per_impl () =
  let module R = Onll_baselines.Registry.Make (Cs) in
  (* (impl, expected fences.update for 1 proc x 6 sequential updates) *)
  let expect = [ ("onll", 6); ("shadow", 12); ("volatile", 0) ] in
  List.iter
    (fun (name, fences) ->
      let sink = Obs.Sink.make () in
      match
        R.build ~sink ~max_processes:1
          ~gen_update:(fun () -> Cs.Increment)
          ~gen_read:(fun () -> Cs.Get)
          name
      with
      | None -> Alcotest.failf "build %s" name
      | Some h ->
          let open Onll_baselines.Registry in
          let outcome =
            Sim.run h.sim
              (Sched.Strategy.random ~seed:7)
              [|
                (fun _ ->
                  for _ = 1 to 6 do
                    h.update ()
                  done);
              |]
          in
          check Alcotest.bool "completed" true
            (outcome = Sched.World.Completed);
          check Alcotest.int
            (name ^ " fences.update")
            fences
            (Obs.Metrics.counter_value
               (Obs.Sink.registry h.sink)
               "fences.update"))
    expect

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters, gauges, histograms" `Quick
            test_metrics_basics;
          Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
        ] );
      ( "sink",
        [
          Alcotest.test_case "null sink is inert" `Quick
            test_null_sink_inactive;
          Alcotest.test_case "folds events, stamps clock" `Quick
            test_sink_folds_and_stamps;
        ] );
      ( "export",
        [
          Alcotest.test_case "json and csv" `Quick test_export_json_and_csv;
          Alcotest.test_case "read_scalars roundtrips json" `Quick
            test_read_scalars_roundtrips_json;
        ] );
      ( "api",
        [
          Alcotest.test_case "Config.make agrees with create" `Quick
            test_config_make_is_deterministic;
          Alcotest.test_case "Snapshot is internally consistent"
            `Quick test_snapshot_is_consistent;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "fence attribution = machine = Thm 5.1" `Quick
            test_fence_attribution_matches_machine;
          Alcotest.test_case "event order across crash/recovery" `Quick
            test_event_order_across_crash_and_recovery;
        ] );
      ( "registry",
        [
          Alcotest.test_case "builds every name" `Quick
            test_registry_builds_every_name;
          Alcotest.test_case "per-impl attribution" `Quick
            test_registry_attribution_per_impl;
        ] );
    ]
