(** The wait-free variant (§8): ONLL over the Kogan–Petrank-style trace.

    Everything the main suite checks of the lock-free construction must
    hold here too — plus the property that motivates the variant: a process
    parked mid-insert (right after announcing) has its operation completed,
    persisted and made durable by other processes' helping, without taking
    another step itself. *)

open Onll_machine
open Onll_sched
module Cs = Onll_specs.Counter

let check = Alcotest.check

(* {1 Functional equivalence with the lock-free construction} *)

let test_sequential_counter () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  check Alcotest.int "initial" 0 (C.read obj Cs.Get);
  check Alcotest.int "incr" 1 (C.update obj Cs.Increment);
  check Alcotest.int "add" 6 (C.update obj (Cs.Add 5));
  check Alcotest.int "read" 6 (C.read obj Cs.Get)

let test_sequential_kv () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make_wait_free (M) (Onll_specs.Kv) in
  let obj = C.make Onll_core.Onll.Config.default in
  let open Onll_specs.Kv in
  check Alcotest.bool "put" true (C.update obj (Put ("k", "v")) = Previous None);
  check Alcotest.bool "get" true (C.read obj (Get "k") = Found (Some "v"))

let test_fences_one_per_update () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  for i = 1 to 15 do
    ignore (C.update obj Cs.Increment);
    check Alcotest.int "1 fence per update" i (M.persistent_fences ())
  done;
  for _ = 1 to 20 do
    ignore (C.read obj Cs.Get)
  done;
  check Alcotest.int "0 per read" 15 (M.persistent_fences ())

let test_concurrent_permutation () =
  for seed = 1 to 10 do
    let sim = Sim.create ~max_processes:4 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
    let obj = C.make Onll_core.Onll.Config.default in
    let results = ref [] in
    let procs =
      Array.init 4 (fun _ ->
          fun _ ->
            for _ = 1 to 5 do
              let v = C.update obj Cs.Increment in
              results := v :: !results
            done)
    in
    let outcome = Sim.run sim (Sched.Strategy.random ~seed) procs in
    check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
    check
      Alcotest.(list int)
      "permutation of 1..20"
      (List.init 20 (fun i -> i + 1))
      (List.sort compare !results);
    check Alcotest.int "final" 20 (C.read obj Cs.Get)
  done

let test_local_views_equivalent () =
  let run ~local_views =
    let sim = Sim.create ~max_processes:1 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with local_views } in
    List.concat_map
      (fun _ -> [ C.update obj Cs.Increment; C.read obj Cs.Get ])
      (List.init 10 Fun.id)
  in
  check
    Alcotest.(list int)
    "views do not change results"
    (run ~local_views:false)
    (run ~local_views:true)

(* {1 Crash and recovery} *)

let test_crash_recovery () =
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let procs =
    Array.init 3 (fun _ ->
        fun _ ->
          for _ = 1 to 5 do
            ignore (C.update obj Cs.Increment)
          done)
  in
  ignore (Sim.run sim (Sched.Strategy.random ~seed:3) procs);
  check Alcotest.int "15 before crash" 15 (C.read obj Cs.Get);
  ignore
    (Sim.run sim
       (Sched.Strategy.random_with_crash ~seed:4 ~crash_at_step:60)
       procs);
  C.recover obj;
  let v = C.read obj Cs.Get in
  check Alcotest.bool "prefix recovered" true (v >= 15 && v <= 30);
  check Alcotest.int "continues" (v + 1) (C.update obj Cs.Increment)

let test_checkpoint_works_prune_unsupported () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  for _ = 1 to 10 do
    ignore (C.update obj Cs.Increment)
  done;
  (* log compaction via checkpoints still works *)
  check Alcotest.int "checkpoint" 10 (C.checkpoint obj);
  Onll_nvm.Memory.crash (Sim.memory sim) ~policy:Onll_nvm.Crash_policy.Drop_all;
  C.recover obj;
  check Alcotest.int "recovered from checkpoint" 10 (C.read obj Cs.Get);
  (* trace pruning is documented as unsupported on this variant *)
  check Alcotest.bool "prune raises Unsupported" true
    (match C.prune obj ~below:5 with
    | exception Onll_core.Trace_intf.Unsupported _ -> true
    | () -> false)

(* {1 The wait-freedom property itself} *)

(* Park p0 immediately after it announces its insertion (its very first
   shared write), before it attempts a single CAS. p1 then runs to
   completion. With helping, p1 must (a) link p0's operation into the trace
   before its own, (b) persist it in its own log entry, so that (c) a crash
   while p0 is still parked loses neither operation. *)

let test_helper_completes_parked_insert () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let p1_value = ref 0 in
  let procs =
    [|
      (fun _ -> ignore (C.update_detectable obj ~seq:0 Cs.Increment));
      (fun _ -> p1_value := C.update_detectable obj ~seq:0 Cs.Increment);
    |]
  in
  let script =
    Sched.Strategy.script
      ~fallback:(fun _ -> Sched.Strategy.Stop "parked")
      [
        (* p0: run to its announcement (the first shared store), do it,
           then park forever *)
        Sched.Strategy.Run_until (0, fun l -> l = Sched.Prim "tvar.set");
        Sched.Strategy.Run_steps (0, 1);
        Sched.Strategy.Run_to_completion 1;
      ]
  in
  let outcome = Sim.run sim script procs in
  check Alcotest.bool "stopped with p0 parked" true
    (outcome = Sched.World.Stopped "parked");
  (* p1 helped: p0's op is in the trace, ordered first *)
  let nodes = C.trace_nodes obj in
  check Alcotest.int "3 nodes (sentinel + both ops)" 3 (List.length nodes);
  (match nodes with
  | [ (_, _, None); (1, avail0, Some _); (2, avail1, Some _) ] ->
      check Alcotest.bool "p0's helped op not yet available" false avail0;
      check Alcotest.bool "p1's op available" true avail1
  | _ -> Alcotest.fail "unexpected trace shape");
  (* p1 observed p0's op: its increment returned 2 *)
  check Alcotest.int "p1 returned 2 (p0's op ordered first)" 2 !p1_value;
  (* p1's single log entry persisted both operations *)
  check Alcotest.(list int) "p1's entry has 2 ops" [ 2 ]
    ((List.nth (C.snapshot obj).Onll_core.Onll.Snapshot.logs 1).Onll_core.Onll.Snapshot.ops_per_entry)

let test_parked_insert_durable_across_crash () =
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let procs =
    [|
      (fun _ -> ignore (C.update_detectable obj ~seq:0 Cs.Increment));
      (fun _ -> ignore (C.update_detectable obj ~seq:0 Cs.Increment));
    |]
  in
  let script =
    Sched.Strategy.script
      [
        Sched.Strategy.Run_until (0, fun l -> l = Sched.Prim "tvar.set");
        Sched.Strategy.Run_steps (0, 1);
        Sched.Strategy.Run_to_completion 1;
        Sched.Strategy.Crash_here;
      ]
  in
  let outcome = Sim.run sim script procs in
  check Alcotest.bool "crashed" true (outcome = Sched.World.Crashed);
  C.recover obj;
  (* p0 never executed anything past its announcement, yet its operation
     was made durable by p1's helping. *)
  check Alcotest.int "both ops recovered" 2 (C.read obj Cs.Get);
  check Alcotest.bool "p0's op linearized" true
    (C.was_linearized obj { Onll_core.Onll.id_proc = 0; id_seq = 0 });
  check Alcotest.bool "p1's op linearized" true
    (C.was_linearized obj { Onll_core.Onll.id_proc = 1; id_seq = 0 })

let test_parked_announcer_resumes_cleanly () =
  (* Same scenario, but instead of crashing, let p0 resume: it must finish
     its own operation (already linked by the helper) exactly once. *)
  let sim = Sim.create ~max_processes:2 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let p0_value = ref 0 and p1_value = ref 0 in
  let procs =
    [|
      (fun _ -> p0_value := C.update_detectable obj ~seq:0 Cs.Increment);
      (fun _ -> p1_value := C.update_detectable obj ~seq:0 Cs.Increment);
    |]
  in
  let script =
    Sched.Strategy.script
      [
        Sched.Strategy.Run_until (0, fun l -> l = Sched.Prim "tvar.set");
        Sched.Strategy.Run_steps (0, 1);
        Sched.Strategy.Run_to_completion 1;
        Sched.Strategy.Run_to_completion 0;
      ]
  in
  let outcome = Sim.run sim script procs in
  check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
  check Alcotest.int "p0 returned its own position" 1 !p0_value;
  check Alcotest.int "p1 returned 2" 2 !p1_value;
  check Alcotest.int "exactly two increments applied" 2 (C.read obj Cs.Get)

let test_lower_bound_holds_for_wf () =
  let module Lb = Onll_lowerbound.Lowerbound in
  let setup n =
    let sim = Sim.create ~max_processes:n () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
    let obj = C.make Onll_core.Onll.Config.default in
    ( sim,
      Array.init n (fun _ -> fun _ -> ignore (C.update obj Cs.Increment)) )
  in
  let sim, procs = setup 4 in
  let r = Lb.solo_chain sim ~procs in
  check Alcotest.(array int) "solo: one fence each" [| 1; 1; 1; 1 |]
    r.Lb.per_proc_fences;
  let sim, procs = setup 4 in
  let r = Lb.fence_chain sim ~procs in
  check Alcotest.(array int) "fence chain: one fence each" [| 1; 1; 1; 1 |]
    r.Lb.per_proc_fences

(* {1 Crash fuzz on the wait-free construction} *)

let test_wf_crash_fuzz () =
  let module F = Test_support.Fuzz.Make (Onll_specs.Counter) in
  for seed = 1 to 30 do
    let plan =
      {
        Test_support.Fuzz.default_plan with
        seed;
        wait_free = true;
        crash_at = Some (10 + (seed * 9 mod 120));
        policy =
          (if seed mod 2 = 0 then Onll_nvm.Crash_policy.Persist_all
           else Onll_nvm.Crash_policy.Drop_all);
      }
    in
    let r =
      F.run ~plan ~gen_update:Test_support.Gen.Counter.update
        ~gen_read:Test_support.Gen.Counter.read ()
    in
    List.iter
      (fun f -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed f))
      r.Test_support.Fuzz.failures;
    if not r.Test_support.Fuzz.verdict_ok then
      Alcotest.fail (Printf.sprintf "seed %d: checker violation" seed)
  done

let test_wf_fuzzy_bound () =
  let worst = ref 0 in
  for seed = 1 to 15 do
    let sim = Sim.create ~max_processes:3 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make_wait_free (M) (Cs) in
    let obj = C.make Onll_core.Onll.Config.default in
    let procs =
      Array.init 3 (fun _ ->
          fun _ ->
            for _ = 1 to 5 do
              ignore (C.update obj Cs.Increment)
            done)
    in
    ignore (Sim.run sim (Sched.Strategy.random ~seed) procs);
    worst := max !worst ((C.snapshot obj).Onll_core.Onll.Snapshot.max_fuzzy_window);
    check Alcotest.int "all ops applied" 15 (C.read obj Cs.Get)
  done;
  check Alcotest.bool "Prop 5.2 bound" true (!worst <= 3)

let () =
  Alcotest.run "wf"
    [
      ( "equivalence",
        [
          Alcotest.test_case "sequential counter" `Quick test_sequential_counter;
          Alcotest.test_case "sequential kv" `Quick test_sequential_kv;
          Alcotest.test_case "fence counts" `Quick test_fences_one_per_update;
          Alcotest.test_case "concurrent permutation" `Quick
            test_concurrent_permutation;
          Alcotest.test_case "local views" `Quick test_local_views_equivalent;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
          Alcotest.test_case "checkpoint / prune" `Quick
            test_checkpoint_works_prune_unsupported;
        ] );
      ( "wait-freedom",
        [
          Alcotest.test_case "helper completes parked insert" `Quick
            test_helper_completes_parked_insert;
          Alcotest.test_case "parked insert durable" `Quick
            test_parked_insert_durable_across_crash;
          Alcotest.test_case "announcer resumes cleanly" `Quick
            test_parked_announcer_resumes_cleanly;
          Alcotest.test_case "lower bound holds" `Quick
            test_lower_bound_holds_for_wf;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "crash fuzz" `Quick test_wf_crash_fuzz;
          Alcotest.test_case "fuzzy bound" `Quick test_wf_fuzzy_bound;
        ] );
    ]
