(** Conformance suite for {!Onll_core.Trace_intf.S}: the same behavioural
    contract checked against both implementations — the paper's lock-free
    backward-linked trace and the Kogan–Petrank-style wait-free trace. Any
    future trace implementation should pass this suite before being plugged
    into [Onll.Make_generic]. *)

open Onll_machine
open Onll_sched

let check = Alcotest.check

module type FACTORY = sig
  val name : string

  module Make (M : Machine_sig.S) : Onll_core.Trace_intf.S
end

module Suite (F : FACTORY) = struct
  let test_base_and_indices () =
    let sim = Sim.create ~max_processes:4 () in
    let module M = (val Sim.machine sim) in
    let module T = F.Make (M) in
    let t = T.create ~base_idx:7 ~base_state:"base" () in
    check Alcotest.bool "base" true (T.base_of t = (7, "base"));
    let n1 = T.insert t "a" in
    let n2 = T.insert t "b" in
    check Alcotest.int "dense from base" 8 (T.idx n1);
    check Alcotest.int "dense" 9 (T.idx n2)

  let test_availability_lifecycle () =
    let sim = Sim.create ~max_processes:4 () in
    let module M = (val Sim.machine sim) in
    let module T = F.Make (M) in
    let t = T.create ~base_idx:0 ~base_state:() () in
    let n = T.insert t "x" in
    check Alcotest.bool "fresh unavailable" false (T.is_available n);
    T.set_available n;
    check Alcotest.bool "available after set" true (T.is_available n)

  let test_latest_available_out_of_order () =
    let sim = Sim.create ~max_processes:4 () in
    let module M = (val Sim.machine sim) in
    let module T = F.Make (M) in
    let t = T.create ~base_idx:0 ~base_state:() () in
    let n1 = T.insert t "a" in
    let n3top =
      let _ = T.insert t "b" in
      T.insert t "c"
    in
    check Alcotest.int "sentinel rules" 0 (T.idx (T.latest_available t));
    T.set_available n1;
    check Alcotest.int "n1" 1 (T.idx (T.latest_available t));
    (* flags can be set out of order *)
    T.set_available n3top;
    check Alcotest.int "n3 wins" 3 (T.idx (T.latest_available t))

  let test_fuzzy_contiguous_newest_first () =
    let sim = Sim.create ~max_processes:4 () in
    let module M = (val Sim.machine sim) in
    let module T = F.Make (M) in
    let t = T.create ~base_idx:0 ~base_state:() () in
    let n1 = T.insert t "a" in
    let _ = T.insert t "b" in
    let n3 = T.insert t "c" in
    check Alcotest.(list string) "full window" [ "c"; "b"; "a" ]
      (T.fuzzy_envs t n3);
    T.set_available n1;
    check Alcotest.(list string) "window shrinks" [ "c"; "b" ]
      (T.fuzzy_envs t n3)

  let test_fuzzy_shielded_still_covers_node () =
    (* Figure 2 continuity: an available node above the target shields
       nothing the persist step needs beyond the target itself. Whatever
       each implementation returns, it must be non-empty, contiguous,
       newest-first, and headed by the target's envelope. *)
    let sim = Sim.create ~max_processes:4 () in
    let module M = (val Sim.machine sim) in
    let module T = F.Make (M) in
    let t = T.create ~base_idx:0 ~base_state:() () in
    let n1 = T.insert t "a" in
    let n2 = T.insert t "b" in
    T.set_available n2;
    let w = T.fuzzy_envs t n1 in
    check Alcotest.bool "non-empty" true (w <> []);
    check Alcotest.string "headed by the target" "a" (List.hd w)

  let test_delta_replay () =
    let sim = Sim.create ~max_processes:4 () in
    let module M = (val Sim.machine sim) in
    let module T = F.Make (M) in
    let t = T.create ~base_idx:0 ~base_state:"S" () in
    let _ = T.insert t "a" in
    let _ = T.insert t "b" in
    let n3 = T.insert t "c" in
    let base, delta = T.delta_from t n3 in
    check Alcotest.string "base" "S" base;
    check
      Alcotest.(list (pair int string))
      "ascending delta"
      [ (1, "a"); (2, "b"); (3, "c") ]
      delta

  let test_delta_with_floor () =
    let sim = Sim.create ~max_processes:4 () in
    let module M = (val Sim.machine sim) in
    let module T = F.Make (M) in
    let t = T.create ~base_idx:0 ~base_state:"S" () in
    let n1 = T.insert t "a" in
    T.set_available n1;  (* floors must be available nodes *)
    let _ = T.insert t "b" in
    let n3 = T.insert t "c" in
    let base, delta = T.delta_from ~floor:(n1, "cached") t n3 in
    check Alcotest.string "floor state" "cached" base;
    check
      Alcotest.(list (pair int string))
      "only newer" [ (2, "b"); (3, "c") ] delta;
    (* an unusable floor (newer than the target) is ignored *)
    let n4 = T.insert t "d" in
    T.set_available n4;
    let base, delta = T.delta_from ~floor:(n4, "newer") t n3 in
    check Alcotest.string "fallback to base" "S" base;
    check Alcotest.int "full delta" 3 (List.length delta)

  let test_to_list () =
    let sim = Sim.create ~max_processes:4 () in
    let module M = (val Sim.machine sim) in
    let module T = F.Make (M) in
    let t = T.create ~base_idx:0 ~base_state:() () in
    let n1 = T.insert t "a" in
    let _ = T.insert t "b" in
    T.set_available n1;
    check
      Alcotest.(list (triple int bool (option string)))
      "oldest first"
      [ (0, true, None); (1, true, Some "a"); (2, false, Some "b") ]
      (T.to_list t)

  let test_concurrent_inserts () =
    for seed = 1 to 8 do
      let sim = Sim.create ~max_processes:3 () in
      let module M = (val Sim.machine sim) in
      let module T = F.Make (M) in
      let t = T.create ~base_idx:0 ~base_state:() () in
      let procs =
        Array.init 3 (fun p ->
            fun _ ->
              for k = 0 to 3 do
                let n = T.insert t (Printf.sprintf "p%d.%d" p k) in
                T.set_available n
              done)
      in
      let outcome = Sim.run sim (Sched.Strategy.random ~seed) procs in
      check Alcotest.bool "completed" true (outcome = Sched.World.Completed);
      let nodes = T.to_list t in
      check Alcotest.int "12 ops + sentinel" 13 (List.length nodes);
      List.iteri
        (fun i (idx, _, _) -> check Alcotest.int "dense" i idx)
        nodes;
      let envs =
        List.filter_map (fun (_, _, e) -> e) nodes |> List.sort compare
      in
      check Alcotest.int "all distinct ops present" 12
        (List.length (List.sort_uniq compare envs))
    done

  let tests =
    [
      Alcotest.test_case (F.name ^ ": base and indices") `Quick
        test_base_and_indices;
      Alcotest.test_case (F.name ^ ": availability") `Quick
        test_availability_lifecycle;
      Alcotest.test_case (F.name ^ ": latest available") `Quick
        test_latest_available_out_of_order;
      Alcotest.test_case (F.name ^ ": fuzzy window") `Quick
        test_fuzzy_contiguous_newest_first;
      Alcotest.test_case (F.name ^ ": fuzzy shielded") `Quick
        test_fuzzy_shielded_still_covers_node;
      Alcotest.test_case (F.name ^ ": delta replay") `Quick test_delta_replay;
      Alcotest.test_case (F.name ^ ": delta floor") `Quick
        test_delta_with_floor;
      Alcotest.test_case (F.name ^ ": to_list") `Quick test_to_list;
      Alcotest.test_case (F.name ^ ": concurrent inserts") `Quick
        test_concurrent_inserts;
    ]
end

module Backward_suite = Suite (struct
  let name = "backward"

  module Make = Onll_core.Trace_adapter.Backward
end)

module Wf_suite = Suite (struct
  let name = "wait-free"

  module Make = Onll_core.Wf_trace.Make
end)

(* {1 Model-based properties}

   A trace is, logically, just the list of inserted envelopes plus a set of
   available indices. Replay a random command sequence against both the
   implementation and that trivial model and compare every observation. *)

module Props (F : FACTORY) = struct
  let qcheck = QCheck_alcotest.to_alcotest

  let prop_matches_model =
    qcheck
      (QCheck.Test.make
         ~name:(F.name ^ " trace matches the list model")
         ~count:120 QCheck.small_nat
         (fun seed ->
           let rng = Onll_util.Splitmix.create seed in
           let sim = Sim.create ~max_processes:1 () in
           let module M = (val Sim.machine sim) in
           let module T = F.Make (M) in
           let t = T.create ~base_idx:0 ~base_state:"B" () in
           (* model: envelopes by index; available set *)
           let envs = ref [] in  (* newest first: (idx, env) *)
           let avail = ref [ 0 ] in
           let nodes = Hashtbl.create 16 in
           let ok = ref true in
           let expect name c = if not c then (ok := false; ignore name) in
           for step = 1 to 25 do
             match Onll_util.Splitmix.int rng 4 with
             | 0 | 1 ->
                 (* insert *)
                 let e = Printf.sprintf "e%d" step in
                 let n = T.insert t e in
                 let idx = List.length !envs + 1 in
                 expect "idx" (T.idx n = idx);
                 envs := (idx, e) :: !envs;
                 Hashtbl.replace nodes idx n
             | 2 ->
                 (* make a random unavailable node available *)
                 let unavailable =
                   Hashtbl.fold
                     (fun i n acc ->
                       if T.is_available n then acc else (i, n) :: acc)
                     nodes []
                 in
                 if unavailable <> [] then begin
                   let _, n = Onll_util.Splitmix.pick rng unavailable in
                   T.set_available n;
                   avail := T.idx n :: !avail
                 end
             | _ ->
                 (* observations *)
                 let latest = T.latest_available t in
                 let model_latest =
                   List.fold_left max 0 !avail
                 in
                 expect "latest available" (T.idx latest = model_latest);
                 let base, delta =
                   match Hashtbl.fold (fun i n acc ->
                             match acc with
                             | Some (j, _) when j >= i -> acc
                             | _ -> Some (i, n)) nodes None
                   with
                   | Some (_, newest) -> T.delta_from t newest
                   | None -> T.delta_from t latest
                 in
                 expect "base" (base = "B");
                 let model_delta =
                   List.rev !envs
                 in
                 (* delta from the newest node covers everything *)
                 if Hashtbl.length nodes > 0 then
                   expect "delta replay" (delta = model_delta)
           done;
           (* final full check *)
           let listing = T.to_list t in
           let model_listing =
             (0, true, None)
             :: List.rev_map
                  (fun (i, e) -> (i, List.mem i !avail, Some e))
                  !envs
           in
           expect "to_list" (listing = model_listing);
           !ok))

  let tests = [ prop_matches_model ]
end

module Backward_props = Props (struct
  let name = "backward"

  module Make = Onll_core.Trace_adapter.Backward
end)

module Wf_props = Props (struct
  let name = "wait-free"

  module Make = Onll_core.Wf_trace.Make
end)

let () =
  Alcotest.run "trace-conformance"
    [
      ("backward (Listing 2)", Backward_suite.tests);
      ("wait-free (Kogan-Petrank)", Wf_suite.tests);
      ("model-based properties", Backward_props.tests @ Wf_props.tests);
    ]
