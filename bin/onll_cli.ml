(* The onll command-line tool: interactive entry points to the simulator.

   onll figure1                        replay the paper's Figure 1
   onll lowerbound -n 4 -i onll        run the Theorem 6.3 adversary
   onll fuzz -s counter --seeds 50     crash-fuzz campaign with the checker
   onll chaos -s kv --seeds 30         media-fault chaos campaign (E12)
   onll chaos -s kv --mirrored         the E13 mirrored grid: faults on
                                       primaries must cost nothing
   onll chaos -s kv --sharded          same grid against the partitioned
                                       construction (E14)
   onll chaos --session --seeds 40     the E15 exactly-once session grid
                                       (counter+ledger x all backends +
                                       the naive calibration arm)
   onll scrub                          online rot healed live by the scrubber
   onll session                        exactly-once crash-restart, narrated
   onll fences -s kv                   fence audit for one object
   onll stats -s counter -n 4          run a workload, print a JSON snapshot
   onll stats -i onll-sharded --shards 8   ... against an 8-shard object
   onll stats --crash 120              ... crash mid-workload and fold the
                                       recovery report into the snapshot
*)

open Cmdliner
open Onll_machine
module Lb = Onll_lowerbound.Lowerbound
module Cs = Onll_specs.Counter

(* {1 figure1} *)

let figure1_cmd =
  let doc = "Replay the four executions of the paper's Figure 1." in
  Cmd.v (Cmd.info "figure1" ~doc)
    Term.(const Onll_scenarios.Figure1.print_all $ const ())

(* {1 lowerbound} *)

let unknown_impl other : 'a =
  Printf.eprintf "unknown implementation %S (try %s)\n" other
    (String.concat ", " Onll_baselines.Registry.names);
  exit 1

module R_counter = Onll_baselines.Registry.Make (Cs)

let impl_setups n impl =
  match
    R_counter.build ~max_processes:n
      ~gen_update:(fun () -> Cs.Increment)
      ~gen_read:(fun () -> Cs.Get)
      impl
  with
  | Some h ->
      let open Onll_baselines.Registry in
      (h.sim, Array.init n (fun _ -> fun _ -> h.update ()))
  | None -> unknown_impl impl

let lowerbound n impl =
  let sim, procs = impl_setups n impl in
  let solo = Lb.solo_chain ~max_steps:100_000 sim ~procs in
  Format.printf "solo-chain  (Case 1): %a@." Lb.pp_report solo;
  let sim, procs = impl_setups n impl in
  let chain = Lb.fence_chain ~max_steps:100_000 sim ~procs in
  Format.printf "fence-chain (Case 2): %a@." Lb.pp_report chain;
  Format.printf "every process fenced at least once: %b@."
    (Lb.all_at_least_one chain)

let lowerbound_cmd =
  let doc = "Run the Theorem 6.3 adversary against an implementation." in
  let n =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"process count")
  in
  let impl =
    Arg.(
      value & opt string "onll"
      & info [ "i"; "impl" ] ~docv:"IMPL" ~doc:"implementation under test")
  in
  Cmd.v (Cmd.info "lowerbound" ~doc) Term.(const lowerbound $ n $ impl)

(* {1 fuzz} *)

let fuzz spec seeds crash_window =
  let open Test_support in
  let campaign (type u r) run gen_update gen_read =
    let failures = ref 0 and crashes = ref 0 in
    ignore (gen_update : Onll_util.Splitmix.t -> u);
    ignore (gen_read : Onll_util.Splitmix.t -> r);
    for seed = 1 to seeds do
      let plan =
        {
          Fuzz.default_plan with
          seed;
          crash_at = Some (5 + (seed * 17 mod crash_window));
          policy =
            (match seed mod 3 with
            | 0 -> Onll_nvm.Crash_policy.Persist_all
            | 1 -> Onll_nvm.Crash_policy.Drop_all
            | _ -> Onll_nvm.Crash_policy.Random seed);
        }
      in
      let r = run ~plan ~gen_update ~gen_read () in
      if r.Fuzz.crashed then incr crashes;
      if r.Fuzz.failures <> [] || not r.Fuzz.verdict_ok then begin
        incr failures;
        Printf.printf "seed %d FAILED:\n" seed;
        List.iter (fun f -> Printf.printf "  %s\n" f) r.Fuzz.failures;
        Option.iter (fun v -> Printf.printf "  %s\n" v) r.Fuzz.verdict
      end
    done;
    Printf.printf "%s: %d runs, %d crashed, %d failures\n" spec seeds !crashes
      !failures;
    if !failures > 0 then exit 1
  in
  match spec with
  | "counter" ->
      let module F = Fuzz.Make (Onll_specs.Counter) in
      campaign F.run Gen.Counter.update Gen.Counter.read
  | "queue" ->
      let module F = Fuzz.Make (Onll_specs.Queue_spec) in
      campaign F.run Gen.Queue.update Gen.Queue.read
  | "kv" ->
      let module F = Fuzz.Make (Onll_specs.Kv) in
      campaign F.run Gen.Kv.update Gen.Kv.read
  | "stack" ->
      let module F = Fuzz.Make (Onll_specs.Stack_spec) in
      campaign F.run Gen.Stack.update Gen.Stack.read
  | "set" ->
      let module F = Fuzz.Make (Onll_specs.Set_spec) in
      campaign F.run Gen.Set_g.update Gen.Set_g.read
  | "ledger" ->
      let module F = Fuzz.Make (Onll_specs.Ledger) in
      campaign F.run Gen.Ledger.update Gen.Ledger.read
  | other ->
      Printf.eprintf
        "unknown spec %S (try counter, queue, kv, stack, set, ledger)\n" other;
      exit 1

let fuzz_cmd =
  let doc =
    "Crash-fuzz an ONLL object: random schedules, crash points and \
     policies, audited by the durable-linearizability checker."
  in
  let spec =
    Arg.(
      value & opt string "counter"
      & info [ "s"; "spec" ] ~docv:"SPEC" ~doc:"object specification")
  in
  let seeds =
    Arg.(value & opt int 50 & info [ "seeds" ] ~docv:"N" ~doc:"seed count")
  in
  let window =
    Arg.(
      value & opt int 150
      & info [ "crash-window" ] ~docv:"STEPS"
          ~doc:"crash step is drawn from [5, 5+STEPS)")
  in
  Cmd.v (Cmd.info "fuzz" ~doc) Term.(const fuzz $ spec $ seeds $ window)

(* {1 chaos} *)

(* Exit discipline, uniform across every chaos arm: a campaign that
   RECORDS VIOLATIONS exits with the distinct code [4] — also under
   [--quiet], so scripts can assert on the code alone — while a failed
   calibration (the deliberately broken arm was never caught) exits 1. *)
let exit_violations = 4

(* [--session]: the E15 grid instead — every (spec, arm) campaign of the
   exactly-once session audit, [seeds] seeds per arm. The session arms
   must be perfect; the naive at-least-once arm must duplicate, or the
   detector proved nothing. *)
let session_chaos seeds quiet =
  let open Test_support in
  let s = Session_chaos.run_e15 ~seeds_per_arm:seeds in
  if not quiet then Session_chaos.print s;
  if
    Session_chaos.e15_violations s > 0
    || Session_chaos.e15_session_duplicates s > 0
    || Session_chaos.e15_session_lost_acks s > 0
  then exit exit_violations;
  if Session_chaos.e15_naive_duplicates s = 0 then exit 1

(* [--txn]: the E19 cross-shard transaction atomicity campaign — seeded
   kv transfers cut by crashes, audited all-or-nothing (plain or
   mirrored); [--unhardened] runs the no-sweep calibration, which must be
   caught tearing or losing committed transfers. *)
let txn_chaos seeds unhardened mirrored quiet =
  let open Test_support in
  if unhardened then begin
    let runs, caught = Txn_chaos.calibrate ~seeds in
    if not quiet then
      Printf.printf
        "kv/txn (unhardened calibration): %d/%d crashes caught losing or \
         tearing transactions\n"
        caught runs;
    if caught = 0 then begin
      if not quiet then
        Printf.printf
          "calibration FAILED: the sweep-free recovery was never caught\n";
      exit 1
    end
  end
  else begin
    let messages = ref [] in
    let plan_of, arm =
      if mirrored then (Txn_chaos.mirrored_plan_of_seed, "kv/txn/mirrored")
      else (Txn_chaos.plan_of_seed, "kv/txn")
    in
    let r = Txn_chaos.campaign ~plan_of ~arm ~seeds ~messages () in
    if not quiet then begin
      List.iter (Printf.printf "  VIOLATION %s\n") (List.rev !messages);
      Printf.printf
        "%s: %d runs, %d crashed, %d actions completed, %d txns committed, \
         %d sub-ops swept, %d violations\n"
        arm r.Txn_chaos.runs r.Txn_chaos.crashed r.Txn_chaos.completed
        r.Txn_chaos.committed r.Txn_chaos.swept r.Txn_chaos.violations
    end;
    if r.Txn_chaos.violations > 0 then exit exit_violations
  end

(* [--relaxed]: the E20 bounded-staleness campaign — seeded crashes cut
   the risk-budgeted tail at swept depths (plain or mirrored), audited
   for quantified suffix-only loss. [--unhardened] runs the ledger-free
   calibration, whose violations are the expected outcome: it exits with
   the distinct violation code when caught (the Makefile smoke asserts
   exactly that, under [--quiet]) and 1 when the detector never fired. *)
let relaxed_chaos seeds unhardened mirrored quiet =
  let open Test_support in
  if unhardened then begin
    let runs, caught = Relaxed_chaos.calibrate ~seeds in
    if not quiet then
      Printf.printf
        "kv/relaxed (unhardened calibration): %d/%d crashes caught losing \
         acknowledged updates\n"
        caught runs;
    if caught = 0 then begin
      if not quiet then
        Printf.printf
          "calibration FAILED: the ledger-free recovery was never caught\n";
      exit 1
    end;
    exit exit_violations
  end
  else begin
    let messages = ref [] in
    let plan_of, arm =
      if mirrored then
        (Relaxed_chaos.mirrored_plan_of_seed, "kv/relaxed/mirrored")
      else (Relaxed_chaos.plan_of_seed, "kv/relaxed")
    in
    let r = Relaxed_chaos.campaign ~plan_of ~arm ~seeds ~messages () in
    if not quiet then begin
      List.iter (Printf.printf "  VIOLATION %s\n") (List.rev !messages);
      Printf.printf
        "%s: %d runs, %d crashed, %d acked, %d lost, %d drains, %d \
         deferred acks, %d violations\n"
        arm r.Relaxed_chaos.runs r.Relaxed_chaos.crashed
        r.Relaxed_chaos.completed r.Relaxed_chaos.lost
        r.Relaxed_chaos.drains r.Relaxed_chaos.deferred
        r.Relaxed_chaos.violations
    end;
    if r.Relaxed_chaos.violations > 0 then exit exit_violations
  end

let chaos spec seeds unhardened mirrored sharded batched session txn relaxed
    quiet =
  if session then session_chaos seeds quiet
  else if relaxed then begin
    if sharded || batched || txn then begin
      Printf.eprintf "chaos: --relaxed composes with --mirrored only\n";
      exit 1
    end;
    if spec <> "kv" then begin
      Printf.eprintf
        "chaos: --relaxed runs the kv staleness workload (use -s kv)\n";
      exit 1
    end;
    relaxed_chaos seeds unhardened mirrored quiet
  end
  else if txn then begin
    if sharded || batched then begin
      Printf.eprintf "chaos: --txn composes with --mirrored only\n";
      exit 1
    end;
    if spec <> "kv" then begin
      Printf.eprintf
        "chaos: --txn runs the kv transfer workload (use -s kv)\n";
      exit 1
    end;
    txn_chaos seeds unhardened mirrored quiet
  end
  else if batched && sharded then begin
    Printf.eprintf "chaos: --batched does not compose with --sharded\n";
    exit 1
  end
  else
  let open Test_support in
  let campaign (type u r) (run : plan:Chaos.plan -> gen_update:_ -> gen_read:_ -> unit -> _)
      (gen_update : Onll_util.Splitmix.t -> u)
      (gen_read : Onll_util.Splitmix.t -> r) =
    let violations = ref 0 and crashed = ref 0 in
    let media = ref 0 and transients = ref 0 and nested = ref 0 in
    let lost = ref 0 and ambiguous = ref 0 in
    for seed = 1 to seeds do
      let plan =
        let p =
          match (batched, sharded, mirrored) with
          | true, _, false -> Chaos_harness.batched_plan_of_seed seed
          | true, _, true -> Chaos_harness.batched_mirrored_plan_of_seed seed
          | false, false, false -> Chaos_harness.plan_of_seed seed
          | false, false, true -> Chaos_harness.mirrored_plan_of_seed seed
          | false, true, false -> Chaos_harness.sharded_plan_of_seed seed
          | false, true, true -> Chaos_harness.sharded_mirrored_plan_of_seed seed
        in
        if unhardened then { p with Chaos.hardened = false } else p
      in
      let r = run ~plan ~gen_update ~gen_read () in
      let f = r.Chaos.faults in
      if r.Chaos.crashed then incr crashed;
      media := !media + f.Onll_faults.Faults.bit_flips + f.torn_spans;
      transients := !transients + f.flush_transients + f.fence_transients;
      nested := !nested + r.Chaos.nested_fired;
      lost := !lost + r.Chaos.lost_reported;
      ambiguous := !ambiguous + r.Chaos.tail_ambiguous;
      if r.Chaos.violations <> [] then begin
        incr violations;
        if not quiet then begin
          Printf.printf "seed %d VIOLATIONS:\n" seed;
          List.iter (fun v -> Printf.printf "  %s\n" v) r.Chaos.violations
        end
      end
    done;
    if not quiet then
      Printf.printf
        "%s%s%s: %d runs, %d crashed, %d media faults, %d transients, %d nested \
         recovery crashes, %d reported-lost, %d tail-ambiguous, %d runs with \
         violations\n"
        (spec
        ^ (if sharded then "/sharded" else "")
        ^ if batched then "/batched" else "")
        (if mirrored then " (mirrored, primary-only faults)" else "")
        (if unhardened then " (unhardened calibration)" else "")
        seeds !crashed !media !transients !nested !lost !ambiguous !violations;
    (* hardened must be clean; the unhardened baseline must be caught *)
    if unhardened then begin
      if !violations = 0 then begin
        if not quiet then
          Printf.printf
            "calibration FAILED: the unhardened recovery was never caught\n";
        exit 1
      end
    end
    else if !violations > 0 then exit exit_violations
    else if mirrored && !lost + !ambiguous > 0 then begin
      (* primary-only faults against a mirror must cost NOTHING *)
      if not quiet then
        Printf.printf
          "MIRRORED LOSS: %d reported-lost + %d tail-ambiguous should all \
           have been repaired from the intact replica\n"
          !lost !ambiguous;
      exit exit_violations
    end
  in
  match spec with
  | "counter" ->
      let module C = Chaos.Make (Onll_specs.Counter) in
      campaign C.run Gen.Counter.update Gen.Counter.read
  | "queue" ->
      let module C = Chaos.Make (Onll_specs.Queue_spec) in
      campaign C.run Gen.Queue.update Gen.Queue.read
  | "kv" ->
      let module C = Chaos.Make (Onll_specs.Kv) in
      campaign C.run Gen.Kv.update Gen.Kv.read
  | "stack" ->
      let module C = Chaos.Make (Onll_specs.Stack_spec) in
      campaign C.run Gen.Stack.update Gen.Stack.read
  | other ->
      Printf.eprintf "unknown spec %S (try counter, queue, kv, stack)\n" other;
      exit 1

let chaos_cmd =
  let doc =
    "Chaos-fuzz an ONLL object: crashes with media faults (bit flips, torn \
     spans), transient flush/fence failures, and nested crashes during \
     recovery — auditing that recovery is durably linearizable or reports \
     the exact loss. With $(b,--unhardened), run the calibration baseline \
     instead, which must be caught losing data. With $(b,--mirrored), run \
     the E13 grid: two-way replicated logs with faults confined to \
     primaries plus online rot and periodic scrubs — where loss of any \
     kind (even reported) is a failure, since every fault has an intact \
     mirror copy. With $(b,--sharded), the same grids run against the E14 \
     partitioned construction (4 shards), composable with $(b,--mirrored). \
     With $(b,--batched), they run against the E16 group-commit \
     construction — the crash grid lands mid-batch, before or after the \
     shared fence — also composable with $(b,--mirrored) but not with \
     $(b,--sharded). \
     With $(b,--session), run the E15 exactly-once session grid instead \
     (counter and ledger workloads through durable client sessions over \
     the plain, mirrored and sharded backends, plus the naive \
     at-least-once calibration arm, $(i,SEEDS) seeds per arm); the other \
     flags are ignored. With $(b,--txn), run the E19 cross-shard \
     transaction atomicity campaign instead: seeded kv transfers cut by \
     crashes at swept schedule points, audited all-or-nothing with \
     balanced books — composable with $(b,--mirrored) (and \
     $(b,--unhardened) for its no-sweep calibration), not with \
     $(b,--sharded)/$(b,--batched). With $(b,--relaxed), run the E20 \
     bounded-staleness campaign instead: seeded crashes cut the \
     risk-budgeted volatile tail at swept depths, audited for \
     quantified suffix-only loss, idempotent recovery and convergence — \
     composable with $(b,--mirrored); its $(b,--unhardened) calibration \
     exits with the violation code when the ledger-free recovery is \
     caught (the expected outcome). Any campaign that records \
     violations exits with code 4 — also under $(b,--quiet), which \
     suppresses all output — so scripts can assert on the exit code \
     alone (1 is reserved for usage errors and calibrations whose \
     detector never fired)."
  in
  let spec =
    Arg.(
      value & opt string "kv"
      & info [ "s"; "spec" ] ~docv:"SPEC" ~doc:"object specification")
  in
  let seeds =
    Arg.(value & opt int 30 & info [ "seeds" ] ~docv:"N" ~doc:"seed count")
  in
  let unhardened =
    Arg.(
      value & flag
      & info [ "unhardened" ]
          ~doc:"run the deliberately broken calibration recovery")
  in
  let mirrored =
    Arg.(
      value & flag
      & info [ "mirrored" ]
          ~doc:"two-way mirrored logs, faults on primaries only (E13)")
  in
  let sharded =
    Arg.(
      value & flag
      & info [ "sharded" ]
          ~doc:"run against the 4-shard partitioned construction (E14)")
  in
  let batched =
    Arg.(
      value & flag
      & info [ "batched" ]
          ~doc:
            "run against the E16 group-commit construction (crash lands \
             mid-batch)")
  in
  let session =
    Arg.(
      value & flag
      & info [ "session" ]
          ~doc:
            "run the E15 exactly-once durable-session grid (all arms, \
             SEEDS seeds each) instead")
  in
  let txn =
    Arg.(
      value & flag
      & info [ "txn" ]
          ~doc:
            "run the E19 cross-shard transaction atomicity campaign (kv \
             transfers, all-or-nothing after every crash)")
  in
  let relaxed =
    Arg.(
      value & flag
      & info [ "relaxed" ]
          ~doc:
            "run the E20 bounded-staleness campaign (risk-budgeted lazy \
             fences; crash loss must be the budgeted suffix, exactly \
             reported)")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ]
          ~doc:
            "suppress all campaign output; the exit code still reports \
             violations (code 4)")
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const chaos $ spec $ seeds $ unhardened $ mirrored $ sharded $ batched
      $ session $ txn $ relaxed $ quiet)

(* {1 scrub} *)

(* A deterministic end-to-end demonstration of online self-healing: a
   mirrored kv object under continuous bit rot confined to the primary
   replica, scrubbed every [interval] updates, then crashed and recovered
   — the recovery must come back clean because every rotted byte had an
   intact mirror copy (healed live by the scrubber, or at recovery for rot
   landing after the last scrub). *)
let scrub_demo updates interval seed =
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let mem = Sim.memory sim in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Onll_specs.Kv) in
  let obj =
    C.make { Onll_core.Onll.Config.default with sink; replicas = 2 }
  in
  let fault =
    {
      Onll_faults.Faults.Plan.none with
      seed;
      rot_ops_interval = 25;
      media_window = 2048;
      target = (fun n -> not (Onll_plog.Plog.is_mirror_region n));
    }
  in
  let handle = Onll_faults.Faults.install mem fault in
  let rng = Onll_util.Splitmix.create seed in
  let total = ref Onll_plog.Plog.clean_scrub in
  let body _ =
    for k = 1 to updates do
      ignore (C.update obj (Test_support.Gen.Kv.update rng));
      if k mod interval = 0 then
        total := Onll_plog.Plog.add_scrub !total (C.scrub obj)
    done
  in
  (match Sim.run sim Onll_sched.Sched.Strategy.round_robin [| body |] with
  | Onll_sched.Sched.World.Completed -> ()
  | _ -> assert false);
  Onll_faults.Faults.set_rot handle false;
  Format.printf "workload: %d mirrored kv updates, scrub every %d@." updates
    interval;
  Format.printf "injected: %a@." Onll_faults.Faults.pp_counters
    (Onll_faults.Faults.counters handle);
  Format.printf "scrubs:   %a@." Onll_plog.Plog.pp_scrub_report !total;
  Format.printf "degraded: %b@." (C.degraded obj);
  Format.printf
    "scrub fences: %d across %d passes (attributed to fences.scrub, never \
     to updates: pf/update stays %g)@."
    (Onll_obs.Metrics.counter_value registry "fences.scrub")
    (Onll_obs.Metrics.counter_value registry "ops.scrub")
    (float_of_int (Onll_obs.Metrics.counter_value registry "fences.update")
    /. float_of_int
         (max 1 (Onll_obs.Metrics.counter_value registry "ops.update")));
  Onll_nvm.Memory.crash mem ~policy:Onll_nvm.Crash_policy.Drop_all;
  let r = C.recover_report obj in
  Onll_faults.Faults.remove handle;
  Format.printf "post-crash recovery: %a@."
    Onll_core.Onll.Recovery_report.pp r;
  if not (Onll_core.Onll.Recovery_report.clean r) then begin
    Format.printf
      "FAILED: primary-only rot should always be repairable from the \
       mirror@.";
    exit 1
  end;
  Format.printf
    "clean: every rotted byte was healed (online by the scrubber, or from \
     the mirror at recovery)@."

let scrub_cmd =
  let doc =
    "Demonstrate online self-healing: a mirrored object under continuous \
     primary-replica bit rot, CRC-scrubbed while live, then crashed — \
     recovery must come back loss-free."
  in
  let updates =
    Arg.(
      value & opt int 200
      & info [ "u"; "updates" ] ~docv:"N" ~doc:"updates to run")
  in
  let interval =
    Arg.(
      value & opt int 10
      & info [ "every" ] ~docv:"N" ~doc:"scrub every N updates")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"rot seed")
  in
  Cmd.v (Cmd.info "scrub" ~doc)
    Term.(const scrub_demo $ updates $ interval $ seed)

(* {1 txn} *)

(* A deterministic end-to-end narration of cross-shard atomic commit
   (E19): a transfer between accounts on different shards of a 4-shard kv
   object, paid for with ONE coordinator fence (2PC would pay one
   force-write per participant plus a decision); then a crash parked
   before the commit fence (nothing of the transfer may survive), and a
   crash after it (all of it must). *)
let txn_demo () =
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let mem = Sim.memory sim in
  let module M = (val Sim.machine sim) in
  let module Tx = Onll_txn.Make (M) (Onll_specs.Kv) in
  let module Kv = Onll_specs.Kv in
  let obj = Tx.make ~shards:4 { Onll_core.Onll.Config.default with sink } in
  let route op = Tx.Sh.shard_of_update (Tx.sharded obj) op in
  let key_for s =
    let rec go i =
      let k = Printf.sprintf "acct-%d" i in
      if route (Kv.Put (k, "")) = s then k else go (i + 1)
    in
    go 0
  in
  let alice = key_for 0 and bob = key_for 1 in
  let balance k =
    match Tx.read obj (Kv.Get k) with
    | Kv.Found (Some v) -> v
    | _ -> "(absent)"
  in
  let run1 body =
    match Sim.run sim Onll_sched.Sched.Strategy.round_robin [| body |] with
    | Onll_sched.Sched.World.Completed -> ()
    | _ -> assert false
  in
  Format.printf
    "a 4-shard kv object; %s lives on shard 0, %s on shard 1@." alice bob;
  run1 (fun _ ->
      ignore (Tx.update obj (Kv.Put (alice, "100")));
      ignore (Tx.update obj (Kv.Put (bob, "100"))));
  Format.printf "funded both accounts: 2 updates, %d fences@."
    (M.persistent_fences ());
  let before = M.persistent_fences () in
  run1 (fun _ ->
      ignore
        (Tx.txn_detectable obj ~seq:0
           [ Kv.Put (alice, "60"); Kv.Put (bob, "140") ]));
  Format.printf
    "transfer 40 (%s -> %s), both shards atomically: %d fence (2PC would \
     pay 3: one prepare force-write per shard + a decision)@."
    alice bob
    (M.persistent_fences () - before);
  Format.printf "balances: %s=%s %s=%s@." alice (balance alice) bob
    (balance bob);
  (* crash parked BEFORE the commit fence: the staged transfer must
     vanish whole *)
  let script =
    Onll_sched.Sched.Strategy.script
      [
        Onll_sched.Sched.Strategy.run_until_pfence 0;
        Onll_sched.Sched.Strategy.Crash_here;
      ]
  in
  (match
     Sim.run sim script
       [|
         (fun _ ->
           ignore
             (Tx.txn_detectable obj ~seq:1
                [ Kv.Put (alice, "0"); Kv.Put (bob, "200") ]));
       |]
   with
  | Onll_sched.Sched.World.Crashed -> ()
  | _ -> assert false);
  Format.printf
    "@.crash parked before the commit fence of a second transfer...@.";
  let r = Tx.recover_report obj in
  Format.printf "recovery: %a@." Onll_core.Onll.Recovery_report.pp r;
  Format.printf
    "txn seq 1 committed? %b — and the books show it: %s=%s %s=%s \
     (all-or-nothing: nothing of it survived)@."
    (Tx.txn_was_committed obj { Onll_txn.txn_proc = 0; txn_seq = 1 })
    alice (balance alice) bob (balance bob);
  (* the same transfer run to completion, then a crash: all of it must
     survive, replayed from the one commit record *)
  run1 (fun _ ->
      ignore
        (Tx.txn_detectable obj ~seq:1
           [ Kv.Put (alice, "0"); Kv.Put (bob, "200") ]));
  Onll_nvm.Memory.crash mem ~policy:Onll_nvm.Crash_policy.Drop_all;
  Format.printf "@.the same transfer completed, then a crash...@.";
  let r = Tx.recover_report obj in
  Format.printf "recovery: %a@." Onll_core.Onll.Recovery_report.pp r;
  Format.printf
    "txn seq 1 committed? %b — %s=%s %s=%s (replayed in full from the one \
     commit record; %d sub-ops swept back in)@."
    (Tx.txn_was_committed obj { Onll_txn.txn_proc = 0; txn_seq = 1 })
    alice (balance alice) bob (balance bob)
    (Onll_obs.Metrics.counter_value registry "txn.sweep.injected");
  if balance alice <> "0" || balance bob <> "200" then begin
    Format.printf "FAILED: the committed transfer did not survive@.";
    exit 1
  end;
  Format.printf
    "@.fences.txn=%d over ops.txn=%d — one fence per transaction@."
    (Onll_obs.Metrics.counter_value registry "fences.txn")
    (Onll_obs.Metrics.counter_value registry "ops.txn")

let txn_cmd =
  let doc =
    "Narrate a cross-shard atomic transaction (E19): a two-shard transfer \
     committed under ONE coordinator fence, crashed before the fence \
     (nothing survives) and after it (everything does, replayed from the \
     single commit record)."
  in
  Cmd.v (Cmd.info "txn" ~doc) Term.(const txn_demo $ const ())

(* {1 session} *)

(* A deterministic end-to-end narration of exactly-once submission (E15):
   one client driving a durable session over a plain counter, crashed
   twice. Crash 1 lands after the last update linearized but before its
   acknowledgement became durable — recovery must answer Was_applied and
   must NOT re-invoke (an at-least-once client re-invokes here and double
   counts). Crash 2 cuts a submission that a transient-flush storm pinned
   to the object's regions kept from ever reaching the object — the
   intent is durable, the operation is not, and recovery must re-invoke
   it under a fresh identity. The final value is checked against
   exactly-once counting. *)
let session_demo updates seed =
  let updates = max 1 updates in
  let registry = Onll_obs.Metrics.create () in
  let sink = Onll_obs.Sink.make ~registry () in
  let sim = Sim.create ~sink ~max_processes:1 () in
  let mem = Sim.memory sim in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make { Onll_core.Onll.Config.default with sink } in
  let module Sess = Onll_session.Make (M) (Cs) in
  let module Over = Sess.Over (C) in
  let session = Sess.attach ~sink ~client:0 (Over.backend obj) in
  let run body =
    match Sim.run sim Onll_sched.Sched.Strategy.round_robin [| body |] with
    | Onll_sched.Sched.World.Completed -> ()
    | _ -> assert false
  in
  let pp_id = Onll_core.Onll.pp_op_id in
  let failed = ref false in
  Format.printf
    "era 1: %d increments through the durable session (each submission: 1 \
     fence for the intent record, 1 for the update)@."
    updates;
  run (fun _ ->
      for k = 1 to updates do
        match Sess.submit session Cs.Increment with
        | Ok v -> Format.printf "  submit #%d -> ok, counter = %d@." k v
        | Error e ->
            Format.printf "  submit #%d -> %a@." k Onll_session.pp_error e;
            failed := true
      done);
  Format.printf
    "@.crash 1: power loss after update #%d linearized, before its \
     acknowledgement became durable@."
    updates;
  Onll_nvm.Memory.crash mem ~policy:Onll_nvm.Crash_policy.Persist_all;
  ignore (C.recover_report obj);
  run (fun _ ->
      (match Sess.recover session with
      | Sess.Was_applied id ->
          Format.printf
            "  recover -> Was_applied %a: the in-doubt operation is in the \
             adopted history; NOT re-invoked@."
            pp_id id
      | r ->
          Format.printf "  recover -> %a (unexpected)@." Sess.pp_resolution r;
          failed := true);
      Format.printf
        "  counter = %d  (an at-least-once client re-invokes here: %d)@."
        (Sess.read session Cs.Get) (updates + 1));
  (* A flush storm pinned to the object's plog regions (fence faults are
     machine-global, so only flushes are scoped): the client record stays
     writable, the intent append succeeds, and the object invocation is
     what times out — the interesting in-doubt shape. *)
  let storm =
    Onll_faults.Faults.install mem
      {
        Onll_faults.Faults.Plan.none with
        seed;
        flush_fail_prob = 1.0;
        max_consecutive_transients = 1_000_000;
        target = (fun n -> n <> Sess.log_name session);
      }
  in
  Format.printf
    "@.era 2: a transient flush storm pinned to the object's regions@.";
  run (fun _ ->
      match Sess.submit session Cs.Increment with
      | Error Onll_session.Timeout -> (
          match Sess.pending session with
          | Some (id, _) ->
              Format.printf
                "  submit -> Timeout after bounded backoff; in doubt as %a \
                 (intent durable, object never reached)@."
                pp_id id
          | None ->
              Format.printf "  submit -> Timeout with no durable intent@.";
              failed := true)
      | Ok v ->
          Format.printf "  submit -> ok %d (storm never bit?)@." v;
          failed := true
      | Error e ->
          Format.printf "  submit -> %a@." Onll_session.pp_error e;
          failed := true);
  Onll_faults.Faults.remove storm;
  Format.printf
    "@.crash 2: restart, losing everything the storm kept from \
     persisting@.";
  (* Drop_all, not Persist_all: the storm-blocked log record is sitting
     unfenced in the volatile buffer, and a Persist_all crash would
     persist it — turning the in-doubt operation into a survivor. *)
  Onll_nvm.Memory.crash mem ~policy:Onll_nvm.Crash_policy.Drop_all;
  ignore (C.recover_report obj);
  let final = ref 0 in
  run (fun _ ->
      (match Sess.recover session with
      | Sess.Reinvoked (old_id, fresh, v) ->
          Format.printf
            "  recover -> Reinvoked: %a never linearized; re-invoked as %a, \
             counter = %d@."
            pp_id old_id pp_id fresh v
      | r ->
          Format.printf "  recover -> %a (unexpected)@." Sess.pp_resolution r;
          failed := true);
      for _ = 1 to 2 do
        match Sess.submit session Cs.Increment with
        | Ok v -> Format.printf "  submit -> ok, counter = %d@." v
        | Error e ->
            Format.printf "  submit -> %a@." Onll_session.pp_error e;
            failed := true
      done;
      final := Sess.read session Cs.Get);
  let expect = updates + 3 in
  Format.printf
    "@.final: counter = %d, expected %d — %d logical operations, each \
     applied exactly once across both crashes@."
    !final expect expect;
  Format.printf
    "sequence numbers 0..%d were allocated and never reused; resolutions: \
     %d applied-without-reinvoke, %d reinvoked@."
    (Sess.next_seq session - 1)
    (Onll_obs.Metrics.counter_value registry "session.resolved.applied")
    (Onll_obs.Metrics.counter_value registry "session.resolved.reinvoked");
  if !final <> expect || !failed then begin
    Format.printf "FAILED: the narration above diverged from exactly-once@.";
    exit 1
  end;
  Format.printf "exactly-once held@."

let session_cmd =
  let doc =
    "Narrate exactly-once submission end to end: a durable client session \
     over a counter, crashed once after an unacknowledged update (recovery \
     detects it survived and does not re-invoke) and once mid-submission \
     under a transient-flush storm (recovery re-invokes under a fresh \
     identity), with the final value checked against exactly-once counting."
  in
  let updates =
    Arg.(
      value & opt int 4
      & info [ "u"; "updates" ] ~docv:"N" ~doc:"era-1 updates to run")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"storm seed")
  in
  Cmd.v (Cmd.info "session" ~doc) Term.(const session_demo $ updates $ seed)

(* {1 fences} *)

let fences updates =
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let procs =
    Array.init 3 (fun _ ->
        fun _ ->
          for _ = 1 to updates do
            ignore (C.update obj Cs.Increment);
            ignore (C.read obj Cs.Get)
          done)
  in
  ignore (Sim.run sim (Onll_sched.Sched.Strategy.random ~seed:1) procs);
  let stats = Sim.stats sim in
  Format.printf "workload: 3 processes x %d updates + %d reads@." updates
    updates;
  Format.printf "machine:  %a@." Onll_nvm.Memory.Stats.pp stats;
  Format.printf "persistent fences / update = %g (Theorem 5.1 bound: 1)@."
    (float_of_int stats.Onll_nvm.Memory.Stats.persistent_fences
    /. float_of_int (3 * updates))

let fences_cmd =
  let doc = "Audit ONLL's persistent-fence count on a counter workload." in
  let updates =
    Arg.(
      value & opt int 50
      & info [ "u"; "updates" ] ~docv:"N" ~doc:"updates per process")
  in
  Cmd.v (Cmd.info "fences" ~doc) Term.(const fences $ updates)

(* {1 stats} *)

(* One workload shape for every spec: each process performs [updates]
   updates with a read after each one, under a seeded random schedule,
   against an implementation built with an active sink installed in both
   the simulated machine and the object. The sink's registry is then the
   run's metrics snapshot. With [crash_at = Some step], the schedule cuts
   at that step and the implementation's hardened recovery runs; its
   {!Onll_core.Onll.Recovery_report} is folded into the same registry
   (the [recovery.*] keys of the snapshot) and pretty-printed to stderr,
   keeping stdout pure JSON/CSV. *)
module Stats_run (S : Onll_core.Spec.S) = struct
  module R = Onll_baselines.Registry.Make (S)

  let go ~impl ~shards ~procs ~updates ~seed ~scrub_every ~crash_at
      ~gen_update ~gen_read =
    let sink = Onll_obs.Sink.make () in
    let rng = Onll_util.Splitmix.create seed in
    match
      R.build ~sink
        ~options:{ Onll_baselines.Registry.default_options with shards }
        ~max_processes:procs
        ~gen_update:(fun () -> gen_update rng)
        ~gen_read:(fun () -> gen_read rng)
        impl
    with
    | None -> unknown_impl impl
    | Some h ->
        let open Onll_baselines.Registry in
        (if scrub_every > 0 && h.scrub = None then begin
           Printf.eprintf "implementation %S has no online scrubber\n" impl;
           exit 1
         end);
        (if crash_at <> None && h.recover = None then begin
           Printf.eprintf
             "implementation %S has no hardened recovery; --crash-at needs \
              one of: %s\n"
             impl
             (String.concat ", " Onll_baselines.Registry.recovery_capable);
           exit 1
         end);
        let strategy =
          match crash_at with
          | None -> Onll_sched.Sched.Strategy.random ~seed
          | Some n ->
              Onll_sched.Sched.Strategy.random_with_crash ~seed
                ~crash_at_step:n
        in
        let outcome =
          Sim.run h.sim strategy
            (Array.init procs (fun _ ->
                 fun _ ->
                  for k = 1 to updates do
                    h.update ();
                    h.read ();
                    if scrub_every > 0 && k mod scrub_every = 0 then
                      Option.iter (fun f -> f ()) h.scrub
                  done))
        in
        (match outcome with
        | Onll_sched.Sched.World.Completed ->
            if crash_at <> None then
              Printf.eprintf
                "note: the workload completed before step %d; nothing \
                 crashed\n"
                (Option.get crash_at)
        | Onll_sched.Sched.World.Crashed ->
            let report = (Option.get h.recover) () in
            Onll_core.Onll.Recovery_report.to_metrics
              (Onll_obs.Sink.registry sink)
              report;
            Format.eprintf "post-crash recovery: %a@."
              Onll_core.Onll.Recovery_report.pp report
        | Onll_sched.Sched.World.Stopped _ -> assert false);
        sink
end

let stats spec impl shards procs updates seed scrub_every crash_at csv
    output =
  let open Test_support in
  let finish sink =
    let meta =
      [
        ("spec", spec);
        ("impl", impl);
        ("shards", string_of_int shards);
        ("processes", string_of_int procs);
        ("updates_per_proc", string_of_int updates);
        ("reads_per_proc", string_of_int updates);
        ("seed", string_of_int seed);
        ("scrub_every", string_of_int scrub_every);
      ]
      @
      match crash_at with
      | None -> []
      | Some n -> [ ("crash_at", string_of_int n) ]
    in
    let registry = Onll_obs.Sink.registry sink in
    let rendered =
      if csv then Onll_obs.Export.csv ~meta registry
      else Onll_obs.Export.json ~meta registry
    in
    match output with
    | None -> print_string rendered
    | Some path ->
        Onll_obs.Export.write_file ~path rendered;
        Printf.printf "wrote %s\n" path
  in
  match spec with
  | "counter" ->
      let module W = Stats_run (Onll_specs.Counter) in
      finish
        (W.go ~impl ~shards ~procs ~updates ~seed ~scrub_every ~crash_at
           ~gen_update:Gen.Counter.update ~gen_read:Gen.Counter.read)
  | "register" ->
      let module W = Stats_run (Onll_specs.Register) in
      finish
        (W.go ~impl ~shards ~procs ~updates ~seed ~scrub_every ~crash_at
           ~gen_update:Gen.Register.update ~gen_read:Gen.Register.read)
  | "queue" ->
      let module W = Stats_run (Onll_specs.Queue_spec) in
      finish
        (W.go ~impl ~shards ~procs ~updates ~seed ~scrub_every ~crash_at
           ~gen_update:Gen.Queue.update ~gen_read:Gen.Queue.read)
  | "kv" ->
      let module W = Stats_run (Onll_specs.Kv) in
      finish
        (W.go ~impl ~shards ~procs ~updates ~seed ~scrub_every ~crash_at
           ~gen_update:Gen.Kv.update ~gen_read:Gen.Kv.read)
  | "stack" ->
      let module W = Stats_run (Onll_specs.Stack_spec) in
      finish
        (W.go ~impl ~shards ~procs ~updates ~seed ~scrub_every ~crash_at
           ~gen_update:Gen.Stack.update ~gen_read:Gen.Stack.read)
  | "set" ->
      let module W = Stats_run (Onll_specs.Set_spec) in
      finish
        (W.go ~impl ~shards ~procs ~updates ~seed ~scrub_every ~crash_at
           ~gen_update:Gen.Set_g.update ~gen_read:Gen.Set_g.read)
  | "ledger" ->
      let module W = Stats_run (Onll_specs.Ledger) in
      finish
        (W.go ~impl ~shards ~procs ~updates ~seed ~scrub_every ~crash_at
           ~gen_update:Gen.Ledger.update ~gen_read:Gen.Ledger.read)
  | other ->
      Printf.eprintf
        "unknown spec %S (try counter, register, queue, kv, stack, set, \
         ledger)\n"
        other;
      exit 1

let stats_cmd =
  let doc =
    "Run a seeded workload against an implementation with the observability \
     sink installed, then print the metrics snapshot (JSON by default) — \
     per-operation fence attribution, fuzzy-window histogram, machine \
     events."
  in
  let spec =
    Arg.(
      value & opt string "counter"
      & info [ "s"; "spec" ] ~docv:"SPEC" ~doc:"object specification")
  in
  let impl =
    Arg.(
      value & opt string "onll"
      & info [ "i"; "impl" ] ~docv:"IMPL" ~doc:"implementation under test")
  in
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"S"
          ~doc:"shard count (onll-sharded only; others ignore it)")
  in
  let procs =
    Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"process count")
  in
  let updates =
    Arg.(
      value & opt int 25
      & info [ "u"; "updates" ] ~docv:"N" ~doc:"updates per process")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"schedule seed")
  in
  let scrub_every =
    Arg.(
      value & opt int 0
      & info [ "scrub-every" ] ~docv:"N"
          ~doc:
            "run an online scrub step every N updates per process (0 = \
             never; onll implementations only)")
  in
  let crash_at =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash" ] ~docv:"STEP"
          ~doc:
            "crash the machine at this scheduler step, run the hardened \
             recovery, and fold its report into the snapshot (the \
             recovery.* keys; the report is also pretty-printed to \
             stderr)")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"emit CSV instead of JSON")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"write to FILE, not stdout")
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const stats $ spec $ impl $ shards $ procs $ updates $ seed
      $ scrub_every $ crash_at $ csv $ output)

(* {1 explore} *)

let explore procs ops k with_crashes =
  let mk () =
    let sim = Sim.create ~max_processes:procs () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make { Onll_core.Onll.Config.default with log_capacity = 8192 } in
    let completed = ref 0 in
    let work =
      Array.init procs (fun _ ->
          fun _ ->
            for _ = 1 to ops do
              ignore (C.update obj Cs.Increment);
              incr completed
            done)
    in
    ( sim,
      work,
      fun outcome ->
        match outcome with
        | Onll_sched.Sched.World.Completed ->
            assert (C.read obj Cs.Get = procs * ops)
        | Onll_sched.Sched.World.Crashed ->
            C.recover obj;
            let v = C.read obj Cs.Get in
            assert (v >= !completed && v <= procs * ops)
        | Onll_sched.Sched.World.Stopped _ -> assert false )
  in
  let stats =
    Onll_explore.Explore.run ~max_preemptions:k ~with_crashes
      ~max_runs:500_000 ~mk ()
  in
  Format.printf
    "explored the FULL space of schedules (<= %d preemptions%s): %a@." k
    (if with_crashes then ", crash at every decision point" else "")
    Onll_explore.Explore.pp_stats stats;
  Format.printf "every execution satisfied the durability assertions@."

let explore_cmd =
  let doc =
    "Systematically enumerate every preemption-bounded schedule (and \
     optionally a crash at every decision point) of a small ONLL counter \
     program, asserting durability on each execution."
  in
  let procs =
    Arg.(value & opt int 2 & info [ "p"; "procs" ] ~docv:"N" ~doc:"processes")
  in
  let ops =
    Arg.(value & opt int 1 & info [ "u"; "ops" ] ~docv:"N" ~doc:"updates each")
  in
  let k =
    Arg.(
      value & opt int 1
      & info [ "k"; "preemptions" ] ~docv:"K" ~doc:"preemption bound")
  in
  let crashes =
    Arg.(value & flag & info [ "crashes" ] ~doc:"branch on crashes too")
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const explore $ procs $ ops $ k $ crashes)

(* {1 rationale} *)

let rationale_cmd =
  let doc =
    "Run the paper's §3.1 case analysis: the three bad designs (reader \
     returns / waits / helps) and ONLL's escape, under the same adversarial \
     schedule."
  in
  Cmd.v (Cmd.info "rationale" ~doc)
    Term.(const Onll_scenarios.Rationale.print_all $ const ())

(* {1 store: the file-backed store and its kill -9 harness (E17)} *)

module Fchaos = Test_support.File_chaos

let store_worker dir target replicas kill_at_fence kill_after_sectors
    fsync_eio_from fsync_eio_count enospc_at_write short_write_prob seed
    retry_budget backoff_ns =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "store directory %S does not exist\n" dir;
    exit 2
  end;
  let fplan =
    if
      kill_at_fence = 0 && fsync_eio_from = 0 && enospc_at_write = 0
      && short_write_prob = 0. && seed = 0
    then None
    else
      Some
        {
          Onll_faults.Faults.File_plan.base =
            { Onll_faults.Faults.Plan.none with seed };
          kill_at_fence;
          kill_after_sectors;
          fsync_eio_from;
          fsync_eio_count;
          drop_pages_on_eio = true;
          enospc_at_write;
          short_write_prob;
          kill_mode = Onll_faults.Faults.File_plan.Sigkill;
        }
  in
  let emit line =
    print_string line;
    print_newline ();
    flush stdout
  in
  match
    Fchaos.run_epoch ?fplan ~retry_budget ~backoff_ns ~emit ~dir ~replicas
      ~target ()
  with
  | Fchaos.Done _ -> exit 0
  | Fchaos.Degraded _ -> exit 3
  | Fchaos.Failed _ -> exit 4
  | Fchaos.Crashed ->
      (* Raise mode is never selected here; Sigkill never returns *)
      exit 5

let store_worker_cmd =
  let doc =
    "(harness internal) Run one epoch of the E17 counter workload against \
     a file-backed store: open the store, recover, resolve the in-doubt \
     session operation, submit increments to the target, narrating \
     RESOLUTION/ACK/DONE lines on stdout. The kill/fault flags arm the \
     file fault injector; with a kill armed the process SIGKILLs itself \
     mid-fence and the supervisor audits what the files hold."
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"store directory (must exist)")
  in
  let target =
    Arg.(
      value & opt int 8
      & info [ "target" ] ~docv:"N" ~doc:"counter value to reach")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ] ~docv:"R" ~doc:"mirror logs over R files")
  in
  let kill_at_fence =
    Arg.(
      value & opt int 0
      & info [ "kill-at-fence" ] ~docv:"N"
          ~doc:"SIGKILL self at the N-th persistent fence (0 = never)")
  in
  let kill_after_sectors =
    Arg.(
      value & opt int 0
      & info [ "kill-after-sectors" ] ~docv:"K"
          ~doc:
            "where inside that fence: 0 before any write, K>0 after K \
             sector writes, -1 at the fsync point")
  in
  let fsync_eio_from =
    Arg.(
      value & opt int 0
      & info [ "fsync-eio-from" ] ~docv:"N"
          ~doc:"first fsync (1-based) to fail with EIO (0 = never)")
  in
  let fsync_eio_count =
    Arg.(
      value & opt int 1
      & info [ "fsync-eio-count" ] ~docv:"N"
          ~doc:"how many consecutive fsyncs fail")
  in
  let enospc_at_write =
    Arg.(
      value & opt int 0
      & info [ "enospc-at-write" ] ~docv:"N"
          ~doc:"the N-th sector write raises ENOSPC (0 = never)")
  in
  let short_write_prob =
    Arg.(
      value & opt float 0.
      & info [ "short-write-prob" ] ~docv:"P"
          ~doc:"per-sector short (torn) write probability")
  in
  let seed =
    Arg.(
      value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"injector seed")
  in
  let retry_budget =
    Arg.(
      value & opt int 8
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:"fence write-back attempts before sticky degradation")
  in
  let backoff_ns =
    Arg.(
      value & opt int 0
      & info [ "backoff-ns" ] ~docv:"NS" ~doc:"base retry backoff (ns)")
  in
  Cmd.v (Cmd.info "worker" ~doc)
    Term.(
      const store_worker $ dir $ target $ replicas $ kill_at_fence
      $ kill_after_sectors $ fsync_eio_from $ fsync_eio_count
      $ enospc_at_write $ short_write_prob $ seed $ retry_budget $ backoff_ns)

let store_campaign seeds target dir keep =
  let base =
    match dir with
    | Some d ->
        if not (Sys.file_exists d) then Unix.mkdir d 0o755;
        d
    | None ->
        let d =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "onll-e17-campaign-%d" (Unix.getpid ()))
        in
        Unix.mkdir d 0o755;
        d
  in
  let cam =
    Fchaos.run_campaign ~worker:Sys.executable_name ~dir:base ~seeds ~target
  in
  Format.printf "e17 campaign: %a@." Fchaos.pp_campaign cam;
  List.iter
    (Printf.eprintf "violation: %s\n")
    (Fchaos.campaign_violations cam);
  if not keep then Fchaos.rm_rf base;
  if Fchaos.campaign_violations cam <> [] then exit 1

let store_campaign_cmd =
  let doc =
    "The E17 kill -9 crash campaign: spawn `onll store worker` \
     subprocesses against file-backed stores (plain and mirrored), \
     SIGKILL them at seeded fence points — before, during and after the \
     sector write-backs and at the fsync itself — rerun recovery in the \
     next spawn, and audit exactly-once: no acked update lost, no update \
     applied twice, fsync-EIO arms never ack past a failed fence. Exits \
     non-zero on any violation."
  in
  let seeds =
    Arg.(
      value & opt int 8
      & info [ "seeds" ] ~docv:"N" ~doc:"kill schedules per arm")
  in
  let target =
    Arg.(
      value & opt int 8
      & info [ "target" ] ~docv:"N" ~doc:"counter target per scenario")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"campaign scratch directory (default: under \\$TMPDIR)")
  in
  let keep =
    Arg.(
      value & flag
      & info [ "keep" ] ~doc:"keep the store directories for inspection")
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(const store_campaign $ seeds $ target $ dir $ keep)

let store_cmd =
  let doc =
    "The real file-backed store (E17): regions are files, a persistent \
     fence is fsync. Subcommands run one worker epoch or the full kill -9 \
     crash campaign."
  in
  Cmd.group (Cmd.info "store" ~doc) [ store_worker_cmd; store_campaign_cmd ]

(* {1 serve / load: the crash-tolerant network front-end (E18)} *)

let parse_construction s =
  match Onll_serve.Service.construction_of_string s with
  | Some c -> c
  | None ->
      Printf.eprintf
        "unknown construction %S (plain|mirrored|sharded|batched)\n" s;
      exit 2

let serve socket dir construction token max_clients oseq_block log_capacity
    idle_timeout_ms max_conns drain_grace_ms fence_ns retry_budget backoff_ns
    kill_at_fence kill_after_sectors fsync_eio_from fsync_eio_count
    enospc_at_write short_write_prob seed stats_out =
  let construction = parse_construction construction in
  let sink = Onll_obs.Sink.make () in
  let scfg =
    {
      (Onll_serve.Server.default_config ~socket_path:socket) with
      idle_timeout_ms;
      max_conns;
      drain_grace_ms;
      on_ready = (fun () -> Printf.printf "READY %s\n%!" socket);
    }
  in
  let finish ~degraded =
    (match stats_out with
    | Some path ->
        Onll_obs.Export.write_file ~path
          (Onll_obs.Export.json
             ~meta:
               [
                 ("experiment", "e18");
                 ( "construction",
                   Onll_serve.Service.construction_name construction );
               ]
             (Onll_obs.Sink.registry sink))
    | None -> ());
    exit (if degraded then 3 else 0)
  in
  match dir with
  | None ->
      (* in-memory backend: real durability semantics are the file
         machine's; this one serves SLO experiments with emulated fences *)
      let nat = Native.create ~fence_ns ~sink ~max_processes:1 () in
      ignore (Native.register nat);
      let module M = (val Native.machine nat) in
      let module Srv = Onll_serve.Server.Make (M) in
      let svc =
        Srv.Svc.make ~sink ~token ~max_clients ~oseq_block ?log_capacity
          construction
      in
      Srv.run svc scfg;
      finish ~degraded:false
  | Some dir ->
      if not (Sys.file_exists dir && Sys.is_directory dir) then begin
        Printf.eprintf "store directory %S does not exist\n" dir;
        exit 2
      end;
      let fmach =
        File_machine.create ~retry_budget ~backoff_ns ~sink ~dir
          ~max_processes:1 ()
      in
      let fplan =
        if
          kill_at_fence = 0 && fsync_eio_from = 0 && enospc_at_write = 0
          && short_write_prob = 0. && seed = 0
        then None
        else
          Some
            {
              Onll_faults.Faults.File_plan.base =
                { Onll_faults.Faults.Plan.none with seed };
              kill_at_fence;
              kill_after_sectors;
              fsync_eio_from;
              fsync_eio_count;
              drop_pages_on_eio = true;
              enospc_at_write;
              short_write_prob;
              kill_mode = Onll_faults.Faults.File_plan.Sigkill;
            }
      in
      let inj =
        Option.map
          (fun p ->
            Onll_faults.Faults.install_file (File_machine.memory fmach) p)
          fplan
      in
      ignore (File_machine.register fmach);
      let module M = (val File_machine.machine fmach) in
      let module Srv = Onll_serve.Server.Make (M) in
      let svc =
        Srv.Svc.make ~sink ~token ~max_clients ~oseq_block ?log_capacity
          construction
      in
      Srv.run svc scfg;
      let degraded = Srv.Svc.degraded svc in
      Option.iter Onll_faults.Faults.remove_file inj;
      File_machine.close fmach;
      finish ~degraded

let serve_cmd =
  let doc =
    "Serve the shared durable counter over a Unix-domain socket: one \
     durable session (exactly-once, single-fence) per authenticated \
     client, over any of the four constructions, on the in-memory machine \
     (SLO experiments) or the file-backed store (--dir; fsync fences, \
     crash-recoverable). Prints READY once listening; SIGTERM drains \
     gracefully — stop accepting, answer in-flight requests (refusing \
     not-yet-durable work), fence, exit. The kill/fault flags arm the \
     file fault injector for the E18 chaos campaign: the server SIGKILLs \
     itself mid-fence and the supervisor audits the survivors."
  in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"file-backed store directory (must exist); default in-memory")
  in
  let construction =
    Arg.(
      value & opt string "plain"
      & info [ "construction" ] ~docv:"C"
          ~doc:"plain | mirrored | sharded | batched")
  in
  let token =
    Arg.(
      value & opt string "onll"
      & info [ "token" ] ~docv:"TOKEN" ~doc:"shared authentication token")
  in
  let max_clients =
    Arg.(
      value & opt int 10_000
      & info [ "max-clients" ] ~docv:"N" ~doc:"served client-id range")
  in
  let oseq_block =
    Arg.(
      value & opt int 1024
      & info [ "oseq-block" ] ~docv:"N"
          ~doc:"object-seq identities reserved per allocator fence")
  in
  let log_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "log-capacity" ] ~docv:"N" ~doc:"shared object log capacity")
  in
  let idle_timeout_ms =
    Arg.(
      value & opt int 30_000
      & info [ "idle-timeout-ms" ] ~docv:"MS"
          ~doc:"reap connections idle this long (0 = never)")
  in
  let max_conns =
    Arg.(
      value & opt int 12_000
      & info [ "max-conns" ] ~docv:"N" ~doc:"connection cap")
  in
  let drain_grace_ms =
    Arg.(
      value & opt int 2_000
      & info [ "drain-grace-ms" ] ~docv:"MS"
          ~doc:"max flush time after SIGTERM")
  in
  let fence_ns =
    Arg.(
      value & opt int 500
      & info [ "fence-ns" ] ~docv:"NS"
          ~doc:"emulated fence duration (in-memory backend)")
  in
  let retry_budget =
    Arg.(
      value & opt int 8
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:"fence write-back attempts before sticky degradation")
  in
  let backoff_ns =
    Arg.(
      value & opt int 0
      & info [ "backoff-ns" ] ~docv:"NS" ~doc:"base retry backoff (ns)")
  in
  let kill_at_fence =
    Arg.(
      value & opt int 0
      & info [ "kill-at-fence" ] ~docv:"N"
          ~doc:"SIGKILL self at the N-th persistent fence (0 = never)")
  in
  let kill_after_sectors =
    Arg.(
      value & opt int 0
      & info [ "kill-after-sectors" ] ~docv:"K"
          ~doc:
            "where inside that fence: 0 before any write, K>0 after K \
             sector writes, -1 at the fsync point")
  in
  let fsync_eio_from =
    Arg.(
      value & opt int 0
      & info [ "fsync-eio-from" ] ~docv:"N"
          ~doc:"first fsync (1-based) to fail with EIO (0 = never)")
  in
  let fsync_eio_count =
    Arg.(
      value & opt int 1
      & info [ "fsync-eio-count" ] ~docv:"N"
          ~doc:"how many consecutive fsyncs fail")
  in
  let enospc_at_write =
    Arg.(
      value & opt int 0
      & info [ "enospc-at-write" ] ~docv:"N"
          ~doc:"the N-th sector write raises ENOSPC (0 = never)")
  in
  let short_write_prob =
    Arg.(
      value & opt float 0.
      & info [ "short-write-prob" ] ~docv:"P"
          ~doc:"per-sector short (torn) write probability")
  in
  let seed =
    Arg.(
      value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"injector seed")
  in
  let stats_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-out" ] ~docv:"FILE"
          ~doc:"write the serve.* metrics snapshot (JSON) on exit")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ socket $ dir $ construction $ token $ max_clients
      $ oseq_block $ log_capacity $ idle_timeout_ms $ max_conns
      $ drain_grace_ms $ fence_ns $ retry_budget $ backoff_ns $ kill_at_fence
      $ kill_after_sectors $ fsync_eio_from $ fsync_eio_count
      $ enospc_at_write $ short_write_prob $ seed $ stats_out)

let load socket clients first_client rate duration_ms seed token deadline_ms
    max_attempts backoff_base_ms backoff_cap_ms churn_every_ms churn_frac
    connect_timeout_ms tier base no_audit json_out =
  let open Onll_serve in
  let tier =
    match Protocol.tier_of_string tier with
    | Some t -> t
    | None ->
        Printf.eprintf
          "load: bad --tier %S (exactly-once | strict | stale:<k>)\n" tier;
        exit 1
  in
  let cfg =
    {
      Loadgen.socket_path = socket;
      clients;
      first_client;
      rate_hz = rate;
      duration_ms;
      seed;
      token;
      deadline_ms;
      max_attempts;
      backoff_base_ms;
      backoff_cap_ms;
      churn_every_ms;
      churn_frac;
      connect_timeout_ms;
      tier;
    }
  in
  let audit = Loadgen.Audit.create () in
  let rep = Loadgen.run ~audit cfg in
  Format.printf "e18 load: %a@." Loadgen.pp_report rep;
  Option.iter
    (fun path ->
      Onll_obs.Export.write_file ~path (Loadgen.report_to_json rep))
    json_out;
  if not no_audit then begin
    match rep.Loadgen.r_final_value with
    | None ->
        Printf.eprintf "audit: no final counter read (server unreachable)\n";
        exit 1
    | Some v ->
        let viols = Loadgen.Audit.check_final audit ~counter_value:(v - base) in
        List.iter (Printf.eprintf "violation: %s\n") viols;
        if viols <> [] then exit 1
  end

let load_cmd =
  let doc =
    "Open-loop load generator for `onll serve`: drive N concurrent \
     clients (poll(2), one process) with seeded exponential arrivals, \
     per-op deadlines, bounded backoff on shed, reconnect-and-resolve on \
     timeouts and resets, and optional disconnect/reattach churn floods. \
     Reports p50/p99/p999 arrival-to-confirm latency, shed rate and \
     goodput, then audits exactly-once against a direct counter read \
     (exit 1 on any duplicate apply or lost ack)."
  in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"server socket path")
  in
  let clients =
    Arg.(
      value & opt int 64
      & info [ "clients" ] ~docv:"N" ~doc:"concurrent clients")
  in
  let first_client =
    Arg.(
      value & opt int 0
      & info [ "first-client" ] ~docv:"ID" ~doc:"first client id")
  in
  let rate =
    Arg.(
      value & opt float 50.
      & info [ "rate" ] ~docv:"HZ" ~doc:"per-client arrival rate (ops/s)")
  in
  let duration_ms =
    Arg.(
      value & opt int 2_000
      & info [ "duration-ms" ] ~docv:"MS"
          ~doc:"issuing window (0 = resolve-only pass)")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"arrival seed")
  in
  let token =
    Arg.(
      value & opt string "onll"
      & info [ "token" ] ~docv:"TOKEN" ~doc:"authentication token")
  in
  let deadline_ms =
    Arg.(
      value & opt int 500
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"per-op deadline stamped on submits (0 = none)")
  in
  let max_attempts =
    Arg.(
      value & opt int 8
      & info [ "max-attempts" ] ~docv:"N" ~doc:"per-op shed-retry budget")
  in
  let backoff_base_ms =
    Arg.(
      value & opt int 1 & info [ "backoff-base-ms" ] ~docv:"MS" ~doc:"")
  in
  let backoff_cap_ms =
    Arg.(value & opt int 64 & info [ "backoff-cap-ms" ] ~docv:"MS" ~doc:"")
  in
  let churn_every_ms =
    Arg.(
      value & opt int 0
      & info [ "churn-every-ms" ] ~docv:"MS"
          ~doc:"disconnect/reattach flood period (0 = off)")
  in
  let churn_frac =
    Arg.(
      value & opt float 0.
      & info [ "churn-frac" ] ~docv:"F"
          ~doc:"fraction of connected clients hard-closed per flood")
  in
  let connect_timeout_ms =
    Arg.(
      value & opt int 3_000
      & info [ "connect-timeout-ms" ] ~docv:"MS"
          ~doc:"reconnect budget against a dead/restarting server")
  in
  let tier =
    Arg.(
      value
      & opt string "exactly-once"
      & info [ "tier" ] ~docv:"TIER"
          ~doc:
            "durability tier requested at Hello (E20): $(b,exactly-once) \
             (the default session contract), $(b,strict) (one fence per \
             update, no dedup) or $(b,stale:k) (fence-free acks, at most \
             k acknowledged updates at risk). The relaxed tiers waive \
             server-side dedup — combine with $(b,--no-audit) under \
             fault-heavy schedules.")
  in
  let base =
    Arg.(
      value & opt int 0
      & info [ "base" ] ~docv:"N"
          ~doc:"counter value before this run (audit subtracts it)")
  in
  let no_audit =
    Arg.(
      value & flag
      & info [ "no-audit" ]
          ~doc:"skip the exactly-once audit (e.g. store reused across runs)")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"write the report as JSON")
  in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(
      const load $ socket $ clients $ first_client $ rate $ duration_ms
      $ seed $ token $ deadline_ms $ max_attempts $ backoff_base_ms
      $ backoff_cap_ms $ churn_every_ms $ churn_frac $ connect_timeout_ms
      $ tier $ base $ no_audit $ json_out)

module Schaos = Test_support.Service_chaos

let service_campaign seeds dir keep =
  let base =
    match dir with
    | Some d ->
        if not (Sys.file_exists d) then Unix.mkdir d 0o755;
        d
    | None ->
        let d =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "onll-e18-campaign-%d" (Unix.getpid ()))
        in
        Unix.mkdir d 0o755;
        d
  in
  let cam = Schaos.run_campaign ~worker:Sys.executable_name ~dir:base ~seeds in
  Format.printf "e18 campaign: %a@." Schaos.pp_campaign cam;
  List.iter
    (Printf.eprintf "violation: %s\n")
    (Schaos.campaign_violations cam);
  if not keep then Schaos.rm_rf base;
  if Schaos.campaign_violations cam <> [] then exit 1

let service_campaign_cmd =
  let doc =
    "The E18 fault-storm campaign: spawn `onll serve` subprocesses over \
     real sockets and file-backed stores, drive them with the open-loop \
     load generator, SIGKILL the server mid-fence at seeded points \
     (plain and mirrored), flood it with disconnect/reattach churn, land \
     SIGTERM mid-load, and drill sticky media degradation — then resolve \
     every in-doubt operation against a clean restart and audit \
     exactly-once: 0 duplicate applies, 0 lost acks. Exits non-zero on \
     any violation."
  in
  let seeds =
    Arg.(
      value & opt int 8
      & info [ "seeds" ] ~docv:"N" ~doc:"kill schedules per arm")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"campaign scratch directory (default: under \\$TMPDIR)")
  in
  let keep =
    Arg.(
      value & flag
      & info [ "keep" ] ~doc:"keep the store directories for inspection")
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(const service_campaign $ seeds $ dir $ keep)

let service_cmd =
  let doc =
    "The crash-tolerant network front-end (E18): campaign and drills \
     around `onll serve` / `onll load`."
  in
  Cmd.group (Cmd.info "service" ~doc) [ service_campaign_cmd ]

(* {1 simulate} *)

let simulate procs ops seed crash_at =
  let sim = Sim.create ~max_processes:procs ~trace_log:true () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let events = ref [] in
  let body p _ =
    for k = 1 to ops do
      let v = C.update obj Cs.Increment in
      events := Printf.sprintf "p%d: update #%d returned %d" p k v :: !events
    done
  in
  let strategy =
    match crash_at with
    | None -> Onll_sched.Sched.Strategy.random ~seed
    | Some n ->
        Onll_sched.Sched.Strategy.random_with_crash ~seed ~crash_at_step:n
  in
  let outcome = Sim.run sim strategy (Array.init procs (fun p -> body p)) in
  Printf.printf "schedule (proc, primitive):\n  ";
  List.iteri
    (fun i (p, l) ->
      if i > 0 && i mod 8 = 0 then Printf.printf "\n  ";
      Printf.printf "p%d:%-10s " p (Onll_sched.Sched.label_to_string l))
    (Onll_sched.Sched.World.trace (Sim.world sim));
  Printf.printf "\n\ncompletions (in real-time order):\n";
  List.iter (Printf.printf "  %s\n") (List.rev !events);
  (match outcome with
  | Onll_sched.Sched.World.Crashed ->
      Printf.printf "\n*** CRASH ***\n";
      C.recover obj;
      Printf.printf "recovered value: %d\n" (C.read obj Cs.Get);
      Printf.printf "recovered operations:\n";
      List.iter
        (fun (id, idx) ->
          Format.printf "  idx %d: %a@." idx Onll_core.Onll.pp_op_id id)
        (C.recovered_ops obj)
  | Onll_sched.Sched.World.Completed ->
      Printf.printf "\ncompleted; value: %d\n" (C.read obj Cs.Get)
  | Onll_sched.Sched.World.Stopped m -> Printf.printf "stopped: %s\n" m);
  let stats = Sim.stats sim in
  Format.printf "machine: %a@." Onll_nvm.Memory.Stats.pp stats

let simulate_cmd =
  let doc =
    "Run a counter workload under a seeded schedule and narrate every \
     scheduling step, completion, and (optionally) the crash + recovery."
  in
  let procs =
    Arg.(value & opt int 2 & info [ "p"; "procs" ] ~docv:"N" ~doc:"processes")
  in
  let ops =
    Arg.(
      value & opt int 2 & info [ "u"; "ops" ] ~docv:"N" ~doc:"updates each")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"schedule seed")
  in
  let crash_at =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-at" ] ~docv:"STEP" ~doc:"inject a crash at this step")
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const simulate $ procs $ ops $ seed $ crash_at)

let () =
  let doc =
    "ONLL: durable universal construction for non-volatile memory \
     (reproduction of Cohen, Guerraoui & Zablotchi, SPAA'18)"
  in
  let info = Cmd.info "onll" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figure1_cmd;
            rationale_cmd;
            explore_cmd;
            lowerbound_cmd;
            fuzz_cmd;
            chaos_cmd;
            scrub_cmd;
            txn_cmd;
            session_cmd;
            fences_cmd;
            stats_cmd;
            store_cmd;
            serve_cmd;
            load_cmd;
            service_cmd;
            simulate_cmd;
          ]))
