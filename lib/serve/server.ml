(* Socket shell (see server.mli). *)

let now_ns () = Int64.to_int (Onll_machine.Native.monotonic_ns ())
let now_ms () = now_ns () / 1_000_000

(* Process-global so the SIGTERM handler needs no server handle. *)
let drain_requested = ref false
let request_drain () = drain_requested := true

type config = {
  socket_path : string;
  idle_timeout_ms : int;
  max_conns : int;
  drain_grace_ms : int;
  on_ready : unit -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    idle_timeout_ms = 30_000;
    max_conns = 12_000;
    drain_grace_ms = 2_000;
    on_ready = ignore;
  }

module Make (M : Onll_machine.Machine_sig.S) = struct
  module Svc = Service.Make (M)

  type conn = {
    fd : Unix.file_descr;
    inb : Protocol.Inbuf.t;
    out : Buffer.t;
    mutable out_off : int;  (* bytes of [out] already written *)
    sconn : Svc.conn;
    mutable last_ms : int;
    mutable close_after_flush : bool;
  }

  external fd_int : Unix.file_descr -> int = "%identity"

  let out_pending c = Buffer.length c.out - c.out_off

  (* Flush as much of the response buffer as the socket accepts. *)
  let flush_out c =
    let n = out_pending c in
    if n > 0 then begin
      let s = Buffer.to_bytes c.out in
      match Unix.write c.fd s c.out_off n with
      | written ->
          c.out_off <- c.out_off + written;
          if out_pending c = 0 then begin
            Buffer.clear c.out;
            c.out_off <- 0
          end
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
          c.close_after_flush <- true;
          Buffer.clear c.out;
          c.out_off <- 0
    end

  let run svc cfg =
    let conns : (int, conn) Hashtbl.t = Hashtbl.create 1024 in
    let listener = Unix.socket PF_UNIX SOCK_STREAM 0 in
    let prev_term =
      Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_drain ()))
    in
    let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    drain_requested := false;
    (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
    Unix.bind listener (ADDR_UNIX cfg.socket_path);
    Unix.listen listener 1024;
    Unix.set_nonblock listener;
    cfg.on_ready ();
    let poll = Netpoll.create ~initial:1024 () in
    let scratch = Bytes.create 65536 in
    let listening = ref true in
    let drain_deadline = ref max_int in
    let close_conn c =
      Hashtbl.remove conns (fd_int c.fd);
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    in
    let accept_new now =
      let continue = ref true in
      while !continue do
        match Unix.accept ~cloexec:true listener with
        | fd, _ ->
            if Hashtbl.length conns >= cfg.max_conns then Unix.close fd
            else begin
              Unix.set_nonblock fd;
              Hashtbl.replace conns (fd_int fd)
                {
                  fd;
                  inb = Protocol.Inbuf.create ();
                  out = Buffer.create 256;
                  out_off = 0;
                  sconn = Svc.conn ();
                  last_ms = now;
                  close_after_flush = false;
                }
            end
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            continue := false
        | exception Unix.Unix_error (EINTR, _, _) -> ()
      done
    in
    (* Drain every complete frame currently buffered on [c]. The deadline
       check runs here, before the service core ever sees the request, so
       an expired submit is shed with zero durable work. *)
    let handle_frames c =
      let continue = ref true in
      while !continue do
        match Protocol.Inbuf.pop c.inb Protocol.req_codec with
        | None -> continue := false
        | Some req ->
            let resp =
              match req with
              | Protocol.Submit { deadline_ns; _ }
                when deadline_ns > 0 && now_ns () > deadline_ns ->
                  Protocol.Refused Protocol.R_timeout
              | req -> Svc.handle svc c.sconn req
            in
            Protocol.write_frame c.out Protocol.resp_codec resp;
            if req = Protocol.Bye then begin
              c.close_after_flush <- true;
              continue := false
            end
        | exception
            ( Protocol.Inbuf.Oversized_frame | Onll_util.Codec.Decode_error _ )
          ->
            c.close_after_flush <- true;
            continue := false
      done
    in
    let read_conn c now =
      let continue = ref true in
      while !continue do
        match Unix.read c.fd scratch 0 (Bytes.length scratch) with
        | 0 ->
            c.close_after_flush <- true;
            continue := false
        | n ->
            c.last_ms <- now;
            Protocol.Inbuf.add c.inb scratch n;
            if n < Bytes.length scratch then continue := false
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            continue := false
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
            c.close_after_flush <- true;
            continue := false
      done;
      handle_frames c;
      flush_out c
    in
    let finished = ref false in
    while not !finished do
      (* entering drain: stop accepting, refuse new durable work, flush *)
      if !drain_requested && not (Svc.draining svc) then begin
        Svc.drain svc;
        if !listening then begin
          listening := false;
          (try Unix.close listener with Unix.Unix_error _ -> ());
          (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
        end;
        drain_deadline := now_ms () + cfg.drain_grace_ms;
        (* answer everything already buffered (the in-flight ops): each
           gets a definite response — R_draining for new work *)
        Hashtbl.iter
          (fun _ c ->
            handle_frames c;
            flush_out c)
          conns
      end;
      Netpoll.clear poll;
      if !listening then Netpoll.add poll listener Netpoll.pollin;
      Hashtbl.iter
        (fun _ c ->
          let interest =
            Netpoll.pollin
            lor (if out_pending c > 0 then Netpoll.pollout else 0)
          in
          Netpoll.add poll c.fd interest)
        conns;
      let _n = Netpoll.wait poll ~timeout_ms:100 in
      let now = now_ms () in
      Netpoll.ready poll (fun fd revents ->
          if !listening && fd_int fd = fd_int listener then accept_new now
          else
            match Hashtbl.find_opt conns (fd_int fd) with
            | None -> ()
            | Some c ->
                if revents land Netpoll.pollerr <> 0 then
                  c.close_after_flush <- true
                else begin
                  if revents land Netpoll.pollin <> 0 then read_conn c now;
                  if revents land Netpoll.pollout <> 0 then flush_out c
                end);
      (* reap: closed-after-flush connections whose buffers emptied, and
         idle connections past the timeout *)
      let doomed = ref [] in
      Hashtbl.iter
        (fun _ c ->
          if c.close_after_flush && out_pending c = 0 then
            doomed := c :: !doomed
          else if
            cfg.idle_timeout_ms > 0
            && (not (Svc.draining svc))
            && now - c.last_ms > cfg.idle_timeout_ms
          then doomed := c :: !doomed)
        conns;
      List.iter close_conn !doomed;
      if Svc.draining svc then begin
        let still_flushing = ref false in
        Hashtbl.iter
          (fun _ c -> if out_pending c > 0 then still_flushing := true)
          conns;
        if (not !still_flushing) || now > !drain_deadline then
          finished := true
      end
    done;
    Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      conns;
    Hashtbl.reset conns;
    if !listening then begin
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ()
    end;
    (* the last durable action: nothing is acked after this fence *)
    Svc.quiesce svc;
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigpipe prev_pipe
end
