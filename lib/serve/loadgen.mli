(** `onll load`: an open-loop load generator for {!Server}.

    Drives [clients] concurrent connections from one process (poll(2)
    event loop, nonblocking sockets). Arrivals are {e open-loop}: each
    client draws exponential inter-arrival gaps from its own seeded
    stream, independent of responses, so latency includes queueing delay
    when the server falls behind — the honest regime for SLO numbers.
    Reported latency is arrival→confirmation in microseconds
    (p50/p99/p999), plus shed rate and goodput (confirmed ops per
    second).

    The client side implements the full robustness contract:
    {ul
    {- bounded exponential backoff with seeded jitter on
       {!Protocol.refusal.R_overloaded} (same op, same seq — shedding is
       definite);}
    {- reconnect-and-resolve on {!Protocol.refusal.R_timeout}, degraded
       refusals, connection resets and server restarts: the client
       re-Hellos and applies the {!Protocol.resp.Attached} resolution
       rule, so an in-doubt operation is adopted or re-invoked, never
       blindly re-submitted;}
    {- optional churn floods: every [churn_every_ms], a seeded
       [churn_frac] of connected clients hard-close and reattach —
       the disconnect/reattach storm of the E18 campaign.}}

    The {!Audit} accumulates the exactly-once evidence across {e runs}
    (a kill-restart campaign runs several passes over one store): every
    confirmation is (client, seq)-keyed and must happen at most once;
    unresolved in-doubt operations carry over to the next pass. *)

module Audit : sig
  type t

  val create : unit -> t

  val confirmed : t -> int  (** distinct (client, seq) ops confirmed *)

  val duplicates : t -> int  (** (client, seq) confirmed twice — must be 0 *)

  val unresolved : t -> int  (** ops still in doubt (carry to next pass) *)

  val max_outstanding_client : t -> int
  (** Highest client id with an in-doubt op ([-1] if none) — a
      resolve-only pass must span at least this many clients or it
      cannot resolve everything. *)

  val check_final : t -> counter_value:int -> string list
  (** The end-of-campaign verdict, given a direct read of the counter
      after every client resolved: value > confirmed is a duplicate (or
      phantom) apply, value < confirmed is a lost acked update; any
      still-unresolved op is a violation. Empty = clean. *)
end

type config = {
  socket_path : string;
  clients : int;
  first_client : int;  (** client ids are [first_client ..  +clients-1] *)
  rate_hz : float;  (** per-client open-loop arrival rate *)
  duration_ms : int;  (** issuing window; 0 = resolve-only pass *)
  seed : int;
  token : string;
  deadline_ms : int;  (** per-op deadline stamped on submits; 0 = none *)
  max_attempts : int;  (** per-op shed-retry budget *)
  backoff_base_ms : int;
  backoff_cap_ms : int;
  churn_every_ms : int;  (** 0 = no churn *)
  churn_frac : float;
  connect_timeout_ms : int;
      (** per-connection budget for connect/Hello retries against a dead
          or restarting server before the pass gives up on it *)
  tier : Protocol.tier;
      (** durability tier every client asks for at Hello (E20). The
          relaxed tiers waive the server-side dedup: a retry after an
          indeterminate refusal may double-apply, so drive them with the
          exactly-once audit disabled (or fault-free). *)
}

val default_config : socket_path:string -> config
(** 64 clients, 50 ops/s each, 2 s, seed 1, deadline 500 ms, 8 attempts,
    backoff 1→64 ms, no churn, exactly-once tier. *)

type report = {
  r_sent : int;  (** submit frames written *)
  r_confirmed : int;  (** ops confirmed during this pass *)
  r_acked : int;  (** direct protocol acks among them *)
  r_adopted : int;  (** confirmed via reattach resolution/cursor *)
  r_reinvoked : int;
  r_shed : int;  (** R_overloaded refusals *)
  r_timeouts : int;
  r_degraded : int;
  r_draining : int;
  r_bad_seq : int;
  r_aborted : int;  (** ops given up (shed budget, degraded policy) *)
  r_dropped_arrivals : int;  (** arrivals never submitted (pass ended) *)
  r_reconnects : int;
  r_conn_failures : int;  (** connections that never re-established *)
  r_unresolved : int;  (** in doubt at pass end *)
  r_wall_ms : int;
  r_p50_us : int;
  r_p99_us : int;
  r_p999_us : int;
  r_goodput : float;  (** confirmed ops / wall second *)
  r_shed_rate : float;  (** shed / (shed + confirmed + aborted) *)
  r_final_value : int option;  (** counter read at pass end, if readable *)
}

val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> string

val run : ?audit:Audit.t -> config -> report
(** One pass. With [duration_ms = 0] no new operations are issued: every
    client attaches, resolves what the audit says is in doubt, and one
    client reads the final counter value — the campaign's resolution
    pass after a server kill. *)
