(* Open-loop load generator (see loadgen.mli). *)

module Splitmix = Onll_util.Splitmix

let now_ns () = Int64.to_int (Onll_machine.Native.monotonic_ns ())

external fd_int : Unix.file_descr -> int = "%identity"

(* {1 The cross-pass exactly-once audit} *)

module Audit = struct
  type t = {
    confirmed : (int * int, unit) Hashtbl.t;  (* (client, seq) *)
    outstanding : (int, int) Hashtbl.t;  (* client -> in-doubt seq *)
    mutable dups : int;
    mutable violations : string list;
  }

  let create () =
    {
      confirmed = Hashtbl.create 4096;
      outstanding = Hashtbl.create 64;
      dups = 0;
      violations = [];
    }

  let violation a fmt =
    Printf.ksprintf (fun s -> a.violations <- s :: a.violations) fmt

  let confirm a ~client ~seq =
    let key = (client, seq) in
    if Hashtbl.mem a.confirmed key then begin
      a.dups <- a.dups + 1;
      violation a "client %d seq %d confirmed twice (duplicate)" client seq
    end
    else Hashtbl.replace a.confirmed key ();
    Hashtbl.remove a.outstanding client

  let abort a ~client = Hashtbl.remove a.outstanding client
  let in_doubt a ~client ~seq = Hashtbl.replace a.outstanding client seq
  let confirmed a = Hashtbl.length a.confirmed
  let duplicates a = a.dups
  let unresolved a = Hashtbl.length a.outstanding

  let max_outstanding_client a =
    Hashtbl.fold (fun c _ acc -> max c acc) a.outstanding (-1)

  let check_final a ~counter_value =
    let v = a.violations in
    let v =
      if Hashtbl.length a.outstanding > 0 then
        Printf.sprintf "%d operations left unresolved"
          (Hashtbl.length a.outstanding)
        :: v
      else v
    in
    let n = Hashtbl.length a.confirmed in
    let v =
      if counter_value > n then
        Printf.sprintf "counter %d exceeds %d confirmed ops (duplicate apply)"
          counter_value n
        :: v
      else if counter_value < n then
        Printf.sprintf "counter %d below %d confirmed ops (lost acked update)"
          counter_value n
        :: v
      else v
    in
    List.rev v
end

(* {1 Config and report} *)

type config = {
  socket_path : string;
  clients : int;
  first_client : int;
  rate_hz : float;
  duration_ms : int;
  seed : int;
  token : string;
  deadline_ms : int;
  max_attempts : int;
  backoff_base_ms : int;
  backoff_cap_ms : int;
  churn_every_ms : int;
  churn_frac : float;
  connect_timeout_ms : int;
  tier : Protocol.tier;
}

let default_config ~socket_path =
  {
    socket_path;
    clients = 64;
    first_client = 0;
    rate_hz = 50.;
    duration_ms = 2_000;
    seed = 1;
    token = "onll";
    deadline_ms = 500;
    max_attempts = 8;
    backoff_base_ms = 1;
    backoff_cap_ms = 64;
    churn_every_ms = 0;
    churn_frac = 0.;
    connect_timeout_ms = 3_000;
    tier = Protocol.T_exactly_once;
  }

type report = {
  r_sent : int;
  r_confirmed : int;
  r_acked : int;
  r_adopted : int;
  r_reinvoked : int;
  r_shed : int;
  r_timeouts : int;
  r_degraded : int;
  r_draining : int;
  r_bad_seq : int;
  r_aborted : int;
  r_dropped_arrivals : int;
  r_reconnects : int;
  r_conn_failures : int;
  r_unresolved : int;
  r_wall_ms : int;
  r_p50_us : int;
  r_p99_us : int;
  r_p999_us : int;
  r_goodput : float;
  r_shed_rate : float;
  r_final_value : int option;
}

let pp_report ppf r =
  Format.fprintf ppf
    "sent=%d confirmed=%d (acked=%d adopted=%d reinvoked=%d) shed=%d \
     timeouts=%d degraded=%d draining=%d bad_seq=%d aborted=%d dropped=%d \
     reconnects=%d conn_failures=%d unresolved=%d wall=%dms p50=%dus \
     p99=%dus p999=%dus goodput=%.1f/s shed_rate=%.4f%s"
    r.r_sent r.r_confirmed r.r_acked r.r_adopted r.r_reinvoked r.r_shed
    r.r_timeouts r.r_degraded r.r_draining r.r_bad_seq r.r_aborted
    r.r_dropped_arrivals r.r_reconnects r.r_conn_failures r.r_unresolved
    r.r_wall_ms r.r_p50_us r.r_p99_us r.r_p999_us r.r_goodput r.r_shed_rate
    (match r.r_final_value with
    | None -> ""
    | Some v -> Printf.sprintf " final=%d" v)

let report_to_json r =
  let b = Buffer.create 512 in
  let field ?(last = false) k v =
    Buffer.add_string b
      (Printf.sprintf "  %S: %s%s\n" k v (if last then "" else ","))
  in
  Buffer.add_string b "{\n";
  field "sent" (string_of_int r.r_sent);
  field "confirmed" (string_of_int r.r_confirmed);
  field "acked" (string_of_int r.r_acked);
  field "adopted" (string_of_int r.r_adopted);
  field "reinvoked" (string_of_int r.r_reinvoked);
  field "shed" (string_of_int r.r_shed);
  field "timeouts" (string_of_int r.r_timeouts);
  field "degraded" (string_of_int r.r_degraded);
  field "draining" (string_of_int r.r_draining);
  field "bad_seq" (string_of_int r.r_bad_seq);
  field "aborted" (string_of_int r.r_aborted);
  field "dropped_arrivals" (string_of_int r.r_dropped_arrivals);
  field "reconnects" (string_of_int r.r_reconnects);
  field "conn_failures" (string_of_int r.r_conn_failures);
  field "unresolved" (string_of_int r.r_unresolved);
  field "wall_ms" (string_of_int r.r_wall_ms);
  field "p50_us" (string_of_int r.r_p50_us);
  field "p99_us" (string_of_int r.r_p99_us);
  field "p999_us" (string_of_int r.r_p999_us);
  field "goodput_ops_s" (Printf.sprintf "%.3f" r.r_goodput);
  field "shed_rate" (Printf.sprintf "%.6f" r.r_shed_rate);
  field ~last:true "final_value"
    (match r.r_final_value with None -> "null" | Some v -> string_of_int v);
  Buffer.add_string b "}\n";
  Buffer.contents b

(* {1 Per-client state machine} *)

type pending = {
  mutable seq : int;  (* -1 until first submitted *)
  arrival_ns : int;  (* 0 for ops carried over from a previous pass *)
  mutable attempts : int;
  mutable abort_on_resolve : bool;
      (* degraded refusal: resolve the fate, then stop retrying *)
}

type phase =
  | Sleeping of int  (* reconnect at this timestamp (ns) *)
  | Connecting
  | Hello_wait
  | Ready
  | Ack_wait
  | Backoff_submit of int  (* resubmit the pending op at ns *)
  | Fetch_wait
  | Bye_wait
  | Finished

type client = {
  id : int;
  rng : Splitmix.t;
  mutable fd : Unix.file_descr option;
  inb : Protocol.Inbuf.t;
  out : Buffer.t;
  mutable out_off : int;
  mutable phase : phase;
  mutable next_seq : int;  (* the server's cursor, as last told *)
  mutable op : pending option;
  arrivals : int Queue.t;  (* arrival timestamps not yet submitted *)
  mutable next_arrival_ns : int;
  mutable conn_attempts : int;
  mutable conn_started_ns : int;  (* first failed connect of this outage *)
  mutable reader : bool;  (* performs the final counter read *)
  mutable got_value : int option;
}

type totals = {
  mutable sent : int;
  mutable acked : int;
  mutable adopted : int;
  mutable reinvoked : int;
  mutable shed : int;
  mutable timeouts : int;
  mutable degraded : int;
  mutable draining : int;
  mutable bad_seq : int;
  mutable aborted : int;
  mutable dropped : int;
  mutable reconnects : int;
  mutable conn_failures : int;
  mutable confirmed_this_pass : int;
}

let run ?audit cfg =
  (* writes race the server closing fds (shed, idle reap, crash arms):
     without this an unlucky write kills the whole generator with
     SIGPIPE instead of surfacing the per-connection EPIPE handled
     below *)
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev_pipe)
  @@ fun () ->
  let audit = match audit with Some a -> a | None -> Audit.create () in
  let t =
    {
      sent = 0; acked = 0; adopted = 0; reinvoked = 0; shed = 0;
      timeouts = 0; degraded = 0; draining = 0; bad_seq = 0; aborted = 0;
      dropped = 0; reconnects = 0; conn_failures = 0;
      confirmed_this_pass = 0;
    } [@ocamlformat "disable"]
  in
  let lats = ref (Array.make 4096 0) in
  let nlat = ref 0 in
  let record_latency ns =
    if !nlat = Array.length !lats then begin
      let bigger = Array.make (2 * !nlat) 0 in
      Array.blit !lats 0 bigger 0 !nlat;
      lats := bigger
    end;
    !lats.(!nlat) <- ns / 1000;
    incr nlat
  in
  let start_ns = now_ns () in
  let t_end = start_ns + (cfg.duration_ms * 1_000_000) in
  let pass_deadline =
    t_end + (max cfg.connect_timeout_ms 1_000 * 1_000_000)
  in
  let clients =
    Array.init cfg.clients (fun i ->
        let id = cfg.first_client + i in
        let rng = Splitmix.create (cfg.seed + (id * 7919)) in
        let first_gap =
          if cfg.duration_ms = 0 || cfg.rate_hz <= 0. then max_int
          else int_of_float (Splitmix.float rng (2e9 /. cfg.rate_hz))
        in
        {
          id;
          rng;
          fd = None;
          inb = Protocol.Inbuf.create ();
          out = Buffer.create 128;
          out_off = 0;
          phase = Sleeping start_ns;
          next_seq = 0;
          op =
            (match Hashtbl.find_opt audit.Audit.outstanding id with
            | Some seq ->
                Some
                  { seq; arrival_ns = 0; attempts = 0;
                    abort_on_resolve = false }
            | None -> None);
          arrivals = Queue.create ();
          next_arrival_ns =
            (if first_gap = max_int then max_int else start_ns + first_gap);
          conn_attempts = 0;
          conn_started_ns = 0;
          reader = i = 0;
          got_value = None;
        })
  in
  let by_fd : (int, client) Hashtbl.t = Hashtbl.create (cfg.clients * 2) in
  let out_pending c = Buffer.length c.out - c.out_off in
  let send c codec msg = Protocol.write_frame c.out codec msg in
  let close_fd c =
    (match c.fd with
    | Some fd ->
        Hashtbl.remove by_fd (fd_int fd);
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    c.fd <- None;
    Buffer.clear c.out;
    c.out_off <- 0
  in
  let backoff_ns c attempt =
    let base =
      min
        (cfg.backoff_base_ms * (1 lsl min (max (attempt - 1) 0) 20))
        cfg.backoff_cap_ms
    in
    (base + Splitmix.int c.rng (base + 1)) * 1_000_000
  in
  (* Give up on this client's connection for the pass; its in-doubt op
     (if any) carries over through the audit. *)
  let give_up c =
    close_fd c;
    t.conn_failures <- t.conn_failures + 1;
    (match c.op with
    | Some op when op.seq >= 0 -> Audit.in_doubt audit ~client:c.id ~seq:op.seq
    | _ -> ());
    c.phase <- Finished
  in
  let reconnect ?(delay_ns = 0) c =
    close_fd c;
    t.reconnects <- t.reconnects + 1;
    if c.conn_attempts = 0 then c.conn_started_ns <- now_ns ();
    c.phase <- Sleeping (now_ns () + delay_ns)
  in
  let finish_op c ~confirm_kind =
    (match c.op with
    | None -> ()
    | Some op ->
        Audit.confirm audit ~client:c.id ~seq:op.seq;
        t.confirmed_this_pass <- t.confirmed_this_pass + 1;
        (match confirm_kind with
        | `Acked -> t.acked <- t.acked + 1
        | `Adopted -> t.adopted <- t.adopted + 1
        | `Reinvoked -> t.reinvoked <- t.reinvoked + 1);
        if op.arrival_ns > 0 then record_latency (now_ns () - op.arrival_ns));
    c.op <- None
  in
  let abort_op c =
    (match c.op with
    | Some _ ->
        t.aborted <- t.aborted + 1;
        Audit.abort audit ~client:c.id
    | None -> ());
    c.op <- None
  in
  let submit_op c =
    match c.op with
    | None -> ()
    | Some op ->
        if op.seq < 0 then op.seq <- c.next_seq;
        let deadline_ns =
          if cfg.deadline_ms = 0 || op.arrival_ns = 0 then 0
          else op.arrival_ns + (cfg.deadline_ms * 1_000_000)
        in
        send c Protocol.req_codec
          (Protocol.Submit
             {
               seq = op.seq;
               deadline_ns;
               op =
                 Onll_util.Codec.encode Onll_specs.Counter.update_codec
                   Onll_specs.Counter.Increment;
             });
        t.sent <- t.sent + 1;
        c.phase <- Ack_wait
  in
  let start_connect c now =
    let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    c.fd <- Some fd;
    Hashtbl.replace by_fd (fd_int fd) c;
    match Unix.connect fd (ADDR_UNIX cfg.socket_path) with
    | () ->
        send c Protocol.req_codec
          (Protocol.Hello { client = c.id; token = cfg.token; tier = cfg.tier });
        c.phase <- Hello_wait
    | exception Unix.Unix_error (EINPROGRESS, _, _) -> c.phase <- Connecting
    | exception
        Unix.Unix_error ((ECONNREFUSED | ENOENT | EAGAIN | EINTR), _, _) ->
        close_fd c;
        c.conn_attempts <- c.conn_attempts + 1;
        if c.conn_attempts = 1 then c.conn_started_ns <- now;
        if
          now - c.conn_started_ns
          > cfg.connect_timeout_ms * 1_000_000
        then give_up c
        else c.phase <- Sleeping (now + backoff_ns c c.conn_attempts)
  in
  (* Wind-down: the issuing window is over and this client has nothing
     left in flight — read (if the designated reader) and say goodbye.
     The reader holds its counter read until every other client is past
     durable work (Bye sent or gone): a re-attach resolution can still
     re-invoke an in-doubt op server-side, and a read taken before it
     lands would under-count ops the audit rightly treats as confirmed. *)
  let wind_down c =
    match c.fd with
    | None -> c.phase <- Finished
    | Some _ ->
        if c.reader && c.got_value = None then begin
          if
            Array.for_all
              (fun c' ->
                c' == c
                || match c'.phase with Bye_wait | Finished -> true | _ -> false)
              clients
          then begin
            send c Protocol.req_codec (Protocol.Fetch { op = "" });
            c.phase <- Fetch_wait
          end
          (* else stay Ready; re-checked on the next tick *)
        end
        else begin
          send c Protocol.req_codec Protocol.Bye;
          c.phase <- Bye_wait
        end
  in
  let on_resp c now (resp : Protocol.resp) =
    match resp with
    | Protocol.Attached { next_seq; acked = _; resolution } -> (
        c.next_seq <- next_seq;
        c.conn_attempts <- 0;
        c.phase <- Ready;
        match c.op with
        | None -> ()
        | Some op when op.seq < 0 -> ()  (* never submitted; Ready submits *)
        | Some op -> (
            (* the resolved in-doubt operation is the session's last
               durable intent, i.e. session seq [next_seq - 1]. A
               resolution about any OTHER (older, already-acked) op must
               not be trusted for ours: recovery re-reports [W_applied]
               for an op applied but not yet durably acked, and blindly
               adopting it would phantom-confirm our newer op *)
            let names_op = op.seq = next_seq - 1 in
            match resolution with
            | Protocol.W_applied _ when names_op ->
                finish_op c ~confirm_kind:`Adopted
            | Protocol.W_reinvoked _ when names_op ->
                finish_op c ~confirm_kind:`Reinvoked
            | Protocol.W_refused _ when names_op ->
                (* degradation policy withheld it: definitely not applied *)
                abort_op c
            | Protocol.W_unresolved _ when names_op ->
                (* still in doubt (faults raging); re-attach later *)
                reconnect ~delay_ns:(backoff_ns c (op.attempts + 1)) c;
                op.attempts <- op.attempts + 1;
                if op.attempts >= cfg.max_attempts then give_up c
            | _ ->
                if op.seq < next_seq then
                  (* applied and session-acked; only the protocol ack was
                     lost *)
                  finish_op c ~confirm_kind:`Adopted
                else if op.abort_on_resolve then abort_op c
                else op.seq <- next_seq (* resubmitted by Ready below *)))
    | Protocol.Acked { seq; value = _ } ->
        c.next_seq <- seq + 1;
        finish_op c ~confirm_kind:`Acked;
        c.phase <- Ready
    | Protocol.Refused r -> (
        match r with
        | Protocol.R_overloaded -> (
            t.shed <- t.shed + 1;
            match c.op with
            | None -> c.phase <- Ready
            | Some op ->
                op.attempts <- op.attempts + 1;
                if op.attempts >= cfg.max_attempts then begin
                  (* shedding is definite: the op never went durable *)
                  abort_op c;
                  c.phase <- Ready
                end
                else
                  c.phase <-
                    Backoff_submit (now + backoff_ns c op.attempts))
        | Protocol.R_timeout ->
            t.timeouts <- t.timeouts + 1;
            (* indeterminate: resolve by re-attaching *)
            (match c.op with
            | Some op when op.seq >= 0 ->
                op.attempts <- op.attempts + 1;
                if op.attempts >= cfg.max_attempts then give_up c
                else reconnect ~delay_ns:(backoff_ns c op.attempts) c
            | _ -> c.phase <- Ready)
        | Protocol.R_degraded ->
            t.degraded <- t.degraded + 1;
            (match c.op with
            | Some op when op.seq >= 0 ->
                (* fate unknown; resolve once, then stop writing *)
                op.abort_on_resolve <- true;
                reconnect ~delay_ns:(backoff_ns c 1) c
            | _ ->
                abort_op c;
                c.phase <- Ready)
        | Protocol.R_draining ->
            (* definite refusal before durable work; server is leaving *)
            t.draining <- t.draining + 1;
            abort_op c;
            close_fd c;
            c.phase <- Finished
        | Protocol.R_bad_seq expected ->
            t.bad_seq <- t.bad_seq + 1;
            c.next_seq <- expected;
            (match c.op with
            | Some op -> op.seq <- expected
            | None -> ());
            c.phase <- Ready
        | Protocol.R_not_attached ->
            send c Protocol.req_codec
              (Protocol.Hello { client = c.id; token = cfg.token; tier = cfg.tier });
            c.phase <- Hello_wait
        | Protocol.R_bad_token | Protocol.R_bad_client | Protocol.R_bad_op
        | Protocol.R_bad_tier ->
            give_up c)
    | Protocol.Got v ->
        c.got_value <- Some v;
        send c Protocol.req_codec Protocol.Bye;
        c.phase <- Bye_wait
    | Protocol.Pong -> ()
    | Protocol.Gone ->
        close_fd c;
        c.phase <- Finished
  in
  let scratch = Bytes.create 65536 in
  let read_client c now =
    match c.fd with
    | None -> ()
    | Some fd ->
        let continue = ref true in
        let died = ref false in
        while !continue do
          match Unix.read fd scratch 0 (Bytes.length scratch) with
          | 0 ->
              died := true;
              continue := false
          | n ->
              Protocol.Inbuf.add c.inb scratch n;
              if n < Bytes.length scratch then continue := false
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
              continue := false
          | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
              died := true;
              continue := false
        done;
        (let continue = ref true in
         while !continue do
           match Protocol.Inbuf.pop c.inb Protocol.resp_codec with
           | Some resp -> on_resp c now resp
           | None -> continue := false
           | exception
               ( Protocol.Inbuf.Oversized_frame
               | Onll_util.Codec.Decode_error _ ) ->
               died := true;
               continue := false
         done);
        if !died && c.phase <> Finished then
          if c.phase = Bye_wait then begin
            close_fd c;
            c.phase <- Finished
          end
          else reconnect ~delay_ns:(backoff_ns c 1) c
  in
  let flush_client c =
    match c.fd with
    | None -> ()
    | Some fd ->
        let n = out_pending c in
        if n > 0 then begin
          let s = Buffer.to_bytes c.out in
          match Unix.write fd s c.out_off n with
          | written ->
              c.out_off <- c.out_off + written;
              if out_pending c = 0 then begin
                Buffer.clear c.out;
                c.out_off <- 0
              end
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
          | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
              if c.phase = Bye_wait then begin
                close_fd c;
                c.phase <- Finished
              end
              else reconnect ~delay_ns:(backoff_ns c 1) c
        end
  in
  let poll = Netpoll.create ~initial:(cfg.clients + 4) () in
  let last_churn = ref start_ns in
  let churn_rng = Splitmix.create (cfg.seed lxor 0xc4212) in
  let all_done = ref false in
  while not !all_done do
    let now = now_ns () in
    let issuing = cfg.duration_ms > 0 && now < t_end in
    (* open-loop arrivals *)
    if issuing then
      Array.iter
        (fun c ->
          while c.next_arrival_ns <= now do
            Queue.push c.next_arrival_ns c.arrivals;
            let u = Splitmix.float c.rng 1.0 in
            let gap_s = -.log (1.0 -. u) /. cfg.rate_hz in
            c.next_arrival_ns <-
              c.next_arrival_ns + max 1 (int_of_float (gap_s *. 1e9))
          done)
        clients;
    (* churn flood: a seeded fraction of connected clients hard-close *)
    if
      issuing && cfg.churn_every_ms > 0
      && now - !last_churn >= cfg.churn_every_ms * 1_000_000
    then begin
      last_churn := now;
      Array.iter
        (fun c ->
          match c.phase with
          | (Ready | Ack_wait | Hello_wait) when
              Splitmix.float churn_rng 1.0 < cfg.churn_frac ->
              reconnect ~delay_ns:(backoff_ns c 1) c
          | _ -> ())
        clients
    end;
    (* per-client state transitions *)
    Array.iter
      (fun c ->
        (match c.phase with
        | Sleeping at when now >= at ->
            if now > pass_deadline then give_up c else start_connect c now
        | Backoff_submit at when now >= at -> submit_op c
        | Ready ->
            if c.op <> None then submit_op c
            else if not (Queue.is_empty c.arrivals) then begin
              let arrival = Queue.pop c.arrivals in
              c.op <-
                Some
                  {
                    seq = -1;
                    arrival_ns = arrival;
                    attempts = 0;
                    abort_on_resolve = false;
                  };
              submit_op c
            end
            else if not issuing then wind_down c
        | _ -> ());
        flush_client c)
      clients;
    (* poll *)
    Netpoll.clear poll;
    let polled = ref 0 in
    Array.iter
      (fun c ->
        match (c.fd, c.phase) with
        | Some fd, Connecting ->
            Netpoll.add poll fd Netpoll.pollout;
            incr polled
        | Some fd, _ ->
            Netpoll.add poll fd
              (Netpoll.pollin
              lor if out_pending c > 0 then Netpoll.pollout else 0);
            incr polled
        | None, _ -> ())
      clients;
    if !polled > 0 then begin
      ignore (Netpoll.wait poll ~timeout_ms:10 : int);
      let now = now_ns () in
      Netpoll.ready poll (fun fd revents ->
          match Hashtbl.find_opt by_fd (fd_int fd) with
          | None -> ()
          | Some c -> (
              match c.phase with
              | Connecting ->
                  if revents land (Netpoll.pollout lor Netpoll.pollerr) <> 0
                  then begin
                    match Unix.getsockopt_error fd with
                    | None ->
                        send c Protocol.req_codec
                          (Protocol.Hello { client = c.id; token = cfg.token; tier = cfg.tier });
                        c.phase <- Hello_wait;
                        flush_client c
                    | Some _ ->
                        close_fd c;
                        c.conn_attempts <- c.conn_attempts + 1;
                        c.phase <-
                          Sleeping (now + backoff_ns c c.conn_attempts)
                  end
              | _ ->
                  if revents land Netpoll.pollerr <> 0 then begin
                    if c.phase = Bye_wait then begin
                      close_fd c;
                      c.phase <- Finished
                    end
                    else reconnect ~delay_ns:(backoff_ns c 1) c
                  end
                  else begin
                    if revents land Netpoll.pollin <> 0 then
                      read_client c now;
                    if revents land Netpoll.pollout <> 0 then flush_client c
                  end))
    end
    else Unix.sleepf 0.002;
    (* end conditions *)
    let now = now_ns () in
    if now > pass_deadline then begin
      Array.iter
        (fun c -> if c.phase <> Finished then give_up c)
        clients;
      all_done := true
    end
    else
      all_done :=
        Array.for_all (fun c -> c.phase = Finished) clients
  done;
  (* drop arrivals that never got submitted *)
  Array.iter
    (fun c ->
      t.dropped <- t.dropped + Queue.length c.arrivals;
      Queue.clear c.arrivals)
    clients;
  let wall_ms = (now_ns () - start_ns) / 1_000_000 in
  let lat = Array.sub !lats 0 !nlat in
  Array.sort compare lat;
  let pct p =
    if Array.length lat = 0 then 0
    else
      lat.(min
             (Array.length lat - 1)
             (int_of_float (p *. float_of_int (Array.length lat - 1))))
  in
  let final_value =
    Array.fold_left
      (fun acc c -> match c.got_value with Some v -> Some v | None -> acc)
      None clients
  in
  let denom = t.shed + t.confirmed_this_pass + t.aborted in
  {
    r_sent = t.sent;
    r_confirmed = t.confirmed_this_pass;
    r_acked = t.acked;
    r_adopted = t.adopted;
    r_reinvoked = t.reinvoked;
    r_shed = t.shed;
    r_timeouts = t.timeouts;
    r_degraded = t.degraded;
    r_draining = t.draining;
    r_bad_seq = t.bad_seq;
    r_aborted = t.aborted;
    r_dropped_arrivals = t.dropped;
    r_reconnects = t.reconnects;
    r_conn_failures = t.conn_failures;
    r_unresolved = Audit.unresolved audit;
    r_wall_ms = wall_ms;
    r_p50_us = pct 0.50;
    r_p99_us = pct 0.99;
    r_p999_us = pct 0.999;
    r_goodput =
      (if wall_ms = 0 then 0.
       else float_of_int t.confirmed_this_pass /. (float_of_int wall_ms /. 1e3));
    r_shed_rate =
      (if denom = 0 then 0. else float_of_int t.shed /. float_of_int denom);
    r_final_value = final_value;
  }
