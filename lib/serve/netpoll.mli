(** poll(2)-backed readiness notification for thousands of descriptors.

    [Unix.select] is capped at [FD_SETSIZE] (1024 descriptors on glibc)
    no matter what the process rlimit allows, which rules it out for a
    server or load generator holding 1k–10k connections. This module
    wraps [poll(2)] over caller-owned parallel arrays, so one event-loop
    iteration costs no OCaml allocation. *)

val pollin : int  (** interest/result bit: readable *)

val pollout : int  (** interest/result bit: writable *)

val pollerr : int
(** result bit: error, hangup or invalid descriptor ([POLLERR], [POLLHUP],
    [POLLNVAL]) — always reported, never requested. *)

type t
(** A reusable poll set (grows automatically). *)

val create : ?initial:int -> unit -> t

val clear : t -> unit
(** Forget every registered descriptor (O(1)); call at the top of each
    event-loop iteration. *)

val add : t -> Unix.file_descr -> int -> unit
(** [add t fd interest] registers [fd] with an [interest] bitmask of
    {!pollin} / {!pollout} for the next {!wait}. *)

val wait : t -> timeout_ms:int -> int
(** Poll the registered descriptors. Returns the number of ready
    descriptors, [0] on timeout, or [-1] when interrupted by a signal
    (callers recheck their shutdown flags and loop). [timeout_ms < 0]
    blocks indefinitely. *)

val ready : t -> (Unix.file_descr -> int -> unit) -> unit
(** [ready t f] calls [f fd revents] for every descriptor whose result
    bits are non-zero after the last {!wait}. *)
