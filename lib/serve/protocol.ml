(* Wire protocol (see protocol.mli). *)

module Codec = Onll_util.Codec

type tier = T_exactly_once | T_strict | T_staleness of int

let tier_name = function
  | T_exactly_once -> "exactly-once"
  | T_strict -> "strict"
  | T_staleness k -> Printf.sprintf "stale:%d" k

let tier_of_string s =
  match s with
  | "exactly-once" | "eo" -> Some T_exactly_once
  | "strict" -> Some T_strict
  | _ -> (
      match String.index_opt s ':' with
      | Some i
        when String.sub s 0 i = "stale"
             || String.sub s 0 i = "staleness" -> (
          match
            int_of_string (String.sub s (i + 1) (String.length s - i - 1))
          with
          | k -> Some (T_staleness k)
          | exception Failure _ -> None)
      | _ -> None)

type req =
  | Hello of { client : int; token : string; tier : tier }
  | Submit of { seq : int; deadline_ns : int; op : string }
  | Fetch of { op : string }
  | Ping
  | Bye

type refusal =
  | R_overloaded
  | R_timeout
  | R_degraded
  | R_draining
  | R_bad_seq of int
  | R_bad_token
  | R_bad_client
  | R_not_attached
  | R_bad_op
  | R_bad_tier

type wire_resolution =
  | W_none
  | W_applied of int
  | W_reinvoked of int * int * int
  | W_refused of int
  | W_unresolved of int

type resp =
  | Attached of { next_seq : int; acked : int; resolution : wire_resolution }
  | Acked of { seq : int; value : int }
  | Refused of refusal
  | Got of int
  | Pong
  | Gone

let pp_refusal ppf r =
  Format.pp_print_string ppf
    (match r with
    | R_overloaded -> "overloaded"
    | R_timeout -> "timeout"
    | R_degraded -> "degraded"
    | R_draining -> "draining"
    | R_bad_seq n -> Printf.sprintf "bad-seq(expected %d)" n
    | R_bad_token -> "bad-token"
    | R_bad_client -> "bad-client"
    | R_not_attached -> "not-attached"
    | R_bad_op -> "bad-op"
    | R_bad_tier -> "bad-tier")

let tier_codec =
  Codec.tagged
    (function
      | T_exactly_once -> (0, "")
      | T_strict -> (1, "")
      | T_staleness k -> (2, Codec.encode Codec.int k))
    (fun tag payload ->
      match tag with
      | 0 -> T_exactly_once
      | 1 -> T_strict
      | 2 -> T_staleness (Codec.decode Codec.int payload)
      | _ -> raise (Codec.Decode_error "Protocol: unknown tier tag"))

let req_codec =
  Codec.tagged
    (function
      | Hello { client; token; tier } ->
          (0, Codec.encode Codec.(triple int string tier_codec) (client, token, tier))
      | Submit { seq; deadline_ns; op } ->
          (1, Codec.encode Codec.(triple int int string) (seq, deadline_ns, op))
      | Fetch { op } -> (2, Codec.encode Codec.string op)
      | Ping -> (3, "")
      | Bye -> (4, ""))
    (fun tag payload ->
      match tag with
      | 0 ->
          let client, token, tier =
            Codec.decode Codec.(triple int string tier_codec) payload
          in
          Hello { client; token; tier }
      | 1 ->
          let seq, deadline_ns, op =
            Codec.decode Codec.(triple int int string) payload
          in
          Submit { seq; deadline_ns; op }
      | 2 -> Fetch { op = Codec.decode Codec.string payload }
      | 3 -> Ping
      | 4 -> Bye
      | _ -> raise (Codec.Decode_error "Protocol: unknown request tag"))

let refusal_codec =
  Codec.tagged
    (function
      | R_overloaded -> (0, "")
      | R_timeout -> (1, "")
      | R_degraded -> (2, "")
      | R_draining -> (3, "")
      | R_bad_seq n -> (4, Codec.encode Codec.int n)
      | R_bad_token -> (5, "")
      | R_bad_client -> (6, "")
      | R_not_attached -> (7, "")
      | R_bad_op -> (8, "")
      | R_bad_tier -> (9, ""))
    (fun tag payload ->
      match tag with
      | 0 -> R_overloaded
      | 1 -> R_timeout
      | 2 -> R_degraded
      | 3 -> R_draining
      | 4 -> R_bad_seq (Codec.decode Codec.int payload)
      | 5 -> R_bad_token
      | 6 -> R_bad_client
      | 7 -> R_not_attached
      | 8 -> R_bad_op
      | 9 -> R_bad_tier
      | _ -> raise (Codec.Decode_error "Protocol: unknown refusal tag"))

let resolution_codec =
  Codec.tagged
    (function
      | W_none -> (0, "")
      | W_applied s -> (1, Codec.encode Codec.int s)
      | W_reinvoked (old_s, fresh, v) ->
          (2, Codec.encode Codec.(triple int int int) (old_s, fresh, v))
      | W_refused s -> (3, Codec.encode Codec.int s)
      | W_unresolved s -> (4, Codec.encode Codec.int s))
    (fun tag payload ->
      match tag with
      | 0 -> W_none
      | 1 -> W_applied (Codec.decode Codec.int payload)
      | 2 ->
          let old_s, fresh, v =
            Codec.decode Codec.(triple int int int) payload
          in
          W_reinvoked (old_s, fresh, v)
      | 3 -> W_refused (Codec.decode Codec.int payload)
      | 4 -> W_unresolved (Codec.decode Codec.int payload)
      | _ -> raise (Codec.Decode_error "Protocol: unknown resolution tag"))

let resp_codec =
  Codec.tagged
    (function
      | Attached { next_seq; acked; resolution } ->
          ( 0,
            Codec.encode
              Codec.(triple int int resolution_codec)
              (next_seq, acked, resolution) )
      | Acked { seq; value } ->
          (1, Codec.encode Codec.(pair int int) (seq, value))
      | Refused r -> (2, Codec.encode refusal_codec r)
      | Got v -> (3, Codec.encode Codec.int v)
      | Pong -> (4, "")
      | Gone -> (5, ""))
    (fun tag payload ->
      match tag with
      | 0 ->
          let next_seq, acked, resolution =
            Codec.decode Codec.(triple int int resolution_codec) payload
          in
          Attached { next_seq; acked; resolution }
      | 1 ->
          let seq, value = Codec.decode Codec.(pair int int) payload in
          Acked { seq; value }
      | 2 -> Refused (Codec.decode refusal_codec payload)
      | 3 -> Got (Codec.decode Codec.int payload)
      | 4 -> Pong
      | 5 -> Gone
      | _ -> raise (Codec.Decode_error "Protocol: unknown response tag"))

(* {1 Framing} *)

let max_frame = 1 lsl 16

let write_frame buf codec v =
  let payload = Codec.encode codec v in
  let len = String.length payload in
  Buffer.add_char buf (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (len land 0xff));
  Buffer.add_string buf payload

module Inbuf = struct
  (* A byte deque specialised for framing: bytes arrive at [len], frames
     leave at [start]; the occupied span compacts to offset 0 whenever it
     empties (the common case — most reads carry whole frames). *)
  type t = { mutable data : Bytes.t; mutable start : int; mutable len : int }

  exception Oversized_frame

  let create () = { data = Bytes.create 4096; start = 0; len = 0 }

  let add t src n =
    if t.len = 0 then t.start <- 0;
    let needed = t.start + t.len + n in
    if needed > Bytes.length t.data then begin
      (* compact, then grow if still short *)
      Bytes.blit t.data t.start t.data 0 t.len;
      t.start <- 0;
      let needed = t.len + n in
      if needed > Bytes.length t.data then begin
        let cap = ref (Bytes.length t.data * 2) in
        while needed > !cap do
          cap := !cap * 2
        done;
        let data = Bytes.create !cap in
        Bytes.blit t.data 0 data 0 t.len;
        t.data <- data
      end
    end;
    Bytes.blit src 0 t.data (t.start + t.len) n;
    t.len <- t.len + n

  let pending t = t.len

  let pop t codec =
    if t.len < 4 then None
    else begin
      let b i = Char.code (Bytes.get t.data (t.start + i)) in
      let flen = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if flen > max_frame then raise Oversized_frame;
      if t.len < 4 + flen then None
      else begin
        let payload = Bytes.sub_string t.data (t.start + 4) flen in
        t.start <- t.start + 4 + flen;
        t.len <- t.len - 4 - flen;
        Some (Onll_util.Codec.decode codec payload)
      end
    end
end
