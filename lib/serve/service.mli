(** The serving core of `onll serve`: many durable client sessions, one
    machine process, one shared object — independent of any socket.

    This module is the whole request/response state machine; the socket
    shell ({!Server}) and the deterministic chaos/gate slices drive the
    same {!Make.handle}, so everything the campaigns prove about crash
    resolution holds for the served protocol byte-for-byte.

    {b Identity model.} Each authenticated client gets its own
    {!Onll_session} (its own single-fence durable region, named
    injectively from the client id), attached with [~proc] = the server's
    machine process. Because every session then shares one machine
    process, their private sequence counters would collide as object
    identities; the service hands each session a shared {e durable
    object-sequence allocator} ({!Onll_session.Make.backend.b_alloc})
    instead. The allocator reserves blocks of identities with one
    persistent fence per block (amortised ~1/block fences per update) by
    appending a high-watermark record to its own region; recovery resumes
    at the watermark, so an identity is never reused across crashes —
    reuse would let {!Onll_core.Onll.CONSTRUCTION.was_linearized} vouch
    for a dead operation and turn recovery into a silent lost update. *)

(** Which construction serves the shared counter. All four compose with
    either machine backend (sim or file). *)
type construction = Plain | Mirrored | Sharded | Batched

val construction_of_string : string -> construction option
val construction_name : construction -> string

val region_name : client:int -> string
(** The durable region (log) name of a client's session: injective in
    [client] (asserted again, with a collision table, at attach time). *)

module Make (M : Onll_machine.Machine_sig.S) : sig
  module Sess : module type of Onll_session.Make (M) (Onll_specs.Counter)

  (** The durable object-sequence allocator (exposed for its restart
      test): block reservation with one fence per [block] identities. *)
  module Oseq : sig
    type t

    val create :
      ?sink:Onll_obs.Sink.t -> ?block:int -> ?name:string -> unit -> t
    (** Open (or re-open, over surviving media) the allocator region.
        After a restart the next identity is the durable watermark — the
        unused tail of the last reserved block is abandoned, never
        re-handed. *)

    val recover : t -> unit
    (** Salvage the region and refold the watermark (restart path). *)

    val next : t -> int
    (** The next never-before-handed-out identity (may fence, once per
        block exhaustion). *)

    val watermark : t -> int
    (** Identities below this are reserved (handed out or abandoned). *)
  end

  type t

  val make :
    ?session:Onll_session.config ->
    ?sink:Onll_obs.Sink.t ->
    ?token:string ->
    ?max_clients:int ->
    ?oseq_block:int ->
    ?log_capacity:int ->
    ?max_staleness:int ->
    construction ->
    t
  (** Build the service over machine [M]: the shared counter under
      [construction] (hardened recovery is run, adopting any surviving
      history — the restart path over a file machine), the object-seq
      allocator, and the session table. Serving is {e recovery-complete}:
      a durable client directory records every client that ever attached,
      and [make] re-attaches and resolves every one of them {e before}
      returning. The order is load-bearing — the construction's
      checkpoint floor vouches for every identity below it, so an
      in-doubt (drawn but possibly never invoked) identity must be
      resolved before new operations can checkpoint past it; resolving
      lazily on the client's next [Hello] would read a phantom apply and
      silently lose the update. [session] configures every
      client session ([log_capacity]/[replicas] of the {e session}
      regions ride in it); [log_capacity] is the {e object}'s.
      [max_clients] bounds the client-id range (default 10_000). [token]
      is the shared authentication secret (default ["onll"]).
      [max_staleness] (default 64) caps the per-session staleness bound
      a [Hello] may request ({!Protocol.tier.T_staleness}) — it is the
      risk budget of the {!Onll_relaxed} wrapper the service attaches
      over a [Plain] or [Mirrored] object. On [Sharded]/[Batched] every
      relaxed tier is refused with {!Protocol.refusal.R_bad_tier}. *)

  type conn
  (** Per-connection authentication state (which session, if any, this
      connection speaks for). Owned by the shell. *)

  val conn : unit -> conn

  val handle : t -> conn -> Protocol.req -> Protocol.resp
  (** The entire protocol semantics; pure of sockets and clocks (the
      shell enforces wall-clock deadlines {e before} calling, so a
      deadline refusal never reaches durable work). A [Hello] on a
      client with an in-doubt operation runs {!Sess.recover} and reports
      the resolution on the wire. A sticky-degraded store
      ({!Onll_nvm.File_memory.Degraded} escaping mid-request) is mapped
      to {!Protocol.refusal.R_degraded} — degraded media is a protocol
      error, not a connection reset. *)

  val drain : t -> unit
  (** Enter drain: every subsequent [Hello]/[Submit] is refused with
      {!Protocol.refusal.R_draining}; reads still answer. *)

  val draining : t -> bool

  val quiesce : t -> unit
  (** Drain the staleness tail (E20) and fence, final, before exit — an
      orderly shutdown loses no acked operation of any tier; nothing may
      be acked after it fails. *)

  (** {1 Introspection (audits, stats)} *)

  val counter_value : t -> int  (** direct read of the shared object *)

  val sessions : t -> int  (** attached sessions *)

  val region_bytes : t -> int
  (** Total durable bytes reserved by per-session regions plus the
      allocator and client-directory regions (the many-small-regions
      cost the ROADMAP flags); also exported as the
      ["serve.region_bytes"] gauge. *)

  val degraded : t -> bool
  (** Sticky: true once {e any} region's fence (object, session,
      allocator or directory) exhausted its write-back budget — the
      operator signal behind `onll serve`'s exit code 3. *)
end
