/* poll(2) for the socket front-end.

   Unix.select is FD_SETSIZE-bound (1024 on glibc) regardless of the
   process's rlimit, so a server or load generator holding thousands of
   connections cannot use it. This stub polls a caller-owned triple of
   int arrays (fds / interest / revents), so the per-iteration cost is
   one C array build and no OCaml allocation. Interest and result bits
   are our own, stable encoding: 1 = readable, 2 = writable, 4 = error
   or hangup (POLLERR | POLLHUP | POLLNVAL). */

#include <poll.h>
#include <stdlib.h>
#include <errno.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

#define ONLL_POLL_IN 1
#define ONLL_POLL_OUT 2
#define ONLL_POLL_ERR 4

CAMLprim value onll_poll(value vfds, value vevents, value vrevents, value vn,
                         value vtimeout_ms)
{
  CAMLparam5(vfds, vevents, vrevents, vn, vtimeout_ms);
  int n = Int_val(vn);
  int timeout = Int_val(vtimeout_ms);
  struct pollfd *pfds = NULL;
  int i, r;

  if (n < 0 || n > Wosize_val(vfds) || n > Wosize_val(vevents) ||
      n > Wosize_val(vrevents))
    caml_invalid_argument("Netpoll.poll: n out of bounds");

  if (n > 0) {
    pfds = malloc((size_t)n * sizeof *pfds);
    if (pfds == NULL) caml_raise_out_of_memory();
    for (i = 0; i < n; i++) {
      int ev = Int_val(Field(vevents, i));
      pfds[i].fd = Int_val(Field(vfds, i));
      pfds[i].events = (short)(((ev & ONLL_POLL_IN) ? POLLIN : 0) |
                               ((ev & ONLL_POLL_OUT) ? POLLOUT : 0));
      pfds[i].revents = 0;
    }
  }

  caml_release_runtime_system();
  r = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (r < 0) {
    int e = errno;
    free(pfds);
    if (e == EINTR) CAMLreturn(Val_int(-1)); /* interrupted: caller rechecks */
    caml_failwith("Netpoll.poll: poll(2) failed");
  }

  for (i = 0; i < n; i++) {
    short re = pfds[i].revents;
    int out = ((re & POLLIN) ? ONLL_POLL_IN : 0) |
              ((re & POLLOUT) ? ONLL_POLL_OUT : 0) |
              ((re & (POLLERR | POLLHUP | POLLNVAL)) ? ONLL_POLL_ERR : 0);
    Store_field(vrevents, i, Val_int(out));
  }
  free(pfds);
  CAMLreturn(Val_int(r));
}
